(* Regenerates every table and figure of the paper's evaluation
   (DESIGN.md section 3 maps each to its modules), then runs Bechamel
   micro-benchmarks of the core kernels.

   Usage: main.exe [table1|table4|table5|table6|table7|
                    fig1|fig2|fig3|fig4|micro|simulate|portfolio|json|
                    battery|all|grid|attacks]
                   [--out DIR] [--record] [--check] [--history FILE]
   (default: all)

   Every file-writing target routes through the shared
   Shell_bench_history.Runner writer and lands in --out DIR (default
   "."). The recordable targets (grid, simulate, battery, attacks) go
   through the record-producing runner whenever --record or --check is
   given: --record appends a versioned record (commit, wall times,
   stable counters, span structure) to the JSONL history, --check
   exits 1 on unexplained stable-counter drift vs the last committed
   record. grid and attacks exist only in the runner registry, so they
   always route there. *)
(* Budget note:

   Budgets here stand in for the paper's 48-hour SAT timeout: a case
   is reported "resilient" when the attack exhausts its budget.

   Parallel evaluation: the (benchmark x case) grids of Tables I and
   IV-VII and Fig. 1's scheme sweep run on the Shell_util.Pool domain
   pool (SHELL_JOBS=n, default all cores). Each grid cell renders its
   rows to a string off to the side and the strings are printed in grid
   order, so stdout is byte-identical at every job count; the wall-time
   footer goes to stderr for the same reason. Each task builds its own
   netlist: Netlist.t carries lazily-populated fanout/driver caches and
   must not be shared across domains. *)

module N = Shell_netlist
module F = Shell_fabric
module S = Shell_synth
module P = Shell_pnr
module L = Shell_locking
module A = Shell_attacks
module C = Shell_core
module Circ = Shell_circuits
module Pool = Shell_util.Pool

let printf = Printf.printf
let bpf = Printf.bprintf

let with_output f =
  let buf = Buffer.create (1 lsl 16) in
  f buf;
  Buffer.contents buf

let heading out title =
  bpf out "\n%s\n%s\n" title (String.make (String.length title) '=')

let tfr (t : Circ.Catalog.tfr) =
  {
    C.Baselines.route = t.Circ.Catalog.route;
    lgc = t.Circ.Catalog.lgc;
    label = t.Circ.Catalog.label;
  }

let cases_of (e : Circ.Catalog.entry) =
  C.Baselines.all
    ~case1:(tfr e.Circ.Catalog.tfr_case1)
    ~case2:(tfr e.Circ.Catalog.tfr_case2)
    ~case3:(tfr e.Circ.Catalog.tfr_case3)
    ~shell:(tfr e.Circ.Catalog.tfr_shell)

(* Attack budget used to declare resilience in the tables. *)
let attack_budget = (`Dips 64, `Conflicts 120_000, `Seconds 6.0)

let unified_budget
    (`Dips max_dips, `Conflicts max_conflicts, `Seconds time_limit) =
  A.Attack.budget ~max_dips ~max_conflicts ~time_limit ()

(* The SheLL flow as an attack subject: oracle built from the extracted
   subcircuit, cycle-closing key patterns blocked up front. *)
let subject_of_result ?label (r : C.Flow.result) =
  A.Attack.subject ?label
    ~cycle_blocks:r.C.Flow.emitted.F.Emit.cycle_blocks
    ~original:r.C.Flow.cut.C.Extraction.sub (C.Flow.locked_sub r)

let run_sat_attack ?(budget = attack_budget) (r : C.Flow.result) =
  A.Sat_attack.attack.A.Attack.run (unified_budget budget)
    (subject_of_result r)

let resilience_tag = function
  | A.Attack.Broken (_, st) ->
      Printf.sprintf "BROKEN (%d DIPs)" st.A.Attack.iterations
  | A.Attack.Resilient st ->
      Printf.sprintf "resilient (%d DIPs, %d conflicts)" st.A.Attack.iterations
        st.A.Attack.conflicts
  | A.Attack.Inapplicable why -> Printf.sprintf "n/a (%s)" why

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let paper_table1 =
  [
    ("OpenFPGA", "1650 M2s", "650 DFFs", "-");
    ("FABulous (std cell)", "560 M4s + 80 M2s", "20 CFFs", "650");
    ("FABulous (std cell w/ mux chain)", "185 M4s + 63 M2s", "12 CFFs", "431");
  ]

let table1 out =
  heading out "Table I: Resource utilization, ROUTE circuit (8-AXI-channel Xbar)";
  let xbar = Circ.Axi_xbar.netlist () in
  bpf out "xbar: %d cells, route fraction %.2f\n\n"
    (N.Netlist.num_cells xbar)
    (S.Mux_chain.route_fraction xbar);
  bpf out "%-34s %-22s %-12s %s\n" "Tool" "Multiplexer" "Flip Flop" "Latch";
  let rows =
    Pool.map
      (fun style ->
        let nl = Circ.Axi_xbar.netlist () in
        let cfg =
          {
            (C.Flow.shell_config
               ~target:
                 (C.Flow.Fixed
                    { route = [ ":_xbar_route"; ":_xbar_arb" ]; lgc = []; label = "xbar" })
               ())
            with
            C.Flow.style;
            shrink = true;
          }
        in
        let r = C.Flow.run cfg nl in
        Format.asprintf "%a" F.Resources.pp_table1_row (style, r.C.Flow.resources))
      (Array.of_list F.Style.all)
  in
  Array.iter (fun row -> bpf out "%s\n" row) rows;
  bpf out "\npaper reported:\n";
  List.iter
    (fun (a, b, c, d) -> bpf out "%-34s %-22s %-12s %s\n" a b c d)
    paper_table1

(* ------------------------------------------------------------------ *)
(* Table IV                                                            *)
(* ------------------------------------------------------------------ *)

let paper_table4 =
  [
    ("PicoSoC", [ (1.74, 1.95, 2.11); (1.87, 1.97, 2.28); (1.71, 1.88, 1.94); (1.39, 1.45, 1.47) ]);
    ("AES", [ (2.11, 2.34, 3.15); (2.07, 2.33, 3.25); (1.98, 1.94, 2.22); (1.38, 1.51, 1.55) ]);
    ("FIR", [ (2.97, 3.11, 4.02); (3.17, 3.21, 4.14); (2.89, 2.99, 3.23); (1.66, 1.77, 1.82) ]);
    ("SPMV", [ (1.57, 1.73, 2.61); (1.69, 1.88, 2.74); (1.94, 2.03, 2.88); (1.36, 1.41, 1.52) ]);
    ("DLA", [ (1.41, 1.57, 2.34); (1.55, 1.72, 2.66); (1.60, 1.74, 2.44); (1.29, 1.33, 1.40) ]);
  ]

(* Flatten an (entry x case) grid into pool tasks, then print the rows
   back under their per-entry headers in grid order. *)
let grid_rows ~entries ~cases_of ~row =
  let tasks =
    Array.concat
      (List.mapi
         (fun ei e ->
           Array.of_list
             (List.mapi (fun ci case -> (ei, e, ci, case)) (cases_of e)))
         entries)
  in
  Pool.map (fun (_, e, ci, case) -> row e ci case) tasks

let table4 ?(attack = true) out =
  heading out "Table IV: Comparative (normalized) overhead, Cases 1-4";
  let entries = Circ.Catalog.all in
  let rows =
    grid_rows ~entries ~cases_of
      ~row:(fun (e : Circ.Catalog.entry) i (name, cfg) ->
        let nl = e.Circ.Catalog.netlist () in
        let paper = List.assoc e.Circ.Catalog.name paper_table4 in
        let r = C.Flow.run cfg nl in
        let pa, pp_, pd = List.nth paper i in
        let sec =
          if attack then "  SAT: " ^ resilience_tag (run_sat_attack r) else ""
        in
        Printf.sprintf "  %-32s A=%.2f P=%.2f D=%.2f   (paper %.2f/%.2f/%.2f)%s\n"
          name r.C.Flow.overhead.C.Overhead.area
          r.C.Flow.overhead.C.Overhead.power r.C.Flow.overhead.C.Overhead.delay
          pa pp_ pd sec)
  in
  let cursor = ref 0 in
  List.iter
    (fun (e : Circ.Catalog.entry) ->
      let nl = e.Circ.Catalog.netlist () in
      bpf out "\n%s (%s): %d cells\n" e.Circ.Catalog.name
        e.Circ.Catalog.description (N.Netlist.num_cells nl);
      List.iter
        (fun _ ->
          bpf out "%s" rows.(!cursor);
          incr cursor)
        (cases_of e))
    entries

(* ------------------------------------------------------------------ *)
(* Table V: same (ROUTE-based) TfR for every case                      *)
(* ------------------------------------------------------------------ *)

let paper_table5 =
  [
    ("PicoSoC", [ (1.993, 2.162, 2.674); (1.994, 2.161, 2.676); (1.756, 2.036, 2.214); (1.390, 1.447, 1.473) ]);
    ("AES", [ (2.505, 2.814, 3.450); (2.505, 2.814, 3.450); (2.274, 2.470, 2.715); (1.384, 1.509, 1.548) ]);
    ("FIR", [ (3.251, 3.50, 4.68); (3.421, 3.559, 4.697); (3.31, 3.57, 3.82); (1.663, 1.768, 1.816) ]);
  ]

let table5 out =
  heading out "Table V: same ROUTE-based target for all cases";
  let entries =
    List.filter_map
      (fun (name, paper) ->
        Option.map (fun e -> (name, paper, e)) (Circ.Catalog.find name))
      paper_table5
  in
  let shell_cases (_, _, (e : Circ.Catalog.entry)) =
    let shell_t = tfr e.Circ.Catalog.tfr_shell in
    C.Baselines.all ~case1:shell_t ~case2:shell_t ~case3:shell_t ~shell:shell_t
  in
  let rows =
    grid_rows ~entries ~cases_of:shell_cases
      ~row:(fun (_, paper, (e : Circ.Catalog.entry)) i (cname, cfg) ->
        let nl = e.Circ.Catalog.netlist () in
        let r = C.Flow.run cfg nl in
        let pa, pp_, pd = List.nth paper i in
        Printf.sprintf "  %-32s A=%.3f P=%.3f D=%.3f   (paper %.3f/%.3f/%.3f)\n"
          cname r.C.Flow.overhead.C.Overhead.area
          r.C.Flow.overhead.C.Overhead.power r.C.Flow.overhead.C.Overhead.delay
          pa pp_ pd)
  in
  let cursor = ref 0 in
  List.iter
    (fun ((name, _, (e : Circ.Catalog.entry)) as entry) ->
      let shell_t = tfr e.Circ.Catalog.tfr_shell in
      bpf out "\n%s (TfR: %s)\n" name shell_t.C.Baselines.label;
      List.iter
        (fun _ ->
          bpf out "%s" rows.(!cursor);
          incr cursor)
        (shell_cases entry))
    entries

(* ------------------------------------------------------------------ *)
(* Table VI: coefficient sweep                                         *)
(* ------------------------------------------------------------------ *)

let paper_table6 =
  [
    ("PicoSoC", [ (1.58, 1.59, 1.97); (1.41, 1.58, 1.45); (1.42, 1.46, 1.46); (1.81, 1.93, 1.99); (1.39, 1.45, 1.47) ]);
    ("AES", [ (1.64, 1.77, 1.88); (1.55, 1.61, 1.77); (1.43, 1.46, 1.60); (2.24, 2.36, 2.77); (1.38, 1.51, 1.55) ]);
    ("FIR", [ (1.88, 2.01, 2.06); (1.75, 1.79, 1.99); (1.65, 1.69, 1.94); (2.33, 2.50, 2.94); (1.66, 1.77, 1.82) ]);
    ("SPMV", [ (1.66, 1.70, 1.83); (1.36, 1.41, 1.64); (1.35, 1.42, 1.58); (1.77, 1.78, 2.08); (1.36, 1.41, 1.52) ]);
    ("DLA", [ (1.36, 1.45, 1.59); (1.31, 1.32, 1.55); (1.38, 1.53, 1.95); (1.58, 1.64, 2.09); (1.29, 1.33, 1.40) ]);
  ]

(* the paper strikes through the cells its SAT attack broke *)
let paper_broken = [ ("AES", "c2") ]

let table6 ?(attack = true) out =
  heading out "Table VI: coefficient profiles for sub-circuit selection";
  let entries = Circ.Catalog.all in
  let rows =
    grid_rows ~entries
      ~cases_of:(fun _ -> C.Score.presets)
      ~row:(fun (e : Circ.Catalog.entry) i (cname, coeffs) ->
        let nl = e.Circ.Catalog.netlist () in
        let paper = List.assoc e.Circ.Catalog.name paper_table6 in
        let cfg =
          C.Flow.shell_config ~target:(C.Flow.Auto { coeffs; lgc_depth = 0 }) ()
        in
        let r = C.Flow.run cfg nl in
        let pa, pp_, pd = List.nth paper i in
        let sec =
          if attack then "  SAT: " ^ resilience_tag (run_sat_attack r) else ""
        in
        let expect =
          if List.mem (e.Circ.Catalog.name, cname) paper_broken then
            " [paper: broken]"
          else ""
        in
        Printf.sprintf
          "  %-3s A=%.2f P=%.2f D=%.2f (paper %.2f/%.2f/%.2f)  TfR: %-40s%s%s\n"
          cname r.C.Flow.overhead.C.Overhead.area
          r.C.Flow.overhead.C.Overhead.power r.C.Flow.overhead.C.Overhead.delay
          pa pp_ pd
          (let l = r.C.Flow.choice.C.Selection.label in
           if String.length l > 40 then String.sub l 0 40 else l)
          sec expect)
  in
  let cursor = ref 0 in
  List.iter
    (fun (e : Circ.Catalog.entry) ->
      bpf out "\n%s\n" e.Circ.Catalog.name;
      List.iter
        (fun _ ->
          bpf out "%s" rows.(!cursor);
          incr cursor)
        C.Score.presets)
    entries

(* ------------------------------------------------------------------ *)
(* Table VII: LGC/ROUTE correlation depth                              *)
(* ------------------------------------------------------------------ *)

let paper_table7 =
  [
    ("PicoSoC", [ (2.717, 2.957, 4.621); (2.640, 2.928, 4.311); (1.390, 1.447, 1.473) ]);
    ("AES", [ (3.180, 3.347, 5.174); (3.215, 3.451, 5.318); (1.384, 1.509, 1.548) ]);
    ("FIR", [ (3.554, 3.701, 5.138); (3.439, 3.766, 5.082); (1.663, 1.768, 1.816) ]);
  ]

let table7 out =
  heading out "Table VII: LGC/ROUTE correlation (node distance) vs overhead";
  let entries =
    List.filter_map
      (fun (name, paper) ->
        Option.map (fun e -> (name, paper, e)) (Circ.Catalog.find name))
      paper_table7
  in
  let depths _ = List.map (fun d -> d) [ 2; 1; 0 ] in
  let rows =
    grid_rows ~entries ~cases_of:depths
      ~row:(fun (_, paper, (e : Circ.Catalog.entry)) i depth ->
        let nl = e.Circ.Catalog.netlist () in
        let route = e.Circ.Catalog.tfr_shell.Circ.Catalog.route in
        let cfg =
          C.Flow.shell_config
            ~target:(C.Flow.Route_with_lgc_depth { route; depth })
            ()
        in
        let r = C.Flow.run cfg nl in
        let pa, pp_, pd = List.nth paper i in
        Printf.sprintf
          "  depth %d: A=%.3f P=%.3f D=%.3f (paper %.3f/%.3f/%.3f)  pins=%d\n"
          depth r.C.Flow.overhead.C.Overhead.area
          r.C.Flow.overhead.C.Overhead.power r.C.Flow.overhead.C.Overhead.delay
          pa pp_ pd r.C.Flow.resources.F.Resources.io_pins)
  in
  let cursor = ref 0 in
  List.iter
    (fun (name, _, _) ->
      bpf out "\n%s\n" name;
      List.iter
        (fun _ ->
          bpf out "%s" rows.(!cursor);
          incr cursor)
        [ 2; 1; 0 ])
    entries

(* ------------------------------------------------------------------ *)
(* Fig. 1: the locking taxonomy, attacked                              *)
(* ------------------------------------------------------------------ *)

let fig1 out =
  heading out "Fig. 1: reconfigurability-based locking taxonomy under attack";
  (* a small structured victim keeps the miter tractable so the weak
     schemes actually fall within the budget *)
  let victim () = Circ.Axi_xbar.netlist ~channels:4 ~data_width:8 () in
  bpf out "victim: 4-channel Xbar (%d cells); budget 128 DIPs / 200k conflicts / 20 s\n"
    (N.Netlist.num_cells (victim ()));
  let schemes =
    [|
      ("(a) random LUT insertion [17]", fun nl -> L.Schemes.random_lut ~gates:10 nl);
      ("(b) heuristic LUT insertion [18]", fun nl -> L.Schemes.heuristic_lut ~gates:10 nl);
      ("(c) MUX routing locking [3]", fun nl -> L.Schemes.mux_routing ~width:32 nl);
      ("(d) MUX+LUT locking [4,5]", fun nl -> L.Schemes.mux_lut ~width:32 nl);
    |]
  in
  let rows =
    Pool.map
      (fun (name, mk) ->
        let nl = victim () in
        let lk = mk nl in
        assert (L.Locked.verify ~original:nl lk);
        let out =
          A.Sat_attack.attack.A.Attack.run
            (unified_budget (`Dips 128, `Conflicts 200_000, `Seconds 20.0))
            (A.Attack.subject ~original:nl lk)
        in
        let prox = A.Proximity.predict_links lk in
        Printf.sprintf
          "  %-36s key=%4d bits  SAT: %-36s  link prediction %d/%d (%.0f%%)\n"
          name (L.Locked.key_bits lk) (resilience_tag out)
          prox.A.Proximity.links_correct prox.A.Proximity.links
          (100.0 *. prox.A.Proximity.link_accuracy))
      schemes
  in
  Array.iter (fun row -> bpf out "%s" row) rows;
  (* (e) eFPGA redaction: scored selection over the desX layers *)
  let nl = victim () in
  let r = C.Flow.run (C.Flow.shell_config ()) nl in
  let lk = C.Flow.locked_sub r in
  let outc =
    run_sat_attack ~budget:(`Dips 64, `Conflicts 200_000, `Seconds 20.0) r
  in
  let prox = A.Proximity.predict_links lk in
  bpf out "  %-36s key=%4d bits  SAT: %-36s  link prediction %d/%d (%.0f%%)\n"
    "(e) eFPGA redaction (SheLL)" (L.Locked.key_bits lk) (resilience_tag outc)
    prox.A.Proximity.links_correct prox.A.Proximity.links
    (100.0 *. prox.A.Proximity.link_accuracy)

(* ------------------------------------------------------------------ *)
(* Fig. 2: OpenFPGA square-fabric utilization on desX                  *)
(* ------------------------------------------------------------------ *)

let fig2 out =
  heading out "Fig. 2: inefficient square mapping in OpenFPGA (desX on 7x7)";
  let nl = Circ.Desx.netlist () in
  let mapped, st = S.Lut_map.map ~k:4 (S.Opt.simplify nl) in
  let res = P.Pnr.fit_loop ~style:F.Style.Openfpga mapped in
  let fab = res.P.Pnr.fabric in
  bpf out "  desX: %d gates -> %d LUTs\n" (N.Netlist.num_cells nl) st.S.Lut_map.luts;
  bpf out "  OpenFPGA fabric: %dx%d (%d tiles), used tiles %d, unused %d\n"
    fab.F.Fabric.cols fab.F.Fabric.rows (F.Fabric.clb_tiles fab)
    res.P.Pnr.placement.P.Pnr.used_tiles
    (F.Fabric.clb_tiles fab - res.P.Pnr.placement.P.Pnr.used_tiles);
  bpf out "  LUT utilization %.1f%%, tile utilization %.1f%%\n"
    (100.0 *. res.P.Pnr.utilization)
    (100.0 *. res.P.Pnr.tile_utilization);
  let packed_tiles = (st.S.Lut_map.luts + 7) / 8 in
  bpf out "  densely packed the design needs %d tiles -> %d of %d tiles wasted\n"
    packed_tiles
    (F.Fabric.clb_tiles fab - packed_tiles)
    (F.Fabric.clb_tiles fab);
  bpf out "%s" (P.Floorplan.render res);
  let res_fab = P.Pnr.fit_loop ~style:F.Style.Fabulous_std mapped in
  bpf out "  FABulous rectangle: %dx%d, LUT utilization %.1f%%\n"
    res_fab.P.Pnr.fabric.F.Fabric.cols res_fab.P.Pnr.fabric.F.Fabric.rows
    (100.0 *. res_fab.P.Pnr.utilization);
  bpf out "  paper: 11 of 49 tiles unused, <77%% utilization\n"

(* ------------------------------------------------------------------ *)
(* Fig. 3: SoC-level redaction                                         *)
(* ------------------------------------------------------------------ *)

let fig3 out =
  heading out "Fig. 3: SoC-level locking (Xbar + core2/core4 wrappers)";
  let nl = Circ.Soc.netlist () in
  let cfg =
    C.Flow.shell_config
      ~target:
        (C.Flow.Fixed
           {
             route = [ "/xbar" ];
             lgc = [ ":wrap_core2"; ":wrap_core4" ];
             label = "Xbar + wrap(core2,core4)";
           })
      ()
  in
  let r = C.Flow.run cfg nl in
  bpf out "%s\n" (Format.asprintf "%a" C.Flow.pp_summary r);
  bpf out "  end-to-end verify (sequential): %b\n" (C.Flow.verify r);
  (* removal attack: with LGC entangled the plain-Xbar guess must fail *)
  let oracle = A.Sat_attack.oracle_of_netlist r.C.Flow.cut.C.Extraction.sub in
  let sub = r.C.Flow.cut.C.Extraction.sub in
  let sanity = A.Removal.attempt ~oracle sub in
  bpf out "  removal attack, true netlist guess: %s (sanity, must match)\n"
    (if sanity.A.Removal.matched then "match" else "MISMATCH");
  (* candidate: plain Xbar without the wrapper LGC *)
  let route_only =
    let cfg' =
      C.Flow.shell_config
        ~target:
          (C.Flow.Fixed { route = [ "/xbar" ]; lgc = []; label = "xbar-only" })
        ()
    in
    (C.Flow.run cfg' nl).C.Flow.cut.C.Extraction.sub
  in
  if
    List.length (N.Netlist.inputs route_only)
    = List.length (N.Netlist.inputs sub)
    && List.length (N.Netlist.outputs route_only)
       = List.length (N.Netlist.outputs sub)
  then begin
    let v = A.Removal.attempt ~oracle route_only in
    bpf out "  removal attack, plain-Xbar guess: %s\n"
      (if v.A.Removal.matched then "MATCH (attack wins)"
       else "mismatch (defeated)")
  end
  else
    bpf out
      "  removal attack, plain-Xbar guess: port shape differs (wrapper LGC entangled) -> defeated\n"

(* ------------------------------------------------------------------ *)
(* Fig. 4: the 8-step flow, verbose                                    *)
(* ------------------------------------------------------------------ *)

let fig4 out =
  heading out "Fig. 4: SheLL framework steps on PicoSoC";
  let e = List.nth Circ.Catalog.all 0 in
  let nl = e.Circ.Catalog.netlist () in
  let t = e.Circ.Catalog.tfr_shell in
  bpf out "  (1) connectivity & modular analysis\n";
  let analysis = C.Connectivity.analyze nl in
  bpf out "      %d blocks, %d inter-block edges\n"
    (Array.length analysis.C.Connectivity.blocks)
    (Shell_graph.Digraph.num_edges analysis.C.Connectivity.graph);
  bpf out "  (2) scoring (Eq. 1, SheLL coefficients) - top blocks:\n";
  let scored =
    Array.to_list
      (Array.mapi
         (fun i b ->
           (C.Score.eval C.Score.shell_choice b.C.Connectivity.attrs, i, b))
         analysis.C.Connectivity.blocks)
    |> List.sort (fun (a, _, _) (b, _, _) -> compare b a)
  in
  List.iteri
    (fun i (s, _, b) ->
      if i < 5 then
        bpf out "      %.3f  %-44s %s\n" s b.C.Connectivity.name
          (Format.asprintf "%a" C.Score.pp_attrs b.C.Connectivity.attrs))
    scored;
  let cfg =
    C.Flow.shell_config
      ~target:
        (C.Flow.Fixed
           {
             route = t.Circ.Catalog.route;
             lgc = t.Circ.Catalog.lgc;
             label = t.Circ.Catalog.label;
           })
      ()
  in
  let r = C.Flow.run cfg nl in
  bpf out "  (3) selection: %s (coverage %.2f)\n" r.C.Flow.choice.C.Selection.label
    r.C.Flow.choice.C.Selection.coverage;
  bpf out "  (4) decoupling/extraction: %d cells, %d in / %d out nets\n"
    (List.length r.C.Flow.cut.C.Extraction.cells)
    (List.length r.C.Flow.cut.C.Extraction.input_binding)
    (List.length r.C.Flow.cut.C.Extraction.output_binding);
  bpf out "  (5) dual synthesis: %d LUTs + %d Mux4 / %d Mux2 chain cells\n"
    r.C.Flow.mapped.C.Synthesize.luts r.C.Flow.mapped.C.Synthesize.chain_mux4
    r.C.Flow.mapped.C.Synthesize.chain_mux2;
  bpf out "  (6-7) fabric fit: %s (fit %s, utilization %.2f)\n"
    (Format.asprintf "%a" F.Fabric.pp r.C.Flow.pnr.P.Pnr.fabric)
    (match r.C.Flow.pnr.P.Pnr.fit with Ok () -> "ok" | Error _ -> "failed")
    r.C.Flow.pnr.P.Pnr.utilization;
  bpf out "  (8) shrink: %d config bits kept, bitstream %d bits\n"
    r.C.Flow.resources.F.Resources.config_bits
    (F.Bitstream.length r.C.Flow.emitted.F.Emit.bitstream);
  bpf out "  overhead: %s   verify: %b\n"
    (Format.asprintf "%a" C.Overhead.pp r.C.Flow.overhead)
    (C.Flow.verify r)

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)
(* ------------------------------------------------------------------ *)

let ablation out =
  heading out "Ablations: shrink / MUX chains / routing flexibility";
  let e = List.nth Circ.Catalog.all 0 in
  let nl = e.Circ.Catalog.netlist () in
  let t = e.Circ.Catalog.tfr_shell in
  let target =
    C.Flow.Fixed
      {
        route = t.Circ.Catalog.route;
        lgc = t.Circ.Catalog.lgc;
        label = t.Circ.Catalog.label;
      }
  in
  let base = C.Flow.shell_config ~target () in
  bpf out "
(a) step-8 shrinking (PicoSoC, SheLL target):
";
  List.iter
    (fun (name, shrink) ->
      let r = C.Flow.run { base with C.Flow.shrink } nl in
      bpf out "  %-22s A=%.3f P=%.3f D=%.3f
" name
        r.C.Flow.overhead.C.Overhead.area r.C.Flow.overhead.C.Overhead.power
        r.C.Flow.overhead.C.Overhead.delay)
    [ ("with shrinking", true); ("without shrinking", false) ];
  bpf out "
(b) MUX chains vs LUT-only mapping of the same ROUTE target:
";
  List.iter
    (fun (name, style) ->
      let r = C.Flow.run { base with C.Flow.style } nl in
      bpf out "  %-22s A=%.3f  (%d LUTs + %d chain cells, %d key bits)
" name
        r.C.Flow.overhead.C.Overhead.area r.C.Flow.mapped.C.Synthesize.luts
        (r.C.Flow.mapped.C.Synthesize.chain_mux4
        + r.C.Flow.mapped.C.Synthesize.chain_mux2)
        (F.Bitstream.length r.C.Flow.emitted.F.Emit.bitstream))
    [
      ("MUX chains", F.Style.Fabulous_muxchain);
      ("LUT-only (FABulous)", F.Style.Fabulous_std);
    ];
  bpf out "
(c) fabric parameters vs attack effort (cf. [26]):
";
  bpf out "    %-34s %8s %10s %s
" "fabric" "key bits" "c2v" "SAT (3s budget)";
  List.iter
    (fun style ->
      let r = C.Flow.run { base with C.Flow.style } nl in
      let lk = C.Flow.locked_sub r in
      let m =
        A.Metrics.of_locked
          ~bitstream:r.C.Flow.emitted.F.Emit.bitstream
          ~cycle_blocks:r.C.Flow.emitted.F.Emit.cycle_blocks
          lk.L.Locked.locked
      in
      let outc =
        run_sat_attack
          ~budget:(`Dips 32, `Conflicts 60_000, `Seconds 3.0)
          r
      in
      bpf out "    %-34s %8d %10.2f %s
" (F.Style.name style)
        m.A.Metrics.key_bits m.A.Metrics.c2v (resilience_tag outc))
    F.Style.all

(* ------------------------------------------------------------------ *)
(* Coefficient search (the paper's future-work extension)              *)
(* ------------------------------------------------------------------ *)

let explore out =
  heading out "Coefficient search (paper future work: heuristic exploration)";
  let e = List.nth Circ.Catalog.all 3 in
  (* SPMV: mid-size *)
  let nl = e.Circ.Catalog.netlist () in
  bpf out "searching Eq. 1 coefficient space on %s...
" e.Circ.Catalog.name;
  let o = C.Explore.search ~generations:4 ~population:6 nl in
  let c5 =
    List.find
      (fun (c : C.Explore.candidate) ->
        c.C.Explore.coeffs = C.Score.shell_choice)
      o.C.Explore.evaluated
  in
  bpf out "  profiles evaluated: %d
" (List.length o.C.Explore.evaluated);
  bpf out "  hand-picked c5:  A=%.3f (key %d bits)  TfR %s
"
    c5.C.Explore.overhead.C.Overhead.area c5.C.Explore.key_bits
    c5.C.Explore.label;
  bpf out "  searched best:   A=%.3f (key %d bits)  TfR %s
"
    o.C.Explore.best.C.Explore.overhead.C.Overhead.area
    o.C.Explore.best.C.Explore.key_bits o.C.Explore.best.C.Explore.label;
  let cc = o.C.Explore.best.C.Explore.coeffs in
  bpf out "  best coefficients: a=%.2f b=%.2f g=%.2f l=%.2f xi=%.2f s=%.2f
"
    cc.C.Score.alpha cc.C.Score.beta cc.C.Score.gamma cc.C.Score.lambda
    cc.C.Score.xi cc.C.Score.sigma

(* ------------------------------------------------------------------ *)
(* Attack portfolio: seeded solver race                                *)
(* ------------------------------------------------------------------ *)

let portfolio out =
  heading out "Attack portfolio: differently-seeded solvers race one lock";
  let nl = Circ.Axi_xbar.netlist ~channels:4 ~data_width:8 () in
  let lk = L.Schemes.mux_routing ~width:32 nl in
  bpf out "victim: 4-channel Xbar (%d cells), MUX routing lock, %d key bits\n"
    (N.Netlist.num_cells nl) (L.Locked.key_bits lk);
  bpf out "budget per racer: 64 DIPs / 60k conflicts / 5 s\n";
  let p =
    A.Portfolio.run ~max_dips:64 ~max_conflicts:60_000 ~time_limit:5.0
      ~original:nl lk.L.Locked.locked
  in
  let verdict_of = function
    | A.Sat_attack.Broken (k, st) ->
        A.Attack.Broken (k, A.Sat_attack.to_attack_stats ~broken:true st)
    | A.Sat_attack.Timeout st ->
        A.Attack.Resilient (A.Sat_attack.to_attack_stats st)
  in
  Array.iter
    (fun ((cfg : A.Portfolio.config), o) ->
      bpf out "  %-24s %s\n" cfg.A.Portfolio.label (resilience_tag (verdict_of o)))
    p.A.Portfolio.outcomes;
  (match p.A.Portfolio.winner with
  | Some i ->
      bpf out "  winner: config %d (%s)\n" i
        (fst p.A.Portfolio.outcomes.(i)).A.Portfolio.label
  | None -> bpf out "  no racer broke the lock within budget\n")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro out =
  heading out "Micro-benchmarks (Bechamel)";
  let module B = Bechamel in
  let open B in
  let nl = Circ.Fir.netlist () in
  let simplified = Shell_synth.Opt.simplify nl in
  let cnf = N.Cnf.encode (N.Netlist.comb_view simplified) in
  let analysis = C.Connectivity.analyze nl in
  let graph = analysis.C.Connectivity.graph in
  let tests =
    [
      Test.make ~name:"lut_map(fir)"
        (Staged.stage (fun () -> ignore (Shell_synth.Lut_map.map ~k:4 simplified)));
      Test.make ~name:"sat_solve(fir cnf)"
        (Staged.stage (fun () ->
             let s = Shell_sat.Solver.create () in
             Shell_sat.Solver.ensure_vars s cnf.N.Cnf.nvars;
             List.iter (Shell_sat.Solver.add_clause s) cnf.N.Cnf.clauses;
             ignore (Shell_sat.Solver.solve ~max_conflicts:2_000 s)));
      Test.make ~name:"betweenness(blocks)"
        (Staged.stage (fun () ->
             ignore
               (Shell_graph.Centrality.betweenness graph ~sources:[ 0 ]
                  ~sinks:[ Shell_graph.Digraph.n graph - 1 ])));
      Test.make ~name:"simulate(fir, 64 cycles)"
        (Staged.stage
           (let sim = N.Sim.create nl in
            let n_in = List.length (N.Netlist.inputs nl) in
            let ins = Array.make n_in false in
            fun () ->
              for _ = 1 to 64 do
                ignore (N.Sim.step sim ins)
              done));
      (* same 64 clocked steps, each carrying Simw.width vectors *)
      Test.make ~name:"simulate_w(fir, 64 cycles)"
        (Staged.stage
           (let simw = N.Simw.create nl in
            let n_in = List.length (N.Netlist.inputs nl) in
            let ins = Array.make n_in 0 in
            fun () ->
              for _ = 1 to 64 do
                ignore (N.Simw.step simw ins)
              done));
    ]
  in
  List.concat_map
    (fun test ->
      let instances = [ Toolkit.Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name result acc ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              bpf out "  %-28s %12.0f ns/run\n" name est;
              (name, est) :: acc
          | Some _ | None ->
              bpf out "  %-28s (no estimate)\n" name;
              acc)
        results [])
    tests

(* ------------------------------------------------------------------ *)
(* Simulation throughput: scalar Sim vs word-level Simw                *)
(* ------------------------------------------------------------------ *)

let time_wall f =
  let t0 = Shell_util.Clock.now () in
  let r = f () in
  (r, Shell_util.Clock.now () -. t0)

(* Per-catalog-circuit throughput of the two engines on identical
   stimulus: [chunks] full-width packed words = chunks * Simw.width
   vectors. The word engine steps once per word, the scalar engine once
   per vector; both run the same clocked [step] (flop update included)
   so the ratio is the end-to-end engine speedup, not a comb-only
   number. *)
let simulate_rows () =
  List.map
    (fun (e : Circ.Catalog.entry) ->
      let nl = e.Circ.Catalog.netlist () in
      let n_in = List.length (N.Netlist.inputs nl) in
      let chunks = 16 in
      let vectors = chunks * N.Simw.width in
      let rng = Shell_util.Rng.create 0xbe6c in
      let packed = Shell_util.Rng.vectors_packed rng ~vectors ~bits:n_in in
      let vecs =
        Array.init vectors (fun v ->
            N.Simw.lane packed.(v / N.Simw.width) (v mod N.Simw.width))
      in
      let sim = N.Sim.create nl in
      let _, t_scalar =
        time_wall (fun () ->
            Array.iter (fun vec -> ignore (N.Sim.step sim vec)) vecs)
      in
      let simw = N.Simw.create nl in
      let word_reps = 8 in
      let _, t_word =
        time_wall (fun () ->
            for _ = 1 to word_reps do
              Array.iter (fun w -> ignore (N.Simw.step simw w)) packed
            done)
      in
      let scalar_ns = 1e9 *. t_scalar /. float_of_int vectors in
      let word_ns = 1e9 *. t_word /. float_of_int (word_reps * vectors) in
      ( e.Circ.Catalog.name,
        N.Netlist.num_cells nl,
        scalar_ns,
        word_ns,
        scalar_ns /. Float.max 1e-9 word_ns ))
    Circ.Catalog.all

let simulate out =
  heading out
    (Printf.sprintf "Simulation throughput: scalar Sim vs %d-wide Simw"
       N.Simw.width);
  bpf out "  %-10s %8s %14s %14s %9s\n" "circuit" "cells" "scalar ns/vec"
    "word ns/vec" "speedup";
  List.iter
    (fun (name, cells, s, w, sp) ->
      bpf out "  %-10s %8d %14.1f %14.1f %8.1fx\n" name cells s w sp)
    (simulate_rows ())

(* ------------------------------------------------------------------ *)
(* json: machine-readable perf trajectory (BENCH_6.json)               *)
(* ------------------------------------------------------------------ *)

module J = Shell_util.Jsonw
module Obs = Shell_util.Obs

(* CPU-bound filler for the pool's synthetic speedup probe *)
let spin_task i =
  let acc = ref (float_of_int i) in
  for k = 1 to 400_000 do
    acc := !acc +. sin (float_of_int k *. 1e-3)
  done;
  !acc

(* Word-path workload for the stable sim-counter contract: a fixed
   batch of Equiv checks plus packed Simw steps per catalog circuit,
   fanned out over the pool. The stable-only snapshot (sim_vectors /
   sim_words / sim_cells_evaluated and friends) is a pure function of
   the work submitted, so it must be byte-identical at any job count. *)
let sim_counter_snapshot jobs =
  Obs.reset ();
  let _ =
    Pool.map ~jobs
      (fun (e : Circ.Catalog.entry) ->
        let nl = e.Circ.Catalog.netlist () in
        (match N.Equiv.check ~vectors:128 nl nl with
        | N.Equiv.Equivalent -> ()
        | N.Equiv.Counterexample _ -> assert false);
        let simw = N.Simw.create nl in
        let n_in = List.length (N.Netlist.inputs nl) in
        let rng = Shell_util.Rng.create 0x6d1 in
        let packed =
          Shell_util.Rng.vectors_packed rng ~vectors:(4 * N.Simw.width)
            ~bits:n_in
        in
        Array.iter (fun w -> ignore (N.Simw.step simw w)) packed)
      (Array.of_list Circ.Catalog.all)
  in
  Obs.json ~stable_only:true (Obs.snapshot ())

let json ~dir () =
  let jn = Pool.default_jobs () in
  printf "writing BENCH_6.json (jobs=%d)...\n%!" jn;
  (* table4-fast: the acceptance workload — timed at jobs=1 and jobs=N,
     outputs compared byte for byte *)
  let s1, t4_j1 =
    Pool.set_default_jobs 1;
    time_wall (fun () -> with_output (table4 ~attack:false))
  in
  let sn, t4_jn =
    Pool.set_default_jobs jn;
    time_wall (fun () -> with_output (table4 ~attack:false))
  in
  let identical = String.equal s1 sn in
  (* synthetic pool probe: pure CPU tasks, no flow noise *)
  let spin_input = Array.init 32 (fun i -> i) in
  let _, spin_j1 =
    time_wall (fun () -> ignore (Pool.map ~jobs:1 spin_task spin_input))
  in
  let _, spin_jn =
    time_wall (fun () -> ignore (Pool.map ~jobs:jn spin_task spin_input))
  in
  (* per-table wall times at jobs=N (attack-free sections only, so the
     numbers track compute, not SAT-budget luck) *)
  let sections =
    [
      ("table1", table1);
      ("table5", table5);
      ("table6_fast", table6 ~attack:false);
      ("table7", table7);
      ("fig2", fig2);
      ("fig4", fig4);
    ]
  in
  let table_times =
    List.map
      (fun (name, f) ->
        let _, t = time_wall (fun () -> ignore (with_output f)) in
        (name, t))
      sections
  in
  let micro_results =
    let scratch = Buffer.create 4096 in
    micro scratch
  in
  (* scalar-vs-word engine throughput, per catalog circuit *)
  let sim_rows = simulate_rows () in
  (* per-pass trace + pass-level cache reuse on the FIR SheLL flow:
     cold (empty cache), warm (all upstream passes reused), and a
     cache-bypassing run whose summary must match byte for byte *)
  let fir =
    (List.find (fun e -> e.Circ.Catalog.name = "FIR") Circ.Catalog.all)
      .Circ.Catalog.netlist ()
  in
  let fir_cfg = C.Flow.shell_config () in
  C.Pipeline.clear_cache ();
  let o_cold, cold_s = time_wall (fun () -> C.Flow.run_staged fir_cfg fir) in
  let cold_hits, cold_misses = C.Pipeline.cache_stats () in
  let o_warm, warm_s = time_wall (fun () -> C.Flow.run_staged fir_cfg fir) in
  let all_hits, all_misses = C.Pipeline.cache_stats () in
  let o_nocache = C.Flow.run_staged ~use_cache:false fir_cfg fir in
  let summary o = Format.asprintf "%a" C.Flow.pp_summary (C.Flow.of_outcome o) in
  let cache_identical = String.equal (summary o_warm) (summary o_nocache) in
  (* obs: telemetry snapshot of a fixed instrumented workload — the
     FIR staged flow (cold cache) plus a short SAT attack on a
     MUX-routing-locked Xbar *)
  let obs_was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  C.Pipeline.clear_cache ();
  let _ = C.Flow.run_staged fir_cfg fir in
  let xnl = Circ.Axi_xbar.netlist ~channels:4 ~data_width:8 () in
  let xlk = L.Schemes.mux_routing ~width:16 xnl in
  let _ =
    A.Sat_attack.attack.A.Attack.run
      (unified_budget (`Dips 16, `Conflicts 50_000, `Seconds 5.0))
      (A.Attack.subject ~original:xnl xlk)
  in
  let obs_metrics = Obs.json (Obs.snapshot ()) in
  let obs_spans = Obs.spans_json (Obs.spans ()) in
  (* stable sim counters: same word-path workload at jobs=1 and jobs=4
     must yield byte-identical stable-only snapshots *)
  let simc_j1 = sim_counter_snapshot 1 in
  let simc_j4 = sim_counter_snapshot 4 in
  Obs.set_enabled obs_was;
  let doc =
    J.Obj
      [
        ("pr", J.Int 6);
        ("jobs", J.Int jn);
        ("recommended_domains", J.Int (Domain.recommended_domain_count ()));
        ( "table4_fast",
          J.Obj
            [
              ("jobs1_s", J.float ~dec:3 t4_j1);
              ("jobsN_s", J.float ~dec:3 t4_jn);
              ("speedup", J.float ~dec:2 (t4_j1 /. Float.max 1e-9 t4_jn));
              ("identical_output", J.Bool identical);
            ] );
        ( "pool_synthetic",
          J.Obj
            [
              ("tasks", J.Int (Array.length spin_input));
              ("jobs1_s", J.float ~dec:3 spin_j1);
              ("jobsN_s", J.float ~dec:3 spin_jn);
              ("speedup", J.float ~dec:2 (spin_j1 /. Float.max 1e-9 spin_jn));
            ] );
        ( "tables_s",
          J.Obj (List.map (fun (name, t) -> (name, J.float ~dec:3 t)) table_times)
        );
        ( "micro_ns_per_run",
          J.Obj
            (List.map (fun (name, est) -> (name, J.float ~dec:0 est))
               micro_results) );
        ( "simulate",
          J.Obj
            (List.map
               (fun (name, cells, scalar_ns, word_ns, speedup) ->
                 ( name,
                   J.Obj
                     [
                       ("cells", J.Int cells);
                       ("scalar_ns_per_vector", J.float ~dec:1 scalar_ns);
                       ("word_ns_per_vector", J.float ~dec:1 word_ns);
                       ("speedup", J.float ~dec:1 speedup);
                     ] ))
               sim_rows) );
        ( "sim_counters",
          J.Obj
            [
              ("workload", J.Str "catalog equiv checks + packed Simw steps");
              ( "identical_jobs1_vs_jobs4",
                J.Bool (String.equal (J.to_string simc_j1) (J.to_string simc_j4))
              );
              ("stable_snapshot", simc_j1);
            ] );
        ( "pass_cache",
          J.Obj
            [
              ("cold_s", J.float ~dec:4 cold_s);
              ("warm_s", J.float ~dec:4 warm_s);
              ("cold_hits", J.Int cold_hits);
              ("cold_misses", J.Int cold_misses);
              ("warm_hits", J.Int (all_hits - cold_hits));
              ("warm_misses", J.Int (all_misses - cold_misses));
              ("identical_summary", J.Bool cache_identical);
            ] );
        ("trace", Shell_util.Trace.json o_cold.C.Pipeline.trace);
        ( "obs",
          J.Obj
            [
              ("workload", J.Str "FIR staged flow + Xbar mux-routing attack");
              ("snapshot", obs_metrics);
              ("spans", obs_spans);
            ] );
      ]
  in
  let path = Shell_bench_history.Runner.write_json ~dir "BENCH_6.json" doc in
  printf "  table4-fast: %.2fs @ jobs=1, %.2fs @ jobs=%d (speedup %.2fx, identical=%b)\n"
    t4_j1 t4_jn jn
    (t4_j1 /. Float.max 1e-9 t4_jn)
    identical;
  printf "  pool synthetic: speedup %.2fx over %d tasks\n"
    (spin_j1 /. Float.max 1e-9 spin_jn)
    (Array.length spin_input);
  List.iter
    (fun (name, _, s, w, sp) ->
      printf "  simulate %-8s %.0f -> %.0f ns/vector (%.1fx)\n" name s w sp)
    sim_rows;
  printf "  sim counters jobs1-vs-jobs4 identical=%b\n"
    (String.equal (J.to_string simc_j1) (J.to_string simc_j4));
  printf "done: %s\n" path

(* ------------------------------------------------------------------ *)
(* battery: the per-scheme x per-attack resilience matrix (BENCH_7)    *)
(* ------------------------------------------------------------------ *)

(* Budgets here are cap-bound (DIP/conflict/vector ceilings bind before
   the generous wall clock), so every verdict — and the matrix JSON,
   which omits elapsed times — is byte-identical at any job count. *)
let battery ~dir () =
  let jn = Pool.default_jobs () in
  printf "writing BENCH_7.json (jobs=%d)...\n%!" jn;
  let subjects =
    List.concat_map
      (fun (cname, mk_nl) ->
        let schemes =
          [
            ("xor:8", fun nl -> L.Schemes.xor_keys ~seed:1 ~bits:8 nl);
            ("mux:8", fun nl -> L.Schemes.mux_routing ~seed:1 ~width:8 nl);
          ]
        in
        List.map
          (fun (sname, mk_lk) ->
            let nl : N.Netlist.t = mk_nl () in
            A.Attack.subject
              ~label:(cname ^ "/" ^ sname)
              ~original:nl (mk_lk nl))
          schemes)
      [
        ("xbar4", fun () -> Circ.Axi_xbar.netlist ~channels:4 ~data_width:8 ());
        ("soc", fun () -> Circ.Soc.netlist ());
      ]
  in
  let budget =
    A.Attack.budget ~max_dips:32 ~max_conflicts:60_000 ~time_limit:120.0
      ~vectors:256 ()
  in
  let m1, t1 = time_wall (fun () -> A.Battery.run ~jobs:1 ~budget subjects) in
  let mn, tn = time_wall (fun () -> A.Battery.run ~jobs:jn ~budget subjects) in
  let s1 = J.to_string ~indent:2 (A.Battery.matrix_json m1) in
  let sn = J.to_string ~indent:2 (A.Battery.matrix_json mn) in
  let identical = String.equal s1 sn in
  let doc =
    J.Obj
      [
        ("pr", J.Int 7);
        ("jobs", J.Int jn);
        ( "budget",
          J.Obj
            [
              ("max_dips", J.Int 32);
              ("max_conflicts", J.Int 60_000);
              ("time_limit_s", J.float ~dec:1 120.0);
              ("vectors", J.Int 256);
            ] );
        ("jobs1_s", J.float ~dec:3 t1);
        ("jobsN_s", J.float ~dec:3 tn);
        ("speedup", J.float ~dec:2 (t1 /. Float.max 1e-9 tn));
        ("identical_matrix", J.Bool identical);
        ("matrix", A.Battery.matrix_json mn);
      ]
  in
  let path = Shell_bench_history.Runner.write_json ~dir "BENCH_7.json" doc in
  printf "%s\n" (Format.asprintf "%a" A.Battery.pp_matrix mn);
  printf "  battery: %.2fs @ jobs=1, %.2fs @ jobs=%d (speedup %.2fx, identical=%b)\n"
    t1 tn jn
    (t1 /. Float.max 1e-9 tn)
    identical;
  printf "done: %s\n" path

(* ------------------------------------------------------------------ *)

let emit f =
  print_string (with_output f);
  flush stdout

(* ---- argv: one target plus history/output flags ---- *)

type opts = {
  which : string;
  dir : string;
  record : bool;
  check : bool;
  history : string option;
}

let usage () =
  prerr_endline
    "usage: main.exe [TARGET] [--out DIR] [--record] [--check] [--history FILE]";
  exit 1

let parse_argv () =
  let rec go o = function
    | [] -> o
    | "--out" :: dir :: tl -> go { o with dir } tl
    | "--record" :: tl -> go { o with record = true } tl
    | "--check" :: tl -> go { o with check = true } tl
    | "--history" :: f :: tl -> go { o with history = Some f } tl
    | ("--out" | "--history") :: [] -> usage ()
    | t :: tl when String.length t > 0 && t.[0] <> '-' -> go { o with which = t } tl
    | _ -> usage ()
  in
  go
    { which = "all"; dir = "."; record = false; check = false; history = None }
    (List.tl (Array.to_list Sys.argv))

(* The recordable targets run through the one record-producing runner;
   exit 1 on unexplained stable-counter drift when --check is on. *)
let run_recorded o =
  let module R = Shell_bench_history.Runner in
  match
    R.execute
      {
        R.default_opts with
        R.targets = [ o.which ];
        out_dir = o.dir;
        history = o.history;
        record = o.record;
        check = o.check;
      }
  with
  | Ok () -> ()
  | Error ds ->
      List.iter
        (fun d -> prerr_endline (Shell_util.Diag.to_string d))
        ds;
      exit 1

let () =
  let o = parse_argv () in
  let which = o.which in
  let t0 = Shell_util.Clock.now () in
  (match which with
  | "grid" | "attacks" -> run_recorded o
  | ("simulate" | "battery") when o.record || o.check -> run_recorded o
  | "table1" -> emit table1
  | "table4" -> emit (table4 ~attack:true)
  | "table4-fast" -> emit (table4 ~attack:false)
  | "table5" -> emit table5
  | "table6" -> emit (table6 ~attack:true)
  | "table6-fast" -> emit (table6 ~attack:false)
  | "table7" -> emit table7
  | "fig1" -> emit fig1
  | "fig2" -> emit fig2
  | "fig3" -> emit fig3
  | "fig4" -> emit fig4
  | "ablation" -> emit ablation
  | "explore" -> emit explore
  | "portfolio" -> emit portfolio
  | "micro" -> emit (fun out -> ignore (micro out))
  | "simulate" -> emit simulate
  | "json" -> json ~dir:o.dir ()
  | "battery" -> battery ~dir:o.dir ()
  | "all" ->
      emit table1;
      emit fig2;
      emit (table4 ~attack:true);
      emit table5;
      emit (table6 ~attack:true);
      emit table7;
      emit fig1;
      emit fig3;
      emit fig4;
      emit ablation;
      emit explore;
      emit portfolio;
      emit simulate;
      emit (fun out -> ignore (micro out))
  | other ->
      printf "unknown target %s\n" other;
      exit 1);
  (* stderr, so stdout stays byte-comparable across job counts *)
  Printf.eprintf "\ntotal bench time: %.1fs\n" (Shell_util.Clock.now () -. t0)
