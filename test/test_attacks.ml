(* Tests for shell_attacks: the SAT attack must break weak schemes and
   respect budgets; removal and proximity attacks behave as the threat
   model predicts. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module L = Shell_locking
module A = Shell_attacks
module Rng = Shell_util.Rng

let victim seed n_gates =
  let rng = Rng.create seed in
  let nl = N.create "victim" in
  let pool =
    ref (Array.init 8 (fun i -> N.add_input nl (Printf.sprintf "i%d" i)))
  in
  for _ = 1 to n_gates do
    let a = Rng.choice rng !pool and b = Rng.choice rng !pool in
    let kinds = [| Cell.And; Cell.Or; Cell.Xor; Cell.Nand; Cell.Nor |] in
    let out = N.gate nl kinds.(Rng.int rng 5) [| a; b |] in
    pool := Array.append !pool [| out |]
  done;
  for i = 0 to 4 do
    N.add_output nl (Printf.sprintf "o%d" i) (!pool).(Array.length !pool - 1 - i)
  done;
  nl

let attack ?cycle_blocks ?(max_dips = 128) ~original lk =
  A.Sat_attack.attack_locked ~max_dips ~max_conflicts:150_000 ~time_limit:20.0
    ?cycle_blocks ~original lk

let expect_broken name outcome =
  match outcome with
  | A.Sat_attack.Broken (_, _) -> ()
  | A.Sat_attack.Timeout st ->
      Alcotest.fail
        (Printf.sprintf "%s should break (dips=%d conflicts=%d)" name
           st.A.Sat_attack.dips st.A.Sat_attack.conflicts)

let test_breaks_xor () =
  let nl = victim 1 80 in
  expect_broken "xor" (attack ~original:nl (L.Schemes.xor_keys ~bits:16 nl))

let test_breaks_random_lut () =
  let nl = victim 2 80 in
  expect_broken "random-lut"
    (attack ~original:nl (L.Schemes.random_lut ~gates:6 nl))

let test_breaks_heuristic_lut () =
  let nl = victim 3 80 in
  expect_broken "lut-lock"
    (attack ~original:nl (L.Schemes.heuristic_lut ~gates:6 nl))

let test_breaks_mux_routing () =
  let nl = victim 4 80 in
  expect_broken "full-lock"
    (attack ~original:nl (L.Schemes.mux_routing ~width:8 nl))

let test_recovered_key_functional () =
  let nl = victim 5 60 in
  let lk = L.Schemes.xor_keys ~bits:10 nl in
  match attack ~original:nl lk with
  | A.Sat_attack.Broken (key, _) ->
      Alcotest.(check bool) "key unlocks" true
        (L.Locked.verify ~original:nl { lk with L.Locked.key = key })
  | A.Sat_attack.Timeout _ -> Alcotest.fail "should break"

let test_budget_timeout () =
  let nl = victim 6 80 in
  let lk = L.Schemes.mux_lut ~width:16 nl in
  match
    A.Sat_attack.attack_locked ~max_dips:1 ~max_conflicts:10 ~time_limit:0.001
      ~original:nl lk
  with
  | A.Sat_attack.Timeout _ -> ()
  | A.Sat_attack.Broken _ -> ()
(* a break within such a small budget is possible but unlikely; either
   way the call must return promptly *)

let test_attack_stats_populated () =
  let nl = victim 7 60 in
  let lk = L.Schemes.xor_keys ~bits:8 nl in
  match attack ~original:nl lk with
  | A.Sat_attack.Broken (_, st) ->
      Alcotest.(check int) "key bits" 8 st.A.Sat_attack.key_bits;
      Alcotest.(check bool) "c2v positive" true (st.A.Sat_attack.c2v > 0.0)
  | A.Sat_attack.Timeout _ -> Alcotest.fail "should break"

let test_sequential_attack () =
  (* scan-model attack on a sequential victim *)
  let nl = victim 8 40 in
  let extra = N.dff nl (List.hd (List.map snd (N.outputs nl))) in
  N.add_output nl "state" extra;
  let lk = L.Schemes.xor_keys ~bits:8 nl in
  expect_broken "sequential xor" (attack ~original:nl lk)

let test_miter_unsat_without_keys () =
  (* a locked netlist with zero keys: find_dip must be `Unsat at once *)
  let nl = victim 9 30 in
  let m = A.Miter.create nl in
  (match A.Miter.find_dip m with
  | `Unsat -> ()
  | `Dip _ | `Budget -> Alcotest.fail "no keys, no DIP");
  Alcotest.(check int) "no keys" 0 (A.Miter.num_keys m)

let test_cycle_blocks_constrain () =
  (* blocking clauses must exclude the blocked patterns from both key
     vectors: craft one key bit and block value=true *)
  let nl = N.create "cb" in
  let a = N.add_input nl "a" in
  let k = N.add_key nl "k" in
  N.add_output nl "y" (N.xor_ nl a k);
  let m = A.Miter.create ~cycle_blocks:[ ([| 0 |], [| true |]) ] nl in
  (* with k=true excluded for both copies, no distinguishing input *)
  match A.Miter.find_dip m with
  | `Unsat -> ()
  | `Dip _ | `Budget -> Alcotest.fail "blocked keyspace should collapse"

let test_removal_true_guess () =
  let nl = victim 10 50 in
  let oracle = A.Sat_attack.oracle_of_netlist nl in
  let v = A.Removal.attempt ~oracle nl in
  Alcotest.(check bool) "true guess matches" true v.A.Removal.matched

let test_removal_wrong_guess () =
  let nl = victim 11 50 in
  let other = victim 12 50 in
  let oracle = A.Sat_attack.oracle_of_netlist nl in
  let v = A.Removal.attempt ~oracle other in
  Alcotest.(check bool) "wrong guess caught" false v.A.Removal.matched;
  Alcotest.(check bool) "counterexample reported" true
    (v.A.Removal.first_mismatch <> None)

let test_removal_word_oracle () =
  (* the word-level oracle must produce verdicts identical to the
     scalar oracle's on both matching and mismatching candidates *)
  let nl = victim 10 50 in
  let other = victim 12 50 in
  let oracle = A.Sat_attack.oracle_of_netlist nl in
  let oracle_w = A.Sat_attack.word_oracle_of_netlist nl in
  let vt_s = A.Removal.attempt ~oracle nl in
  let vt_w = A.Removal.attempt ~oracle ~oracle_w nl in
  Alcotest.(check bool) "true guess matches (word)" true vt_w.A.Removal.matched;
  Alcotest.(check int) "true guess vectors_tried identical"
    vt_s.A.Removal.vectors_tried vt_w.A.Removal.vectors_tried;
  let vw_s = A.Removal.attempt ~oracle other in
  let vw_w = A.Removal.attempt ~oracle ~oracle_w other in
  Alcotest.(check bool) "wrong guess caught (word)" false vw_w.A.Removal.matched;
  Alcotest.(check int) "wrong guess vectors_tried identical"
    vw_s.A.Removal.vectors_tried vw_w.A.Removal.vectors_tried;
  match (vw_s.A.Removal.first_mismatch, vw_w.A.Removal.first_mismatch) with
  | Some a, Some b ->
      Alcotest.(check (array bool)) "first mismatch identical" a b
  | _ -> Alcotest.fail "both paths must report a counterexample"

let test_proximity_reports () =
  let nl = victim 13 100 in
  let lk = L.Schemes.mux_routing ~width:8 nl in
  let r = A.Proximity.run lk in
  Alcotest.(check bool) "attacked some bits" true (r.A.Proximity.attacked_bits > 0);
  Alcotest.(check bool) "accuracy in range" true
    (r.A.Proximity.accuracy >= 0.0 && r.A.Proximity.accuracy <= 1.0)

let test_proximity_no_muxes () =
  let nl = victim 14 40 in
  let lk = L.Schemes.xor_keys ~bits:6 nl in
  let r = A.Proximity.run lk in
  Alcotest.(check int) "xor keys not attackable" 0 r.A.Proximity.attacked_bits

let test_link_prediction_reports () =
  let nl = victim 30 120 in
  let lk = L.Schemes.mux_routing ~width:8 nl in
  let r = A.Proximity.predict_links lk in
  Alcotest.(check bool) "finds boundary links" true (r.A.Proximity.links > 0);
  Alcotest.(check bool) "accuracy in range" true
    (r.A.Proximity.link_accuracy >= 0.0 && r.A.Proximity.link_accuracy <= 1.0);
  (* cyclic locked netlists are skipped, not crashed *)
  let mapped = fst (Shell_synth.Lut_map.map ~k:4 (victim 31 60)) in
  let e = Shell_fabric.Emit.emit ~style:Shell_fabric.Style.Openfpga mapped in
  let cyclic_lk =
    {
      L.Locked.locked = e.Shell_fabric.Emit.locked;
      key = Shell_fabric.Bitstream.bits e.Shell_fabric.Emit.bitstream;
      scheme = "efpga";
    }
  in
  let r2 = A.Proximity.predict_links cyclic_lk in
  Alcotest.(check int) "cyclic skipped" 0 r2.A.Proximity.links

(* ---------------- unified interface: parity with legacy ----------- *)

let sat_budget =
  A.Attack.budget ~max_dips:128 ~max_conflicts:150_000 ~time_limit:20.0 ()

let test_unified_sat_parity () =
  (* the unified "sat" attack must reproduce the legacy outcome verbatim:
     same verdict kind, same key, same dips/conflicts *)
  let check seed mk =
    let nl = victim seed 80 in
    let lk = mk nl in
    let legacy = attack ~original:nl lk in
    let unified =
      A.Sat_attack.attack.A.Attack.run sat_budget
        (A.Attack.subject ~original:nl lk)
    in
    match (legacy, unified) with
    | A.Sat_attack.Broken (k1, st), A.Attack.Broken (k2, ust) ->
        Alcotest.(check (array bool)) "same key" k1 k2;
        Alcotest.(check int) "dips = iterations" st.A.Sat_attack.dips
          ust.A.Attack.iterations;
        Alcotest.(check int) "conflicts" st.A.Sat_attack.conflicts
          ust.A.Attack.conflicts;
        Alcotest.(check int) "recovered = key bits" ust.A.Attack.key_bits
          ust.A.Attack.recovered_bits
    | A.Sat_attack.Timeout st, A.Attack.Resilient ust ->
        Alcotest.(check int) "dips = iterations" st.A.Sat_attack.dips
          ust.A.Attack.iterations
    | _ -> Alcotest.fail "legacy and unified verdicts disagree"
  in
  check 1 (L.Schemes.xor_keys ~bits:16);
  check 4 (L.Schemes.mux_routing ~width:8)

let test_unified_removal_parity () =
  (* unified "removal" is Broken exactly when one of its two constant-key
     specializations passes the legacy attempt AND verifies *)
  let nl = victim 40 60 in
  let lk = L.Schemes.mux_routing ~width:8 nl in
  let oracle = A.Sat_attack.oracle_of_netlist nl in
  let expected =
    List.exists
      (fun key ->
        let cand = L.Locked.apply_key lk key in
        (not (N.has_comb_cycle cand))
        && (A.Removal.attempt ~oracle cand).A.Removal.matched
        && L.Locked.verify ~original:nl { lk with L.Locked.key })
      [
        Array.make (L.Locked.key_bits lk) false;
        Array.make (L.Locked.key_bits lk) true;
      ]
  in
  let unified =
    A.Removal.attack.A.Attack.run (A.Attack.budget ())
      (A.Attack.subject ~original:nl lk)
  in
  let got = match unified with A.Attack.Broken _ -> true | _ -> false in
  Alcotest.(check bool) "removal verdict matches legacy attempt" expected got

let test_unified_proximity_parity () =
  (* unified "proximity" must report the legacy run's counters in its
     stats detail *)
  let nl = victim 13 100 in
  let lk = L.Schemes.mux_routing ~width:8 nl in
  let r = A.Proximity.run lk in
  let unified =
    A.Proximity.attack.A.Attack.run (A.Attack.budget ())
      (A.Attack.subject ~original:nl lk)
  in
  let st =
    match unified with
    | A.Attack.Broken (_, st) | A.Attack.Resilient st -> st
    | A.Attack.Inapplicable why -> Alcotest.fail ("inapplicable: " ^ why)
  in
  Alcotest.(check (option int))
    "attacked bits" (Some r.A.Proximity.attacked_bits)
    (List.assoc_opt "attacked_bits" st.A.Attack.detail);
  Alcotest.(check (option int))
    "correct bits" (Some r.A.Proximity.correct)
    (List.assoc_opt "correct" st.A.Attack.detail)

let test_unified_portfolio_parity () =
  (* the battery's "portfolio" wrapper = deterministic race + best *)
  let nl = victim 41 60 in
  let lk = L.Schemes.xor_keys ~bits:10 nl in
  let p =
    A.Portfolio.run ~stop_on_first_broken:false ~max_dips:128
      ~max_conflicts:150_000 ~time_limit:20.0 ~original:nl lk.L.Locked.locked
  in
  let unified =
    A.Portfolio.attack.A.Attack.run sat_budget
      (A.Attack.subject ~original:nl lk)
  in
  match (A.Portfolio.best p, unified) with
  | A.Sat_attack.Broken (k1, _), A.Attack.Broken (k2, ust) ->
      Alcotest.(check (array bool)) "same key" k1 k2;
      Alcotest.(check (option int))
        "winner index in detail"
        (Some (match p.A.Portfolio.winner with Some i -> i | None -> -1))
        (List.assoc_opt "winner" ust.A.Attack.detail)
  | A.Sat_attack.Timeout _, A.Attack.Resilient _ -> ()
  | _ -> Alcotest.fail "portfolio verdicts disagree"

(* ---------------- new attacks ---------------- *)

let test_appsat_breaks_xor () =
  (* acceptance: on a low-key-bit scheme the exact attack breaks, the
     approximate attack must break it too *)
  let nl = victim 42 80 in
  let lk = L.Schemes.xor_keys ~bits:8 nl in
  expect_broken "exact sat on xor:8" (attack ~original:nl lk);
  match
    A.Appsat.attack.A.Attack.run sat_budget (A.Attack.subject ~original:nl lk)
  with
  | A.Attack.Broken (key, _) ->
      Alcotest.(check bool) "appsat key unlocks" true
        (L.Locked.verify ~original:nl { lk with L.Locked.key = key })
  | A.Attack.Resilient _ -> Alcotest.fail "appsat should break xor:8"
  | A.Attack.Inapplicable why -> Alcotest.fail ("inapplicable: " ^ why)

let test_brute_force_small_key () =
  let nl = victim 43 60 in
  let lk = L.Schemes.xor_keys ~bits:8 nl in
  match
    A.Brute_force.attack.A.Attack.run (A.Attack.budget ())
      (A.Attack.subject ~original:nl lk)
  with
  | A.Attack.Broken (key, _) ->
      Alcotest.(check bool) "brute key unlocks" true
        (L.Locked.verify ~original:nl { lk with L.Locked.key = key })
  | _ -> Alcotest.fail "brute force should break an 8-bit key"

let test_brute_force_wide_key_inapplicable () =
  let nl = victim 44 80 in
  let lk = L.Schemes.xor_keys ~bits:24 nl in
  match
    A.Brute_force.attack.A.Attack.run (A.Attack.budget ())
      (A.Attack.subject ~original:nl lk)
  with
  | A.Attack.Inapplicable _ -> ()
  | _ -> Alcotest.fail "24-bit key must be out of brute-force range"

let test_sensitize_breaks_xor () =
  let nl = victim 45 80 in
  let lk = L.Schemes.xor_keys ~bits:8 nl in
  match
    A.Sensitize.attack.A.Attack.run (A.Attack.budget ())
      (A.Attack.subject ~original:nl lk)
  with
  | A.Attack.Broken (key, _) ->
      Alcotest.(check bool) "sensitize key unlocks" true
        (L.Locked.verify ~original:nl { lk with L.Locked.key = key })
  | _ -> Alcotest.fail "sensitization should break xor keying"

let test_structural_free_bits () =
  (* acceptance fixture: one dead key bit (reaches no output) and one
     constant-blocked bit (wired through a const-0 AND) — the structural
     attack must prove both free and recover a working key *)
  let original = N.create "fix" in
  let a = N.add_input original "a" in
  let b = N.add_input original "b" in
  N.add_output original "y" (N.and_ original a b);
  let locked = N.create "fix" in
  let a = N.add_input locked "a" in
  let b = N.add_input locked "b" in
  let k0 = N.add_key locked "k0" in
  let k1 = N.add_key locked "k1" in
  ignore (N.and_ locked a k0) (* dead: dangling gate, no output cone *);
  let blocked = N.and_ locked k1 (N.const locked false) in
  N.add_output locked "y" (N.or_ locked (N.and_ locked a b) blocked);
  let lk = { L.Locked.locked; key = [| true; true |]; scheme = "fixture" } in
  assert (L.Locked.verify ~original lk);
  match
    A.Structural.attack.A.Attack.run (A.Attack.budget ())
      (A.Attack.subject ~original lk)
  with
  | A.Attack.Broken (key, st) ->
      Alcotest.(check int) "both bits recovered" 2 st.A.Attack.recovered_bits;
      Alcotest.(check (option int)) "one dead" (Some 1)
        (List.assoc_opt "dead" st.A.Attack.detail);
      Alcotest.(check (option int)) "one blocked" (Some 1)
        (List.assoc_opt "blocked" st.A.Attack.detail);
      Alcotest.(check bool) "recovered key unlocks" true
        (L.Locked.verify ~original { lk with L.Locked.key = key })
  | _ -> Alcotest.fail "free key bits should break the fixture"

let test_structural_live_resilient () =
  let nl = victim 46 60 in
  let lk = L.Schemes.xor_keys ~bits:6 nl in
  match
    A.Structural.attack.A.Attack.run (A.Attack.budget ())
      (A.Attack.subject ~original:nl lk)
  with
  | A.Attack.Resilient st ->
      (* some bits may fall on dangling nets (dead), but at least one
         is live — so the attack must NOT declare the key free *)
      Alcotest.(check bool) "some bits live" true
        (st.A.Attack.recovered_bits < st.A.Attack.key_bits);
      Alcotest.(check (option int)) "live = total - free"
        (Some (st.A.Attack.key_bits - st.A.Attack.recovered_bits))
        (List.assoc_opt "live" st.A.Attack.detail)
  | _ -> Alcotest.fail "live xor keys must not be declared free"

(* ---------------- oracle-less: redundancy + scope ---------------- *)

(* Known-breakable XOR-locked fixture: the key is XORed into the
   datapath (k0 through an XNOR, correct 1; k1 through an XOR, correct
   0), but each bit also feeds a side gadget (s0 = a AND k0,
   s1 = b OR k1) whose wrong pinning degenerates to a constant. The
   pure XOR part leaks nothing to constant propagation; the gadgets
   decide every bit, so both oracle-less attacks must assemble the
   exact key and verify it. *)
let xor_gadget_fixture () =
  let original = N.create "xg" in
  let a = N.add_input original "a" in
  let b = N.add_input original "b" in
  let c = N.add_input original "c" in
  N.add_output original "y" (N.xor_ original (N.and_ original a b) c);
  N.add_output original "s0" a;
  N.add_output original "s1" b;
  let locked = N.create "xg" in
  let a = N.add_input locked "a" in
  let b = N.add_input locked "b" in
  let c = N.add_input locked "c" in
  let k0 = N.add_key locked "k0" in
  let k1 = N.add_key locked "k1" in
  let t = N.xor_ locked (N.and_ locked a b) c in
  N.add_output locked "y" (N.xor_ locked (N.xnor_ locked t k0) k1);
  N.add_output locked "s0" (N.and_ locked a k0);
  N.add_output locked "s1" (N.or_ locked b k1);
  let lk =
    { L.Locked.locked; key = [| true; false |]; scheme = "xor-gadget" }
  in
  assert (L.Locked.verify ~original lk);
  (original, lk)

(* Resilient mux-locked fixture: each key bit swaps a pair of shared,
   multiply-read wires between two outputs. Pinning a select either
   way masks one arm per mux, but every wire stays observable through
   the sibling mux, so no live cell dies and no constant is proven:
   both pinnings score identically and every bit stays undecided. The
   correct key is deliberately not all-false, so a blind default guess
   could never pass verification either. *)
let mux_swap_fixture () =
  let original = N.create "ms" in
  let a = N.add_input original "a" in
  let b = N.add_input original "b" in
  N.add_output original "y0" (N.and_ original a b);
  N.add_output original "y1" (N.or_ original a b);
  N.add_output original "y2" (N.xor_ original a b);
  N.add_output original "y3" (N.xnor_ original a b);
  let locked = N.create "ms" in
  let a = N.add_input locked "a" in
  let b = N.add_input locked "b" in
  let k0 = N.add_key locked "k0" in
  let k1 = N.add_key locked "k1" in
  let w_and = N.and_ locked a b in
  let w_or = N.or_ locked a b in
  let w_xor = N.xor_ locked a b in
  let w_xnor = N.xnor_ locked a b in
  N.add_output locked "y0" (N.mux2 locked ~sel:k0 ~a:w_and ~b:w_or);
  N.add_output locked "y1" (N.mux2 locked ~sel:k0 ~a:w_or ~b:w_and);
  (* swapped pair: correct k1 = 1 *)
  N.add_output locked "y2" (N.mux2 locked ~sel:k1 ~a:w_xnor ~b:w_xor);
  N.add_output locked "y3" (N.mux2 locked ~sel:k1 ~a:w_xor ~b:w_xnor);
  let lk =
    { L.Locked.locked; key = [| false; true |]; scheme = "mux-swap" }
  in
  assert (L.Locked.verify ~original lk);
  (original, lk)

let run_oracle_less name (original, lk) =
  match A.Battery.find name with
  | None -> Alcotest.fail (name ^ " not registered")
  | Some atk ->
      atk.A.Attack.run (A.Attack.budget ()) (A.Attack.subject ~original lk)

let check_breaks name fixture =
  match run_oracle_less name fixture with
  | A.Attack.Broken (key, st) ->
      let _, lk = fixture in
      Alcotest.(check (array bool)) (name ^ " exact key") lk.L.Locked.key key;
      Alcotest.(check int)
        (name ^ " all bits decided")
        st.A.Attack.key_bits st.A.Attack.recovered_bits
  | A.Attack.Resilient st ->
      Alcotest.fail
        (Printf.sprintf "%s should break the gadget fixture (decided=%d)" name
           st.A.Attack.recovered_bits)
  | A.Attack.Inapplicable why -> Alcotest.fail ("inapplicable: " ^ why)

let check_resilient name fixture =
  match run_oracle_less name fixture with
  | A.Attack.Resilient st ->
      Alcotest.(check (option int)) (name ^ " nothing decided") (Some 0)
        (List.assoc_opt "decided" st.A.Attack.detail);
      (* resilient by silence, not by a failed gamble *)
      Alcotest.(check (option int)) (name ^ " no failed verify") None
        (List.assoc_opt "verify_failed" st.A.Attack.detail)
  | A.Attack.Broken _ -> Alcotest.fail (name ^ " must not break the mux swap")
  | A.Attack.Inapplicable why -> Alcotest.fail ("inapplicable: " ^ why)

let test_redundancy_breaks_gadget () =
  check_breaks "redundancy" (xor_gadget_fixture ())

let test_redundancy_resilient_mux () =
  check_resilient "redundancy" (mux_swap_fixture ())

let test_scope_breaks_gadget () = check_breaks "scope" (xor_gadget_fixture ())
let test_scope_resilient_mux () = check_resilient "scope" (mux_swap_fixture ())

let test_scope_efpga_bitstream_keys () =
  (* the scoring must see through Config_latch cells: an eFPGA-emitted
     locked netlist hides its key behind the configuration plane, and a
     scope run on it must still examine every bit (and stay quiet on
     the symmetric LUT/routing planes rather than crash or break) *)
  let mapped = fst (Shell_synth.Lut_map.map ~k:4 (victim 53 50)) in
  let e = Shell_fabric.Emit.emit ~style:Shell_fabric.Style.Fabulous_std mapped in
  let lk =
    {
      L.Locked.locked = e.Shell_fabric.Emit.locked;
      key = Shell_fabric.Bitstream.bits e.Shell_fabric.Emit.bitstream;
      scheme = "efpga";
    }
  in
  match
    (A.Scope.attack).A.Attack.run (A.Attack.budget ())
      (A.Attack.subject ~original:mapped lk)
  with
  | A.Attack.Inapplicable why -> Alcotest.fail ("inapplicable: " ^ why)
  | A.Attack.Broken (key, _) ->
      Alcotest.(check bool) "a broken verdict must be verified" true
        (L.Locked.verify ~original:mapped { lk with L.Locked.key = key })
  | A.Attack.Resilient st ->
      Alcotest.(check int) "every bit examined"
        (L.Locked.key_bits lk) st.A.Attack.iterations

(* ---------------- battery engine ---------------- *)

let test_battery_registry () =
  Alcotest.(check bool) "sat registered" true (A.Battery.find "sat" <> None);
  Alcotest.(check bool) "unknown not found" true
    (A.Battery.find "nope" = None);
  let names = A.Battery.names () in
  Alcotest.(check int) "ten attacks" 10 (List.length names);
  Alcotest.(check bool) "redundancy registered" true
    (List.mem "redundancy" names);
  Alcotest.(check bool) "scope registered" true (List.mem "scope" names);
  Alcotest.(check bool) "names unique" true
    (List.length (List.sort_uniq compare names) = List.length names)

let test_battery_jobs_identical () =
  (* the matrix JSON must be byte-identical at any job count (cheap,
     solver-free attacks keep the test fast) *)
  let subjects =
    List.map
      (fun (seed, mk) ->
        let nl = victim seed 60 in
        A.Attack.subject ~original:nl (mk nl))
      [
        (47, fun nl -> L.Schemes.xor_keys ~bits:8 nl);
        (48, fun nl -> L.Schemes.mux_routing ~width:8 nl);
      ]
  in
  let attacks =
    List.filter_map A.Battery.find
      [
        "brute";
        "sensitize";
        "structural";
        "redundancy";
        "scope";
        "removal";
        "proximity";
      ]
  in
  let budget = A.Attack.budget () in
  let render jobs =
    Shell_util.Jsonw.to_string ~indent:2
      (A.Battery.matrix_json (A.Battery.run ~jobs ~attacks ~budget subjects))
  in
  Alcotest.(check string) "jobs 1 = jobs 4" (render 1) (render 4)

let test_battery_rows_and_cells () =
  let nl = victim 49 50 in
  let lk = L.Schemes.xor_keys ~bits:4 nl in
  let attacks = List.filter_map A.Battery.find [ "brute"; "structural" ] in
  let m =
    A.Battery.run ~jobs:1 ~attacks ~budget:(A.Attack.budget ())
      [ A.Attack.subject ~label:"v49" ~original:nl lk ]
  in
  Alcotest.(check (list string)) "column order" [ "brute"; "structural" ]
    m.A.Battery.attacks;
  match m.A.Battery.rows with
  | [ row ] ->
      Alcotest.(check string) "label" "v49" row.A.Battery.subject;
      Alcotest.(check int) "key bits" 4 row.A.Battery.key_bits;
      Alcotest.(check (list string)) "cells in registry order"
        [ "brute"; "structural" ]
        (List.map (fun (c : A.Battery.cell) -> c.A.Battery.attack)
           row.A.Battery.cells)
  | rows ->
      Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length rows))

(* ---------------- portfolio cancellation ---------------- *)

let test_portfolio_external_stop () =
  (* an external should_stop must cancel every racer before any DIP *)
  let nl = victim 50 80 in
  let lk = L.Schemes.xor_keys ~bits:12 nl in
  let p =
    A.Portfolio.run ~max_dips:128 ~max_conflicts:150_000 ~time_limit:20.0
      ~should_stop:(fun () -> true)
      ~original:nl lk.L.Locked.locked
  in
  Alcotest.(check bool) "no winner" true (p.A.Portfolio.winner = None);
  Array.iter
    (fun (_, o) ->
      match o with
      | A.Sat_attack.Timeout st ->
          Alcotest.(check int) "no dips" 0 st.A.Sat_attack.dips
      | A.Sat_attack.Broken _ -> Alcotest.fail "stopped racer cannot break")
    p.A.Portfolio.outcomes

let test_portfolio_first_break_cancels () =
  (* with stop_on_first_broken, a break must surface as the winner and
     the call must return without waiting for losers' full budgets *)
  let nl = victim 51 60 in
  let lk = L.Schemes.xor_keys ~bits:10 nl in
  let p =
    A.Portfolio.run ~stop_on_first_broken:true ~max_dips:128
      ~max_conflicts:150_000 ~time_limit:20.0 ~original:nl lk.L.Locked.locked
  in
  (match p.A.Portfolio.winner with
  | Some i -> (
      match snd p.A.Portfolio.outcomes.(i) with
      | A.Sat_attack.Broken (key, _) ->
          Alcotest.(check bool) "winner key unlocks" true
            (L.Locked.verify ~original:nl { lk with L.Locked.key = key })
      | A.Sat_attack.Timeout _ -> Alcotest.fail "winner must have broken")
  | None -> Alcotest.fail "xor:10 should fall to some racer")

(* ---------------- miter cycle blocks, both key vectors ------------- *)

let test_cycle_blocks_exclude_both_vectors () =
  (* y = a xor (k0 & k1): without blocks the miter distinguishes key 11
     from key 00. Blocking pattern (k0,k1)=(1,1) must remove it from
     BOTH key vectors — a single-sided encoding would still find the
     DIP with copy A at 11 and copy B at 00 *)
  let nl = N.create "cb2" in
  let a = N.add_input nl "a" in
  let k0 = N.add_key nl "k0" in
  let k1 = N.add_key nl "k1" in
  N.add_output nl "y" (N.xor_ nl a (N.and_ nl k0 k1));
  (match A.Miter.find_dip (A.Miter.create nl) with
  | `Dip _ -> ()
  | `Unsat | `Budget -> Alcotest.fail "unblocked miter must find a DIP");
  let m = A.Miter.create ~cycle_blocks:[ ([| 0; 1 |], [| true; true |]) ] nl in
  (match A.Miter.find_dip m with
  | `Unsat -> ()
  | `Dip _ | `Budget -> Alcotest.fail "blocked pattern leaked into a key copy");
  match A.Miter.extract_key m with
  | Some key ->
      Alcotest.(check bool) "extracted key avoids the blocked pattern" false
        (key.(0) && key.(1))
  | None -> Alcotest.fail "a consistent key must exist"

let test_metrics () =
  let nl = victim 20 60 in
  let lk = L.Schemes.random_lut ~gates:5 nl in
  let m = A.Metrics.of_locked lk.L.Locked.locked in
  Alcotest.(check int) "key bits" (L.Locked.key_bits lk) m.A.Metrics.key_bits;
  Alcotest.(check bool) "c2v sane" true
    (m.A.Metrics.c2v > 1.0 && m.A.Metrics.c2v < 10.0);
  Alcotest.(check int) "no cycle blocks" 0 m.A.Metrics.cycle_blocked_patterns

let test_metrics_bitstream_split () =
  let mapped =
    let nl = victim 21 50 in
    fst (Shell_synth.Lut_map.map ~k:4 nl)
  in
  let e = Shell_fabric.Emit.emit ~style:Shell_fabric.Style.Fabulous_std mapped in
  let m =
    A.Metrics.of_locked
      ~bitstream:e.Shell_fabric.Emit.bitstream
      e.Shell_fabric.Emit.locked
  in
  Alcotest.(check int) "split covers all bits" m.A.Metrics.key_bits
    (m.A.Metrics.table_bits + m.A.Metrics.routing_bits);
  Alcotest.(check bool) "has table bits" true (m.A.Metrics.table_bits > 0);
  Alcotest.(check bool) "has routing bits" true (m.A.Metrics.routing_bits > 0)

let suite =
  [
    ("breaks xor", `Quick, test_breaks_xor);
    ("breaks random lut", `Quick, test_breaks_random_lut);
    ("breaks heuristic lut", `Quick, test_breaks_heuristic_lut);
    ("breaks mux routing", `Quick, test_breaks_mux_routing);
    ("recovered key functional", `Quick, test_recovered_key_functional);
    ("budget timeout", `Quick, test_budget_timeout);
    ("attack stats", `Quick, test_attack_stats_populated);
    ("sequential attack", `Quick, test_sequential_attack);
    ("miter without keys", `Quick, test_miter_unsat_without_keys);
    ("cycle blocks constrain", `Quick, test_cycle_blocks_constrain);
    ("removal true guess", `Quick, test_removal_true_guess);
    ("removal wrong guess", `Quick, test_removal_wrong_guess);
    ("removal word oracle identical", `Quick, test_removal_word_oracle);
    ("proximity reports", `Quick, test_proximity_reports);
    ("proximity ignores non-mux keys", `Quick, test_proximity_no_muxes);
    ("link prediction reports", `Quick, test_link_prediction_reports);
    ("metrics", `Quick, test_metrics);
    ("metrics bitstream split", `Quick, test_metrics_bitstream_split);
    ("unified sat parity", `Quick, test_unified_sat_parity);
    ("unified removal parity", `Quick, test_unified_removal_parity);
    ("unified proximity parity", `Quick, test_unified_proximity_parity);
    ("unified portfolio parity", `Quick, test_unified_portfolio_parity);
    ("appsat breaks xor", `Quick, test_appsat_breaks_xor);
    ("brute force small key", `Quick, test_brute_force_small_key);
    ("brute force wide key n/a", `Quick, test_brute_force_wide_key_inapplicable);
    ("sensitize breaks xor", `Quick, test_sensitize_breaks_xor);
    ("structural free bits", `Quick, test_structural_free_bits);
    ("structural live resilient", `Quick, test_structural_live_resilient);
    ("redundancy breaks gadget", `Quick, test_redundancy_breaks_gadget);
    ("redundancy resilient mux", `Quick, test_redundancy_resilient_mux);
    ("scope breaks gadget", `Quick, test_scope_breaks_gadget);
    ("scope resilient mux", `Quick, test_scope_resilient_mux);
    ("scope efpga bitstream keys", `Quick, test_scope_efpga_bitstream_keys);
    ("battery registry", `Quick, test_battery_registry);
    ("battery jobs identical", `Quick, test_battery_jobs_identical);
    ("battery rows and cells", `Quick, test_battery_rows_and_cells);
    ("portfolio external stop", `Quick, test_portfolio_external_stop);
    ("portfolio first break cancels", `Quick, test_portfolio_first_break_cancels);
    ("cycle blocks both vectors", `Quick, test_cycle_blocks_exclude_both_vectors);
  ]
