(* Tests for shell_attacks: the SAT attack must break weak schemes and
   respect budgets; removal and proximity attacks behave as the threat
   model predicts. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module L = Shell_locking
module A = Shell_attacks
module Rng = Shell_util.Rng

let victim seed n_gates =
  let rng = Rng.create seed in
  let nl = N.create "victim" in
  let pool =
    ref (Array.init 8 (fun i -> N.add_input nl (Printf.sprintf "i%d" i)))
  in
  for _ = 1 to n_gates do
    let a = Rng.choice rng !pool and b = Rng.choice rng !pool in
    let kinds = [| Cell.And; Cell.Or; Cell.Xor; Cell.Nand; Cell.Nor |] in
    let out = N.gate nl kinds.(Rng.int rng 5) [| a; b |] in
    pool := Array.append !pool [| out |]
  done;
  for i = 0 to 4 do
    N.add_output nl (Printf.sprintf "o%d" i) (!pool).(Array.length !pool - 1 - i)
  done;
  nl

let attack ?cycle_blocks ?(max_dips = 128) ~original lk =
  A.Sat_attack.attack_locked ~max_dips ~max_conflicts:150_000 ~time_limit:20.0
    ?cycle_blocks ~original lk

let expect_broken name outcome =
  match outcome with
  | A.Sat_attack.Broken (_, _) -> ()
  | A.Sat_attack.Timeout st ->
      Alcotest.fail
        (Printf.sprintf "%s should break (dips=%d conflicts=%d)" name
           st.A.Sat_attack.dips st.A.Sat_attack.conflicts)

let test_breaks_xor () =
  let nl = victim 1 80 in
  expect_broken "xor" (attack ~original:nl (L.Schemes.xor_keys ~bits:16 nl))

let test_breaks_random_lut () =
  let nl = victim 2 80 in
  expect_broken "random-lut"
    (attack ~original:nl (L.Schemes.random_lut ~gates:6 nl))

let test_breaks_heuristic_lut () =
  let nl = victim 3 80 in
  expect_broken "lut-lock"
    (attack ~original:nl (L.Schemes.heuristic_lut ~gates:6 nl))

let test_breaks_mux_routing () =
  let nl = victim 4 80 in
  expect_broken "full-lock"
    (attack ~original:nl (L.Schemes.mux_routing ~width:8 nl))

let test_recovered_key_functional () =
  let nl = victim 5 60 in
  let lk = L.Schemes.xor_keys ~bits:10 nl in
  match attack ~original:nl lk with
  | A.Sat_attack.Broken (key, _) ->
      Alcotest.(check bool) "key unlocks" true
        (L.Locked.verify ~original:nl { lk with L.Locked.key = key })
  | A.Sat_attack.Timeout _ -> Alcotest.fail "should break"

let test_budget_timeout () =
  let nl = victim 6 80 in
  let lk = L.Schemes.mux_lut ~width:16 nl in
  match
    A.Sat_attack.attack_locked ~max_dips:1 ~max_conflicts:10 ~time_limit:0.001
      ~original:nl lk
  with
  | A.Sat_attack.Timeout _ -> ()
  | A.Sat_attack.Broken _ -> ()
(* a break within such a small budget is possible but unlikely; either
   way the call must return promptly *)

let test_attack_stats_populated () =
  let nl = victim 7 60 in
  let lk = L.Schemes.xor_keys ~bits:8 nl in
  match attack ~original:nl lk with
  | A.Sat_attack.Broken (_, st) ->
      Alcotest.(check int) "key bits" 8 st.A.Sat_attack.key_bits;
      Alcotest.(check bool) "c2v positive" true (st.A.Sat_attack.c2v > 0.0)
  | A.Sat_attack.Timeout _ -> Alcotest.fail "should break"

let test_sequential_attack () =
  (* scan-model attack on a sequential victim *)
  let nl = victim 8 40 in
  let extra = N.dff nl (List.hd (List.map snd (N.outputs nl))) in
  N.add_output nl "state" extra;
  let lk = L.Schemes.xor_keys ~bits:8 nl in
  expect_broken "sequential xor" (attack ~original:nl lk)

let test_miter_unsat_without_keys () =
  (* a locked netlist with zero keys: find_dip must be `Unsat at once *)
  let nl = victim 9 30 in
  let m = A.Miter.create nl in
  (match A.Miter.find_dip m with
  | `Unsat -> ()
  | `Dip _ | `Budget -> Alcotest.fail "no keys, no DIP");
  Alcotest.(check int) "no keys" 0 (A.Miter.num_keys m)

let test_cycle_blocks_constrain () =
  (* blocking clauses must exclude the blocked patterns from both key
     vectors: craft one key bit and block value=true *)
  let nl = N.create "cb" in
  let a = N.add_input nl "a" in
  let k = N.add_key nl "k" in
  N.add_output nl "y" (N.xor_ nl a k);
  let m = A.Miter.create ~cycle_blocks:[ ([| 0 |], [| true |]) ] nl in
  (* with k=true excluded for both copies, no distinguishing input *)
  match A.Miter.find_dip m with
  | `Unsat -> ()
  | `Dip _ | `Budget -> Alcotest.fail "blocked keyspace should collapse"

let test_removal_true_guess () =
  let nl = victim 10 50 in
  let oracle = A.Sat_attack.oracle_of_netlist nl in
  let v = A.Removal.attempt ~oracle nl in
  Alcotest.(check bool) "true guess matches" true v.A.Removal.matched

let test_removal_wrong_guess () =
  let nl = victim 11 50 in
  let other = victim 12 50 in
  let oracle = A.Sat_attack.oracle_of_netlist nl in
  let v = A.Removal.attempt ~oracle other in
  Alcotest.(check bool) "wrong guess caught" false v.A.Removal.matched;
  Alcotest.(check bool) "counterexample reported" true
    (v.A.Removal.first_mismatch <> None)

let test_removal_word_oracle () =
  (* the word-level oracle must produce verdicts identical to the
     scalar oracle's on both matching and mismatching candidates *)
  let nl = victim 10 50 in
  let other = victim 12 50 in
  let oracle = A.Sat_attack.oracle_of_netlist nl in
  let oracle_w = A.Sat_attack.word_oracle_of_netlist nl in
  let vt_s = A.Removal.attempt ~oracle nl in
  let vt_w = A.Removal.attempt ~oracle ~oracle_w nl in
  Alcotest.(check bool) "true guess matches (word)" true vt_w.A.Removal.matched;
  Alcotest.(check int) "true guess vectors_tried identical"
    vt_s.A.Removal.vectors_tried vt_w.A.Removal.vectors_tried;
  let vw_s = A.Removal.attempt ~oracle other in
  let vw_w = A.Removal.attempt ~oracle ~oracle_w other in
  Alcotest.(check bool) "wrong guess caught (word)" false vw_w.A.Removal.matched;
  Alcotest.(check int) "wrong guess vectors_tried identical"
    vw_s.A.Removal.vectors_tried vw_w.A.Removal.vectors_tried;
  match (vw_s.A.Removal.first_mismatch, vw_w.A.Removal.first_mismatch) with
  | Some a, Some b ->
      Alcotest.(check (array bool)) "first mismatch identical" a b
  | _ -> Alcotest.fail "both paths must report a counterexample"

let test_proximity_reports () =
  let nl = victim 13 100 in
  let lk = L.Schemes.mux_routing ~width:8 nl in
  let r = A.Proximity.run lk in
  Alcotest.(check bool) "attacked some bits" true (r.A.Proximity.attacked_bits > 0);
  Alcotest.(check bool) "accuracy in range" true
    (r.A.Proximity.accuracy >= 0.0 && r.A.Proximity.accuracy <= 1.0)

let test_proximity_no_muxes () =
  let nl = victim 14 40 in
  let lk = L.Schemes.xor_keys ~bits:6 nl in
  let r = A.Proximity.run lk in
  Alcotest.(check int) "xor keys not attackable" 0 r.A.Proximity.attacked_bits

let test_link_prediction_reports () =
  let nl = victim 30 120 in
  let lk = L.Schemes.mux_routing ~width:8 nl in
  let r = A.Proximity.predict_links lk in
  Alcotest.(check bool) "finds boundary links" true (r.A.Proximity.links > 0);
  Alcotest.(check bool) "accuracy in range" true
    (r.A.Proximity.link_accuracy >= 0.0 && r.A.Proximity.link_accuracy <= 1.0);
  (* cyclic locked netlists are skipped, not crashed *)
  let mapped = fst (Shell_synth.Lut_map.map ~k:4 (victim 31 60)) in
  let e = Shell_fabric.Emit.emit ~style:Shell_fabric.Style.Openfpga mapped in
  let cyclic_lk =
    {
      L.Locked.locked = e.Shell_fabric.Emit.locked;
      key = Shell_fabric.Bitstream.bits e.Shell_fabric.Emit.bitstream;
      scheme = "efpga";
    }
  in
  let r2 = A.Proximity.predict_links cyclic_lk in
  Alcotest.(check int) "cyclic skipped" 0 r2.A.Proximity.links

let test_metrics () =
  let nl = victim 20 60 in
  let lk = L.Schemes.random_lut ~gates:5 nl in
  let m = A.Metrics.of_locked lk.L.Locked.locked in
  Alcotest.(check int) "key bits" (L.Locked.key_bits lk) m.A.Metrics.key_bits;
  Alcotest.(check bool) "c2v sane" true
    (m.A.Metrics.c2v > 1.0 && m.A.Metrics.c2v < 10.0);
  Alcotest.(check int) "no cycle blocks" 0 m.A.Metrics.cycle_blocked_patterns

let test_metrics_bitstream_split () =
  let mapped =
    let nl = victim 21 50 in
    fst (Shell_synth.Lut_map.map ~k:4 nl)
  in
  let e = Shell_fabric.Emit.emit ~style:Shell_fabric.Style.Fabulous_std mapped in
  let m =
    A.Metrics.of_locked
      ~bitstream:e.Shell_fabric.Emit.bitstream
      e.Shell_fabric.Emit.locked
  in
  Alcotest.(check int) "split covers all bits" m.A.Metrics.key_bits
    (m.A.Metrics.table_bits + m.A.Metrics.routing_bits);
  Alcotest.(check bool) "has table bits" true (m.A.Metrics.table_bits > 0);
  Alcotest.(check bool) "has routing bits" true (m.A.Metrics.routing_bits > 0)

let suite =
  [
    ("breaks xor", `Quick, test_breaks_xor);
    ("breaks random lut", `Quick, test_breaks_random_lut);
    ("breaks heuristic lut", `Quick, test_breaks_heuristic_lut);
    ("breaks mux routing", `Quick, test_breaks_mux_routing);
    ("recovered key functional", `Quick, test_recovered_key_functional);
    ("budget timeout", `Quick, test_budget_timeout);
    ("attack stats", `Quick, test_attack_stats_populated);
    ("sequential attack", `Quick, test_sequential_attack);
    ("miter without keys", `Quick, test_miter_unsat_without_keys);
    ("cycle blocks constrain", `Quick, test_cycle_blocks_constrain);
    ("removal true guess", `Quick, test_removal_true_guess);
    ("removal wrong guess", `Quick, test_removal_wrong_guess);
    ("removal word oracle identical", `Quick, test_removal_word_oracle);
    ("proximity reports", `Quick, test_proximity_reports);
    ("proximity ignores non-mux keys", `Quick, test_proximity_no_muxes);
    ("link prediction reports", `Quick, test_link_prediction_reports);
    ("metrics", `Quick, test_metrics);
    ("metrics bitstream split", `Quick, test_metrics_bitstream_split);
  ]
