(* Tests for the serve daemon: Jsonw framing edge cases, protocol
   codec round-trips, admission-queue semantics, and an in-process
   server exercised over a real Unix socket — concurrent clients,
   queue-full rejection, protocol breaches, and the warm-from-disk
   restart path. *)

module J = Shell_util.Jsonw
module Diag = Shell_util.Diag
module P = Shell_serve.Protocol
module Admission = Shell_serve.Admission
module Jobs = Shell_serve.Jobs
module Server = Shell_serve.Server
module Client = Shell_serve.Client
module Store = Shell_serve.Store
module Pipeline = Shell_core.Pipeline

let contains s affix =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let uniq = ref 0

let temp_path suffix =
  incr uniq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "shell_serve_%d_%d%s" (Unix.getpid ()) !uniq suffix)

(* ---- framing ---- *)

let test_framer_split_feeds () =
  let f1 = J.frame (J.Obj [ ("a", J.Int 1) ]) in
  let f2 = J.frame (J.Str "second frame") in
  let wire = f1 ^ f2 in
  let fr = J.framer () in
  let got = ref [] in
  (* feed one byte at a time: every frame boundary lands mid-read *)
  String.iter
    (fun c ->
      J.feed_string fr (String.make 1 c);
      match J.next fr with
      | `Frame body -> got := body :: !got
      | `Await -> ()
      | `Error e -> Alcotest.failf "unexpected framer error: %s" e)
    wire;
  (match List.rev !got with
  | [ b1; b2 ] ->
      Alcotest.(check string) "first body" "{\"a\":1}" b1;
      Alcotest.(check string) "second body" "\"second frame\"" b2
  | bs -> Alcotest.failf "expected 2 frames, got %d" (List.length bs));
  (* both frames in a single feed also works *)
  let fr = J.framer () in
  J.feed_string fr wire;
  Alcotest.(check bool) "frame 1" true (J.next fr <> `Await);
  Alcotest.(check bool) "frame 2" true (J.next fr <> `Await);
  Alcotest.(check bool) "then await" true (J.next fr = `Await)

let test_framer_oversized_sticky () =
  let fr = J.framer ~max_frame:16 () in
  let big = J.frame (J.Str (String.make 64 'x')) in
  J.feed_string fr big;
  (match J.next fr with
  | `Error e ->
      Alcotest.(check bool) "error mentions the limit" true
        (contains e "16")
  | `Frame _ | `Await -> Alcotest.fail "oversized frame accepted");
  (* sticky: feeding a small valid frame afterwards cannot recover *)
  J.feed_string fr (J.frame (J.Int 1));
  (match J.next fr with
  | `Error _ -> ()
  | `Frame _ | `Await -> Alcotest.fail "framer error was not sticky");
  (* the writer side refuses to build an oversized frame at all *)
  match J.frame ~max_frame:16 (J.Str (String.make 64 'x')) with
  | _ -> Alcotest.fail "frame built past max_frame"
  | exception Invalid_argument _ -> ()

(* ---- protocol codec ---- *)

let sample_lock =
  { P.bench = "FIR"; style = "openfpga"; route = [ "r0" ]; lgc = [ "g1" ];
    seed = 7 }

let sample_requests =
  [
    P.Submit { id = 1; priority = 2; job = P.Lock sample_lock };
    P.Submit
      {
        id = 2;
        priority = 0;
        job =
          P.Attack
            {
              target = sample_lock;
              attack = "sat";
              dips = 9;
              conflicts = 100;
              seconds = 1.5;
              vectors = 32;
            };
      };
    P.Submit
      {
        id = 3;
        priority = 1;
        job =
          P.Battery
            {
              benches = [ "FIR"; "IIR" ];
              schemes = [ "xor:8" ];
              attacks = [ "sat" ];
              bt_seed = 1;
              bt_dips = 2;
              bt_conflicts = 3;
              bt_seconds = 0.25;
              bt_vectors = 4;
            };
      };
    P.Submit { id = 4; priority = 0; job = P.Fuzz { fz_seed = 5; cases = 6 } };
    P.Submit
      {
        id = 5;
        priority = 0;
        job =
          P.Lint
            {
              lint_benches = [ "FIR" ];
              locked = true;
              lint_style = "fabulous";
              lint_seed = 11;
            };
      };
    P.Status { id = 6 };
    P.Metrics { id = 7 };
    P.Ping { id = 8 };
    P.Shutdown { id = 9 };
  ]

let sample_responses =
  [
    P.Result { id = 1; output = "summary\nwith \"quotes\" and \xf0\x9f\x98\x80\n" };
    P.Rejected { id = 2; reason = "queue_full depth=4 cap=4" };
    P.Failed { id = 0; message = "bad frame" };
    P.Status_r
      {
        id = 3;
        info =
          {
            P.queue_depth = 1;
            queue_cap = 64;
            running = true;
            jobs_done = 5;
            jobs_failed = 1;
            jobs_rejected = 2;
            cache_hits = 9;
            cache_misses = 9;
            uptime_s = 1.25;
            job_spans = [ { P.kind = "lock"; runs = 2; total_s = 0.5 } ];
          };
      };
    P.Metrics_r { id = 4; text = "# TYPE shell_x counter\nshell_x 1\n" };
    P.Pong { id = 5; server_version = P.version };
  ]

(* decode through the framer, as the wire does *)
let unframe wire =
  let fr = J.framer () in
  J.feed_string fr wire;
  match J.next fr with
  | `Frame body -> body
  | `Await | `Error _ -> Alcotest.fail "frame did not reassemble"

let test_protocol_roundtrip () =
  List.iter
    (fun r ->
      match P.request_of_frame (unframe (P.request_frame r)) with
      | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
      | Error e -> Alcotest.failf "request decode failed: %s" e)
    sample_requests;
  List.iter
    (fun r ->
      match P.response_of_frame (unframe (P.response_frame r)) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error e -> Alcotest.failf "response decode failed: %s" e)
    sample_responses

let test_protocol_rejects () =
  (* malformed JSON is an error, not an exception *)
  (match P.request_of_frame "{oops" with
  | Ok _ -> Alcotest.fail "malformed JSON accepted"
  | Error _ -> ());
  (* a foreign protocol version gets one clean error *)
  (match P.request_of_frame "{\"v\":2,\"type\":\"ping\",\"id\":1}" with
  | Ok _ -> Alcotest.fail "foreign version accepted"
  | Error e ->
      Alcotest.(check bool) "names the version" true (contains e "version 2"));
  (* unknown request type / job kind *)
  (match P.request_of_frame "{\"v\":1,\"type\":\"dance\",\"id\":1}" with
  | Ok _ -> Alcotest.fail "unknown type accepted"
  | Error e -> Alcotest.(check bool) "names the type" true (contains e "dance"));
  match
    P.request_of_frame
      "{\"v\":1,\"type\":\"submit\",\"id\":1,\"priority\":0,\"job\":{\"zap\":{}}}"
  with
  | Ok _ -> Alcotest.fail "unknown job kind accepted"
  | Error e -> Alcotest.(check bool) "names the kind" true (contains e "zap")

(* ---- admission ---- *)

let test_admission_order () =
  let q = Admission.create ~cap:8 in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "push rejected" in
  ok (Admission.push q ~priority:0 "a");
  ok (Admission.push q ~priority:0 "b");
  ok (Admission.push q ~priority:5 "hot");
  ok (Admission.push q ~priority:0 "c");
  ok (Admission.push q ~priority:5 "hot2");
  let drain () =
    let rec go acc =
      match Admission.pop q with None -> List.rev acc | Some x -> go (x :: acc)
    in
    go []
  in
  Alcotest.(check (list string))
    "priority first, FIFO within" [ "hot"; "hot2"; "a"; "b"; "c" ] (drain ());
  Alcotest.(check bool) "empty after drain" true (Admission.is_empty q)

let test_admission_queue_full () =
  let q = Admission.create ~cap:2 in
  ignore (Admission.push q ~priority:0 "a");
  ignore (Admission.push q ~priority:0 "b");
  (match Admission.push q ~priority:9 "c" with
  | Ok () -> Alcotest.fail "push past cap accepted"
  | Error d -> (
      Alcotest.(check bool) "typed payload" true
        (match d.Diag.payload with
        | Admission.Queue_full { depth = 2; cap = 2 } -> true
        | _ -> false);
      Alcotest.(check bool) "renders queue_full" true
        (contains (Diag.to_string d) "queue_full depth=2 cap=2")));
  (* popping frees a slot again *)
  ignore (Admission.pop q);
  (match Admission.push q ~priority:0 "c" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "push after pop rejected");
  match Admission.create ~cap:0 with
  | _ -> Alcotest.fail "cap 0 accepted"
  | exception Invalid_argument _ -> ()

(* ---- server integration (in-process, real Unix socket) ---- *)

let start_server cfg_of_addr =
  let path = temp_path ".sock" in
  let addr = Server.Unix_sock path in
  let cfg = cfg_of_addr addr in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.serve ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  (addr, d)

let stop_server addr d =
  (match Client.with_connection addr Client.shutdown with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shutdown failed: %s" e);
  Domain.join d

let fir_spec =
  match Jobs.default_tfr "FIR" with
  | Some (route, lgc, _) ->
      { P.bench = "FIR"; style = "openfpga"; route; lgc; seed = 1 }
  | None -> { P.bench = "FIR"; style = "openfpga"; route = []; lgc = []; seed = 1 }

let submit_ok t job =
  match Client.submit t job with
  | Ok (P.Result { output; _ }) -> output
  | Ok (P.Rejected { reason; _ }) -> Alcotest.failf "rejected: %s" reason
  | Ok (P.Failed { message; _ }) -> Alcotest.failf "failed: %s" message
  | Ok _ -> Alcotest.fail "unexpected response kind"
  | Error e -> Alcotest.failf "transport error: %s" e

let test_server_lock_byte_identical () =
  Pipeline.clear_cache ();
  let addr, d = start_server Server.default_config in
  let expected =
    match Jobs.lock_output fir_spec with
    | Ok s -> s
    | Error e -> Alcotest.failf "direct lock failed: %s" (Diag.to_string e)
  in
  Client.with_connection addr (fun t ->
      (match Client.ping t with
      | Ok v -> Alcotest.(check int) "pong version" P.version v
      | Error e -> Alcotest.failf "ping failed: %s" e);
      let out = submit_ok t (P.Lock fir_spec) in
      Alcotest.(check string) "socket lock byte-identical to CLI" expected out;
      (* resubmit: warm from the in-memory cache, still identical *)
      let out2 = submit_ok t (P.Lock fir_spec) in
      Alcotest.(check string) "warm resubmit identical" expected out2;
      match Client.status t with
      | Ok i ->
          Alcotest.(check int) "jobs done" 2 i.P.jobs_done;
          Alcotest.(check int) "nothing queued" 0 i.P.queue_depth;
          Alcotest.(check bool) "running" true i.P.running;
          Alcotest.(check bool) "lock span recorded" true
            (List.exists (fun s -> s.P.kind = "lock") i.P.job_spans)
      | Error e -> Alcotest.failf "status failed: %s" e);
  stop_server addr d

let test_server_concurrent_clients () =
  Pipeline.clear_cache ();
  let addr, d = start_server Server.default_config in
  let expected =
    match Jobs.lock_output fir_spec with
    | Ok s -> s
    | Error e -> Alcotest.failf "direct lock failed: %s" (Diag.to_string e)
  in
  let clients =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Client.with_connection addr (fun t -> submit_ok t (P.Lock fir_spec))))
  in
  List.iteri
    (fun i c ->
      Alcotest.(check string)
        (Printf.sprintf "client %d byte-identical" i)
        expected (Domain.join c))
    clients;
  stop_server addr d

(* raw-socket helpers for the breach / pipelining tests (the Client
   module is strictly one-request-one-response, which is exactly what
   these tests must violate) *)

let raw_connect = function
  | Server.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Server.Tcp _ -> Alcotest.fail "tests use unix sockets"

let raw_frame body =
  let n = String.length body in
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string body 0 b 4 n;
  Bytes.unsafe_to_string b

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* read responses until [want] frames or EOF; returns them in order *)
let read_responses fd want =
  let fr = J.framer () in
  let buf = Bytes.create 8192 in
  let got = ref [] in
  let eof = ref false in
  while List.length !got < want && not !eof do
    (match J.next fr with
    | `Frame body -> (
        match P.response_of_frame body with
        | Ok r -> got := r :: !got
        | Error e -> Alcotest.failf "bad response frame: %s" e)
    | `Error e -> Alcotest.failf "framer error: %s" e
    | `Await -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> eof := true
        | n -> J.feed fr buf 0 n))
  done;
  List.rev !got

let test_server_queue_full () =
  let addr, d =
    start_server (fun a ->
        { (Server.default_config a) with Server.queue_cap = 1 })
  in
  let fd = raw_connect addr in
  let submit id =
    P.request_frame
      (P.Submit { id; priority = 0; job = P.Fuzz { fz_seed = 3; cases = 1 } })
  in
  (* one write carrying three submits: the server drains all frames
     from the read before running any job, so with cap 1 the second
     and third must be rejected with the typed reason *)
  write_all fd (submit 1 ^ submit 2 ^ submit 3);
  let resps = read_responses fd 3 in
  let rejected =
    List.filter_map
      (function P.Rejected { id; reason } -> Some (id, reason) | _ -> None)
      resps
  in
  let results =
    List.filter_map
      (function P.Result { id; _ } -> Some id | _ -> None)
      resps
  in
  Alcotest.(check (list int)) "ids 2 and 3 rejected" [ 2; 3 ]
    (List.sort compare (List.map fst rejected));
  List.iter
    (fun (_, reason) ->
      Alcotest.(check bool) "typed queue_full reason" true
        (contains reason "queue_full depth=1 cap=1"))
    rejected;
  Alcotest.(check (list int)) "id 1 ran" [ 1 ] results;
  Unix.close fd;
  stop_server addr d

let test_server_breach_closes () =
  let addr, d =
    start_server (fun a ->
        { (Server.default_config a) with Server.max_frame = 256 })
  in
  (* malformed JSON inside a well-formed frame *)
  let fd = raw_connect addr in
  write_all fd (raw_frame "this is not json");
  (match read_responses fd 1 with
  | [ P.Failed { id = 0; message } ] ->
      Alcotest.(check bool) "carries a parse error" true (message <> "")
  | _ -> Alcotest.fail "expected Failed id=0");
  (* then the connection closes: EOF, not more responses *)
  Alcotest.(check (list bool)) "connection closed" []
    (List.map (fun _ -> true) (read_responses fd 1));
  Unix.close fd;
  (* an oversized frame header is a breach before any body arrives *)
  let fd = raw_connect addr in
  write_all fd (raw_frame (String.make 1024 'x'));
  (match read_responses fd 1 with
  | [ P.Failed { id = 0; _ } ] -> ()
  | _ -> Alcotest.fail "expected Failed id=0 for oversized frame");
  Alcotest.(check int) "closed after oversize" 0
    (List.length (read_responses fd 1));
  Unix.close fd;
  (* the daemon survives both breaches *)
  (match Client.with_connection addr Client.ping with
  | Ok v -> Alcotest.(check int) "still serving" P.version v
  | Error e -> Alcotest.failf "daemon died after breach: %s" e);
  stop_server addr d

(* metric scraping for the restart test *)
let metric_value text name =
  let v = ref None in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
             v :=
               int_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
         | _ -> ());
  match !v with
  | Some v -> v
  | None -> Alcotest.failf "metric %s not found" name

let test_server_restart_warm_from_disk () =
  let dir = temp_path ".store" in
  let with_store a =
    { (Server.default_config a) with Server.store_dir = Some dir }
  in
  Pipeline.clear_cache ();
  (* first daemon: cold run spills every pass product to disk *)
  let addr, d = start_server with_store in
  let out1, disk_hits0, misses0 =
    Client.with_connection addr (fun t ->
        let out = submit_ok t (P.Lock fir_spec) in
        match Client.metrics t with
        | Ok m ->
            Alcotest.(check bool) "cold run spilled to disk" true
              (metric_value m "shell_pipeline_cache_disk_writes" > 0);
            ( out,
              metric_value m "shell_pipeline_cache_disk_hits",
              metric_value m "shell_pipeline_cache_misses" )
        | Error e -> Alcotest.failf "metrics failed: %s" e)
  in
  stop_server addr d;
  (* simulate the restart: the in-memory cache is gone, the disk
     store (and the in-process Obs counters) survive *)
  Pipeline.clear_cache ();
  let addr, d = start_server with_store in
  Client.with_connection addr (fun t ->
      let out2 = submit_ok t (P.Lock fir_spec) in
      Alcotest.(check string) "restart output byte-identical" out1 out2;
      match Client.metrics t with
      | Ok m ->
          let disk_hits = metric_value m "shell_pipeline_cache_disk_hits" in
          let misses = metric_value m "shell_pipeline_cache_misses" in
          Alcotest.(check bool) "warm hits came from the disk store" true
            (disk_hits > disk_hits0);
          Alcotest.(check int) "no pass recomputed after restart" misses0 misses
      | Error e -> Alcotest.failf "metrics failed: %s" e);
  stop_server addr d;
  (* eviction contract: deleting the directory is the reset story *)
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  rm dir

let rm_rf p =
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists p then rm p

let test_store_gc () =
  let dir = temp_path ".gcstore" in
  let store = Store.create ~root:dir in
  let keys = List.init 5 (fun i -> Printf.sprintf "key%d" i) in
  List.iter (fun k -> Store.save store k (String.make 100 'x')) keys;
  Alcotest.(check int) "all stored" 5 (Store.entries store);
  (* under the cap: a scan-only no-op *)
  let rep = Store.gc store ~max_bytes:1000 in
  Alcotest.(check int) "scanned" 5 rep.Store.scanned;
  Alcotest.(check int) "scanned bytes" 500 rep.Store.scanned_bytes;
  Alcotest.(check int) "nothing deleted under cap" 0 rep.Store.deleted;
  Alcotest.(check int) "nothing reclaimed under cap" 0 rep.Store.reclaimed_bytes;
  (* stagger access times (the documented sharded-MD5 addressing gives
     us each blob's path) so the LRU order is fully determined *)
  let path_of k =
    let h = Digest.to_hex (Digest.string k) in
    Filename.concat
      (Filename.concat dir (String.sub h 0 2))
      (String.sub h 2 (String.length h - 2))
  in
  let ordered = List.sort (fun a b -> compare (path_of a) (path_of b)) keys in
  let now = Unix.time () in
  List.iteri
    (fun i k ->
      Unix.utimes (path_of k) (now -. 3600.0 +. (60.0 *. float_of_int i)) now)
    ordered;
  (* over the cap: evict oldest-first until back under *)
  let rep = Store.gc store ~max_bytes:300 in
  Alcotest.(check int) "deleted the two oldest" 2 rep.Store.deleted;
  Alcotest.(check int) "reclaimed their bytes" 200 rep.Store.reclaimed_bytes;
  Alcotest.(check int) "three blobs left" 3 (Store.entries store);
  (match ordered with
  | k0 :: k1 :: fresh ->
      Alcotest.(check bool) "oldest evicted" true (Store.load store k0 = None);
      Alcotest.(check bool) "next-oldest evicted" true
        (Store.load store k1 = None);
      List.iter
        (fun k ->
          Alcotest.(check bool)
            ("fresh blob survives: " ^ k)
            true
            (Store.load store k <> None))
        fresh
  | _ -> assert false);
  (* daemon startup prunes before attaching the store *)
  let capped a =
    {
      (Server.default_config a) with
      Server.store_dir = Some dir;
      cache_max_bytes = Some 0;
    }
  in
  let addr, d = start_server capped in
  (match Client.with_connection addr Client.ping with
  | Ok v -> Alcotest.(check int) "daemon up after startup gc" P.version v
  | Error e -> Alcotest.failf "ping failed: %s" e);
  stop_server addr d;
  Alcotest.(check int) "startup gc emptied the capped store" 0
    (Store.entries store);
  rm_rf dir

let test_address_parsing () =
  (match Server.address_of_string "/tmp/x.sock" with
  | Ok (Server.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix path");
  (match Server.address_of_string "localhost:9001" with
  | Ok (Server.Tcp ("localhost", 9001)) -> ()
  | _ -> Alcotest.fail "host:port");
  (match Server.address_of_string ":9001" with
  | Ok (Server.Tcp ("127.0.0.1", 9001)) -> ()
  | _ -> Alcotest.fail "empty host defaults to loopback");
  (match Server.address_of_string "relative.sock" with
  | Ok (Server.Unix_sock "relative.sock") -> ()
  | _ -> Alcotest.fail "no colon means unix path");
  (match Server.address_of_string "host:notaport" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad port accepted");
  match Server.address_of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty address accepted"

let suite =
  [
    ("framer split feeds", `Quick, test_framer_split_feeds);
    ("framer oversized sticky", `Quick, test_framer_oversized_sticky);
    ("protocol round-trip", `Quick, test_protocol_roundtrip);
    ("protocol rejects", `Quick, test_protocol_rejects);
    ("admission order", `Quick, test_admission_order);
    ("admission queue full", `Quick, test_admission_queue_full);
    ("address parsing", `Quick, test_address_parsing);
    ("store gc size cap", `Quick, test_store_gc);
    ("server lock byte-identical", `Quick, test_server_lock_byte_identical);
    ("server concurrent clients", `Quick, test_server_concurrent_clients);
    ("server queue full", `Quick, test_server_queue_full);
    ("server breach closes", `Quick, test_server_breach_closes);
    ("server restart warm from disk", `Quick,
     test_server_restart_warm_from_disk);
  ]
