(* Tests for Shell_util.Pool: the deterministic contract (index-ordered
   collection, fixed reduction order, lowest-index exception), and the
   parallel == sequential guarantees of the call sites that ride on it
   (betweenness, Explore.search). *)

module Pool = Shell_util.Pool
module Rng = Shell_util.Rng
module D = Shell_graph.Digraph
module Cent = Shell_graph.Centrality
module C = Shell_core
module Circ = Shell_circuits

let job_counts = [ 1; 2; 8 ]

exception Boom of int

let test_map_matches_sequential () =
  let input = Array.init 57 (fun i -> i) in
  let f x = (x * x) + 3 in
  let expect = Array.map f input in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Pool.map ~jobs f input))
    job_counts

let test_mapi_indices () =
  let input = Array.make 33 "x" in
  List.iter
    (fun jobs ->
      let out = Pool.mapi ~jobs (fun i s -> Printf.sprintf "%s%d" s i) input in
      Array.iteri
        (fun i v ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d idx=%d" jobs i)
            (Printf.sprintf "x%d" i) v)
        out)
    job_counts

let test_map_list_order () =
  let input = List.init 21 (fun i -> i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map (fun x -> x * 2) input)
        (Pool.map_list ~jobs (fun x -> x * 2) input))
    job_counts

let test_map_reduce_fixed_order () =
  (* string concatenation is not commutative: any out-of-order
     reduction changes the result *)
  let input = Array.init 40 (fun i -> i) in
  let expect =
    Array.fold_left (fun acc x -> acc ^ string_of_int x ^ ";") "" input
  in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Pool.map_reduce ~jobs
           ~map:(fun x -> string_of_int x ^ ";")
           ~reduce:( ^ ) ~init:"" input))
    job_counts

let test_map_reduce_float_bitexact () =
  (* float addition is non-associative; the fixed reduction order must
     reproduce the sequential sum bit for bit *)
  let rng = Rng.create 99 in
  let input = Array.init 101 (fun _ -> Rng.float rng 1.0 -. 0.5) in
  let expect = Array.fold_left ( +. ) 0.0 input in
  List.iter
    (fun jobs ->
      let got =
        Pool.map_reduce ~jobs ~map:Fun.id ~reduce:( +. ) ~init:0.0 input
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d bit-exact" jobs)
        true
        (Int64.equal (Int64.bits_of_float expect) (Int64.bits_of_float got)))
    job_counts

let test_lowest_index_exception () =
  let input = Array.init 64 (fun i -> i) in
  List.iter
    (fun jobs ->
      let raised =
        try
          ignore
            (Pool.map ~jobs
               (fun i -> if i = 5 || i = 2 || i = 7 then raise (Boom i) else i)
               input);
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int))
        (Printf.sprintf "jobs=%d lowest raiser" jobs)
        (Some 2) raised)
    job_counts

let test_iter_chunks_covers () =
  let n = 237 in
  List.iter
    (fun jobs ->
      let hits = Array.make n 0 in
      (* chunks are disjoint, so these writes never race *)
      Pool.iter_chunks ~jobs ~chunk:10
        (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done)
        n;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d each index once" jobs)
        true
        (Array.for_all (fun c -> c = 1) hits))
    job_counts

let test_task_rng_stable () =
  let a = Pool.task_rng ~seed:7 3 and b = Pool.task_rng ~seed:7 3 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Pool.task_rng ~seed:7 4 in
  let differs = ref false in
  for _ = 1 to 50 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 c)) then differs := true
  done;
  Alcotest.(check bool) "distinct index, distinct stream" true !differs

let test_nested_map_falls_back () =
  (* a map inside a map must not deadlock and must stay correct *)
  let out =
    Pool.map ~jobs:4
      (fun i ->
        let inner = Pool.map ~jobs:4 (fun j -> i * j) (Array.init 8 Fun.id) in
        Array.fold_left ( + ) 0 inner)
      (Array.init 12 Fun.id)
  in
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "i=%d" i) (i * 28) v)
    out;
  Alcotest.(check bool) "not inside task afterwards" false (Pool.inside_task ())

(* Random digraphs: parallel betweenness must equal the sequential run
   with exact float equality (per-source accumulators folded in source
   order). *)
let random_digraph n seed =
  let rng = Rng.create seed in
  let edges =
    List.init (3 * n) (fun _ -> (Rng.int rng n, Rng.int rng n))
  in
  D.make ~n ~edges

let test_betweenness_parity =
  QCheck.Test.make ~name:"betweenness parallel == sequential (exact)"
    ~count:60
    QCheck.(pair (int_range 6 28) (int_bound 0x3FFFFFFF))
    (fun (n, seed) ->
      let g = random_digraph n seed in
      let sources = List.init (min n 8) Fun.id in
      let sinks = List.init (min n 6) (fun i -> n - 1 - i) in
      let seq = Cent.betweenness ~jobs:1 g ~sources ~sinks in
      List.for_all
        (fun jobs ->
          let par = Cent.betweenness ~jobs g ~sources ~sinks in
          Array.length par = Array.length seq
          && Array.for_all2
               (fun a b ->
                 Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
               par seq)
        [ 2; 4; 8 ])

let picosoc =
  lazy ((List.nth Circ.Catalog.all 0).Circ.Catalog.netlist ())

let test_explore_jobs_parity () =
  let nl = Lazy.force picosoc in
  let run jobs = C.Explore.search ~jobs ~generations:1 ~population:5 nl in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool)
    "same best coefficients" true
    (a.C.Explore.best.C.Explore.coeffs = b.C.Explore.best.C.Explore.coeffs);
  Alcotest.(check string)
    "same best TfR" a.C.Explore.best.C.Explore.label
    b.C.Explore.best.C.Explore.label;
  Alcotest.(check int)
    "same evaluated count"
    (List.length a.C.Explore.evaluated)
    (List.length b.C.Explore.evaluated);
  List.iter2
    (fun (x : C.Explore.candidate) (y : C.Explore.candidate) ->
      Alcotest.(check bool) "same profile" true (x.C.Explore.coeffs = y.C.Explore.coeffs);
      Alcotest.(check string) "same label" x.C.Explore.label y.C.Explore.label)
    a.C.Explore.evaluated b.C.Explore.evaluated

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "mapi passes indices" `Quick test_mapi_indices;
    Alcotest.test_case "map_list keeps order" `Quick test_map_list_order;
    Alcotest.test_case "map_reduce fixed order" `Quick
      test_map_reduce_fixed_order;
    Alcotest.test_case "map_reduce float bit-exact" `Quick
      test_map_reduce_float_bitexact;
    Alcotest.test_case "lowest-index exception wins" `Quick
      test_lowest_index_exception;
    Alcotest.test_case "iter_chunks covers range once" `Quick
      test_iter_chunks_covers;
    Alcotest.test_case "task_rng stable per (seed,index)" `Quick
      test_task_rng_stable;
    Alcotest.test_case "nested map falls back sequentially" `Quick
      test_nested_map_falls_back;
    QCheck_alcotest.to_alcotest test_betweenness_parity;
    Alcotest.test_case "Explore.search parity across jobs" `Slow
      test_explore_jobs_parity;
  ]
