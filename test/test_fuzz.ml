(* The differential fuzzing subsystem: generator validity and
   determinism, fault injection, the shrinker, the campaign runner's
   jobs-independence, and the mutation-injection self-test. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Verilog = Shell_netlist.Verilog
module Rng = Shell_util.Rng
module Gen = Shell_fuzz.Gen
module Inject = Shell_fuzz.Inject
module Shrink = Shell_fuzz.Shrink
module Oracles = Shell_fuzz.Oracles
module Runner = Shell_fuzz.Runner

let valid nl = match N.validate nl with Ok () -> true | Error _ -> false

let gen_case seed =
  let rng = Rng.create seed in
  let shape = Gen.random_shape rng in
  (shape, Gen.netlist rng shape)

(* ---------------- generator ---------------- *)

let test_gen_valid_and_deterministic () =
  for seed = 1000 to 1019 do
    let _, a = gen_case seed and _, b = gen_case seed in
    Alcotest.(check bool) "validates" true (valid a);
    Alcotest.(check bool)
      "comb view acyclic" false
      (N.has_comb_cycle (N.comb_view a));
    Alcotest.(check string) "deterministic" (N.fingerprint a) (N.fingerprint b)
  done

let test_gen_covers_shapes () =
  (* over a modest sample, every structural knob must fire *)
  let luts = ref false
  and muxes = ref false
  and dffs = ref false
  and keyed = ref false
  and multi = ref false
  and nnames = ref false in
  for seed = 0 to 99 do
    let s, _ = gen_case seed in
    if s.Gen.with_luts then luts := true;
    if s.Gen.with_muxes then muxes := true;
    if s.Gen.with_dffs then dffs := true;
    if s.Gen.key_bits > 0 then keyed := true;
    if s.Gen.blocks > 1 then multi := true;
    if s.Gen.adversarial_names then nnames := true
  done;
  List.iter
    (fun (nm, b) -> Alcotest.(check bool) nm true b)
    [
      ("luts", !luts);
      ("muxes", !muxes);
      ("dffs", !dffs);
      ("keys", !keyed);
      ("multi-block", !multi);
      ("adversarial names", !nnames);
    ]

(* ---------------- injection ---------------- *)

let test_inject_produces_distinct_valid_mutant () =
  let hits = ref 0 in
  for seed = 0 to 19 do
    let _, nl = gen_case seed in
    let rng = Rng.create (7000 + seed) in
    match Inject.mutate rng nl with
    | None -> ()
    | Some m ->
        incr hits;
        Alcotest.(check bool) "mutant validates" true (valid m.Inject.netlist);
        Alcotest.(check bool)
          "structurally distinct" false
          (N.fingerprint nl = N.fingerprint m.Inject.netlist)
  done;
  Alcotest.(check bool) "mutations were produced" true (!hits >= 15)

(* ---------------- shrinker ---------------- *)

let test_shrink_minimizes () =
  (* predicate: the netlist still contains an Xor cell. A chain of
     irrelevant gates around one Xor must shrink down to (almost)
     just the Xor. *)
  let nl = N.create "shrinkme" in
  let a = N.add_input nl "a" and b = N.add_input nl "b" in
  let t = ref a in
  for _ = 1 to 10 do
    t := N.and_ nl !t b
  done;
  let x = N.xor_ nl !t b in
  let noise = N.or_ nl x a in
  N.add_output nl "y" x;
  N.add_output nl "noise" noise;
  let failing n =
    N.count_kind n (function Cell.Xor -> true | _ -> false) > 0
  in
  let small, st = Shrink.minimize ~failing nl in
  Alcotest.(check bool) "still failing" true (failing small);
  Alcotest.(check bool) "valid" true (valid small);
  Alcotest.(check bool)
    "shrank"
    true
    (N.num_cells small < N.num_cells nl);
  Alcotest.(check bool) "few cells remain" true (N.num_cells small <= 3);
  Alcotest.(check int) "stats before" 12 st.Shrink.cells_before

let test_shrink_rejects_passing_input () =
  let nl = N.create "ok" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.buf nl a);
  match Shrink.minimize ~failing:(fun _ -> false) nl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "minimize accepted a passing netlist"

(* ---------------- runner ---------------- *)

let test_clean_run () =
  let r = Runner.run ~jobs:2 ~seed:123 ~cases:40 () in
  Alcotest.(check bool) "no failures" true (Runner.ok r);
  Alcotest.(check int) "all oracles reported" (List.length Oracles.all)
    (List.length r.Runner.stats);
  let checks =
    List.fold_left
      (fun acc s -> acc + s.Runner.passed + s.Runner.failed)
      0 r.Runner.stats
  in
  Alcotest.(check bool) "oracles actually ran" true (checks > 100)

let test_run_jobs_independent () =
  let render r = Format.asprintf "%a" Runner.pp_report r in
  let a = Runner.run ~jobs:1 ~seed:99 ~cases:25 () in
  let b = Runner.run ~jobs:4 ~seed:99 ~cases:25 () in
  Alcotest.(check string) "report byte-identical across jobs" (render a)
    (render b)

(* an always-failing oracle drives the failure path: shrinking plus
   reproducer emission, which must itself reparse *)
let bogus =
  {
    Oracles.name = "bogus";
    description = "fails whenever the netlist has a cell";
    applies = (fun _ -> true);
    run =
      (fun _ nl ->
        if N.num_cells nl > 0 then Oracles.Fail "has cells" else Oracles.Pass);
    inject = (fun _ _ -> None);
  }

let test_failure_shrinks_and_writes_reproducer () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "shell_fuzz_test" in
  let r =
    Runner.run ~jobs:1 ~oracles:[ bogus ] ~shrink:true ~out_dir:dir ~seed:3
      ~cases:2 ()
  in
  Alcotest.(check bool) "reported failures" false (Runner.ok r);
  Alcotest.(check int) "one failure per case" 2 (List.length r.Runner.failures);
  List.iter
    (fun (f : Runner.failure) ->
      (match f.Runner.shrink with
      | None -> Alcotest.fail "failure was not shrunk"
      | Some st ->
          Alcotest.(check bool)
            "shrunk no larger" true
            (st.Shrink.cells_after <= st.Shrink.cells_before));
      match f.Runner.reproducer with
      | None -> Alcotest.fail "no reproducer written"
      | Some path ->
          Alcotest.(check bool) "file exists" true (Sys.file_exists path);
          let ic = open_in path in
          let len = in_channel_length ic in
          let src = really_input_string ic len in
          close_in ic;
          let nl = Verilog.parse src in
          Alcotest.(check bool) "reproducer reparses" true (valid nl))
    r.Runner.failures

let test_self_test_every_oracle_catches () =
  let stats = Runner.self_test ~jobs:2 ~seed:17 ~cases:80 () in
  List.iter
    (fun (s : Runner.self_stat) ->
      Alcotest.(check bool)
        (s.Runner.oracle ^ " attempted") true (s.Runner.attempts > 0);
      Alcotest.(check bool)
        (s.Runner.oracle ^ " caught its fault class")
        true (s.Runner.caught > 0))
    stats;
  Alcotest.(check bool) "aggregate ok" true (Runner.self_test_ok stats)

let test_self_test_jobs_independent () =
  let render stats = Format.asprintf "%a" Runner.pp_self_test stats in
  let a = Runner.self_test ~jobs:1 ~seed:29 ~cases:20 () in
  let b = Runner.self_test ~jobs:3 ~seed:29 ~cases:20 () in
  Alcotest.(check string) "self-test byte-identical across jobs" (render a)
    (render b)

let suite =
  [
    ("gen valid + deterministic", `Quick, test_gen_valid_and_deterministic);
    ("gen covers shapes", `Quick, test_gen_covers_shapes);
    ("inject distinct valid mutant", `Quick, test_inject_produces_distinct_valid_mutant);
    ("shrink minimizes", `Quick, test_shrink_minimizes);
    ("shrink rejects passing input", `Quick, test_shrink_rejects_passing_input);
    ("runner clean campaign", `Quick, test_clean_run);
    ("runner jobs-independent", `Quick, test_run_jobs_independent);
    ("runner failure path + reproducer", `Quick, test_failure_shrinks_and_writes_reproducer);
    ("self-test catches all fault classes", `Slow, test_self_test_every_oracle_catches);
    ("self-test jobs-independent", `Quick, test_self_test_jobs_independent);
  ]
