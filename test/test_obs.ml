(* Tests for the Obs telemetry layer: histogram bucket edges, stable
   snapshot byte-identity across job counts, span nesting (including a
   forced PnR abort), and the zero-allocation no-op path. *)

module Obs = Shell_util.Obs
module Pool = Shell_util.Pool
module F = Shell_fabric
module C = Shell_core
module Circ = Shell_circuits

(* Metrics must register at module-initialization time (fixed registry
   order). Unstable by default, so the stable-only snapshots below
   never see them. *)
let c_test = Obs.counter ~help:"test counter" "test_obs_counter"
let g_test = Obs.gauge ~help:"test gauge" "test_obs_gauge"
let h_test = Obs.histogram ~help:"test histogram" "test_obs_hist"

let with_obs f =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled was;
      Obs.reset ())
    f

(* ---- histogram buckets ---- *)

let test_bucket_edges () =
  (* bucket 0 holds values <= 1; bucket i >= 1 holds (2^(i-1), 2^i] *)
  Alcotest.(check int) "0 -> bucket 0" 0 (Obs.bucket_of 0);
  Alcotest.(check int) "1 -> bucket 0" 0 (Obs.bucket_of 1);
  Alcotest.(check int) "2 -> bucket 1" 1 (Obs.bucket_of 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (Obs.bucket_of 3);
  for i = 1 to Obs.nbuckets - 2 do
    let p = 1 lsl i in
    Alcotest.(check int)
      (Printf.sprintf "2^%d on the edge" i)
      i (Obs.bucket_of p);
    Alcotest.(check int)
      (Printf.sprintf "2^%d + 1 rolls over" i)
      (i + 1)
      (Obs.bucket_of (p + 1))
  done;
  Alcotest.(check int) "overflow clamps to last bucket" (Obs.nbuckets - 1)
    (Obs.bucket_of max_int)

let test_histogram_observe () =
  with_obs @@ fun () ->
  Obs.reset ();
  List.iter (Obs.observe h_test) [ 0; 1; 2; 4; 5; 1024 ];
  let s =
    List.find
      (fun (s : Obs.sample) -> s.Obs.name = "test_obs_hist")
      (Obs.snapshot ())
  in
  match s.Obs.value with
  | Obs.Histogram { buckets; count; sum } ->
      Alcotest.(check int) "count" 6 count;
      Alcotest.(check int) "sum" 1036 sum;
      Alcotest.(check int) "bucket 0 (v<=1)" 2 buckets.(0);
      Alcotest.(check int) "bucket 1 (2)" 1 buckets.(1);
      Alcotest.(check int) "bucket 2 (4)" 1 buckets.(2);
      Alcotest.(check int) "bucket 3 (5)" 1 buckets.(3);
      Alcotest.(check int) "bucket 10 (1024)" 1 buckets.(10)
  | _ -> Alcotest.fail "expected a histogram sample"

(* ---- stable snapshot byte-identity across job counts ---- *)

let fir = lazy (Circ.Fir.netlist ())

let stable_snapshot jobs =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) @@ fun () ->
  Obs.reset ();
  C.Pipeline.clear_cache ();
  let o = C.Flow.run_staged (C.Flow.shell_config ()) (Lazy.force fir) in
  Alcotest.(check bool) "flow succeeds" true (o.C.Pipeline.failed = None);
  ignore (Pool.map (fun x -> x * x) (Array.init 64 Fun.id));
  Pool.iter_chunks (fun _ _ -> ()) 1000;
  Obs.to_json ~stable_only:true (Obs.snapshot ())

let test_stable_snapshot_byte_identical () =
  with_obs @@ fun () ->
  let j1 = stable_snapshot 1 in
  let j4 = stable_snapshot 4 in
  Alcotest.(check string) "stable snapshot independent of jobs" j1 j4

(* ---- span nesting ---- *)

let span_child (s : Obs.span) name =
  List.find_opt (fun (c : Obs.span) -> c.Obs.name = name) s.Obs.children

let test_span_tree_full_flow () =
  with_obs @@ fun () ->
  Obs.reset ();
  C.Pipeline.clear_cache ();
  let _ = C.Flow.run_staged (C.Flow.shell_config ()) (Lazy.force fir) in
  let root =
    match Obs.spans () with
    | [ r ] -> r
    | l -> Alcotest.failf "expected one root span, got %d" (List.length l)
  in
  Alcotest.(check string) "root is the pipeline" "pipeline" root.Obs.name;
  Alcotest.(check (list string))
    "one child span per pass, in order" C.Pipeline.pass_names
    (List.map (fun (s : Obs.span) -> s.Obs.name) root.Obs.children);
  let pnr =
    match span_child root "pnr" with
    | Some s -> s
    | None -> Alcotest.fail "no pnr span"
  in
  Alcotest.(check bool) "fit attempts recorded under pnr" true
    (List.exists (fun (s : Obs.span) -> s.Obs.name = "pnr.attempt")
       pnr.Obs.children)

let test_span_tree_pnr_abort () =
  (* pin a 1x1 fabric so strict mode aborts at the pnr pass: the span
     tree must still be recorded and end at the failing pass *)
  with_obs @@ fun () ->
  Obs.reset ();
  C.Pipeline.clear_cache ();
  let tiny =
    {
      F.Fabric.style = F.Style.Fabulous_muxchain;
      cols = 1;
      rows = 1;
      chain_slots = 0;
    }
  in
  let o =
    C.Flow.run_staged ~strict_fit:true ~fabric:tiny (C.Flow.shell_config ())
      (Lazy.force fir)
  in
  Alcotest.(check bool) "flow aborted" true (o.C.Pipeline.failed <> None);
  let root =
    match Obs.spans () with
    | [ r ] -> r
    | l -> Alcotest.failf "expected one root span, got %d" (List.length l)
  in
  Alcotest.(check string) "root is the pipeline" "pipeline" root.Obs.name;
  Alcotest.(check (list string))
    "children stop at the failing pass"
    [ "connectivity"; "selection"; "extraction"; "synthesis"; "pnr" ]
    (List.map (fun (s : Obs.span) -> s.Obs.name) root.Obs.children)

(* ---- disabled fast path ---- *)

let test_disabled_no_alloc () =
  let was = Obs.enabled () in
  Obs.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.set_enabled was) @@ fun () ->
  (* warm up so any one-time setup is out of the measured window *)
  Obs.incr c_test;
  Obs.observe h_test 1;
  Obs.set g_test 1;
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    Obs.incr c_test;
    Obs.add c_test i;
    Obs.set g_test i;
    Obs.observe h_test i
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check bool) "no allocation on the disabled path" true
    (w1 -. w0 < 256.0)

let test_disabled_records_nothing () =
  let was = Obs.enabled () in
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled was;
      Obs.reset ())
  @@ fun () ->
  Obs.set_enabled false;
  Obs.reset ();
  Obs.incr c_test;
  Obs.observe h_test 42;
  let r = Obs.with_span "ghost" (fun () -> 17) in
  Alcotest.(check int) "with_span is transparent" 17 r;
  Alcotest.(check bool) "no spans recorded" true (Obs.spans () = []);
  let s =
    List.find
      (fun (s : Obs.sample) -> s.Obs.name = "test_obs_counter")
      (Obs.snapshot ())
  in
  (match s.Obs.value with
  | Obs.Counter n -> Alcotest.(check int) "counter untouched" 0 n
  | _ -> Alcotest.fail "expected a counter sample")

(* ---- prometheus exposition edge cases ---- *)

(* [sample] is a public record, so the export paths can be exercised on
   hand-built lists without touching the registry. *)
let mk ?(stable = false) ?(help = "h") name value =
  { Obs.name; help; stable; value }

let contains s affix =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_prometheus_empty () =
  Alcotest.(check string) "empty snapshot renders as empty" ""
    (Obs.to_prometheus []);
  Alcotest.(check string) "stable filter on empty" ""
    (Obs.to_prometheus ~stable_only:true [])

let test_prometheus_name_charset () =
  let text =
    Obs.to_prometheus
      [
        mk "pnr.attempt" (Obs.Counter 2);
        mk "9lives" (Obs.Counter 1);
        mk "weird-name!x" (Obs.Gauge 5);
      ]
  in
  Alcotest.(check bool) "dots map to underscores" true
    (contains text "shell_pnr_attempt 2");
  (* the prefix keeps a leading digit legal *)
  Alcotest.(check bool) "leading digit prefixed" true
    (contains text "shell_9lives 1");
  Alcotest.(check bool) "hostile chars sanitized" true
    (contains text "shell_weird_name_x 5");
  Alcotest.(check bool) "no raw dot survives in a metric name" false
    (contains text "pnr.attempt 2")

let test_prometheus_help_escaping () =
  let text =
    Obs.to_prometheus
      [ mk ~help:"line one\nline two \\ end" "m" (Obs.Counter 0) ]
  in
  Alcotest.(check bool) "newline escaped" true
    (contains text "# HELP shell_m line one\\nline two \\\\ end\n");
  Alcotest.(check bool) "help stays on one line" false
    (contains text "line one\nline")

let test_prometheus_histogram_cumulative () =
  let buckets = Array.make Obs.nbuckets 0 in
  buckets.(0) <- 2;
  buckets.(2) <- 1;
  let text =
    Obs.to_prometheus
      [ mk "h" (Obs.Histogram { buckets; count = 3; sum = 10 }) ]
  in
  Alcotest.(check bool) "le=1 cumulative" true
    (contains text "shell_h_bucket{le=\"1\"} 2\n");
  Alcotest.(check bool) "le=4 includes earlier buckets" true
    (contains text "shell_h_bucket{le=\"4\"} 3\n");
  Alcotest.(check bool) "+Inf equals count" true
    (contains text "shell_h_bucket{le=\"+Inf\"} 3\n");
  Alcotest.(check bool) "sum and count lines" true
    (contains text "shell_h_sum 10\nshell_h_count 3\n")

let test_stable_only_filter_round_trip () =
  let samples =
    [
      mk ~stable:true "keep_me" (Obs.Counter 7);
      mk "drop_me" (Obs.Counter 8);
      mk ~stable:true "also_keep" (Obs.Gauge 3);
    ]
  in
  (* prometheus side *)
  let text = Obs.to_prometheus ~stable_only:true samples in
  Alcotest.(check bool) "stable kept" true (contains text "shell_keep_me 7");
  Alcotest.(check bool) "unstable dropped" false (contains text "drop_me");
  (* json side, re-parsed through Jsonw: same filtering decision *)
  match Shell_util.Jsonw.of_string (Obs.to_json ~stable_only:true samples) with
  | Error e -> Alcotest.failf "to_json not parseable: %s" e
  | Ok j ->
      let module Jw = Shell_util.Jsonw in
      let names =
        match j with
        | Jw.Obj [ ("metrics", Jw.Arr ms) ] ->
            List.map
              (function
                | Jw.Obj kvs -> (
                    match List.assoc_opt "name" kvs with
                    | Some (Jw.Str n) -> n
                    | _ -> Alcotest.fail "metric without a name")
                | _ -> Alcotest.fail "metric is not an object")
              ms
        | _ -> Alcotest.fail "expected {\"metrics\": [...]}"
      in
      Alcotest.(check (list string))
        "stable names survive the round trip" [ "keep_me"; "also_keep" ]
        names

let suite =
  [
    ("bucket edges at powers of two", `Quick, test_bucket_edges);
    ("histogram observe", `Quick, test_histogram_observe);
    ( "stable snapshot byte-identical jobs 1 vs 4",
      `Quick,
      test_stable_snapshot_byte_identical );
    ("span tree of a full flow", `Quick, test_span_tree_full_flow);
    ("span tree under pnr abort", `Quick, test_span_tree_pnr_abort);
    ("disabled path allocates nothing", `Quick, test_disabled_no_alloc);
    ("disabled path records nothing", `Quick, test_disabled_records_nothing);
    ("prometheus: empty snapshot", `Quick, test_prometheus_empty);
    ("prometheus: name charset", `Quick, test_prometheus_name_charset);
    ("prometheus: help escaping", `Quick, test_prometheus_help_escaping);
    ( "prometheus: histogram cumulative buckets",
      `Quick,
      test_prometheus_histogram_cumulative );
    ( "stable_only filter json round trip",
      `Quick,
      test_stable_only_filter_round_trip );
  ]
