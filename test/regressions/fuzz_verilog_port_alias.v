// shell fuzz reproducer (minimized)
// oracle: verilog
// seed: 7  case: 20
// shape: in=3 out=1 gates=2 n-names key=0 blocks=1
// failure: lint: duplicate identifier n1
// A primary input literally named "n1" (plus "n3") collides with the
// emitter's fallback names for anonymous cell-driven nets unless the
// printer uniquifies against claimed port names.
module fuzz_port_alias (a, n1, n3, y);
  input a;
  input n1;
  input n3;
  output y;
  wire t;
  and2 g0 (a, n1, t);
  xor2 g1 (t, n3, y);
endmodule
