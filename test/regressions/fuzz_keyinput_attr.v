// shell fuzz reproducer (minimized)
// oracle: verilog
// seed: 7  case: 3
// shape: in=2 out=1 gates=2 key=1 blocks=1
// failure: lint: bare keyinput declaration
// Key ports are ordinary inputs tagged with a (* keyinput *)
// attribute; "keyinput" is not a Verilog keyword and must never be
// emitted as a bare declaration.
module fuzz_keyinput (a, b, kx0, y);
  input a;
  input b;
  (* keyinput *) input kx0;
  output y;
  wire t;
  xor2 g0 (a, kx0, t);
  and2 g1 (t, b, y);
endmodule
