// shell fuzz reproducer (minimized)
// oracle: mux_chain
// seed: 11  case: 46
// shape: in=4 out=2 gates=4 muxes key=0 blocks=1
// failure: differs on input 0110
// Mux feeding a mux through an inverting gate: the shape that
// exercises chain packing and LUT covering across a mux boundary.
module fuzz_synth_mux (a, b, c, s, y, z);
  input a;
  input b;
  input c;
  input s;
  output y;
  output z;
  wire t0;
  wire t1;
  mux2 g0 (s, a, b, t0);
  nand2 g1 (t0, c, t1);
  mux2 g2 (t1, b, a, z);
  xor2 g3 (t0, t1, y);
endmodule
