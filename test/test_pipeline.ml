(* Tests for the staged pass pipeline: trace spans and counters,
   abort-at-PnR with prior artifacts intact, and pass-level cache
   reuse producing byte-identical results. *)

module N = Shell_netlist.Netlist
module F = Shell_fabric
module C = Shell_core
module Circ = Shell_circuits
module Diag = Shell_util.Diag
module Trace = Shell_util.Trace

let fir = lazy (Circ.Fir.netlist ())

let fir_cfg () = C.Flow.shell_config ()

let test_pass_names () =
  Alcotest.(check (list string))
    "nine passes"
    [
      "connectivity";
      "selection";
      "extraction";
      "synthesis";
      "pnr";
      "emit";
      "shrink";
      "overhead";
      "lint";
    ]
    C.Pipeline.pass_names

let test_trace_counters () =
  C.Pipeline.clear_cache ();
  let o = C.Flow.run_staged (fir_cfg ()) (Lazy.force fir) in
  Alcotest.(check bool) "no failure" true (o.C.Pipeline.failed = None);
  Alcotest.(check (list string))
    "one span per pass, in order" C.Pipeline.pass_names
    (List.map (fun s -> s.Trace.pass) o.C.Pipeline.trace);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool)
        (s.Trace.pass ^ " has counters")
        true
        (s.Trace.counters <> []);
      Alcotest.(check bool)
        (s.Trace.pass ^ " time non-negative")
        true (s.Trace.seconds >= 0.0))
    o.C.Pipeline.trace;
  let counter pass name =
    let s = List.find (fun s -> s.Trace.pass = pass) o.C.Pipeline.trace in
    List.assoc name s.Trace.counters
  in
  Alcotest.(check bool) "cells counted" true (counter "connectivity" "cells" > 0);
  Alcotest.(check bool) "luts counted" true (counter "synthesis" "luts" > 0);
  Alcotest.(check bool)
    "config bits counted" true
    (counter "emit" "config_bits" > 0);
  Alcotest.(check bool)
    "routed nets counted" true
    (counter "pnr" "routed_nets" > 0)

let test_forced_pnr_failure () =
  (* pin a 1x1 fabric: the FIR mapping cannot fit, and strict mode
     must abort the pipeline at the pnr pass *)
  let tiny =
    { F.Fabric.style = F.Style.Fabulous_muxchain; cols = 1; rows = 1; chain_slots = 0 }
  in
  let o =
    C.Flow.run_staged ~strict_fit:true ~fabric:tiny (fir_cfg ())
      (Lazy.force fir)
  in
  (match o.C.Pipeline.failed with
  | None -> Alcotest.fail "expected a pnr abort"
  | Some d ->
      Alcotest.(check (option string))
        "failing pass named" (Some "pnr") d.Diag.pass;
      (match d.Diag.payload with
      | F.Fabric.Shortage { demand; capacity; _ } ->
          Alcotest.(check bool) "demand over capacity" true (demand > capacity)
      | _ -> Alcotest.fail "expected a typed Shortage payload"));
  let a = o.C.Pipeline.artifacts in
  Alcotest.(check bool) "analysis intact" true (a.C.Pipeline.analysis <> None);
  Alcotest.(check bool) "choice intact" true (a.C.Pipeline.choice <> None);
  Alcotest.(check bool) "cut intact" true (a.C.Pipeline.cut <> None);
  Alcotest.(check bool) "mapped intact" true (a.C.Pipeline.mapped <> None);
  Alcotest.(check bool) "no emission" true (a.C.Pipeline.emitted = None);
  Alcotest.(check bool) "no overhead" true (a.C.Pipeline.overhead = None)

let summary r = Format.asprintf "%a" C.Flow.pp_summary r

let test_cache_reuse_identical () =
  let nl = Lazy.force fir in
  let cfg = fir_cfg () in
  C.Pipeline.clear_cache ();
  let cold = C.Flow.of_outcome (C.Flow.run_staged cfg nl) in
  let h0, m0 = C.Pipeline.cache_stats () in
  Alcotest.(check int) "cold run misses every pass" 0 h0;
  Alcotest.(check bool) "cold run fills the cache" true (m0 > 0);
  let warm = C.Flow.of_outcome (C.Flow.run_staged cfg nl) in
  let h1, _ = C.Pipeline.cache_stats () in
  Alcotest.(check bool) "warm run hits the cache" true (h1 > 0);
  let uncached = C.Flow.of_outcome (C.Flow.run_staged ~use_cache:false cfg nl) in
  Alcotest.(check string)
    "cached byte-identical to uncached" (summary uncached) (summary warm);
  Alcotest.(check string)
    "warm byte-identical to cold" (summary cold) (summary warm)

let test_downstream_change_reuses_upstream () =
  (* changing only the seed must reuse connectivity..synthesis and
     re-run pnr/emit (their keys include the seed) *)
  let nl = Lazy.force fir in
  let cfg = fir_cfg () in
  C.Pipeline.clear_cache ();
  let _ = C.Flow.run_staged cfg nl in
  let o2 = C.Flow.run_staged { cfg with C.Flow.seed = 7 } nl in
  let hit name =
    (List.find (fun s -> s.Trace.pass = name) o2.C.Pipeline.trace)
      .Trace.cache_hit
  in
  List.iter
    (fun p -> Alcotest.(check bool) (p ^ " reused") true (hit p))
    [ "connectivity"; "selection"; "extraction"; "synthesis" ];
  List.iter
    (fun p -> Alcotest.(check bool) (p ^ " re-run") false (hit p))
    [ "pnr"; "emit"; "shrink" ]

let test_explore_cache_byte_identical () =
  (* the GA sweep with a warm pass cache must produce the same tables
     as a cold one: candidates share upstream passes, results do not
     drift *)
  let nl = Circ.Fir.netlist () in
  let render (o : C.Explore.outcome) =
    String.concat "\n"
      (List.map
         (fun (c : C.Explore.candidate) ->
           Format.asprintf "%s A=%.3f P=%.3f D=%.3f key=%d" c.C.Explore.label
             c.C.Explore.overhead.C.Overhead.area
             c.C.Explore.overhead.C.Overhead.power
             c.C.Explore.overhead.C.Overhead.delay c.C.Explore.key_bits)
         o.C.Explore.evaluated)
  in
  C.Pipeline.clear_cache ();
  let cold = render (C.Explore.search ~generations:2 ~population:6 nl) in
  let h, _ = C.Pipeline.cache_stats () in
  Alcotest.(check bool) "sweep hits the pass cache" true (h > 0);
  let warm = render (C.Explore.search ~generations:2 ~population:6 nl) in
  Alcotest.(check string) "cold and warm sweeps identical" cold warm

let suite =
  [
    ("pass names", `Quick, test_pass_names);
    ("trace counters populated", `Quick, test_trace_counters);
    ("forced pnr failure", `Quick, test_forced_pnr_failure);
    ("cache reuse byte-identical", `Quick, test_cache_reuse_identical);
    ("downstream change reuses upstream", `Quick, test_downstream_change_reuses_upstream);
    ("explore cache byte-identical", `Slow, test_explore_cache_byte_identical);
  ]
