(* Tests for the staged pass pipeline: trace spans and counters,
   abort-at-PnR with prior artifacts intact, and pass-level cache
   reuse producing byte-identical results. *)

module N = Shell_netlist.Netlist
module F = Shell_fabric
module C = Shell_core
module Circ = Shell_circuits
module Diag = Shell_util.Diag
module Trace = Shell_util.Trace

let fir = lazy (Circ.Fir.netlist ())

let fir_cfg () = C.Flow.shell_config ()

let test_pass_names () =
  Alcotest.(check (list string))
    "nine passes"
    [
      "connectivity";
      "selection";
      "extraction";
      "synthesis";
      "pnr";
      "emit";
      "shrink";
      "overhead";
      "lint";
    ]
    C.Pipeline.pass_names

let test_trace_counters () =
  C.Pipeline.clear_cache ();
  let o = C.Flow.run_staged (fir_cfg ()) (Lazy.force fir) in
  Alcotest.(check bool) "no failure" true (o.C.Pipeline.failed = None);
  Alcotest.(check (list string))
    "one span per pass, in order" C.Pipeline.pass_names
    (List.map (fun s -> s.Trace.pass) o.C.Pipeline.trace);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool)
        (s.Trace.pass ^ " has counters")
        true
        (s.Trace.counters <> []);
      Alcotest.(check bool)
        (s.Trace.pass ^ " time non-negative")
        true (s.Trace.seconds >= 0.0))
    o.C.Pipeline.trace;
  let counter pass name =
    let s = List.find (fun s -> s.Trace.pass = pass) o.C.Pipeline.trace in
    List.assoc name s.Trace.counters
  in
  Alcotest.(check bool) "cells counted" true (counter "connectivity" "cells" > 0);
  Alcotest.(check bool) "luts counted" true (counter "synthesis" "luts" > 0);
  Alcotest.(check bool)
    "config bits counted" true
    (counter "emit" "config_bits" > 0);
  Alcotest.(check bool)
    "routed nets counted" true
    (counter "pnr" "routed_nets" > 0)

let test_forced_pnr_failure () =
  (* pin a 1x1 fabric: the FIR mapping cannot fit, and strict mode
     must abort the pipeline at the pnr pass *)
  let tiny =
    { F.Fabric.style = F.Style.Fabulous_muxchain; cols = 1; rows = 1; chain_slots = 0 }
  in
  let o =
    C.Flow.run_staged ~strict_fit:true ~fabric:tiny (fir_cfg ())
      (Lazy.force fir)
  in
  (match o.C.Pipeline.failed with
  | None -> Alcotest.fail "expected a pnr abort"
  | Some d ->
      Alcotest.(check (option string))
        "failing pass named" (Some "pnr") d.Diag.pass;
      (match d.Diag.payload with
      | F.Fabric.Shortage { demand; capacity; _ } ->
          Alcotest.(check bool) "demand over capacity" true (demand > capacity)
      | _ -> Alcotest.fail "expected a typed Shortage payload"));
  let a = o.C.Pipeline.artifacts in
  Alcotest.(check bool) "analysis intact" true (a.C.Pipeline.analysis <> None);
  Alcotest.(check bool) "choice intact" true (a.C.Pipeline.choice <> None);
  Alcotest.(check bool) "cut intact" true (a.C.Pipeline.cut <> None);
  Alcotest.(check bool) "mapped intact" true (a.C.Pipeline.mapped <> None);
  Alcotest.(check bool) "no emission" true (a.C.Pipeline.emitted = None);
  Alcotest.(check bool) "no overhead" true (a.C.Pipeline.overhead = None)

let summary r = Format.asprintf "%a" C.Flow.pp_summary r

let test_cache_reuse_identical () =
  let nl = Lazy.force fir in
  let cfg = fir_cfg () in
  C.Pipeline.clear_cache ();
  let cold = C.Flow.of_outcome (C.Flow.run_staged cfg nl) in
  let h0, m0 = C.Pipeline.cache_stats () in
  Alcotest.(check int) "cold run misses every pass" 0 h0;
  Alcotest.(check bool) "cold run fills the cache" true (m0 > 0);
  let warm = C.Flow.of_outcome (C.Flow.run_staged cfg nl) in
  let h1, _ = C.Pipeline.cache_stats () in
  Alcotest.(check bool) "warm run hits the cache" true (h1 > 0);
  let uncached = C.Flow.of_outcome (C.Flow.run_staged ~use_cache:false cfg nl) in
  Alcotest.(check string)
    "cached byte-identical to uncached" (summary uncached) (summary warm);
  Alcotest.(check string)
    "warm byte-identical to cold" (summary cold) (summary warm)

let test_downstream_change_reuses_upstream () =
  (* changing only the seed must reuse connectivity..synthesis and
     re-run pnr/emit (their keys include the seed) *)
  let nl = Lazy.force fir in
  let cfg = fir_cfg () in
  C.Pipeline.clear_cache ();
  let _ = C.Flow.run_staged cfg nl in
  let o2 = C.Flow.run_staged { cfg with C.Flow.seed = 7 } nl in
  let hit name =
    (List.find (fun s -> s.Trace.pass = name) o2.C.Pipeline.trace)
      .Trace.cache_hit
  in
  List.iter
    (fun p -> Alcotest.(check bool) (p ^ " reused") true (hit p))
    [ "connectivity"; "selection"; "extraction"; "synthesis" ];
  List.iter
    (fun p -> Alcotest.(check bool) (p ^ " re-run") false (hit p))
    [ "pnr"; "emit"; "shrink" ]

let test_explore_cache_byte_identical () =
  (* the GA sweep with a warm pass cache must produce the same tables
     as a cold one: candidates share upstream passes, results do not
     drift *)
  let nl = Circ.Fir.netlist () in
  let render (o : C.Explore.outcome) =
    String.concat "\n"
      (List.map
         (fun (c : C.Explore.candidate) ->
           Format.asprintf "%s A=%.3f P=%.3f D=%.3f key=%d" c.C.Explore.label
             c.C.Explore.overhead.C.Overhead.area
             c.C.Explore.overhead.C.Overhead.power
             c.C.Explore.overhead.C.Overhead.delay c.C.Explore.key_bits)
         o.C.Explore.evaluated)
  in
  C.Pipeline.clear_cache ();
  let cold = render (C.Explore.search ~generations:2 ~population:6 nl) in
  let h, _ = C.Pipeline.cache_stats () in
  Alcotest.(check bool) "sweep hits the pass cache" true (h > 0);
  let warm = render (C.Explore.search ~generations:2 ~population:6 nl) in
  Alcotest.(check string) "cold and warm sweeps identical" cold warm

(* ---- cache internals: single-flight under cap eviction ---- *)

let dummy_product i =
  C.Pipeline.P_choice
    {
      C.Selection.route_blocks = [ i ];
      lgc_blocks = [];
      label = "dummy";
      coverage = 0.0;
      lut_estimate = 0.0;
    }

(* A cap-triggered eviction must drop only Ready entries: a Pending
   slot is another domain's in-flight claim. The old Hashtbl.reset
   wiped claims, so a waiter would re-claim and recompute the key. *)
let test_eviction_preserves_claims () =
  C.Pipeline.clear_cache ();
  let key = "testpass|single-flight" in
  Alcotest.(check bool)
    "key claimed" true
    (C.Pipeline.cache_find key = None);
  (* overflow the cap with Ready fillers; each add past the cap evicts *)
  for i = 0 to C.Pipeline.cache_cap + 8 do
    C.Pipeline.cache_add (Printf.sprintf "filler|%d" i) (dummy_product i)
  done;
  Alcotest.(check bool)
    "claim survives cap eviction" true
    (C.Pipeline.cache_slot key = `Pending);
  (* a second consumer must wait for the claim owner, not recompute:
     it blocks until cache_add lands and then sees the owner's product *)
  let waiter =
    Domain.spawn (fun () ->
        match C.Pipeline.cache_find key with
        | Some (C.Pipeline.P_choice c) -> c.C.Selection.route_blocks
        | _ -> [])
  in
  C.Pipeline.cache_add key (dummy_product 4242);
  Alcotest.(check (list int)) "waiter got the owner's product" [ 4242 ]
    (Domain.join waiter);
  Alcotest.(check bool)
    "key is ready" true
    (C.Pipeline.cache_slot key = `Ready);
  C.Pipeline.clear_cache ()

(* cache_abort re-opens a claimed key *)
let test_abort_reopens () =
  C.Pipeline.clear_cache ();
  let key = "testpass|abort" in
  Alcotest.(check bool) "claimed" true (C.Pipeline.cache_find key = None);
  C.Pipeline.cache_abort key;
  Alcotest.(check bool)
    "absent after abort" true
    (C.Pipeline.cache_slot key = `Absent);
  C.Pipeline.clear_cache ()

(* ---- spill store hooks ---- *)

(* An in-memory store is enough to exercise the save/load wiring:
   after clear_cache (the in-process stand-in for a restart) the
   product must come back from the store as a hit, not a claim. *)
let test_store_round_trip () =
  let blobs : (string, string) Hashtbl.t = Hashtbl.create 8 in
  C.Pipeline.set_store
    (Some
       {
         C.Pipeline.save = (fun k b -> Hashtbl.replace blobs k b);
         load = (fun k -> Hashtbl.find_opt blobs k);
       });
  Fun.protect ~finally:(fun () ->
      C.Pipeline.set_store None;
      C.Pipeline.clear_cache ())
  @@ fun () ->
  C.Pipeline.clear_cache ();
  let key = "testpass|spill" in
  Alcotest.(check bool) "cold claim" true (C.Pipeline.cache_find key = None);
  C.Pipeline.cache_add key (dummy_product 7);
  Alcotest.(check bool) "spilled" true (Hashtbl.mem blobs key);
  C.Pipeline.clear_cache ();
  (match C.Pipeline.cache_find key with
  | Some (C.Pipeline.P_choice c) ->
      Alcotest.(check (list int)) "restored product" [ 7 ]
        c.C.Selection.route_blocks
  | Some _ -> Alcotest.fail "wrong product from store"
  | None ->
      C.Pipeline.cache_abort key;
      Alcotest.fail "store miss after clear_cache");
  let h, m = C.Pipeline.cache_stats () in
  Alcotest.(check int) "disk load counts as a hit" 1 h;
  Alcotest.(check int) "no miss" 0 m;
  (* corrupt blob degrades to a miss (claim), never an error *)
  Hashtbl.replace blobs key "corrupt";
  C.Pipeline.clear_cache ();
  Alcotest.(check bool)
    "corrupt blob -> claim" true
    (C.Pipeline.cache_find key = None);
  C.Pipeline.cache_abort key

(* The full flow with a store attached: a cleared in-memory cache is
   reloaded from the store, and the rerun output is byte-identical. *)
let test_store_warm_flow () =
  let blobs : (string, string) Hashtbl.t = Hashtbl.create 64 in
  C.Pipeline.set_store
    (Some
       {
         C.Pipeline.save = (fun k b -> Hashtbl.replace blobs k b);
         load = (fun k -> Hashtbl.find_opt blobs k);
       });
  Fun.protect ~finally:(fun () ->
      C.Pipeline.set_store None;
      C.Pipeline.clear_cache ())
  @@ fun () ->
  C.Pipeline.clear_cache ();
  let nl = Lazy.force fir in
  let cfg = fir_cfg () in
  let summary r = Format.asprintf "%a" C.Flow.pp_summary r in
  let cold = summary (C.Flow.of_outcome (C.Flow.run_staged cfg nl)) in
  Alcotest.(check bool) "products spilled" true (Hashtbl.length blobs > 0);
  C.Pipeline.clear_cache ();
  let warm = summary (C.Flow.of_outcome (C.Flow.run_staged cfg nl)) in
  let h, m = C.Pipeline.cache_stats () in
  Alcotest.(check string) "store-warm run byte-identical" cold warm;
  Alcotest.(check bool) "served from store" true (h > 0);
  Alcotest.(check int) "no recompute" 0 m

let suite =
  [
    ("pass names", `Quick, test_pass_names);
    ("trace counters populated", `Quick, test_trace_counters);
    ("forced pnr failure", `Quick, test_forced_pnr_failure);
    ("cache reuse byte-identical", `Quick, test_cache_reuse_identical);
    ("downstream change reuses upstream", `Quick, test_downstream_change_reuses_upstream);
    ("explore cache byte-identical", `Slow, test_explore_cache_byte_identical);
    ("cap eviction preserves claims", `Quick, test_eviction_preserves_claims);
    ("abort reopens claim", `Quick, test_abort_reopens);
    ("spill store round trip", `Quick, test_store_round_trip);
    ("spill store warm flow", `Quick, test_store_warm_flow);
  ]
