(* Tests for shell_locking: every scheme must be correct under its key
   and (almost surely) wrong under a perturbed key. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module L = Shell_locking
module Rng = Shell_util.Rng

let victim seed =
  let rng = Rng.create seed in
  let nl = N.create "victim" in
  let pool =
    ref (Array.init 8 (fun i -> N.add_input nl (Printf.sprintf "i%d" i)))
  in
  for _ = 1 to 120 do
    let a = Rng.choice rng !pool and b = Rng.choice rng !pool in
    let kinds = [| Cell.And; Cell.Or; Cell.Xor; Cell.Nand; Cell.Nor |] in
    let out = N.gate nl kinds.(Rng.int rng 5) [| a; b |] in
    pool := Array.append !pool [| out |]
  done;
  for i = 0 to 4 do
    N.add_output nl (Printf.sprintf "o%d" i) (!pool).(Array.length !pool - 1 - i)
  done;
  nl

let wrong_key_differs ~original (lk : L.Locked.t) =
  (* flipping every bit should (for these schemes) change behaviour *)
  if Array.length lk.L.Locked.key = 0 then true
  else begin
    let wrong = Array.map not lk.L.Locked.key in
    not (L.Locked.verify ~original { lk with L.Locked.key = wrong })
  end

let check_scheme name mk =
  let nl = victim 1234 in
  let lk = mk nl in
  Alcotest.(check bool) (name ^ ": correct key works") true
    (L.Locked.verify ~original:nl lk);
  Alcotest.(check bool) (name ^ ": key bits exist") true
    (L.Locked.key_bits lk > 0);
  Alcotest.(check bool) (name ^ ": inverted key fails") true
    (wrong_key_differs ~original:nl lk)

let test_xor () = check_scheme "xor" (L.Schemes.xor_keys ~bits:12)
let test_random_lut () = check_scheme "random-lut" (L.Schemes.random_lut ~gates:8)

let test_heuristic_lut () =
  check_scheme "lut-lock" (L.Schemes.heuristic_lut ~gates:8)

let test_mux_routing () = check_scheme "full-lock" (L.Schemes.mux_routing ~width:8)
let test_mux_lut () = check_scheme "interlock" (L.Schemes.mux_lut ~width:8)

let test_xor_key_size () =
  let nl = victim 99 in
  let lk = L.Schemes.xor_keys ~bits:20 nl in
  Alcotest.(check int) "20 bits" 20 (L.Locked.key_bits lk)

let test_random_lut_key_size () =
  let nl = victim 99 in
  let lk = L.Schemes.random_lut ~gates:5 nl in
  (* 2-input gates and inverters: between 2 and 4 table bits each *)
  Alcotest.(check bool) "table bits" true
    (L.Locked.key_bits lk >= 10 && L.Locked.key_bits lk <= 20)

let test_no_back_to_back_luts () =
  let nl = victim 7 in
  let lk = L.Schemes.heuristic_lut ~gates:10 nl in
  (* key-LUT replacement keeps the original gates in place; the check
     here is structural sanity: the locked netlist validates and grew *)
  (match N.validate lk.L.Locked.locked with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Shell_util.Diag.to_string e));
  Alcotest.(check bool) "netlist grew" true
    (N.num_cells lk.L.Locked.locked > N.num_cells nl)

let test_mux_routing_width_rounding () =
  let nl = victim 3 in
  let lk = L.Schemes.mux_routing ~width:13 nl in
  (* width rounds down to 8: omega network has 8/2 * 3 = 12 switches *)
  Alcotest.(check int) "12 switch keys" 12 (L.Locked.key_bits lk)

let test_omega_identity () =
  let nl = N.create "w" in
  let ins = Array.init 4 (fun i -> N.add_input nl (Printf.sprintf "x%d" i)) in
  let outs, key = L.Insertion.omega_network nl ~origin:"t" ~prefix:"k" ins in
  Array.iteri (fun i o -> N.add_output nl (Printf.sprintf "y%d" i) o) outs;
  Alcotest.(check int) "4 switches" 4 (Array.length key);
  Alcotest.(check bool) "identity key all false" true
    (Array.for_all (fun b -> not b) key);
  (* under the all-false key each output equals its input *)
  let sim = Shell_netlist.Sim.create nl in
  let keyv = Array.map (fun b -> b) key in
  for v = 0 to 15 do
    let ins_v = Array.init 4 (fun i -> v land (1 lsl i) <> 0) in
    let outs_v = Shell_netlist.Sim.eval_comb sim ~keys:keyv ins_v in
    Alcotest.(check (array bool)) "identity" ins_v outs_v
  done

let test_switch_crossing () =
  let nl = N.create "sw" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let oa, ob, straight = L.Insertion.switch_2x2 nl ~origin:"t" ~name:"k" a b in
  N.add_output nl "oa" oa;
  N.add_output nl "ob" ob;
  Alcotest.(check bool) "straight is false" false straight;
  let sim = Shell_netlist.Sim.create nl in
  let st = Shell_netlist.Sim.eval_comb sim ~keys:[| false |] [| true; false |] in
  Alcotest.(check (array bool)) "straight" [| true; false |] st;
  let cr = Shell_netlist.Sim.eval_comb sim ~keys:[| true |] [| true; false |] in
  Alcotest.(check (array bool)) "crossed" [| false; true |] cr

let test_key_lut_truth () =
  let nl = N.create "kl" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  (* truth table of XOR *)
  let out, key =
    L.Insertion.key_lut nl ~origin:"t" ~prefix:"p" ~ins:[| a; b |]
      ~truth:[| false; true; true; false |]
  in
  N.add_output nl "y" out;
  let sim = Shell_netlist.Sim.create nl in
  for v = 0 to 3 do
    let ins = [| v land 1 <> 0; v land 2 <> 0 |] in
    Alcotest.(check bool)
      (Printf.sprintf "row %d" v)
      (ins.(0) <> ins.(1))
      (Shell_netlist.Sim.eval_comb sim ~keys:key ins).(0)
  done

let test_locked_apply_key () =
  let nl = victim 55 in
  let lk = L.Schemes.xor_keys ~bits:6 nl in
  let bound = L.Locked.apply_key lk lk.L.Locked.key in
  Alcotest.(check int) "keys consumed" 0 (List.length (N.keys bound))

let suite =
  [
    ("xor keys", `Quick, test_xor);
    ("random lut", `Quick, test_random_lut);
    ("heuristic lut", `Quick, test_heuristic_lut);
    ("mux routing", `Quick, test_mux_routing);
    ("mux+lut", `Quick, test_mux_lut);
    ("xor key size", `Quick, test_xor_key_size);
    ("random lut key size", `Quick, test_random_lut_key_size);
    ("heuristic structural sanity", `Quick, test_no_back_to_back_luts);
    ("mux width rounding", `Quick, test_mux_routing_width_rounding);
    ("omega identity", `Quick, test_omega_identity);
    ("switch crossing", `Quick, test_switch_crossing);
    ("key lut truth", `Quick, test_key_lut_truth);
    ("apply key", `Quick, test_locked_apply_key);
  ]
