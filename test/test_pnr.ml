(* Tests for shell_pnr: packing, placement, routing, fit loop. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Style = Shell_fabric.Style
module Fabric = Shell_fabric.Fabric
module Pnr = Shell_pnr.Pnr
module Lut_map = Shell_synth.Lut_map
module Rng = Shell_util.Rng

let random_mapped seed n_gates =
  let rng = Rng.create seed in
  let nl = N.create "rand" in
  let pool =
    ref (Array.init 10 (fun i -> N.add_input nl (Printf.sprintf "i%d" i)))
  in
  for _ = 1 to n_gates do
    let a = Rng.choice rng !pool and b = Rng.choice rng !pool in
    let kinds = [| Cell.And; Cell.Or; Cell.Xor; Cell.Nand |] in
    let out = N.gate nl kinds.(Rng.int rng 4) [| a; b |] in
    pool := Array.append !pool [| out |]
  done;
  for i = 0 to 5 do
    N.add_output nl (Printf.sprintf "o%d" i) (!pool).(Array.length !pool - 1 - i)
  done;
  fst (Lut_map.map ~k:4 nl)

let test_fit_loop_converges () =
  let mapped = random_mapped 3 250 in
  let res = Pnr.fit_loop ~style:Style.Openfpga mapped in
  (match res.Pnr.fit with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "fit loop should converge");
  Alcotest.(check bool) "some utilization" true (res.Pnr.utilization > 0.0)

let test_all_cells_placed () =
  let mapped = random_mapped 4 150 in
  let res = Pnr.fit_loop ~style:Style.Fabulous_std mapped in
  let luts =
    N.count_kind mapped (function Cell.Lut _ -> true | _ -> false)
  in
  Alcotest.(check int) "lut count placed" luts res.Pnr.placement.Pnr.used_luts;
  (* every placed cell is inside the grid *)
  Hashtbl.iter
    (fun _ (t : Pnr.tile) ->
      Alcotest.(check bool) "within grid" true
        (t.Pnr.x >= 0
        && t.Pnr.x <= res.Pnr.fabric.Fabric.cols
        && t.Pnr.y >= 0
        && t.Pnr.y <= res.Pnr.fabric.Fabric.rows))
    res.Pnr.placement.Pnr.of_cell

let test_undersized_reports_shortage () =
  let mapped = random_mapped 5 300 in
  let tiny = { Fabric.style = Style.Openfpga; cols = 1; rows = 1; chain_slots = 0 } in
  let res = Pnr.run tiny mapped in
  match res.Pnr.fit with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "1x1 fabric cannot fit 300 gates"

let test_square_wastes_tiles () =
  (* the Fig. 2 effect: on the same mapped netlist, the square OpenFPGA
     grid has at most the LUT utilization of the FABulous rectangle *)
  let mapped = random_mapped 6 300 in
  let sq = Pnr.fit_loop ~style:Style.Openfpga mapped in
  let rc = Pnr.fit_loop ~style:Style.Fabulous_std mapped in
  Alcotest.(check bool)
    (Printf.sprintf "square %.2f <= rect %.2f" sq.Pnr.utilization rc.Pnr.utilization)
    true
    (sq.Pnr.utilization <= rc.Pnr.utilization +. 1e-9)

let test_deterministic () =
  let mapped = random_mapped 7 120 in
  let a = Pnr.fit_loop ~seed:3 ~style:Style.Openfpga mapped in
  let b = Pnr.fit_loop ~seed:3 ~style:Style.Openfpga mapped in
  Alcotest.(check int) "same wirelength" a.Pnr.routes.Pnr.wirelength
    b.Pnr.routes.Pnr.wirelength

let test_annealing_improves () =
  let mapped = random_mapped 8 250 in
  let fabric = Fabric.size_for Style.Fabulous_std ~luts:120 ~user_ffs:0 ~chain_muxes:0 in
  let cold = Pnr.run ~anneal_moves:0 fabric mapped in
  let hot = Pnr.run ~anneal_moves:30_000 fabric mapped in
  Alcotest.(check bool)
    (Printf.sprintf "annealed %d <= initial %d" hot.Pnr.routes.Pnr.wirelength
       cold.Pnr.routes.Pnr.wirelength)
    true
    (hot.Pnr.routes.Pnr.wirelength <= cold.Pnr.routes.Pnr.wirelength + 20)

let test_chain_cells_fit () =
  let nl = N.create "ch" in
  let s = N.add_input nl "s" in
  let data = Array.init 8 (fun i -> N.add_input nl (Printf.sprintf "d%d" i)) in
  let muxes =
    Array.init 4 (fun i ->
        N.mux2 nl ~sel:s ~a:data.(2 * i) ~b:data.((2 * i) + 1))
  in
  Array.iteri (fun i m -> N.add_output nl (Printf.sprintf "y%d" i) m) muxes;
  let res = Pnr.fit_loop ~style:Style.Fabulous_muxchain nl in
  Alcotest.(check int) "chain cells placed" 4 res.Pnr.placement.Pnr.used_chain;
  match res.Pnr.fit with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "chain must fit"

let test_fit_counts () =
  let mapped = random_mapped 10 150 in
  let res = Pnr.fit_loop ~style:Style.Fabulous_std mapped in
  let c = Pnr.fit_counts ~netlist:mapped res in
  Alcotest.(check int) "used luts from placement" res.Pnr.placement.Pnr.used_luts
    c.Pnr.used_luts;
  Alcotest.(check bool) "lut capacity covers demand" true
    (c.Pnr.lut_capacity >= c.Pnr.used_luts);
  Alcotest.(check bool) "ff capacity covers demand" true
    (c.Pnr.ff_capacity >= c.Pnr.used_ffs);
  Alcotest.(check bool) "io pins counted" true
    (match c.Pnr.io_pins with Some n -> n > 0 | None -> false);
  Alcotest.(check bool) "channel width positive" true (c.Pnr.channel_width > 0);
  Alcotest.(check int) "converged fit has no overflow" 0 c.Pnr.overflow_segments

let test_shortage_carries_counts () =
  let mapped = random_mapped 5 300 in
  let tiny =
    { Fabric.style = Style.Openfpga; cols = 1; rows = 1; chain_slots = 0 }
  in
  let res = Pnr.run tiny mapped in
  match Pnr.diag_of_fit ~netlist:mapped res with
  | None -> Alcotest.fail "1x1 fabric must yield a shortage diagnostic"
  | Some d -> (
      match d.Shell_util.Diag.payload with
      | Fabric.Shortage { shortage = _; demand; capacity; counts } ->
          Alcotest.(check bool) "demand exceeds capacity" true
            (demand > capacity);
          let assoc what =
            List.find_opt (fun (n, _, _) -> n = what) counts
          in
          (match assoc "luts" with
          | Some (_, d, c) ->
              Alcotest.(check int) "lut demand in counts"
                res.Pnr.placement.Pnr.used_luts d;
              Alcotest.(check bool) "lut capacity in counts" true (c >= 0)
          | None -> Alcotest.fail "counts must carry the lut triple");
          Alcotest.(check bool) "io triple present with netlist" true
            (assoc "io_pins" <> None)
      | _ -> Alcotest.fail "expected a Fabric.Shortage payload")

let test_floorplan_renders () =
  let mapped = random_mapped 9 100 in
  let res = Pnr.fit_loop ~style:Style.Openfpga mapped in
  let s = Shell_pnr.Floorplan.render res in
  Alcotest.(check bool) "mentions grid" true
    (String.length s > 40);
  (* one row line per fabric row *)
  let rows =
    List.filter
      (fun l -> String.length l > 2 && String.sub l 0 3 = "  |")
      (String.split_on_char '\n' s)
  in
  Alcotest.(check int) "row lines" res.Pnr.fabric.Fabric.rows (List.length rows)

let suite =
  [
    ("fit loop converges", `Quick, test_fit_loop_converges);
    ("all cells placed", `Quick, test_all_cells_placed);
    ("undersized reports shortage", `Quick, test_undersized_reports_shortage);
    ("square wastes tiles (fig 2)", `Quick, test_square_wastes_tiles);
    ("deterministic", `Quick, test_deterministic);
    ("annealing improves", `Quick, test_annealing_improves);
    ("chain cells fit", `Quick, test_chain_cells_fit);
    ("fit counts accounting", `Quick, test_fit_counts);
    ("shortage carries counts", `Quick, test_shortage_carries_counts);
    ("floorplan renders", `Quick, test_floorplan_renders);
  ]
