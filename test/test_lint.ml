(* Tests for shell_lint: one positive + one negative fixture per rule,
   baseline suppression, severity floors, jobs-independent JSON output
   and lint-cleanliness of the pipeline's locked result. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Truthtab = Shell_util.Truthtab
module Jsonw = Shell_util.Jsonw
module Lint = Shell_lint.Lint
module Rules = Shell_lint.Rules
module Bitstream = Shell_fabric.Bitstream
module C = Shell_core
module Circ = Shell_circuits

let run_rule name subj =
  match Rules.find name with
  | None -> Alcotest.failf "unknown rule %s" name
  | Some r -> (Lint.run ~rules:[ r ] subj).Lint.findings

let check_fires name subj =
  Alcotest.(check bool) (name ^ " fires") true (run_rule name subj <> [])

let check_clean name subj =
  match run_rule name subj with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%s expected clean, got: %s" name f.Lint.message

(* well-formed negative fixture for the structural pack *)
let clean () =
  let nl = N.create "clean" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  N.add_output nl "y" (N.and_ nl a b);
  nl

(* ---------------- structural pack ---------------- *)

let test_port_invalid () =
  let nl = N.create "dup" in
  let a = N.add_input nl "a" in
  let a2 = N.add_input nl "a" in
  N.add_output nl "y" (N.or_ nl a a2);
  check_fires "port-invalid" (Lint.subject nl);
  check_clean "port-invalid" (Lint.subject (clean ()))

let test_net_multi_driven () =
  let nl = N.create "dd" in
  let a = N.add_input nl "a" in
  let x = N.not_ nl a in
  N.add_cell nl (Cell.make Cell.Buf [| a |] x);
  N.add_output nl "y" x;
  check_fires "net-multi-driven" (Lint.subject nl);
  check_clean "net-multi-driven" (Lint.subject (clean ()))

let test_net_undriven () =
  let nl = N.create "float" in
  let a = N.add_input nl "a" in
  let dangling = N.new_net nl in
  N.add_output nl "y" (N.and_ nl a dangling);
  check_fires "net-undriven" (Lint.subject nl);
  check_clean "net-undriven" (Lint.subject (clean ()))

let test_comb_cycle () =
  let nl = N.create "loop" in
  let a = N.add_input nl "a" in
  let q = N.new_net nl in
  N.add_cell nl (Cell.make Cell.And [| a; q |] q);
  N.add_output nl "y" q;
  check_fires "comb-cycle" (Lint.subject nl);
  (* a dff breaks the cycle *)
  let seq = N.create "seq" in
  let a = N.add_input seq "a" in
  let q = N.new_net seq in
  let d = N.xor_ seq a q in
  N.add_cell seq (Cell.make Cell.Dff [| d |] q);
  N.add_output seq "y" q;
  check_clean "comb-cycle" (Lint.subject seq)

let test_cell_dead () =
  let nl = clean () in
  let a = snd (List.hd (N.inputs nl)) in
  let _unused = N.not_ nl a in
  check_fires "cell-dead" (Lint.subject nl);
  check_clean "cell-dead" (Lint.subject (clean ()))

let test_output_constant () =
  let nl = N.create "stuck" in
  let a = N.add_input nl "a" in
  let z = N.const nl false in
  N.add_output nl "y" (N.and_ nl a z);
  check_fires "output-constant" (Lint.subject nl);
  check_clean "output-constant" (Lint.subject (clean ()))

let test_lut_degenerate () =
  let nl = N.create "lutdeg" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  (* a 2-input table that only depends on input 0 *)
  N.add_output nl "y" (N.lut nl (Truthtab.var 0 ~arity:2) [| a; b |]);
  check_fires "lut-degenerate" (Lint.subject nl);
  let ok = N.create "lutok" in
  let a = N.add_input ok "a" in
  let b = N.add_input ok "b" in
  N.add_output ok "y"
    (N.lut ok (Truthtab.of_fun ~arity:2 (fun v -> v.(0) <> v.(1))) [| a; b |]);
  check_clean "lut-degenerate" (Lint.subject ok)

(* ---------------- security pack ---------------- *)

let test_key_dead () =
  let nl = N.create "kdead" in
  let _k = N.add_key nl "kb0" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.not_ nl a);
  check_fires "key-dead" (Lint.subject nl);
  let ok = N.create "kok" in
  let k = N.add_key ok "kb0" in
  let a = N.add_input ok "a" in
  N.add_output ok "y" (N.xor_ ok k a);
  check_clean "key-dead" (Lint.subject ok)

let test_key_blocked () =
  (* the key is wired towards the output, but an AND-with-0 cuts
     every path: reachable yet not live *)
  let nl = N.create "kblk" in
  let k = N.add_key nl "kb0" in
  let a = N.add_input nl "a" in
  let z = N.const nl false in
  N.add_output nl "y" (N.and_ nl (N.xor_ nl k a) z);
  check_fires "key-blocked" (Lint.subject nl);
  let ok = N.create "kok" in
  let k = N.add_key ok "kb0" in
  let a = N.add_input ok "a" in
  N.add_output ok "y" (N.xor_ ok k a);
  check_clean "key-blocked" (Lint.subject ok)

let test_mux_chain_cycle () =
  let nl = N.create "muxloop" in
  let s = N.add_input nl "s" in
  let a = N.add_input nl "a" in
  let q = N.new_net nl in
  N.add_cell nl (Cell.make Cell.Mux2 [| s; q; a |] q);
  N.add_output nl "y" q;
  check_fires "mux-chain-cycle" (Lint.subject nl);
  let ok = N.create "muxok" in
  let s = N.add_input ok "s" in
  let a = N.add_input ok "a" in
  let b = N.add_input ok "b" in
  N.add_output ok "y" (N.mux2 ok ~sel:s ~a ~b);
  check_clean "mux-chain-cycle" (Lint.subject ok)

let sel_design ~adjacent =
  let nl = N.create "sel" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let r = N.and_ ~origin:"top.routeblk" nl a b in
  let feed = if adjacent then r else N.not_ nl (N.not_ nl r) in
  N.add_output nl "y" (N.not_ ~origin:"top.lgcblk" nl feed);
  nl

let test_lgc_depth () =
  let selection design =
    { Lint.design; route_origins = [ "routeblk" ]; lgc_origins = [ "lgcblk" ] }
  in
  let far = sel_design ~adjacent:false in
  check_fires "lgc-depth" (Lint.subject ~selection:(selection far) far);
  let near = sel_design ~adjacent:true in
  check_clean "lgc-depth" (Lint.subject ~selection:(selection near) near)

let test_ref_mismatch () =
  let golden = clean () in
  let tampered =
    N.map_cells (clean ()) (fun _ c ->
        match c.Cell.kind with
        | Cell.And -> { c with Cell.kind = Cell.Or }
        | _ -> c)
  in
  check_fires "ref-mismatch" (Lint.subject ~reference:golden tampered);
  check_clean "ref-mismatch" (Lint.subject ~reference:golden (clean ()))

(* ---------------- fabric pack ---------------- *)

let keyed ~use_both =
  let nl = N.create "cfg" in
  let k0 = N.add_key nl "kb0" in
  let k1 = N.add_key nl "kb1" in
  let a = N.add_input nl "a" in
  let x = N.and_ nl k0 a in
  N.add_output nl "y" (if use_both then N.xor_ nl x k1 else x);
  nl

let test_config_dangling () =
  let bs () =
    let b = Bitstream.builder () in
    Bitstream.append b "lut0.in0.sel" [| true; false |];
    b
  in
  (* kb1 is a config bit with no fanout *)
  check_fires "config-dangling"
    (Lint.subject ~bitstream:(bs ()) (keyed ~use_both:false));
  check_clean "config-dangling"
    (Lint.subject ~bitstream:(bs ()) (keyed ~use_both:true))

let test_bitstream_accounting () =
  let bad = Bitstream.builder () in
  (* 3 bits can't be a LUT table, and the netlist exposes 2 key bits *)
  Bitstream.append bad "lut0.table" [| true; false; true |];
  let fs =
    run_rule "bitstream-accounting"
      (Lint.subject ~bitstream:bad (keyed ~use_both:true))
  in
  let wheres = List.map (fun (f : Lint.finding) -> f.Lint.where) fs in
  Alcotest.(check bool) "table-size flagged" true
    (List.mem "segment:lut0.table" wheres);
  Alcotest.(check bool) "key-count flagged" true (List.mem "keys" wheres);
  let ok = Bitstream.builder () in
  Bitstream.append ok "lut0.table" [| true; false |];
  check_clean "bitstream-accounting"
    (Lint.subject ~bitstream:ok (keyed ~use_both:true))

let fir_result =
  lazy
    (C.Pipeline.clear_cache ();
     C.Flow.run (C.Flow.shell_config ()) (Circ.Fir.netlist ()))

let test_fabric_unused () =
  let r = Lazy.force fir_result in
  (* same fit, shrink flagged off: the sized fabric has slack *)
  let unshrunk =
    Lint.subject ~pnr:r.C.Flow.pnr ~shrunk:false r.C.Flow.locked_full
  in
  check_fires "fabric-unused" unshrunk;
  let shrunk =
    Lint.subject ~pnr:r.C.Flow.pnr ~shrunk:true r.C.Flow.locked_full
  in
  check_clean "fabric-unused" shrunk

(* ---------------- engine ---------------- *)

(* a fixture that trips rules of all three severities *)
let noisy () =
  let nl = N.create "noisy" in
  let _k = N.add_key nl "kb0" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let _dead = N.not_ nl a in
  N.add_output nl "y" (N.lut nl (Truthtab.var 0 ~arity:2) [| a; b |]);
  let q = N.new_net nl in
  N.add_cell nl (Cell.make Cell.And [| a; q |] q);
  N.add_output nl "z" q;
  nl

let test_severity_floor () =
  let subj = Lint.subject (noisy ()) in
  let all = Lint.run ~rules:Rules.all subj in
  Alcotest.(check bool) "has errors" true (all.Lint.errors > 0);
  Alcotest.(check bool) "has warns" true (all.Lint.warns > 0);
  Alcotest.(check bool) "has infos" true (all.Lint.infos > 0);
  let errs_only = Lint.run ~severity:Lint.Error ~rules:Rules.all subj in
  Alcotest.(check int) "same errors" all.Lint.errors errs_only.Lint.errors;
  Alcotest.(check int) "warns filtered" 0 errs_only.Lint.warns;
  Alcotest.(check int) "infos filtered" 0 errs_only.Lint.infos;
  List.iter
    (fun (f : Lint.finding) ->
      Alcotest.(check string)
        "only errors remain" "error"
        (Lint.severity_name f.Lint.severity))
    errs_only.Lint.findings

let test_baseline_suppression () =
  let subj = Lint.subject (noisy ()) in
  let r = Lint.run ~rules:Rules.all subj in
  Alcotest.(check bool) "not ok before" false (Lint.ok r);
  let fps =
    List.map
      (Lint.fingerprint ~subject_name:r.Lint.subject_name)
      r.Lint.findings
  in
  let suppressed = Lint.run ~baseline:fps ~rules:Rules.all subj in
  Alcotest.(check int) "all suppressed"
    (List.length r.Lint.findings)
    suppressed.Lint.suppressed;
  Alcotest.(check (list string)) "no findings left" []
    (List.map (fun (f : Lint.finding) -> f.Lint.where) suppressed.Lint.findings);
  Alcotest.(check bool) "ok after" true (Lint.ok suppressed);
  (* fingerprints survive a baseline-file round-trip *)
  let file =
    String.concat "\n"
      ("# comment" :: List.map (Lint.baseline_line ~subject_name:r.Lint.subject_name)
          r.Lint.findings)
  in
  Alcotest.(check (list string)) "parse round-trip" fps (Lint.parse_baseline file)

let test_jobs_independent () =
  let json jobs =
    let subj = Lint.subject (noisy ()) in
    let r = Lint.run ~jobs ~rules:Rules.all subj in
    Jsonw.to_string ~indent:2 (Lint.reports_json [ r ])
  in
  Alcotest.(check string) "json byte-identical jobs 1 vs 4" (json 1) (json 4)

let test_locked_flow_clean () =
  let r = Lazy.force fir_result in
  let rep = r.C.Flow.lint in
  if rep.Lint.errors <> 0 then
    List.iter
      (fun (f : Lint.finding) ->
        Format.eprintf "%a@." (Lint.pp_finding ~subject_name:rep.Lint.subject_name) f)
      rep.Lint.findings;
  Alcotest.(check int) "locked pipeline result lints clean" 0 rep.Lint.errors

let suite =
  [
    Alcotest.test_case "port-invalid" `Quick test_port_invalid;
    Alcotest.test_case "net-multi-driven" `Quick test_net_multi_driven;
    Alcotest.test_case "net-undriven" `Quick test_net_undriven;
    Alcotest.test_case "comb-cycle" `Quick test_comb_cycle;
    Alcotest.test_case "cell-dead" `Quick test_cell_dead;
    Alcotest.test_case "output-constant" `Quick test_output_constant;
    Alcotest.test_case "lut-degenerate" `Quick test_lut_degenerate;
    Alcotest.test_case "key-dead" `Quick test_key_dead;
    Alcotest.test_case "key-blocked" `Quick test_key_blocked;
    Alcotest.test_case "mux-chain-cycle" `Quick test_mux_chain_cycle;
    Alcotest.test_case "lgc-depth" `Quick test_lgc_depth;
    Alcotest.test_case "ref-mismatch" `Quick test_ref_mismatch;
    Alcotest.test_case "config-dangling" `Quick test_config_dangling;
    Alcotest.test_case "bitstream-accounting" `Quick test_bitstream_accounting;
    Alcotest.test_case "fabric-unused" `Quick test_fabric_unused;
    Alcotest.test_case "severity floor" `Quick test_severity_floor;
    Alcotest.test_case "baseline suppression" `Quick test_baseline_suppression;
    Alcotest.test_case "jobs-independent JSON" `Quick test_jobs_independent;
    Alcotest.test_case "locked flow lints clean" `Quick test_locked_flow_clean;
  ]
