(* Tests for shell_lint: one positive + one negative fixture per rule,
   baseline suppression, severity floors, jobs-independent JSON output
   and lint-cleanliness of the pipeline's locked result. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Truthtab = Shell_util.Truthtab
module Jsonw = Shell_util.Jsonw
module Lint = Shell_lint.Lint
module Rules = Shell_lint.Rules
module Bitstream = Shell_fabric.Bitstream
module C = Shell_core
module Circ = Shell_circuits

let run_rule name subj =
  match Rules.find name with
  | None -> Alcotest.failf "unknown rule %s" name
  | Some r -> (Lint.run ~rules:[ r ] subj).Lint.findings

let check_fires name subj =
  Alcotest.(check bool) (name ^ " fires") true (run_rule name subj <> [])

let check_clean name subj =
  match run_rule name subj with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%s expected clean, got: %s" name f.Lint.message

(* well-formed negative fixture for the structural pack *)
let clean () =
  let nl = N.create "clean" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  N.add_output nl "y" (N.and_ nl a b);
  nl

(* ---------------- structural pack ---------------- *)

let test_port_invalid () =
  let nl = N.create "dup" in
  let a = N.add_input nl "a" in
  let a2 = N.add_input nl "a" in
  N.add_output nl "y" (N.or_ nl a a2);
  check_fires "port-invalid" (Lint.subject nl);
  check_clean "port-invalid" (Lint.subject (clean ()))

let test_net_multi_driven () =
  let nl = N.create "dd" in
  let a = N.add_input nl "a" in
  let x = N.not_ nl a in
  N.add_cell nl (Cell.make Cell.Buf [| a |] x);
  N.add_output nl "y" x;
  check_fires "net-multi-driven" (Lint.subject nl);
  check_clean "net-multi-driven" (Lint.subject (clean ()))

let test_net_undriven () =
  let nl = N.create "float" in
  let a = N.add_input nl "a" in
  let dangling = N.new_net nl in
  N.add_output nl "y" (N.and_ nl a dangling);
  check_fires "net-undriven" (Lint.subject nl);
  check_clean "net-undriven" (Lint.subject (clean ()))

let test_comb_cycle () =
  let nl = N.create "loop" in
  let a = N.add_input nl "a" in
  let q = N.new_net nl in
  N.add_cell nl (Cell.make Cell.And [| a; q |] q);
  N.add_output nl "y" q;
  check_fires "comb-cycle" (Lint.subject nl);
  (* a dff breaks the cycle *)
  let seq = N.create "seq" in
  let a = N.add_input seq "a" in
  let q = N.new_net seq in
  let d = N.xor_ seq a q in
  N.add_cell seq (Cell.make Cell.Dff [| d |] q);
  N.add_output seq "y" q;
  check_clean "comb-cycle" (Lint.subject seq)

let test_cell_dead () =
  let nl = clean () in
  let a = snd (List.hd (N.inputs nl)) in
  let _unused = N.not_ nl a in
  check_fires "cell-dead" (Lint.subject nl);
  check_clean "cell-dead" (Lint.subject (clean ()))

let test_output_constant () =
  let nl = N.create "stuck" in
  let a = N.add_input nl "a" in
  let z = N.const nl false in
  N.add_output nl "y" (N.and_ nl a z);
  check_fires "output-constant" (Lint.subject nl);
  check_clean "output-constant" (Lint.subject (clean ()))

let test_lut_degenerate () =
  let nl = N.create "lutdeg" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  (* a 2-input table that only depends on input 0 *)
  N.add_output nl "y" (N.lut nl (Truthtab.var 0 ~arity:2) [| a; b |]);
  check_fires "lut-degenerate" (Lint.subject nl);
  let ok = N.create "lutok" in
  let a = N.add_input ok "a" in
  let b = N.add_input ok "b" in
  N.add_output ok "y"
    (N.lut ok (Truthtab.of_fun ~arity:2 (fun v -> v.(0) <> v.(1))) [| a; b |]);
  check_clean "lut-degenerate" (Lint.subject ok)

(* ---------------- security pack ---------------- *)

let test_key_dead () =
  let nl = N.create "kdead" in
  let _k = N.add_key nl "kb0" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.not_ nl a);
  check_fires "key-dead" (Lint.subject nl);
  let ok = N.create "kok" in
  let k = N.add_key ok "kb0" in
  let a = N.add_input ok "a" in
  N.add_output ok "y" (N.xor_ ok k a);
  check_clean "key-dead" (Lint.subject ok)

let test_key_blocked () =
  (* the key is wired towards the output, but an AND-with-0 cuts
     every path: reachable yet not live *)
  let nl = N.create "kblk" in
  let k = N.add_key nl "kb0" in
  let a = N.add_input nl "a" in
  let z = N.const nl false in
  N.add_output nl "y" (N.and_ nl (N.xor_ nl k a) z);
  check_fires "key-blocked" (Lint.subject nl);
  let ok = N.create "kok" in
  let k = N.add_key ok "kb0" in
  let a = N.add_input ok "a" in
  N.add_output ok "y" (N.xor_ ok k a);
  check_clean "key-blocked" (Lint.subject ok)

let test_key_odc_dead () =
  (* the key steers a mux whose arms are the same net: it survives the
     constant cuts (reach + live) but the ODC rules mask its only read *)
  let nl = N.create "odcdead" in
  let k = N.add_key nl "kb0" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.mux2 nl ~sel:k ~a ~b:a);
  check_fires "key-odc-dead" (Lint.subject nl);
  (* distinct arms: the select is genuinely observable, provably clean *)
  let ok = N.create "odcok" in
  let k = N.add_key ok "kb0" in
  let a = N.add_input ok "a" in
  let b = N.add_input ok "b" in
  N.add_output ok "y" (N.mux2 ok ~sel:k ~a ~b);
  check_clean "key-odc-dead" (Lint.subject ok)

let test_key_taint_collapse () =
  (* same-arm mux: the output's cone carries no key influence at all,
     even though the netlist exposes a key *)
  let nl = N.create "collapse" in
  let k = N.add_key nl "kb0" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.mux2 nl ~sel:k ~a ~b:a);
  check_fires "key-taint-collapse" (Lint.subject nl);
  (* an XOR-keyed output is tainted by its bit: provably clean *)
  let ok = N.create "taintok" in
  let k = N.add_key ok "kb0" in
  let a = N.add_input ok "a" in
  N.add_output ok "y" (N.xor_ ok k a);
  check_clean "key-taint-collapse" (Lint.subject ok)

let test_scope_leak () =
  (* AND-keying collapses asymmetrically: pinning the bit to 0 proves
     the output constant, pinning to 1 proves nothing *)
  let nl = N.create "leak" in
  let k = N.add_key nl "kb0" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.and_ nl k a);
  check_fires "scope-leak" (Lint.subject nl);
  (* XOR-keying is score-symmetric: neither pinning proves anything,
     so the rule provably cannot fire *)
  let ok = N.create "leakok" in
  let k = N.add_key ok "kb0" in
  let a = N.add_input ok "a" in
  N.add_output ok "y" (N.xor_ ok k a);
  check_clean "scope-leak" (Lint.subject ok)

let test_mux_chain_cycle () =
  let nl = N.create "muxloop" in
  let s = N.add_input nl "s" in
  let a = N.add_input nl "a" in
  let q = N.new_net nl in
  N.add_cell nl (Cell.make Cell.Mux2 [| s; q; a |] q);
  N.add_output nl "y" q;
  check_fires "mux-chain-cycle" (Lint.subject nl);
  let ok = N.create "muxok" in
  let s = N.add_input ok "s" in
  let a = N.add_input ok "a" in
  let b = N.add_input ok "b" in
  N.add_output ok "y" (N.mux2 ok ~sel:s ~a ~b);
  check_clean "mux-chain-cycle" (Lint.subject ok)

let sel_design ~adjacent =
  let nl = N.create "sel" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let r = N.and_ ~origin:"top.routeblk" nl a b in
  let feed = if adjacent then r else N.not_ nl (N.not_ nl r) in
  N.add_output nl "y" (N.not_ ~origin:"top.lgcblk" nl feed);
  nl

let test_lgc_depth () =
  let selection design =
    { Lint.design; route_origins = [ "routeblk" ]; lgc_origins = [ "lgcblk" ] }
  in
  let far = sel_design ~adjacent:false in
  check_fires "lgc-depth" (Lint.subject ~selection:(selection far) far);
  let near = sel_design ~adjacent:true in
  check_clean "lgc-depth" (Lint.subject ~selection:(selection near) near)

let test_ref_mismatch () =
  let golden = clean () in
  let tampered =
    N.map_cells (clean ()) (fun _ c ->
        match c.Cell.kind with
        | Cell.And -> { c with Cell.kind = Cell.Or }
        | _ -> c)
  in
  check_fires "ref-mismatch" (Lint.subject ~reference:golden tampered);
  check_clean "ref-mismatch" (Lint.subject ~reference:golden (clean ()))

(* ---------------- fabric pack ---------------- *)

let keyed ~use_both =
  let nl = N.create "cfg" in
  let k0 = N.add_key nl "kb0" in
  let k1 = N.add_key nl "kb1" in
  let a = N.add_input nl "a" in
  let x = N.and_ nl k0 a in
  N.add_output nl "y" (if use_both then N.xor_ nl x k1 else x);
  nl

let test_config_dangling () =
  let bs () =
    let b = Bitstream.builder () in
    Bitstream.append b "lut0.in0.sel" [| true; false |];
    b
  in
  (* kb1 is a config bit with no fanout *)
  check_fires "config-dangling"
    (Lint.subject ~bitstream:(bs ()) (keyed ~use_both:false));
  check_clean "config-dangling"
    (Lint.subject ~bitstream:(bs ()) (keyed ~use_both:true))

let test_bitstream_accounting () =
  let bad = Bitstream.builder () in
  (* 3 bits can't be a LUT table, and the netlist exposes 2 key bits *)
  Bitstream.append bad "lut0.table" [| true; false; true |];
  let fs =
    run_rule "bitstream-accounting"
      (Lint.subject ~bitstream:bad (keyed ~use_both:true))
  in
  let wheres = List.map (fun (f : Lint.finding) -> f.Lint.where) fs in
  Alcotest.(check bool) "table-size flagged" true
    (List.mem "segment:lut0.table" wheres);
  Alcotest.(check bool) "key-count flagged" true (List.mem "keys" wheres);
  let ok = Bitstream.builder () in
  Bitstream.append ok "lut0.table" [| true; false |];
  check_clean "bitstream-accounting"
    (Lint.subject ~bitstream:ok (keyed ~use_both:true))

let fir_result =
  lazy
    (C.Pipeline.clear_cache ();
     C.Flow.run (C.Flow.shell_config ()) (Circ.Fir.netlist ()))

let test_fabric_unused () =
  let r = Lazy.force fir_result in
  (* same fit, shrink flagged off: the sized fabric has slack *)
  let unshrunk =
    Lint.subject ~pnr:r.C.Flow.pnr ~shrunk:false r.C.Flow.locked_full
  in
  check_fires "fabric-unused" unshrunk;
  let shrunk =
    Lint.subject ~pnr:r.C.Flow.pnr ~shrunk:true r.C.Flow.locked_full
  in
  check_clean "fabric-unused" shrunk

(* ---------------- ODC / taint vs brute-force Simw ---------------- *)

module Dataflow = Shell_lint.Dataflow
module Odc = Shell_lint.Odc
module Taint = Shell_lint.Taint
module Simw = Shell_netlist.Simw

(* Brute-force ground truth: which outputs functionally depend on key
   bit [bit]? Exhaustive over every input vector (packed word-parallel
   into Simw lanes) and every assignment of the other key bits. *)
let dependent_outputs nl ~bit =
  let n_in = List.length (N.inputs nl) in
  let nk = List.length (N.keys nl) in
  let n_out = List.length (N.outputs nl) in
  let lanes = 1 lsl n_in in
  assert (lanes <= Simw.width);
  let simw = Simw.create nl in
  let in_words =
    Array.init n_in (fun i ->
        let w = ref 0 in
        for l = 0 to lanes - 1 do
          if (l lsr i) land 1 = 1 then w := !w lor (1 lsl l)
        done;
        !w)
  in
  let dep = Array.make n_out false in
  for others = 0 to (1 lsl nk) - 1 do
    if (others lsr bit) land 1 = 0 then begin
      let keys0 = Array.init nk (fun j -> (others lsr j) land 1 = 1) in
      let keys1 = Array.copy keys0 in
      keys1.(bit) <- true;
      let o0 = Simw.eval_comb simw ~keys:keys0 ~lanes in_words in
      let o1 = Simw.eval_comb simw ~keys:keys1 ~lanes in_words in
      for oi = 0 to n_out - 1 do
        if o0.(oi) <> o1.(oi) then dep.(oi) <- true
      done
    end
  done;
  dep

(* Soundness direction of both analyses, against the ground truth: a
   key bit the ODC pass marks unobservable must not affect any output,
   and an output whose taint set misses a bit must not depend on it. *)
let check_agreement nl =
  let name = N.name nl in
  let values = Dataflow.const_values nl in
  let odc = Odc.analyze ~values nl in
  let taint = Taint.analyze ~values nl in
  let outs = Array.of_list (N.outputs nl) in
  List.iteri
    (fun b (knm, knet) ->
      let dep = dependent_outputs nl ~bit:b in
      if not odc.Odc.observable.(knet) then
        Array.iteri
          (fun oi (onm, _) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: unobservable %s cannot reach %s" name knm
                 onm)
              false dep.(oi))
          outs;
      Array.iteri
        (fun oi (onm, onet) ->
          if not (Taint.tainted taint ~net:onet ~bit:b) then
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s untainted by %s must not depend on it"
                 name onm knm)
              false dep.(oi))
        outs)
    (N.keys nl)

let test_odc_taint_vs_simw () =
  (* same-arm mux: select masked *)
  let m1 = N.create "agr_mux_same" in
  let k = N.add_key m1 "k" in
  let a = N.add_input m1 "a" in
  N.add_output m1 "y" (N.mux2 m1 ~sel:k ~a ~b:a);
  (* mux4 with all arms equal: both selects masked *)
  let m2 = N.create "agr_mux4_same" in
  let k0 = N.add_key m2 "k0" in
  let k1 = N.add_key m2 "k1" in
  let a = N.add_input m2 "a" in
  N.add_output m2 "y" (N.mux4 m2 ~s0:k0 ~s1:k1 [| a; a; a; a |]);
  (* pinned select: the key rides the dead arm *)
  let m3 = N.create "agr_sel_pinned" in
  let k = N.add_key m3 "k" in
  let a = N.add_input m3 "a" in
  N.add_output m3 "y" (N.mux2 m3 ~sel:(N.const m3 true) ~a:k ~b:a);
  (* x xor x: both reads masked, output silently constant *)
  let m4 = N.create "agr_xor_same" in
  let k = N.add_key m4 "k" in
  let a = N.add_input m4 "a" in
  N.add_output m4 "y" (N.xor_ m4 k k);
  N.add_output m4 "z" a;
  (* controlling constant: AND with 0 blocks the key *)
  let m5 = N.create "agr_and_zero" in
  let k = N.add_key m5 "k" in
  let a = N.add_input m5 "a" in
  N.add_output m5 "y" (N.or_ m5 (N.and_ m5 k (N.const m5 false)) a);
  (* the attack-side gadget fixture: k0/k1 genuinely live on y/s0/s1
     but s0 is untainted by k1 and s1 by k0 *)
  let m6 = N.create "agr_gadget" in
  let a = N.add_input m6 "a" in
  let b = N.add_input m6 "b" in
  let c = N.add_input m6 "c" in
  let k0 = N.add_key m6 "k0" in
  let k1 = N.add_key m6 "k1" in
  let t = N.xor_ m6 (N.and_ m6 a b) c in
  N.add_output m6 "y" (N.xor_ m6 (N.xnor_ m6 t k0) k1);
  N.add_output m6 "s0" (N.and_ m6 a k0);
  N.add_output m6 "s1" (N.or_ m6 b k1);
  List.iter check_agreement [ m1; m2; m3; m4; m5; m6 ];
  (* and the converse sanity on the gadget: the live pairs really are
     tainted and observable *)
  let values = Dataflow.const_values m6 in
  let taint = Taint.analyze ~values m6 in
  let odc = Odc.analyze ~values m6 in
  let y_net = List.assoc "y" (N.outputs m6) in
  Alcotest.(check bool) "gadget y tainted by k0" true
    (Taint.tainted taint ~net:y_net ~bit:0);
  Alcotest.(check bool) "gadget y tainted by k1" true
    (Taint.tainted taint ~net:y_net ~bit:1);
  List.iter
    (fun (_, knet) ->
      Alcotest.(check bool) "gadget keys observable" true
        odc.Odc.observable.(knet))
    (N.keys m6)

(* ---------------- engine ---------------- *)

(* a fixture that trips rules of all three severities *)
let noisy () =
  let nl = N.create "noisy" in
  let _k = N.add_key nl "kb0" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let _dead = N.not_ nl a in
  N.add_output nl "y" (N.lut nl (Truthtab.var 0 ~arity:2) [| a; b |]);
  let q = N.new_net nl in
  N.add_cell nl (Cell.make Cell.And [| a; q |] q);
  N.add_output nl "z" q;
  nl

let test_severity_floor () =
  let subj = Lint.subject (noisy ()) in
  let all = Lint.run ~rules:Rules.all subj in
  Alcotest.(check bool) "has errors" true (all.Lint.errors > 0);
  Alcotest.(check bool) "has warns" true (all.Lint.warns > 0);
  Alcotest.(check bool) "has infos" true (all.Lint.infos > 0);
  let errs_only = Lint.run ~severity:Lint.Error ~rules:Rules.all subj in
  Alcotest.(check int) "same errors" all.Lint.errors errs_only.Lint.errors;
  Alcotest.(check int) "warns filtered" 0 errs_only.Lint.warns;
  Alcotest.(check int) "infos filtered" 0 errs_only.Lint.infos;
  List.iter
    (fun (f : Lint.finding) ->
      Alcotest.(check string)
        "only errors remain" "error"
        (Lint.severity_name f.Lint.severity))
    errs_only.Lint.findings

let test_baseline_suppression () =
  let subj = Lint.subject (noisy ()) in
  let r = Lint.run ~rules:Rules.all subj in
  Alcotest.(check bool) "not ok before" false (Lint.ok r);
  let fps =
    List.map
      (Lint.fingerprint ~subject_name:r.Lint.subject_name)
      r.Lint.findings
  in
  let suppressed = Lint.run ~baseline:fps ~rules:Rules.all subj in
  Alcotest.(check int) "all suppressed"
    (List.length r.Lint.findings)
    suppressed.Lint.suppressed;
  Alcotest.(check (list string)) "no findings left" []
    (List.map (fun (f : Lint.finding) -> f.Lint.where) suppressed.Lint.findings);
  Alcotest.(check bool) "ok after" true (Lint.ok suppressed);
  (* fingerprints survive a baseline-file round-trip *)
  let file =
    String.concat "\n"
      ("# comment" :: List.map (Lint.baseline_line ~subject_name:r.Lint.subject_name)
          r.Lint.findings)
  in
  Alcotest.(check (list string)) "parse round-trip" fps (Lint.parse_baseline file)

let test_jobs_independent () =
  (* a key-bearing fixture so the security-pack rules (incl. the
     dataflow-engine trio) contribute findings to the diffed JSON *)
  let keyed () =
    let nl = N.create "keyed" in
    let k0 = N.add_key nl "k0" in
    let k1 = N.add_key nl "k1" in
    let a = N.add_input nl "a" in
    N.add_output nl "y" (N.mux2 nl ~sel:k0 ~a ~b:a);
    N.add_output nl "z" (N.and_ nl k1 a);
    nl
  in
  let json jobs =
    let rs =
      List.map
        (fun nl -> Lint.run ~jobs ~rules:Rules.all (Lint.subject nl))
        [ noisy (); keyed () ]
    in
    Jsonw.to_string ~indent:2 (Lint.reports_json rs)
  in
  let j1 = json 1 in
  Alcotest.(check string) "json byte-identical jobs 1 vs 4" j1 (json 4);
  List.iter
    (fun rule ->
      let needle = Printf.sprintf "\"rule\": %S" rule in
      let found =
        let ln = String.length needle and lj = String.length j1 in
        let rec go i = i + ln <= lj && (String.sub j1 i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (rule ^ " present in diffed JSON") true found)
    [ "key-odc-dead"; "key-taint-collapse"; "scope-leak" ]

let test_locked_flow_clean () =
  let r = Lazy.force fir_result in
  let rep = r.C.Flow.lint in
  if rep.Lint.errors <> 0 then
    List.iter
      (fun (f : Lint.finding) ->
        Format.eprintf "%a@." (Lint.pp_finding ~subject_name:rep.Lint.subject_name) f)
      rep.Lint.findings;
  Alcotest.(check int) "locked pipeline result lints clean" 0 rep.Lint.errors

let suite =
  [
    Alcotest.test_case "port-invalid" `Quick test_port_invalid;
    Alcotest.test_case "net-multi-driven" `Quick test_net_multi_driven;
    Alcotest.test_case "net-undriven" `Quick test_net_undriven;
    Alcotest.test_case "comb-cycle" `Quick test_comb_cycle;
    Alcotest.test_case "cell-dead" `Quick test_cell_dead;
    Alcotest.test_case "output-constant" `Quick test_output_constant;
    Alcotest.test_case "lut-degenerate" `Quick test_lut_degenerate;
    Alcotest.test_case "key-dead" `Quick test_key_dead;
    Alcotest.test_case "key-blocked" `Quick test_key_blocked;
    Alcotest.test_case "key-odc-dead" `Quick test_key_odc_dead;
    Alcotest.test_case "key-taint-collapse" `Quick test_key_taint_collapse;
    Alcotest.test_case "scope-leak" `Quick test_scope_leak;
    Alcotest.test_case "odc+taint vs Simw brute force" `Quick
      test_odc_taint_vs_simw;
    Alcotest.test_case "mux-chain-cycle" `Quick test_mux_chain_cycle;
    Alcotest.test_case "lgc-depth" `Quick test_lgc_depth;
    Alcotest.test_case "ref-mismatch" `Quick test_ref_mismatch;
    Alcotest.test_case "config-dangling" `Quick test_config_dangling;
    Alcotest.test_case "bitstream-accounting" `Quick test_bitstream_accounting;
    Alcotest.test_case "fabric-unused" `Quick test_fabric_unused;
    Alcotest.test_case "severity floor" `Quick test_severity_floor;
    Alcotest.test_case "baseline suppression" `Quick test_baseline_suppression;
    Alcotest.test_case "jobs-independent JSON" `Quick test_jobs_independent;
    Alcotest.test_case "locked flow lints clean" `Quick test_locked_flow_clean;
  ]
