(* Tests for shell_circuits: every benchmark must elaborate to a valid,
   acyclic netlist with the blocks its TfRs name, and behave sanely
   under simulation. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Sim = Shell_netlist.Sim
module Circ = Shell_circuits

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let origins nl =
  List.map fst (Shell_rtl.Elab.module_footprint nl)

let check_benchmark (e : Circ.Catalog.entry) () =
  let nl = e.Circ.Catalog.netlist () in
  (match N.validate nl with Ok () -> () | Error m -> Alcotest.fail (Shell_util.Diag.to_string m));
  Alcotest.(check bool) "acyclic" false (N.has_comb_cycle nl);
  Alcotest.(check bool) "has cells" true (N.num_cells nl > 1000);
  Alcotest.(check bool) "has state" true
    (N.count_kind nl (function Cell.Dff -> true | _ -> false) > 0);
  (* all TfR patterns resolve to blocks *)
  let os = origins nl in
  let patterns t =
    t.Circ.Catalog.route @ t.Circ.Catalog.lgc
  in
  List.iter
    (fun pat ->
      Alcotest.(check bool) ("pattern " ^ pat) true
        (List.exists (fun o -> contains ~sub:pat o) os))
    (patterns e.Circ.Catalog.tfr_case1
    @ patterns e.Circ.Catalog.tfr_case2
    @ patterns e.Circ.Catalog.tfr_case3
    @ patterns e.Circ.Catalog.tfr_shell);
  (* simulation responds to inputs: some output changes over a run
     (pipelined designs need a few cycles before anything moves) *)
  let sim = Sim.create nl in
  let n_in = List.length (N.inputs nl) in
  let outputs = ref [] in
  for cycle = 0 to 7 do
    let ins = Array.init n_in (fun i -> (i + cycle) mod 3 <> 0) in
    outputs := Sim.step sim ins :: !outputs
  done;
  let distinct = List.sort_uniq compare !outputs in
  Alcotest.(check bool) "outputs respond" true (List.length distinct > 1)

let test_catalog_complete () =
  Alcotest.(check int) "five benchmarks" 5 (List.length Circ.Catalog.all);
  Alcotest.(check bool) "find is case-insensitive" true
    (Circ.Catalog.find "picosoc" <> None);
  Alcotest.(check bool) "unknown is None" true (Circ.Catalog.find "zzz" = None)

let test_xbar_function () =
  (* requester 0 asks target 2 with a known payload *)
  let nl = Circ.Axi_xbar.netlist ~channels:4 ~data_width:4 () in
  let sim = Sim.create nl in
  let ins = Array.make (List.length (N.inputs nl)) false in
  (* port order per channel: data(4), addr(2), valid(1) *)
  ins.(0) <- true;  (* data bit 0 *)
  ins.(3) <- true;  (* data bit 3: payload 9 *)
  ins.(5) <- true;  (* addr bit 1: target 2 *)
  ins.(6) <- true;  (* valid *)
  let outs = Sim.eval_comb sim ins in
  (* outputs per target: data(4) then valid(1), five bits per target *)
  let base = 2 * 5 in
  Alcotest.(check bool) "tgt2 data bit0" true outs.(base);
  Alcotest.(check bool) "tgt2 data bit3" true outs.(base + 3);
  Alcotest.(check bool) "tgt2 valid" true outs.(base + 4);
  Alcotest.(check bool) "tgt0 idle" false outs.(4)

let test_xbar_route_fraction () =
  let nl = Circ.Axi_xbar.netlist () in
  Alcotest.(check bool) "mux heavy" true
    (Shell_synth.Mux_chain.route_fraction nl > 0.25)

let test_soc_builds () =
  let nl = Circ.Soc.netlist () in
  (match N.validate nl with Ok () -> () | Error m -> Alcotest.fail (Shell_util.Diag.to_string m));
  let os = origins nl in
  Alcotest.(check bool) "xbar instance present" true
    (List.exists (fun o -> contains ~sub:"/xbar" o) os);
  Alcotest.(check bool) "wrappers present" true
    (List.exists (fun o -> contains ~sub:"wrap_core2" o) os)

let test_desx_deterministic () =
  let a = Circ.Desx.netlist () in
  let b = Circ.Desx.netlist () in
  Alcotest.(check int) "same size" (N.num_cells a) (N.num_cells b);
  let c = Circ.Desx.netlist ~seed:99 () in
  Alcotest.(check bool) "seed matters" true
    (Shell_netlist.Verilog.to_string a <> Shell_netlist.Verilog.to_string c
    || N.num_cells a <> N.num_cells c)

let test_aes_sbox_bijective () =
  (* the mini-AES sbox table is a permutation *)
  let seen = Array.make 16 false in
  Array.iter (fun v -> seen.(v) <- true) Circ.Aes.sbox_table;
  Alcotest.(check bool) "bijective" true (Array.for_all Fun.id seen)

let suite =
  List.map
    (fun (e : Circ.Catalog.entry) ->
      (e.Circ.Catalog.name ^ " generator", `Quick, check_benchmark e))
    Circ.Catalog.all
  @ [
      ("catalog complete", `Quick, test_catalog_complete);
      ("xbar function", `Quick, test_xbar_function);
      ("xbar route fraction", `Quick, test_xbar_route_fraction);
      ("soc builds", `Quick, test_soc_builds);
      ("desx deterministic", `Quick, test_desx_deterministic);
      ("aes sbox bijective", `Quick, test_aes_sbox_bijective);
    ]
