(* Tests for shell_synth: optimization, LUT mapping and MUX-chain
   mapping — all passes must preserve function. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Equiv = Shell_netlist.Equiv
module Opt = Shell_synth.Opt
module Lut_map = Shell_synth.Lut_map
module Mux_chain = Shell_synth.Mux_chain
module Estimate = Shell_synth.Estimate
module Rng = Shell_util.Rng

let equivalent a b =
  match Equiv.check a b with Equiv.Equivalent -> true | _ -> false

let random_nl seed n_in n_gates =
  let rng = Rng.create seed in
  let nl = N.create "rand" in
  let pool =
    ref (Array.init n_in (fun i -> N.add_input nl (Printf.sprintf "i%d" i)))
  in
  for _ = 1 to n_gates do
    let a = Rng.choice rng !pool and b = Rng.choice rng !pool in
    let out =
      match Rng.int rng 8 with
      | 0 -> N.and_ nl a b
      | 1 -> N.or_ nl a b
      | 2 -> N.xor_ nl a b
      | 3 -> N.nand_ nl a b
      | 4 -> N.nor_ nl a b
      | 5 -> N.xnor_ nl a b
      | 6 -> N.not_ nl a
      | _ -> N.mux2 nl ~sel:(Rng.choice rng !pool) ~a ~b
    in
    pool := Array.append !pool [| out |]
  done;
  for i = 0 to 3 do
    N.add_output nl (Printf.sprintf "o%d" i) (!pool).(Array.length !pool - 1 - i)
  done;
  nl

let test_simplify_constants () =
  let nl = N.create "c" in
  let a = N.add_input nl "a" in
  let zero = N.const nl false in
  let one = N.const nl true in
  let x = N.and_ nl a zero in  (* = 0 *)
  let y = N.or_ nl x one in    (* = 1 *)
  let z = N.xor_ nl y a in     (* = not a *)
  N.add_output nl "z" z;
  let s = Opt.simplify nl in
  Alcotest.(check bool) "equivalent" true (equivalent nl s);
  Alcotest.(check bool) "collapsed to <= 2 cells" true (N.num_cells s <= 2)

let test_simplify_strash () =
  let nl = N.create "s" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  (* same AND twice, under both operand orders *)
  let x = N.and_ nl a b in
  let y = N.and_ nl b a in
  N.add_output nl "o" (N.xor_ nl x y);
  let s = Opt.simplify nl in
  Alcotest.(check bool) "equivalent" true (equivalent nl s);
  (* x xor x = 0: everything folds to a constant *)
  Alcotest.(check bool) "folded" true (N.num_cells s <= 1)

let test_simplify_mux_same_data () =
  let nl = N.create "m" in
  let a = N.add_input nl "a" in
  let s = N.add_input nl "s" in
  let y = N.mux2 nl ~sel:s ~a ~b:a in
  N.add_output nl "y" y;
  let opt = Opt.simplify nl in
  Alcotest.(check int) "mux gone" 0 (N.num_cells opt)

let test_simplify_preserves_random =
  QCheck.Test.make ~name:"simplify preserves function" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let nl = random_nl seed 7 120 in
      equivalent nl (Opt.simplify nl))

let test_simplify_keeps_seq () =
  let nl = N.create "q" in
  let a = N.add_input nl "a" in
  let q = N.new_net nl in
  let d = N.xor_ nl a q in
  N.add_cell nl (Cell.make Cell.Dff [| d |] q);
  N.add_output nl "q" q;
  let s = Opt.simplify nl in
  Alcotest.(check int) "dff kept" 1
    (N.count_kind s (function Cell.Dff -> true | _ -> false))

let test_lut_map_equivalent =
  QCheck.Test.make ~name:"lut mapping preserves function" ~count:25
    QCheck.(pair (int_bound 100_000) (int_range 2 6))
    (fun (seed, k) ->
      let nl = random_nl seed 7 100 in
      let mapped, _ = Lut_map.map ~k nl in
      equivalent nl mapped)

let test_lut_map_arity_bound () =
  let nl = random_nl 5 8 150 in
  let mapped, stats = Lut_map.map ~k:4 nl in
  Array.iter
    (fun c ->
      match c.Cell.kind with
      | Cell.Lut tt ->
          Alcotest.(check bool) "arity <= 4" true
            (Shell_util.Truthtab.arity tt <= 4)
      | _ -> ())
    (N.cells mapped);
  Alcotest.(check bool) "compresses" true (stats.Lut_map.luts < N.num_cells nl)

let test_lut_map_bad_k () =
  let nl = random_nl 1 4 10 in
  Alcotest.check_raises "k=1 rejected" (Invalid_argument "Lut_map.map: k")
    (fun () -> ignore (Lut_map.map ~k:1 nl));
  Alcotest.check_raises "k=7 rejected" (Invalid_argument "Lut_map.map: k")
    (fun () -> ignore (Lut_map.map ~k:7 nl))

let test_lut_map_boundary_pred () =
  let nl = N.create "b" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let s = N.add_input nl "s" in
  let m = N.mux2 ~origin:"route" nl ~sel:s ~a ~b in
  let y = N.not_ nl m in
  N.add_output nl "y" y;
  let keep c = c.Cell.kind = Cell.Mux2 && c.Cell.origin = "route" in
  let mapped, _ = Lut_map.map ~k:4 ~boundary:keep nl in
  Alcotest.(check int) "mux survived" 1
    (N.count_kind mapped (function Cell.Mux2 -> true | _ -> false));
  Alcotest.(check bool) "equivalent" true (equivalent nl mapped)

(* balanced 4:1 mux tree packs into a single Mux4 *)
let test_mux_chain_full_pack () =
  let nl = N.create "r" in
  let s0 = N.add_input nl "s0" in
  let s1 = N.add_input nl "s1" in
  let d = Array.init 4 (fun i -> N.add_input nl (Printf.sprintf "d%d" i)) in
  let m0 = N.mux2 nl ~sel:s0 ~a:d.(0) ~b:d.(1) in
  let m1 = N.mux2 nl ~sel:s0 ~a:d.(2) ~b:d.(3) in
  N.add_output nl "y" (N.mux2 nl ~sel:s1 ~a:m0 ~b:m1);
  let packed, st = Mux_chain.map nl in
  Alcotest.(check int) "one mux4" 1 st.Mux_chain.mux4;
  Alcotest.(check int) "no mux2 left" 0 st.Mux_chain.mux2;
  Alcotest.(check bool) "equivalent" true (equivalent nl packed)

let test_mux_chain_cascade () =
  (* 8:1 priority chain with distinct selects: chain-pattern packing *)
  let nl = N.create "chain" in
  let sels = Array.init 7 (fun i -> N.add_input nl (Printf.sprintf "s%d" i)) in
  let data = Array.init 8 (fun i -> N.add_input nl (Printf.sprintf "d%d" i)) in
  let rec build i acc =
    if i < 0 then acc
    else build (i - 1) (N.mux2 nl ~sel:sels.(i) ~a:acc ~b:data.(i))
  in
  N.add_output nl "y" (build 6 data.(7));
  let packed, st = Mux_chain.map nl in
  Alcotest.(check bool) "some mux4 packed" true (st.Mux_chain.mux4 >= 2);
  Alcotest.(check bool) "equivalent" true (equivalent nl packed)

let test_mux_chain_respects_fanout () =
  (* inner mux read twice: must NOT be absorbed *)
  let nl = N.create "f" in
  let s0 = N.add_input nl "s0" in
  let s1 = N.add_input nl "s1" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let inner = N.mux2 nl ~sel:s0 ~a ~b in
  let outer = N.mux2 nl ~sel:s1 ~a:inner ~b:a in
  N.add_output nl "y" outer;
  N.add_output nl "probe" inner;
  let packed, st = Mux_chain.map nl in
  Alcotest.(check int) "no pack" 0 st.Mux_chain.mux4;
  Alcotest.(check bool) "equivalent" true (equivalent nl packed)

let test_mux_chain_pred () =
  let nl = N.create "p" in
  let s = N.add_input nl "s" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let m1 = N.mux2 ~origin:"lgc" nl ~sel:s ~a ~b in
  let y = N.mux2 ~origin:"lgc" nl ~sel:s ~a:m1 ~b in
  N.add_output nl "y" y;
  let packed, st =
    Mux_chain.map ~should_pack:(fun c -> c.Cell.origin = "route") nl
  in
  Alcotest.(check int) "nothing packed" 0 st.Mux_chain.mux4;
  Alcotest.(check bool) "equivalent" true (equivalent nl packed)

let test_estimate_positive () =
  let nl = random_nl 9 6 80 in
  let est = Estimate.estimate_cells nl (List.init (N.num_cells nl) Fun.id) in
  Alcotest.(check bool) "positive" true (est > 0.0);
  (* estimate within a factor ~3 of the true mapping *)
  let _, stats = Lut_map.map ~k:4 nl in
  let ratio = est /. float_of_int (max 1 stats.Lut_map.luts) in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f sane" ratio)
    true
    (ratio > 0.2 && ratio < 5.0)

let test_route_fraction () =
  let nl = N.create "rf" in
  let s = N.add_input nl "s" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let m = N.mux2 nl ~sel:s ~a ~b in
  let g = N.and_ nl m a in
  N.add_output nl "y" g;
  Alcotest.(check (float 1e-9)) "half" 0.5 (Mux_chain.route_fraction nl)

(* fuzzer-minimized reproducer: mux -> nand -> mux shape that
   exercises chain packing and LUT covering across a mux boundary *)
let test_regression_mux_passes () =
  let read file =
    let ic = open_in (Filename.concat "regressions" file) in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    src
  in
  let nl = Shell_netlist.Verilog.parse (read "fuzz_synth_mux.v") in
  Alcotest.(check bool) "opt equivalent" true (equivalent nl (Opt.simplify nl));
  let mapped, _ = Lut_map.map ~k:4 nl in
  Alcotest.(check bool) "lut map equivalent" true (equivalent nl mapped);
  let chained, _ = Mux_chain.map nl in
  Alcotest.(check bool) "mux chain equivalent" true (equivalent nl chained)

let suite =
  [
    ("simplify constants", `Quick, test_simplify_constants);
    ("simplify strash", `Quick, test_simplify_strash);
    ("simplify mux same data", `Quick, test_simplify_mux_same_data);
    QCheck_alcotest.to_alcotest test_simplify_preserves_random;
    ("simplify keeps sequential", `Quick, test_simplify_keeps_seq);
    QCheck_alcotest.to_alcotest test_lut_map_equivalent;
    ("lut map arity bound", `Quick, test_lut_map_arity_bound);
    ("lut map bad k", `Quick, test_lut_map_bad_k);
    ("lut map boundary predicate", `Quick, test_lut_map_boundary_pred);
    ("mux chain full pack", `Quick, test_mux_chain_full_pack);
    ("mux chain cascade", `Quick, test_mux_chain_cascade);
    ("mux chain respects fanout", `Quick, test_mux_chain_respects_fanout);
    ("mux chain predicate", `Quick, test_mux_chain_pred);
    ("estimate positive and sane", `Quick, test_estimate_positive);
    ("route fraction", `Quick, test_route_fraction);
    ("regression: fuzz mux reproducer", `Quick, test_regression_mux_passes);
  ]
