(* Unit and property tests for shell_util: Rng, Truthtab, Vec, Jsonw. *)

module Rng = Shell_util.Rng
module Truthtab = Shell_util.Truthtab
module Vec = Shell_util.Vec
module J = Shell_util.Jsonw

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_covers () =
  let rng = Rng.create 11 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id) sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 9 in
  let s = Rng.sample rng 10 (Array.init 30 Fun.id) in
  let tbl = Hashtbl.create 10 in
  Array.iter (fun x -> Hashtbl.replace tbl x ()) s;
  Alcotest.(check int) "distinct" 10 (Hashtbl.length tbl)

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr matches
  done;
  Alcotest.(check bool) "split streams differ" true (!matches < 4)

(* ---- Truthtab ---- *)

let test_tt_const () =
  Alcotest.(check bool) "const0" false (Truthtab.eval (Truthtab.const false) [||]);
  Alcotest.(check bool) "const1" true (Truthtab.eval (Truthtab.const true) [||])

let test_tt_var () =
  let t = Truthtab.var 1 ~arity:3 in
  Alcotest.(check bool) "picks v1" true (Truthtab.eval t [| false; true; false |]);
  Alcotest.(check bool) "ignores others" false
    (Truthtab.eval t [| true; false; true |])

let test_tt_ops () =
  let a = Truthtab.var 0 ~arity:2 and b = Truthtab.var 1 ~arity:2 in
  let t_and = Truthtab.land_ a b in
  let t_or = Truthtab.lor_ a b in
  let t_xor = Truthtab.lxor_ a b in
  List.iter
    (fun (x, y) ->
      let ins = [| x; y |] in
      Alcotest.(check bool) "and" (x && y) (Truthtab.eval t_and ins);
      Alcotest.(check bool) "or" (x || y) (Truthtab.eval t_or ins);
      Alcotest.(check bool) "xor" (x <> y) (Truthtab.eval t_xor ins))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_tt_not_involution () =
  let t = Truthtab.create ~arity:4 ~bits:0xBEEFL in
  Alcotest.(check bool) "double negation" true
    (Truthtab.equal t (Truthtab.lnot (Truthtab.lnot t)))

let test_tt_cofactor () =
  (* f = x0 AND x1; cofactor x0=1 is x1's projection *)
  let f = Truthtab.land_ (Truthtab.var 0 ~arity:2) (Truthtab.var 1 ~arity:2) in
  let g = Truthtab.cofactor f 0 true in
  Alcotest.(check bool) "f|x0=1 = x1" true
    (Truthtab.equal g (Truthtab.var 0 ~arity:1));
  let z = Truthtab.cofactor f 0 false in
  Alcotest.(check (option bool)) "f|x0=0 = 0" (Some false) (Truthtab.is_const z)

let test_tt_depends_on () =
  let f = Truthtab.var 2 ~arity:4 in
  Alcotest.(check bool) "depends on x2" true (Truthtab.depends_on f 2);
  Alcotest.(check bool) "not on x0" false (Truthtab.depends_on f 0);
  Alcotest.(check int) "support 1" 1 (Truthtab.support_size f)

let test_tt_arity6 () =
  (* full-width table must not lose bit 63 *)
  let f = Truthtab.of_fun ~arity:6 (fun ins -> Array.for_all Fun.id ins) in
  Alcotest.(check bool) "row 63 set" true (Truthtab.eval f (Array.make 6 true));
  Alcotest.(check bool) "row 62 clear" false
    (Truthtab.eval f [| false; true; true; true; true; true |])

let test_tt_of_fun_roundtrip =
  QCheck.Test.make ~name:"truthtab of_fun/eval roundtrip" ~count:200
    QCheck.(pair (int_bound 5) (int_bound 0x3FFFFFFF))
    (fun (arity_minus, seed) ->
      let arity = 1 + arity_minus in
      let bits = Int64.of_int seed in
      let t = Truthtab.create ~arity ~bits in
      let t' = Truthtab.of_fun ~arity (fun ins -> Truthtab.eval t ins) in
      Truthtab.equal t t')

(* ---- Vec ---- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 0;
  Alcotest.(check int) "set 7" 0 (Vec.get v 7)

let test_vec_pop () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "pop" (Some 3) (Vec.pop v);
  Alcotest.(check int) "len" 2 (Vec.length v);
  ignore (Vec.pop v);
  ignore (Vec.pop v);
  Alcotest.(check (option int)) "empty pop" None (Vec.pop v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "oob get" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1))

let test_vec_fold_iter () =
  let v = Vec.of_array (Array.init 10 Fun.id) in
  Alcotest.(check int) "fold sum" 45 (Vec.fold ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 10 (List.length !acc);
  Alcotest.(check (list int)) "to_list" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Vec.to_list v)

(* ---- Jsonw ---- *)

let test_jsonw_escaping () =
  let nasty = "quote \" backslash \\ newline \n tab \t nul \x00 bell \x07" in
  let s = J.to_string (J.Str nasty) in
  Alcotest.(check bool) "escapes the quote" true
    (String.length s > 2 && s.[0] = '"');
  match J.of_string s with
  | Ok (J.Str back) -> Alcotest.(check string) "round-trips" nasty back
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let test_jsonw_roundtrip_doc () =
  let doc =
    J.Obj
      [
        ("null", J.Null);
        ("bools", J.Arr [ J.Bool true; J.Bool false ]);
        ("int", J.Int (-42));
        ("num", J.float ~dec:3 1.5);
        ("str", J.Str "weird \"keys\"\\and\nvalues");
        ("nested", J.Obj [ ("empty_arr", J.Arr []); ("empty_obj", J.Obj []) ]);
      ]
  in
  (* the parser keeps numbers as verbatim [Num] literals, so
     round-trips are compared on the serialized form *)
  let compact = J.to_string doc in
  let pretty = J.to_string ~indent:2 doc in
  (match J.of_string compact with
  | Ok back -> Alcotest.(check string) "compact round-trips" compact (J.to_string back)
  | Error e -> Alcotest.fail ("compact parse error: " ^ e));
  match J.of_string pretty with
  | Ok back -> Alcotest.(check string) "pretty round-trips" compact (J.to_string back)
  | Error e -> Alcotest.fail ("pretty parse error: " ^ e)

let test_jsonw_float_special () =
  Alcotest.(check bool) "nan is null" true (J.float Float.nan = J.Null);
  Alcotest.(check bool) "inf is null" true (J.float Float.infinity = J.Null);
  Alcotest.(check string) "dec respected" "0.25"
    (J.to_string (J.float ~dec:2 0.25))

let test_jsonw_surrogate_pair () =
  (* U+1F600 as an escaped surrogate pair must decode to one 4-byte
     UTF-8 scalar, not two 3-byte CESU-8 halves *)
  match J.of_string "\"\\ud83d\\ude00\"" with
  | Ok (J.Str s) ->
      Alcotest.(check string) "4-byte utf-8" "\xf0\x9f\x98\x80" s;
      (* and the decoded form survives a serialize/parse cycle *)
      let again = J.to_string (J.Str s) in
      (match J.of_string again with
      | Ok (J.Str s2) -> Alcotest.(check string) "round-trips" s s2
      | Ok _ -> Alcotest.fail "re-parse gave a non-string"
      | Error e -> Alcotest.fail ("re-parse error: " ^ e))
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let test_jsonw_lone_surrogate () =
  let rejects what input =
    match J.of_string input with
    | Ok _ -> Alcotest.fail (what ^ ": accepted invalid input")
    | Error _ -> ()
  in
  rejects "lone high surrogate" "\"\\ud83d\"";
  rejects "lone low surrogate" "\"\\ude00\"";
  rejects "high surrogate then text" "\"\\ud83dXY\"";
  rejects "high then non-low escape" "\"\\ud83d\\u0041\"";
  rejects "bad hex digits" "\"\\uZZZZ\""

let test_rng_child_stable () =
  let t = Rng.create 42 in
  let a = Rng.child t 3 and b = Rng.child t 3 in
  for _ = 1 to 16 do
    Alcotest.(check int64) "same child stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  (* deriving a child must not advance the parent *)
  let p = Rng.copy t in
  ignore (Rng.child t 9);
  Alcotest.(check int64) "parent unmoved" (Rng.bits64 p) (Rng.bits64 t)

let test_rng_child_indices_differ () =
  let t = Rng.create 7 in
  let a = Rng.child t 0 and b = Rng.child t 1 in
  let same = ref 0 in
  for _ = 1 to 16 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "index streams differ" true (!same < 4)

let test_rng_split_n () =
  let t = Rng.create 5 in
  let gens = Rng.split_n t 6 in
  Alcotest.(check int) "count" 6 (Array.length gens);
  let tbl = Hashtbl.create 8 in
  Array.iter (fun g -> Hashtbl.replace tbl (Rng.bits64 g) ()) gens;
  Alcotest.(check int) "distinct first draws" 6 (Hashtbl.length tbl)

let test_rng_int_large_bound () =
  (* rejection sampling must stay in range right up to huge bounds
     (the old modulo fold-back skewed these) and stay roughly even on
     small non-power-of-two bounds *)
  let rng = Rng.create 13 in
  let big = (max_int / 2) + 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng big in
    Alcotest.(check bool) "in range" true (v >= 0 && v < big)
  done;
  let buckets = Array.make 6 0 in
  for _ = 1 to 6000 do
    let v = Rng.int rng 6 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d even" i)
        true
        (n > 800 && n < 1200))
    buckets

let test_rng_word_stream_compat () =
  (* Rng.word n draws exactly the n Rng.bool draws a scalar loop would,
     in the same order — the word path must not perturb the stream. *)
  let a = Rng.create 0x1234 and b = Rng.create 0x1234 in
  List.iter
    (fun n ->
      let w = Rng.word a n in
      let scalar = ref 0 in
      for i = 0 to n - 1 do
        if Rng.bool b then scalar := !scalar lor (1 lsl i)
      done;
      Alcotest.(check int) (Printf.sprintf "word %d" n) !scalar w)
    [ 0; 1; 5; 17; Sys.int_size ];
  (* both RNGs must land in the same state afterwards *)
  Alcotest.(check int64) "streams aligned" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_vectors_packed_stream_compat () =
  (* vectors_packed is vector-major, bit-minor: chunk (v / lanes), lane
     (v mod lanes), exactly mirroring per-vector scalar generation. *)
  let a = Rng.create 0x77 and b = Rng.create 0x77 in
  let lanes = 8 and vectors = 21 and bits = 5 in
  let chunks = Rng.vectors_packed ~lanes a ~vectors ~bits in
  Alcotest.(check int) "chunk count" 3 (Array.length chunks);
  for v = 0 to vectors - 1 do
    let vec = Array.init bits (fun _ -> Rng.bool b) in
    let words = chunks.(v / lanes) in
    let lane = v mod lanes in
    Array.iteri
      (fun i bit ->
        Alcotest.(check bool)
          (Printf.sprintf "vector %d bit %d" v i)
          bit
          ((words.(i) lsr lane) land 1 = 1))
      vec
  done;
  Alcotest.(check int64) "streams aligned" (Rng.bits64 a) (Rng.bits64 b)

let test_tt_eval_row () =
  let t = Truthtab.var 1 ~arity:3 in
  for row = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "row %d" row)
      (row land 2 <> 0)
      (Truthtab.eval_row t row)
  done

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng child stable", `Quick, test_rng_child_stable);
    ("rng child indices differ", `Quick, test_rng_child_indices_differ);
    ("rng split_n", `Quick, test_rng_split_n);
    ("rng int large bound", `Quick, test_rng_int_large_bound);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng int covers", `Quick, test_rng_int_covers);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutes);
    ("rng sample distinct", `Quick, test_rng_sample_distinct);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng word stream compat", `Quick, test_rng_word_stream_compat);
    ("rng vectors_packed stream compat", `Quick, test_rng_vectors_packed_stream_compat);
    ("truthtab eval_row", `Quick, test_tt_eval_row);
    ("truthtab const", `Quick, test_tt_const);
    ("truthtab var", `Quick, test_tt_var);
    ("truthtab ops", `Quick, test_tt_ops);
    ("truthtab not involution", `Quick, test_tt_not_involution);
    ("truthtab cofactor", `Quick, test_tt_cofactor);
    ("truthtab depends_on", `Quick, test_tt_depends_on);
    ("truthtab arity 6", `Quick, test_tt_arity6);
    QCheck_alcotest.to_alcotest test_tt_of_fun_roundtrip;
    ("vec push/get/set", `Quick, test_vec_push_get);
    ("vec pop", `Quick, test_vec_pop);
    ("vec bounds", `Quick, test_vec_bounds);
    ("vec fold/iter", `Quick, test_vec_fold_iter);
    ("jsonw escaping", `Quick, test_jsonw_escaping);
    ("jsonw document round-trip", `Quick, test_jsonw_roundtrip_doc);
    ("jsonw float specials", `Quick, test_jsonw_float_special);
    ("jsonw surrogate pair", `Quick, test_jsonw_surrogate_pair);
    ("jsonw lone surrogate rejected", `Quick, test_jsonw_lone_surrogate);
  ]
