(* Tests for shell_core: connectivity analysis, scoring, selection,
   extraction, synthesis, the full flow and its baselines. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Equiv = Shell_netlist.Equiv
module Style = Shell_fabric.Style
module C = Shell_core
module Circ = Shell_circuits

let picosoc = lazy ((List.nth Circ.Catalog.all 0).Circ.Catalog.netlist ())
let analysis = lazy (C.Connectivity.analyze (Lazy.force picosoc))

let test_connectivity_blocks () =
  let t = Lazy.force analysis in
  Alcotest.(check bool) "many blocks" true
    (Array.length t.C.Connectivity.blocks > 20);
  (* every non-empty block has cells and normalized attributes *)
  Array.iter
    (fun b ->
      Alcotest.(check bool) "cells non-empty" true (b.C.Connectivity.cells <> []);
      let a = b.C.Connectivity.attrs in
      List.iter
        (fun v ->
          Alcotest.(check bool) "attr in [0,1]" true (v >= 0.0 && v <= 1.0))
        [
          a.C.Score.idgc; a.C.Score.odgc; a.C.Score.clsc; a.C.Score.btwc;
          a.C.Score.eigc; a.C.Score.lutr;
        ])
    t.C.Connectivity.blocks

let test_connectivity_lookup () =
  let t = Lazy.force analysis in
  Alcotest.(check bool) "_mem_wr found" true
    (C.Connectivity.block_index t "_mem_wr" <> None);
  Alcotest.(check bool) "no ghost" true
    (C.Connectivity.block_index t "no_such_block_xyz" = None);
  Alcotest.(check bool) "several peripherals" true
    (List.length (C.Connectivity.blocks_matching t ":update") >= 4)

let test_distance_and_coverage () =
  let t = Lazy.force analysis in
  match C.Connectivity.block_index t "memctl:_mem_wr" with
  | None -> Alcotest.fail "block missing"
  | Some b ->
      let d = C.Connectivity.distance t [ b ] in
      Alcotest.(check int) "self distance" 0 d.(b);
      Alcotest.(check bool) "neighbours exist" true
        (Array.exists (fun x -> x = 1) d);
      Alcotest.(check bool) "coverage positive" true
        (C.Connectivity.coverage t [ b ] > 0.1)

let test_score_eval () =
  let attrs =
    {
      C.Score.idgc = 1.0; odgc = 1.0; clsc = 0.5; btwc = 0.5; eigc = 1.0;
      lutr = 0.0;
    }
  in
  let s = C.Score.eval C.Score.shell_choice attrs in
  (* h,h,l,l,h,l: 1 + 1 - 0.5 - 0.5 + 1 - 0 = 2.0 *)
  Alcotest.(check (float 1e-9)) "eq1" 2.0 s;
  Alcotest.(check int) "five presets" 5 (List.length C.Score.presets)

let test_selection_fixed () =
  let t = Lazy.force analysis in
  let c =
    C.Selection.fixed t ~route:[ "memctl:_mem_wr" ] ~lgc:[ ":_mem_wr_en" ] ()
  in
  Alcotest.(check bool) "route non-empty" true (c.C.Selection.route_blocks <> []);
  Alcotest.(check bool) "lgc non-empty" true (c.C.Selection.lgc_blocks <> []);
  (match C.Selection.fixed t ~route:[ ":ghost" ] ~lgc:[] () with
  | _ -> Alcotest.fail "unknown pattern should raise"
  | exception Shell_util.Diag.Error d ->
      Alcotest.(check string)
        "diag message" "Selection.fixed: no block matches :ghost"
        d.Shell_util.Diag.message)

let test_selection_auto () =
  let t = Lazy.force analysis in
  let c = C.Selection.auto t () in
  Alcotest.(check bool) "selected something" true
    (c.C.Selection.route_blocks <> []);
  Alcotest.(check bool) "coverage rule" true (c.C.Selection.coverage > 0.3);
  Alcotest.(check bool) "LUT budget respected" true
    (c.C.Selection.lut_estimate <= 220.0)

let test_selection_depth () =
  let t = Lazy.force analysis in
  let route = [ "memctl:_mem_wr" ] in
  let c0 = C.Selection.with_lgc_depth t ~route ~depth:0 in
  let c2 = C.Selection.with_lgc_depth t ~route ~depth:2 in
  Alcotest.(check bool) "both pick an lgc" true
    (c0.C.Selection.lgc_blocks <> [] && c2.C.Selection.lgc_blocks <> []);
  Alcotest.(check bool) "different blocks" true
    (c0.C.Selection.lgc_blocks <> c2.C.Selection.lgc_blocks)

let test_extraction_roundtrip () =
  (* extracting a region and splicing the identical sub back in must
     preserve sequential behaviour *)
  let nl = Lazy.force picosoc in
  let t = Lazy.force analysis in
  let choice = C.Selection.fixed t ~route:[ "memctl:_mem_wr" ] ~lgc:[] () in
  let member = C.Selection.member t choice in
  let cut = C.Extraction.extract nl ~member in
  Alcotest.(check bool) "cells extracted" true (cut.C.Extraction.cells <> []);
  (match N.validate cut.C.Extraction.sub with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Shell_util.Diag.to_string e));
  let back = C.Extraction.reassemble nl cut ~replacement:cut.C.Extraction.sub in
  match Equiv.check_sequential nl back with
  | Equiv.Equivalent -> ()
  | Equiv.Counterexample _ -> Alcotest.fail "identity splice changed behaviour"

let test_synthesize_chain_vs_lut () =
  let nl = Lazy.force picosoc in
  let t = Lazy.force analysis in
  let choice =
    C.Selection.fixed t ~route:[ "core:mem_wr" ] ~lgc:[ ":_mem_wr_en" ] ()
  in
  let cut = C.Extraction.extract nl ~member:(C.Selection.member t choice) in
  let chain =
    C.Synthesize.run ~style:Style.Fabulous_muxchain
      ~route_origins:[ "core:mem_wr" ] cut.C.Extraction.sub
  in
  Alcotest.(check bool) "chain cells produced" true
    (chain.C.Synthesize.chain_mux4 + chain.C.Synthesize.chain_mux2 > 0);
  let flat =
    C.Synthesize.run ~style:Style.Openfpga ~route_origins:[] cut.C.Extraction.sub
  in
  Alcotest.(check int) "no chain cells for openfpga" 0
    (flat.C.Synthesize.chain_mux4 + flat.C.Synthesize.chain_mux2);
  (* both keep function *)
  List.iter
    (fun (m : C.Synthesize.mapped) ->
      match Equiv.check cut.C.Extraction.sub m.C.Synthesize.netlist with
      | Equiv.Equivalent -> ()
      | Equiv.Counterexample _ -> Alcotest.fail "synthesis broke the sub")
    [ chain; flat ]

let run_shell_flow () =
  let nl = Lazy.force picosoc in
  let e = List.nth Circ.Catalog.all 0 in
  let t = e.Circ.Catalog.tfr_shell in
  let cfg =
    C.Flow.shell_config
      ~target:
        (C.Flow.Fixed
           {
             route = t.Circ.Catalog.route;
             lgc = t.Circ.Catalog.lgc;
             label = t.Circ.Catalog.label;
           })
      ()
  in
  C.Flow.run cfg nl

let test_flow_end_to_end () =
  let r = run_shell_flow () in
  Alcotest.(check bool) "fits" true (Result.is_ok r.C.Flow.pnr.Shell_pnr.Pnr.fit);
  Alcotest.(check bool) "verifies" true (C.Flow.verify r);
  Alcotest.(check bool) "key bits" true
    (Shell_fabric.Bitstream.length r.C.Flow.emitted.Shell_fabric.Emit.bitstream
    > 100);
  Alcotest.(check bool) "overhead above 1" true
    (r.C.Flow.overhead.C.Overhead.area > 1.0)

let test_flow_locked_sub_verifies () =
  let r = run_shell_flow () in
  let lk = C.Flow.locked_sub r in
  Alcotest.(check bool) "locked sub correct under bitstream" true
    (Shell_locking.Locked.verify ~original:r.C.Flow.cut.C.Extraction.sub lk)

let test_baselines_ordering () =
  let nl = Lazy.force picosoc in
  let e = List.nth Circ.Catalog.all 0 in
  let t (x : Circ.Catalog.tfr) =
    {
      C.Baselines.route = x.Circ.Catalog.route;
      lgc = x.Circ.Catalog.lgc;
      label = x.Circ.Catalog.label;
    }
  in
  let run cfg = (C.Flow.run cfg nl).C.Flow.overhead.C.Overhead.area in
  let shell = run (C.Baselines.case4 (t e.Circ.Catalog.tfr_shell)) in
  let case1 = run (C.Baselines.case1 (t e.Circ.Catalog.tfr_case1)) in
  Alcotest.(check bool)
    (Printf.sprintf "SheLL %.2f beats no-strategy %.2f" shell case1)
    true (shell < case1)

let test_flow_shrink_reduces () =
  let nl = Lazy.force picosoc in
  let e = List.nth Circ.Catalog.all 0 in
  let t = e.Circ.Catalog.tfr_shell in
  let target =
    C.Flow.Fixed
      {
        route = t.Circ.Catalog.route;
        lgc = t.Circ.Catalog.lgc;
        label = t.Circ.Catalog.label;
      }
  in
  let base = C.Flow.shell_config ~target () in
  let shrunk = C.Flow.run base nl in
  let unshrunk = C.Flow.run { base with C.Flow.shrink = false } nl in
  Alcotest.(check bool) "shrinking reduces area" true
    (shrunk.C.Flow.overhead.C.Overhead.area
    < unshrunk.C.Flow.overhead.C.Overhead.area)

let test_overhead_floor () =
  (* overhead never reported below 1.0 for area/power *)
  let r = run_shell_flow () in
  Alcotest.(check bool) "area >= 1" true (r.C.Flow.overhead.C.Overhead.area >= 1.0);
  Alcotest.(check bool) "power >= 1" true
    (r.C.Flow.overhead.C.Overhead.power >= 1.0);
  Alcotest.(check bool) "delay >= 1" true
    (r.C.Flow.overhead.C.Overhead.delay >= 1.0)

let test_flow_deterministic () =
  let a = run_shell_flow () and b = run_shell_flow () in
  Alcotest.(check (array bool)) "same bitstream"
    (Shell_fabric.Bitstream.bits a.C.Flow.emitted.Shell_fabric.Emit.bitstream)
    (Shell_fabric.Bitstream.bits b.C.Flow.emitted.Shell_fabric.Emit.bitstream);
  Alcotest.(check (float 1e-12)) "same overhead"
    a.C.Flow.overhead.C.Overhead.area b.C.Flow.overhead.C.Overhead.area

let test_explore_beats_or_matches_presets () =
  (* tiny search budget: must at least evaluate the presets and return
     a candidate no worse than the best preset *)
  let nl = Lazy.force picosoc in
  let o = C.Explore.search ~generations:1 ~population:5 nl in
  Alcotest.(check bool) "evaluated presets" true
    (List.length o.C.Explore.evaluated >= 5);
  let fit = C.Explore.fitness ~min_key_bits:256 in
  let best_preset =
    List.fold_left
      (fun acc c -> Float.min acc (fit c))
      infinity o.C.Explore.evaluated
  in
  Alcotest.(check bool) "best is minimal" true
    (fit o.C.Explore.best <= best_preset +. 1e-9)

(* every catalog benchmark must run the whole SheLL flow, fit, verify
   sequentially, and beat the no-strategy baseline *)
let flow_regression (e : Circ.Catalog.entry) () =
  let nl = e.Circ.Catalog.netlist () in
  let t = e.Circ.Catalog.tfr_shell in
  let target =
    C.Flow.Fixed
      {
        route = t.Circ.Catalog.route;
        lgc = t.Circ.Catalog.lgc;
        label = t.Circ.Catalog.label;
      }
  in
  let r = C.Flow.run (C.Flow.shell_config ~target ()) nl in
  Alcotest.(check bool) "fits" true (Result.is_ok r.C.Flow.pnr.Shell_pnr.Pnr.fit);
  Alcotest.(check bool) "verifies" true (C.Flow.verify r);
  Alcotest.(check bool) "locked sub correct" true
    (Shell_locking.Locked.verify
       ~original:r.C.Flow.cut.C.Extraction.sub
       (C.Flow.locked_sub r));
  let c1 = e.Circ.Catalog.tfr_case1 in
  let baseline =
    C.Flow.run
      (C.Baselines.case1
         {
           C.Baselines.route = c1.Circ.Catalog.route;
           lgc = c1.Circ.Catalog.lgc;
           label = c1.Circ.Catalog.label;
         })
      nl
  in
  Alcotest.(check bool)
    (Printf.sprintf "SheLL %.2f < baseline %.2f"
       r.C.Flow.overhead.C.Overhead.area
       baseline.C.Flow.overhead.C.Overhead.area)
    true
    (r.C.Flow.overhead.C.Overhead.area
    < baseline.C.Flow.overhead.C.Overhead.area)

let suite =
  List.map
    (fun (e : Circ.Catalog.entry) ->
      (e.Circ.Catalog.name ^ " full flow", `Slow, flow_regression e))
    Circ.Catalog.all
  @ [
    ("connectivity blocks", `Quick, test_connectivity_blocks);
    ("connectivity lookup", `Quick, test_connectivity_lookup);
    ("distance and coverage", `Quick, test_distance_and_coverage);
    ("score eval", `Quick, test_score_eval);
    ("selection fixed", `Quick, test_selection_fixed);
    ("selection auto", `Quick, test_selection_auto);
    ("selection depth", `Quick, test_selection_depth);
    ("extraction roundtrip", `Quick, test_extraction_roundtrip);
    ("synthesize chain vs lut", `Quick, test_synthesize_chain_vs_lut);
    ("flow end to end", `Slow, test_flow_end_to_end);
    ("flow locked sub verifies", `Slow, test_flow_locked_sub_verifies);
    ("baseline ordering", `Slow, test_baselines_ordering);
    ("shrink reduces", `Slow, test_flow_shrink_reduces);
    ("overhead floor", `Quick, test_overhead_floor);
    ("explore minimal over presets", `Slow, test_explore_beats_or_matches_presets);
    ("flow deterministic", `Slow, test_flow_deterministic);
  ]
