(* Tests for shell_netlist: construction, validation, topo order,
   simulation, cost, Verilog round-trip, CNF encoding, rewriting,
   key specialization, splicing, equivalence. *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Sim = Shell_netlist.Sim
module Cost = Shell_netlist.Cost
module Verilog = Shell_netlist.Verilog
module Cnf = Shell_netlist.Cnf
module Rewrite = Shell_netlist.Rewrite
module Specialize = Shell_netlist.Specialize
module Splice = Shell_netlist.Splice
module Equiv = Shell_netlist.Equiv
module Rng = Shell_util.Rng
module Truthtab = Shell_util.Truthtab

(* small fixture: y = (a xor b) and c, plus a counter bit *)
let fixture () =
  let nl = N.create "fix" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let c = N.add_input nl "c" in
  let x = N.xor_ nl a b in
  let y = N.and_ nl x c in
  N.add_output nl "y" y;
  let q = N.new_net nl in
  let d = N.not_ nl q in
  N.add_cell nl (Cell.make Cell.Dff [| d |] q);
  N.add_output nl "q" q;
  nl

(* layered random combinational netlist *)
let random_nl seed n_in n_gates =
  let rng = Rng.create seed in
  let nl = N.create "rand" in
  let pool = ref (Array.init n_in (fun i -> N.add_input nl (Printf.sprintf "i%d" i))) in
  for _ = 1 to n_gates do
    let a = Rng.choice rng !pool and b = Rng.choice rng !pool in
    let kinds = [| Cell.And; Cell.Or; Cell.Xor; Cell.Nand; Cell.Nor; Cell.Xnor |] in
    let out = N.gate nl kinds.(Rng.int rng 6) [| a; b |] in
    pool := Array.append !pool [| out |]
  done;
  for i = 0 to min 5 (Array.length !pool - 1) do
    N.add_output nl (Printf.sprintf "o%d" i) (!pool).(Array.length !pool - 1 - i)
  done;
  nl

let test_validate_ok () =
  match N.validate (fixture ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Shell_util.Diag.to_string e)

let test_validate_double_driver () =
  let nl = N.create "bad" in
  let a = N.add_input nl "a" in
  let x = N.not_ nl a in
  N.add_cell nl (Cell.make Cell.Buf [| a |] x);
  Alcotest.(check bool) "rejected" true (Result.is_error (N.validate nl))

let test_validate_floating_read () =
  let nl = N.create "bad2" in
  let a = N.add_input nl "a" in
  let dangling = N.new_net nl in
  let y = N.and_ nl a dangling in
  N.add_output nl "y" y;
  Alcotest.(check bool) "rejected" true (Result.is_error (N.validate nl))

let payload_of nl =
  match N.validate nl with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error d -> d.Shell_util.Diag.payload

let test_validate_bad_net_id () =
  (* the builder refuses an out-of-range port net with the same typed
     payload the validator uses for internally-corrupted netlists *)
  let nl = N.create "bad3" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.not_ nl a);
  match N.add_output nl "oops" 999 with
  | () -> Alcotest.fail "expected Bad_net_id failure"
  | exception Shell_util.Diag.Error d -> (
      match d.Shell_util.Diag.payload with
      | N.Invalid (N.Bad_net_id { port = "oops"; net = 999 }) -> ()
      | _ -> Alcotest.fail "expected Bad_net_id{oops,999} payload")

let test_validate_dangling_output () =
  let nl = N.create "bad4" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.not_ nl a);
  N.add_output nl "z" (N.new_net nl);
  match payload_of nl with
  | N.Invalid (N.Undriven_output { port = "z"; _ }) -> ()
  | _ -> Alcotest.fail "expected Undriven_output{z}"

let test_validate_duplicate_port () =
  let nl = N.create "bad5" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.not_ nl a);
  N.add_output nl "y" (N.buf nl a);
  match payload_of nl with
  | N.Invalid (N.Duplicate_port { port = "y" }) -> ()
  | _ -> Alcotest.fail "expected Duplicate_port{y}"

let test_validate_all_collects () =
  (* one netlist with four distinct defects: validate_all reports all
     of them in its documented order, validate returns the first *)
  let nl = N.create "multi" in
  let a = N.add_input nl "a" in
  let _a2 = N.add_input nl "a" in
  let x = N.not_ nl a in
  N.add_cell nl (Cell.make Cell.Buf [| a |] x);
  let dangling = N.new_net nl in
  N.add_output nl "y" (N.and_ nl x dangling);
  N.add_output nl "z" (N.new_net nl);
  let ds = N.validate_all nl in
  let payloads =
    List.map
      (fun d ->
        match d.Shell_util.Diag.payload with
        | N.Invalid iv -> iv
        | _ -> Alcotest.fail "expected Invalid payload")
      ds
  in
  (match payloads with
  | [
   N.Duplicate_port { port = "a" };
   N.Multiple_drivers { net; _ };
   N.Undriven_output { port = "z"; _ };
   N.Undriven_read { net = read };
  ] ->
      Alcotest.(check int) "double-driven net" x net;
      Alcotest.(check int) "floating read" dangling read
  | _ ->
      Alcotest.failf "unexpected violation list (%d entries)"
        (List.length ds));
  match (N.validate nl, ds) with
  | Error first, d :: _ ->
      Alcotest.(check string) "validate returns the first violation"
        (Shell_util.Diag.to_string d)
        (Shell_util.Diag.to_string first)
  | Ok (), _ | _, [] -> Alcotest.fail "validate should fail"

let test_driver_fanout () =
  let nl = fixture () in
  let x_cell = 0 in
  let x_net = (N.cell nl x_cell).Cell.out in
  Alcotest.(check (option int)) "driver" (Some x_cell) (N.driver nl x_net);
  Alcotest.(check (list int)) "fanout of x" [ 1 ] (N.fanout nl x_net)

let test_topo_order_valid () =
  let nl = random_nl 17 8 200 in
  let order = N.topo_order nl in
  let pos = Array.make (N.num_cells nl) 0 in
  Array.iteri (fun p ci -> pos.(ci) <- p) order;
  Array.iteri
    (fun ci c ->
      if not (Cell.is_sequential c.Cell.kind) then
        Array.iter
          (fun net ->
            match N.driver nl net with
            | Some cj when not (Cell.is_sequential (N.cell nl cj).Cell.kind) ->
                Alcotest.(check bool) "driver before reader" true
                  (pos.(cj) < pos.(ci))
            | Some _ | None -> ())
          c.Cell.ins)
    (N.cells nl)

let test_cycle_detection () =
  let nl = N.create "cyc" in
  let a = N.add_input nl "a" in
  let loop_net = N.new_net nl in
  let x = N.and_ nl a loop_net in
  N.add_cell nl (Cell.make Cell.Buf [| x |] loop_net);
  N.add_output nl "y" x;
  Alcotest.(check bool) "cycle found" true (N.has_comb_cycle nl);
  Alcotest.(check bool) "fixture acyclic" false (N.has_comb_cycle (fixture ()))

let test_sim_comb () =
  let nl = fixture () in
  let sim = Sim.create nl in
  let out = Sim.eval_comb sim [| true; false; true |] in
  Alcotest.(check bool) "y = (1^0)&1" true out.(0);
  let out = Sim.eval_comb sim [| true; true; true |] in
  Alcotest.(check bool) "y = (1^1)&1" false out.(0)

let test_sim_sequential () =
  let nl = fixture () in
  let sim = Sim.create nl in
  (* q starts 0, toggles every cycle (d = not q) *)
  let o1 = Sim.step sim [| false; false; false |] in
  Alcotest.(check bool) "q cycle0" false o1.(1);
  let o2 = Sim.step sim [| false; false; false |] in
  Alcotest.(check bool) "q cycle1" true o2.(1);
  let o3 = Sim.step sim [| false; false; false |] in
  Alcotest.(check bool) "q cycle2" false o3.(1);
  Sim.reset sim;
  let o4 = Sim.step sim [| false; false; false |] in
  Alcotest.(check bool) "q after reset" false o4.(1)

let test_comb_view_ports () =
  let nl = fixture () in
  let cv = N.comb_view nl in
  Alcotest.(check int) "one extra input" 4 (List.length (N.inputs cv));
  Alcotest.(check int) "one extra output" 3 (List.length (N.outputs cv));
  Alcotest.(check bool) "no flops left" false
    (N.count_kind cv (function Cell.Dff -> true | _ -> false) > 0)

let test_cost_monotone () =
  let small = random_nl 3 6 50 and large = random_nl 3 6 500 in
  Alcotest.(check bool) "area grows" true (Cost.area large > Cost.area small);
  Alcotest.(check bool) "power grows" true (Cost.power large > Cost.power small);
  Alcotest.(check bool) "delay positive" true (Cost.delay large > 0.0)

let test_cost_normalize () =
  let nl = fixture () in
  let r = Cost.report nl in
  let n = Cost.normalize ~base:r r in
  Alcotest.(check (float 1e-9)) "area ratio 1" 1.0 n.Cost.area;
  Alcotest.(check (float 1e-9)) "delay ratio 1" 1.0 n.Cost.delay

let equivalent a b =
  match Equiv.check a b with Equiv.Equivalent -> true | _ -> false

let test_verilog_roundtrip_fixture () =
  let nl = fixture () in
  let nl2 = Verilog.parse (Verilog.to_string nl) in
  Alcotest.(check bool) "equivalent" true (equivalent nl nl2);
  Alcotest.(check int) "same cell count" (N.num_cells nl) (N.num_cells nl2)

let test_verilog_roundtrip_random =
  QCheck.Test.make ~name:"verilog roundtrip random netlists" ~count:20
    QCheck.(int_bound 1000)
    (fun seed ->
      let nl = random_nl seed 6 60 in
      let nl2 = Verilog.parse (Verilog.to_string nl) in
      equivalent nl nl2)

let test_verilog_lut_roundtrip () =
  let nl = N.create "l" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let k = N.add_key nl "k0" in
  let tt = Truthtab.create ~arity:3 ~bits:0xCAL in
  let y = N.lut nl tt [| a; b; k |] in
  N.add_output nl "y" y;
  let nl2 = Verilog.parse (Verilog.to_string nl) in
  Alcotest.(check int) "key preserved" 1 (List.length (N.keys nl2));
  Alcotest.(check bool) "equivalent" true
    (match Equiv.check ~keys_a:[| true |] ~keys_b:[| true |] nl nl2 with
    | Equiv.Equivalent -> true
    | _ -> false)

let test_verilog_parse_errors () =
  List.iter
    (fun src ->
      match Verilog.parse src with
      | exception Verilog.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted malformed: " ^ src))
    [
      "module m (a); input a; bogus g0 (a, a); endmodule";
      "module m (y); output y; endmodule";  (* undriven output *)
      "module m (a; input a; endmodule";
      "module m (a, y); input a; output y; and2 g0 (a, y); endmodule";
    ]

(* CNF: satisfying assignments of the encoding match simulation *)
let test_cnf_agrees_with_sim =
  QCheck.Test.make ~name:"cnf encoding agrees with simulation" ~count:30
    QCheck.(pair (int_bound 1000) (int_bound 255))
    (fun (seed, input_bits) ->
      let nl = random_nl seed 6 40 in
      let cnf = Cnf.encode nl in
      let sim = Sim.create nl in
      let ins = Array.init 6 (fun i -> input_bits land (1 lsl i) <> 0) in
      let outs = Sim.eval_comb sim ins in
      (* check: unit-fixing the inputs forces the simulated outputs *)
      let solver = Shell_sat.Solver.create () in
      Shell_sat.Solver.ensure_vars solver cnf.Cnf.nvars;
      List.iter (Shell_sat.Solver.add_clause solver) cnf.Cnf.clauses;
      Array.iteri
        (fun i net ->
          Shell_sat.Solver.add_clause solver [ Cnf.lit cnf net ins.(i) ])
        (N.input_nets nl);
      (match Shell_sat.Solver.solve solver with
      | Shell_sat.Solver.Sat -> ()
      | _ -> failwith "must be satisfiable");
      Array.for_all2
        (fun net expect ->
          Shell_sat.Solver.value solver (Cnf.var_of net cnf) = expect)
        (N.output_nets nl) outs)

let test_rewrite_sweep_buffers () =
  let nl = N.create "bufs" in
  let a = N.add_input nl "a" in
  let b1 = N.buf nl a in
  let b2 = N.buf nl b1 in
  let y = N.not_ nl b2 in
  N.add_output nl "y" y;
  let swept = Rewrite.sweep_buffers nl in
  Alcotest.(check int) "buffers gone" 1 (N.num_cells swept);
  Alcotest.(check bool) "equivalent" true (equivalent nl swept)

let test_rewrite_dead_cells () =
  let nl = N.create "dead" in
  let a = N.add_input nl "a" in
  let y = N.not_ nl a in
  let _dead = N.and_ nl a y in
  N.add_output nl "y" y;
  let cleaned = Rewrite.dead_cell_elim nl in
  Alcotest.(check int) "dead gate dropped" 1 (N.num_cells cleaned);
  Alcotest.(check bool) "equivalent" true (equivalent nl cleaned)

let test_specialize_keys () =
  (* y = k ? a : b — binding k must leave a pure wire *)
  let nl = N.create "spec" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let k = N.add_key nl "k" in
  let y = N.mux2 nl ~sel:k ~a ~b in
  N.add_output nl "y" y;
  let t = Specialize.bind_keys nl [| true |] in
  Alcotest.(check int) "no keys left" 0 (List.length (N.keys t));
  let sim = Sim.create t in
  Alcotest.(check bool) "picks b" true (Sim.eval_comb sim [| false; true |]).(0);
  let f = Specialize.bind_keys nl [| false |] in
  let sim = Sim.create f in
  Alcotest.(check bool) "picks a" true (Sim.eval_comb sim [| true; false |]).(0)

let test_specialize_breaks_cycles () =
  (* structural cycle through an unselected mux arm *)
  let nl = N.create "cyc" in
  let a = N.add_input nl "a" in
  let k = N.add_key nl "k" in
  let loop_net = N.new_net nl in
  let m = N.mux2 nl ~sel:k ~a ~b:loop_net in
  N.add_cell nl (Cell.make Cell.Not [| m |] loop_net);
  N.add_output nl "y" m;
  Alcotest.(check bool) "cyclic before" true (N.has_comb_cycle nl);
  let bound = Specialize.bind_keys nl [| false |] in
  Alcotest.(check bool) "acyclic after" false (N.has_comb_cycle bound);
  let sim = Sim.create bound in
  Alcotest.(check bool) "wires a" true (Sim.eval_comb sim [| true |]).(0)

let test_splice_replace () =
  (* replace the xor in the fixture with an equivalent xnor+not *)
  let nl = fixture () in
  let repl = N.create "r" in
  let p = N.add_input repl "sub_in0" in
  let q = N.add_input repl "sub_in1" in
  let v = N.not_ repl (N.xnor_ repl p q) in
  N.add_output repl "sub_out0" v;
  let xor_cell = 0 in
  let c = N.cell nl xor_cell in
  let spliced =
    Splice.replace_cells nl
      ~remove:(fun i -> i = xor_cell)
      ~replacement:repl
      ~input_binding:[ ("sub_in0", c.Cell.ins.(0)); ("sub_in1", c.Cell.ins.(1)) ]
      ~output_binding:[ ("sub_out0", c.Cell.out) ]
  in
  Alcotest.(check bool) "equivalent" true
    (match Equiv.check_sequential nl spliced with
    | Equiv.Equivalent -> true
    | _ -> false)

let test_equiv_detects_difference () =
  let mk flip =
    let nl = N.create "d" in
    let a = N.add_input nl "a" in
    let b = N.add_input nl "b" in
    let y = if flip then N.or_ nl a b else N.and_ nl a b in
    N.add_output nl "y" y;
    nl
  in
  match Equiv.check (mk false) (mk true) with
  | Equiv.Counterexample _ -> ()
  | Equiv.Equivalent -> Alcotest.fail "missed difference"

let test_stats () =
  let nl = fixture () in
  let stats = N.stats nl in
  Alcotest.(check (option int)) "one xor" (Some 1) (List.assoc_opt "xor2" stats);
  Alcotest.(check (option int)) "one dff" (Some 1) (List.assoc_opt "dff" stats)

(* binding keys as constants must agree with simulating under them *)
let test_bind_keys_agrees_with_sim =
  QCheck.Test.make ~name:"bind_keys agrees with keyed simulation" ~count:25
    QCheck.(pair (int_bound 100_000) (int_bound 255))
    (fun (seed, keybits) ->
      let nl = random_nl seed 5 40 in
      (* lock a few nets with xor key gates *)
      let lk = Shell_locking.Schemes.xor_keys ~seed ~bits:6 nl in
      let locked = lk.Shell_locking.Locked.locked in
      let keys =
        Array.init
          (List.length (N.keys locked))
          (fun i -> keybits land (1 lsl i) <> 0)
      in
      let bound = Specialize.bind_keys locked keys in
      let sim_locked = Sim.create locked in
      let sim_bound = Sim.create bound in
      let rng = Rng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 16 do
        let ins = Array.init 5 (fun _ -> Rng.bool rng) in
        if Sim.eval_comb sim_locked ~keys ins <> Sim.eval_comb sim_bound ins
        then ok := false
      done;
      !ok)

(* extracting any region and splicing it straight back is an identity *)
let test_random_region_splice =
  QCheck.Test.make ~name:"random region extract/splice identity" ~count:20
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (seed, mask_seed) ->
      let nl = random_nl seed 6 60 in
      let rng = Rng.create mask_seed in
      let member = Array.init (N.num_cells nl) (fun _ -> Rng.bool rng) in
      let cut =
        Shell_core.Extraction.extract nl ~member:(fun i -> member.(i))
      in
      let back =
        Shell_core.Extraction.reassemble nl cut
          ~replacement:cut.Shell_core.Extraction.sub
      in
      match Equiv.check nl back with
      | Equiv.Equivalent -> true
      | Equiv.Counterexample _ -> false)

let test_vcd_dump () =
  let nl = fixture () in
  let v = Shell_netlist.Vcd.create (Sim.create nl) in
  ignore (Shell_netlist.Vcd.step v [| true; false; true |]);
  ignore (Shell_netlist.Vcd.step v [| false; false; true |]);
  let s = Shell_netlist.Vcd.dump v in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 10 = "$timescale");
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "declares inputs" true (has "$var wire 1");
  Alcotest.(check bool) "two samples" true (has "#0" && has "#1");
  Alcotest.(check bool) "enddefinitions" true (has "$enddefinitions")

(* ---------------- fuzz regression corpus + emitter lint ---------------- *)

let read_regression file =
  let ic = open_in (Filename.concat "regressions" file) in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  src

let declared_names src =
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         let line = String.trim line in
         let strip p =
           if
             String.length line > String.length p
             && String.sub line 0 (String.length p) = p
           then
             let rest =
               String.sub line (String.length p)
                 (String.length line - String.length p)
             in
             match String.index_opt rest ';' with
             | Some i -> Some (String.trim (String.sub rest 0 i))
             | None -> None
           else None
         in
         List.find_map strip
           [ "(* keyinput *) input "; "input "; "output "; "wire " ])

let check_unique_decls src =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun nm ->
      if Hashtbl.mem tbl nm then Alcotest.fail ("duplicate declaration: " ^ nm);
      Hashtbl.add tbl nm ())
    (declared_names src)

let test_verilog_keyinput_attribute () =
  (* keys are attribute-tagged inputs; "keyinput" is not a Verilog
     keyword and must never appear as a bare declaration *)
  let nl = N.create "k" in
  let a = N.add_input nl "a" in
  let k = N.add_key nl "kx0" in
  N.add_output nl "y" (N.xor_ nl a k);
  let src = Verilog.to_string nl in
  let lines = String.split_on_char '\n' src |> List.map String.trim in
  Alcotest.(check bool)
    "no bare keyinput declaration" false
    (List.exists
       (fun l -> String.length l >= 9 && String.sub l 0 9 = "keyinput ")
       lines);
  Alcotest.(check bool)
    "attribute form present" true
    (List.mem "(* keyinput *) input kx0;" lines);
  let nl2 = Verilog.parse src in
  Alcotest.(check int) "key survives roundtrip" 1 (List.length (N.keys nl2));
  check_unique_decls src

let test_verilog_fallback_collision () =
  (* a port literally named n3 while net 3 is an anonymous cell output:
     the fallback name must be uniquified away from the port *)
  let nl = N.create "alias" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let n3 = N.add_input nl "n3" in
  let t = N.and_ nl a b in
  N.add_output nl "y" (N.xor_ nl t n3);
  let src = Verilog.to_string nl in
  check_unique_decls src;
  let nl2 = Verilog.parse src in
  Alcotest.(check bool) "equivalent" true (equivalent nl nl2)

let test_regression_port_alias () =
  let nl = Verilog.parse (read_regression "fuzz_verilog_port_alias.v") in
  Alcotest.(check int) "three inputs" 3 (List.length (N.inputs nl));
  let src = Verilog.to_string nl in
  check_unique_decls src;
  let nl2 = Verilog.parse src in
  Alcotest.(check bool) "equivalent" true (equivalent nl nl2)

let test_regression_keyinput_attr () =
  let nl = Verilog.parse (read_regression "fuzz_keyinput_attr.v") in
  Alcotest.(check int) "one key" 1 (List.length (N.keys nl));
  Alcotest.(check (list string))
    "key name" [ "kx0" ]
    (List.map fst (N.keys nl));
  let src = Verilog.to_string nl in
  check_unique_decls src;
  let nl2 = Verilog.parse src in
  Alcotest.(check bool) "equivalent under key" true
    (match Equiv.check ~keys_a:[| true |] ~keys_b:[| true |] nl nl2 with
    | Equiv.Equivalent -> true
    | _ -> false)

(* ---- Simw: word-level simulation ---- *)

module Simw = Shell_netlist.Simw

(* mixed-kind combinational fixture exercising every word-level path:
   gates, mux2/mux4, consts, LUTs (arities 2, 3 and 6) *)
let mixed_nl () =
  let nl = N.create "mixed" in
  let ins = Array.init 8 (fun i -> N.add_input nl (Printf.sprintf "i%d" i)) in
  let one = N.gate nl (Cell.Const true) [||] in
  let m2 = N.mux2 nl ~sel:ins.(0) ~a:ins.(1) ~b:ins.(2) in
  let m4 = N.mux4 nl ~s0:ins.(3) ~s1:ins.(4) [| ins.(5); ins.(6); ins.(7); one |] in
  let l3 =
    N.lut nl
      (Truthtab.of_fun ~arity:3 (fun v -> (v.(0) && v.(1)) <> v.(2)))
      [| m2; m4; ins.(0) |]
  in
  let l6 =
    N.lut nl
      (Truthtab.of_fun ~arity:6 (fun v ->
           Array.fold_left (fun acc b -> acc <> b) (v.(0) && v.(5)) v))
      [| ins.(1); ins.(2); ins.(3); ins.(4); ins.(5); l3 |]
  in
  let l2 = N.lut nl (Truthtab.of_fun ~arity:2 (fun v -> v.(0) || not v.(1))) [| l6; m2 |] in
  N.add_output nl "y0" l3;
  N.add_output nl "y1" l6;
  N.add_output nl "y2" (N.xor_ nl l2 m4);
  nl

let test_simw_pack_lane_roundtrip () =
  let rng = Rng.create 0xabc in
  let lanes = 17 and bits = 9 in
  let vecs =
    Array.init lanes (fun _ -> Array.init bits (fun _ -> Rng.bool rng))
  in
  let words = Simw.pack vecs in
  for l = 0 to lanes - 1 do
    Alcotest.(check (array bool))
      (Printf.sprintf "lane %d" l)
      vecs.(l)
      (Simw.lane words l)
  done;
  Alcotest.(check int) "first_lane" 3 (Simw.first_lane 0b11000);
  Alcotest.(check int) "first_lane msb" (Simw.width - 1)
    (Simw.first_lane (1 lsl (Simw.width - 1)))

let simw_agrees name nl =
  let rng = Rng.create 0x51 in
  let n_in = List.length (N.inputs nl) in
  let sim = Sim.create nl and simw = Simw.create nl in
  List.iter
    (fun lanes ->
      let vecs =
        Array.init lanes (fun _ -> Array.init n_in (fun _ -> Rng.bool rng))
      in
      let words = Simw.eval_comb simw ~lanes (Simw.pack vecs) in
      Array.iteri
        (fun l vec ->
          Alcotest.(check (array bool))
            (Printf.sprintf "%s lanes=%d lane %d" name lanes l)
            (Sim.eval_comb sim vec) (Simw.lane words l))
        vecs)
    [ 1; 5; Simw.width ]

let test_simw_matches_sim_comb () =
  simw_agrees "mixed" (mixed_nl ());
  simw_agrees "rand" (random_nl 99 10 60)

let test_simw_sequential_lanes () =
  (* per-lane DFF state: [lanes] independent scalar runs must match one
     word-level run, cycle by cycle, across every net *)
  let lanes = 5 and cycles = 6 in
  let rng = Rng.create 0xd1f in
  let sims = Array.init lanes (fun _ -> Sim.create (fixture ())) in
  let simw = Simw.create (fixture ()) in
  for cycle = 1 to cycles do
    let vecs =
      Array.init lanes (fun _ -> Array.init 3 (fun _ -> Rng.bool rng))
    in
    let wout = Simw.step simw ~lanes (Simw.pack vecs) in
    let wnets = Simw.net_values simw ~lanes in
    Array.iteri
      (fun l vec ->
        Alcotest.(check (array bool))
          (Printf.sprintf "cycle %d lane %d outs" cycle l)
          (Sim.step sims.(l) vec) (Simw.lane wout l);
        Alcotest.(check (array bool))
          (Printf.sprintf "cycle %d lane %d nets" cycle l)
          (Sim.net_values sims.(l)) (Simw.lane wnets l))
      vecs
  done;
  Simw.reset simw;
  Array.iter Sim.reset sims;
  let zero = Array.make 3 false in
  let wout = Simw.step simw ~lanes (Simw.pack (Array.make lanes zero)) in
  Alcotest.(check (array bool)) "reset clears all lanes"
    (Sim.step sims.(0) zero) (Simw.lane wout 0)

let test_simw_config_latch () =
  (* broadcast config words: a Simw with a loaded bitstream must agree
     with Sim under the same config, keys included *)
  let build () =
    let nl = N.create "cfg" in
    let a = N.add_input nl "a" in
    let k = N.add_key nl "k0" in
    let q0 = N.new_net nl and q1 = N.new_net nl in
    N.add_cell nl (Cell.make Cell.Config_latch [| a |] q0);
    N.add_cell nl (Cell.make Cell.Config_latch [| a |] q1);
    N.add_output nl "y" (N.xor_ nl (N.mux2 nl ~sel:q0 ~a ~b:q1) k);
    nl
  in
  Alcotest.(check int) "latch count" 2 (Simw.num_config_latches (build ()));
  let rng = Rng.create 0xcf9 in
  List.iter
    (fun config ->
      let sim = Sim.create ~config (build ())
      and simw = Simw.create ~config (build ()) in
      let lanes = 7 in
      let keys = [| Rng.bool rng |] in
      let vecs =
        Array.init lanes (fun _ -> [| Rng.bool rng |])
      in
      let wout = Simw.eval_comb simw ~keys ~lanes (Simw.pack vecs) in
      Array.iteri
        (fun l vec ->
          Alcotest.(check (array bool))
            (Printf.sprintf "lane %d" l)
            (Sim.eval_comb sim ~keys vec) (Simw.lane wout l))
        vecs)
    [ [| false; false |]; [| true; false |]; [| true; true |] ]

let test_simw_lane_masking () =
  (* internal junk lanes (here from lnot) must never leak past the
     active lane count in read-outs *)
  let nl = N.create "mask" in
  let a = N.add_input nl "a" in
  N.add_output nl "y" (N.not_ nl a);
  let simw = Simw.create nl in
  let lanes = 5 in
  let out = Simw.eval_comb simw ~lanes [| 0 |] in
  Alcotest.(check int) "output masked" ((1 lsl lanes) - 1) out.(0);
  Array.iteri
    (fun i w ->
      Alcotest.(check bool)
        (Printf.sprintf "net %d masked" i)
        true
        (w land lnot ((1 lsl lanes) - 1) = 0))
    (Simw.net_values simw ~lanes)

let test_equiv_cex_exhaustive_order () =
  (* exhaustive mode reports the lowest differing vector index: xor vs
     or first differ at v=3 = (a=1, b=1) *)
  let mk kind =
    let nl = N.create "g" in
    let a = N.add_input nl "a" and b = N.add_input nl "b" in
    N.add_output nl "y" (N.gate nl kind [| a; b |]);
    nl
  in
  match Equiv.check (mk Cell.Xor) (mk Cell.Or) with
  | Equiv.Counterexample cex ->
      Alcotest.(check (array bool)) "first vector" [| true; true |] cex
  | Equiv.Equivalent -> Alcotest.fail "xor vs or must differ"

let test_equiv_cex_random_byte_identity () =
  (* >16 inputs forces the sampled path. The word-level engine must
     report the exact counterexample the historical scalar loop found:
     first failing vector in Rng.create 0x5eed draw order. *)
  let n_in = 17 in
  let mk spoil =
    let nl = N.create "p" in
    let ins =
      Array.init n_in (fun i -> N.add_input nl (Printf.sprintf "i%d" i))
    in
    let parity = Array.fold_left (fun acc n -> N.xor_ nl acc n) ins.(0)
        (Array.sub ins 1 (n_in - 1)) in
    let y =
      if spoil then
        N.xor_ nl parity (N.and_ nl ins.(0) (N.and_ nl ins.(1) ins.(2)))
      else parity
    in
    N.add_output nl "y" y;
    nl
  in
  let a = mk false and b = mk true in
  (* reference: the historical scalar algorithm, replayed by hand *)
  let rng = Rng.create 0x5eed in
  let expected = ref None in
  (try
     for _ = 1 to 256 do
       let vec = Array.init n_in (fun _ -> Rng.bool rng) in
       if not (Equiv.equal_on a b ~keys_a:[||] ~keys_b:[||] vec) then begin
         expected := Some vec;
         raise Exit
       end
     done
   with Exit -> ());
  match (Equiv.check a b, !expected) with
  | Equiv.Counterexample cex, Some want ->
      Alcotest.(check (array bool)) "byte-identical counterexample" want cex
  | Equiv.Equivalent, Some _ -> Alcotest.fail "check missed the difference"
  | _, None -> Alcotest.fail "reference loop found no difference in 256 vectors"

let test_equiv_sequential_still_finds () =
  (* check_sequential through the word engine still catches a state
     divergence and returns a well-formed stimulus vector *)
  let mk negate =
    let nl = N.create "s" in
    let a = N.add_input nl "a" in
    let q = N.new_net nl in
    let d = if negate then N.not_ nl (N.xor_ nl a q) else N.xor_ nl a q in
    N.add_cell nl (Cell.make Cell.Dff [| d |] q);
    N.add_output nl "q" q;
    nl
  in
  match Equiv.check_sequential (mk false) (mk true) with
  | Equiv.Counterexample cex -> Alcotest.(check int) "vector width" 1 (Array.length cex)
  | Equiv.Equivalent -> Alcotest.fail "negated feedback must diverge"

let suite =
  [
    ("validate ok", `Quick, test_validate_ok);
    ("validate double driver", `Quick, test_validate_double_driver);
    ("validate floating read", `Quick, test_validate_floating_read);
    ("validate bad net id", `Quick, test_validate_bad_net_id);
    ("validate dangling output", `Quick, test_validate_dangling_output);
    ("validate duplicate port", `Quick, test_validate_duplicate_port);
    ("validate_all collects every violation", `Quick, test_validate_all_collects);
    ("driver/fanout", `Quick, test_driver_fanout);
    ("topo order valid", `Quick, test_topo_order_valid);
    ("cycle detection", `Quick, test_cycle_detection);
    ("sim comb", `Quick, test_sim_comb);
    ("sim sequential", `Quick, test_sim_sequential);
    ("comb view ports", `Quick, test_comb_view_ports);
    ("cost monotone", `Quick, test_cost_monotone);
    ("cost normalize", `Quick, test_cost_normalize);
    ("verilog roundtrip fixture", `Quick, test_verilog_roundtrip_fixture);
    QCheck_alcotest.to_alcotest test_verilog_roundtrip_random;
    ("verilog lut roundtrip", `Quick, test_verilog_lut_roundtrip);
    ("verilog parse errors", `Quick, test_verilog_parse_errors);
    ("verilog keyinput attribute", `Quick, test_verilog_keyinput_attribute);
    ("verilog fallback collision", `Quick, test_verilog_fallback_collision);
    ("regression: port named n1", `Quick, test_regression_port_alias);
    ("regression: keyinput attr file", `Quick, test_regression_keyinput_attr);
    QCheck_alcotest.to_alcotest test_cnf_agrees_with_sim;
    ("rewrite sweep buffers", `Quick, test_rewrite_sweep_buffers);
    ("rewrite dead cells", `Quick, test_rewrite_dead_cells);
    ("specialize keys", `Quick, test_specialize_keys);
    ("specialize breaks cycles", `Quick, test_specialize_breaks_cycles);
    ("splice replace", `Quick, test_splice_replace);
    ("equiv detects difference", `Quick, test_equiv_detects_difference);
    ("simw pack/lane roundtrip", `Quick, test_simw_pack_lane_roundtrip);
    ("simw matches sim (comb)", `Quick, test_simw_matches_sim_comb);
    ("simw per-lane dff state", `Quick, test_simw_sequential_lanes);
    ("simw config latches", `Quick, test_simw_config_latch);
    ("simw lane masking", `Quick, test_simw_lane_masking);
    ("equiv cex exhaustive order", `Quick, test_equiv_cex_exhaustive_order);
    ("equiv cex random byte identity", `Quick, test_equiv_cex_random_byte_identity);
    ("equiv sequential word path", `Quick, test_equiv_sequential_still_finds);
    ("stats", `Quick, test_stats);
    ("vcd dump", `Quick, test_vcd_dump);
    QCheck_alcotest.to_alcotest test_bind_keys_agrees_with_sim;
    QCheck_alcotest.to_alcotest test_random_region_splice;
  ]
