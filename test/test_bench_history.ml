(* Tests for the bench-history subsystem: record round-trips, the
   runner's stable-part byte-identity across job counts and runs,
   drift detection (with allowlist and time-tolerance), history file
   round-trips and the HTML trend report. *)

module BH = Shell_bench_history
module Record = BH.Record
module History = BH.History
module Check = BH.Check
module Report = BH.Report
module Runner = BH.Runner
module J = Shell_util.Jsonw

let contains s affix =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let uniq = ref 0

let temp_path suffix =
  incr uniq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "shell_bh_%d_%d%s" (Unix.getpid ()) !uniq suffix)

let sample_record ?(target = "t") ?(commit = "c0") ?(jobs = 1) () =
  {
    Record.version = Record.version;
    commit;
    target;
    jobs;
    times = [ ("a", 0.5); ("b", 1.25) ];
    counters = [ ("alpha", 3); ("beta", 41); ("gamma.count", 7) ];
    spans = [ ("root", 1); ("root/kid", 2); ("root/kid#n", 63) ];
  }

(* ---- record round-trip ---- *)

let test_record_roundtrip () =
  let r = sample_record () in
  (match Record.of_line (Record.to_line r) with
  | Ok r' ->
      Alcotest.(check string) "commit" r.Record.commit r'.Record.commit;
      Alcotest.(check string) "target" r.Record.target r'.Record.target;
      Alcotest.(check int) "jobs" r.Record.jobs r'.Record.jobs;
      Alcotest.(check bool) "counters" true (r.Record.counters = r'.Record.counters);
      Alcotest.(check bool) "spans" true (r.Record.spans = r'.Record.spans);
      Alcotest.(check (list string))
        "time keys" (List.map fst r.Record.times)
        (List.map fst r'.Record.times)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (match Record.of_line "{\"not\": \"a record\"}" with
  | Ok _ -> Alcotest.fail "junk accepted"
  | Error _ -> ());
  (* the stable part omits everything that may legitimately vary *)
  let s = J.to_string (Record.stable_json r) in
  Alcotest.(check bool) "no commit in stable part" false
    (contains s "commit")

let test_record_nonfinite_times () =
  (* a NaN/inf wall time is clamped to 0.0 at record time so the
     committed line stays parseable forever *)
  let r =
    {
      (sample_record ()) with
      Record.times =
        [ ("a", Float.nan); ("b", Float.infinity); ("c", 0.75) ];
    }
  in
  match Record.of_line (Record.to_line r) with
  | Ok r' ->
      Alcotest.(check (list string))
        "all time keys survive" [ "a"; "b"; "c" ]
        (List.map fst r'.Record.times);
      Alcotest.(check bool) "nan clamped" true
        (List.assoc "a" r'.Record.times = 0.0);
      Alcotest.(check bool) "inf clamped" true
        (List.assoc "b" r'.Record.times = 0.0);
      Alcotest.(check bool) "finite kept" true
        (List.assoc "c" r'.Record.times = 0.75)
  | Error e -> Alcotest.failf "clamped record failed to parse: %s" e

let test_record_bad_field_named () =
  (* a corrupt value diagnoses with the qualified field name *)
  let bad =
    "{\"version\":1,\"commit\":\"c\",\"target\":\"t\",\"jobs\":1,"
    ^ "\"times\":{\"grid\":\"oops\"},\"counters\":{},\"spans\":{}}"
  in
  (match Record.of_line bad with
  | Ok _ -> Alcotest.fail "bad times value accepted"
  | Error e ->
      Alcotest.(check bool) "names times.grid" true
        (contains e "times.grid"));
  let bad_counter =
    "{\"version\":1,\"commit\":\"c\",\"target\":\"t\",\"jobs\":1,"
    ^ "\"times\":{},\"counters\":{\"beta\":1.5},\"spans\":{}}"
  in
  match Record.of_line bad_counter with
  | Ok _ -> Alcotest.fail "fractional counter accepted"
  | Error e ->
      Alcotest.(check bool) "names counters.beta" true
        (contains e "counters.beta")

(* ---- runner: the acceptance-criterion identity ---- *)

let stable_str r = J.to_string (Record.stable_json r)

let test_runner_stable_identity () =
  let t = Option.get (BH.Targets.find "simulate") in
  let r1 = Runner.run_target ~commit:"x" ~jobs:1 t in
  let r4 = Runner.run_target ~commit:"x" ~jobs:4 t in
  let r1' = Runner.run_target ~commit:"x" ~jobs:1 t in
  Alcotest.(check string)
    "jobs=1 vs jobs=4 stable parts byte-identical" (stable_str r1)
    (stable_str r4);
  Alcotest.(check string)
    "two runs on the same commit byte-identical" (stable_str r1)
    (stable_str r1');
  Alcotest.(check bool)
    "sim counters present" true
    (List.mem_assoc "sim_vectors" r1.Record.counters);
  Alcotest.(check bool)
    "pool totals stable across job counts" true
    (List.assoc_opt "pool_tasks" r1.Record.counters
    = List.assoc_opt "pool_tasks" r4.Record.counters);
  Alcotest.(check bool)
    "bench span root recorded" true
    (List.mem_assoc "bench.simulate" r1.Record.spans)

(* ---- check: drift detection ---- *)

let test_check_catches_perturbation () =
  let baseline = sample_record () in
  let clean = Check.diff ~baseline (sample_record ()) in
  Alcotest.(check bool) "identical records pass" true (Check.ok clean);
  (* the seeded perturbation: one counter moves by one *)
  let r = sample_record () in
  let perturbed =
    {
      r with
      Record.counters =
        List.map
          (fun (k, v) -> if k = "beta" then (k, v + 1) else (k, v))
          r.Record.counters;
    }
  in
  let rep = Check.diff ~baseline perturbed in
  Alcotest.(check bool) "perturbation caught" false (Check.ok rep);
  (match rep.Check.counters with
  | [ c ] ->
      Alcotest.(check string) "right key" "beta" c.Check.key;
      Alcotest.(check (option int)) "old" (Some 41) c.Check.baseline;
      Alcotest.(check (option int)) "new" (Some 42) c.Check.current
  | cs -> Alcotest.failf "expected 1 change, got %d" (List.length cs));
  (* appearing and vanishing keys are drift too *)
  let extra =
    { r with Record.spans = r.Record.spans @ [ ("zz", 1) ] }
  in
  let rep = Check.diff ~baseline extra in
  Alcotest.(check bool) "new span key is drift" false (Check.ok rep);
  let diag = Check.to_diag rep in
  Alcotest.(check bool) "diag carries payload" true
    (match diag.Shell_util.Diag.payload with
    | Check.Perf_drift _ -> true
    | _ -> false)

let test_check_allowlist () =
  let baseline = sample_record () in
  let r = sample_record () in
  let perturbed =
    {
      r with
      Record.counters =
        List.map
          (fun (k, v) -> if k = "beta" then (k, v + 5) else (k, v))
          r.Record.counters;
    }
  in
  let try_allow allow =
    Check.ok (Check.diff ~allow ~baseline perturbed)
  in
  Alcotest.(check bool) "exact key" true (try_allow [ "beta" ]);
  Alcotest.(check bool) "wildcard" true (try_allow [ "be*" ]);
  Alcotest.(check bool) "target-scoped" true (try_allow [ "t:beta" ]);
  Alcotest.(check bool) "other target does not allow" false
    (try_allow [ "other:beta" ]);
  Alcotest.(check bool) "unrelated key does not allow" false
    (try_allow [ "alpha" ]);
  (* allowed changes are still reported, just flagged *)
  let rep = Check.diff ~allow:[ "beta" ] ~baseline perturbed in
  (match rep.Check.counters with
  | [ c ] -> Alcotest.(check bool) "flagged allowed" true c.Check.allowed
  | _ -> Alcotest.fail "change should still be listed");
  (* parser: comments, blanks, inline # *)
  let pats =
    Check.allowlist_of_string "# header\n\n  beta  # why\nt:gam*\n"
  in
  Alcotest.(check (list string)) "parsed" [ "beta"; "t:gam*" ] pats

let test_check_time_tolerance () =
  let baseline = sample_record () in
  let r = sample_record () in
  let slow =
    { r with Record.times = [ ("a", 1.2); ("b", 1.25) ] }
  in
  (* times ignored without an explicit tolerance *)
  Alcotest.(check bool) "no tolerance: ignored" true
    (Check.ok (Check.diff ~baseline slow));
  (* a: 0.5 -> 1.2 is x2.4, outside +-100% *)
  let rep = Check.diff ~time_tolerance:1.0 ~baseline slow in
  Alcotest.(check bool) "outside band flagged" false (Check.ok rep);
  (match rep.Check.times with
  | [ d ] -> Alcotest.(check string) "right bench" "a" d.Check.bench
  | _ -> Alcotest.fail "expected one time drift");
  Alcotest.(check bool) "inside a wide band" true
    (Check.ok (Check.diff ~time_tolerance:2.0 ~baseline slow))

(* ---- history file ---- *)

let test_history_roundtrip () =
  let path = temp_path ".jsonl" in
  Alcotest.(check bool) "missing file is empty history" true
    (History.load path = Ok []);
  History.append path (sample_record ~target:"a" ~commit:"c1" ());
  History.append path (sample_record ~target:"b" ~commit:"c1" ());
  History.append path (sample_record ~target:"a" ~commit:"c2" ());
  (match History.load path with
  | Ok rs ->
      Alcotest.(check int) "all records" 3 (List.length rs);
      Alcotest.(check (list string)) "targets in order" [ "a"; "b" ]
        (History.targets rs);
      (match History.last ~target:"a" rs with
      | Some r -> Alcotest.(check string) "last a" "c2" r.Record.commit
      | None -> Alcotest.fail "no last record");
      Alcotest.(check int) "per-target filter" 2
        (List.length (History.for_target "a" rs))
  | Error e -> Alcotest.failf "load failed: %s" e);
  (* a corrupt line fails with its location *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "not json\n";
  close_out oc;
  (match History.load path with
  | Ok _ -> Alcotest.fail "corrupt line accepted"
  | Error e ->
      Alcotest.(check bool) "names the line" true
        (contains e ":4:"));
  Sys.remove path

(* ---- report ---- *)

let test_report_html () =
  let r1 = sample_record ~commit:"c1" () in
  let r2 =
    {
      (sample_record ~commit:"c2" ()) with
      Record.counters = [ ("alpha", 3); ("beta", 43); ("gamma.count", 7) ];
    }
  in
  let html = Report.html [ r1; r2 ] in
  let has affix = contains html affix in
  Alcotest.(check bool) "doctype" true (has "<!DOCTYPE html>");
  Alcotest.(check bool) "closes" true (has "</html>");
  Alcotest.(check bool) "target section" true (has "<h2>t ");
  Alcotest.(check bool) "sparkline" true (has "<svg");
  Alcotest.(check bool) "commit range" true (has "c1");
  Alcotest.(check bool) "drifting row annotated" true (has "class=\"drift\"");
  Alcotest.(check bool) "delta rendered" true (has "+2");
  Alcotest.(check bool) "self-contained: no script" false (has "<script");
  Alcotest.(check bool) "self-contained: no http fetch" false (has "http://");
  (* deterministic: same history, same bytes *)
  Alcotest.(check string) "byte-stable" html (Report.html [ r1; r2 ]);
  (* hostile key names are escaped *)
  let evil =
    { r1 with Record.counters = [ ("<b>&x", 1) ] }
  in
  let html = Report.html [ evil ] in
  Alcotest.(check bool) "escaped" true
    (contains html "&lt;b&gt;&amp;x")

(* ---- end-to-end: execute with record + check ---- *)

let test_execute_record_check () =
  let dir = temp_path "" in
  let quiet _ = () in
  let opts target =
    {
      Runner.default_opts with
      Runner.targets = [ "simulate" ];
      jobs = Some 2;
      out_dir = dir;
      record = target;
      check = not target;
      commit = Some "seed";
    }
  in
  (* no baseline yet: check-only passes (and appends nothing) *)
  (match Runner.execute ~out:quiet (opts false) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "check without baseline must pass");
  (* record, then check against it *)
  (match Runner.execute ~out:quiet (opts true) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "record run failed");
  let history = Filename.concat dir "BENCH_HISTORY.jsonl" in
  Alcotest.(check bool) "history written" true (Sys.file_exists history);
  (match Runner.execute ~out:quiet (opts false) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "clean re-check failed");
  (* perturb the committed record: the check must now fail *)
  (match History.load history with
  | Ok [ r ] ->
      let r' =
        {
          r with
          Record.counters =
            List.map
              (fun (k, v) ->
                if k = "sim_vectors" then (k, v + 1) else (k, v))
              r.Record.counters;
        }
      in
      Sys.remove history;
      History.append history r'
  | _ -> Alcotest.fail "expected exactly one record");
  (match Runner.execute ~out:quiet (opts false) with
  | Ok () -> Alcotest.fail "perturbed baseline must fail the check"
  | Error [ d ] ->
      Alcotest.(check bool) "Perf_drift diagnostic" true
        (match d.Shell_util.Diag.payload with
        | Check.Perf_drift rep ->
            List.exists
              (fun c -> c.Check.key = "sim_vectors")
              rep.Check.counters
        | _ -> false)
  | Error _ -> Alcotest.fail "expected one diagnostic");
  (* report over the history *)
  let report = Filename.concat dir "trend.html" in
  (match
     Runner.execute ~out:quiet
       { (opts false) with Runner.check = false; report = Some report }
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "report run failed");
  Alcotest.(check bool) "report written" true (Sys.file_exists report);
  Sys.remove report;
  Sys.remove history;
  Sys.rmdir dir

let test_check_against () =
  let dir = temp_path "" in
  let quiet _ = () in
  let opts =
    {
      Runner.default_opts with
      Runner.targets = [ "simulate" ];
      jobs = Some 2;
      out_dir = dir;
      check = true;
    }
  in
  (* record a good baseline at the "merge base" commit... *)
  (match
     Runner.execute ~out:quiet
       { opts with Runner.check = false; record = true; commit = Some "mbase123" }
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "baseline record failed");
  let history = Filename.concat dir "BENCH_HISTORY.jsonl" in
  (* ...then append a perturbed record as the latest entry *)
  (match History.load history with
  | Ok [ r ] ->
      History.append history
        {
          r with
          Record.commit = "head999";
          counters =
            List.map
              (fun (k, v) ->
                if k = "sim_vectors" then (k, v + 1) else (k, v))
              r.Record.counters;
        }
  | _ -> Alcotest.fail "expected exactly one record");
  (* default baseline = last record = the perturbed one: drift *)
  (match Runner.execute ~out:quiet { opts with Runner.commit = Some "c" } with
  | Ok () -> Alcotest.fail "check vs perturbed last record must fail"
  | Error _ -> ());
  (* --against a commit prefix picks the merge-base record: clean *)
  (match
     Runner.execute ~out:quiet
       { opts with Runner.commit = Some "c"; against = Some "mbase" }
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "check --against mbase must pass");
  (* --against merge-base resolves via SHELL_BENCH_MERGE_BASE *)
  Unix.putenv "SHELL_BENCH_MERGE_BASE" "mbase123";
  Alcotest.(check (option string))
    "merge-base resolves from the env override" (Some "mbase123")
    (Runner.merge_base_commit ());
  (match
     Runner.execute ~out:quiet
       { opts with Runner.commit = Some "c"; against = Some "merge-base" }
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "check --against merge-base must pass");
  Unix.putenv "SHELL_BENCH_MERGE_BASE" "";
  (* an unmatched spec warns and falls back to the last record *)
  let warned = ref false in
  (match
     Runner.execute
       ~out:(fun s -> if contains s "falling back" then warned := true)
       { opts with Runner.commit = Some "c"; against = Some "nomatch" }
   with
  | Ok () -> Alcotest.fail "fallback baseline is the perturbed record"
  | Error _ -> ());
  Alcotest.(check bool) "fallback warned" true !warned;
  (* prefix matching is symmetric and rejects empties *)
  Alcotest.(check bool) "spec prefix" true
    (Runner.commit_matches ~spec:"ab" "abcdef");
  Alcotest.(check bool) "commit prefix" true
    (Runner.commit_matches ~spec:"abcdef" "abc");
  Alcotest.(check bool) "mismatch" false
    (Runner.commit_matches ~spec:"ab" "ba");
  Alcotest.(check bool) "empty spec" false (Runner.commit_matches ~spec:"" "a");
  Alcotest.(check bool) "empty commit" false
    (Runner.commit_matches ~spec:"a" "");
  Sys.remove history;
  Sys.rmdir dir

let test_unknown_target () =
  match
    Runner.execute
      ~out:(fun _ -> ())
      { Runner.default_opts with Runner.targets = [ "nope" ] }
  with
  | Ok () -> Alcotest.fail "unknown target accepted"
  | Error [ d ] ->
      Alcotest.(check bool) "names the target" true
        (contains d.Shell_util.Diag.message "nope")
  | Error _ -> Alcotest.fail "expected one diagnostic"

let suite =
  [
    Alcotest.test_case "record round-trip" `Quick test_record_roundtrip;
    Alcotest.test_case "record non-finite times clamped" `Quick
      test_record_nonfinite_times;
    Alcotest.test_case "record bad field named" `Quick
      test_record_bad_field_named;
    Alcotest.test_case "runner stable-part byte-identity" `Quick
      test_runner_stable_identity;
    Alcotest.test_case "check catches counter perturbation" `Quick
      test_check_catches_perturbation;
    Alcotest.test_case "check allowlist" `Quick test_check_allowlist;
    Alcotest.test_case "check time tolerance" `Quick
      test_check_time_tolerance;
    Alcotest.test_case "history round-trip" `Quick test_history_roundtrip;
    Alcotest.test_case "report html" `Quick test_report_html;
    Alcotest.test_case "execute record+check+report" `Quick
      test_execute_record_check;
    Alcotest.test_case "check --against merge-base" `Quick test_check_against;
    Alcotest.test_case "unknown target" `Quick test_unknown_target;
  ]
