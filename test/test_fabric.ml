(* Tests for shell_fabric: styles, geometry/capacity, bitstream,
   emission (correct-key equivalence, cyclicity, resources, shrink). *)

module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Equiv = Shell_netlist.Equiv
module Specialize = Shell_netlist.Specialize
module Style = Shell_fabric.Style
module Fabric = Shell_fabric.Fabric
module Resources = Shell_fabric.Resources
module Bitstream = Shell_fabric.Bitstream
module Emit = Shell_fabric.Emit
module Lut_map = Shell_synth.Lut_map
module Mux_chain = Shell_synth.Mux_chain
module Rng = Shell_util.Rng

let random_nl seed n_in n_gates =
  let rng = Rng.create seed in
  let nl = N.create "rand" in
  let pool =
    ref (Array.init n_in (fun i -> N.add_input nl (Printf.sprintf "i%d" i)))
  in
  for _ = 1 to n_gates do
    let a = Rng.choice rng !pool and b = Rng.choice rng !pool in
    let kinds = [| Cell.And; Cell.Or; Cell.Xor; Cell.Nand |] in
    let out = N.gate nl kinds.(Rng.int rng 4) [| a; b |] in
    pool := Array.append !pool [| out |]
  done;
  for i = 0 to 3 do
    N.add_output nl (Printf.sprintf "o%d" i) (!pool).(Array.length !pool - 1 - i)
  done;
  nl

let mapped_fixture seed = fst (Lut_map.map ~k:4 (random_nl seed 6 60))

(* ---- geometry ---- *)

let test_sel_bits () =
  List.iter
    (fun (n, expect) -> Alcotest.(check int) (string_of_int n) expect (Fabric.sel_bits n))
    [ (1, 1); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4) ]

let test_size_square () =
  let f = Fabric.size_for Style.Openfpga ~luts:40 ~user_ffs:0 ~chain_muxes:0 in
  Alcotest.(check bool) "square" true (f.Fabric.cols = f.Fabric.rows);
  Alcotest.(check bool) "fits" true (Fabric.lut_capacity f >= 40)

let test_size_rect () =
  let f = Fabric.size_for Style.Fabulous_std ~luts:40 ~user_ffs:0 ~chain_muxes:0 in
  Alcotest.(check bool) "fits tighter" true
    (Fabric.lut_capacity f >= 40 && Fabric.lut_capacity f <= 48)

let test_size_chain_rejected () =
  match Fabric.size_for Style.Openfpga ~luts:8 ~user_ffs:0 ~chain_muxes:4 with
  | exception Shell_util.Diag.Error d ->
      (* the diagnostic carries the typed shortage *)
      (match d.Shell_util.Diag.payload with
      | Fabric.Shortage { shortage = Fabric.Chain_short; demand = 4; _ } -> ()
      | _ -> Alcotest.fail "expected a Chain_short Shortage payload")
  | _ -> Alcotest.fail "chain demand on openfpga must be rejected"

let test_grow () =
  let f = Fabric.size_for Style.Fabulous_muxchain ~luts:16 ~user_ffs:0 ~chain_muxes:8 in
  let g = Fabric.grow f Fabric.Luts_short in
  Alcotest.(check bool) "more luts" true
    (Fabric.lut_capacity g > Fabric.lut_capacity f);
  let c = Fabric.grow f Fabric.Chain_short in
  Alcotest.(check bool) "more chain" true (c.Fabric.chain_slots > f.Fabric.chain_slots)

let test_capacity_consistent () =
  let f = Fabric.size_for Style.Openfpga ~luts:30 ~user_ffs:10 ~chain_muxes:0 in
  let r = Fabric.capacity f in
  Alcotest.(check bool) "has lut muxes" true (r.Resources.lut_body_mux2 > 0);
  Alcotest.(check bool) "has config bits" true (r.Resources.config_bits > 0);
  Alcotest.(check bool) "dff storage for openfpga" true
    (r.Resources.storage_dffs = r.Resources.config_bits);
  let f2 = Fabric.size_for Style.Fabulous_std ~luts:30 ~user_ffs:10 ~chain_muxes:0 in
  let r2 = Fabric.capacity f2 in
  Alcotest.(check bool) "latch storage for fabulous" true
    (r2.Resources.storage_latches = r2.Resources.config_bits)

let test_utilization () =
  let f = Fabric.size_for Style.Openfpga ~luts:40 ~user_ffs:0 ~chain_muxes:0 in
  let u = Fabric.utilization f ~used_luts:40 in
  Alcotest.(check bool) "between 0 and 1" true (u > 0.0 && u <= 1.0)

(* ---- bitstream ---- *)

let test_bitstream_segments () =
  let b = Bitstream.builder () in
  Bitstream.append b "lut0.table" [| true; false; true; true |];
  Bitstream.append b "lut0.in0.s" [| false; true |];
  Alcotest.(check int) "length" 6 (Bitstream.length b);
  Alcotest.(check (option (array bool))) "segment"
    (Some [| false; true |])
    (Bitstream.segment_bits b "lut0.in0.s");
  Alcotest.(check int) "two segments" 2 (List.length (Bitstream.segments b))

let test_bitstream_hex_hamming () =
  let b = Bitstream.builder () in
  Bitstream.append b "x" [| true; false; false; true; true |];
  Alcotest.(check string) "hex" "91" (Bitstream.to_hex b);
  Alcotest.(check int) "hamming" 2
    (Bitstream.hamming [| true; false; true |] [| false; false; false |])

(* ---- emission ---- *)

let check_correct_key style seed =
  let mapped = mapped_fixture seed in
  let e = Emit.emit ~style mapped in
  let key = Bitstream.bits e.Emit.bitstream in
  Alcotest.(check int) "key = ports"
    (List.length (N.keys e.Emit.locked))
    (Array.length key);
  let bound = Specialize.bind_keys e.Emit.locked key in
  (match Equiv.check mapped bound with
  | Equiv.Equivalent -> ()
  | Equiv.Counterexample _ -> Alcotest.fail "correct key must restore function");
  e

let test_emit_openfpga () =
  let e = check_correct_key Style.Openfpga 11 in
  Alcotest.(check bool) "cyclic decoys present" true
    (N.has_comb_cycle e.Emit.locked);
  Alcotest.(check bool) "cycle blocks recorded" true (e.Emit.cycle_blocks <> [])

let test_emit_fabulous_acyclic () =
  let e = check_correct_key Style.Fabulous_std 12 in
  Alcotest.(check bool) "acyclic" false (N.has_comb_cycle e.Emit.locked);
  Alcotest.(check bool) "no cycle blocks" true (e.Emit.cycle_blocks = []);
  Alcotest.(check bool) "m4 route muxes" true (e.Emit.used.Resources.route_mux4 > 0)

let test_emit_wrong_key_differs () =
  let mapped = mapped_fixture 13 in
  let e = Emit.emit ~style:Style.Fabulous_std mapped in
  let key = Bitstream.bits e.Emit.bitstream in
  (* flip a LUT table bit: function must change somewhere *)
  let wrong = Array.copy key in
  let seg =
    List.find
      (fun s ->
        let open Bitstream in
        String.length s.label > 5
        && String.sub s.label (String.length s.label - 5) 5 = "table")
      (Bitstream.segments e.Emit.bitstream)
  in
  wrong.(seg.Bitstream.offset) <- not wrong.(seg.Bitstream.offset);
  let bound = Specialize.bind_keys e.Emit.locked wrong in
  match Equiv.check mapped bound with
  | Equiv.Counterexample _ -> ()
  | Equiv.Equivalent ->
      (* a single table bit can be don't-care; tolerate only if the
         mapped netlist never exercises that row — flip all instead *)
      let all_wrong = Array.map not key in
      let bound = Specialize.bind_keys e.Emit.locked all_wrong in
      (match Equiv.check mapped bound with
      | Equiv.Counterexample _ -> ()
      | Equiv.Equivalent -> Alcotest.fail "complemented key cannot be correct")

let test_emit_chain_style () =
  let nl = N.create "r" in
  let s0 = N.add_input nl "s0" in
  let s1 = N.add_input nl "s1" in
  let d = Array.init 4 (fun i -> N.add_input nl (Printf.sprintf "d%d" i)) in
  let m0 = N.mux2 nl ~sel:s0 ~a:d.(0) ~b:d.(1) in
  let m1 = N.mux2 nl ~sel:s0 ~a:d.(2) ~b:d.(3) in
  N.add_output nl "y" (N.mux2 nl ~sel:s1 ~a:m0 ~b:m1);
  let packed, _ = Mux_chain.map nl in
  let e = Emit.emit ~style:Style.Fabulous_muxchain packed in
  Alcotest.(check bool) "chain cells used" true (e.Emit.used_chain > 0);
  let key = Bitstream.bits e.Emit.bitstream in
  let bound = Specialize.bind_keys e.Emit.locked key in
  match Equiv.check packed bound with
  | Equiv.Equivalent -> ()
  | Equiv.Counterexample _ -> Alcotest.fail "chain emission broken"

let test_emit_rejects_plain_gates () =
  let nl = N.create "g" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  N.add_output nl "y" (N.and_ nl a b);
  match Emit.emit ~style:Style.Openfpga nl with
  | exception Shell_util.Diag.Error _ -> ()
  | _ -> Alcotest.fail "plain gate must be rejected"

let test_emit_rejects_chain_on_chainless () =
  let nl = N.create "m" in
  let s = N.add_input nl "s" in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  N.add_output nl "y" (N.mux2 nl ~sel:s ~a ~b);
  match Emit.emit ~style:Style.Fabulous_std nl with
  | exception Shell_util.Diag.Error _ -> ()
  | _ -> Alcotest.fail "chain cell on chain-less style must be rejected"

let test_emit_deterministic () =
  let mapped = mapped_fixture 21 in
  let a = Emit.emit ~style:Style.Fabulous_std ~seed:5 mapped in
  let b = Emit.emit ~style:Style.Fabulous_std ~seed:5 mapped in
  Alcotest.(check (array bool)) "same bitstream"
    (Bitstream.bits a.Emit.bitstream)
    (Bitstream.bits b.Emit.bitstream);
  let c = Emit.emit ~style:Style.Fabulous_std ~seed:6 mapped in
  Alcotest.(check bool) "seed changes layout" true
    (N.num_cells c.Emit.locked = N.num_cells a.Emit.locked)

let test_shrink_keeps_used () =
  let mapped = mapped_fixture 31 in
  let e = Emit.emit ~style:Style.Fabulous_muxchain mapped in
  let f =
    Fabric.size_for Style.Fabulous_muxchain ~luts:e.Emit.used_luts
      ~user_ffs:e.Emit.used_ffs ~chain_muxes:e.Emit.used_chain
  in
  let shrunk = Fabric.shrink f ~used:e.Emit.used in
  let cap = Fabric.capacity f in
  Alcotest.(check bool) "shrunk <= capacity" true
    (Resources.area Style.Fabulous_muxchain shrunk
    <= Resources.area Style.Fabulous_muxchain cap);
  Alcotest.(check int) "used bits kept" e.Emit.used.Resources.config_bits
    shrunk.Resources.config_bits

let test_sequential_emission () =
  let nl = N.create "seq" in
  let a = N.add_input nl "a" in
  let q = N.new_net nl in
  let d = N.xor_ nl a q in
  N.add_cell nl (Cell.make Cell.Dff [| d |] q);
  N.add_output nl "q" q;
  let mapped = fst (Lut_map.map ~k:4 nl) in
  let e = Emit.emit ~style:Style.Fabulous_std mapped in
  Alcotest.(check int) "user dff hosted" 1 e.Emit.used_ffs;
  let key = Bitstream.bits e.Emit.bitstream in
  let bound = Specialize.bind_keys e.Emit.locked key in
  match Equiv.check_sequential nl bound with
  | Equiv.Equivalent -> ()
  | Equiv.Counterexample _ -> Alcotest.fail "sequential behaviour lost"

let test_bitstream_file_roundtrip () =
  let b = Bitstream.builder () in
  Bitstream.append b "lut0.table" [| true; false; true; true |];
  Bitstream.append b "lut0.in0.s" [| false; true; true |];
  Bitstream.append b "po0" [| true |];
  let b2 = Bitstream.deserialize (Bitstream.serialize b) in
  Alcotest.(check (array bool)) "bits survive" (Bitstream.bits b)
    (Bitstream.bits b2);
  Alcotest.(check int) "segments survive"
    (List.length (Bitstream.segments b))
    (List.length (Bitstream.segments b2));
  Alcotest.(check (option (array bool))) "segment lookup"
    (Bitstream.segment_bits b "lut0.in0.s")
    (Bitstream.segment_bits b2 "lut0.in0.s")

let test_bitstream_file_errors () =
  List.iter
    (fun src ->
      match Bitstream.deserialize src with
      | exception Bitstream.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted: " ^ src))
    [
      "";
      "not-a-bitstream\n";
      "shell-bitstream 1 4\nbits f\n";  (* no segments *)
      "shell-bitstream 1 4\nsegment a 0 2\nbits f\n";  (* gap *)
    ]

let test_emitted_bitstream_roundtrip () =
  let mapped = mapped_fixture 41 in
  let e = Emit.emit ~style:Style.Fabulous_std mapped in
  let b2 = Bitstream.deserialize (Bitstream.serialize e.Emit.bitstream) in
  Alcotest.(check (array bool)) "full roundtrip"
    (Bitstream.bits e.Emit.bitstream)
    (Bitstream.bits b2)

let suite =
  [
    ("sel_bits", `Quick, test_sel_bits);
    ("size square", `Quick, test_size_square);
    ("size rect", `Quick, test_size_rect);
    ("size chain rejected", `Quick, test_size_chain_rejected);
    ("grow", `Quick, test_grow);
    ("capacity consistent", `Quick, test_capacity_consistent);
    ("utilization", `Quick, test_utilization);
    ("bitstream segments", `Quick, test_bitstream_segments);
    ("bitstream hex/hamming", `Quick, test_bitstream_hex_hamming);
    ("emit openfpga cyclic", `Quick, test_emit_openfpga);
    ("emit fabulous acyclic", `Quick, test_emit_fabulous_acyclic);
    ("emit wrong key differs", `Quick, test_emit_wrong_key_differs);
    ("emit chain style", `Quick, test_emit_chain_style);
    ("emit rejects plain gates", `Quick, test_emit_rejects_plain_gates);
    ("emit rejects chain on chainless", `Quick, test_emit_rejects_chain_on_chainless);
    ("emit deterministic", `Quick, test_emit_deterministic);
    ("shrink keeps used", `Quick, test_shrink_keeps_used);
    ("sequential emission", `Quick, test_sequential_emission);
    ("bitstream file roundtrip", `Quick, test_bitstream_file_roundtrip);
    ("bitstream file errors", `Quick, test_bitstream_file_errors);
    ("emitted bitstream roundtrip", `Quick, test_emitted_bitstream_roundtrip);
  ]
