(* Aggregated alcotest entry point: one suite per library. *)

let () =
  Alcotest.run "shell"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("netlist", Test_netlist.suite);
      ("graph", Test_graph.suite);
      ("sat", Test_sat.suite);
      ("rtl", Test_rtl.suite);
      ("synth", Test_synth.suite);
      ("fabric", Test_fabric.suite);
      ("pnr", Test_pnr.suite);
      ("locking", Test_locking.suite);
      ("attacks", Test_attacks.suite);
      ("circuits", Test_circuits.suite);
      ("core", Test_core.suite);
      ("pipeline", Test_pipeline.suite);
      ("lint", Test_lint.suite);
      ("obs", Test_obs.suite);
      ("bench_history", Test_bench_history.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
    ]
