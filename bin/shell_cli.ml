(* The `shell` command-line tool: run the SheLL redaction flow, attack
   locked designs, and inspect the bundled benchmarks.

     shell list
     shell analyze  -b PicoSoC
     shell lock     -b PicoSoC [-s style] [--route PAT]... [--lgc PAT]...
                    [-o locked.v] [--bitstream bits.hex]
     shell lock-file -i design.v --route PAT ... (structural dialect)
     shell attack   -b PicoSoC [--dips N] [--conflicts N] [--seconds S]

   All subcommands are deterministic for a given --seed. *)

module N = Shell_netlist
module F = Shell_fabric
module L = Shell_locking
module A = Shell_attacks
module C = Shell_core
module Circ = Shell_circuits
module Fz = Shell_fuzz
module Diag = Shell_util.Diag
module Obs = Shell_util.Obs
module SP = Shell_serve.Protocol
module SJ = Shell_serve.Jobs
module SS = Shell_serve.Server
module SC = Shell_serve.Client
open Cmdliner

(* The single fatal-exit path: every error — bad argument, parse
   failure, aborted pipeline pass — is rendered as a structured
   diagnostic ("pass: context: message [payload]") before exit 1. *)
let die (d : Diag.t) : 'a =
  prerr_endline (Diag.to_string d);
  exit 1

let dief fmt = Format.kasprintf (fun m -> die (Diag.make m)) fmt

let run_flow cfg nl = try C.Flow.run cfg nl with Diag.Error d -> die d

(* ---------------- shared arguments ---------------- *)

let bench_arg =
  let doc = "Bundled benchmark: PicoSoC, AES, FIR, SPMV, DLA, SoC or Xbar." in
  Arg.(value & opt string "PicoSoC" & info [ "b"; "benchmark" ] ~doc)

let style_arg =
  let styles =
    [
      ("openfpga", F.Style.Openfpga);
      ("fabulous", F.Style.Fabulous_std);
      ("muxchain", F.Style.Fabulous_muxchain);
    ]
  in
  let doc = "Fabric style: openfpga, fabulous or muxchain (default)." in
  Arg.(
    value
    & opt (enum styles) F.Style.Fabulous_muxchain
    & info [ "s"; "style" ] ~doc)

let route_arg =
  let doc = "Origin substring selecting a ROUTE block (repeatable)." in
  Arg.(value & opt_all string [] & info [ "route" ] ~doc)

let lgc_arg =
  let doc = "Origin substring selecting an LGC block (repeatable)." in
  Arg.(value & opt_all string [] & info [ "lgc" ] ~doc)

let seed_arg =
  let doc = "Deterministic seed for decoys and placement." in
  Arg.(value & opt int 0x51e11 & info [ "seed" ] ~doc)

let metrics_arg =
  let doc =
    "Enable the metrics registry and write a snapshot to $(docv) on \
     completion. A .prom suffix selects Prometheus text format, anything \
     else JSON (same as setting SHELL_METRICS=$(docv); \
     SHELL_METRICS_STABLE=1 restricts the snapshot to deterministic \
     metrics)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Run [f] with the registry on, writing the snapshot even when [f]
   dies through [die] (which exits rather than unwinds) — hence
   at_exit instead of Fun.protect. *)
let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
      Obs.set_enabled true;
      at_exit (fun () -> try Obs.write_file path with Sys_error _ -> ());
      f ()

(* Benchmark lookup, TfR defaults and job execution live in
   Shell_serve.Jobs, shared with the daemon so socket and CLI
   invocations return byte-identical output. *)
let netlist_of_bench name =
  match SJ.netlist_of_bench name with
  | Ok nl -> Ok nl
  | Error d -> Error (`Msg (Diag.to_string d))

let default_tfr = SJ.default_tfr

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    Printf.printf "%-9s %-38s %6s  %s\n" "name" "description" "cells"
      "SheLL TfR";
    List.iter
      (fun (e : Circ.Catalog.entry) ->
        let nl = e.Circ.Catalog.netlist () in
        Printf.printf "%-9s %-38s %6d  %s\n" e.Circ.Catalog.name
          e.Circ.Catalog.description (N.Netlist.num_cells nl)
          e.Circ.Catalog.tfr_shell.Circ.Catalog.label)
      Circ.Catalog.all;
    Printf.printf "%-9s %-38s %6d  %s\n" "SoC" "Fig. 3 platform (4 cores + Xbar)"
      (N.Netlist.num_cells (Circ.Soc.netlist ()))
      "Xbar + wrappers";
    Printf.printf "%-9s %-38s %6d  %s\n" "Xbar" "8-channel AXI crossbar (Table I)"
      (N.Netlist.num_cells (Circ.Axi_xbar.netlist ()))
      "whole Xbar"
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled benchmark circuits.")
    Term.(const run $ const ())

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let run bench =
    match netlist_of_bench bench with
    | Error (`Msg m) -> dief "%s" m
    | Ok nl ->
        let t = C.Connectivity.analyze nl in
        Printf.printf "%d cells, %d blocks\n\n" (N.Netlist.num_cells nl)
          (Array.length t.C.Connectivity.blocks);
        Printf.printf "%-46s %5s %6s %7s  %s\n" "block" "cells" "route"
          "score" "attributes";
        let scored =
          Array.to_list t.C.Connectivity.blocks
          |> List.filter (fun b -> b.C.Connectivity.name <> "")
          |> List.map (fun b ->
                 (C.Score.eval C.Score.shell_choice b.C.Connectivity.attrs, b))
          |> List.sort (fun (a, _) (b, _) -> compare b a)
        in
        List.iteri
          (fun i (s, (b : C.Connectivity.block)) ->
            if i < 25 then
              Printf.printf "%-46s %5d %6.2f %7.3f  %s\n" b.C.Connectivity.name
                (List.length b.C.Connectivity.cells)
                b.C.Connectivity.route_fraction s
                (Format.asprintf "%a" C.Score.pp_attrs b.C.Connectivity.attrs))
          scored
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the connectivity analysis and print scored blocks.")
    Term.(const run $ bench_arg)

(* ---------------- lock ---------------- *)

let lock_spec bench style route lgc seed =
  { SP.bench; style = SJ.style_id style; route; lgc; seed }

let lock_run bench style route lgc seed trace metrics out bitstream_out =
  if trace then Shell_util.Trace.set_enabled true;
  with_metrics metrics @@ fun () ->
  match SJ.lock_flow (lock_spec bench style route lgc seed) with
  | Error d -> die d
  | Ok r ->
      print_string (SJ.lock_render r);
      (match out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc (N.Verilog.to_string r.C.Flow.locked_full);
          close_out oc;
          Printf.printf "locked design written to %s\n" path);
      (match bitstream_out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc
            (F.Bitstream.to_hex r.C.Flow.emitted.F.Emit.bitstream);
          output_string oc "\n";
          close_out oc;
          Printf.printf "bitstream written to %s\n" path)

let trace_arg =
  let doc =
    "Print per-pass wall time and counters to stderr (same as setting \
     SHELL_TRACE=1)."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let lock_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the locked design (netlist dialect).")
  in
  let bs_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bitstream" ] ~doc:"Write the correct bitstream (hex).")
  in
  Cmd.v
    (Cmd.info "lock" ~doc:"Redact a benchmark with the SheLL flow.")
    Term.(
      const lock_run $ bench_arg $ style_arg $ route_arg $ lgc_arg $ seed_arg
      $ trace_arg $ metrics_arg $ out_arg $ bs_arg)

(* ---------------- lock-file ---------------- *)

let lock_file_run input style route lgc seed trace metrics out bitstream_out =
  if trace then Shell_util.Trace.set_enabled true;
  with_metrics metrics @@ fun () ->
  let src =
    try
      let ic = open_in input in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error m -> dief "%s" m
  in
  let nl =
    match N.Verilog.parse src with
    | nl -> nl
    | exception N.Verilog.Parse_error m -> dief "parse error: %s" m
  in
  if route = [] && lgc = [] then dief "pass --route/--lgc origin patterns";
  Printf.printf "parsed %s: %d cells
" (N.Netlist.name nl)
    (N.Netlist.num_cells nl);
  let cfg =
    {
      (C.Flow.shell_config
         ~target:
           (C.Flow.Fixed
              { route; lgc; label = String.concat "+" (route @ lgc) })
         ())
      with
      C.Flow.style;
      seed;
    }
  in
  let r = run_flow cfg nl in
  Format.printf "%a@." C.Flow.pp_summary r;
  Printf.printf "verify: %s
" (if C.Flow.verify r then "PASS" else "FAIL");
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (N.Verilog.to_string r.C.Flow.locked_full);
      close_out oc;
      Printf.printf "locked design written to %s
" path);
  match bitstream_out with
  | None -> ()
  | Some path ->
      F.Bitstream.save r.C.Flow.emitted.F.Emit.bitstream path;
      Printf.printf "bitstream written to %s
" path

let lock_file_cmd =
  let input =
    Arg.(
      required
      & opt (some string) None
      & info [ "i"; "input" ] ~doc:"Structural netlist file (library dialect).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the locked design.")
  in
  let bs_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bitstream" ] ~doc:"Write the bitstream (versioned format).")
  in
  Cmd.v
    (Cmd.info "lock-file"
       ~doc:"Redact an external structural netlist with the SheLL flow.")
    Term.(
      const lock_file_run $ input $ style_arg $ route_arg $ lgc_arg $ seed_arg
      $ trace_arg $ metrics_arg $ out_arg $ bs_arg)

(* ---------------- attack ---------------- *)

(* every attack command funnels through the unified interface now: one
   verdict type, one budget record, any registered attack by name *)
let attack_run bench style route lgc seed attack_name dips conflicts seconds
    vectors metrics =
  with_metrics metrics @@ fun () ->
  let spec =
    {
      SP.target = lock_spec bench style route lgc seed;
      attack = attack_name;
      dips;
      conflicts;
      seconds;
      vectors;
    }
  in
  match SJ.attack_output spec with
  | Error d -> die d
  | Ok out -> print_string out

let dips_arg = Arg.(value & opt int 64 & info [ "dips" ] ~doc:"Max DIPs.")

let conflicts_arg =
  Arg.(value & opt int 200_000 & info [ "conflicts" ] ~doc:"Max conflicts.")

let seconds_arg =
  Arg.(value & opt float 30.0 & info [ "seconds" ] ~doc:"Time limit.")

let vectors_arg =
  Arg.(
    value & opt int 256
    & info [ "vectors" ]
        ~doc:"Simulation sample size for the sim-family attacks.")

let attack_cmd =
  let attack_name_arg =
    Arg.(
      value & opt string "sat"
      & info [ "a"; "attack" ] ~docv:"NAME"
          ~doc:"Registered attack to run (see `shell battery --list-attacks`).")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Run one registered attack on a SheLL-redacted benchmark.")
    Term.(
      const attack_run $ bench_arg $ style_arg $ route_arg $ lgc_arg $ seed_arg
      $ attack_name_arg $ dips_arg $ conflicts_arg $ seconds_arg $ vectors_arg
      $ metrics_arg)

(* ---------------- battery ---------------- *)

let battery_run benches schemes attack_names jobs seed dips conflicts seconds
    vectors json metrics list_attacks =
  with_metrics metrics @@ fun () ->
  if list_attacks then
    List.iter
      (fun (a : A.Attack.t) ->
        Printf.printf "%-11s %-12s %s\n" a.A.Attack.name
          (String.concat ","
             (List.map A.Attack.capability_name a.A.Attack.capabilities))
          a.A.Attack.description)
      A.Battery.all
  else begin
    let spec =
      {
        SP.benches;
        schemes;
        attacks = attack_names;
        bt_seed = seed;
        bt_dips = dips;
        bt_conflicts = conflicts;
        bt_seconds = seconds;
        bt_vectors = vectors;
      }
    in
    match SJ.battery_matrix ?jobs spec with
    | Error d -> die d
    | Ok m ->
        if json then print_string (SJ.battery_render_json m)
        else Format.printf "%a@." A.Battery.pp_matrix m
  end

let battery_cmd =
  let benches =
    Arg.(
      value & opt_all string []
      & info [ "b"; "benchmark" ] ~docv:"NAME"
          ~doc:"Benchmark to lock and attack (repeatable).")
  in
  let schemes =
    Arg.(
      value
      & opt_all string [ "xor:8"; "mux:8" ]
      & info [ "scheme" ] ~docv:"SPEC"
          ~doc:
            "Locking scheme spec: xor:N, rlut:N, hlut:N, mux:N or muxlut:N \
             (repeatable; default xor:8 and mux:8).")
  in
  let attacks =
    Arg.(
      value & opt_all string []
      & info [ "a"; "attack" ] ~docv:"NAME"
          ~doc:"Restrict to one registered attack (repeatable; default all).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the (subject x attack) fan-out (default: \
             SHELL_JOBS or the core count). The matrix is byte-identical for \
             any value.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable matrix on stdout (stable: no wall-clock \
             fields).")
  in
  let list_attacks =
    Arg.(
      value & flag
      & info [ "list-attacks" ] ~doc:"List the attack registry and exit.")
  in
  Cmd.v
    (Cmd.info "battery"
       ~doc:
         "Run the whole attack battery over locked variants of the bundled \
          benchmarks and print the per-scheme x per-attack resilience \
          matrix.")
    Term.(
      const battery_run $ benches $ schemes $ attacks $ jobs $ seed_arg
      $ dips_arg $ conflicts_arg $ seconds_arg $ vectors_arg $ json
      $ metrics_arg $ list_attacks)

(* ---------------- stats ---------------- *)

let stats_run bench style route lgc seed attack =
  Obs.set_enabled true;
  match netlist_of_bench bench with
  | Error (`Msg m) -> dief "%s" m
  | Ok nl ->
      let route, lgc, label =
        if route = [] && lgc = [] then
          match default_tfr bench with
          | Some t -> t
          | None -> dief "no default TfR for this design: pass --route/--lgc"
        else (route, lgc, String.concat "+" (route @ lgc))
      in
      let cfg =
        {
          (C.Flow.shell_config ~target:(C.Flow.Fixed { route; lgc; label }) ())
          with
          C.Flow.style;
          seed;
        }
      in
      let r = run_flow cfg nl in
      if attack then begin
        let lk = C.Flow.locked_sub r in
        ignore
          (A.Sat_attack.attack.A.Attack.run
             (A.Attack.budget ~max_dips:32 ~max_conflicts:50_000
                ~time_limit:5.0 ())
             (A.Attack.subject
                ~cycle_blocks:r.C.Flow.emitted.F.Emit.cycle_blocks
                ~original:r.C.Flow.cut.C.Extraction.sub lk))
      end;
      Printf.printf "span tree for `lock -b %s`%s:\n" bench
        (if attack then " + attack" else "");
      Obs.pp_spans Format.std_formatter (Obs.spans ());
      print_newline ();
      print_string (Obs.to_prometheus (Obs.snapshot ()))

let stats_cmd =
  let attack =
    Arg.(
      value & flag
      & info [ "attack" ]
          ~doc:"Also run a short SAT attack so its spans show up.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the lock flow with telemetry on and print the hierarchical \
          span tree plus all metrics (Prometheus text format).")
    Term.(
      const stats_run $ bench_arg $ style_arg $ route_arg $ lgc_arg $ seed_arg
      $ attack)

(* ---------------- fuzz ---------------- *)

let fuzz_run metrics seed cases jobs oracle_names self_test no_shrink dir
    list_oracles =
  with_metrics metrics @@ fun () ->
  if list_oracles then
    List.iter
      (fun (o : Fz.Oracles.t) ->
        Printf.printf "%-12s %s\n" o.Fz.Oracles.name o.Fz.Oracles.description)
      Fz.Oracles.all
  else begin
    let oracles =
      match oracle_names with
      | [] -> Fz.Oracles.all
      | names ->
          List.map
            (fun nm ->
              match Fz.Oracles.find nm with
              | Some o -> o
              | None -> dief "unknown oracle %S (try --list-oracles)" nm)
            names
    in
    if self_test then begin
      let stats = Fz.Runner.self_test ?jobs ~oracles ~seed ~cases () in
      Fz.Runner.pp_self_test Format.std_formatter stats;
      if not (Fz.Runner.self_test_ok stats) then begin
        prerr_endline "self-test failed: some oracle is blind to its fault class";
        exit 1
      end
    end
    else begin
      let report =
        Fz.Runner.run ?jobs ~oracles ~shrink:(not no_shrink) ?out_dir:dir ~seed
          ~cases ()
      in
      Fz.Runner.pp_report Format.std_formatter report;
      if not (Fz.Runner.ok report) then exit 1
    end
  end

let fuzz_cmd =
  let cases =
    Arg.(
      value & opt int 200
      & info [ "n"; "cases" ] ~docv:"N"
          ~doc:"Number of random cases to generate.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains (default: SHELL_JOBS or the core count). The \
             report is byte-identical for any value.")
  in
  let oracle =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:"Run only this oracle (repeatable; default: all).")
  in
  let self_test =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Mutation-injection mode: inject single faults and verify every \
             oracle catches its fault class at least once.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Write a minimized Verilog reproducer per failure into $(docv).")
  in
  let list_oracles =
    Arg.(
      value & flag
      & info [ "list-oracles" ] ~doc:"List the oracle battery and exit.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random netlists through the oracle battery \
          (sim vs SAT, passes vs Equiv, lock/unlock, emit round-trips). \
          Deterministic in --seed; exits 1 on any failure.")
    Term.(
      const fuzz_run $ metrics_arg $ seed_arg $ cases $ jobs $ oracle
      $ self_test $ no_shrink $ dir $ list_oracles)

(* ---------------- lint ---------------- *)

module Lint = Shell_lint.Lint
module Rules = Shell_lint.Rules

(* Rebuild the same subject the pipeline's lint pass checks, so the CLI
   can re-lint a locked flow under a different severity floor, baseline
   or job count. *)
let lint_subject_of_result = SJ.lint_subject_of_result

let read_file path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error m -> dief "%s" m

let lint_run metrics benches files locked style seed jobs json_out severity
    baseline update_baseline list_rules =
  with_metrics metrics @@ fun () ->
  if list_rules then
    List.iter
      (fun (r : Lint.rule) ->
        Printf.printf "%-22s %-10s %-5s %s\n" r.Lint.name
          (Lint.pack_name r.Lint.pack)
          (Lint.severity_name r.Lint.severity)
          r.Lint.help)
      Rules.all
  else begin
    let severity =
      match Lint.severity_of_string severity with
      | Some s -> s
      | None -> dief "unknown severity %S (error, warn or info)" severity
    in
    let base_fps =
      match baseline with
      | Some path when not update_baseline -> (
          match Lint.load_baseline path with
          | Ok fps -> fps
          | Error m -> dief "%s" m)
      | _ -> []
    in
    if benches = [] && files = [] then
      dief "nothing to lint: pass -b BENCH and/or -i FILE";
    let bench_subjects =
      List.map
        (fun b ->
          match netlist_of_bench b with
          | Error (`Msg m) -> dief "%s" m
          | Ok nl ->
              if locked then
                let cfg =
                  { (C.Flow.shell_config ()) with C.Flow.style; seed }
                in
                lint_subject_of_result (run_flow cfg nl)
              else Lint.subject nl)
        benches
    in
    let file_subjects =
      List.map
        (fun path ->
          match N.Verilog.parse (read_file path) with
          | nl -> Lint.subject nl
          | exception N.Verilog.Parse_error m ->
              dief "%s: parse error: %s" path m)
        files
    in
    let reports =
      List.map
        (Lint.run ?jobs ~severity ~baseline:base_fps ~rules:Rules.all)
        (bench_subjects @ file_subjects)
    in
    (match (baseline, update_baseline) with
    | Some path, true ->
        let oc = open_out path in
        output_string oc
          "# shell lint baseline: one fingerprint per accepted finding\n";
        let n = ref 0 in
        List.iter
          (fun (r : Lint.report) ->
            List.iter
              (fun f ->
                incr n;
                output_string oc
                  (Lint.baseline_line ~subject_name:r.Lint.subject_name f);
                output_char oc '\n')
              r.Lint.findings)
          reports;
        close_out oc;
        Printf.printf "baseline written to %s (%d finding%s)\n" path !n
          (if !n = 1 then "" else "s")
    | None, true -> dief "--update-baseline needs --baseline FILE"
    | _ -> ());
    let total f = List.fold_left (fun acc r -> acc + f r) 0 reports in
    if json_out then
      print_endline
        (Shell_util.Jsonw.to_string ~indent:2 (Lint.reports_json reports))
    else begin
      List.iter (fun r -> Format.printf "%a@.@?" Lint.pp_report r) reports;
      Printf.printf
        "lint: %d subject%s, %d error%s, %d warning%s, %d note%s, %d \
         suppressed\n"
        (List.length reports)
        (if List.length reports = 1 then "" else "s")
        (total (fun r -> r.Lint.errors))
        (if total (fun r -> r.Lint.errors) = 1 then "" else "s")
        (total (fun r -> r.Lint.warns))
        (if total (fun r -> r.Lint.warns) = 1 then "" else "s")
        (total (fun r -> r.Lint.infos))
        (if total (fun r -> r.Lint.infos) = 1 then "" else "s")
        (total (fun r -> r.Lint.suppressed))
    end;
    if total (fun r -> r.Lint.errors) > 0 && not update_baseline then exit 1
  end

let lint_cmd =
  let benches =
    Arg.(
      value & opt_all string []
      & info [ "b"; "benchmark" ] ~docv:"NAME"
          ~doc:"Lint a bundled benchmark (repeatable).")
  in
  let files =
    Arg.(
      value & opt_all string []
      & info [ "i"; "input" ] ~docv:"FILE"
          ~doc:"Lint a structural netlist file (repeatable).")
  in
  let locked =
    Arg.(
      value & flag
      & info [ "locked" ]
          ~doc:
            "Run the SheLL flow on each benchmark first and lint the locked \
             result with its fabric, bitstream and selection artifacts \
             (activates the security and fabric rule packs).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the rule fan-out (default: SHELL_JOBS or the \
             core count). Output is byte-identical for any value.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable report on stdout.")
  in
  let severity =
    Arg.(
      value & opt string "info"
      & info [ "severity" ] ~docv:"LEVEL"
          ~doc:"Reporting floor: error, warn or info (default).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Suppress findings whose fingerprint appears in $(docv) (one per \
             line, # comments allowed).")
  in
  let update_baseline =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:
            "Rewrite the --baseline file to accept every finding of this \
             run, then exit 0.")
  in
  let list_rules =
    Arg.(
      value & flag
      & info [ "list-rules" ] ~doc:"List the rule registry and exit.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis over netlists and locked designs: structural \
          well-formedness, the paper's locking invariants and \
          fabric/bitstream accounting. Exits 1 on unsuppressed errors.")
    Term.(
      const lint_run $ metrics_arg $ benches $ files $ locked $ style_arg
      $ seed_arg $ jobs $ json $ severity $ baseline $ update_baseline
      $ list_rules)

(* ---------------- bench ---------------- *)

module BH = Shell_bench_history

let bench_run targets jobs out_dir history record check report allowlist
    time_tolerance commit against list_targets =
  if list_targets then
    List.iter
      (fun (t : BH.Targets.t) ->
        Printf.printf "%-10s %s\n" t.BH.Targets.name t.BH.Targets.description)
      BH.Targets.all
  else
    let opts =
      {
        BH.Runner.targets;
        jobs;
        out_dir;
        history;
        record;
        check;
        report;
        allowlist;
        time_tolerance;
        commit;
        against;
      }
    in
    match BH.Runner.execute opts with
    | Ok () -> ()
    | Error ds ->
        List.iter (fun d -> prerr_endline (Diag.to_string d)) ds;
        exit 1

let bench_cmd =
  let targets =
    Arg.(
      value & opt_all string []
      & info [ "t"; "target" ] ~docv:"NAME"
          ~doc:
            "Bench target to run (repeatable; default all). See \
             --list-targets.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains (default: SHELL_JOBS or the core count). The \
             stable part of every record is byte-identical for any value.")
  in
  let out_dir =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Directory for bench artifacts; the default history file lives \
             here.")
  in
  let history =
    Arg.(
      value
      & opt (some string) None
      & info [ "history" ] ~docv:"FILE"
          ~doc:"JSONL history file (default $(b,DIR)/BENCH_HISTORY.jsonl).")
  in
  let record =
    Arg.(
      value & flag
      & info [ "record" ]
          ~doc:"Append one record per target to the history.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Diff each fresh record's stable counters and span structure \
             against the last committed record of the same target; exit 1 \
             on unexplained drift.")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write a self-contained HTML trend page over the history to \
             $(docv).")
  in
  let allowlist =
    Arg.(
      value
      & opt (some string) None
      & info [ "allowlist" ] ~docv:"FILE"
          ~doc:
            "Intentional-change patterns, one per line: $(i,key) or \
             $(i,target:key), trailing * wildcard, # comments.")
  in
  let time_tolerance =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-tolerance" ] ~docv:"FRAC"
          ~doc:
            "Also flag per-bench wall times drifting beyond the \
             $(docv)-relative band (e.g. 0.5 = +-50%). Off by default: \
             times are machine noise; counters are the gate.")
  in
  let commit =
    Arg.(
      value
      & opt (some string) None
      & info [ "commit" ] ~docv:"ID"
          ~doc:
            "Commit id stamped into records (default: SHELL_BENCH_COMMIT or \
             the git HEAD read from .git).")
  in
  let against =
    Arg.(
      value
      & opt (some string) None
      & info [ "against" ] ~docv:"COMMIT"
          ~doc:
            "--check baseline selector: a commit id (prefixes ok) or \
             $(b,merge-base) to use SHELL_BENCH_MERGE_BASE / the origin \
             default-branch tip read from .git. Falls back to the last \
             record per target, with a warning, when no record matches.")
  in
  let list_targets =
    Arg.(
      value & flag
      & info [ "list-targets" ] ~doc:"List the target registry and exit.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the recordable bench targets and maintain the JSONL perf \
          history: --record appends, --check gates on stable-counter drift, \
          --report renders the HTML trend page.")
    Term.(
      const bench_run $ targets $ jobs $ out_dir $ history $ record $ check
      $ report $ allowlist $ time_tolerance $ commit $ against $ list_targets)

(* ---------------- serve ---------------- *)

let socket_arg =
  let doc =
    "Daemon socket: a Unix socket path (anything containing '/', the \
     default) or host:port for TCP."
  in
  let env = Cmd.Env.info "SHELL_SOCKET" in
  Arg.(
    value
    & opt string "/tmp/shell-serve.sock"
    & info [ "socket" ] ~env ~docv:"ADDR" ~doc)

let address_of_arg s =
  match SS.address_of_string s with Ok a -> a | Error m -> dief "%s" m

let serve_run socket queue_cap max_frame max_seconds cache_dir cache_max_bytes
    gc_only verbose =
  if gc_only then begin
    match cache_dir with
    | None -> dief "serve --gc needs --cache-dir"
    | Some dir ->
        let max_bytes = Option.value ~default:0 cache_max_bytes in
        let rep = Shell_serve.Store.gc (Shell_serve.Store.create ~root:dir) ~max_bytes in
        Format.printf "%a@." Shell_serve.Store.pp_gc_report rep
  end
  else
    let cfg =
      {
        SS.address = address_of_arg socket;
        queue_cap;
        max_frame;
        max_seconds;
        store_dir = cache_dir;
        cache_max_bytes;
        log = verbose;
      }
    in
    SS.serve cfg

let serve_cmd =
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission queue depth; submissions beyond it are rejected with \
             a typed queue_full diagnostic.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Shell_util.Jsonw.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Reject request frames larger than $(docv).")
  in
  let max_seconds =
    Arg.(
      value & opt float 600.0
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:"Clamp per-job time budgets to $(docv) seconds.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Spill the pass cache to a content-addressed store under \
             $(docv) so warm hits survive daemon restarts. Evict by \
             deleting the directory.")
  in
  let cache_max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-bytes" ] ~docv:"BYTES"
          ~doc:
            "Size cap on the spill store: least-recently-read blobs are \
             pruned back under $(docv) at daemon startup (and by \
             $(b,--gc)). Off by default.")
  in
  let gc_only =
    Arg.(
      value & flag
      & info [ "gc" ]
          ~doc:
            "Don't start the daemon: prune the --cache-dir store to \
             --cache-max-bytes (default 0 = empty it), print the typed \
             report and exit.")
  in
  let verbose =
    Arg.(
      value & flag & info [ "verbose" ] ~doc:"Log admissions/jobs to stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the lock-as-a-service daemon: lock/attack/battery/fuzz/lint \
          jobs over a Unix/TCP socket as length-prefixed JSON, with an \
          admission-control queue, per-job priorities and budget caps, \
          Prometheus metrics, and an on-disk pass-cache spill store (size \
          capped via --cache-max-bytes; prune offline with --gc). Stop it \
          with `shell client shutdown`.")
    Term.(
      const serve_run $ socket_arg $ queue_cap $ max_frame $ max_seconds
      $ cache_dir $ cache_max_bytes $ gc_only $ verbose)

(* ---------------- client ---------------- *)

let priority_arg =
  Arg.(
    value & opt int 0
    & info [ "priority" ] ~docv:"N"
        ~doc:"Queue priority: higher-priority jobs run first.")

let with_daemon socket f =
  let addr = address_of_arg socket in
  match SC.with_connection addr f with
  | r -> r
  | exception Unix.Unix_error (e, _, _) ->
      dief "cannot reach daemon at %s: %s (is `shell serve` running?)" socket
        (Unix.error_message e)

(* The response contract mirrors the direct CLI: Result bytes go to
   stdout verbatim (byte-identical to the equivalent subcommand),
   Rejected/Failed render on stderr with exit 1. *)
let client_submit socket priority job =
  match
    with_daemon socket (fun c -> SC.submit c ~priority job)
  with
  | Ok (SP.Result { output; _ }) -> print_string output
  | Ok (SP.Rejected { reason; _ }) -> dief "rejected: %s" reason
  | Ok (SP.Failed { message; _ }) -> dief "%s" message
  | Ok _ -> dief "unexpected response type from daemon"
  | Error m -> dief "%s" m

let client_lock_cmd =
  let run socket priority bench style route lgc seed =
    client_submit socket priority
      (SP.Lock (lock_spec bench style route lgc seed))
  in
  Cmd.v
    (Cmd.info "lock" ~doc:"Submit a lock job to the daemon.")
    Term.(
      const run $ socket_arg $ priority_arg $ bench_arg $ style_arg
      $ route_arg $ lgc_arg $ seed_arg)

let client_attack_cmd =
  let run socket priority bench style route lgc seed attack dips conflicts
      seconds vectors =
    client_submit socket priority
      (SP.Attack
         {
           SP.target = lock_spec bench style route lgc seed;
           attack;
           dips;
           conflicts;
           seconds;
           vectors;
         })
  in
  let attack_name_arg =
    Arg.(
      value & opt string "sat"
      & info [ "a"; "attack" ] ~docv:"NAME" ~doc:"Registered attack to run.")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Submit an attack job to the daemon.")
    Term.(
      const run $ socket_arg $ priority_arg $ bench_arg $ style_arg
      $ route_arg $ lgc_arg $ seed_arg $ attack_name_arg $ dips_arg
      $ conflicts_arg $ seconds_arg $ vectors_arg)

let client_battery_cmd =
  let run socket priority benches schemes attacks seed dips conflicts seconds
      vectors =
    client_submit socket priority
      (SP.Battery
         {
           SP.benches;
           schemes;
           attacks;
           bt_seed = seed;
           bt_dips = dips;
           bt_conflicts = conflicts;
           bt_seconds = seconds;
           bt_vectors = vectors;
         })
  in
  let benches =
    Arg.(
      value & opt_all string []
      & info [ "b"; "benchmark" ] ~docv:"NAME"
          ~doc:"Benchmark to lock and attack (repeatable).")
  in
  let schemes =
    Arg.(
      value
      & opt_all string [ "xor:8"; "mux:8" ]
      & info [ "scheme" ] ~docv:"SPEC"
          ~doc:"Locking scheme spec (repeatable; default xor:8 and mux:8).")
  in
  let attacks =
    Arg.(
      value & opt_all string []
      & info [ "a"; "attack" ] ~docv:"NAME"
          ~doc:"Restrict to one registered attack (repeatable; default all).")
  in
  Cmd.v
    (Cmd.info "battery"
       ~doc:
         "Submit a battery job to the daemon (response is the JSON matrix, \
          byte-identical to `shell battery --json`).")
    Term.(
      const run $ socket_arg $ priority_arg $ benches $ schemes $ attacks
      $ seed_arg $ dips_arg $ conflicts_arg $ seconds_arg $ vectors_arg)

let client_fuzz_cmd =
  let run socket priority seed cases =
    client_submit socket priority (SP.Fuzz { SP.fz_seed = seed; cases })
  in
  let cases =
    Arg.(
      value & opt int 200
      & info [ "n"; "cases" ] ~docv:"N" ~doc:"Number of random cases.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Submit a fuzz campaign to the daemon (no shrinking).")
    Term.(const run $ socket_arg $ priority_arg $ seed_arg $ cases)

let client_lint_cmd =
  let run socket priority benches locked style seed =
    client_submit socket priority
      (SP.Lint
         {
           SP.lint_benches = benches;
           locked;
           lint_style = SJ.style_id style;
           lint_seed = seed;
         })
  in
  let benches =
    Arg.(
      value & opt_all string []
      & info [ "b"; "benchmark" ] ~docv:"NAME"
          ~doc:"Lint a bundled benchmark (repeatable).")
  in
  let locked =
    Arg.(
      value & flag
      & info [ "locked" ] ~doc:"Run the SheLL flow first; lint the result.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Submit a lint job to the daemon (JSON report).")
    Term.(
      const run $ socket_arg $ priority_arg $ benches $ locked $ style_arg
      $ seed_arg)

let client_status_cmd =
  let run socket =
    match with_daemon socket SC.status with
    | Ok info ->
        print_endline
          (Shell_util.Jsonw.to_string ~indent:2 (SP.status_info_json info))
    | Error m -> dief "%s" m
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Print the daemon's queue depth, job counts, cache hit rates and \
          per-job-kind span summaries as JSON.")
    Term.(const run $ socket_arg)

let client_metrics_cmd =
  let run socket =
    match with_daemon socket SC.metrics with
    | Ok text -> print_string text
    | Error m -> dief "%s" m
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Print the daemon's live metrics (Prometheus text format).")
    Term.(const run $ socket_arg)

let client_ping_cmd =
  let run socket =
    match with_daemon socket SC.ping with
    | Ok v -> Printf.printf "pong (protocol v%d)\n" v
    | Error m -> dief "%s" m
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Check the daemon is alive.")
    Term.(const run $ socket_arg)

let client_shutdown_cmd =
  let run socket =
    match with_daemon socket SC.shutdown with
    | Ok out -> print_string out
    | Error m -> dief "%s" m
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to exit.")
    Term.(const run $ socket_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Talk to a running `shell serve` daemon: submit jobs (stdout is \
          byte-identical to the direct subcommand) or query \
          status/metrics.")
    [
      client_lock_cmd;
      client_attack_cmd;
      client_battery_cmd;
      client_fuzz_cmd;
      client_lint_cmd;
      client_status_cmd;
      client_metrics_cmd;
      client_ping_cmd;
      client_shutdown_cmd;
    ]

(* ---------------- main ---------------- *)

let () =
  let doc = "SheLL: shrinking eFPGA fabrics for logic locking (DATE 2023)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "shell" ~version:"1.0.0" ~doc)
          [
            list_cmd;
            analyze_cmd;
            lock_cmd;
            lock_file_cmd;
            attack_cmd;
            battery_cmd;
            stats_cmd;
            fuzz_cmd;
            lint_cmd;
            bench_cmd;
            serve_cmd;
            client_cmd;
          ]))
