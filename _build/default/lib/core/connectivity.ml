module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Digraph = Shell_graph.Digraph
module Centrality = Shell_graph.Centrality
module Estimate = Shell_synth.Estimate

type block = {
  name : string;
  cells : int list;
  attrs : Score.attrs;
  route_fraction : float;
  lut_estimate : float;
}

type t = {
  netlist : Shell_netlist.Netlist.t;
  blocks : block array;
  graph : Shell_graph.Digraph.t;
}

let genericity cells nl =
  (* EigC weight: the paper prefers neighbours of generic (masking)
     gate types; muxes and and/or dominate routing-friendly logic *)
  let total = ref 0 and generic = ref 0 in
  List.iter
    (fun ci ->
      match (Netlist.cell nl ci).Cell.kind with
      | Cell.Mux2 | Cell.Mux4 | Cell.And | Cell.Or | Cell.Nand | Cell.Nor ->
          incr total;
          incr generic
      | Cell.Xor | Cell.Xnor | Cell.Not | Cell.Lut _ -> incr total
      | Cell.Buf | Cell.Const _ | Cell.Dff | Cell.Config_latch -> ())
    cells;
  if !total = 0 then 0.0 else float_of_int !generic /. float_of_int !total

let route_frac cells nl =
  let total = ref 0 and routing = ref 0 in
  List.iter
    (fun ci ->
      match (Netlist.cell nl ci).Cell.kind with
      | Cell.Mux2 | Cell.Mux4 | Cell.Buf ->
          incr total;
          incr routing
      | Cell.Dff | Cell.Config_latch | Cell.Const _ -> ()
      | Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor
      | Cell.Not | Cell.Lut _ ->
          incr total)
    cells;
  if !total = 0 then 0.0 else float_of_int !routing /. float_of_int !total

let analyze nl =
  let cells = Netlist.cells nl in
  (* group cells by origin, preserving first-appearance order *)
  let order = ref [] in
  let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i c ->
      let key = c.Cell.origin in
      match Hashtbl.find_opt groups key with
      | Some l -> l := i :: !l
      | None ->
          Hashtbl.add groups key (ref [ i ]);
          order := key :: !order)
    cells;
  let names = Array.of_list (List.rev !order) in
  let n = Array.length names in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i nm -> Hashtbl.add index_of nm i) names;
  let block_of_cell = Array.make (Array.length cells) (-1) in
  Array.iteri
    (fun bi nm ->
      match Hashtbl.find_opt groups nm with
      | Some l -> List.iter (fun ci -> block_of_cell.(ci) <- bi) !l
      | None -> ())
    names;
  (* block edges via net crossings *)
  let edges = ref [] in
  let pi_reader = Array.make n false and po_driver = Array.make n false in
  let input_nets = Netlist.input_nets nl in
  let is_input = Array.make (max (Netlist.num_nets nl) 1) false in
  Array.iter (fun net -> is_input.(net) <- true) input_nets;
  Array.iteri
    (fun ci c ->
      let bi = block_of_cell.(ci) in
      Array.iter
        (fun net ->
          if is_input.(net) then pi_reader.(bi) <- true
          else
            match Netlist.driver nl net with
            | Some cj ->
                let bj = block_of_cell.(cj) in
                if bj <> bi then edges := (bj, bi) :: !edges
            | None -> ())
        c.Cell.ins)
    cells;
  Array.iter
    (fun net ->
      match Netlist.driver nl net with
      | Some ci -> po_driver.(block_of_cell.(ci)) <- true
      | None -> ())
    (Netlist.output_nets nl);
  let graph = Digraph.make ~n ~edges:!edges in
  let sources = ref [] and sinks = ref [] in
  for b = 0 to n - 1 do
    if pi_reader.(b) then sources := b :: !sources;
    if po_driver.(b) then sinks := b :: !sinks
  done;
  let sources = !sources and sinks = !sinks in
  let idgc = Centrality.in_degree graph in
  let odgc = Centrality.out_degree graph in
  let clsc = Centrality.closeness graph ~sources ~sinks in
  let btwc = Centrality.betweenness graph ~sources ~sinks in
  let block_cells bi = List.rev !(Hashtbl.find groups names.(bi)) in
  let gen = Array.init n (fun bi -> genericity (block_cells bi) nl) in
  let eigc = Centrality.eigenvector ~weight:(fun b -> 0.25 +. gen.(b)) graph in
  let lut_raw =
    Array.init n (fun bi -> Estimate.estimate_cells nl (block_cells bi))
  in
  let lut_max = Array.fold_left Float.max 1.0 lut_raw in
  let blocks =
    Array.init n (fun bi ->
        {
          name = names.(bi);
          cells = block_cells bi;
          attrs =
            {
              Score.idgc = idgc.(bi);
              odgc = odgc.(bi);
              clsc = clsc.(bi);
              btwc = btwc.(bi);
              eigc = eigc.(bi);
              lutr = lut_raw.(bi) /. lut_max;
            };
          route_fraction = route_frac (block_cells bi) nl;
          lut_estimate = lut_raw.(bi);
        })
  in
  { netlist = nl; blocks; graph }

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let block_index t needle =
  let rec go i =
    if i >= Array.length t.blocks then None
    else if contains ~sub:needle t.blocks.(i).name then Some i
    else go (i + 1)
  in
  go 0

let blocks_matching t needle =
  Array.to_list
    (Array.of_seq
       (Seq.filter_map
          (fun (i, b) -> if contains ~sub:needle b.name then Some i else None)
          (Array.to_seqi t.blocks)))

let distance t seeds =
  (* undirected BFS over the block graph *)
  let n = Array.length t.blocks in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  List.iter
    (fun b ->
      if dist.(b) = max_int then begin
        dist.(b) <- 0;
        Queue.add b queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let visit v =
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v queue
      end
    in
    Array.iter visit (Digraph.succs t.graph u);
    Array.iter visit (Digraph.preds t.graph u)
  done;
  dist

let coverage t seeds = Digraph.coverage t.graph seeds
