(** Step 1–2 of the SheLL flow: connectivity and modular analysis.

    The flattened netlist (already uniquified by elaboration) is
    grouped by origin tag into blocks — instance paths at SoC level,
    [@always] blocks at IP level; a directed block graph captures
    inter-block wiring; every block gets the Table II attribute
    vector. Plays the role of the FIRRTL-based graph extraction of the
    paper. *)

type block = {
  name : string;  (** origin tag; [""] collects untagged cells *)
  cells : int list;  (** cell indices in the analyzed netlist *)
  attrs : Score.attrs;
  route_fraction : float;  (** mux/buffer share of the block *)
  lut_estimate : float;  (** LuTR (unnormalized) *)
}

type t = {
  netlist : Shell_netlist.Netlist.t;
  blocks : block array;
  graph : Shell_graph.Digraph.t;  (** nodes = block indices *)
}

val analyze : Shell_netlist.Netlist.t -> t

val block_index : t -> string -> int option
(** First block whose name contains the given substring. *)

val blocks_matching : t -> string -> int list
(** All blocks whose name contains the substring. *)

val distance : t -> int list -> int array
(** Undirected node distance from a block set (Table VII's
    "node-based distance between LGC and ROUTE"). *)

val coverage : t -> int list -> float
(** Fraction of blocks connected (either direction) to the set —
    selection rule (ii) of the paper. *)
