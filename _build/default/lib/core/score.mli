(** The Eq. 1 score function and the Table VI coefficient profiles.

    [score = alpha*iDgC + beta*oDgC + gamma*ClsC + lambda*BtwC
           + xi*EigC + sigma*LuTR]

    Attributes are normalized to \[0,1\]; a "high" objective maps to a
    [+1] coefficient (prefer large values), "low" to [-1]. *)

type attrs = {
  idgc : float;  (** inlet degree centrality *)
  odgc : float;  (** outlet degree centrality *)
  clsc : float;  (** closeness to controllable/observable nodes *)
  btwc : float;  (** betweenness on I/O geodesics *)
  eigc : float;  (** neighbouring-gate-type eigencentrality *)
  lutr : float;  (** estimated LUT requirement *)
}

type coeffs = {
  alpha : float;
  beta : float;
  gamma : float;
  lambda : float;
  xi : float;
  sigma : float;
}

val eval : coeffs -> attrs -> float

val shell_choice : coeffs
(** c5 = [{h,h,l,l,h,l}] — the profile SheLL ships with (Table II). *)

val presets : (string * coeffs) list
(** [c1]..[c5] of Table VI: low degree; high closeness/betweenness;
    low eigen; high LUT; SheLL. *)

val pp_attrs : Format.formatter -> attrs -> unit
