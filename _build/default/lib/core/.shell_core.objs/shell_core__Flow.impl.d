lib/core/flow.ml: Connectivity Extraction Format Hashtbl List Overhead Score Selection Shell_fabric Shell_locking Shell_netlist Shell_pnr String Synthesize
