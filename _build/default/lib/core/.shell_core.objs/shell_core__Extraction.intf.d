lib/core/extraction.mli: Shell_netlist
