lib/core/flow.mli: Connectivity Extraction Format Overhead Score Selection Shell_fabric Shell_locking Shell_netlist Shell_pnr Synthesize
