lib/core/baselines.mli: Flow
