lib/core/connectivity.mli: Score Shell_graph Shell_netlist
