lib/core/baselines.ml: Flow Shell_fabric
