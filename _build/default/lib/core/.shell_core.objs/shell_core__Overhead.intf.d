lib/core/overhead.mli: Format Shell_fabric Shell_netlist
