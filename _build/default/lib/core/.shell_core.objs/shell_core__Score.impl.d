lib/core/score.ml: Format
