lib/core/connectivity.ml: Array Float Hashtbl List Queue Score Seq Shell_graph Shell_netlist Shell_synth String
