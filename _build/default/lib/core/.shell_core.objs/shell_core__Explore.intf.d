lib/core/explore.mli: Overhead Score Shell_netlist
