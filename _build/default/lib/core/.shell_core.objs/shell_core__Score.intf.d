lib/core/score.mli: Format
