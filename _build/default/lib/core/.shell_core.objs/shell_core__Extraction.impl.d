lib/core/extraction.ml: Array Hashtbl List Printf Shell_netlist
