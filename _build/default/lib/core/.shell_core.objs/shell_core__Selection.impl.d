lib/core/selection.ml: Array Connectivity Fun Hashtbl List Printf Score String
