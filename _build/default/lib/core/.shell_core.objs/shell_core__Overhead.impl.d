lib/core/overhead.ml: Float Format Shell_fabric Shell_netlist
