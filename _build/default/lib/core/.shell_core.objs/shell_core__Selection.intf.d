lib/core/selection.mli: Connectivity Score
