lib/core/synthesize.ml: List Shell_fabric Shell_netlist Shell_synth String
