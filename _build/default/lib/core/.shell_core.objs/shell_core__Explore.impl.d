lib/core/explore.ml: Array Float Flow Hashtbl List Overhead Printf Score Selection Shell_fabric Shell_util
