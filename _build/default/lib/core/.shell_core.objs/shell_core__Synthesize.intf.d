lib/core/synthesize.mli: Shell_fabric Shell_netlist
