module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Splice = Shell_netlist.Splice

type cut = {
  cells : int list;
  sub : Shell_netlist.Netlist.t;
  input_binding : (string * int) list;
  output_binding : (string * int) list;
}

let extract nl ~member =
  let cells = Netlist.cells nl in
  let inside = Array.init (Array.length cells) member in
  let in_region ci = ci >= 0 && inside.(ci) in
  let driver_in net =
    match Netlist.driver nl net with Some ci -> in_region ci | None -> false
  in
  (* nets crossing in: read inside, driven outside (or port) *)
  let crossing_in = Hashtbl.create 32 in
  let crossing_out = Hashtbl.create 32 in
  Array.iteri
    (fun ci c ->
      if inside.(ci) then
        Array.iter
          (fun net ->
            if not (driver_in net) then Hashtbl.replace crossing_in net ())
          c.Cell.ins
      else
        Array.iter
          (fun net -> if driver_in net then Hashtbl.replace crossing_out net ())
          c.Cell.ins)
    cells;
  Array.iter
    (fun net -> if driver_in net then Hashtbl.replace crossing_out net ())
    (Netlist.output_nets nl);
  (* deterministic port order: ascending parent net id *)
  let sorted tbl = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
  let in_nets = sorted crossing_in and out_nets = sorted crossing_out in
  let sub = Netlist.create (Netlist.name nl ^ "_sub") in
  let map = Array.make (max (Netlist.num_nets nl) 1) (-1) in
  let input_binding =
    List.mapi
      (fun i net ->
        let port = Printf.sprintf "sub_in%d" i in
        map.(net) <- Netlist.add_input sub port;
        (port, net))
      in_nets
  in
  let map_net net =
    if map.(net) = -1 then map.(net) <- Netlist.new_net sub;
    map.(net)
  in
  let region = ref [] in
  Array.iteri
    (fun ci c ->
      if inside.(ci) then begin
        region := ci :: !region;
        Netlist.add_cell sub
          (Cell.make ~origin:c.Cell.origin c.Cell.kind
             (Array.map map_net c.Cell.ins)
             (map_net c.Cell.out))
      end)
    cells;
  let output_binding =
    List.mapi
      (fun i net ->
        let port = Printf.sprintf "sub_out%d" i in
        Netlist.add_output sub port (map_net net);
        (port, net))
      out_nets
  in
  { cells = List.rev !region; sub; input_binding; output_binding }

let reassemble nl cut ~replacement =
  let in_region = Hashtbl.create 64 in
  List.iter (fun ci -> Hashtbl.replace in_region ci ()) cut.cells;
  Splice.replace_cells nl
    ~remove:(fun ci -> Hashtbl.mem in_region ci)
    ~replacement ~input_binding:cut.input_binding
    ~output_binding:cut.output_binding
