module Netlist = Shell_netlist.Netlist
module Equiv = Shell_netlist.Equiv
module Style = Shell_fabric.Style
module Fabric = Shell_fabric.Fabric
module Emit = Shell_fabric.Emit
module Bitstream = Shell_fabric.Bitstream
module Pnr = Shell_pnr.Pnr
module Locked = Shell_locking.Locked

type target =
  | Fixed of { route : string list; lgc : string list; label : string }
  | Auto of { coeffs : Score.coeffs; lgc_depth : int }
  | Route_with_lgc_depth of { route : string list; depth : int }
      (** Table VII methodology: fixed ROUTE, best LGC at a distance *)

type config = {
  style : Style.t;
  target : target;
  shrink : bool;
  seed : int;
  max_luts : float;
}

let shell_config ?target () =
  {
    style = Style.Fabulous_muxchain;
    target =
      (match target with
      | Some t -> t
      | None -> Auto { coeffs = Score.shell_choice; lgc_depth = 0 });
    shrink = true;
    seed = 0x51e11;
    max_luts = 96.0;
  }

type result = {
  config : config;
  original : Shell_netlist.Netlist.t;
  analysis : Connectivity.t;
  choice : Selection.choice;
  cut : Extraction.cut;
  mapped : Synthesize.mapped;
  pnr : Shell_pnr.Pnr.result;
  emitted : Shell_fabric.Emit.t;
  resources : Shell_fabric.Resources.t;
  overhead : Overhead.t;
  locked_full : Shell_netlist.Netlist.t;
}

let run config original =
  (* steps 1-2: connectivity analysis *)
  let analysis = Connectivity.analyze original in
  (* step 3: selection *)
  let choice =
    match config.target with
    | Fixed { route; lgc; label } ->
        Selection.fixed analysis ~label ~route ~lgc ()
    | Auto { coeffs; lgc_depth } ->
        Selection.auto analysis ~coeffs ~lgc_depth ~max_luts:config.max_luts ()
    | Route_with_lgc_depth { route; depth } ->
        Selection.with_lgc_depth analysis ~route ~depth
  in
  (* step 4: extraction (decoupling is by origin inside the sub) *)
  let member_cell = Selection.member analysis choice in
  let cut = Extraction.extract original ~member:member_cell in
  (* step 5: dual synthesis *)
  let route_origins = Selection.route_origins analysis choice in
  let mapped = Synthesize.run ~style:config.style ~route_origins cut.Extraction.sub in
  (* steps 6-7: fabric sizing + fit loop *)
  let pnr =
    Pnr.fit_loop ~seed:config.seed ~style:config.style mapped.Synthesize.netlist
  in
  (* functional emission (the locked sub-circuit + bitstream) *)
  let emitted = Emit.emit ~style:config.style ~seed:config.seed mapped.Synthesize.netlist in
  (* acyclic twin for timing *)
  let timing =
    if (Style.params config.style).Style.cyclic_routing then
      (Emit.emit ~style:config.style ~seed:config.seed ~force_acyclic:true
         mapped.Synthesize.netlist)
        .Emit.locked
    else emitted.Emit.locked
  in
  (* Table VII mechanism: ROUTE <-> LGC traffic that has to leave the
     fabric, traverse the excluded middle logic and come back. Only
     cross-family paths count: a directly-connected (depth-0) pick
     keeps this traffic internal and pays nothing. *)
  let feedthroughs =
    let module Cell = Shell_netlist.Cell in
    let member = Hashtbl.create 64 in
    List.iter (fun ci -> Hashtbl.replace member ci ()) cut.Extraction.cells;
    let origin_matches pats (c : Cell.t) =
      List.exists
        (fun pat ->
          let s = c.Cell.origin and m = String.length pat in
          let n = String.length s in
          let rec go i = i + m <= n && (String.sub s i m = pat || go (i + 1)) in
          m > 0 && go 0)
        pats
    in
    let family ci =
      if origin_matches route_origins (Netlist.cell original ci) then `Route
      else `Lgc
    in
    (* family of each boundary-output driver / boundary-input reader *)
    let in_family = Hashtbl.create 32 in
    List.iter
      (fun (_, net) ->
        List.iter
          (fun ci ->
            if Hashtbl.mem member ci then
              Hashtbl.replace in_family net (family ci))
          (Netlist.fanout original net))
      cut.Extraction.input_binding;
    let count = ref 0 in
    List.iter
      (fun (_, start) ->
        match Netlist.driver original start with
        | None -> ()
        | Some drv when not (Hashtbl.mem member drv) -> ()
        | Some drv ->
            let out_fam = family drv in
            let seen = Hashtbl.create 64 in
            let hit = ref false in
            let rec go net depth =
              if depth >= 0 && not !hit then begin
                (match Hashtbl.find_opt in_family net with
                | Some fam when fam <> out_fam && net <> start -> hit := true
                | Some _ | None -> ());
                if not !hit then
                  List.iter
                    (fun ci ->
                      if
                        (not (Hashtbl.mem member ci))
                        && not (Hashtbl.mem seen ci)
                      then begin
                        Hashtbl.replace seen ci ();
                        let c = Netlist.cell original ci in
                        if not (Cell.is_sequential c.Cell.kind) then
                          go c.Cell.out (depth - 1)
                      end)
                    (Netlist.fanout original net)
              end
            in
            go start 6;
            if !hit then incr count)
      cut.Extraction.output_binding;
    !count
  in
  (* step 8: shrinking (or full-capacity accounting for the baselines) *)
  let resources =
    let base =
      if config.shrink then Fabric.shrink pnr.Pnr.fabric ~used:emitted.Emit.used
      else Fabric.capacity pnr.Pnr.fabric
    in
    {
      base with
      Shell_fabric.Resources.feedthrough_tracks = feedthroughs;
      io_pins = base.Shell_fabric.Resources.io_pins + (2 * feedthroughs);
    }
  in
  let overhead =
    Overhead.compute ~original ~sub:cut.Extraction.sub ~resources
      ~style:config.style ~timing_sub:timing ~feedthroughs ()
  in
  let locked_full =
    Extraction.reassemble original cut ~replacement:emitted.Emit.locked
  in
  {
    config;
    original;
    analysis;
    choice;
    cut;
    mapped;
    pnr;
    emitted;
    resources;
    overhead;
    locked_full;
  }

let locked_sub r =
  {
    Locked.locked = r.emitted.Emit.locked;
    key = Bitstream.bits r.emitted.Emit.bitstream;
    scheme = "efpga-redaction";
  }

let verify ?(runs = 8) ?(cycles = 24) r =
  (* bind the bitstream first: cyclic-style emissions cannot be
     simulated until the configuration collapses the decoy routing *)
  let key = Bitstream.bits r.emitted.Emit.bitstream in
  let bound = Shell_netlist.Specialize.bind_keys r.locked_full key in
  match Equiv.check_sequential ~runs ~cycles r.original bound with
  | Equiv.Equivalent -> true
  | Equiv.Counterexample _ -> false

let pp_summary ppf r =
  Format.fprintf ppf
    "@[<v>style: %s@,TfR: %s@,coverage: %.2f  est LUTs: %.1f@,mapped: %d LUTs (%d levels), %d chain mux4, %d mux2, %d FFs@,fabric: %a  fit: %s  utilization: %.2f@,key bits: %d@,overhead: %a@]"
    (Style.name r.config.style) r.choice.Selection.label
    r.choice.Selection.coverage r.choice.Selection.lut_estimate
    r.mapped.Synthesize.luts r.mapped.Synthesize.lut_levels
    r.mapped.Synthesize.chain_mux4 r.mapped.Synthesize.chain_mux2
    r.mapped.Synthesize.ffs Fabric.pp r.pnr.Pnr.fabric
    (match r.pnr.Pnr.fit with Ok () -> "yes" | Error _ -> "NO")
    r.pnr.Pnr.utilization
    r.emitted.Emit.used.Shell_fabric.Resources.config_bits
    Overhead.pp r.overhead
