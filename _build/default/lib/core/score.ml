type attrs = {
  idgc : float;
  odgc : float;
  clsc : float;
  btwc : float;
  eigc : float;
  lutr : float;
}

type coeffs = {
  alpha : float;
  beta : float;
  gamma : float;
  lambda : float;
  xi : float;
  sigma : float;
}

let eval c a =
  (c.alpha *. a.idgc) +. (c.beta *. a.odgc) +. (c.gamma *. a.clsc)
  +. (c.lambda *. a.btwc) +. (c.xi *. a.eigc) +. (c.sigma *. a.lutr)

let h = 1.0
let l = -1.0

let make (alpha, beta, gamma, lambda, xi, sigma) =
  { alpha; beta; gamma; lambda; xi; sigma }

let shell_choice = make (h, h, l, l, h, l)

let presets =
  [
    ("c1", make (l, l, l, l, h, l));  (* low degree *)
    ("c2", make (h, h, h, h, h, l));  (* high closeness/betweenness *)
    ("c3", make (h, h, l, l, l, l));  (* low eigen *)
    ("c4", make (h, h, l, l, h, h));  (* high LUT *)
    ("c5", shell_choice);
  ]

let pp_attrs ppf a =
  Format.fprintf ppf
    "iDgC=%.2f oDgC=%.2f ClsC=%.2f BtwC=%.2f EigC=%.2f LuTR=%.2f" a.idgc
    a.odgc a.clsc a.btwc a.eigc a.lutr
