module Style = Shell_fabric.Style

type named_target = { route : string list; lgc : string list; label : string }

let fixed t = Flow.Fixed { route = t.route; lgc = t.lgc; label = t.label }

let case1 t =
  {
    Flow.style = Style.Openfpga;
    target = fixed t;
    shrink = false;
    seed = 0xca5e1;
    max_luts = 128.0;
  }

let case2 t = { (case1 t) with Flow.seed = 0xca5e2 }

let case3 t =
  {
    Flow.style = Style.Fabulous_std;
    target = fixed t;
    shrink = false;
    seed = 0xca5e3;
    max_luts = 128.0;
  }

let case4 t =
  {
    Flow.style = Style.Fabulous_muxchain;
    target = fixed t;
    shrink = true;
    seed = 0xca5e4;
    max_luts = 128.0;
  }

let all ~case1:t1 ~case2:t2 ~case3:t3 ~shell =
  [
    ("Case 1 (no-strategy, OpenFPGA)", case1 t1);
    ("Case 2 (filtering, OpenFPGA)", case2 t2);
    ("Case 3 (no-strategy, FABulous)", case3 t3);
    ("Case 4 (SheLL)", case4 shell);
  ]
