(** The comparison cases of Tables IV/V as flow configurations.

    - Case 1 — no-strategy redaction via OpenFPGA [10], [11]: the
      named module goes into a square LUT-only fabric, no shrinking.
    - Case 2 — module/cluster-filtering redaction via OpenFPGA [12]:
      a filtered (slightly larger, better chosen) module set, same
      fabric, no shrinking.
    - Case 3 — no-strategy via FABulous: better std-cell fabric, still
      LGC-oriented and unshrunk.
    - Case 4 — SheLL: ROUTE-then-LGC onto FABulous MUX chains, shrunk.
*)

type named_target = { route : string list; lgc : string list; label : string }

val case1 : named_target -> Flow.config
val case2 : named_target -> Flow.config
val case3 : named_target -> Flow.config
val case4 : named_target -> Flow.config

val all : case1:named_target -> case2:named_target -> case3:named_target ->
  shell:named_target -> (string * Flow.config) list
(** The four columns of Table IV, in order. *)
