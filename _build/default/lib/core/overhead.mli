(** Normalized Area / Power / Delay overhead (the A/P/D columns of
    Tables IV–VII).

    Area and power replace the extracted sub-circuit's standard cells
    with the fabric inventory; delay substitutes the fabric's
    pin-to-pin critical path (measured on a topologically-orderable
    twin of the emission, times the style's interconnect factor) for
    the sub-circuit's internal path. All three are reported relative
    to the unmodified design (1.0 = free). *)

type t = { area : float; power : float; delay : float }

val compute :
  original:Shell_netlist.Netlist.t ->
  sub:Shell_netlist.Netlist.t ->
  resources:Shell_fabric.Resources.t ->
  style:Shell_fabric.Style.t ->
  timing_sub:Shell_netlist.Netlist.t ->
  ?feedthroughs:int ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
