module Cost = Shell_netlist.Cost
module Resources = Shell_fabric.Resources
module Style = Shell_fabric.Style

type t = { area : float; power : float; delay : float }

(* each exit-and-re-enter route serializes two boundary crossings plus
   a full-span track traversal *)
let feedthrough_delay = 0.3

let compute ~original ~sub ~resources ~style ~timing_sub ?(feedthroughs = 0) () =
  let base = Cost.report original in
  let sub_r = Cost.report sub in
  let fab_area = Resources.area style resources in
  let fab_power = Resources.power style resources in
  let fab_delay =
    (Cost.delay timing_sub *. (Style.params style).Style.delay_factor)
    +. (feedthrough_delay *. float_of_int feedthroughs
       *. (Style.params style).Style.delay_factor)
  in
  let area = (base.Cost.area -. sub_r.Cost.area +. fab_area) /. base.Cost.area in
  let power =
    (base.Cost.power -. sub_r.Cost.power +. fab_power) /. base.Cost.power
  in
  let locked_delay =
    Float.max base.Cost.delay
      (base.Cost.delay -. sub_r.Cost.delay +. fab_delay)
  in
  let delay = locked_delay /. Float.max base.Cost.delay 1e-9 in
  { area = Float.max 1.0 area; power = Float.max 1.0 power; delay }

let pp ppf t =
  Format.fprintf ppf "A=%.3f P=%.3f D=%.3f" t.area t.power t.delay
