(** Step 4 support: carve the selected sub-circuit out of the design.

    The extracted netlist exposes one input port per net crossing into
    the region ([sub_in<i>]) and one output port per net leaving it
    ([sub_out<i>]); the bindings remember the parent nets so the
    configured fabric can later be spliced back in the sub-circuit's
    place. *)

type cut = {
  cells : int list;  (** parent cell indices inside the region *)
  sub : Shell_netlist.Netlist.t;
  input_binding : (string * int) list;  (** sub port -> parent net *)
  output_binding : (string * int) list;
}

val extract : Shell_netlist.Netlist.t -> member:(int -> bool) -> cut
(** [member] decides region membership by cell index. Sequential cells
    inside the region move into the sub-circuit. *)

val reassemble :
  Shell_netlist.Netlist.t -> cut -> replacement:Shell_netlist.Netlist.t ->
  Shell_netlist.Netlist.t
(** Drop the region from the parent and splice [replacement] (same
    port shape as [cut.sub], possibly with key inputs) in its place. *)
