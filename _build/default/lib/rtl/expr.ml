type t =
  | Var of string
  | Lit of { width : int; value : int64 }
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Add of t * t
  | Sub of t * t
  | Eq of t * t
  | Lt of t * t
  | Mux of t * t * t
  | Concat of t * t
  | Slice of t * int * int
  | Reduce_and of t
  | Reduce_or of t
  | Reduce_xor of t

exception Width_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Width_error s)) fmt

let rec width_exn ~env e =
  let same a b what =
    let wa = width_exn ~env a and wb = width_exn ~env b in
    if wa <> wb then fail "%s: operand widths %d vs %d" what wa wb;
    wa
  in
  match e with
  | Var nm -> env nm
  | Lit { width; _ } ->
      if width <= 0 then fail "literal width must be positive";
      width
  | Not a -> width_exn ~env a
  | And (a, b) -> same a b "and"
  | Or (a, b) -> same a b "or"
  | Xor (a, b) -> same a b "xor"
  | Add (a, b) -> same a b "add"
  | Sub (a, b) -> same a b "sub"
  | Eq (a, b) ->
      ignore (same a b "eq");
      1
  | Lt (a, b) ->
      ignore (same a b "lt");
      1
  | Mux (c, a, b) ->
      if width_exn ~env c <> 1 then fail "mux condition must be 1 bit";
      same a b "mux"
  | Concat (hi, lo) -> width_exn ~env hi + width_exn ~env lo
  | Slice (a, hi, lo) ->
      let w = width_exn ~env a in
      if lo < 0 || hi < lo || hi >= w then
        fail "slice [%d:%d] out of range for width %d" hi lo w;
      hi - lo + 1
  | Reduce_and a | Reduce_or a | Reduce_xor a ->
      ignore (width_exn ~env a);
      1

let vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Var nm ->
        if not (Hashtbl.mem seen nm) then begin
          Hashtbl.add seen nm ();
          acc := nm :: !acc
        end
    | Lit _ -> ()
    | Not a | Slice (a, _, _) | Reduce_and a | Reduce_or a | Reduce_xor a ->
        go a
    | And (a, b) | Or (a, b) | Xor (a, b) | Add (a, b) | Sub (a, b)
    | Eq (a, b) | Lt (a, b) | Concat (a, b) ->
        go a;
        go b
    | Mux (c, a, b) ->
        go c;
        go a;
        go b
  in
  go e;
  List.rev !acc

let var nm = Var nm
let lit ~width value = Lit { width; value = Int64.of_int value }
let bit0 = lit ~width:1 0
let bit1 = lit ~width:1 1
let ( &: ) a b = And (a, b)
let ( |: ) a b = Or (a, b)
let ( ^: ) a b = Xor (a, b)
let ( ~: ) a = Not a
let ( +: ) a b = Add (a, b)
let ( -: ) a b = Sub (a, b)
let ( ==: ) a b = Eq (a, b)
let ( <: ) a b = Lt (a, b)
let mux c a b = Mux (c, a, b)

let concat = function
  | [] -> invalid_arg "Expr.concat: empty"
  | hd :: tl -> List.fold_left (fun acc e -> Concat (acc, e)) hd tl

let slice e hi lo = Slice (e, hi, lo)
let bit e i = Slice (e, i, i)

let rec pp ppf = function
  | Var nm -> Format.pp_print_string ppf nm
  | Lit { width; value } -> Format.fprintf ppf "%d'd%Ld" width value
  | Not a -> Format.fprintf ppf "~%a" pp a
  | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
  | Xor (a, b) -> Format.fprintf ppf "(%a ^ %a)" pp a pp b
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Eq (a, b) -> Format.fprintf ppf "(%a == %a)" pp a pp b
  | Lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp a pp b
  | Mux (c, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp a pp b
  | Concat (a, b) -> Format.fprintf ppf "{%a, %a}" pp a pp b
  | Slice (a, hi, lo) -> Format.fprintf ppf "%a[%d:%d]" pp a hi lo
  | Reduce_and a -> Format.fprintf ppf "&%a" pp a
  | Reduce_or a -> Format.fprintf ppf "|%a" pp a
  | Reduce_xor a -> Format.fprintf ppf "^%a" pp a
