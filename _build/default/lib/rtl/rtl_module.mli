(** RTL modules: ports, wires, registers, [@always] blocks, instances.

    The IR mirrors the granularity the paper analyses: a module is a
    set of named [@always] blocks (combinational or clocked) plus
    instances of other modules; inter-block signals are the ROUTE
    candidates, the blocks' internals the LGC candidates. *)

type signal = { name : string; width : int }

(** A combinational [@always*] block: ordered parallel assignments to
    wire signals. A clocked [@always(posedge clk)] block assigns next
    values to registers. Each signal may be assigned in at most one
    block (checked at elaboration). *)
type block = { block_name : string; assigns : (string * Expr.t) list }

type instance = {
  inst_name : string;
  module_name : string;
  bindings : (string * string) list;
      (** formal port name -> actual signal name in the parent *)
}

type t

val create : string -> t
val name : t -> string

val add_input : t -> string -> int -> unit
(** [add_input m name width]. *)

val add_output : t -> string -> int -> unit
val add_wire : t -> string -> int -> unit
val add_reg : t -> string -> int -> unit

val add_comb : t -> string -> (string * Expr.t) list -> unit
(** [add_comb m block_name assigns]: combinational block driving wires
    or outputs. *)

val add_seq : t -> string -> (string * Expr.t) list -> unit
(** Clocked block driving registers. *)

val add_instance :
  t -> inst_name:string -> module_name:string -> bindings:(string * string) list -> unit

val inputs : t -> signal list
val outputs : t -> signal list
val wires : t -> signal list
val regs : t -> signal list
val combs : t -> block list
val seqs : t -> block list
val instances : t -> instance list

val signal_width : t -> string -> int option
(** Width of any declared signal (port, wire or reg). *)

(** {1 Designs} *)

module Design : sig
  type rtl_module = t
  type t

  val create : top:string -> t
  val add_module : t -> rtl_module -> unit
  val top : t -> string
  val find : t -> string -> rtl_module option
  val modules : t -> rtl_module list
end
