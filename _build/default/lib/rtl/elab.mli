(** Elaboration: RTL design -> flat gate-level netlist.

    The hierarchy is flattened and uniquified (every instance gets its
    own logic); each emitted cell carries an [origin] tag
    ["<instance-path>:<block-name>"] — e.g. ["top/core2:_mem_wr"] —
    which is what the SheLL connectivity analysis groups by, at both
    SoC level (instance paths) and IP level ([@always] blocks).

    Multi-bit ports appear in the netlist as ["name[i]"] bit ports
    (width-1 ports keep their bare name). Registers become one [Dff]
    per bit. *)

exception Elab_error of string

val elaborate : ?clean:bool -> Rtl_module.Design.t -> Shell_netlist.Netlist.t
(** Raises {!Elab_error} on undriven/doubly-driven signals, unknown
    modules, or width mismatches. [clean] (default true) sweeps the
    stitching buffers and dead cells after flattening. *)

val module_footprint :
  Shell_netlist.Netlist.t -> (string * int) list
(** Cells per origin tag, sorted by count (descending) — the paper's
    per-module resource view. *)
