lib/rtl/rtl_module.ml: Expr Hashtbl List
