lib/rtl/expr.ml: Format Hashtbl Int64 List
