lib/rtl/expr.mli: Format
