lib/rtl/elab.ml: Array Expr Format Hashtbl Int64 List Printf Rtl_module Shell_netlist
