lib/rtl/rtl_module.mli: Expr
