lib/rtl/elab.mli: Rtl_module Shell_netlist
