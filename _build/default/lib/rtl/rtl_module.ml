type signal = { name : string; width : int }

type block = { block_name : string; assigns : (string * Expr.t) list }

type instance = {
  inst_name : string;
  module_name : string;
  bindings : (string * string) list;
}

type t = {
  name : string;
  mutable inputs : signal list;
  mutable outputs : signal list;
  mutable wires : signal list;
  mutable regs : signal list;
  mutable combs : block list;
  mutable seqs : block list;
  mutable instances : instance list;
  widths : (string, int) Hashtbl.t;
}

let create name =
  {
    name;
    inputs = [];
    outputs = [];
    wires = [];
    regs = [];
    combs = [];
    seqs = [];
    instances = [];
    widths = Hashtbl.create 16;
  }

let name m = m.name

let declare m nm width =
  if width <= 0 then invalid_arg ("Rtl_module: width of " ^ nm);
  if Hashtbl.mem m.widths nm then
    invalid_arg ("Rtl_module: duplicate signal " ^ nm);
  Hashtbl.add m.widths nm width

let add_input m nm width =
  declare m nm width;
  m.inputs <- { name = nm; width } :: m.inputs

let add_output m nm width =
  declare m nm width;
  m.outputs <- { name = nm; width } :: m.outputs

let add_wire m nm width =
  declare m nm width;
  m.wires <- { name = nm; width } :: m.wires

let add_reg m nm width =
  declare m nm width;
  m.regs <- { name = nm; width } :: m.regs

let add_comb m block_name assigns =
  m.combs <- { block_name; assigns } :: m.combs

let add_seq m block_name assigns =
  m.seqs <- { block_name; assigns } :: m.seqs

let add_instance m ~inst_name ~module_name ~bindings =
  m.instances <- { inst_name; module_name; bindings } :: m.instances

let inputs m = List.rev m.inputs
let outputs m = List.rev m.outputs
let wires m = List.rev m.wires
let regs m = List.rev m.regs
let combs m = List.rev m.combs
let seqs m = List.rev m.seqs
let instances m = List.rev m.instances

let signal_width m nm = Hashtbl.find_opt m.widths nm

module Design = struct
  type rtl_module = t

  type nonrec t = {
    top : string;
    tbl : (string, rtl_module) Hashtbl.t;
    mutable order : string list;
  }

  let create ~top = { top; tbl = Hashtbl.create 8; order = [] }

  let add_module d m =
    if Hashtbl.mem d.tbl m.name then
      invalid_arg ("Design.add_module: duplicate " ^ m.name);
    Hashtbl.add d.tbl m.name m;
    d.order <- m.name :: d.order

  let top d = d.top
  let find d nm = Hashtbl.find_opt d.tbl nm

  let modules d =
    List.rev_map (fun nm -> Hashtbl.find d.tbl nm) d.order
end
