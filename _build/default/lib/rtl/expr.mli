(** Bit-vector expressions of the RTL intermediate representation.

    This IR plays the role FIRRTL plays in the paper's flow: a small,
    easily-graphed representation between the design entry and the
    gate-level netlist. Widths are inferred bottom-up; [width_exn]
    reports mismatches. *)

type t =
  | Var of string
  | Lit of { width : int; value : int64 }
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Add of t * t
  | Sub of t * t
  | Eq of t * t
  | Lt of t * t  (** unsigned *)
  | Mux of t * t * t  (** [Mux (cond, then_, else_)], cond 1 bit wide *)
  | Concat of t * t  (** [Concat (hi, lo)] *)
  | Slice of t * int * int  (** [Slice (e, hi, lo)], inclusive *)
  | Reduce_and of t
  | Reduce_or of t
  | Reduce_xor of t

exception Width_error of string

val width_exn : env:(string -> int) -> t -> int
(** [env] gives declared signal widths; raises {!Width_error} on
    inconsistent operands or unknown variables. *)

val vars : t -> string list
(** Free variables, each once, in first-use order. *)

(** Convenience constructors. *)

val var : string -> t
val lit : width:int -> int -> t
val bit0 : t
val bit1 : t
val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( ~: ) : t -> t
val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( ==: ) : t -> t -> t
val ( <: ) : t -> t -> t
val mux : t -> t -> t -> t
val concat : t list -> t
(** [concat [hi; ...; lo]]; requires a non-empty list. *)

val slice : t -> int -> int -> t
val bit : t -> int -> t

val pp : Format.formatter -> t -> unit
