module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Truthtab = Shell_util.Truthtab

type stats = { luts : int; levels : int; kept_cells : int }

type cut = { leaves : int array; depth : int }

let cuts_per_net = 8
let merge_budget = 400

(* Union of sorted leaf arrays; None when the union exceeds [k]. *)
let union_leaves k a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let rec go i j n =
    if n > k then None
    else if i = la && j = lb then Some (Array.sub out 0 n)
    else if i = la then begin
      out.(n) <- b.(j);
      go i (j + 1) (n + 1)
    end
    else if j = lb then begin
      out.(n) <- a.(i);
      go (i + 1) j (n + 1)
    end
    else if a.(i) = b.(j) then begin
      out.(n) <- a.(i);
      go (i + 1) (j + 1) (n + 1)
    end
    else if a.(i) < b.(j) then begin
      out.(n) <- a.(i);
      go (i + 1) j (n + 1)
    end
    else begin
      out.(n) <- b.(j);
      go i (j + 1) (n + 1)
    end
  in
  go 0 0 0

let map ?(k = 4) ?(boundary = fun _ -> false) src =
  if k < 2 || k > Truthtab.max_inputs then invalid_arg "Lut_map.map: k";
  let cells = Netlist.cells src in
  let n_nets = max (Netlist.num_nets src) 1 in
  let cuts : cut list array = Array.make n_nets [] in
  let best_depth = Array.make n_nets 0 in
  let is_source = Array.make n_nets false in
  let mark_source net =
    is_source.(net) <- true;
    cuts.(net) <- [ { leaves = [| net |]; depth = 0 } ]
  in
  Array.iter mark_source (Netlist.input_nets src);
  Array.iter mark_source (Netlist.key_nets src);
  let is_boundary = Array.make (Array.length cells) false in
  Array.iteri
    (fun i c ->
      if Cell.is_sequential c.Cell.kind then begin
        is_boundary.(i) <- true;
        mark_source c.Cell.out
      end)
    cells;
  (* Phase 1: cut enumeration in topological order. *)
  let order = Netlist.topo_order src in
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      if not (Cell.is_sequential c.Cell.kind) then begin
        let arity = Array.length c.Cell.ins in
        let out = c.Cell.out in
        if
          arity > k || boundary c
          || (match c.Cell.kind with Cell.Const _ -> true | _ -> false)
        then begin
          is_boundary.(ci) <- true;
          is_source.(out) <- true;
          cuts.(out) <- [ { leaves = [| out |]; depth = 0 } ];
          best_depth.(out) <- 0
        end
        else begin
          let per_input = Array.map (fun net -> cuts.(net)) c.Cell.ins in
          let acc = ref [] in
          let budget = ref merge_budget in
          (* Depth-first product of the input cut lists. A cut's depth
             is recomputed from its merged leaves: absorbing an input's
             cone means arrivals come from that cone's leaves. *)
          let rec product i leaves =
            if !budget > 0 then
              if i = arity then begin
                decr budget;
                let depth =
                  1 + Array.fold_left (fun m l -> max m best_depth.(l)) 0 leaves
                in
                acc := { leaves; depth } :: !acc
              end
              else
                List.iter
                  (fun cut ->
                    match union_leaves k leaves cut.leaves with
                    | Some merged -> product (i + 1) merged
                    | None -> ())
                  per_input.(i)
          in
          product 0 [||];
          let compare_cuts a b =
            match compare a.depth b.depth with
            | 0 -> compare (Array.length a.leaves) (Array.length b.leaves)
            | c -> c
          in
          let sorted = List.sort compare_cuts !acc in
          let rec take n = function
            | [] -> []
            | _ when n = 0 -> []
            | x :: tl -> x :: take (n - 1) tl
          in
          let best = take cuts_per_net sorted in
          (* keep the trivial cut so downstream merges can stop here *)
          let trivial =
            { leaves = [| out |];
              depth = (match best with c :: _ -> c.depth | [] -> 0) }
          in
          cuts.(out) <- best @ [ trivial ];
          best_depth.(out) <- (match best with c :: _ -> c.depth | [] -> 0)
        end
      end)
    order;
  (* Phase 2: cover extraction. *)
  let driver_of net = Netlist.driver src net in
  let required = Queue.create () in
  let required_seen = Array.make n_nets false in
  let require net =
    if not required_seen.(net) then begin
      required_seen.(net) <- true;
      Queue.add net required
    end
  in
  Array.iter require (Netlist.output_nets src);
  Array.iteri
    (fun i c ->
      if is_boundary.(i) || Cell.is_sequential c.Cell.kind then
        Array.iter require c.Cell.ins)
    cells;
  let chosen : (int * cut) list ref = ref [] in
  while not (Queue.is_empty required) do
    let net = Queue.pop required in
    if not is_source.(net) then begin
      match cuts.(net) with
      | [] -> failwith "Lut_map: net without cuts"
      | best :: _ ->
          (* never pick the trivial self-cut as an implementation *)
          let cut =
            if Array.length best.leaves = 1 && best.leaves.(0) = net then
              match cuts.(net) with
              | _ :: c :: _ -> c
              | _ -> failwith "Lut_map: only trivial cut available"
            else best
          in
          chosen := (net, cut) :: !chosen;
          Array.iter require cut.leaves
    end
  done;
  (* Phase 3: build the mapped netlist. *)
  let dst = Netlist.create (Netlist.name src) in
  let net_map = Array.make n_nets (-1) in
  List.iter
    (fun (nm, net) -> net_map.(net) <- Netlist.add_input dst nm)
    (Netlist.inputs src);
  List.iter
    (fun (nm, net) -> net_map.(net) <- Netlist.add_key dst nm)
    (Netlist.keys src);
  let map_net net =
    if net_map.(net) = -1 then net_map.(net) <- Netlist.new_net dst;
    net_map.(net)
  in
  (* truth table of the cone from [leaves] to [root] *)
  let cone_tt root leaves =
    let leaf_pos = Hashtbl.create 8 in
    Array.iteri (fun i l -> Hashtbl.add leaf_pos l i) leaves;
    let arity = Array.length leaves in
    Truthtab.of_fun ~arity (fun ins ->
        let memo = Hashtbl.create 16 in
        let rec eval net =
          match Hashtbl.find_opt leaf_pos net with
          | Some i -> ins.(i)
          | None -> (
              match Hashtbl.find_opt memo net with
              | Some v -> v
              | None ->
                  let ci =
                    match driver_of net with
                    | Some ci -> ci
                    | None -> failwith "Lut_map: cone hit undriven net"
                  in
                  let c = cells.(ci) in
                  let v = Cell.eval c.Cell.kind (Array.map eval c.Cell.ins) in
                  Hashtbl.add memo net v;
                  v)
        in
        eval root)
  in
  let luts = ref 0 in
  List.iter
    (fun (net, cut) ->
      let origin =
        match driver_of net with
        | Some ci -> cells.(ci).Cell.origin
        | None -> ""
      in
      let tt = cone_tt net cut.leaves in
      let ins = Array.map map_net cut.leaves in
      let out = map_net net in
      incr luts;
      Netlist.add_cell dst (Cell.make ~origin (Cell.Lut tt) ins out))
    !chosen;
  let kept = ref 0 in
  Array.iteri
    (fun i c ->
      if is_boundary.(i) || Cell.is_sequential c.Cell.kind then begin
        incr kept;
        Netlist.add_cell dst
          (Cell.make ~origin:c.Cell.origin c.Cell.kind
             (Array.map map_net c.Cell.ins)
             (map_net c.Cell.out))
      end)
    cells;
  List.iter
    (fun (nm, net) -> Netlist.add_output dst nm (map_net net))
    (Netlist.outputs src);
  (* LUT network depth *)
  let levels =
    let lv = Array.make (max (Netlist.num_nets dst) 1) 0 in
    let order = Netlist.topo_order dst in
    let dcells = Netlist.cells dst in
    let deepest = ref 0 in
    Array.iter
      (fun ci ->
        let c = dcells.(ci) in
        match c.Cell.kind with
        | Cell.Lut _ ->
            let m = Array.fold_left (fun acc n -> max acc lv.(n)) 0 c.Cell.ins in
            lv.(c.Cell.out) <- m + 1;
            deepest := max !deepest (m + 1)
        | _ ->
            lv.(c.Cell.out) <-
              Array.fold_left (fun acc n -> max acc lv.(n)) 0 c.Cell.ins)
      order;
    !deepest
  in
  (dst, { luts = !luts; levels; kept_cells = !kept })

let lut_count ?k src = (snd (map ?k src)).luts

