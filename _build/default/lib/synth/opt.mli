(** Combinational optimization: constant folding, algebraic
    simplification, structural hashing (common-subexpression sharing),
    buffer/double-inverter removal.

    Plays the role of the generic cleanup passes of the Yosys scripts
    in the paper's flow. Semantics-preserving: primary ports keep names
    and order; sequential cells are preserved. *)

val simplify_once : Shell_netlist.Netlist.t -> Shell_netlist.Netlist.t

val simplify : Shell_netlist.Netlist.t -> Shell_netlist.Netlist.t
(** Run {!simplify_once} to a fixpoint (bounded). *)
