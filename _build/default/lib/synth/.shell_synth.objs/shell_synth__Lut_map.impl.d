lib/synth/lut_map.ml: Array Hashtbl List Queue Shell_netlist Shell_util
