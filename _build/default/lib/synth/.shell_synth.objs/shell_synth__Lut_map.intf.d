lib/synth/lut_map.mli: Shell_netlist
