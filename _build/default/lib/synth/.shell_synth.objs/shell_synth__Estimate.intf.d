lib/synth/estimate.mli: Shell_netlist
