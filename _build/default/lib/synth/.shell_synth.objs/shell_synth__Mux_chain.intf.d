lib/synth/mux_chain.mli: Shell_netlist
