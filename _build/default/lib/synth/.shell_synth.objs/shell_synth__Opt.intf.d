lib/synth/opt.mli: Shell_netlist
