lib/synth/opt.ml: Array Hashtbl List Option Shell_netlist Shell_util String
