lib/synth/estimate.ml: Array List Shell_netlist Shell_util String
