lib/synth/mux_chain.ml: Array List Shell_netlist
