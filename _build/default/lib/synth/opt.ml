module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Rewrite = Shell_netlist.Rewrite
module Truthtab = Shell_util.Truthtab

(* The pass walks cells in topological order, emitting into a fresh
   netlist while tracking, for every old net, the new net it maps to
   and (when known) its constant value. Structural hashing shares
   identical (kind, inputs) cells. *)

type ctx = {
  src : Netlist.t;
  dst : Netlist.t;
  net_map : int array;  (* old net -> new net, -1 = not yet mapped *)
  value : bool option array;  (* constant value of old net, if known *)
  strash : (string, int) Hashtbl.t;  (* signature -> new net *)
  mutable const0 : int;  (* new net holding constant 0, -1 if none *)
  mutable const1 : int;
}

let get_const ctx b origin =
  let cached = if b then ctx.const1 else ctx.const0 in
  if cached >= 0 then cached
  else begin
    let net = Netlist.const ~origin ctx.dst b in
    if b then ctx.const1 <- net else ctx.const0 <- net;
    net
  end

let hashed_gate ctx ~origin kind ins =
  (* commutative kinds share regardless of operand order *)
  let norm =
    match kind with
    | Cell.And | Cell.Or | Cell.Xor | Cell.Nand | Cell.Nor | Cell.Xnor ->
        let s = Array.copy ins in
        Array.sort compare s;
        s
    | _ -> ins
  in
  let signature =
    Cell.kind_name kind ^ "("
    ^ String.concat "," (Array.to_list (Array.map string_of_int norm))
    ^ ")"
  in
  match Hashtbl.find_opt ctx.strash signature with
  | Some net -> net
  | None ->
      let net = Netlist.gate ~origin ctx.dst kind ins in
      Hashtbl.add ctx.strash signature net;
      net

(* Emit the simplified version of a combinational cell. Returns the new
   net carrying the cell's function and its constant value if known. *)
let emit_cell ctx (c : Cell.t) : int * bool option =
  let origin = c.Cell.origin in
  let ins = Array.map (fun n -> ctx.net_map.(n)) c.Cell.ins in
  let vals = Array.map (fun n -> ctx.value.(n)) c.Cell.ins in
  let all_const = Array.for_all Option.is_some vals in
  if all_const && c.Cell.kind <> Cell.Const true && c.Cell.kind <> Cell.Const false
  then begin
    let b = Cell.eval c.Cell.kind (Array.map Option.get vals) in
    (get_const ctx b origin, Some b)
  end
  else
    let emit_not a = (hashed_gate ctx ~origin Cell.Not [| a |], None) in
    let keep () = (hashed_gate ctx ~origin c.Cell.kind ins, None) in
    match (c.Cell.kind, vals) with
    | Cell.Const b, _ -> (get_const ctx b origin, Some b)
    | Cell.Buf, _ -> (ins.(0), vals.(0))
    | Cell.Not, [| Some b |] -> (get_const ctx (not b) origin, Some (not b))
    | Cell.Not, _ -> keep ()
    | Cell.And, [| Some false; _ |] | Cell.And, [| _; Some false |] ->
        (get_const ctx false origin, Some false)
    | Cell.And, [| Some true; _ |] -> (ins.(1), vals.(1))
    | Cell.And, [| _; Some true |] -> (ins.(0), vals.(0))
    | Cell.And, _ when ins.(0) = ins.(1) -> (ins.(0), vals.(0))
    | Cell.Or, [| Some true; _ |] | Cell.Or, [| _; Some true |] ->
        (get_const ctx true origin, Some true)
    | Cell.Or, [| Some false; _ |] -> (ins.(1), vals.(1))
    | Cell.Or, [| _; Some false |] -> (ins.(0), vals.(0))
    | Cell.Or, _ when ins.(0) = ins.(1) -> (ins.(0), vals.(0))
    | Cell.Nand, [| Some false; _ |] | Cell.Nand, [| _; Some false |] ->
        (get_const ctx true origin, Some true)
    | Cell.Nand, [| Some true; _ |] -> emit_not ins.(1)
    | Cell.Nand, [| _; Some true |] -> emit_not ins.(0)
    | Cell.Nor, [| Some true; _ |] | Cell.Nor, [| _; Some true |] ->
        (get_const ctx false origin, Some false)
    | Cell.Nor, [| Some false; _ |] -> emit_not ins.(1)
    | Cell.Nor, [| _; Some false |] -> emit_not ins.(0)
    | Cell.Xor, [| Some false; _ |] -> (ins.(1), vals.(1))
    | Cell.Xor, [| _; Some false |] -> (ins.(0), vals.(0))
    | Cell.Xor, [| Some true; _ |] -> emit_not ins.(1)
    | Cell.Xor, [| _; Some true |] -> emit_not ins.(0)
    | Cell.Xor, _ when ins.(0) = ins.(1) -> (get_const ctx false origin, Some false)
    | Cell.Xnor, [| Some true; _ |] -> (ins.(1), vals.(1))
    | Cell.Xnor, [| _; Some true |] -> (ins.(0), vals.(0))
    | Cell.Xnor, [| Some false; _ |] -> emit_not ins.(1)
    | Cell.Xnor, [| _; Some false |] -> emit_not ins.(0)
    | Cell.Xnor, _ when ins.(0) = ins.(1) -> (get_const ctx true origin, Some true)
    | Cell.Mux2, [| Some s; _; _ |] ->
        let pick = if s then 2 else 1 in
        (ins.(pick), vals.(pick))
    | Cell.Mux2, _ when ins.(1) = ins.(2) -> (ins.(1), vals.(1))
    | Cell.Mux4, [| Some s0; Some s1; _; _; _; _ |] ->
        let pick = 2 + ((if s0 then 1 else 0) lor if s1 then 2 else 0) in
        (ins.(pick), vals.(pick))
    | Cell.Lut tt, _ ->
        (* cofactor away constant inputs *)
        let tt = ref tt in
        let live = ref [] in
        (* walk from the highest index so cofactor positions stay valid *)
        for i = Array.length vals - 1 downto 0 do
          match vals.(i) with
          | Some b -> tt := Truthtab.cofactor !tt i b
          | None -> live := (i, ins.(i)) :: !live
        done;
        let live = Array.of_list !live in
        let lits = Array.map snd live in
        (match Truthtab.is_const !tt with
        | Some b -> (get_const ctx b origin, Some b)
        | None ->
            if Truthtab.arity !tt = 1 then
              if Truthtab.equal !tt (Truthtab.var 0 ~arity:1) then
                (lits.(0), None)
              else emit_not lits.(0)
            else (hashed_gate ctx ~origin (Cell.Lut !tt) lits, None))
    | (Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor
      | Cell.Mux2 | Cell.Mux4), _ ->
        keep ()
    | (Cell.Dff | Cell.Config_latch), _ ->
        invalid_arg "Opt.emit_cell: sequential cell"

let simplify_once src =
  let dst = Netlist.create (Netlist.name src) in
  let n_nets = max (Netlist.num_nets src) 1 in
  let ctx =
    {
      src;
      dst;
      net_map = Array.make n_nets (-1);
      value = Array.make n_nets None;
      strash = Hashtbl.create 256;
      const0 = -1;
      const1 = -1;
    }
  in
  List.iter
    (fun (nm, net) -> ctx.net_map.(net) <- Netlist.add_input dst nm)
    (Netlist.inputs src);
  List.iter
    (fun (nm, net) -> ctx.net_map.(net) <- Netlist.add_key dst nm)
    (Netlist.keys src);
  (* sequential outputs are sources: pre-allocate their new nets *)
  let cells = Netlist.cells src in
  Array.iter
    (fun c ->
      if Cell.is_sequential c.Cell.kind then
        ctx.net_map.(c.Cell.out) <- Netlist.new_net dst)
    cells;
  let order = Netlist.topo_order src in
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      if not (Cell.is_sequential c.Cell.kind) then begin
        let net, v = emit_cell ctx c in
        ctx.net_map.(c.Cell.out) <- net;
        ctx.value.(c.Cell.out) <- v
      end)
    order;
  (* emit sequential cells with mapped inputs and reserved outputs *)
  Array.iter
    (fun c ->
      if Cell.is_sequential c.Cell.kind then
        Netlist.add_cell dst
          (Cell.make ~origin:c.Cell.origin c.Cell.kind
             (Array.map (fun n -> ctx.net_map.(n)) c.Cell.ins)
             ctx.net_map.(c.Cell.out)))
    cells;
  List.iter
    (fun (nm, net) -> Netlist.add_output dst nm ctx.net_map.(net))
    (Netlist.outputs src);
  Rewrite.dead_cell_elim dst

let simplify src =
  let rec go nl budget =
    if budget = 0 then nl
    else
      let nl' = simplify_once nl in
      if Netlist.num_cells nl' >= Netlist.num_cells nl then nl'
      else go nl' (budget - 1)
  in
  go src 8
