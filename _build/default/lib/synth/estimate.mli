(** Offline LUT-requirement estimation (the paper's LuTR attribute).

    Step 2 of the SheLL flow scores every node by the LUT resources its
    logic would need. Running the full LUT mapper per node would be
    accurate but slow (paper, footnote 4), so — exactly like the
    paper — scores come from an offline per-gate-type database, with
    {!Lut_map.lut_count} available as the accurate fallback. *)

val luts_per_kind : Shell_netlist.Cell.kind -> float
(** Estimated share of a [k=4] LUT one cell of this kind occupies. *)

val estimate_cells : Shell_netlist.Netlist.t -> int list -> float
(** Estimated LUT count for a set of cell indices. *)

val estimate_origin : Shell_netlist.Netlist.t -> string -> float
(** Estimated LUT count for all cells whose origin starts with the
    given prefix. *)
