module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell

type stats = { mux4 : int; mux2 : int; other : int; chain_length : int }

(* Mux2 convention: ins = [|sel; d0; d1|], out = sel ? d1 : d0.
   Mux4 convention: ins = [|s0; s1; d0; d1; d2; d3|], index = s0 + 2*s1. *)

let map ?(should_pack = fun _ -> true) src =
  let cells = Netlist.cells src in
  let n = Array.length cells in
  let consumed = Array.make n false in
  let fanout_count = Array.make (max (Netlist.num_nets src) 1) 0 in
  Array.iter
    (fun c ->
      Array.iter (fun net -> fanout_count.(net) <- fanout_count.(net) + 1) c.Cell.ins)
    cells;
  Array.iter
    (fun net -> fanout_count.(net) <- fanout_count.(net) + 1)
    (Netlist.output_nets src);
  let mux2_driver net =
    match Netlist.driver src net with
    | Some ci when cells.(ci).Cell.kind = Cell.Mux2 && should_pack cells.(ci) ->
        Some ci
    | Some _ | None -> None
  in
  let dst = Netlist.create (Netlist.name src) in
  let net_map = Array.make (max (Netlist.num_nets src) 1) (-1) in
  List.iter
    (fun (nm, net) -> net_map.(net) <- Netlist.add_input dst nm)
    (Netlist.inputs src);
  List.iter
    (fun (nm, net) -> net_map.(net) <- Netlist.add_key dst nm)
    (Netlist.keys src);
  let map_net net =
    if net_map.(net) = -1 then net_map.(net) <- Netlist.new_net dst;
    net_map.(net)
  in
  let n_mux4 = ref 0 and n_mux2 = ref 0 and n_other = ref 0 in
  (* Emission must follow topo order so packing decisions see the
     not-yet-consumed state of inner muxes deterministically. *)
  let order = Netlist.topo_order src in
  (* First decide the packing (mark consumed inner muxes), walking
     outer muxes in reverse topo order so roots pack greedily. *)
  let rev_order = Array.of_list (List.rev (Array.to_list order)) in
  let pack = Array.make n None in
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      if c.Cell.kind = Cell.Mux2 && should_pack c && not consumed.(ci) then begin
        let sel = c.Cell.ins.(0)
        and d0 = c.Cell.ins.(1)
        and d1 = c.Cell.ins.(2) in
        let inner0 = mux2_driver d0 and inner1 = mux2_driver d1 in
        let usable inner net =
          match inner with
          | Some i when (not consumed.(i)) && fanout_count.(net) = 1 -> Some i
          | Some _ | None -> None
        in
        match (usable inner0 d0, usable inner1 d1) with
        | Some i0, Some i1
          when cells.(i0).Cell.ins.(0) = cells.(i1).Cell.ins.(0) ->
            (* full 4:1: both arms are muxes sharing the low select *)
            let lo = cells.(i0).Cell.ins.(0) in
            let a0 = cells.(i0).Cell.ins.(1)
            and a1 = cells.(i0).Cell.ins.(2)
            and b0 = cells.(i1).Cell.ins.(1)
            and b1 = cells.(i1).Cell.ins.(2) in
            consumed.(i0) <- true;
            consumed.(i1) <- true;
            pack.(ci) <- Some (lo, sel, [| a0; a1; b0; b1 |])
        | Some i0, _ ->
            (* chain: low arm is a private mux *)
            let lo = cells.(i0).Cell.ins.(0) in
            let a0 = cells.(i0).Cell.ins.(1) and a1 = cells.(i0).Cell.ins.(2) in
            consumed.(i0) <- true;
            pack.(ci) <- Some (lo, sel, [| a0; a1; d1; d1 |])
        | None, Some i1 ->
            let lo = cells.(i1).Cell.ins.(0) in
            let b0 = cells.(i1).Cell.ins.(1) and b1 = cells.(i1).Cell.ins.(2) in
            consumed.(i1) <- true;
            pack.(ci) <- Some (lo, sel, [| d0; d0; b0; b1 |])
        | None, None -> ()
      end)
    rev_order;
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      if not consumed.(ci) then
        match pack.(ci) with
        | Some (s0, s1, data) ->
            incr n_mux4;
            let ins =
              Array.append
                [| map_net s0; map_net s1 |]
                (Array.map map_net data)
            in
            Netlist.add_cell dst
              (Cell.make ~origin:c.Cell.origin Cell.Mux4 ins (map_net c.Cell.out))
        | None ->
            (match c.Cell.kind with
            | Cell.Mux2 -> incr n_mux2
            | _ -> incr n_other);
            Netlist.add_cell dst
              (Cell.make ~origin:c.Cell.origin c.Cell.kind
                 (Array.map map_net c.Cell.ins)
                 (map_net c.Cell.out)))
    order;
  List.iter
    (fun (nm, net) -> Netlist.add_output dst nm (map_net net))
    (Netlist.outputs src);
  (* longest mux-only path in the packed netlist *)
  let chain_length =
    let lv = Array.make (max (Netlist.num_nets dst) 1) 0 in
    let longest = ref 0 in
    let dcells = Netlist.cells dst in
    Array.iter
      (fun ci ->
        let c = dcells.(ci) in
        match c.Cell.kind with
        | Cell.Mux2 | Cell.Mux4 ->
            let m = Array.fold_left (fun acc net -> max acc lv.(net)) 0 c.Cell.ins in
            lv.(c.Cell.out) <- m + 1;
            longest := max !longest (m + 1)
        | _ ->
            lv.(c.Cell.out) <-
              Array.fold_left (fun acc net -> max acc lv.(net)) 0 c.Cell.ins)
      (Netlist.topo_order dst);
    !longest
  in
  (dst, { mux4 = !n_mux4; mux2 = !n_mux2; other = !n_other; chain_length })

let route_fraction nl =
  let comb = ref 0 and routing = ref 0 in
  Array.iter
    (fun c ->
      match c.Cell.kind with
      | Cell.Mux2 | Cell.Mux4 | Cell.Buf ->
          incr comb;
          incr routing
      | Cell.Dff | Cell.Config_latch | Cell.Const _ -> ()
      | Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor
      | Cell.Not | Cell.Lut _ ->
          incr comb)
    (Netlist.cells nl);
  if !comb = 0 then 0.0 else float_of_int !routing /. float_of_int !comb
