(** Cut-based k-LUT technology mapping (the first Yosys call of the
    paper's step 5: LUT-based synthesis of the LGC sub-circuit).

    Combinational logic is covered with [Lut] cells of at most [k]
    inputs using priority-cut enumeration (depth-oriented, area-aware
    tie-break). Sequential cells pass through unchanged. Cells whose
    input count exceeds [k] (e.g. [Mux4] when [k < 6]) are kept as
    mapping boundaries. *)

type stats = {
  luts : int;
  levels : int;  (** LUT network depth *)
  kept_cells : int;  (** non-LUT cells preserved (seq + boundaries) *)
}

val map :
  ?k:int ->
  ?boundary:(Shell_netlist.Cell.t -> bool) ->
  Shell_netlist.Netlist.t ->
  Shell_netlist.Netlist.t * stats
(** [k] defaults to 4 (the paper's CLB LUT width). Cells satisfying
    [boundary] (default: none) are preserved as mapping boundaries in
    addition to the structural ones — the SheLL flow passes the
    chain-packed ROUTE muxes here so LUT covering does not re-absorb
    them. Raises [Invalid_argument] when [k] is not in [2..6]. *)

val lut_count : ?k:int -> Shell_netlist.Netlist.t -> int
(** Just the LUT count of a mapping — the accurate form of the LuTR
    estimate. *)
