(** MUX-chain mapping (the second Yosys call of the paper's step 5:
    ROUTE synthesis onto the FABulous custom MUX-chain cells).

    Cascaded [Mux2] pairs are packed into custom [Mux4] cells — the
    full 4:1 pattern when two sibling muxes share their select, or the
    chain pattern when a mux feeds a data input of another with no
    other reader. Remaining cells pass through. The result is what the
    fabric maps onto its non-cyclical MUX chains rather than onto
    CLBs, which is where SheLL's area win comes from (Table I). *)

type stats = {
  mux4 : int;
  mux2 : int;  (** muxes left unpacked *)
  other : int;  (** non-mux cells passed through *)
  chain_length : int;  (** longest mux-only path, in packed cells *)
}

val map :
  ?should_pack:(Shell_netlist.Cell.t -> bool) ->
  Shell_netlist.Netlist.t ->
  Shell_netlist.Netlist.t * stats
(** [should_pack] (default: every mux) limits packing to selected
    muxes — the SheLL flow packs only ROUTE-origin muxes. *)

val route_fraction : Shell_netlist.Netlist.t -> float
(** Fraction of combinational cells that are routing-like
    (mux/buf) — the flow's check that a sub-circuit is ROUTE-shaped. *)
