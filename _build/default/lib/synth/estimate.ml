module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Truthtab = Shell_util.Truthtab

(* Calibrated against Lut_map on the generator circuits: a 4-LUT
   absorbs roughly three 2-input gates of random logic; wide cells
   (mux4) and xor-heavy logic pack worse. *)
let luts_per_kind = function
  | Cell.Const _ -> 0.0
  | Cell.Buf -> 0.0
  | Cell.Not -> 0.1
  | Cell.And | Cell.Or | Cell.Nand | Cell.Nor -> 0.34
  | Cell.Xor | Cell.Xnor -> 0.5
  | Cell.Mux2 -> 0.6
  | Cell.Mux4 -> 1.8
  | Cell.Dff | Cell.Config_latch -> 0.0
  | Cell.Lut tt -> (
      match Truthtab.arity tt with
      | a when a <= 4 -> 1.0
      | a -> float_of_int (a - 3))

let estimate_cells nl indices =
  List.fold_left
    (fun acc i -> acc +. luts_per_kind (Netlist.cell nl i).Cell.kind)
    0.0 indices

let estimate_origin nl prefix =
  let acc = ref 0.0 in
  Array.iter
    (fun c ->
      if String.starts_with ~prefix c.Cell.origin then
        acc := !acc +. luts_per_kind c.Cell.kind)
    (Netlist.cells nl);
  !acc
