(* Splitmix64: fast, high-quality, trivially seedable. The golden-gamma
   constant and the mixing rounds follow Steele, Lea & Flood (OOPSLA'14). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (raw /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let sample t n arr =
  assert (n <= Array.length arr);
  let pool = Array.copy arr in
  shuffle t pool;
  Array.sub pool 0 n
