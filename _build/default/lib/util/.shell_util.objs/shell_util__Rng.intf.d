lib/util/rng.mli:
