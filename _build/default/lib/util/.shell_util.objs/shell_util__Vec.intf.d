lib/util/vec.mli:
