lib/util/truthtab.mli: Format
