lib/util/truthtab.ml: Array Format Int64
