(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic step of the framework (placement moves, random
    vectors, benchmark generation) draws from an explicit [t] so that
    whole-flow runs are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent clone with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniformly chosen element. Requires a non-empty array. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t n arr] draws [n] distinct elements (n <= length). *)
