(** DIMACS CNF reading/writing, for interoperability and tests. *)

type problem = { nvars : int; clauses : int list list }

val parse : string -> problem
(** Raises [Failure] with a message on malformed input. Comment lines
    and a single [p cnf] header are accepted. *)

val print : problem -> string

val load_into : Solver.t -> problem -> unit
(** Allocate variables and add all clauses. *)

val solve_string : ?max_conflicts:int -> string -> Solver.result
(** Parse and solve in one step. *)
