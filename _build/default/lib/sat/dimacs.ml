type problem = { nvars : int; clauses : int list list }

let parse src =
  let lines = String.split_on_char '\n' src in
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let header_seen = ref false in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        (match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> (
            match int_of_string_opt nv with
            | Some n -> nvars := n
            | None -> failwith "Dimacs.parse: bad header")
        | _ -> failwith "Dimacs.parse: bad header");
        header_seen := true
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> failwith ("Dimacs.parse: bad literal " ^ tok)
               | Some 0 ->
                   clauses := List.rev !current :: !clauses;
                   current := []
               | Some l ->
                   if abs l > !nvars then nvars := abs l;
                   current := l :: !current))
    lines;
  if not !header_seen then failwith "Dimacs.parse: missing p cnf header";
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { nvars = !nvars; clauses = List.rev !clauses }

let print p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" p.nvars (List.length p.clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    p.clauses;
  Buffer.contents buf

let load_into solver p =
  Solver.ensure_vars solver p.nvars;
  List.iter (Solver.add_clause solver) p.clauses

let solve_string ?max_conflicts src =
  let p = parse src in
  let s = Solver.create () in
  load_into s p;
  Solver.solve ?max_conflicts s
