lib/sat/solver.mli:
