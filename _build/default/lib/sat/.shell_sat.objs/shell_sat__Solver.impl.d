lib/sat/solver.ml: Array Hashtbl List Shell_util
