(** ASCII floorplan rendering of a placed fabric (the visual of the
    paper's Fig. 2).

    Each CLB tile prints as its BLE occupancy digit (0-8), ['.'] for a
    completely unused tile; the optional chain strip prints on the
    right, I/O pads around the border. *)

val render : Pnr.result -> string

val print : Format.formatter -> Pnr.result -> unit
