module Fabric = Shell_fabric.Fabric

let render (res : Pnr.result) =
  let fab = res.Pnr.fabric in
  let cols = fab.Fabric.cols and rows = fab.Fabric.rows in
  let occupancy = Array.make_matrix rows cols 0 in
  Hashtbl.iter
    (fun _ (t : Pnr.tile) ->
      if t.Pnr.x >= 0 && t.Pnr.x < cols && t.Pnr.y >= 0 && t.Pnr.y < rows then
        occupancy.(t.Pnr.y).(t.Pnr.x) <- occupancy.(t.Pnr.y).(t.Pnr.x) + 1)
    res.Pnr.placement.Pnr.of_cell;
  let buf = Buffer.create 256 in
  let border () =
    Buffer.add_string buf "  +";
    for _ = 0 to cols - 1 do
      Buffer.add_string buf "--"
    done;
    Buffer.add_string buf "-+\n"
  in
  Buffer.add_string
    buf
    (Printf.sprintf "%s, %d x %d CLB tiles%s\n"
       (Shell_fabric.Style.name fab.Fabric.style)
       cols rows
       (if fab.Fabric.chain_slots > 0 then
          Printf.sprintf ", %d chain slots" fab.Fabric.chain_slots
        else ""));
  border ();
  for y = rows - 1 downto 0 do
    Buffer.add_string buf "  |";
    for x = 0 to cols - 1 do
      let o = occupancy.(y).(x) in
      if o = 0 then Buffer.add_string buf " ."
      else Buffer.add_string buf (Printf.sprintf " %d" (min o 9))
    done;
    Buffer.add_string buf
      (if fab.Fabric.chain_slots > 0 then " | #\n" else " |\n")
  done;
  border ();
  Buffer.add_string buf
    (Printf.sprintf
       "  tiles used %d / %d (%.0f%%), BLE utilization %.0f%%, wirelength %d\n"
       res.Pnr.placement.Pnr.used_tiles (Fabric.clb_tiles fab)
       (100.0 *. res.Pnr.tile_utilization)
       (100.0 *. res.Pnr.utilization)
       res.Pnr.routes.Pnr.wirelength);
  Buffer.contents buf

let print ppf res = Format.pp_print_string ppf (render res)
