lib/pnr/pnr.ml: Array Hashtbl List Result Shell_fabric Shell_netlist Shell_util
