lib/pnr/floorplan.mli: Format Pnr
