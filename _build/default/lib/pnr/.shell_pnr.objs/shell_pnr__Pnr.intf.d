lib/pnr/pnr.mli: Hashtbl Result Shell_fabric Shell_netlist
