lib/pnr/floorplan.ml: Array Buffer Format Hashtbl Pnr Printf Shell_fabric
