(** Lightweight DLA-like accelerator benchmark (Table III: 4 modules,
    wide I/O): a DDR-style ingress ([_DDR_j]), a MAC PE row ([_PE_j]),
    and a pooling/drain unit ([_active_check], [_max_pool_valid],
    [_drain_PE]). *)

val make : unit -> Shell_rtl.Rtl_module.Design.t
val netlist : unit -> Shell_netlist.Netlist.t
