module M = Shell_rtl.Rtl_module
module E = Shell_rtl.Expr

let w = 8
let taps = 48

let coeffs =
  [|
    1; 3; 5; 7; 7; 5; 3; 1; 2; 4; 6; 7; 7; 6; 4; 2; 1; 2; 3; 4; 4; 3; 2; 1;
    1; 2; 3; 4; 4; 3; 2; 1; 2; 4; 6; 7; 7; 6; 4; 2; 1; 3; 5; 7; 7; 5; 3; 1;
  |]

let tap_delay () =
  let m = M.create "tap_delay" in
  M.add_input m "sample" w;
  M.add_input m "shift" 1;
  for t = 0 to taps - 1 do
    M.add_output m (Printf.sprintf "tap%d" t) w;
    M.add_reg m (Printf.sprintf "d%d" t) w
  done;
  for t = 0 to taps - 1 do
    let prev = if t = 0 then E.var "sample" else E.var (Printf.sprintf "d%d" (t - 1)) in
    M.add_seq m
      (Printf.sprintf "delay%d" t)
      [
        ( Printf.sprintf "d%d" t,
          E.(mux (var "shift") prev (var (Printf.sprintf "d%d" t))) );
      ]
  done;
  M.add_comb m "expose"
    (List.init taps (fun t ->
         (Printf.sprintf "tap%d" t, E.var (Printf.sprintf "d%d" t))));
  m

(* constant multiply by shift-add; coefficient fixed per instance via a
   2-bit select (keeps one module definition, Table III style) *)
let coeff_mult () =
  let m = M.create "coeff_mult" in
  M.add_input m "x" w;
  M.add_input m "c" 3;
  M.add_output m "y" w;
  M.add_wire m "x2" w;
  M.add_wire m "x4" w;
  M.add_comb m "shifts"
    [
      ("x2", E.(concat [ slice (var "x") (w - 2) 0; lit ~width:1 0 ]));
      ("x4", E.(concat [ slice (var "x") (w - 3) 0; lit ~width:2 0 ]));
    ];
  M.add_comb m "combine"
    [
      ( "y",
        E.(
          mux (bit (var "c") 2) (var "x4") (lit ~width:w 0)
          +: mux (bit (var "c") 1) (var "x2") (lit ~width:w 0)
          +: mux (bit (var "c") 0) (var "x") (lit ~width:w 0)) );
    ];
  m

(* three-input adder: the paper's ternary_add building block *)
let ternary_add () =
  let m = M.create "ternary_add" in
  M.add_input m "a" w;
  M.add_input m "b" w;
  M.add_input m "c" w;
  M.add_output m "s" w;
  M.add_comb m "_ternary_add" [ ("s", E.(var "a" +: var "b" +: var "c")) ];
  m

let ctrl_valid () =
  let m = M.create "ctrl_valid" in
  M.add_input m "in_valid" 1;
  M.add_input m "enable" 1;
  M.add_output m "out_valid" 1;
  M.add_output m "shift" 1;
  M.add_reg m "v0" 1;
  M.add_reg m "v1" 1;
  M.add_seq m "pipe"
    [ ("v0", E.(var "in_valid" &: var "enable")); ("v1", E.(var "v0")) ];
  (* the paper's /_ctrl_valid TfR *)
  M.add_comb m "_ctrl_valid"
    [
      ("out_valid", E.(var "v1" &: var "enable"));
      ("shift", E.(var "in_valid" &: var "enable"));
    ];
  m

let out_sat () =
  let m = M.create "out_sat" in
  M.add_input m "acc" w;
  M.add_input m "valid" 1;
  M.add_output m "y" w;
  M.add_comb m "saturate"
    [
      ( "y",
        E.(
          mux (var "valid")
            (mux (bit (var "acc") (w - 1))
               (lit ~width:w ((1 lsl (w - 1)) - 1))
               (var "acc"))
            (lit ~width:w 0)) );
    ];
  m

let acc_stage () =
  let m = M.create "acc_stage" in
  M.add_input m "sum_in" w;
  M.add_input m "shift" 1;
  M.add_output m "acc" w;
  M.add_reg m "r" w;
  M.add_seq m "accumulate"
    [ ("r", E.(mux (var "shift") (var "sum_in") (var "r"))) ];
  M.add_comb m "expose" [ ("acc", E.(var "r")) ];
  m

let make () =
  let top = M.create "fir_top" in
  M.add_input top "sample" w;
  M.add_input top "in_valid" 1;
  M.add_input top "enable" 1;
  M.add_output top "y" w;
  M.add_output top "out_valid" 1;
  M.add_wire top "shift" 1;
  M.add_wire top "acc" w;
  M.add_wire top "sum_final" w;
  for t = 0 to taps - 1 do
    M.add_wire top (Printf.sprintf "tap%d" t) w;
    M.add_wire top (Printf.sprintf "prod%d" t) w;
    M.add_wire top (Printf.sprintf "coef%d" t) 3
  done;
  M.add_comb top "coeff_rom"
    (List.init taps (fun t -> (Printf.sprintf "coef%d" t, E.lit ~width:3 coeffs.(t))));
  M.add_instance top ~inst_name:"ctrl" ~module_name:"ctrl_valid"
    ~bindings:
      [
        ("in_valid", "in_valid"); ("enable", "enable");
        ("out_valid", "out_valid"); ("shift", "shift");
      ];
  M.add_instance top ~inst_name:"delays" ~module_name:"tap_delay"
    ~bindings:
      (("sample", "sample") :: ("shift", "shift")
      :: List.init taps (fun t ->
             (Printf.sprintf "tap%d" t, Printf.sprintf "tap%d" t)));
  for t = 0 to taps - 1 do
    M.add_instance top
      ~inst_name:(Printf.sprintf "mult%d" t)
      ~module_name:"coeff_mult"
      ~bindings:
        [
          ("x", Printf.sprintf "tap%d" t);
          ("c", Printf.sprintf "coef%d" t);
          ("y", Printf.sprintf "prod%d" t);
        ]
  done;
  (* ternary adder tree: the paper's _ternary_add_i instances; built
     generically by reducing the products three at a time *)
  let next_tadd = ref 0 in
  let tadd a b c =
    let i = !next_tadd in
    incr next_tadd;
    let out = Printf.sprintf "tsum%d" i in
    M.add_wire top out w;
    M.add_instance top
      ~inst_name:(Printf.sprintf "ternary_add_%d" i)
      ~module_name:"ternary_add"
      ~bindings:[ ("a", a); ("b", b); ("c", c); ("s", out) ];
    out
  in
  let rec reduce = function
    | [] -> "acc"
    | [ x ] -> tadd x "acc" "acc"
    | [ x; y ] -> tadd x y "acc"
    | x :: y :: z :: rest -> reduce (tadd x y z :: rest)
  in
  let sum_root = reduce (List.init taps (fun t -> Printf.sprintf "prod%d" t)) in
  M.add_comb top "final_sum" [ ("sum_final", E.(var sum_root)) ];
  M.add_instance top ~inst_name:"accs" ~module_name:"acc_stage"
    ~bindings:[ ("sum_in", "sum_final"); ("shift", "shift"); ("acc", "acc") ];
  M.add_instance top ~inst_name:"sat" ~module_name:"out_sat"
    ~bindings:[ ("acc", "acc"); ("valid", "out_valid"); ("y", "y") ];
  let d = M.Design.create ~top:"fir_top" in
  List.iter (M.Design.add_module d)
    [
      top; tap_delay (); coeff_mult (); ternary_add (); ctrl_valid ();
      out_sat (); acc_stage ();
    ];
  d

let netlist () = Shell_rtl.Elab.elaborate (make ())
