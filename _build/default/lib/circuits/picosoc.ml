module M = Shell_rtl.Rtl_module
module E = Shell_rtl.Expr

let w = 8  (* data width *)

(* ---- leaf IPs ---------------------------------------------------- *)

let pico_alu () =
  let m = M.create "pico_alu" in
  M.add_input m "op_a" w;
  M.add_input m "op_b" w;
  M.add_input m "funct" 2;
  M.add_output m "result" w;
  M.add_output m "zero" 1;
  M.add_comb m "alu_core"
    [
      ( "result",
        E.(
          mux (bit (var "funct") 0)
            (mux (bit (var "funct") 1) (var "op_a" &: var "op_b")
               (var "op_a" +: var "op_b"))
            (mux (bit (var "funct") 1) (var "op_a" ^: var "op_b")
               (var "op_a" -: var "op_b"))) );
      ("zero", E.(var "result" ==: lit ~width:w 0));
    ];
  m

let pico_decoder () =
  let m = M.create "pico_decoder" in
  M.add_input m "instr" 16;
  M.add_output m "funct" 2;
  M.add_output m "rd" 2;
  M.add_output m "rs1" 2;
  M.add_output m "rs2" 2;
  M.add_output m "is_store" 1;
  M.add_output m "is_load" 1;
  M.add_comb m "decode"
    [
      ("funct", E.(slice (var "instr") 13 12));
      ("rd", E.(slice (var "instr") 11 10));
      ("rs1", E.(slice (var "instr") 9 8));
      ("rs2", E.(slice (var "instr") 7 6));
      ("is_store", E.(slice (var "instr") 15 14 ==: lit ~width:2 2));
      ("is_load", E.(slice (var "instr") 15 14 ==: lit ~width:2 1));
    ];
  m

let pico_regs () =
  let m = M.create "pico_regs" in
  M.add_input m "wr_en" 1;
  M.add_input m "wr_sel" 2;
  M.add_input m "wr_data" w;
  M.add_input m "rd_sel1" 2;
  M.add_input m "rd_sel2" 2;
  M.add_output m "rd_data1" w;
  M.add_output m "rd_data2" w;
  for r = 0 to 3 do
    M.add_reg m (Printf.sprintf "r%d" r) w
  done;
  for r = 0 to 3 do
    M.add_seq m
      (Printf.sprintf "write_r%d" r)
      [
        ( Printf.sprintf "r%d" r,
          E.(
            mux
              (var "wr_en" &: (var "wr_sel" ==: lit ~width:2 r))
              (var "wr_data")
              (var (Printf.sprintf "r%d" r))) );
      ]
  done;
  let read sel =
    E.(
      mux (bit (var sel) 1)
        (mux (bit (var sel) 0) (var "r3") (var "r2"))
        (mux (bit (var sel) 0) (var "r1") (var "r0")))
  in
  (* the register read mux: the paper's /_regs_rdata TfR *)
  M.add_comb m "_regs_rdata"
    [ ("rd_data1", read "rd_sel1"); ("rd_data2", read "rd_sel2") ];
  m

let picorv32 () =
  let m = M.create "picorv32" in
  M.add_input m "instr" 16;
  M.add_input m "mem_rdata" w;
  M.add_output m "mem_addr" w;
  M.add_output m "mem_wdata" w;
  M.add_output m "mem_do_wr" 1;
  M.add_output m "trap" 1;
  M.add_wire m "funct" 2;
  M.add_wire m "rd" 2;
  M.add_wire m "rs1" 2;
  M.add_wire m "rs2" 2;
  M.add_wire m "is_store" 1;
  M.add_wire m "is_load" 1;
  M.add_wire m "alu_res" w;
  M.add_wire m "alu_zero" 1;
  M.add_wire m "rdata1" w;
  M.add_wire m "rdata2" w;
  M.add_wire m "wb_data" w;
  M.add_reg m "pc" w;
  M.add_instance m ~inst_name:"decoder" ~module_name:"pico_decoder"
    ~bindings:
      [
        ("instr", "instr");
        ("funct", "funct");
        ("rd", "rd");
        ("rs1", "rs1");
        ("rs2", "rs2");
        ("is_store", "is_store");
        ("is_load", "is_load");
      ];
  M.add_instance m ~inst_name:"alu" ~module_name:"pico_alu"
    ~bindings:
      [
        ("op_a", "rdata1");
        ("op_b", "rdata2");
        ("funct", "funct");
        ("result", "alu_res");
        ("zero", "alu_zero");
      ];
  M.add_instance m ~inst_name:"regs" ~module_name:"pico_regs"
    ~bindings:
      [
        ("wr_en", "is_load");
        ("wr_sel", "rd");
        ("wr_data", "wb_data");
        ("rd_sel1", "rs1");
        ("rd_sel2", "rs2");
        ("rd_data1", "rdata1");
        ("rd_data2", "rdata2");
      ];
  (* core-side memory write path: the paper's picorv32.mem_wr target *)
  M.add_comb m "mem_wr"
    [
      ("mem_wdata", E.(mux (var "is_store") (var "rdata2") (var "alu_res")));
      ("mem_addr", E.(var "alu_res" +: var "pc"));
      ("mem_do_wr", E.(var "is_store" &: ~:(var "alu_zero")));
    ];
  M.add_comb m "writeback"
    [ ("wb_data", E.(mux (var "is_load") (var "mem_rdata") (var "alu_res"))) ];
  M.add_comb m "trap_check"
    [ ("trap", E.(var "is_store" &: var "is_load")) ];
  M.add_seq m "fetch" [ ("pc", E.(var "pc" +: lit ~width:w 2)) ];
  m

let mem_ctrl () =
  let m = M.create "mem_ctrl" in
  M.add_input m "addr" w;
  M.add_input m "wdata" w;
  M.add_input m "do_wr" 1;
  M.add_input m "sel_dev" 2;
  M.add_output m "wstrb" 4;
  M.add_output m "wdata_out" w;
  M.add_output m "wr_en" 1;
  M.add_reg m "last_wdata" w;
  (* SoC-side memory write block: the paper's /_mem_wr TfR *)
  M.add_comb m "_mem_wr"
    [
      ( "wstrb",
        E.(
          concat
            [
              bit (var "addr") 3 &: var "do_wr";
              bit (var "addr") 2 &: var "do_wr";
              bit (var "addr") 1 &: var "do_wr";
              bit (var "addr") 0 &: var "do_wr";
            ]) );
      ("wdata_out", E.(mux (var "do_wr") (var "wdata") (var "last_wdata")));
    ];
  (* write-enable qualification: the paper's /_mem_wr_en TfR *)
  M.add_comb m "_mem_wr_en"
    [ ("wr_en", E.(var "do_wr" &: ~:(var "sel_dev" ==: lit ~width:2 3))) ];
  M.add_seq m "capture" [ ("last_wdata", E.(var "wdata")) ];
  m

(* Peripherals carry a realistic 32-bit programmable datapath (config
   word, free-running counter, threshold compare) so the SoC has the
   bulk a real PicoSoC has outside the redacted region. *)
let periph_w = 48

let simple_peripheral name extra_blocks =
  let m = M.create name in
  M.add_input m "sel" 1;
  M.add_input m "wdata" w;
  M.add_input m "wr" 1;
  M.add_output m "rdata" w;
  M.add_output m "irq" 1;
  M.add_reg m "state" periph_w;
  M.add_reg m "counter" periph_w;
  M.add_reg m "threshold" periph_w;
  M.add_wire m "wword" periph_w;
  M.add_comb m "widen"
    [
      ( "wword",
        E.concat (List.init (periph_w / w) (fun _ -> E.var "wdata")) );
    ];
  M.add_seq m "update"
    [
      ("state", E.(mux (var "sel" &: var "wr") (var "wword") (var "state")));
      ( "threshold",
        E.(
          mux
            (var "sel" &: ~:(var "wr"))
            (var "state" ^: var "wword")
            (var "threshold")) );
    ];
  (* LFSR-style update keeps the peripheral bulk off the critical path *)
  M.add_seq m "count"
    [
      ( "counter",
        E.(
          concat [ slice (var "counter") (periph_w - 2) 0; bit (var "counter") (periph_w - 1) ]
          ^: (var "state" &: var "threshold")) );
    ];
  M.add_comb m "readout"
    [
      ( "rdata",
        E.(
          mux (var "sel")
            (slice (var "state") (w - 1) 0 ^: slice (var "counter") (w - 1) 0)
            (lit ~width:w 0)) );
    ];
  M.add_comb m "irq_gen"
    [ ("irq", E.(slice (var "threshold") 7 0 <: slice (var "counter") 7 0)) ];
  List.iter (fun (nm, assigns) -> M.add_comb m nm assigns) extra_blocks;
  m

let bus_mux () =
  let m = M.create "bus_mux" in
  M.add_input m "addr" w;
  for d = 0 to 3 do
    M.add_input m (Printf.sprintf "dev_rdata%d" d) w
  done;
  M.add_output m "rdata" w;
  M.add_output m "sel_dev" 2;
  M.add_comb m "route"
    [
      ("sel_dev", E.(slice (var "addr") 7 6));
      ( "rdata",
        E.(
          mux
            (bit (var "addr") 7)
            (mux (bit (var "addr") 6) (var "dev_rdata3") (var "dev_rdata2"))
            (mux (bit (var "addr") 6) (var "dev_rdata1") (var "dev_rdata0"))) );
    ];
  m

let irq_ctrl () =
  let m = M.create "irq_ctrl" in
  M.add_input m "irqs" 4;
  M.add_input m "mask" 4;
  M.add_output m "irq_pending" 1;
  M.add_output m "irq_vec" 2;
  M.add_comb m "prioritize"
    [
      ("irq_pending", E.(Reduce_or (var "irqs" &: var "mask")));
      ( "irq_vec",
        E.(
          mux
            (bit (var "irqs" &: var "mask") 0)
            (lit ~width:2 0)
            (mux
               (bit (var "irqs" &: var "mask") 1)
               (lit ~width:2 1)
               (mux (bit (var "irqs" &: var "mask") 2) (lit ~width:2 2)
                  (lit ~width:2 3)))) );
    ];
  m

(* ---- top ---------------------------------------------------------- *)

let make () =
  let top = M.create "picosoc" in
  M.add_input top "ext_in" w;
  M.add_input top "irq_mask" 4;
  M.add_output top "mem_wstrb" 4;
  M.add_output top "mem_wdata" w;
  M.add_output top "mem_wr_en" 1;
  M.add_output top "gpio_out" w;
  M.add_output top "uart_out" w;
  M.add_output top "trap" 1;
  M.add_output top "irq_pending" 1;
  let wires =
    [
      ("instr", 16); ("core_mem_addr", w); ("core_mem_wdata", w);
      ("core_do_wr", 1); ("bus_rdata", w); ("sel_dev", 2);
      ("uart_rdata", w); ("spi_rdata", w); ("gpio_rdata", w);
      ("timer_rdata", w); ("uart_irq", 1); ("spi_irq", 1); ("gpio_irq", 1);
      ("timer_irq", 1); ("irq_vec", 2); ("pc_probe", w);
    ]
  in
  List.iter (fun (nm, width) -> M.add_wire top nm width) wires;
  M.add_comb top "pc_probe_gen" [ ("pc_probe", E.(var "ext_in")) ];
  (* boot "ROM": an address-dependent combinational pattern *)
  M.add_comb top "rom_fetch"
    [
      ( "instr",
        E.(
          concat
            [
              var "pc_probe" ^: lit ~width:w 0x5A;
              var "pc_probe" +: lit ~width:w 0x33;
            ]) );
    ];
  M.add_instance top ~inst_name:"core" ~module_name:"picorv32"
    ~bindings:
      [
        ("instr", "instr");
        ("mem_rdata", "bus_rdata");
        ("mem_addr", "core_mem_addr");
        ("mem_wdata", "core_mem_wdata");
        ("mem_do_wr", "core_do_wr");
        ("trap", "trap");
      ];
  M.add_instance top ~inst_name:"memctl" ~module_name:"mem_ctrl"
    ~bindings:
      [
        ("addr", "core_mem_addr");
        ("wdata", "core_mem_wdata");
        ("do_wr", "core_do_wr");
        ("sel_dev", "sel_dev");
        ("wstrb", "mem_wstrb");
        ("wdata_out", "mem_wdata");
        ("wr_en", "mem_wr_en");
      ];
  let periph inst nm rdata irq =
    M.add_instance top ~inst_name:inst ~module_name:nm
      ~bindings:
        [
          ("sel", "core_do_wr");
          ("wdata", "core_mem_wdata");
          ("wr", "mem_wr_en");
          ("rdata", rdata);
          ("irq", irq);
        ]
  in
  periph "uart" "uart" "uart_rdata" "uart_irq";
  periph "spi" "spi_flash" "spi_rdata" "spi_irq";
  periph "gpio" "gpio" "gpio_rdata" "gpio_irq";
  periph "timer" "timer" "timer_rdata" "timer_irq";
  (* second peripheral bank: same IP definitions, more SoC bulk *)
  List.iter
    (fun (nm, width) -> M.add_wire top nm width)
    [
      ("uart2_rdata", w); ("spi2_rdata", w); ("gpio2_rdata", w);
      ("timer2_rdata", w); ("uart2_irq", 1); ("spi2_irq", 1);
      ("gpio2_irq", 1); ("timer2_irq", 1); ("bank2_sig", w);
    ];
  periph "uart2" "uart" "uart2_rdata" "uart2_irq";
  periph "spi2" "spi_flash" "spi2_rdata" "spi2_irq";
  periph "gpio2" "gpio" "gpio2_rdata" "gpio2_irq";
  periph "timer2" "timer" "timer2_rdata" "timer2_irq";
  M.add_comb top "bank2_mix"
    [
      ( "bank2_sig",
        E.(
          (var "uart2_rdata" ^: var "spi2_rdata")
          |: (var "gpio2_rdata" &: var "timer2_rdata")) );
    ];
  M.add_instance top ~inst_name:"bus" ~module_name:"bus_mux"
    ~bindings:
      [
        ("addr", "core_mem_addr");
        ("dev_rdata0", "uart_rdata");
        ("dev_rdata1", "spi_rdata");
        ("dev_rdata2", "gpio_rdata");
        ("dev_rdata3", "timer_rdata");
        ("rdata", "bus_rdata");
        ("sel_dev", "sel_dev");
      ];
  M.add_instance top ~inst_name:"irqc" ~module_name:"irq_ctrl"
    ~bindings:
      [
        ("irqs", "irq_vec_concat");
        ("mask", "irq_mask");
        ("irq_pending", "irq_pending");
        ("irq_vec", "irq_vec");
      ];
  M.add_wire top "irq_vec_concat" 4;
  M.add_comb top "irq_concat"
    [
      ( "irq_vec_concat",
        E.(concat [ var "timer_irq"; var "gpio_irq"; var "spi_irq"; var "uart_irq" ]) );
    ];
  M.add_comb top "outputs"
    [
      ("gpio_out", E.(var "gpio_rdata" ^: var "ext_in"));
      ( "uart_out",
        E.(
          var "uart_rdata" |: var "bank2_sig"
          |: concat [ var "irq_vec"; slice (var "ext_in") 5 0 ]) );
    ];
  let d = M.Design.create ~top:"picosoc" in
  List.iter (M.Design.add_module d)
    [
      top;
      picorv32 ();
      pico_alu ();
      pico_decoder ();
      pico_regs ();
      mem_ctrl ();
      simple_peripheral "uart" [];
      simple_peripheral "spi_flash" [];
      simple_peripheral "gpio" [];
      simple_peripheral "timer" [];
      bus_mux ();
      irq_ctrl ();
    ];
  d

let netlist () = Shell_rtl.Elab.elaborate (make ())
