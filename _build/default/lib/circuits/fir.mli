(** FIR filter benchmark (Table III: 7 modules): an 8-tap
    transposed-form filter with shift-add constant multipliers, a
    ternary adder tree (the paper's [_ternary_add_i] TfRs) and a
    validity pipeline ([_ctrl_valid]). *)

val make : unit -> Shell_rtl.Rtl_module.Design.t
val netlist : unit -> Shell_netlist.Netlist.t
