module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Rng = Shell_util.Rng

(* Layered random logic with bounded reconvergence: each layer draws
   operands from the previous few layers, giving mapper-friendly but
   non-degenerate structure (plain random pairs collapse too easily). *)
let netlist ?(seed = 0xde5) ?(gates = 624) () =
  let rng = Rng.create seed in
  let nl = N.create "desX" in
  let n_in = 24 in
  let inputs = Array.init n_in (fun i -> N.add_input nl (Printf.sprintf "i%d" i)) in
  let window = ref (Array.to_list inputs) in
  let recent () = Array.of_list !window in
  let made = ref 0 in
  let layer_size = 48 in
  let layer = ref 0 in
  while !made < gates do
    let prev = recent () in
    let this_layer = min layer_size (gates - !made) in
    let origin = Printf.sprintf "desX:layer%d" !layer in
    incr layer;
    let fresh = ref [] in
    for _ = 1 to this_layer do
      let a = Rng.choice rng prev and b = Rng.choice rng prev in
      let kind =
        match Rng.int rng 6 with
        | 0 -> Cell.And
        | 1 -> Cell.Or
        | 2 -> Cell.Xor
        | 3 -> Cell.Nand
        | 4 -> Cell.Nor
        | _ -> Cell.Xnor
      in
      let out =
        if Rng.int rng 8 = 0 then
          let s = Rng.choice rng prev in
          N.mux2 ~origin nl ~sel:s ~a ~b
        else N.gate ~origin nl kind [| a; b |]
      in
      fresh := out :: !fresh;
      incr made
    done;
    (* keep two layers of history plus a sprinkling of primary inputs *)
    let keep_prev =
      Array.to_list (Rng.sample rng (min 16 (Array.length prev)) prev)
    in
    window := !fresh @ keep_prev
  done;
  List.iteri
    (fun i net -> N.add_output nl (Printf.sprintf "o%d" i) net)
    (match !window with
    | outs ->
        let arr = Array.of_list outs in
        Array.to_list (Array.sub arr 0 (min 20 (Array.length arr))));
  nl
