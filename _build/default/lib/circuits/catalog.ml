type tfr = { label : string; route : string list; lgc : string list }

type entry = {
  name : string;
  description : string;
  netlist : unit -> Shell_netlist.Netlist.t;
  tfr_case1 : tfr;
  tfr_case2 : tfr;
  tfr_case3 : tfr;
  tfr_shell : tfr;
}

let all =
  [
    {
      name = "PicoSoC";
      description = "Size-Optimized RISC-V CPU";
      netlist = Picosoc.netlist;
      tfr_case1 = { label = "/_mem_wr"; route = []; lgc = [ ":_mem_wr" ] };
      tfr_case2 =
        {
          label = "/_mem_wr + /_regs_rdata";
          route = [];
          lgc = [ ":_mem_wr"; ":_regs_rdata" ];
        };
      tfr_case3 =
        {
          label = "/_mem_wr + /_regs_rdata";
          route = [];
          lgc = [ ":_mem_wr"; ":_regs_rdata" ];
        };
      tfr_shell =
        {
          label = "/_mem_wr->picorv32.mem_wr + /_mem_wr_en";
          route = [ "memctl:_mem_wr"; "core:mem_wr" ];
          lgc = [ ":_mem_wr_en" ];
        };
    };
    {
      name = "AES";
      description = "AES Encryption/Decryption";
      netlist = Aes.netlist;
      tfr_case1 =
        { label = "/_addround_last"; route = []; lgc = [ "outs0:" ] };
      tfr_case2 =
        {
          label = "/_addround_last + /_shrow_last";
          route = [];
          lgc = [ "outs0:_addround_last"; "outs0:_shrow_last" ];
        };
      tfr_case3 =
        {
          label = "/_addround_last + /_shrow_last";
          route = [];
          lgc = [ "outs0:_addround_last"; "outs0:_shrow_last" ];
        };
      tfr_shell =
        {
          label = "/_key_sch->top.addround + /_addround_xor";
          route = [ "/ks0:"; "aes_top:addround0" ];
          lgc = [ "ark0:_addround_xor" ];
        };
    };
    {
      name = "FIR";
      description = "Finite Impulse Response Filter";
      netlist = Fir.netlist;
      tfr_case1 =
        { label = "/_ternary_add_i"; route = []; lgc = [ "ternary_add_0:" ] };
      tfr_case2 =
        { label = "/_ternary_add_i"; route = []; lgc = [ "ternary_add_0:" ] };
      tfr_case3 =
        {
          label = "/_ternary_add_i + /_ctrl_valid";
          route = [];
          lgc = [ "ternary_add_0:"; ":_ctrl_valid" ];
        };
      tfr_shell =
        {
          label = "/_ternary_add_i->_acc + /_ctrl_valid";
          route = [ "ternary_add_23:"; "ternary_add_22:" ];
          lgc = [ ":_ctrl_valid" ];
        };
    };
    {
      name = "SPMV";
      description = "Sparse Matrix Vector Multiplication";
      netlist = Spmv.netlist;
      tfr_case1 =
        { label = "/_ind_array_inc"; route = []; lgc = [ ":_ind_array_inc" ] };
      tfr_case2 =
        {
          label = "/_ind_array_inc + /_len_check";
          route = [];
          lgc = [ ":_ind_array_inc"; ":_len_check" ];
        };
      tfr_case3 =
        {
          label = "/_ind_array_inc + /_len_check";
          route = [];
          lgc = [ ":_ind_array_inc"; ":_len_check" ];
        };
      tfr_shell =
        {
          label = "/_mult_j->_sum + /_len_check";
          route = [ ":_mult_to_sum0"; ":_mult_to_sum1" ];
          lgc = [ ":_len_check" ];
        };
    };
    {
      name = "DLA";
      description = "Lightweight DLA-like Accelerator";
      netlist = Dla.netlist;
      tfr_case1 =
        { label = "/_active_check"; route = []; lgc = [ ":_active_check" ] };
      tfr_case2 =
        {
          label = "/_active_check + /_drain_PE";
          route = [];
          lgc = [ ":_active_check"; ":_drain_PE" ];
        };
      tfr_case3 =
        {
          label = "/_active_check + /_drain_PE";
          route = [];
          lgc = [ ":_active_check"; ":_drain_PE" ];
        };
      tfr_shell =
        {
          label = "/_DDR_j->_PE_j + /_max_pool_valid";
          route = [ ":_lane_switch0"; ":_lane_switch1"; ":_lane_switch2" ];
          lgc = [ ":_max_pool_valid" ];
        };
    };
  ]

let find name =
  List.find_opt (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name) all
