module M = Shell_rtl.Rtl_module
module E = Shell_rtl.Expr

let w = 8
let pes = 12

let ddr_if () =
  let m = M.create "ddr_if" in
  M.add_input m "burst" (w * pes);
  M.add_input m "burst_valid" 1;
  for j = 0 to pes - 1 do
    M.add_output m (Printf.sprintf "lane%d" j) w;
    M.add_reg m (Printf.sprintf "buf%d" j) w
  done;
  M.add_output m "ready" 1;
  for j = 0 to pes - 1 do
    (* per-lane ingress: the paper's /_DDR_j TfRs *)
    M.add_seq m
      (Printf.sprintf "_DDR_%d" j)
      [
        ( Printf.sprintf "buf%d" j,
          E.(
            mux (var "burst_valid")
              (slice (var "burst") ((w * (j + 1)) - 1) (w * j))
              (var (Printf.sprintf "buf%d" j))) );
      ]
  done;
  M.add_comb m "expose"
    (("ready", E.(~:(var "burst_valid")))
    :: List.init pes (fun j ->
           (Printf.sprintf "lane%d" j, E.var (Printf.sprintf "buf%d" j))));
  m

let pe_row () =
  let m = M.create "pe_row" in
  M.add_input m "weights" (4 * pes);
  M.add_input m "accumulate" 1;
  for j = 0 to pes - 1 do
    M.add_input m (Printf.sprintf "act_in%d" j) w;
    M.add_output m (Printf.sprintf "psum%d" j) w;
    M.add_reg m (Printf.sprintf "acc%d" j) w
  done;
  for j = 0 to pes - 1 do
    (* a MAC processing element: the paper's /_PE_j TfRs *)
    let weight = E.(slice (var "weights") ((4 * (j + 1)) - 1) (4 * j)) in
    let act = E.var (Printf.sprintf "act_in%d" j) in
    (* multiply the low nibble of the activation by the 4-bit weight *)
    let partial i =
      let shifted =
        E.concat
          ((E.lit ~width:(5 - i) 0 :: [ E.slice act 3 0 ])
          @ (if i = 0 then [] else [ E.lit ~width:i 0 ]))
      in
      E.(mux (bit weight i) (slice shifted (w - 1) 0) (lit ~width:w 0))
    in
    let product = E.(partial 0 +: partial 1 +: (partial 2 +: partial 3)) in
    M.add_seq m
      (Printf.sprintf "_PE_%d" j)
      [
        ( Printf.sprintf "acc%d" j,
          E.(
            mux (var "accumulate")
              (var (Printf.sprintf "acc%d" j) +: product)
              (var (Printf.sprintf "acc%d" j))) );
      ]
  done;
  M.add_comb m "expose"
    (List.init pes (fun j ->
         (Printf.sprintf "psum%d" j, E.var (Printf.sprintf "acc%d" j))));
  m

let pool_unit () =
  let m = M.create "pool_unit" in
  for j = 0 to pes - 1 do
    M.add_input m (Printf.sprintf "psum%d" j) w
  done;
  M.add_input m "drain_req" 1;
  M.add_input m "threshold" w;
  M.add_output m "pooled" w;
  M.add_output m "pool_valid" 1;
  M.add_output m "any_active" 1;
  M.add_wire m "maxv" w;
  (* log-depth max reduction over the PE outputs *)
  let maxe a b = E.(mux (a <: b) b a) in
  let rec reduce = function
    | [] -> E.lit ~width:w 0
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | a :: b :: tl -> maxe a b :: pair tl
          | tl -> tl
        in
        reduce (pair xs)
  in
  M.add_comb m "max_tree"
    [ ("maxv", reduce (List.init pes (fun j -> E.var (Printf.sprintf "psum%d" j)))) ];
  (* activation detection: the paper's /_active_check TfR *)
  M.add_comb m "_active_check"
    [ ("any_active", E.(~:(var "maxv" <: var "threshold"))) ];
  (* pooled-output validity: the paper's /_max_pool_valid TfR *)
  M.add_comb m "_max_pool_valid"
    [ ("pool_valid", E.(var "drain_req" &: var "any_active")) ];
  (* drain path: the paper's /_drain_PE TfR *)
  M.add_comb m "_drain_PE"
    [ ("pooled", E.(mux (var "drain_req") (var "maxv") (lit ~width:w 0))) ];
  m

let make () =
  let top = M.create "dla_top" in
  M.add_input top "burst" (w * pes);
  M.add_input top "burst_valid" 1;
  M.add_input top "weights" (4 * pes);
  M.add_input top "accumulate" 1;
  M.add_input top "drain_req" 1;
  M.add_input top "threshold" w;
  M.add_output top "pooled" w;
  M.add_output top "pool_valid" 1;
  M.add_output top "any_active" 1;
  M.add_output top "ready" 1;
  for j = 0 to pes - 1 do
    M.add_output top (Printf.sprintf "psum_probe%d" j) w;
    M.add_wire top (Printf.sprintf "lane%d" j) w;
    M.add_wire top (Printf.sprintf "psum%d" j) w
  done;
  M.add_instance top ~inst_name:"ddr" ~module_name:"ddr_if"
    ~bindings:
      (("burst", "burst") :: ("burst_valid", "burst_valid") :: ("ready", "ready")
      :: List.init pes (fun j ->
             (Printf.sprintf "lane%d" j, Printf.sprintf "lane%d" j)));
  (* DDR-lane to PE routing switch: the /_DDR_j -> _PE_j connection
     SheLL redacts; a mux-based lane shuffle keyed by the threshold *)
  for j = 0 to pes - 1 do
    M.add_wire top (Printf.sprintf "lane_sw%d" j) w
  done;
  let sw_sel = E.(slice (var "threshold") 1 0) in
  for j = 0 to pes - 1 do
    let pick ofs = E.var (Printf.sprintf "lane%d" ((j + ofs) mod pes)) in
    M.add_comb top
      (Printf.sprintf "_lane_switch%d" j)
      [
        ( Printf.sprintf "lane_sw%d" j,
          E.(
            mux (bit sw_sel 1)
              (mux (bit sw_sel 0) (pick 3) (pick 2))
              (mux (bit sw_sel 0) (pick 1) (pick 0))) );
      ]
  done;
  for j = 0 to pes - 1 do
    M.add_wire top (Printf.sprintf "psumb%d" j) w
  done;
  M.add_instance top ~inst_name:"pes" ~module_name:"pe_row"
    ~bindings:
      (("weights", "weights") :: ("accumulate", "accumulate")
      :: (List.init pes (fun j ->
              (Printf.sprintf "act_in%d" j, Printf.sprintf "lane_sw%d" j))
         @ List.init pes (fun j ->
               (Printf.sprintf "psum%d" j, Printf.sprintf "psumb%d" j))));
  (* second PE row consumes the first row's partial sums (systolic) *)
  M.add_instance top ~inst_name:"pes_b" ~module_name:"pe_row"
    ~bindings:
      (("weights", "weights") :: ("accumulate", "accumulate")
      :: (List.init pes (fun j ->
              (Printf.sprintf "act_in%d" j, Printf.sprintf "psumb%d" j))
         @ List.init pes (fun j ->
               (Printf.sprintf "psum%d" j, Printf.sprintf "psum%d" j))));
  M.add_instance top ~inst_name:"pool" ~module_name:"pool_unit"
    ~bindings:
      (("drain_req", "drain_req") :: ("threshold", "threshold")
      :: ("pooled", "pooled") :: ("pool_valid", "pool_valid")
      :: ("any_active", "any_active")
      :: List.init pes (fun j ->
             (Printf.sprintf "psum%d" j, Printf.sprintf "psum%d" j)));
  M.add_comb top "probes"
    (List.init pes (fun j ->
         (Printf.sprintf "psum_probe%d" j, E.var (Printf.sprintf "psum%d" j))));
  let d = M.Design.create ~top:"dla_top" in
  List.iter (M.Design.add_module d) [ top; ddr_if (); pe_row (); pool_unit () ];
  d

let netlist () = Shell_rtl.Elab.elaborate (make ())
