(** Sparse matrix-vector multiply benchmark (Table III: 16 modules):
    CSR-style index walking ([_ind_array_inc]), bounds checking
    ([_len_check]), per-lane multipliers ([_mult_j]) and an
    accumulating reduction ([_sum]). *)

val make : unit -> Shell_rtl.Rtl_module.Design.t
val netlist : unit -> Shell_netlist.Netlist.t
