(** AES-like benchmark (Table III: 11 modules): a nibble-wise
    mini-AES round pipeline with the named blocks the paper's TfRs
    target ([key_sch], [addround], [_addround_xor], [_addround_last],
    [_shrow_last]). The S-box is a real 16-entry nibble permutation;
    widths are scaled down per DESIGN.md. *)

val sbox_table : int array
(** The 4-bit mini-AES S-box permutation. *)

val make : unit -> Shell_rtl.Rtl_module.Design.t
val netlist : unit -> Shell_netlist.Netlist.t
