module M = Shell_rtl.Rtl_module
module E = Shell_rtl.Expr

(* For each target t: scan requesters in priority order; the first
   valid requester addressing t wins. Output data is the winner's
   payload, gated by a valid flag. Pure mux/priority structure: this is
   the ROUTE archetype of the paper. *)
let make ?(channels = 8) ?(data_width = 4) () =
  let abits =
    let rec go b = if 1 lsl b >= channels then b else go (b + 1) in
    max 1 (go 1)
  in
  let m = M.create "axi_xbar" in
  for c = 0 to channels - 1 do
    M.add_input m (Printf.sprintf "req_data%d" c) data_width;
    M.add_input m (Printf.sprintf "req_addr%d" c) abits;
    M.add_input m (Printf.sprintf "req_valid%d" c) 1
  done;
  for t = 0 to channels - 1 do
    M.add_output m (Printf.sprintf "tgt_data%d" t) data_width;
    M.add_output m (Printf.sprintf "tgt_valid%d" t) 1
  done;
  (* per-requester one-hot address decode, shared by every target (a
     real AXI crossbar decodes once per master) *)
  for c = 0 to channels - 1 do
    M.add_wire m (Printf.sprintf "dec%d" c) channels;
    let onehot =
      E.concat
        (List.init channels (fun t ->
             let t = channels - 1 - t in
             E.(
               var (Printf.sprintf "req_valid%d" c)
               &: (var (Printf.sprintf "req_addr%d" c) ==: lit ~width:abits t))))
    in
    M.add_comb m (Printf.sprintf "_xbar_dec%d" c)
      [ (Printf.sprintf "dec%d" c, onehot) ]
  done;
  for t = 0 to channels - 1 do
    let hit c = E.(bit (var (Printf.sprintf "dec%d" c)) t) in
    (* priority mux over requesters: the ROUTE part *)
    let data =
      List.fold_right
        (fun c acc -> E.mux (hit c) (E.var (Printf.sprintf "req_data%d" c)) acc)
        (List.init channels Fun.id)
        (E.lit ~width:data_width 0)
    in
    let valid =
      match List.init channels hit with
      | [] -> E.bit0
      | h :: tl -> List.fold_left (fun acc x -> E.(acc |: x)) h tl
    in
    M.add_comb m
      (Printf.sprintf "_xbar_route%d" t)
      [ (Printf.sprintf "tgt_data%d" t, data) ];
    M.add_comb m
      (Printf.sprintf "_xbar_arb%d" t)
      [ (Printf.sprintf "tgt_valid%d" t, valid) ]
  done;
  let d = M.Design.create ~top:"axi_xbar" in
  M.Design.add_module d m;
  d

let netlist ?channels ?data_width () =
  Shell_rtl.Elab.elaborate (make ?channels ?data_width ())
