lib/circuits/dla.mli: Shell_netlist Shell_rtl
