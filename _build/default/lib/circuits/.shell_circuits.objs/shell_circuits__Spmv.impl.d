lib/circuits/spmv.ml: List Printf Shell_rtl
