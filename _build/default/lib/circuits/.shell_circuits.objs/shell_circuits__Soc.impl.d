lib/circuits/soc.ml: Axi_xbar List Printf Shell_rtl
