lib/circuits/axi_xbar.ml: Fun List Printf Shell_rtl
