lib/circuits/fir.mli: Shell_netlist Shell_rtl
