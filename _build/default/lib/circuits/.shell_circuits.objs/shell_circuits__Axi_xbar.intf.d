lib/circuits/axi_xbar.mli: Shell_netlist Shell_rtl
