lib/circuits/picosoc.ml: List Printf Shell_rtl
