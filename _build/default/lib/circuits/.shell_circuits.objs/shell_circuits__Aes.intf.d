lib/circuits/aes.mli: Shell_netlist Shell_rtl
