lib/circuits/desx.ml: Array List Printf Shell_netlist Shell_util
