lib/circuits/picosoc.mli: Shell_netlist Shell_rtl
