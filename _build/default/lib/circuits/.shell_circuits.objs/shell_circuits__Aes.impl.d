lib/circuits/aes.ml: Array List Printf Shell_rtl
