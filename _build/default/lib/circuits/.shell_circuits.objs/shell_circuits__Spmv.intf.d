lib/circuits/spmv.mli: Shell_netlist Shell_rtl
