lib/circuits/soc.mli: Shell_netlist Shell_rtl
