lib/circuits/catalog.mli: Shell_netlist
