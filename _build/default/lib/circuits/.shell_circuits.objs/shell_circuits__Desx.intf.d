lib/circuits/desx.mli: Shell_netlist
