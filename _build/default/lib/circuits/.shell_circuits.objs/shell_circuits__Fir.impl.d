lib/circuits/fir.ml: Array List Printf Shell_rtl
