lib/circuits/catalog.ml: Aes Dla Fir List Picosoc Shell_netlist Spmv String
