lib/circuits/dla.ml: List Printf Shell_rtl
