(** PicoSoC-like benchmark: a size-optimized RISC-V-flavoured SoC
    (Table III: 12 modules, 8–64 input pins, 8–96 output pins).

    Structural stand-in for the real PicoSoC (see DESIGN.md,
    substitutions): same module decomposition and the named blocks the
    paper's TfRs target ([_mem_wr], [mem_wr], [_mem_wr_en],
    [_regs_rdata]), at a gate count that keeps the whole evaluation
    laptop-fast. *)

val make : unit -> Shell_rtl.Rtl_module.Design.t
val netlist : unit -> Shell_netlist.Netlist.t
