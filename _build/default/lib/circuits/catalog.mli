(** Benchmark registry: the Table III circuits plus the sub-circuit
    targets for redaction (TfR) each evaluation case uses.

    A {!tfr} names sub-circuits by origin substring (instance paths and
    [@always]-block names as produced by [Shell_rtl.Elab]); [route]
    entries are interconnect-flavoured blocks mapped to MUX chains by
    SheLL, [lgc] entries are logic slices mapped to LUTs. *)

type tfr = {
  label : string;  (** as printed in the paper's TfR column *)
  route : string list;
  lgc : string list;
}

type entry = {
  name : string;
  description : string;
  netlist : unit -> Shell_netlist.Netlist.t;
  tfr_case1 : tfr;  (** no-strategy redaction [10], [11] *)
  tfr_case2 : tfr;  (** module/cluster filtering redaction [12] *)
  tfr_case3 : tfr;  (** no-strategy via FABulous *)
  tfr_shell : tfr;  (** SheLL: ROUTE then LGC *)
}

val all : entry list
(** PicoSoC, AES, FIR, SPMV, DLA — in Table III order. *)

val find : string -> entry option
