module M = Shell_rtl.Rtl_module
module E = Shell_rtl.Expr

let state_w = 16  (* four 4-bit nibbles *)

(* the mini-AES (Phan) S-box: a 4-bit permutation *)
let sbox_table = [| 14; 4; 13; 1; 2; 15; 11; 8; 3; 10; 6; 12; 5; 9; 0; 7 |]

let nibble_table name table =
  let m = M.create name in
  M.add_input m "nib_in" 4;
  M.add_output m "nib_out" 4;
  let rec build lo len =
    if len = 1 then E.lit ~width:4 table.(lo)
    else
      let half = len / 2 in
      let bit_idx =
        let rec log2 v acc = if v <= 1 then acc else log2 (v / 2) (acc + 1) in
        log2 len 0 - 1
      in
      E.mux
        (E.bit (E.var "nib_in") bit_idx)
        (build (lo + half) half)
        (build lo half)
  in
  M.add_comb m "lookup" [ ("nib_out", build 0 16) ];
  m

let sub_bytes () =
  let m = M.create "sub_bytes" in
  M.add_input m "state_in" state_w;
  M.add_output m "state_out" state_w;
  for n = 0 to 3 do
    M.add_wire m (Printf.sprintf "nin%d" n) 4;
    M.add_wire m (Printf.sprintf "nout%d" n) 4;
    M.add_comb m
      (Printf.sprintf "split%d" n)
      [ (Printf.sprintf "nin%d" n, E.(slice (var "state_in") ((4 * n) + 3) (4 * n))) ];
    M.add_instance m
      ~inst_name:(Printf.sprintf "sbox%d" n)
      ~module_name:"sbox"
      ~bindings:
        [ ("nib_in", Printf.sprintf "nin%d" n); ("nib_out", Printf.sprintf "nout%d" n) ]
  done;
  M.add_comb m "merge"
    [
      ( "state_out",
        E.(concat [ var "nout3"; var "nout2"; var "nout1"; var "nout0" ]) );
    ];
  m

let shift_rows () =
  let m = M.create "shift_rows" in
  M.add_input m "state_in" state_w;
  M.add_output m "state_out" state_w;
  (* rotate the odd nibbles: the 2x2 mini-AES row shift *)
  M.add_comb m "permute"
    [
      ( "state_out",
        E.(
          concat
            [
              slice (var "state_in") 7 4;
              slice (var "state_in") 11 8;
              slice (var "state_in") 15 12;
              slice (var "state_in") 3 0;
            ]) );
    ];
  m

let mix_columns () =
  let m = M.create "mix_columns" in
  M.add_input m "state_in" state_w;
  M.add_output m "state_out" state_w;
  (* GF(2^4)-flavoured mixing: xor of rotated nibbles with a doubling *)
  let nib i = E.(slice (var "state_in") ((4 * i) + 3) (4 * i)) in
  let dbl e =
    (* multiply by x modulo x^4 + x + 1: (b3b2b1b0) -> (b2 b1 b0^b3 b3) *)
    E.(concat [ slice e 2 1; bit e 0 ^: bit e 3; bit e 3 ])
  in
  M.add_comb m "mix"
    [
      ( "state_out",
        E.(
          concat
            [
              dbl (nib 3) ^: nib 2;
              nib 3 ^: dbl (nib 2);
              dbl (nib 1) ^: nib 0;
              nib 1 ^: dbl (nib 0);
            ]) );
    ];
  m

let key_sch () =
  let m = M.create "key_sch" in
  M.add_input m "key_in" state_w;
  M.add_input m "round" 2;
  M.add_output m "round_key" state_w;
  M.add_wire m "rot" state_w;
  M.add_wire m "sub0" 4;
  M.add_instance m ~inst_name:"ksbox" ~module_name:"sbox"
    ~bindings:[ ("nib_in", "rot_lo"); ("nib_out", "sub0") ];
  M.add_wire m "rot_lo" 4;
  M.add_comb m "rotate"
    [
      ("rot", E.(concat [ slice (var "key_in") 3 0; slice (var "key_in") 15 4 ]));
      ("rot_lo", E.(slice (var "key_in") 7 4));
    ];
  M.add_comb m "expand"
    [
      ( "round_key",
        E.(
          var "rot"
          ^: concat
               [ lit ~width:4 0; lit ~width:4 0; var "sub0";
                 concat [ lit ~width:2 0; var "round" ] ]) );
    ];
  m

let add_round () =
  let m = M.create "addround" in
  M.add_input m "state_in" state_w;
  M.add_input m "round_key" state_w;
  M.add_output m "state_out" state_w;
  (* the paper's /_addround_xor TfR *)
  M.add_comb m "_addround_xor"
    [ ("state_out", E.(var "state_in" ^: var "round_key")) ];
  m

let round_ctrl () =
  let m = M.create "round_ctrl" in
  M.add_input m "start" 1;
  M.add_output m "round" 2;
  M.add_output m "is_last" 1;
  M.add_reg m "cnt" 2;
  M.add_seq m "advance"
    [ ("cnt", E.(mux (var "start") (lit ~width:2 0) (var "cnt" +: lit ~width:2 1))) ];
  M.add_comb m "status"
    [
      ("round", E.(var "cnt"));
      ("is_last", E.(var "cnt" ==: lit ~width:2 3));
    ];
  m

let out_stage () =
  let m = M.create "out_stage" in
  M.add_input m "mixed" state_w;
  M.add_input m "shifted" state_w;
  M.add_input m "last_key" state_w;
  M.add_input m "is_last" 1;
  M.add_output m "ct" state_w;
  (* the last round skips MixColumns: the /_shrow_last TfR *)
  M.add_wire m "picked" state_w;
  M.add_comb m "_shrow_last"
    [ ("picked", E.(mux (var "is_last") (var "shifted") (var "mixed"))) ];
  (* and applies the final AddRoundKey: the /_addround_last TfR *)
  M.add_comb m "_addround_last" [ ("ct", E.(var "picked" ^: var "last_key")) ];
  m

let state_regs () =
  let m = M.create "state_regs" in
  M.add_input m "next_state" state_w;
  M.add_input m "load" 1;
  M.add_input m "pt" state_w;
  M.add_output m "state" state_w;
  M.add_reg m "st" state_w;
  M.add_seq m "hold"
    [ ("st", E.(mux (var "load") (var "pt") (var "next_state"))) ];
  M.add_comb m "expose" [ ("state", E.(var "st")) ];
  m

let in_guard () =
  let m = M.create "in_guard" in
  M.add_input m "pt_raw" state_w;
  M.add_input m "start" 1;
  M.add_output m "pt_gated" state_w;
  M.add_comb m "gate"
    [ ("pt_gated", E.(mux (var "start") (var "pt_raw") (lit ~width:state_w 0))) ];
  m

let lanes = 12

(* Twelve 16-bit lanes share the control FSM and whiten a common key, so
   the SoC-scale bulk sits outside the lane-0 blocks the TfRs name. *)
let make () =
  let top = M.create "aes_top" in
  M.add_input top "pt" (state_w * lanes);
  M.add_input top "key" state_w;
  M.add_input top "start" 1;
  M.add_output top "ct" (state_w * lanes);
  M.add_output top "busy" 1;
  M.add_wire top "round" 2;
  M.add_wire top "is_last" 1;
  M.add_instance top ~inst_name:"ctrl" ~module_name:"round_ctrl"
    ~bindings:[ ("start", "start"); ("round", "round"); ("is_last", "is_last") ];
  for l = 0 to lanes - 1 do
    let w nm = Printf.sprintf "%s%d" nm l in
    List.iter
      (fun (nm, width) -> M.add_wire top (w nm) width)
      [
        ("lane_key", state_w); ("round_key", state_w); ("pt_lane", state_w);
        ("pt_gated", state_w); ("state", state_w); ("subbed", state_w);
        ("shifted", state_w); ("mixed", state_w); ("added", state_w);
        ("round_state", state_w); ("ct_w", state_w);
      ];
    M.add_comb top (w "key_whiten")
      [
        ( w "lane_key",
          E.(var "key" ^: lit ~width:state_w (0x1111 * l)) );
        (w "pt_lane",
         E.(slice (var "pt") ((state_w * (l + 1)) - 1) (state_w * l)));
      ];
    M.add_instance top ~inst_name:(w "ks") ~module_name:"key_sch"
      ~bindings:
        [ ("key_in", w "lane_key"); ("round", "round"); ("round_key", w "round_key") ];
    M.add_instance top ~inst_name:(w "guard") ~module_name:"in_guard"
      ~bindings:
        [ ("pt_raw", w "pt_lane"); ("start", "start"); ("pt_gated", w "pt_gated") ];
    M.add_instance top ~inst_name:(w "regs") ~module_name:"state_regs"
      ~bindings:
        [
          ("next_state", w "added"); ("load", "start"); ("pt", w "pt_gated");
          ("state", w "state");
        ];
    M.add_instance top ~inst_name:(w "sb") ~module_name:"sub_bytes"
      ~bindings:[ ("state_in", w "state"); ("state_out", w "subbed") ];
    M.add_instance top ~inst_name:(w "sr") ~module_name:"shift_rows"
      ~bindings:[ ("state_in", w "subbed"); ("state_out", w "shifted") ];
    M.add_instance top ~inst_name:(w "mc") ~module_name:"mix_columns"
      ~bindings:[ ("state_in", w "shifted"); ("state_out", w "mixed") ];
    (* top.addround: the round-key application the SheLL TfR routes to *)
    M.add_comb top (w "addround")
      [ (w "round_state", E.(mux (var "is_last") (var (w "shifted")) (var (w "mixed")))) ];
    M.add_instance top ~inst_name:(w "ark") ~module_name:"addround"
      ~bindings:
        [
          ("state_in", w "round_state"); ("round_key", w "round_key");
          ("state_out", w "added");
        ];
    M.add_instance top ~inst_name:(w "outs") ~module_name:"out_stage"
      ~bindings:
        [
          ("mixed", w "mixed"); ("shifted", w "shifted");
          ("last_key", w "round_key"); ("is_last", "is_last");
          ("ct", w "ct_w");
        ]
  done;
  M.add_comb top "drive_out"
    [
      ( "ct",
        E.concat
          (List.init lanes (fun l ->
               E.var (Printf.sprintf "ct_w%d" (lanes - 1 - l)))) );
      ("busy", E.(~:(var "is_last")));
    ];
  let d = M.Design.create ~top:"aes_top" in
  List.iter (M.Design.add_module d)
    [
      top;
      nibble_table "sbox" sbox_table;
      sub_bytes ();
      shift_rows ();
      mix_columns ();
      key_sch ();
      add_round ();
      round_ctrl ();
      out_stage ();
      state_regs ();
      in_guard ();
    ];
  d

let netlist () = Shell_rtl.Elab.elaborate (make ())
