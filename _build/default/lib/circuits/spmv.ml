module M = Shell_rtl.Rtl_module
module E = Shell_rtl.Expr

let w = 8
let lanes = 8

(* CSR index pointer: the paper's /_ind_array_inc TfR lives here *)
let ind_array () =
  let m = M.create "ind_array" in
  M.add_input m "advance" 1;
  M.add_input m "reset_ptr" 1;
  M.add_output m "index" w;
  M.add_reg m "ptr" w;
  M.add_seq m "hold"
    [
      ( "ptr",
        E.(
          mux (var "reset_ptr") (lit ~width:w 0)
            (mux (var "advance") (var "ptr" +: lit ~width:w 1) (var "ptr"))) );
    ];
  M.add_comb m "_ind_array_inc" [ ("index", E.(var "ptr" +: lit ~width:w 1)) ];
  m

(* row-length bound: the paper's /_len_check TfR *)
let len_checker () =
  let m = M.create "len_checker" in
  M.add_input m "index" w;
  M.add_input m "row_len" w;
  M.add_output m "in_range" 1;
  M.add_output m "last_elem" 1;
  M.add_comb m "_len_check"
    [
      ("in_range", E.(var "index" <: var "row_len"));
      ("last_elem", E.(var "index" +: lit ~width:w 1 ==: var "row_len"));
    ];
  m

(* 8x8 array multiplier lane: the paper's /_mult_j TfRs. The 4-bit
   stream operands are internally widened (value and complemented
   value interleaved) so each lane carries a realistic multiplier. *)
let mult_w = 8

let multiplier () =
  let m = M.create "multiplier" in
  M.add_input m "a" 4;
  M.add_input m "b" 4;
  M.add_output m "p" w;
  M.add_wire m "aw" mult_w;
  M.add_wire m "bw" mult_w;
  M.add_comb m "widen"
    [
      ("aw", E.(concat [ var "a"; var "a" ]));
      ("bw", E.(concat [ ~:(var "b"); var "b" ]));
    ];
  let pw = 2 * mult_w in
  let partial i =
    let shifted =
      E.concat
        ((E.lit ~width:(pw - mult_w - i) 0 :: [ E.var "aw" ])
        @ (if i = 0 then [] else [ E.lit ~width:i 0 ]))
    in
    E.(mux (bit (var "bw") i) shifted (lit ~width:pw 0))
  in
  M.add_wire m "pp" pw;
  let sum =
    List.fold_left
      (fun acc i -> E.(acc +: partial i))
      (partial 0)
      (List.init (mult_w - 1) (fun i -> i + 1))
  in
  M.add_comb m "_mult" [ ("pp", sum); ("p", E.(slice (var "pp") (w - 1) 0)) ];
  m

(* accumulating reduction: the paper's /_sum TfR *)
let accumulator () =
  let m = M.create "accumulator" in
  for j = 0 to lanes - 1 do
    M.add_input m (Printf.sprintf "p%d" j) w
  done;
  M.add_input m "accumulate" 1;
  M.add_output m "total" w;
  M.add_reg m "acc" w;
  M.add_wire m "lane_sum" w;
  let sum =
    List.fold_left
      (fun acc j -> E.(acc +: var (Printf.sprintf "p%d" j)))
      (E.var "p0")
      (List.init (lanes - 1) (fun j -> j + 1))
  in
  M.add_comb m "_sum" [ ("lane_sum", sum) ];
  M.add_seq m "hold"
    [ ("acc", E.(mux (var "accumulate") (var "acc" +: var "lane_sum") (var "acc"))) ];
  M.add_comb m "expose" [ ("total", E.(var "acc")) ];
  m

(* three-deep enable-gated FIFO with occupancy tracking: the queueing
   bulk a real SPMV engine keeps around its lanes *)
let small_reg_module name in_w =
  let m = M.create name in
  M.add_input m "d" in_w;
  M.add_input m "en" 1;
  M.add_output m "q" in_w;
  M.add_output m "occupancy" 2;
  M.add_reg m "r0" in_w;
  M.add_reg m "r1" in_w;
  M.add_reg m "r2" in_w;
  M.add_reg m "occ" 2;
  M.add_seq m "shift"
    [
      ("r0", E.(mux (var "en") (var "d") (var "r0")));
      ("r1", E.(mux (var "en") (var "r0") (var "r1")));
      ("r2", E.(mux (var "en") (var "r1") (var "r2")));
    ];
  M.add_seq m "track"
    [
      ( "occ",
        E.(
          mux
            (var "en" &: ~:(var "occ" ==: lit ~width:2 3))
            (var "occ" +: lit ~width:2 1)
            (var "occ")) );
    ];
  M.add_comb m "expose"
    [
      ("q", E.(mux (bit (var "occ") 1) (var "r2") (var "r0")));
      ("occupancy", E.(var "occ"));
    ];
  m

let scheduler () =
  let m = M.create "scheduler" in
  M.add_input m "start" 1;
  M.add_input m "in_range" 1;
  M.add_input m "last_elem" 1;
  M.add_output m "advance" 1;
  M.add_output m "accumulate" 1;
  M.add_output m "drain" 1;
  M.add_reg m "running" 1;
  M.add_seq m "fsm"
    [ ("running", E.(mux (var "last_elem") bit0 (var "running" |: var "start"))) ];
  M.add_comb m "issue"
    [
      ("advance", E.(var "running" &: var "in_range"));
      ("accumulate", E.(var "running" &: var "in_range"));
      ("drain", E.(var "last_elem" &: var "running"));
    ];
  m

let status_unit () =
  let m = M.create "status_unit" in
  M.add_input m "drain" 1;
  M.add_input m "total" w;
  M.add_output m "done_flag" 1;
  M.add_output m "overflow" 1;
  M.add_comb m "flags"
    [
      ("done_flag", E.(var "drain"));
      ("overflow", E.(bit (var "total") (w - 1) &: var "drain"));
    ];
  m

let make () =
  let top = M.create "spmv_top" in
  M.add_input top "start" 1;
  M.add_input top "row_len" w;
  for j = 0 to lanes - 1 do
    M.add_input top (Printf.sprintf "val_in%d" j) 4;
    M.add_input top (Printf.sprintf "vec_in%d" j) 4
  done;
  M.add_output top "result" w;
  M.add_output top "done_flag" 1;
  M.add_output top "overflow" 1;
  M.add_output top "index_probe" w;
  List.iter
    (fun (nm, width) -> M.add_wire top nm width)
    [
      ("index", w); ("in_range", 1); ("last_elem", 1); ("advance", 1);
      ("accumulate", 1); ("drain", 1); ("total", w);
    ];
  for j = 0 to lanes - 1 do
    M.add_wire top (Printf.sprintf "val_q%d" j) 4;
    M.add_wire top (Printf.sprintf "vec_q%d" j) 4;
    M.add_wire top (Printf.sprintf "prod%d" j) w
  done;
  M.add_instance top ~inst_name:"ind" ~module_name:"ind_array"
    ~bindings:
      [ ("advance", "advance"); ("reset_ptr", "start"); ("index", "index") ];
  M.add_instance top ~inst_name:"len" ~module_name:"len_checker"
    ~bindings:
      [
        ("index", "index"); ("row_len", "row_len");
        ("in_range", "in_range"); ("last_elem", "last_elem");
      ];
  M.add_instance top ~inst_name:"sched" ~module_name:"scheduler"
    ~bindings:
      [
        ("start", "start"); ("in_range", "in_range"); ("last_elem", "last_elem");
        ("advance", "advance"); ("accumulate", "accumulate"); ("drain", "drain");
      ];
  for j = 0 to lanes - 1 do
    M.add_wire top (Printf.sprintf "val_occ%d" j) 2;
    M.add_wire top (Printf.sprintf "vec_occ%d" j) 2;
    M.add_instance top
      ~inst_name:(Printf.sprintf "val_fifo%d" j)
      ~module_name:"val_fifo"
      ~bindings:
        [
          ("d", Printf.sprintf "val_in%d" j); ("en", "advance");
          ("q", Printf.sprintf "val_q%d" j);
          ("occupancy", Printf.sprintf "val_occ%d" j);
        ];
    M.add_instance top
      ~inst_name:(Printf.sprintf "vec_fifo%d" j)
      ~module_name:"vec_fifo"
      ~bindings:
        [
          ("d", Printf.sprintf "vec_in%d" j); ("en", "advance");
          ("q", Printf.sprintf "vec_q%d" j);
          ("occupancy", Printf.sprintf "vec_occ%d" j);
        ];
    M.add_instance top
      ~inst_name:(Printf.sprintf "mult%d" j)
      ~module_name:"multiplier"
      ~bindings:
        [
          ("a", Printf.sprintf "val_q%d" j); ("b", Printf.sprintf "vec_q%d" j);
          ("p", Printf.sprintf "prod%d" j);
        ]
  done;
  (* product-to-accumulator lane rotation: the ROUTE the SheLL TfR
     redacts (the /_mult_j -> _sum connection) *)
  for j = 0 to lanes - 1 do
    M.add_wire top (Printf.sprintf "prod_r%d" j) w
  done;
  let rot_sel = E.(slice (var "index") 1 0) in
  for j = 0 to lanes - 1 do
    let pick ofs = E.var (Printf.sprintf "prod%d" ((j + ofs) mod lanes)) in
    M.add_comb top
      (Printf.sprintf "_mult_to_sum%d" j)
      [
        ( Printf.sprintf "prod_r%d" j,
          E.(
            mux (bit rot_sel 1)
              (mux (bit rot_sel 0) (pick 3) (pick 2))
              (mux (bit rot_sel 0) (pick 1) (pick 0))) );
      ]
  done;
  M.add_instance top ~inst_name:"sum" ~module_name:"accumulator"
    ~bindings:
      (("accumulate", "accumulate") :: ("total", "total")
      :: List.init lanes (fun j ->
             (Printf.sprintf "p%d" j, Printf.sprintf "prod_r%d" j)));
  M.add_instance top ~inst_name:"status" ~module_name:"status_unit"
    ~bindings:
      [ ("drain", "drain"); ("total", "total"); ("done_flag", "done_flag");
        ("overflow", "overflow") ];
  (* staging buffers around the datapath (all instantiated, so the
     engine has its real queueing bulk) *)
  let buf inst mdl d en q occ width =
    M.add_wire top q width;
    M.add_wire top occ 2;
    M.add_instance top ~inst_name:inst ~module_name:mdl
      ~bindings:[ ("d", d); ("en", en); ("q", q); ("occupancy", occ) ]
  in
  buf "ptrb" "ptr_buf" "index" "advance" "ptr_q" "ptr_occ" w;
  buf "rowb" "row_buf" "row_len" "start" "row_q" "row_occ" w;
  buf "colb" "col_buf" "ptr_q" "accumulate" "col_q" "col_occ" w;
  buf "outb" "out_buf" "total" "drain" "out_q" "out_occ" w;
  buf "reqb" "req_buf" "val_q0" "advance" "req_q" "req_occ" 4;
  buf "respb" "resp_buf" "vec_q1" "advance" "resp_q" "resp_occ" 4;
  buf "tagb" "tag_buf" "req_q" "accumulate" "tag_q" "tag_occ" 4;
  M.add_output top "buf_probe" w;
  M.add_comb top "buf_status"
    [
      ( "buf_probe",
        E.(
          (var "row_q" ^: var "col_q")
          |: (var "out_q" &: concat [ var "resp_q"; var "tag_q" ])) );
    ];
  M.add_wire top "occ_mix" 2;
  M.add_comb top "occ_status"
    [
      ( "occ_mix",
        E.(
          (var "val_occ0" |: var "vec_occ1")
          &: (var "val_occ2" ^: var "vec_occ3")
          |: (var "ptr_occ" &: var "out_occ")
          |: (var "req_occ" ^: var "tag_occ")) );
    ];
  M.add_output top "occ_probe" 2;
  M.add_comb top "probe"
    [
      ("result", E.(var "total"));
      ("index_probe", E.(var "index"));
      ("occ_probe", E.(var "occ_mix"));
    ];
  let d = M.Design.create ~top:"spmv_top" in
  List.iter (M.Design.add_module d)
    [
      top; ind_array (); len_checker (); multiplier (); accumulator ();
      scheduler (); status_unit ();
      small_reg_module "val_fifo" 4;
      small_reg_module "vec_fifo" 4;
      small_reg_module "ptr_buf" w;
      small_reg_module "row_buf" w;
      small_reg_module "col_buf" w;
      small_reg_module "out_buf" w;
      small_reg_module "req_buf" 4;
      small_reg_module "resp_buf" 4;
      small_reg_module "tag_buf" 4;
    ];
  d

let netlist () = Shell_rtl.Elab.elaborate (make ())
