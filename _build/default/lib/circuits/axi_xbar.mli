(** Memory-addressed AXI-style crossbar (the paper's Table I workload
    and the Fig. 3 SoC interconnect).

    [channels] request channels, each carrying a [data_width]-bit
    payload, a valid bit, and an address selecting one of [channels]
    targets; each target output muxes the payload of the requester
    addressing it, with a fixed-priority arbiter producing the valid
    flags — "a simple memory-addressed MUX-based arbitration between
    multiple AXI channels (ROUTE)". *)

val make :
  ?channels:int -> ?data_width:int -> unit -> Shell_rtl.Rtl_module.Design.t
(** Defaults: 8 channels, 8-bit data. *)

val netlist :
  ?channels:int -> ?data_width:int -> unit -> Shell_netlist.Netlist.t
(** Elaborated and cleaned. *)
