module M = Shell_rtl.Rtl_module
module E = Shell_rtl.Expr

let w = 8
let cores = 4

(* a small core: one-register datapath with a distinct flavour per id *)
let core id =
  let m = M.create (Printf.sprintf "core%d" id) in
  M.add_input m "rx_data" w;
  M.add_input m "rx_valid" 1;
  M.add_output m "tx_data" w;
  M.add_output m "tx_addr" 2;
  M.add_output m "tx_valid" 1;
  M.add_reg m "acc" w;
  M.add_reg m "hist" 32;
  M.add_reg m "csum" 32;
  let step =
    match id with
    | 1 -> E.(var "acc" +: var "rx_data")
    | 2 -> E.(var "acc" ^: var "rx_data")
    | 3 -> E.(var "acc" +: (var "rx_data" ^: lit ~width:w 0x3C))
    | _ -> E.(var "acc" -: var "rx_data")
  in
  M.add_seq m "work" [ ("acc", E.(mux (var "rx_valid") step (var "acc"))) ];
  (* per-core payload state: history shifter and a running checksum *)
  M.add_seq m "telemetry"
    [
      ( "hist",
        E.(concat [ slice (var "hist") 23 0; var "acc" ]) );
      ( "csum",
        E.(
          var "csum"
          +: concat [ slice (var "hist") 15 0; var "acc"; var "rx_data" ]) );
    ];
  M.add_comb m "emit"
    [
      ("tx_data", E.(var "acc" ^: slice (var "csum") 7 0));
      ("tx_addr", E.(slice (var "acc") 1 0));
      ("tx_valid", E.(Reduce_or (var "acc") |: Reduce_xor (var "hist")));
    ];
  m

let make () =
  let top = M.create "soc_top" in
  M.add_input top "host_data" w;
  M.add_input top "host_valid" 1;
  for c = 1 to cores do
    M.add_output top (Printf.sprintf "core%d_out" c) w
  done;
  M.add_output top "fabric_valid" 1;
  for c = 1 to cores do
    List.iter
      (fun (nm, width) -> M.add_wire top (Printf.sprintf "%s%d" nm c) width)
      [
        ("tx_data", w); ("tx_addr", 2); ("tx_valid", 1);
        ("rx_data", w); ("rx_valid", 1); ("wrapped_tx", w);
      ]
  done;
  (* Xbar: 4 requesters (the cores), 4 targets (back to the cores) *)
  let xbar_bindings =
    List.concat
      (List.init cores (fun i ->
           let c = i + 1 in
           [
             (Printf.sprintf "req_data%d" i, Printf.sprintf "wrapped_tx%d" c);
             (Printf.sprintf "req_addr%d" i, Printf.sprintf "tx_addr%d" c);
             (Printf.sprintf "req_valid%d" i, Printf.sprintf "tx_valid%d" c);
             (Printf.sprintf "tgt_data%d" i, Printf.sprintf "rx_data%d" c);
             (Printf.sprintf "tgt_valid%d" i, Printf.sprintf "rx_valid%d" c);
           ]))
  in
  M.add_instance top ~inst_name:"xbar" ~module_name:"axi_xbar"
    ~bindings:xbar_bindings;
  for c = 1 to cores do
    M.add_instance top
      ~inst_name:(Printf.sprintf "core%d" c)
      ~module_name:(Printf.sprintf "core%d" c)
      ~bindings:
        [
          ("rx_data", Printf.sprintf "rx_data%d" c);
          ("rx_valid", Printf.sprintf "rx_valid%d" c);
          ("tx_data", Printf.sprintf "tx_data%d" c);
          ("tx_addr", Printf.sprintf "tx_addr%d" c);
          ("tx_valid", Printf.sprintf "tx_valid%d" c);
        ];
    (* bus-facing wrapper slice; cores 2 and 4 get the LGC twist the
       SheLL flow entangles with the Xbar (Fig. 3(c)) *)
    let body =
      if c = 2 || c = 4 then
        E.(
          var (Printf.sprintf "tx_data%d" c)
          ^: mux (var "host_valid") (var "host_data") (lit ~width:w 0x55))
      else E.(var (Printf.sprintf "tx_data%d" c))
    in
    M.add_comb top
      (Printf.sprintf "wrap_core%d" c)
      [ (Printf.sprintf "wrapped_tx%d" c, body) ]
  done;
  M.add_comb top "host_out"
    (List.init cores (fun i ->
         let c = i + 1 in
         (Printf.sprintf "core%d_out" c, E.(var (Printf.sprintf "rx_data%d" c)))));
  M.add_comb top "fabric_status"
    [
      ( "fabric_valid",
        E.(
          var "rx_valid1" |: var "rx_valid2" |: var "rx_valid3"
          |: var "rx_valid4") );
    ];
  let d = M.Design.create ~top:"soc_top" in
  M.Design.add_module d top;
  (match M.Design.find (Axi_xbar.make ~channels:4 ~data_width:w ()) "axi_xbar" with
  | Some xbar -> M.Design.add_module d xbar
  | None -> assert false);
  for c = 1 to cores do
    M.Design.add_module d (core c)
  done;
  d

let netlist () = Shell_rtl.Elab.elaborate (make ())
