(** [desX]: the "arbitrary design" of the paper's Fig. 2, used to show
    the square-fabric utilization waste of OpenFPGA mapping. A layered
    pseudo-random (seeded, reproducible) logic block sized so its 4-LUT
    mapping lands just above a 6x6 OpenFPGA fabric — forcing the 7x7
    square with ~11 unused tiles. *)

val netlist : ?seed:int -> ?gates:int -> unit -> Shell_netlist.Netlist.t
(** Defaults (seed 0xde5, 624 gates) are sized so the 4-LUT mapping
    needs a 7x7 OpenFPGA fabric at under 77% utilization — the Fig. 2
    data point. *)
