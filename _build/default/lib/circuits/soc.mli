(** The Fig. 3 system platform: four IP cores around an AXI-style
    crossbar. SheLL's SoC-level redaction targets the Xbar (ROUTE)
    plus the bus-facing wrapper slices of core2 and core4 (LGC) — the
    wrappers are the [wrap_core2]/[wrap_core4] blocks here, directly
    adjacent to the Xbar pins as the paper requires. *)

val make : unit -> Shell_rtl.Rtl_module.Design.t
val netlist : unit -> Shell_netlist.Netlist.t
