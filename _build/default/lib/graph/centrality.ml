let rescale arr =
  let m = Array.fold_left Float.max 0.0 arr in
  if m > 0.0 then Array.map (fun x -> x /. m) arr else arr

let in_degree g =
  rescale (Array.init (Digraph.n g) (fun v -> float_of_int (Digraph.in_degree g v)))

let out_degree g =
  rescale (Array.init (Digraph.n g) (fun v -> float_of_int (Digraph.out_degree g v)))

(* Harmonic closeness against the I/O boundary: the average of
   1/(1+d_from_sources) and 1/(1+d_to_sinks). Unreachable distance
   contributes zero, so deeply buried nodes score low, as intended. *)
let closeness g ~sources ~sinks =
  let n = Digraph.n g in
  let from_src = Digraph.bfs_from g sources in
  let to_snk = Digraph.bfs_from g ~reverse:true sinks in
  let inv d = if d = max_int then 0.0 else 1.0 /. (1.0 +. float_of_int d) in
  rescale (Array.init n (fun v -> (inv from_src.(v) +. inv to_snk.(v)) /. 2.0))

(* Brandes (2001), restricted: shortest-path counting from each source,
   dependency accumulation seeded only at sink nodes, so the score
   counts occurrences on source->sink geodesics. *)
let betweenness g ~sources ~sinks =
  let n = Digraph.n g in
  let bc = Array.make n 0.0 in
  let is_sink = Array.make n false in
  List.iter (fun v -> is_sink.(v) <- true) sinks;
  let sigma = Array.make n 0.0 in
  let dist = Array.make n (-1) in
  let delta = Array.make n 0.0 in
  let preds_on_sp = Array.make n [] in
  List.iter
    (fun s ->
      Array.fill sigma 0 n 0.0;
      Array.fill dist 0 n (-1);
      Array.fill delta 0 n 0.0;
      Array.fill preds_on_sp 0 n [];
      sigma.(s) <- 1.0;
      dist.(s) <- 0;
      let order = ref [] in
      let queue = Queue.create () in
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        order := u :: !order;
        Array.iter
          (fun v ->
            if dist.(v) = -1 then begin
              dist.(v) <- dist.(u) + 1;
              Queue.add v queue
            end;
            if dist.(v) = dist.(u) + 1 then begin
              sigma.(v) <- sigma.(v) +. sigma.(u);
              preds_on_sp.(v) <- u :: preds_on_sp.(v)
            end)
          (Digraph.succs g u)
      done;
      (* accumulate in reverse BFS order *)
      List.iter
        (fun w ->
          let seed = if is_sink.(w) && w <> s then 1.0 else 0.0 in
          let d = seed +. delta.(w) in
          List.iter
            (fun v ->
              if sigma.(w) > 0.0 then
                delta.(v) <- delta.(v) +. (sigma.(v) /. sigma.(w)) *. d)
            preds_on_sp.(w);
          if w <> s then bc.(w) <- bc.(w) +. delta.(w))
        !order)
    sources;
  rescale bc

let eigenvector ?(iters = 50) ?(weight = fun _ -> 1.0) g =
  let n = Digraph.n g in
  if n = 0 then [||]
  else begin
    let x = Array.make n (1.0 /. float_of_int n) in
    let nxt = Array.make n 0.0 in
    (* damped (lazy) iteration: plain power iteration oscillates on
       bipartite graphs such as stars *)
    for _ = 1 to iters do
      Array.fill nxt 0 n 0.0;
      for u = 0 to n - 1 do
        let contrib = x.(u) *. weight u in
        Array.iter (fun v -> nxt.(v) <- nxt.(v) +. contrib) (Digraph.succs g u);
        Array.iter (fun v -> nxt.(v) <- nxt.(v) +. contrib) (Digraph.preds g u)
      done;
      for v = 0 to n - 1 do
        nxt.(v) <- (0.5 *. nxt.(v)) +. (0.5 *. x.(v))
      done;
      let norm = sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 nxt) in
      let norm = if norm > 0.0 then norm else 1.0 in
      for v = 0 to n - 1 do
        x.(v) <- nxt.(v) /. norm
      done
    done;
    rescale x
  end
