type t = {
  n : int;
  succs : int array array;
  preds : int array array;
  num_edges : int;
}

let make ~n ~edges =
  let seen = Hashtbl.create (List.length edges) in
  let succs = Array.make n [] and preds = Array.make n [] in
  let count = ref 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Digraph.make";
      if not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.add seen (u, v) ();
        succs.(u) <- v :: succs.(u);
        preds.(v) <- u :: preds.(v);
        incr count
      end)
    edges;
  {
    n;
    succs = Array.map (fun l -> Array.of_list (List.rev l)) succs;
    preds = Array.map (fun l -> Array.of_list (List.rev l)) preds;
    num_edges = !count;
  }

let n t = t.n
let num_edges t = t.num_edges
let succs t u = t.succs.(u)
let preds t u = t.preds.(u)
let out_degree t u = Array.length t.succs.(u)
let in_degree t u = Array.length t.preds.(u)
let has_edge t u v = Array.exists (Int.equal v) t.succs.(u)

let bfs_from t ?(reverse = false) sources =
  let next = if reverse then t.preds else t.succs in
  let dist = Array.make t.n max_int in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      next.(u)
  done;
  dist

let reachable t ?reverse sources =
  Array.map (fun d -> d <> max_int) (bfs_from t ?reverse sources)

let coverage t seeds =
  if t.n = 0 then 0.0
  else begin
    let fwd = reachable t seeds and bwd = reachable t ~reverse:true seeds in
    let covered = ref 0 in
    for v = 0 to t.n - 1 do
      if fwd.(v) || bwd.(v) then incr covered
    done;
    float_of_int !covered /. float_of_int t.n
  end

let topo_order t =
  let indeg = Array.init t.n (fun v -> Array.length t.preds.(v)) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make t.n 0 in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!k) <- u;
    incr k;
    Array.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      t.succs.(u)
  done;
  if !k = t.n then Some order else None

(* Iterative Tarjan (explicit stack) to stay safe on deep circuits. *)
let sccs t =
  let index = Array.make t.n (-1) in
  let lowlink = Array.make t.n 0 in
  let on_stack = Array.make t.n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let visit root =
    (* call stack of (node, next-successor position) *)
    let call = ref [ (root, ref 0) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !call <> [] do
      match !call with
      | [] -> ()
      | (u, pos) :: rest ->
          if !pos < Array.length t.succs.(u) then begin
            let v = t.succs.(u).(!pos) in
            incr pos;
            if index.(v) = -1 then begin
              index.(v) <- !next_index;
              lowlink.(v) <- !next_index;
              incr next_index;
              stack := v :: !stack;
              on_stack.(v) <- true;
              call := (v, ref 0) :: !call
            end
            else if on_stack.(v) then
              lowlink.(u) <- min lowlink.(u) index.(v)
          end
          else begin
            call := rest;
            (match rest with
            | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(u)
            | [] -> ());
            if lowlink.(u) = index.(u) then begin
              let rec pop acc =
                match !stack with
                | [] -> acc
                | v :: tl ->
                    stack := tl;
                    on_stack.(v) <- false;
                    if v = u then v :: acc else pop (v :: acc)
              in
              components := pop [] :: !components
            end
          end
    done
  in
  for v = 0 to t.n - 1 do
    if index.(v) = -1 then visit v
  done;
  List.rev !components

let is_cyclic t =
  List.exists (function [ v ] -> has_edge t v v | _ :: _ :: _ -> true | [] -> false) (sccs t)

let transpose t =
  { n = t.n; succs = t.preds; preds = t.succs; num_edges = t.num_edges }
