(** Directed graphs over dense integer nodes. *)

type t

val make : n:int -> edges:(int * int) list -> t
(** Duplicate edges are kept once; self-loops are allowed. *)

val n : t -> int
val num_edges : t -> int
val succs : t -> int -> int array
val preds : t -> int -> int array
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val has_edge : t -> int -> int -> bool

val bfs_from : t -> ?reverse:bool -> int list -> int array
(** Multi-source BFS distances; unreachable nodes get [max_int].
    [reverse] follows edges backwards. *)

val reachable : t -> ?reverse:bool -> int list -> bool array

val coverage : t -> int list -> float
(** Fraction of all nodes reachable from the given set, following edges
    in both directions from each seed (the paper's "indirect connection"
    node coverage for selected nodes). *)

val topo_order : t -> int array option
(** [None] when cyclic. *)

val sccs : t -> int list list
(** Tarjan's strongly connected components, in reverse topological
    order of the condensation. *)

val is_cyclic : t -> bool
(** True when some SCC has more than one node or a self-loop exists. *)

val transpose : t -> t
