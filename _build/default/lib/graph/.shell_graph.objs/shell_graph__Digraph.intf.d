lib/graph/digraph.mli:
