lib/graph/digraph.ml: Array Hashtbl Int List Queue
