lib/graph/centrality.mli: Digraph
