lib/graph/centrality.ml: Array Digraph Float List Queue
