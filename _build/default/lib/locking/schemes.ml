module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Rng = Shell_util.Rng

(* Nets eligible for locking: driven by combinational cells (not
   consts), so the schemes never touch ports or state directly. *)
let lockable_nets nl =
  Array.to_list (Netlist.cells nl)
  |> List.filter_map (fun c ->
         match c.Cell.kind with
         | Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor
         | Cell.Not | Cell.Mux2 | Cell.Mux4 | Cell.Lut _ ->
             Some c.Cell.out
         | Cell.Buf | Cell.Const _ | Cell.Dff | Cell.Config_latch -> None)
  |> Array.of_list

let xor_keys ?(seed = 1) ~bits nl =
  let rng = Rng.create seed in
  let cand = lockable_nets nl in
  let n = min bits (Array.length cand) in
  let nets = Rng.sample rng n cand in
  let key = Array.init n (fun _ -> Rng.bool rng) in
  let locked =
    Insertion.rewire_readers nl ~nets ~build:(fun out nets ->
        Array.to_list
          (Array.mapi
             (fun i net ->
               let k = Netlist.add_key out (Printf.sprintf "kx%d" i) in
               let repl =
                 if key.(i) then Netlist.xnor_ ~origin:"lock" out net k
                 else Netlist.xor_ ~origin:"lock" out net k
               in
               (net, repl))
             nets))
  in
  { Locked.locked; key; scheme = "xor" }

(* Gate-to-LUT replacement shared by the two LUT schemes: the gate's
   readers move onto a key-programmable LUT computing the same
   function; the gate itself remains (it becomes the "golden" cone
   absorbed by synthesis in a real flow, and keeps oracle behaviour
   identical). *)
let lutify nl nets_with_tt prefix =
  let keys = ref [] in
  let nets = Array.of_list (List.map fst nets_with_tt) in
  let tts = Array.of_list (List.map snd nets_with_tt) in
  let locked =
    Insertion.rewire_readers nl ~nets ~build:(fun out nets ->
        Array.to_list
          (Array.mapi
             (fun i net ->
               let gate_ins, truth = tts.(i) in
               let repl, kbits =
                 Insertion.key_lut out ~origin:"lock"
                   ~prefix:(Printf.sprintf "%s%d" prefix i)
                   ~ins:gate_ins ~truth
               in
               keys := kbits :: !keys;
               (net, repl))
             nets))
  in
  (locked, Array.concat (List.rev !keys))

(* Truth table (as bool rows) of a 2-input gate, plus its input nets. *)
let gate_semantics nl ci =
  let c = Netlist.cell nl ci in
  match c.Cell.kind with
  | Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor ->
      let rows =
        Array.init 4 (fun r ->
            Cell.eval c.Cell.kind [| r land 1 <> 0; r land 2 <> 0 |])
      in
      Some (c.Cell.out, (c.Cell.ins, rows))
  | Cell.Not ->
      Some (c.Cell.out, (c.Cell.ins, [| true; false |]))
  | Cell.Buf | Cell.Mux2 | Cell.Mux4 | Cell.Lut _ | Cell.Const _ | Cell.Dff
  | Cell.Config_latch ->
      None

let random_lut ?(seed = 2) ~gates nl =
  let rng = Rng.create seed in
  let cands =
    Array.of_list
      (List.filter_map
         (fun ci -> gate_semantics nl ci)
         (List.init (Netlist.num_cells nl) Fun.id))
  in
  let n = min gates (Array.length cands) in
  let chosen = Array.to_list (Rng.sample rng n cands) in
  let locked, key = lutify nl chosen "kr" in
  { Locked.locked; key; scheme = "random-lut" }

let heuristic_lut ?(seed = 3) ~gates nl =
  ignore seed;
  (* observability proxy: distance from each cell to a primary output;
     prefer the most distant (least observable) gates, and never two
     adjacent gates (no back-to-back LUTs, cf. Fig. 1(b)). *)
  let cells = Netlist.cells nl in
  let n = Array.length cells in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  Array.iter
    (fun net ->
      match Netlist.driver nl net with
      | Some ci when dist.(ci) = max_int ->
          dist.(ci) <- 0;
          Queue.add ci queue
      | Some _ | None -> ())
    (Netlist.output_nets nl);
  while not (Queue.is_empty queue) do
    let ci = Queue.pop queue in
    Array.iter
      (fun net ->
        match Netlist.driver nl net with
        | Some cj when dist.(cj) > dist.(ci) + 1 ->
            dist.(cj) <- dist.(ci) + 1;
            Queue.add cj queue
        | Some _ | None -> ())
      cells.(ci).Cell.ins
  done;
  let ranked =
    List.init n Fun.id
    |> List.filter_map (fun ci ->
           match gate_semantics nl ci with
           | Some sem when dist.(ci) < max_int -> Some (ci, sem)
           | Some _ | None -> None)
    |> List.sort (fun (a, _) (b, _) -> compare dist.(b) dist.(a))
  in
  let blocked = Hashtbl.create 16 in
  let block ci =
    Hashtbl.replace blocked ci ();
    Array.iter
      (fun net ->
        match Netlist.driver nl net with
        | Some cj -> Hashtbl.replace blocked cj ()
        | None -> ())
      cells.(ci).Cell.ins;
    List.iter
      (fun cj -> Hashtbl.replace blocked cj ())
      (Netlist.fanout nl cells.(ci).Cell.out)
  in
  let rec pick acc k = function
    | [] -> List.rev acc
    | _ when k = 0 -> List.rev acc
    | (ci, sem) :: tl ->
        if Hashtbl.mem blocked ci then pick acc k tl
        else begin
          block ci;
          pick (sem :: acc) (k - 1) tl
        end
  in
  let chosen = pick [] gates ranked in
  let locked, key = lutify nl chosen "kh" in
  { Locked.locked; key; scheme = "lut-lock" }

(* A window of [width] lockable nets from one combinational level — a
   proper cut (same-level nets cannot depend on each other), and a
   *localized* one, which is exactly what makes scheme (c) vulnerable
   to structural link prediction. *)
let local_window nl rng width =
  let order = Netlist.topo_order nl in
  let cells = Netlist.cells nl in
  let level = Array.make (max (Netlist.num_nets nl) 1) 0 in
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      if not (Cell.is_sequential c.Cell.kind) then
        level.(c.Cell.out) <-
          1 + Array.fold_left (fun m n -> max m level.(n)) 0 c.Cell.ins)
    order;
  let buckets = Hashtbl.create 16 in
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      match c.Cell.kind with
      | Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor
      | Cell.Not | Cell.Mux2 | Cell.Mux4 | Cell.Lut _ ->
          let lv = level.(c.Cell.out) in
          Hashtbl.replace buckets lv
            (c.Cell.out
            :: (try Hashtbl.find buckets lv with Not_found -> []))
      | Cell.Buf | Cell.Const _ | Cell.Dff | Cell.Config_latch -> ())
    order;
  let eligible =
    Hashtbl.fold
      (fun _ nets acc ->
        if List.length nets >= width then Array.of_list nets :: acc else acc)
      buckets []
  in
  match eligible with
  | [] -> None
  | levels ->
      let bucket = List.nth levels (Rng.int rng (List.length levels)) in
      let start = Rng.int rng (Array.length bucket - width + 1) in
      Some (Array.sub bucket start width)

let round_down_pow2 w =
  let rec go p = if 2 * p <= w then go (2 * p) else p in
  go 1

let mux_routing ?(seed = 4) ~width nl =
  let rng = Rng.create seed in
  let width = round_down_pow2 width in
  match local_window nl rng width with
  | None -> { Locked.locked = Netlist.copy nl; key = [||]; scheme = "full-lock" }
  | Some nets ->
      let key = ref [||] in
      let locked =
        Insertion.rewire_readers nl ~nets ~build:(fun out nets ->
            let outs, k =
              Insertion.omega_network out ~origin:"lock" ~prefix:"km" nets
            in
            key := k;
            Array.to_list (Array.map2 (fun net repl -> (net, repl)) nets outs))
      in
      { Locked.locked; key = !key; scheme = "full-lock" }

let mux_lut ?(seed = 5) ~width nl =
  let rng = Rng.create seed in
  let width = round_down_pow2 width in
  (* first lutify the drivers of a window, then permute their outputs *)
  match local_window nl rng width with
  | None -> { Locked.locked = Netlist.copy nl; key = [||]; scheme = "interlock" }
  | Some nets ->
      let sems =
        Array.to_list nets
        |> List.filter_map (fun net ->
               match Netlist.driver nl net with
               | Some ci -> gate_semantics nl ci
               | None -> None)
      in
      let lut_locked, lut_key = lutify nl sems "kl" in
      let route = mux_routing ~seed:(seed + 1) ~width lut_locked in
      {
        Locked.locked = route.Locked.locked;
        key = Array.append lut_key route.Locked.key;
        scheme = "interlock";
      }
