(** Shared machinery for the locking schemes: reader rewiring,
    key-programmable LUTs, and key-controlled switch networks. *)

val rewire_readers :
  Shell_netlist.Netlist.t ->
  build:(Shell_netlist.Netlist.t -> int array -> (int * int) list) ->
  nets:int array ->
  Shell_netlist.Netlist.t
(** [rewire_readers nl ~build ~nets] copies [nl]; [build] receives the
    fresh netlist and the (copied) nets to lock and returns
    [(old_net, replacement_net)] pairs; every *reader* of [old_net]
    (cell input or primary output) is switched to the replacement. The
    replacement logic itself keeps reading the original net. *)

val key_lut :
  Shell_netlist.Netlist.t ->
  origin:string ->
  prefix:string ->
  ins:int array ->
  truth:bool array ->
  int * bool array
(** A LUT whose 2^|ins| table bits are fresh key inputs: builds the
    mux tree, returns (output net, correct key bits = [truth]). *)

val switch_2x2 :
  Shell_netlist.Netlist.t ->
  origin:string ->
  name:string ->
  int ->
  int ->
  int * int * bool
(** Key-controlled crossing switch: returns (out_a, out_b, straight
    key bit = false). With the key low the switch is straight, high it
    crosses. *)

val omega_network :
  Shell_netlist.Netlist.t ->
  origin:string ->
  prefix:string ->
  int array ->
  int array * bool array
(** Key-controlled multistage (omega) switching network over a
    power-of-two number of wires; identity permutation under the
    all-false key. Returns (output nets, correct key). *)
