module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell

(* Copy [nl]; let [build] create replacement logic for the chosen nets
   in the copy; rewire every reader of each original net onto its
   replacement. Net ids are preserved for everything [nl] owns (the
   copy allocates the same ids in the same order), so [build] can refer
   to the passed nets directly. *)
let rewire_readers nl ~build ~nets =
  let out = Netlist.create (Netlist.name nl) in
  let mapping = Array.make (max (Netlist.num_nets nl) 1) (-1) in
  List.iter
    (fun (nm, net) -> mapping.(net) <- Netlist.add_input out nm)
    (Netlist.inputs nl);
  List.iter
    (fun (nm, net) -> mapping.(net) <- Netlist.add_key out nm)
    (Netlist.keys nl);
  for n = 0 to Netlist.num_nets nl - 1 do
    if mapping.(n) = -1 then mapping.(n) <- Netlist.new_net out
  done;
  let pairs = build out (Array.map (fun n -> mapping.(n)) nets) in
  let subst = Hashtbl.create 8 in
  List.iter (fun (old_net, repl) -> Hashtbl.replace subst old_net repl) pairs;
  let locked_readers net =
    match Hashtbl.find_opt subst net with Some r -> r | None -> net
  in
  Array.iter
    (fun c ->
      Netlist.add_cell out
        (Cell.make ~origin:c.Cell.origin c.Cell.kind
           (Array.map (fun n -> locked_readers mapping.(n)) c.Cell.ins)
           mapping.(c.Cell.out)))
    (Netlist.cells nl);
  List.iter
    (fun (nm, net) -> Netlist.add_output out nm (locked_readers mapping.(net)))
    (Netlist.outputs nl);
  out

let key_lut nl ~origin ~prefix ~ins ~truth =
  let k = Array.length ins in
  let rows = 1 lsl k in
  if Array.length truth <> rows then invalid_arg "Insertion.key_lut";
  let leaves =
    Array.init rows (fun r ->
        Netlist.add_key nl (Printf.sprintf "%s_t%d" prefix r))
  in
  let rec build lo len input_idx =
    if len = 1 then leaves.(lo)
    else begin
      let half = len / 2 in
      let a = build lo half (input_idx - 1) in
      let b = build (lo + half) half (input_idx - 1) in
      Netlist.mux2 ~origin nl ~sel:ins.(input_idx) ~a ~b
    end
  in
  (build 0 rows (k - 1), truth)

let switch_2x2 nl ~origin ~name a b =
  let key = Netlist.add_key nl name in
  let out_a = Netlist.mux2 ~origin nl ~sel:key ~a ~b in
  let out_b = Netlist.mux2 ~origin nl ~sel:key ~a:b ~b:a in
  (out_a, out_b, false)

let omega_network nl ~origin ~prefix wires =
  let w = Array.length wires in
  let stages =
    let rec log2 v acc = if v <= 1 then acc else log2 (v / 2) (acc + 1) in
    log2 w 0
  in
  if w <> 1 lsl stages then invalid_arg "Insertion.omega_network: width not 2^m";
  let current = Array.copy wires in
  let key = ref [] in
  for stage = 0 to stages - 1 do
    let stride = 1 lsl stage in
    (* pair wires whose indices differ in bit [stage] *)
    for base = 0 to w - 1 do
      if base land stride = 0 && base lor stride < w then begin
        let i = base and j = base lor stride in
        let oa, ob, straight =
          switch_2x2 nl ~origin
            ~name:(Printf.sprintf "%s_s%d_%d" prefix stage base)
            current.(i) current.(j)
        in
        current.(i) <- oa;
        current.(j) <- ob;
        key := straight :: !key
      end
    done
  done;
  (current, Array.of_list (List.rev !key))
