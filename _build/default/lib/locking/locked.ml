module Netlist = Shell_netlist.Netlist
module Equiv = Shell_netlist.Equiv
module Specialize = Shell_netlist.Specialize

type t = { locked : Netlist.t; key : bool array; scheme : string }

let key_bits t = Array.length t.key

let apply_key t key = Specialize.bind_keys t.locked key

let verify ?vectors ~original t =
  let bound = apply_key t t.key in
  match Equiv.check ?vectors original bound with
  | Equiv.Equivalent -> true
  | Equiv.Counterexample _ -> false
