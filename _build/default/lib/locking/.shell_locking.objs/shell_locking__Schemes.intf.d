lib/locking/schemes.mli: Locked Shell_netlist
