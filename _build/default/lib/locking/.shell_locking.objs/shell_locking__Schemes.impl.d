lib/locking/schemes.ml: Array Fun Hashtbl Insertion List Locked Printf Queue Shell_netlist Shell_util
