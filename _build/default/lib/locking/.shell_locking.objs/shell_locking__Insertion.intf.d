lib/locking/insertion.mli: Shell_netlist
