lib/locking/insertion.ml: Array Hashtbl List Printf Shell_netlist
