lib/locking/locked.ml: Array Shell_netlist
