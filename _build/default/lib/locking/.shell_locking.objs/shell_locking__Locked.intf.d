lib/locking/locked.mli: Shell_netlist
