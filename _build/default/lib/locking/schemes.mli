(** The reconfigurability-based locking schemes of the paper's Fig. 1.

    (a) {!random_lut}: traditional random gate-to-LUT replacement [17]
    — broken by the SAT attack.
    (b) {!heuristic_lut}: LUT-Lock-style heuristic insertion [18] —
    logic-level and topological selection rules.
    (c) {!mux_routing}: localized MUX-based routing locking
    (Full-Lock-flavoured) [3] — a key-controlled switch network over a
    window of topologically-close wires; its locality is what the
    ML-based link-prediction attack exploits.
    (d) {!mux_lut}: InterLock-flavoured MUX+LUT twisting [4, 5] —
    replaced gates become key-LUTs and their outputs pass through a
    key-controlled switch network.

    (e), eFPGA redaction, lives in [shell_core] (it needs the fabric
    and the selection flow). Plus {!xor_keys}, classic key-gate
    insertion, as a test baseline. *)

val xor_keys :
  ?seed:int -> bits:int -> Shell_netlist.Netlist.t -> Locked.t

val random_lut :
  ?seed:int -> gates:int -> Shell_netlist.Netlist.t -> Locked.t
(** Replace [gates] randomly-chosen 2-input gates by key-programmable
    LUTs (4 key bits each). *)

val heuristic_lut :
  ?seed:int -> gates:int -> Shell_netlist.Netlist.t -> Locked.t
(** LUT-Lock-style: prefer gates far from primary outputs (low
    observability), skip gates adjacent to an already-locked gate (no
    back-to-back LUTs). *)

val mux_routing :
  ?seed:int -> width:int -> Shell_netlist.Netlist.t -> Locked.t
(** Key-controlled omega network over [width] (power of two) wires
    taken from one topological window. *)

val mux_lut :
  ?seed:int -> width:int -> Shell_netlist.Netlist.t -> Locked.t
(** {!mux_routing} composed with key-LUT replacement of the gates
    driving the locked wires. *)
