(** A locked design: the netlist (with key ports) plus its correct key.

    Every locking scheme in this library — and the eFPGA redaction flow
    in [shell_core] — produces this shape, which is what the attacks in
    [shell_attacks] consume. *)

type t = {
  locked : Shell_netlist.Netlist.t;
  key : bool array;  (** correct key, in {!Shell_netlist.Netlist.keys} order *)
  scheme : string;  (** e.g. ["rll"], ["lut-lock"], ["full-lock"] *)
}

val key_bits : t -> int

val verify :
  ?vectors:int -> original:Shell_netlist.Netlist.t -> t -> bool
(** The locked circuit under the correct key behaves like the original
    (exhaustive for small input counts, sampled otherwise). Handles
    cyclic locked netlists by binding the key first. *)

val apply_key : t -> bool array -> Shell_netlist.Netlist.t
(** Specialize the locked netlist under an arbitrary key guess. *)
