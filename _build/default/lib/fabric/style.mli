(** Fabric generator styles.

    The three configurations the paper compares (Table I):
    - [Openfpga]: square LUT-only tiling, rich (cyclical) switch boxes,
      DFF-based configuration chain;
    - [Fabulous_std]: std-cell optimized tiles, latch-based
      configuration, leaner routing;
    - [Fabulous_muxchain]: additionally provides non-cyclical MUX-chain
      tiles built from the custom [Mux4] cell, onto which ROUTE
      sub-circuits map directly. *)

type t = Openfpga | Fabulous_std | Fabulous_muxchain

type config_storage = Dff_chain | Latch_array

type params = {
  clb_luts : int;  (** BLEs per CLB tile *)
  lut_k : int;
  route_flex : int;  (** candidate sources per LUT-input route mux *)
  chain_flex : int;  (** candidate sources per chain-mux input *)
  square : bool;  (** fabric constrained to a square grid *)
  cyclic_routing : bool;
      (** decoy routing candidates may form combinational cycles —
          the pre-processing target of the cyclic-reduction attack *)
  config_storage : config_storage;
  control_ffs_base : int;  (** configuration controller flops *)
  channel_width : int;  (** routing tracks per channel *)
  tile_wiring_overhead : float;  (** area multiplier for tile interfaces *)
  delay_factor : float;
  supports_chain : bool;
  route_mux4 : bool;
      (** switch/connection muxes built from the custom [Mux4] cell
          (FABulous) rather than 2:1 muxes (OpenFPGA) *)
}

val params : t -> params
val name : t -> string
val all : t list
