lib/fabric/emit.ml: Array Bitstream Fabric Int64 List Printf Resources Shell_netlist Shell_util Style
