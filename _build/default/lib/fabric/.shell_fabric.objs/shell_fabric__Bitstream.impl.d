lib/fabric/bitstream.ml: Array Buffer Char List Printf Shell_util String
