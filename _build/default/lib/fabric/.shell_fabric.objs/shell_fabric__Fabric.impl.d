lib/fabric/fabric.ml: Format Resources Style
