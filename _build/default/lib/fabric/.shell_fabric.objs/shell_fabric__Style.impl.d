lib/fabric/style.ml:
