lib/fabric/resources.mli: Format Style
