lib/fabric/resources.ml: Format Printf Shell_netlist Style
