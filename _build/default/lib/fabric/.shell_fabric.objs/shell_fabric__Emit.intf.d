lib/fabric/emit.mli: Bitstream Resources Shell_netlist Style
