lib/fabric/bitstream.mli:
