lib/fabric/fabric.mli: Format Resources Style
