lib/fabric/style.mli:
