(** Fabric resource inventories (the paper's Table I columns plus the
    area/power/delay roll-up).

    An inventory counts *materialized* hardware: the multiplexers that
    implement LUT bodies and routing, chain [Mux4] cells, user flops,
    and configuration storage. Capacity inventories describe a whole
    fabric; used inventories describe what a mapping actually occupies
    (what remains after the paper's step 8 shrinking). *)

type t = {
  lut_body_mux2 : int;  (** internal 2:1 muxes of LUT bodies *)
  route_mux2 : int;  (** connection/switch-box 2:1 muxes *)
  route_mux4 : int;  (** connection/switch-box 4:1 muxes (FABulous) *)
  chain_mux4 : int;
  chain_mux2 : int;
  user_dffs : int;
  config_bits : int;
  storage_dffs : int;  (** config storage when style uses a DFF chain *)
  storage_latches : int;  (** config storage when style uses latches *)
  control_ffs : int;  (** configuration controller flops (CFFs) *)
  io_pins : int;
      (** fabric boundary crossings (connection-box slices) *)
  feedthrough_tracks : int;
      (** exit-and-re-enter routes: signals that leave the fabric,
          traverse external logic and come back (non-neighbouring
          LGC/ROUTE selections) — the "back-and-forth inlet/outlet"
          overhead of the paper's Table VII *)
}

val zero : t
val add : t -> t -> t

val mux2_total : t -> int
(** Table I "Multiplexer" M2 column. *)

val mux4_total : t -> int
(** Table I M4 column: route + chain 4:1 muxes. *)

val area : Style.t -> t -> float
(** Standard-cell area of the inventory, including the style's tile
    wiring overhead. *)

val power : Style.t -> t -> float

val pp : Format.formatter -> t -> unit
val pp_table1_row : Format.formatter -> Style.t * t -> unit
(** One row in the format of the paper's Table I. *)
