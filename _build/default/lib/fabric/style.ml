type t = Openfpga | Fabulous_std | Fabulous_muxchain

type config_storage = Dff_chain | Latch_array

type params = {
  clb_luts : int;
  lut_k : int;
  route_flex : int;
  chain_flex : int;
  square : bool;
  cyclic_routing : bool;
  config_storage : config_storage;
  control_ffs_base : int;
  channel_width : int;
  tile_wiring_overhead : float;
  delay_factor : float;
  supports_chain : bool;
  route_mux4 : bool;
}

(* Flexibility and overhead constants are calibrated so the three
   styles reproduce the resource ratios of the paper's Table I on the
   8-channel Xbar (see bench target table1). *)
let params = function
  | Openfpga ->
      {
        clb_luts = 8;
        lut_k = 4;
        route_flex = 8;
        chain_flex = 0;
        square = true;
        cyclic_routing = true;
        config_storage = Dff_chain;
        control_ffs_base = 0;
        channel_width = 36;
        tile_wiring_overhead = 1.35;
        delay_factor = 2.6;
        supports_chain = false;
        route_mux4 = false;
      }
  | Fabulous_std ->
      {
        clb_luts = 8;
        lut_k = 4;
        route_flex = 8;
        chain_flex = 0;
        square = false;
        cyclic_routing = false;
        config_storage = Latch_array;
        control_ffs_base = 8;
        channel_width = 36;
        tile_wiring_overhead = 1.22;
        delay_factor = 1.9;
        supports_chain = false;
        route_mux4 = true;
      }
  | Fabulous_muxchain ->
      {
        clb_luts = 8;
        lut_k = 4;
        route_flex = 6;
        chain_flex = 4;
        square = false;
        cyclic_routing = false;
        config_storage = Latch_array;
        control_ffs_base = 6;
        channel_width = 36;
        tile_wiring_overhead = 1.08;
        delay_factor = 1.3;
        supports_chain = true;
        route_mux4 = true;
      }

let name = function
  | Openfpga -> "OpenFPGA"
  | Fabulous_std -> "FABulous (std cell)"
  | Fabulous_muxchain -> "FABulous (std cell w/ mux chain)"

let all = [ Openfpga; Fabulous_std; Fabulous_muxchain ]
