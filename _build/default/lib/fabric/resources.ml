module Cost = Shell_netlist.Cost
module Cell = Shell_netlist.Cell

type t = {
  lut_body_mux2 : int;
  route_mux2 : int;
  route_mux4 : int;
  chain_mux4 : int;
  chain_mux2 : int;
  user_dffs : int;
  config_bits : int;
  storage_dffs : int;
  storage_latches : int;
  control_ffs : int;
  io_pins : int;
  feedthrough_tracks : int;
}

let zero =
  {
    lut_body_mux2 = 0;
    route_mux2 = 0;
    route_mux4 = 0;
    chain_mux4 = 0;
    chain_mux2 = 0;
    user_dffs = 0;
    config_bits = 0;
    storage_dffs = 0;
    storage_latches = 0;
    control_ffs = 0;
    io_pins = 0;
    feedthrough_tracks = 0;
  }

let add a b =
  {
    lut_body_mux2 = a.lut_body_mux2 + b.lut_body_mux2;
    route_mux2 = a.route_mux2 + b.route_mux2;
    route_mux4 = a.route_mux4 + b.route_mux4;
    chain_mux4 = a.chain_mux4 + b.chain_mux4;
    chain_mux2 = a.chain_mux2 + b.chain_mux2;
    user_dffs = a.user_dffs + b.user_dffs;
    config_bits = a.config_bits + b.config_bits;
    storage_dffs = a.storage_dffs + b.storage_dffs;
    storage_latches = a.storage_latches + b.storage_latches;
    control_ffs = a.control_ffs + b.control_ffs;
    io_pins = a.io_pins + b.io_pins;
    feedthrough_tracks = a.feedthrough_tracks + b.feedthrough_tracks;
  }

let mux2_total t = t.lut_body_mux2 + t.route_mux2 + t.chain_mux2
let mux4_total t = t.chain_mux4 + t.route_mux4

(* A bitstream-chain flop has no scan mux or async set/reset: smaller
   than the library's general-purpose DFF. *)
let config_dff_area = 15.0
let config_dff_power = 1.8

(* connection-box slice per fabric pin: input mux, output buffer pair
   and the track stubs they program *)
let io_pin_area = 45.0
let io_pin_power = 4.0

(* a feedthrough burns a doubly-buffered full-span track plus a CB
   slice at each crossing *)
let feedthrough_area = 320.0
let feedthrough_power = 28.0

let raw_area t =
  let f count kind = float_of_int count *. Cost.cell_area kind in
  f (mux2_total t) Cell.Mux2
  +. f (mux4_total t) Cell.Mux4
  +. f t.user_dffs Cell.Dff
  +. (float_of_int t.storage_dffs *. config_dff_area)
  +. f t.storage_latches Cell.Config_latch
  +. f t.control_ffs Cell.Dff
  +. (float_of_int t.io_pins *. io_pin_area)
  +. (float_of_int t.feedthrough_tracks *. feedthrough_area)

let area style t = raw_area t *. (Style.params style).Style.tile_wiring_overhead

(* Dynamic switching of the active cells, plus a static/interconnect
   component proportional to fabric area: programmable interconnect
   keeps long, heavily-buffered wires toggling, which is why eFPGA
   power overhead tracks area overhead in the paper's tables. *)
let interconnect_power_per_area = 0.11

let power style t =
  let f count kind = float_of_int count *. Cost.cell_power kind in
  f (mux2_total t) Cell.Mux2
  +. f (mux4_total t) Cell.Mux4
  +. f t.user_dffs Cell.Dff
  +. (0.1
     *. ((float_of_int t.storage_dffs *. config_dff_power)
        +. f t.storage_latches Cell.Config_latch))
  +. f t.control_ffs Cell.Dff
  +. (float_of_int t.io_pins *. io_pin_power)
  +. (float_of_int t.feedthrough_tracks *. feedthrough_power)
  +. (interconnect_power_per_area *. area style t)

let pp ppf t =
  Format.fprintf ppf
    "m2=%d (lut %d, route %d, chain %d) m4=%d dff=%d cfg_bits=%d storage(dff=%d,latch=%d) cff=%d"
    (mux2_total t) t.lut_body_mux2 t.route_mux2 t.chain_mux2 (mux4_total t)
    t.user_dffs t.config_bits t.storage_dffs t.storage_latches t.control_ffs

let pp_table1_row ppf (style, t) =
  let mux_col =
    if mux4_total t > 0 then
      Printf.sprintf "%d M4s + %d M2s" (mux4_total t) (mux2_total t)
    else Printf.sprintf "%d M2s" (mux2_total t)
  in
  let ff_col =
    match (Style.params style).Style.config_storage with
    | Style.Dff_chain -> Printf.sprintf "%d DFFs" (t.storage_dffs + t.user_dffs)
    | Style.Latch_array -> Printf.sprintf "%d CFFs" (t.control_ffs + t.user_dffs)
  in
  let latch_col =
    match (Style.params style).Style.config_storage with
    | Style.Dff_chain -> "-"
    | Style.Latch_array -> string_of_int t.storage_latches
  in
  Format.fprintf ppf "%-34s %-22s %-12s %s" (Style.name style) mux_col ff_col
    latch_col
