lib/attacks/removal.ml: Array List Shell_netlist Shell_util
