lib/attacks/miter.mli: Shell_netlist
