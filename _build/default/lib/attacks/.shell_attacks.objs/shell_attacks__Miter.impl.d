lib/attacks/miter.ml: Array List Shell_netlist Shell_sat
