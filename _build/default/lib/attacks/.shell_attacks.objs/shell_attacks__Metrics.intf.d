lib/attacks/metrics.mli: Format Shell_fabric Shell_netlist
