lib/attacks/proximity.ml: Array Hashtbl List Shell_locking Shell_netlist Shell_util
