lib/attacks/removal.mli: Shell_netlist
