lib/attacks/proximity.mli: Shell_locking
