lib/attacks/sat_attack.mli: Shell_locking Shell_netlist
