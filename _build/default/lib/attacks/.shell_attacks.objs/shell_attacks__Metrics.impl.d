lib/attacks/metrics.ml: Array Format List Shell_fabric Shell_netlist String
