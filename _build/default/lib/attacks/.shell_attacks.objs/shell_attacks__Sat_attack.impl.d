lib/attacks/sat_attack.ml: Miter Shell_locking Shell_netlist Sys
