module Netlist = Shell_netlist.Netlist
module Sim = Shell_netlist.Sim
module Rng = Shell_util.Rng

type verdict = {
  matched : bool;
  vectors_tried : int;
  first_mismatch : bool array option;
}

let attempt ?(vectors = 512) ?(seed = 0xdead) ~oracle candidate =
  let comb = Netlist.comb_view candidate in
  let sim = Sim.create comb in
  let n_in = List.length (Netlist.inputs comb) in
  let mismatch = ref None in
  let tried = ref 0 in
  let try_vec ins =
    incr tried;
    if Sim.eval_comb sim ins <> oracle ins then mismatch := Some ins
  in
  if n_in <= 16 then begin
    let total = 1 lsl n_in in
    let v = ref 0 in
    while !mismatch = None && !v < total do
      try_vec (Array.init n_in (fun i -> !v land (1 lsl i) <> 0));
      incr v
    done
  end
  else begin
    let rng = Rng.create seed in
    let k = ref 0 in
    while !mismatch = None && !k < vectors do
      try_vec (Array.init n_in (fun _ -> Rng.bool rng));
      incr k
    done
  end;
  { matched = !mismatch = None; vectors_tried = !tried; first_mismatch = !mismatch }
