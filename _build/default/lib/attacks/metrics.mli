(** Security metrics for locked designs.

    The paper leans on the clause-to-variable ratio as a SAT-hardness
    indicator (footnote 1) and on keyspace structure (routing vs table
    bits; cyclic-reduction pruning [26]). This module computes those
    numbers without running an attack. *)

type t = {
  key_bits : int;
  table_bits : int;  (** LUT truth-table storage *)
  routing_bits : int;  (** route/chain select storage *)
  c2v : float;  (** clause-to-variable ratio of the locked CNF *)
  clauses : int;
  variables : int;
  cycle_blocked_patterns : int;
      (** key patterns excludable by cyclic-reduction pre-processing *)
  log2_keyspace : float;  (** before pre-processing *)
}

val of_locked :
  ?bitstream:Shell_fabric.Bitstream.t ->
  ?cycle_blocks:(int array * bool array) list ->
  Shell_netlist.Netlist.t ->
  t
(** [bitstream] (when available) splits key bits into table vs routing
    by segment name; without it both counts are 0. *)

val pp : Format.formatter -> t -> unit
