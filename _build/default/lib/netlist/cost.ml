module Truthtab = Shell_util.Truthtab

type report = { area : float; power : float; delay : float }

(* Flavoured after sky130_fd_sc_hd drive-1 cells. The LUT entries model
   the mux-tree + input buffering of a soft LUT; its configuration
   storage is accounted separately (explicit Config_latch cells in the
   fabric functional view). *)

let lut_area k = float_of_int ((1 lsl k) - 1) *. 6.0 +. (float_of_int k *. 2.5)
let lut_power k = float_of_int (1 lsl k) *. 0.35
let lut_delay k = 0.12 +. (0.03 *. float_of_int k)

let cell_area = function
  | Cell.Const _ -> 0.0
  | Cell.Buf -> 3.75
  | Cell.Not -> 3.75
  | Cell.Nand -> 3.75
  | Cell.Nor -> 3.75
  | Cell.And -> 6.25
  | Cell.Or -> 6.25
  | Cell.Xor -> 8.75
  | Cell.Xnor -> 8.75
  | Cell.Mux2 -> 11.25
  | Cell.Mux4 -> 22.5
  | Cell.Dff -> 21.25
  | Cell.Config_latch -> 11.25
  | Cell.Lut tt -> lut_area (Truthtab.arity tt)

let cell_power = function
  | Cell.Const _ -> 0.0
  | Cell.Buf -> 0.8
  | Cell.Not -> 0.7
  | Cell.Nand -> 1.0
  | Cell.Nor -> 1.0
  | Cell.And -> 1.2
  | Cell.Or -> 1.2
  | Cell.Xor -> 1.8
  | Cell.Xnor -> 1.8
  | Cell.Mux2 -> 1.6
  | Cell.Mux4 -> 2.6
  | Cell.Dff -> 3.0
  | Cell.Config_latch -> 1.2
  | Cell.Lut tt -> lut_power (Truthtab.arity tt)

let cell_delay = function
  | Cell.Const _ -> 0.0
  | Cell.Buf -> 0.06
  | Cell.Not -> 0.05
  | Cell.Nand -> 0.06
  | Cell.Nor -> 0.06
  | Cell.And -> 0.08
  | Cell.Or -> 0.08
  | Cell.Xor -> 0.12
  | Cell.Xnor -> 0.12
  | Cell.Mux2 -> 0.10
  | Cell.Mux4 -> 0.14
  | Cell.Dff -> 0.30 (* clk-to-q + setup budget *)
  | Cell.Config_latch -> 0.0 (* static after configuration *)
  | Cell.Lut tt -> lut_delay (Truthtab.arity tt)

let fold_cells f init nl =
  Array.fold_left f init (Netlist.cells nl)

let area nl = fold_cells (fun acc c -> acc +. cell_area c.Cell.kind) 0.0 nl
let power nl = fold_cells (fun acc c -> acc +. cell_power c.Cell.kind) 0.0 nl

(* Longest-path arrival times over the topological order. Sequential
   cells launch (clk-to-q) at their output and capture at their input. *)
let delay nl =
  let cells = Netlist.cells nl in
  let order = Netlist.topo_order nl in
  let arrival = Array.make (max (Netlist.num_nets nl) 1) 0.0 in
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      match c.Cell.kind with
      | Cell.Dff -> arrival.(c.Cell.out) <- cell_delay Cell.Dff
      | Cell.Config_latch -> arrival.(c.Cell.out) <- 0.0
      | kind ->
          let worst =
            Array.fold_left (fun m net -> Float.max m arrival.(net)) 0.0 c.Cell.ins
          in
          arrival.(c.Cell.out) <- worst +. cell_delay kind)
    order;
  let crit = ref 0.0 in
  Array.iter (fun net -> crit := Float.max !crit arrival.(net)) (Netlist.output_nets nl);
  Array.iter
    (fun c ->
      match c.Cell.kind with
      | Cell.Dff -> crit := Float.max !crit arrival.(c.Cell.ins.(0))
      | _ -> ())
    cells;
  !crit

let report nl = { area = area nl; power = power nl; delay = delay nl }

let normalize ~base r =
  let safe_div a b = if b = 0.0 then 0.0 else a /. b in
  {
    area = safe_div r.area base.area;
    power = safe_div r.power base.power;
    delay = safe_div r.delay base.delay;
  }

let pp_report ppf r =
  Format.fprintf ppf "area=%.2f power=%.2f delay=%.3f" r.area r.power r.delay
