module Truthtab = Shell_util.Truthtab

type kind =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Mux2
  | Mux4
  | Lut of Truthtab.t
  | Const of bool
  | Dff
  | Config_latch

type t = { kind : kind; ins : int array; out : int; origin : string }

let arity = function
  | And | Or | Nand | Nor | Xor | Xnor -> 2
  | Not | Buf -> 1
  | Mux2 -> 3
  | Mux4 -> 6
  | Lut tt -> Truthtab.arity tt
  | Const _ -> 0
  | Dff | Config_latch -> 1

let is_sequential = function
  | Dff | Config_latch -> true
  | And | Or | Nand | Nor | Xor | Xnor | Not | Buf | Mux2 | Mux4 | Lut _
  | Const _ -> false

let make ?(origin = "") kind ins out =
  if Array.length ins <> arity kind then
    invalid_arg
      (Printf.sprintf "Cell.make: %d inputs where %d expected"
         (Array.length ins) (arity kind));
  { kind; ins; out; origin }

let kind_name = function
  | And -> "and2"
  | Or -> "or2"
  | Nand -> "nand2"
  | Nor -> "nor2"
  | Xor -> "xor2"
  | Xnor -> "xnor2"
  | Not -> "not"
  | Buf -> "buf"
  | Mux2 -> "mux2"
  | Mux4 -> "mux4"
  | Lut tt -> Printf.sprintf "lut%d:%Lx" (Truthtab.arity tt) (Truthtab.bits tt)
  | Const b -> if b then "const1" else "const0"
  | Dff -> "dff"
  | Config_latch -> "cfg_latch"

let eval kind ins =
  match kind with
  | And -> ins.(0) && ins.(1)
  | Or -> ins.(0) || ins.(1)
  | Nand -> not (ins.(0) && ins.(1))
  | Nor -> not (ins.(0) || ins.(1))
  | Xor -> ins.(0) <> ins.(1)
  | Xnor -> ins.(0) = ins.(1)
  | Not -> not ins.(0)
  | Buf -> ins.(0)
  | Mux2 -> if ins.(0) then ins.(2) else ins.(1)
  | Mux4 ->
      let sel = (if ins.(0) then 1 else 0) lor (if ins.(1) then 2 else 0) in
      ins.(2 + sel)
  | Lut tt -> Truthtab.eval tt ins
  | Const b -> b
  | Dff | Config_latch -> invalid_arg "Cell.eval: sequential cell"

let pp ppf t =
  Format.fprintf ppf "%s(%s) -> n%d" (kind_name t.kind)
    (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "n%d") t.ins)))
    t.out
