(** Structural netlist rewrites.

    All functions return a fresh netlist; ports keep names and order.
    Net ids are renumbered compactly. *)

val sweep_buffers : Netlist.t -> Netlist.t
(** Remove [Buf] cells by reconnecting their readers to the buffer
    input. Buffers driving primary outputs whose input is a port net are
    kept (they implement output aliasing). *)

val dead_cell_elim : Netlist.t -> Netlist.t
(** Drop cells whose output cone reaches no primary output and no
    sequential element. *)

val clean : Netlist.t -> Netlist.t
(** [sweep_buffers] then [dead_cell_elim]. *)
