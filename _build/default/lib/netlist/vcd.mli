(** VCD (Value Change Dump) waveform capture.

    Wraps a {!Sim.t} and records primary inputs, primary outputs and
    key values every clock cycle; the dump opens in GTKWave or any other
    VCD viewer. Net-level probing is available via [probe]. *)

type t

val create : ?timescale:string -> Sim.t -> t
(** [timescale] defaults to ["1ns"]. *)

val probe : t -> string -> int -> unit
(** [probe t name net] additionally records the given net. Call before
    the first {!step}. *)

val step : t -> ?keys:bool array -> bool array -> bool array
(** Like {!Sim.step}, recording a waveform sample. *)

val dump : t -> string
(** The VCD text for everything recorded so far. *)

val to_file : t -> string -> unit
