(** Key binding by cycle-tolerant constant propagation.

    Locked netlists from cyclic fabric styles can contain structural
    combinational cycles through decoy routing, so they cannot be
    topologically ordered until the configuration is applied. This pass
    substitutes constants for the key inputs and folds muxes/gates to a
    fixpoint *without* requiring an order; with a cycle-free
    configuration (any correct bitstream) the result is an ordinary
    acyclic netlist with no key ports. *)

val bind_keys : Netlist.t -> bool array -> Netlist.t
(** [bind_keys locked key] — [key] in {!Netlist.keys} order. The result
    has the same primary inputs/outputs and no keys. Raises
    [Invalid_argument] on a length mismatch. *)
