module Truthtab = Shell_util.Truthtab

type t = { nvars : int; clauses : int list list; var_of_net : int array }

let var_of net t = t.var_of_net.(net)

let lit t net polarity =
  let v = t.var_of_net.(net) in
  if polarity then v else -v

(* Standard Tseitin gate encodings; [y] is the output literal's
   variable, [a]/[b] input variables. *)
let gate_clauses kind ins y =
  let a () = ins.(0) and b () = ins.(1) in
  match kind with
  | Cell.Buf -> [ [ -(a ()); y ]; [ a (); -y ] ]
  | Cell.Not -> [ [ a (); y ]; [ -(a ()); -y ] ]
  | Cell.And -> [ [ -(a ()); -(b ()); y ]; [ a (); -y ]; [ b (); -y ] ]
  | Cell.Nand -> [ [ -(a ()); -(b ()); -y ]; [ a (); y ]; [ b (); y ] ]
  | Cell.Or -> [ [ a (); b (); -y ]; [ -(a ()); y ]; [ -(b ()); y ] ]
  | Cell.Nor -> [ [ a (); b (); y ]; [ -(a ()); -y ]; [ -(b ()); -y ] ]
  | Cell.Xor ->
      [
        [ -(a ()); -(b ()); -y ];
        [ a (); b (); -y ];
        [ -(a ()); b (); y ];
        [ a (); -(b ()); y ];
      ]
  | Cell.Xnor ->
      [
        [ -(a ()); -(b ()); y ];
        [ a (); b (); y ];
        [ -(a ()); b (); -y ];
        [ a (); -(b ()); -y ];
      ]
  | Cell.Mux2 ->
      (* ins = [|s; d0; d1|] *)
      let s = ins.(0) and d0 = ins.(1) and d1 = ins.(2) in
      [
        [ s; -d0; y ];
        [ s; d0; -y ];
        [ -s; -d1; y ];
        [ -s; d1; -y ];
      ]
  | Cell.Mux4 ->
      (* ins = [|s0; s1; d0..d3|]; one pair of clauses per select row *)
      let s0 = ins.(0) and s1 = ins.(1) in
      let sel_lits row =
        [ (if row land 1 = 0 then s0 else -s0);
          (if row land 2 = 0 then s1 else -s1) ]
      in
      List.concat_map
        (fun row ->
          let d = ins.(2 + row) in
          [ sel_lits row @ [ -d; y ]; sel_lits row @ [ d; -y ] ])
        [ 0; 1; 2; 3 ]
  | Cell.Lut tt ->
      (* One clause per truth-table row: the row's input pattern implies
         the tabulated output value. *)
      let k = Truthtab.arity tt in
      let rows = 1 lsl k in
      List.init rows (fun row ->
          let antecedent =
            List.init k (fun i ->
                if row land (1 lsl i) <> 0 then -ins.(i) else ins.(i))
          in
          let out_val =
            Int64.(logand (shift_right_logical (Truthtab.bits tt) row) 1L) = 1L
          in
          antecedent @ [ (if out_val then y else -y) ])
  | Cell.Const b -> [ [ (if b then y else -y) ] ]
  | Cell.Config_latch -> []  (* free variable *)
  | Cell.Dff -> invalid_arg "Cnf: sequential netlist (take comb_view first)"

let encode nl =
  let n = Netlist.num_nets nl in
  let var_of_net = Array.init n (fun i -> i + 1) in
  let clauses =
    Array.fold_left
      (fun acc c ->
        let ins = Array.map (fun net -> var_of_net.(net)) c.Cell.ins in
        let y = var_of_net.(c.Cell.out) in
        List.rev_append (gate_clauses c.Cell.kind ins y) acc)
      [] (Netlist.cells nl)
  in
  { nvars = n; clauses; var_of_net }

let offset t k =
  {
    nvars = t.nvars + k;
    clauses = List.map (List.map (fun l -> if l > 0 then l + k else l - k)) t.clauses;
    var_of_net = Array.map (fun v -> v + k) t.var_of_net;
  }

let equal_clauses a b = [ [ -a; b ]; [ a; -b ] ]

let xor_var ~fresh a b =
  [
    [ -a; -b; -fresh ];
    [ a; b; -fresh ];
    [ -a; b; fresh ];
    [ a; -b; fresh ];
  ]

let or_clause lits = lits

let to_dimacs t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" t.nvars (List.length t.clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    t.clauses;
  Buffer.contents buf
