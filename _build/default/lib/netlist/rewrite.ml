(* Rebuild a netlist keeping a subset of cells, with an optional net
   substitution applied first. Net ids are compacted. *)
let rebuild nl ~subst ~keep =
  let resolve net =
    (* follow the substitution chain (buffer chains) *)
    let rec go net seen =
      match subst net with
      | Some net' when net' <> net && seen < Netlist.num_nets nl ->
          go net' (seen + 1)
      | _ -> net
    in
    go net 0
  in
  let out = Netlist.create (Netlist.name nl) in
  let mapping = Array.make (max (Netlist.num_nets nl) 1) (-1) in
  (* Ports first so their nets keep stable ids in declaration order;
     sources (inputs/keys) are never rewritten by the substitution. *)
  List.iter
    (fun (nm, net) -> mapping.(resolve net) <- Netlist.add_input out nm)
    (Netlist.inputs nl);
  List.iter
    (fun (nm, net) -> mapping.(resolve net) <- Netlist.add_key out nm)
    (Netlist.keys nl);
  let map_net net =
    let net = resolve net in
    if mapping.(net) = -1 then mapping.(net) <- Netlist.new_net out;
    mapping.(net)
  in
  Array.iteri
    (fun i c ->
      if keep i then
        Netlist.add_cell out
          (Cell.make ~origin:c.Cell.origin c.Cell.kind
             (Array.map map_net c.Cell.ins)
             (map_net c.Cell.out)))
    (Netlist.cells nl);
  List.iter
    (fun (nm, net) -> Netlist.add_output out nm (map_net net))
    (Netlist.outputs nl);
  out

let sweep_buffers nl =
  let cells = Netlist.cells nl in
  let subst_tbl = Array.make (max (Netlist.num_nets nl) 1) (-1) in
  Array.iter
    (fun c ->
      match c.Cell.kind with
      | Cell.Buf -> subst_tbl.(c.Cell.out) <- c.Cell.ins.(0)
      | _ -> ())
    cells;
  let subst net = if subst_tbl.(net) = -1 then None else Some subst_tbl.(net) in
  let keep i = cells.(i).Cell.kind <> Cell.Buf in
  rebuild nl ~subst ~keep

let dead_cell_elim nl =
  let cells = Netlist.cells nl in
  let n = Array.length cells in
  let live = Array.make n false in
  let queue = Queue.create () in
  let mark_driver net =
    match Netlist.driver nl net with
    | Some i when not live.(i) ->
        live.(i) <- true;
        Queue.add i queue
    | Some _ | None -> ()
  in
  Array.iter mark_driver (Netlist.output_nets nl);
  (* Sequential cells are observable state: keep them and their cones.
     (Config latches too: they hold the secret.) *)
  Array.iteri
    (fun i c ->
      if Cell.is_sequential c.Cell.kind && not live.(i) then begin
        live.(i) <- true;
        Queue.add i queue
      end)
    cells;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    Array.iter mark_driver cells.(i).Cell.ins
  done;
  rebuild nl ~subst:(fun _ -> None) ~keep:(fun i -> live.(i))

let clean nl = dead_cell_elim (sweep_buffers nl)
