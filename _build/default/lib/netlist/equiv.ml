module Rng = Shell_util.Rng

type verdict = Equivalent | Counterexample of bool array

let exhaustive_limit = 16

let comb nl = if Netlist.count_kind nl (function Cell.Dff -> true | _ -> false) > 0 then Netlist.comb_view nl else nl

let outputs_on sim ?keys ins = Sim.eval_comb sim ?keys ins

let equal_on a b ~keys_a ~keys_b ins =
  let a = comb a and b = comb b in
  let sa = Sim.create a and sb = Sim.create b in
  outputs_on sa ~keys:keys_a ins = outputs_on sb ~keys:keys_b ins

let check ?(vectors = 256) ?rng ?keys_a ?keys_b a b =
  let a = comb a and b = comb b in
  let n_in = List.length (Netlist.inputs a) in
  if List.length (Netlist.inputs b) <> n_in then
    invalid_arg "Equiv.check: input count mismatch";
  if List.length (Netlist.outputs b) <> List.length (Netlist.outputs a) then
    invalid_arg "Equiv.check: output count mismatch";
  let keys_a =
    match keys_a with
    | Some k -> k
    | None -> Array.make (List.length (Netlist.keys a)) false
  in
  let keys_b =
    match keys_b with
    | Some k -> k
    | None -> Array.make (List.length (Netlist.keys b)) false
  in
  let sa = Sim.create a and sb = Sim.create b in
  let try_vector ins =
    if outputs_on sa ~keys:keys_a ins = outputs_on sb ~keys:keys_b ins then None
    else Some ins
  in
  let result = ref Equivalent in
  (if n_in <= exhaustive_limit then
     let total = 1 lsl n_in in
     let rec go v =
       if v < total && !result = Equivalent then begin
         let ins = Array.init n_in (fun i -> v land (1 lsl i) <> 0) in
         (match try_vector ins with
         | Some cex -> result := Counterexample cex
         | None -> ());
         go (v + 1)
       end
     in
     go 0
   else
     let rng = match rng with Some r -> r | None -> Rng.create 0x5eed in
     let rec go k =
       if k < vectors && !result = Equivalent then begin
         let ins = Array.init n_in (fun _ -> Rng.bool rng) in
         (match try_vector ins with
         | Some cex -> result := Counterexample cex
         | None -> ());
         go (k + 1)
       end
     in
     go 0);
  !result

let check_sequential ?(cycles = 32) ?(runs = 16) ?rng ?keys_a ?keys_b a b =
  let n_in = List.length (Netlist.inputs a) in
  if List.length (Netlist.inputs b) <> n_in then
    invalid_arg "Equiv.check_sequential: input count mismatch";
  let keys_a =
    match keys_a with
    | Some k -> k
    | None -> Array.make (List.length (Netlist.keys a)) false
  in
  let keys_b =
    match keys_b with
    | Some k -> k
    | None -> Array.make (List.length (Netlist.keys b)) false
  in
  let rng = match rng with Some r -> r | None -> Rng.create 0xc10c in
  let sa = Sim.create a and sb = Sim.create b in
  let result = ref Equivalent in
  let run = ref 0 in
  while !result = Equivalent && !run < runs do
    Sim.reset sa;
    Sim.reset sb;
    let cycle = ref 0 in
    while !result = Equivalent && !cycle < cycles do
      let ins = Array.init n_in (fun _ -> Rng.bool rng) in
      let oa = Sim.step sa ~keys:keys_a ins in
      let ob = Sim.step sb ~keys:keys_b ins in
      if oa <> ob then result := Counterexample ins;
      incr cycle
    done;
    incr run
  done;
  !result
