(** Area / power / delay model.

    This stands in for the Skywater 130 nm standard-cell library plus the
    Genus/Innovus reports of the paper (see DESIGN.md, substitutions).
    Absolute units are arbitrary (area in µm²-like units, delay in
    ns-like units, power in µW-like switching weights); the paper's
    results are normalized ratios, so only relative cell costs matter.

    The [mux4] and [config_latch] entries reflect the FABulous custom
    cells of the paper's Table I footnote (iteratively optimized
    MUX-chain cells, up to 30% die-size shrinkage). *)

type report = { area : float; power : float; delay : float }

val cell_area : Cell.kind -> float
val cell_power : Cell.kind -> float
val cell_delay : Cell.kind -> float

val area : Netlist.t -> float
(** Sum of cell areas. *)

val power : Netlist.t -> float

val delay : Netlist.t -> float
(** Critical combinational path (register-to-register or port-to-port),
    including clk-to-q and setup contributions of sequential endpoints. *)

val report : Netlist.t -> report

val normalize : base:report -> report -> report
(** Component-wise ratio — the "normalized overhead" of the paper's
    tables ([1.0] = no overhead). *)

val pp_report : Format.formatter -> report -> unit
