(** Simulation-based equivalence checking.

    Complete SAT-based equivalence lives in [shell_attacks.Miter]; this
    module provides the fast vector-based checks the flow uses as
    sanity gates (exhaustive for small input counts, random sampling
    otherwise). *)

type verdict =
  | Equivalent  (** proven (exhaustive) or not refuted (sampled) *)
  | Counterexample of bool array  (** differing primary-input vector *)

val exhaustive_limit : int
(** Input counts up to this bound are checked exhaustively (16). *)

val check :
  ?vectors:int ->
  ?rng:Shell_util.Rng.t ->
  ?keys_a:bool array ->
  ?keys_b:bool array ->
  Netlist.t ->
  Netlist.t ->
  verdict
(** [check a b] compares primary outputs of [a] and [b] on identical
    primary-input vectors (sequential designs are compared through
    {!Netlist.comb_view}, matching the full-scan threat model). Port
    counts must agree. [vectors] (default 256) bounds the sample size in
    random mode. *)

val equal_on : Netlist.t -> Netlist.t -> keys_a:bool array -> keys_b:bool array -> bool array -> bool
(** Single-vector comparison. *)

val check_sequential :
  ?cycles:int ->
  ?runs:int ->
  ?rng:Shell_util.Rng.t ->
  ?keys_a:bool array ->
  ?keys_b:bool array ->
  Netlist.t ->
  Netlist.t ->
  verdict
(** Clocked black-box comparison: drive both designs with the same
    random input sequences from reset and compare primary outputs every
    cycle. Unlike {!check}, this does not rely on matching scan-port
    order, so it works across restructured sequential designs (e.g.
    after region splicing). [runs] sequences (default 16) of [cycles]
    steps (default 32). *)
