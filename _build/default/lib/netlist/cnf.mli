(** Tseitin encoding of combinational netlists into CNF.

    Variables are positive integers; literal [-v] is the negation of
    [v]. The encoding allocates one variable per net. Netlists must be
    combinational ([Dff]-free — take {!Netlist.comb_view} first);
    [Config_latch] outputs are treated as free variables (they are the
    bitstream the attacker solves for). *)

type t = {
  nvars : int;
  clauses : int list list;
  var_of_net : int array;  (** net id -> CNF variable (1-based) *)
}

val encode : Netlist.t -> t

val var_of : int -> t -> int
(** CNF variable of a net. *)

val lit : t -> int -> bool -> int
(** [lit t net polarity] is the literal asserting net = polarity. *)

(** {1 Growing an encoding}

    The SAT attack conjoins several circuit copies plus comparison
    logic. [offset] shifts an encoding's variables so two copies do not
    collide; [equal_clauses]/[xor_clauses] wire nets together. *)

val offset : t -> int -> t
(** [offset t k] adds [k] to every variable. *)

val equal_clauses : int -> int -> int list list
(** [equal_clauses a b]: variable [a] equals variable [b]. *)

val xor_var : fresh:int -> int -> int -> int list list
(** [xor_var ~fresh a b]: clauses forcing variable [fresh] = a XOR b. *)

val or_clause : int list -> int list
(** Identity; kept for symmetry when assembling miters. *)

val to_dimacs : t -> string
