module Truthtab = Shell_util.Truthtab

type fact = Unknown | Const of bool | Alias of int

let bind_keys nl key =
  let key_nets = Netlist.key_nets nl in
  if Array.length key <> Array.length key_nets then
    invalid_arg "Specialize.bind_keys: key length mismatch";
  let n_nets = max (Netlist.num_nets nl) 1 in
  let facts = Array.make n_nets Unknown in
  Array.iteri (fun i net -> facts.(net) <- Const key.(i)) key_nets;
  (* resolve through alias chains, path-compressing as we go *)
  let rec resolve net =
    match facts.(net) with
    | Alias net' ->
        let root = resolve net' in
        if root <> net' then facts.(net) <- Alias root;
        root
    | Unknown | Const _ -> net
  in
  let value net =
    match facts.(resolve net) with Const b -> Some b | Unknown | Alias _ -> None
  in
  let cells = Netlist.cells nl in
  let folded = Array.make (Array.length cells) false in
  (* Try to fold one cell; true if a new fact was learned. *)
  let try_fold i (c : Cell.t) =
    if folded.(i) || Cell.is_sequential c.Cell.kind then false
    else begin
      let ins = c.Cell.ins in
      let v j = value ins.(j) in
      let learn fact =
        folded.(i) <- true;
        (match fact with
        | Alias net -> facts.(c.Cell.out) <- Alias (resolve net)
        | other -> facts.(c.Cell.out) <- other);
        true
      in
      let vals = Array.init (Array.length ins) v in
      let all_const = Array.for_all Option.is_some vals in
      if all_const && Array.length ins > 0 then
        learn (Const (Cell.eval c.Cell.kind (Array.map Option.get vals)))
      else
        match (c.Cell.kind, vals) with
        | Cell.Const b, _ -> learn (Const b)
        | Cell.Buf, _ -> learn (Alias ins.(0))
        | Cell.And, [| Some false; _ |] | Cell.And, [| _; Some false |] ->
            learn (Const false)
        | Cell.And, [| Some true; _ |] -> learn (Alias ins.(1))
        | Cell.And, [| _; Some true |] -> learn (Alias ins.(0))
        | Cell.Or, [| Some true; _ |] | Cell.Or, [| _; Some true |] ->
            learn (Const true)
        | Cell.Or, [| Some false; _ |] -> learn (Alias ins.(1))
        | Cell.Or, [| _; Some false |] -> learn (Alias ins.(0))
        | Cell.Nand, [| Some false; _ |] | Cell.Nand, [| _; Some false |] ->
            learn (Const true)
        | Cell.Nor, [| Some true; _ |] | Cell.Nor, [| _; Some true |] ->
            learn (Const false)
        | Cell.Xor, [| Some false; _ |] -> learn (Alias ins.(1))
        | Cell.Xor, [| _; Some false |] -> learn (Alias ins.(0))
        | Cell.Xnor, [| Some true; _ |] -> learn (Alias ins.(1))
        | Cell.Xnor, [| _; Some true |] -> learn (Alias ins.(0))
        | Cell.Mux2, [| Some s; _; _ |] -> learn (Alias ins.(if s then 2 else 1))
        | Cell.Mux2, _ when resolve ins.(1) = resolve ins.(2) ->
            learn (Alias ins.(1))
        | Cell.Mux4, [| Some s0; Some s1; _; _; _; _ |] ->
            let idx = 2 + ((if s0 then 1 else 0) lor if s1 then 2 else 0) in
            learn (Alias ins.(idx))
        | _ -> false
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri (fun i c -> if try_fold i c then changed := true) cells
  done;
  (* rebuild without the folded cells and without key ports *)
  let out = Netlist.create (Netlist.name nl) in
  let mapping = Array.make n_nets (-1) in
  let const_net = [| -1; -1 |] in
  List.iter
    (fun (nm, net) -> mapping.(net) <- Netlist.add_input out nm)
    (Netlist.inputs nl);
  let rec map_net net =
    let net = resolve net in
    match facts.(net) with
    | Const b ->
        let i = Bool.to_int b in
        if const_net.(i) = -1 then const_net.(i) <- Netlist.const out b;
        const_net.(i)
    | Alias _ -> map_net net  (* resolved above; unreachable *)
    | Unknown ->
        if mapping.(net) = -1 then mapping.(net) <- Netlist.new_net out;
        mapping.(net)
  in
  Array.iteri
    (fun i c ->
      if not folded.(i) then
        Netlist.add_cell out
          (Cell.make ~origin:c.Cell.origin c.Cell.kind
             (Array.map map_net c.Cell.ins)
             (map_net c.Cell.out)))
    cells;
  List.iter
    (fun (nm, net) -> Netlist.add_output out nm (map_net net))
    (Netlist.outputs nl);
  Rewrite.dead_cell_elim out
