lib/netlist/equiv.ml: Array Cell List Netlist Shell_util Sim
