lib/netlist/rewrite.ml: Array Cell List Netlist Queue
