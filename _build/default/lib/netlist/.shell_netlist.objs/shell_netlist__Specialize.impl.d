lib/netlist/specialize.ml: Array Bool Cell List Netlist Option Rewrite Shell_util
