lib/netlist/splice.ml: Array Cell List Netlist Rewrite
