lib/netlist/equiv.mli: Netlist Shell_util
