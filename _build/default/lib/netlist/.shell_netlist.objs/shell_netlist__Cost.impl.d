lib/netlist/cost.ml: Array Cell Float Format Netlist Shell_util
