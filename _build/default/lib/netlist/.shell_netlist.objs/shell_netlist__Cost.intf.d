lib/netlist/cost.mli: Cell Format Netlist
