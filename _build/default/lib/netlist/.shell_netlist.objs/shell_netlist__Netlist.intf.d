lib/netlist/netlist.mli: Cell Format Shell_util
