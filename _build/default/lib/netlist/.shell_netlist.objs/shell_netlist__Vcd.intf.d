lib/netlist/vcd.mli: Sim
