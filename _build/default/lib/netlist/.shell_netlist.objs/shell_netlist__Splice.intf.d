lib/netlist/splice.mli: Netlist
