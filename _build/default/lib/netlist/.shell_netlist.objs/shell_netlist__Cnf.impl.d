lib/netlist/cnf.ml: Array Buffer Cell Int64 List Netlist Printf Shell_util
