lib/netlist/verilog.ml: Array Bool Cell Format Hashtbl Int64 List Netlist Printf Shell_util String
