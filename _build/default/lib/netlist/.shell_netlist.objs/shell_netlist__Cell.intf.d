lib/netlist/cell.mli: Format Shell_util
