lib/netlist/netlist.ml: Array Cell Format Hashtbl List Printf Queue Shell_util
