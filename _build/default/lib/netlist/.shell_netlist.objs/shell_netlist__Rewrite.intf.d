lib/netlist/rewrite.mli: Netlist
