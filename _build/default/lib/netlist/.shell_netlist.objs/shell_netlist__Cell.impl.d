lib/netlist/cell.ml: Array Format Printf Shell_util String
