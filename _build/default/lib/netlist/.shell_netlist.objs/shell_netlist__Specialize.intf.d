lib/netlist/specialize.mli: Netlist
