lib/netlist/sim.ml: Array Cell List Netlist
