lib/netlist/cnf.mli: Netlist
