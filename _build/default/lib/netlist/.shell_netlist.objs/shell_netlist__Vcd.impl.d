lib/netlist/vcd.ml: Array Bool Buffer Char List Netlist Printf Sim String
