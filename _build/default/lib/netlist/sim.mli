(** Cycle-accurate netlist simulation.

    Combinational evaluation orders cells topologically once per netlist
    and then evaluates in O(cells) per vector. Sequential state ([Dff])
    starts at zero; [Config_latch] cells hold a value loaded once at
    simulator creation (the bitstream) and never change. *)

type t

val create : ?config:bool array -> Netlist.t -> t
(** [config] gives the per-[Config_latch] values in cell order (the
    order latches appear in the netlist); defaults to all-false. *)

val netlist : t -> Netlist.t

val reset : t -> unit
(** Zero all [Dff] state (config latches keep their loaded value). *)

val step : t -> ?keys:bool array -> bool array -> bool array
(** [step t ~keys ins] applies one clock cycle: evaluates the
    combinational logic from primary inputs [ins] (declaration order)
    and key inputs [keys], returns the primary outputs, then updates the
    flops. [keys] defaults to all-false and must match the key count. *)

val eval_comb : t -> ?keys:bool array -> bool array -> bool array
(** Same as {!step} but without the state update. *)

val run : t -> ?keys:bool array -> bool array list -> bool array list
(** Feed a sequence of input vectors; collect the outputs. *)

val net_values : t -> bool array
(** Values of all nets after the last evaluation. *)

val num_config_latches : Netlist.t -> int
