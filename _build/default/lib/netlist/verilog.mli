(** Structural-Verilog-subset printer and parser.

    The dialect is a flat gate-level subset with one extension:
    [keyinput] declares a key (configuration) port. LUT instances carry
    their truth table as a parameter. Example:

    {v
    module top (a, b, k0, y);
      input a;
      input b;
      keyinput k0;
      output y;
      wire n4;
      and2 g0 (a, b, n4);
      lut #(2, 64'h6) g1 (n4, k0, y);
    endmodule
    v}

    Instance connections are positional: inputs in {!Cell.t} order, the
    output last. [Printer ∘ parser] and [parser ∘ printer] are identity
    up to net renumbering (tested by round-trip properties). *)

val to_string : Netlist.t -> string
val print : Format.formatter -> Netlist.t -> unit

exception Parse_error of string
(** Carries a message with line information. *)

val parse : string -> Netlist.t
(** Raises {!Parse_error} on malformed input. *)
