(** Region replacement: swap a set of cells for a drop-in netlist.

    Used by the redaction flow to put the configured-fabric view where
    the extracted sub-circuit used to be. The replacement's key inputs
    are lifted to key inputs of the result. *)

val replace_cells :
  Netlist.t ->
  remove:(int -> bool) ->
  replacement:Netlist.t ->
  input_binding:(string * int) list ->
  output_binding:(string * int) list ->
  Netlist.t
(** [replace_cells parent ~remove ~replacement ~input_binding
    ~output_binding]:
    - cells with [remove index] true are dropped;
    - each [(port, net)] in [input_binding] feeds parent net [net] into
      the replacement input [port];
    - each [(port, net)] in [output_binding] drives parent net [net]
      (which must have lost its driver) from replacement output [port].
    Raises [Invalid_argument] on unbound ports or doubly-driven
    nets. *)
