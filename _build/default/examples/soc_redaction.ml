(* SoC-level redaction (the paper's Fig. 3): hide the inter-IP AXI
   crossbar plus a slice of the core2/core4 bus wrappers behind the
   eFPGA, then show why the wrapper LGC defeats the removal attack.

   Run with: dune exec examples/soc_redaction.exe *)

module N = Shell_netlist
module F = Shell_fabric
module A = Shell_attacks
module C = Shell_core
module Circ = Shell_circuits

let () =
  let soc = Circ.Soc.netlist () in
  Printf.printf "SoC platform: %d cells, %d inputs, %d outputs\n"
    (N.Netlist.num_cells soc)
    (List.length (N.Netlist.inputs soc))
    (List.length (N.Netlist.outputs soc));

  (* Fig. 3(c): eFPGA hosts the Xbar (ROUTE) plus the bus-facing
     wrapper logic of core2 and core4 (LGC) *)
  let config =
    C.Flow.shell_config
      ~target:
        (C.Flow.Fixed
           {
             route = [ "/xbar" ];
             lgc = [ ":wrap_core2"; ":wrap_core4" ];
             label = "AXI Xbar + wrap(core2, core4)";
           })
      ()
  in
  let r = C.Flow.run config soc in
  Format.printf "%a@." C.Flow.pp_summary r;
  Printf.printf "verification: %s\n\n"
    (if C.Flow.verify r then "PASS" else "FAIL");

  (* Removal attack: the adversary replaces the whole fabric with a
     plain crossbar. Against ROUTE-only redaction that works; the
     entangled wrapper LGC changes the block's function and port
     footprint, so the guess is caught. *)
  let oracle = A.Sat_attack.oracle_of_netlist r.C.Flow.cut.C.Extraction.sub in
  let sanity = A.Removal.attempt ~oracle r.C.Flow.cut.C.Extraction.sub in
  Printf.printf "removal attack with the true block (sanity): %s\n"
    (if sanity.A.Removal.matched then "match" else "MISMATCH?");
  let xbar_only_cfg =
    C.Flow.shell_config
      ~target:(C.Flow.Fixed { route = [ "/xbar" ]; lgc = []; label = "xbar" })
      ()
  in
  let xbar_only = (C.Flow.run xbar_only_cfg soc).C.Flow.cut.C.Extraction.sub in
  let same_shape =
    List.length (N.Netlist.inputs xbar_only)
    = List.length (N.Netlist.inputs r.C.Flow.cut.C.Extraction.sub)
    && List.length (N.Netlist.outputs xbar_only)
       = List.length (N.Netlist.outputs r.C.Flow.cut.C.Extraction.sub)
  in
  if same_shape then begin
    let v = A.Removal.attempt ~oracle xbar_only in
    Printf.printf "removal attack with a plain Xbar: %s\n"
      (if v.A.Removal.matched then "MATCH — attack succeeded"
       else "mismatch — attack defeated by the entangled LGC")
  end
  else
    Printf.printf
      "removal attack with a plain Xbar: port shapes differ (the wrapper \
       LGC is woven into the fabric) — attack defeated\n"
