(* Coefficient design-space exploration (the paper's Table VI): sweep
   the Eq. 1 profiles on one benchmark and watch selection, overhead
   and key size move.

   Run with: dune exec examples/coefficient_sweep.exe [benchmark] *)

module N = Shell_netlist
module F = Shell_fabric
module C = Shell_core
module Circ = Shell_circuits

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "SPMV" in
  let entry =
    match Circ.Catalog.find bench with
    | Some e -> e
    | None ->
        Printf.eprintf "unknown benchmark %s (try PicoSoC/AES/FIR/SPMV/DLA)\n"
          bench;
        exit 1
  in
  let nl = entry.Circ.Catalog.netlist () in
  Printf.printf "%s: %d cells\n\n" entry.Circ.Catalog.name (N.Netlist.num_cells nl);
  Printf.printf "%-4s %-6s %-6s %-6s %-8s %-44s\n" "cfg" "A" "P" "D" "key-bits"
    "selected TfR";
  List.iter
    (fun (name, coeffs) ->
      let cfg =
        C.Flow.shell_config ~target:(C.Flow.Auto { coeffs; lgc_depth = 0 }) ()
      in
      let r = C.Flow.run cfg nl in
      let label = r.C.Flow.choice.C.Selection.label in
      let label =
        if String.length label > 44 then String.sub label 0 44 else label
      in
      Printf.printf "%-4s %-6.2f %-6.2f %-6.2f %-8d %s\n" name
        r.C.Flow.overhead.C.Overhead.area r.C.Flow.overhead.C.Overhead.power
        r.C.Flow.overhead.C.Overhead.delay
        (F.Bitstream.length r.C.Flow.emitted.F.Emit.bitstream)
        label)
    C.Score.presets;
  Printf.printf
    "\nc5 is the SheLL choice {h,h,l,l,h,l}: high degree, low \
     closeness/betweenness,\nhigh eigencentrality, low LUT requirement \
     (Table II of the paper).\n"
