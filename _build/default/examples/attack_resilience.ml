(* Attack resilience across the Fig. 1 taxonomy: lock one benchmark
   with each reconfigurability-based scheme and run the oracle-guided
   SAT attack (with cyclic-reduction pre-processing where applicable)
   plus the structural link-prediction proxy.

   Run with: dune exec examples/attack_resilience.exe *)

module N = Shell_netlist
module F = Shell_fabric
module L = Shell_locking
module A = Shell_attacks
module C = Shell_core
module Circ = Shell_circuits

let budget = ("64 DIPs / 120k conflicts / 6 s", 64, 120_000, 6.0)

let describe = function
  | A.Sat_attack.Broken (key, st) ->
      Printf.sprintf "BROKEN in %d DIPs, %d conflicts, %.2fs (key %d bits)"
        st.A.Sat_attack.dips st.A.Sat_attack.conflicts st.A.Sat_attack.elapsed
        (Array.length key)
  | A.Sat_attack.Timeout st ->
      Printf.sprintf "survived budget (%d DIPs, %d conflicts, c2v %.2f)"
        st.A.Sat_attack.dips st.A.Sat_attack.conflicts st.A.Sat_attack.c2v

let () =
  let name, max_dips, max_conflicts, time_limit = budget in
  Printf.printf "attack budget: %s\n\n" name;
  (* a small structured victim keeps the SAT miters tractable, so the
     weak schemes actually fall inside the budget *)
  let nl = Circ.Axi_xbar.netlist ~channels:4 ~data_width:8 () in
  Printf.printf "victim: 4-channel AXI Xbar, %d cells\n\n"
    (N.Netlist.num_cells nl);
  let schemes =
    [
      ("random LUT insertion [17]", L.Schemes.random_lut ~gates:10 nl);
      ("heuristic LUT insertion [18]", L.Schemes.heuristic_lut ~gates:10 nl);
      ("MUX routing locking [3]", L.Schemes.mux_routing ~width:32 nl);
      ("MUX+LUT locking [4,5]", L.Schemes.mux_lut ~width:32 nl);
    ]
  in
  List.iter
    (fun (label, lk) ->
      assert (L.Locked.verify ~original:nl lk);
      let sat =
        A.Sat_attack.attack_locked ~max_dips ~max_conflicts ~time_limit
          ~original:nl lk
      in
      let prox = A.Proximity.predict_links lk in
      Printf.printf
        "%-30s key %4d bits\n  SAT: %s\n  link prediction: %d/%d hidden links\n\n"
        label (L.Locked.key_bits lk) (describe sat)
        prox.A.Proximity.links_correct prox.A.Proximity.links)
    schemes;
  (* eFPGA redaction via SheLL on the same design: redact the data
     routing plus the arbitration logic *)
  let cfg =
    C.Flow.shell_config
      ~target:
        (C.Flow.Fixed
           {
             route = [ ":_xbar_route" ];
             lgc = [ ":_xbar_arb" ];
             label = "Xbar ROUTE + arb LGC";
           })
      ()
  in
  let r = C.Flow.run cfg nl in
  let lk = C.Flow.locked_sub r in
  let oracle = A.Sat_attack.oracle_of_netlist r.C.Flow.cut.C.Extraction.sub in
  let sat =
    A.Sat_attack.run ~max_dips ~max_conflicts ~time_limit
      ~cycle_blocks:r.C.Flow.emitted.F.Emit.cycle_blocks ~oracle
      lk.L.Locked.locked
  in
  let prox = A.Proximity.predict_links lk in
  Printf.printf
    "%-30s key %4d bits\n  SAT: %s\n  link prediction: %d/%d hidden links\n"
    "eFPGA redaction (SheLL)" (L.Locked.key_bits lk) (describe sat)
    prox.A.Proximity.links_correct prox.A.Proximity.links
