(* Quickstart: redact part of a bundled benchmark with SheLL, inspect
   the result, verify, and print the bitstream.

   Run with: dune exec examples/quickstart.exe *)

module N = Shell_netlist
module F = Shell_fabric
module C = Shell_core
module Circ = Shell_circuits

let () =
  (* 1. a design to protect: the bundled PicoSoC-like SoC *)
  let entry =
    match Circ.Catalog.find "PicoSoC" with
    | Some e -> e
    | None -> assert false
  in
  let design = entry.Circ.Catalog.netlist () in
  Printf.printf "design: %s, %d cells\n"
    (N.Netlist.name design)
    (N.Netlist.num_cells design);

  (* 2. configure the flow: SheLL defaults (FABulous + MUX chains,
     shrinking on) with the paper's PicoSoC target *)
  let tfr = entry.Circ.Catalog.tfr_shell in
  let config =
    C.Flow.shell_config
      ~target:
        (C.Flow.Fixed
           {
             route = tfr.Circ.Catalog.route;
             lgc = tfr.Circ.Catalog.lgc;
             label = tfr.Circ.Catalog.label;
           })
      ()
  in

  (* 3. run the eight steps *)
  let r = C.Flow.run config design in
  Format.printf "%a@." C.Flow.pp_summary r;

  (* 4. the secret: the bitstream that restores functionality *)
  let bs = r.C.Flow.emitted.F.Emit.bitstream in
  Printf.printf "bitstream: %d bits, first segments:\n" (F.Bitstream.length bs);
  List.iteri
    (fun i (s : F.Bitstream.segment) ->
      if i < 5 then
        Printf.printf "  %-24s offset %4d, %2d bits\n" s.F.Bitstream.label
          s.F.Bitstream.offset s.F.Bitstream.length)
    (F.Bitstream.segments bs);
  Printf.printf "  ... (%d segments total)\n"
    (List.length (F.Bitstream.segments bs));

  (* 5. end-to-end check: locked design + correct bitstream == original *)
  Printf.printf "sequential verification: %s\n"
    (if C.Flow.verify r then "PASS" else "FAIL");

  (* 6. the locked netlist is ordinary structural Verilog *)
  let text = N.Verilog.to_string r.C.Flow.emitted.F.Emit.locked in
  Printf.printf "locked sub-circuit: %d lines of netlist Verilog\n"
    (List.length (String.split_on_char '\n' text))
