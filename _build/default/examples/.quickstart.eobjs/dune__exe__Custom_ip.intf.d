examples/custom_ip.mli:
