examples/soc_redaction.mli:
