examples/coefficient_sweep.mli:
