examples/quickstart.ml: Format List Printf Shell_circuits Shell_core Shell_fabric Shell_netlist String
