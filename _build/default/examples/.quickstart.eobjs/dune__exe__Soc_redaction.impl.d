examples/soc_redaction.ml: Format List Printf Shell_attacks Shell_circuits Shell_core Shell_fabric Shell_netlist
