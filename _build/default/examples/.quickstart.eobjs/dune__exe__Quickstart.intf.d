examples/quickstart.mli:
