examples/coefficient_sweep.ml: Array List Printf Shell_circuits Shell_core Shell_fabric Shell_netlist String Sys
