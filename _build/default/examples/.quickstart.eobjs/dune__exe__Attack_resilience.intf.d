examples/attack_resilience.mli:
