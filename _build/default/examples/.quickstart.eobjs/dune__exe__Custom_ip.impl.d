examples/custom_ip.ml: Array Format List Printf Shell_core Shell_netlist Shell_rtl
