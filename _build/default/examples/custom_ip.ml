(* Bring your own IP: build a small RTL design with the library's RTL
   API, elaborate it, and push it through the SheLL flow with automatic
   (scored) sub-circuit selection.

   Run with: dune exec examples/custom_ip.exe *)

module M = Shell_rtl.Rtl_module
module E = Shell_rtl.Expr
module N = Shell_netlist
module C = Shell_core

(* A toy stream processor: two lanes of arithmetic behind a selector
   mux and a small control FSM. *)
let design () =
  let m = M.create "stream_proc" in
  M.add_input m "sample" 16;
  M.add_input m "mode" 2;
  M.add_input m "go" 1;
  M.add_output m "out" 16;
  M.add_output m "valid" 1;
  M.add_reg m "acc" 16;
  M.add_reg m "phase" 2;
  M.add_wire m "lane_a" 16;
  M.add_wire m "lane_b" 16;
  M.add_wire m "picked" 16;
  (* two datapath lanes (LGC) *)
  M.add_comb m "lane_alpha"
    [ ("lane_a", E.(var "sample" +: var "acc")) ];
  M.add_comb m "lane_beta"
    [ ("lane_b", E.(var "sample" ^: concat [ slice (var "acc") 7 0; slice (var "acc") 15 8 ])) ];
  (* the inter-lane selector (ROUTE) *)
  M.add_comb m "lane_select"
    [
      ( "picked",
        E.(
          mux (bit (var "mode") 0) (var "lane_a")
            (mux (bit (var "mode") 1) (var "lane_b") (var "acc"))) );
    ];
  M.add_seq m "accumulate"
    [
      ("acc", E.(mux (var "go") (var "picked") (var "acc")));
      ("phase", E.(var "phase" +: lit ~width:2 1));
    ];
  M.add_comb m "status"
    [
      ("out", E.(var "acc"));
      ("valid", E.(var "go" &: (var "phase" ==: lit ~width:2 3)));
    ];
  let d = M.Design.create ~top:"stream_proc" in
  M.Design.add_module d m;
  Shell_rtl.Elab.elaborate d

let () =
  let nl = design () in
  Printf.printf "custom IP: %d cells\n" (N.Netlist.num_cells nl);
  (* show what the connectivity analysis sees *)
  let analysis = C.Connectivity.analyze nl in
  Printf.printf "blocks found by the modular analysis:\n";
  Array.iter
    (fun (b : C.Connectivity.block) ->
      if b.C.Connectivity.name <> "" then
        Printf.printf "  %-28s %3d cells  route-frac %.2f  score %.3f\n"
          b.C.Connectivity.name
          (List.length b.C.Connectivity.cells)
          b.C.Connectivity.route_fraction
          (C.Score.eval C.Score.shell_choice b.C.Connectivity.attrs))
    analysis.C.Connectivity.blocks;
  (* automatic selection with the SheLL coefficient profile *)
  let r = C.Flow.run (C.Flow.shell_config ()) nl in
  Format.printf "@.%a@." C.Flow.pp_summary r;
  Printf.printf "verification: %s\n"
    (if C.Flow.verify r then "PASS" else "FAIL")
