(* Tests for the CDCL solver: hand instances, DIMACS, assumptions,
   incrementality, budgets, and a brute-force differential fuzz. *)

module Solver = Shell_sat.Solver
module Dimacs = Shell_sat.Dimacs
module Rng = Shell_util.Rng

let solve_result =
  Alcotest.testable
    (fun ppf -> function
      | Solver.Sat -> Format.pp_print_string ppf "Sat"
      | Solver.Unsat -> Format.pp_print_string ppf "Unsat"
      | Solver.Unknown -> Format.pp_print_string ppf "Unknown")
    ( = )

let test_trivial_sat () =
  let s = Solver.create () in
  Solver.ensure_vars s 2;
  Solver.add_clause s [ 1; 2 ];
  Solver.add_clause s [ -1; 2 ];
  Alcotest.check solve_result "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "v2 true" true (Solver.value s 2)

let test_trivial_unsat () =
  let s = Solver.create () in
  Solver.ensure_vars s 1;
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ -1 ];
  Alcotest.check solve_result "unsat" Solver.Unsat (Solver.solve s)

let test_empty_clause_unsat () =
  let s = Solver.create () in
  Solver.ensure_vars s 1;
  Solver.add_clause s [ 1; -1 ];  (* tautology: fine *)
  Alcotest.check solve_result "taut sat" Solver.Sat (Solver.solve s);
  Solver.add_clause s [];
  Alcotest.check solve_result "empty clause" Solver.Unsat (Solver.solve s)

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT. var p_ij = 2*(i-1)+j *)
  let s = Solver.create () in
  Solver.ensure_vars s 6;
  for i = 0 to 2 do
    Solver.add_clause s [ (2 * i) + 1; (2 * i) + 2 ]
  done;
  for j = 1 to 2 do
    for i1 = 0 to 2 do
      for i2 = i1 + 1 to 2 do
        Solver.add_clause s [ -((2 * i1) + j); -((2 * i2) + j) ]
      done
    done
  done;
  Alcotest.check solve_result "php(3,2) unsat" Solver.Unsat (Solver.solve s)

let test_assumptions () =
  let s = Solver.create () in
  Solver.ensure_vars s 3;
  Solver.add_clause s [ 1; 2 ];
  Solver.add_clause s [ -1; 3 ];
  Alcotest.check solve_result "assume -2" Solver.Sat
    (Solver.solve ~assumptions:[ -2 ] s);
  Alcotest.(check bool) "forces v1" true (Solver.value s 1);
  Alcotest.(check bool) "forces v3" true (Solver.value s 3);
  Alcotest.check solve_result "conflicting assumptions" Solver.Unsat
    (Solver.solve ~assumptions:[ -1; -2 ] s);
  (* assumptions are not permanent *)
  Alcotest.check solve_result "still sat" Solver.Sat (Solver.solve s)

let test_incremental () =
  let s = Solver.create () in
  Solver.ensure_vars s 4;
  Solver.add_clause s [ 1; 2; 3; 4 ];
  Alcotest.check solve_result "sat" Solver.Sat (Solver.solve s);
  Solver.add_clause s [ -1 ];
  Solver.add_clause s [ -2 ];
  Solver.add_clause s [ -3 ];
  Alcotest.check solve_result "narrowed" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "v4 forced" true (Solver.value s 4);
  Solver.add_clause s [ -4 ];
  Alcotest.check solve_result "now unsat" Solver.Unsat (Solver.solve s)

let test_budget_unknown () =
  (* hard random instance at the phase transition with a 1-conflict
     budget is (almost surely) cut short *)
  let rng = Rng.create 77 in
  let s = Solver.create () in
  let nv = 60 in
  Solver.ensure_vars s nv;
  for _ = 1 to int_of_float (4.26 *. float_of_int nv) do
    let lit () =
      let v = 1 + Rng.int rng nv in
      if Rng.bool rng then v else -v
    in
    Solver.add_clause s [ lit (); lit (); lit () ]
  done;
  match Solver.solve ~max_conflicts:1 s with
  | Solver.Unknown | Solver.Sat | Solver.Unsat -> ()
(* any verdict is legal; the call must terminate fast — implicitly
   checked by the test timeout *)

let test_dimacs_roundtrip () =
  let src = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let p = Dimacs.parse src in
  Alcotest.(check int) "vars" 3 p.Dimacs.nvars;
  Alcotest.(check int) "clauses" 2 (List.length p.Dimacs.clauses);
  let p2 = Dimacs.parse (Dimacs.print p) in
  Alcotest.(check bool) "roundtrip" true (p.Dimacs.clauses = p2.Dimacs.clauses)

let test_dimacs_solve () =
  Alcotest.check solve_result "sat instance" Solver.Sat
    (Dimacs.solve_string "p cnf 2 2\n1 2 0\n-1 2 0\n");
  Alcotest.check solve_result "unsat instance" Solver.Unsat
    (Dimacs.solve_string "p cnf 1 2\n1 0\n-1 0\n")

let test_dimacs_errors () =
  List.iter
    (fun src ->
      match Dimacs.parse src with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail ("accepted: " ^ src))
    [ "1 2 0\n"; "p cnf x 1\n1 0\n" ]

(* differential fuzz against brute force *)
let brute nvars clauses =
  let rec go v assign =
    if v > nvars then
      List.for_all
        (fun c ->
          List.exists
            (fun l -> if l > 0 then assign.(l) else not assign.(-l))
            c)
        clauses
    else begin
      assign.(v) <- false;
      go (v + 1) assign
      ||
      (assign.(v) <- true;
       go (v + 1) assign)
    end
  in
  go 1 (Array.make (nvars + 1) false)

let test_fuzz_vs_brute =
  QCheck.Test.make ~name:"cdcl agrees with brute force" ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nvars = 3 + Rng.int rng 10 in
      let nclauses = 2 + Rng.int rng (4 * nvars) in
      let clauses =
        List.init nclauses (fun _ ->
            let len = 1 + Rng.int rng 3 in
            List.init len (fun _ ->
                let v = 1 + Rng.int rng nvars in
                if Rng.bool rng then v else -v))
      in
      let expected = brute nvars clauses in
      let s = Solver.create () in
      Solver.ensure_vars s nvars;
      List.iter (Solver.add_clause s) clauses;
      match (Solver.solve s, expected) with
      | Solver.Sat, true ->
          (* the model must actually satisfy every clause *)
          List.for_all
            (fun c ->
              List.exists
                (fun l ->
                  let v = Solver.value s (abs l) in
                  if l > 0 then v else not v)
                c)
            clauses
      | Solver.Unsat, false -> true
      | _ -> false)

let test_conflicts_counter () =
  let s = Solver.create () in
  Solver.ensure_vars s 8;
  (* xor-ish chain to force conflicts *)
  for v = 1 to 7 do
    Solver.add_clause s [ v; v + 1 ];
    Solver.add_clause s [ -v; -(v + 1) ]
  done;
  ignore (Solver.solve s);
  Alcotest.(check bool) "conflicts non-negative" true (Solver.num_conflicts s >= 0)

let suite =
  [
    ("trivial sat", `Quick, test_trivial_sat);
    ("trivial unsat", `Quick, test_trivial_unsat);
    ("tautology and empty clause", `Quick, test_empty_clause_unsat);
    ("pigeonhole 3-2", `Quick, test_pigeonhole_3_2);
    ("assumptions", `Quick, test_assumptions);
    ("incremental", `Quick, test_incremental);
    ("budget returns", `Quick, test_budget_unknown);
    ("dimacs roundtrip", `Quick, test_dimacs_roundtrip);
    ("dimacs solve", `Quick, test_dimacs_solve);
    ("dimacs errors", `Quick, test_dimacs_errors);
    QCheck_alcotest.to_alcotest test_fuzz_vs_brute;
    ("conflicts counter", `Quick, test_conflicts_counter);
  ]
