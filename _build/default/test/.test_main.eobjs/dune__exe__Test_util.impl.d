test/test_util.ml: Alcotest Array Fun Hashtbl Int64 List QCheck QCheck_alcotest Shell_util
