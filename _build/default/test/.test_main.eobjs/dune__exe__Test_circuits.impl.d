test/test_circuits.ml: Alcotest Array Fun List Shell_circuits Shell_netlist Shell_rtl Shell_synth String
