test/test_pnr.ml: Alcotest Array Hashtbl List Printf Shell_fabric Shell_netlist Shell_pnr Shell_synth Shell_util String
