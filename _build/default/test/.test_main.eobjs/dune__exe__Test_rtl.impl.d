test/test_rtl.ml: Alcotest Array List Printf Shell_netlist Shell_rtl
