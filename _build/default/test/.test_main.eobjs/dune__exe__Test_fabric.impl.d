test/test_fabric.ml: Alcotest Array List Printf Shell_fabric Shell_netlist Shell_synth Shell_util String
