test/test_graph.ml: Alcotest Array List Shell_graph
