test/test_core.ml: Alcotest Array Float Lazy List Printf Result Shell_circuits Shell_core Shell_fabric Shell_locking Shell_netlist Shell_pnr
