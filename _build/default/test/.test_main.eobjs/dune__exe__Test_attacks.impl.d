test/test_attacks.ml: Alcotest Array List Printf Shell_attacks Shell_fabric Shell_locking Shell_netlist Shell_synth Shell_util
