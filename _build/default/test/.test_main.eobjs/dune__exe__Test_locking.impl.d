test/test_locking.ml: Alcotest Array List Printf Shell_locking Shell_netlist Shell_util
