test/test_netlist.ml: Alcotest Array List Printf QCheck QCheck_alcotest Result Shell_core Shell_locking Shell_netlist Shell_sat Shell_util String
