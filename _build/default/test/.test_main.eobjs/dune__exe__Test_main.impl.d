test/test_main.ml: Alcotest Test_attacks Test_circuits Test_core Test_fabric Test_graph Test_locking Test_netlist Test_pnr Test_rtl Test_sat Test_synth Test_util
