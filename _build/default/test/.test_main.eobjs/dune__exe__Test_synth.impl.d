test/test_synth.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Shell_netlist Shell_synth Shell_util
