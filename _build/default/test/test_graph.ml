(* Tests for shell_graph: digraph structure and centrality measures. *)

module D = Shell_graph.Digraph
module C = Shell_graph.Centrality

(* diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
let diamond () = D.make ~n:4 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

(* chain: 0 -> 1 -> 2 -> 3 -> 4 *)
let chain () = D.make ~n:5 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4) ]

let test_degrees () =
  let g = diamond () in
  Alcotest.(check int) "out 0" 2 (D.out_degree g 0);
  Alcotest.(check int) "in 3" 2 (D.in_degree g 3);
  Alcotest.(check int) "in 0" 0 (D.in_degree g 0);
  Alcotest.(check int) "edges" 4 (D.num_edges g)

let test_duplicate_edges () =
  let g = D.make ~n:2 ~edges:[ (0, 1); (0, 1); (0, 1) ] in
  Alcotest.(check int) "deduplicated" 1 (D.num_edges g)

let test_bfs () =
  let g = chain () in
  let d = D.bfs_from g [ 0 ] in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] d;
  let back = D.bfs_from g ~reverse:true [ 4 ] in
  Alcotest.(check (array int)) "reverse distances" [| 4; 3; 2; 1; 0 |] back

let test_bfs_unreachable () =
  let g = D.make ~n:3 ~edges:[ (0, 1) ] in
  let d = D.bfs_from g [ 0 ] in
  Alcotest.(check int) "unreachable" max_int d.(2)

let test_coverage () =
  let g = chain () in
  Alcotest.(check (float 1e-9)) "middle covers all" 1.0 (D.coverage g [ 2 ]);
  let g2 = D.make ~n:4 ~edges:[ (0, 1) ] in
  Alcotest.(check (float 1e-9)) "half covered" 0.5 (D.coverage g2 [ 0 ])

let test_topo () =
  match D.topo_order (diamond ()) with
  | None -> Alcotest.fail "diamond is acyclic"
  | Some order ->
      let pos = Array.make 4 0 in
      Array.iteri (fun p v -> pos.(v) <- p) order;
      Alcotest.(check bool) "0 before 3" true (pos.(0) < pos.(3))

let test_topo_cycle () =
  let g = D.make ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "no topo order" true (D.topo_order g = None);
  Alcotest.(check bool) "cyclic" true (D.is_cyclic g)

let test_sccs () =
  let g = D.make ~n:5 ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ] in
  let sccs = D.sccs g in
  Alcotest.(check int) "three components" 3 (List.length sccs);
  let big = List.find (fun c -> List.length c = 3) sccs in
  Alcotest.(check (list int)) "cycle component" [ 0; 1; 2 ]
    (List.sort compare big)

let test_self_loop_cyclic () =
  let g = D.make ~n:2 ~edges:[ (0, 0); (0, 1) ] in
  Alcotest.(check bool) "self loop is a cycle" true (D.is_cyclic g)

let test_transpose () =
  let g = diamond () in
  let t = D.transpose g in
  Alcotest.(check bool) "edge reversed" true (D.has_edge t 3 1);
  Alcotest.(check bool) "edge gone" false (D.has_edge t 1 3)

let test_degree_centrality () =
  let g = diamond () in
  let ic = C.in_degree g in
  Alcotest.(check (float 1e-9)) "sink has max in-degree" 1.0 ic.(3);
  Alcotest.(check (float 1e-9)) "source has zero" 0.0 ic.(0)

let test_closeness () =
  let g = chain () in
  let cl = C.closeness g ~sources:[ 0 ] ~sinks:[ 4 ] in
  (* endpoints are closest to the I/O boundary, the middle farthest *)
  Alcotest.(check bool) "ends beat middle" true
    (cl.(0) > cl.(2) && cl.(4) > cl.(2))

let test_betweenness_chain () =
  let g = chain () in
  let b = C.betweenness g ~sources:[ 0 ] ~sinks:[ 4 ] in
  Alcotest.(check bool) "interior maximal" true
    (b.(2) > 0.0 && b.(0) = 0.0);
  Alcotest.(check bool) "all interior equal" true (b.(1) = b.(2) && b.(2) = b.(3))

let test_betweenness_bypass () =
  (* 0->1->3 and 0->2a->2b->3: node 1 carries the only shortest path *)
  let g = D.make ~n:5 ~edges:[ (0, 1); (1, 4); (0, 2); (2, 3); (3, 4) ] in
  let b = C.betweenness g ~sources:[ 0 ] ~sinks:[ 4 ] in
  Alcotest.(check bool) "short path node wins" true (b.(1) > b.(2))

let test_eigenvector () =
  (* star: center connected to all leaves *)
  let g = D.make ~n:5 ~edges:[ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  let e = C.eigenvector g in
  Alcotest.(check (float 1e-6)) "center maximal" 1.0 e.(0);
  Alcotest.(check bool) "leaves below" true (e.(1) < 1.0)

let suite =
  [
    ("degrees", `Quick, test_degrees);
    ("duplicate edges", `Quick, test_duplicate_edges);
    ("bfs", `Quick, test_bfs);
    ("bfs unreachable", `Quick, test_bfs_unreachable);
    ("coverage", `Quick, test_coverage);
    ("topo order", `Quick, test_topo);
    ("topo cycle", `Quick, test_topo_cycle);
    ("sccs", `Quick, test_sccs);
    ("self loop cyclic", `Quick, test_self_loop_cyclic);
    ("transpose", `Quick, test_transpose);
    ("degree centrality", `Quick, test_degree_centrality);
    ("closeness", `Quick, test_closeness);
    ("betweenness chain", `Quick, test_betweenness_chain);
    ("betweenness bypass", `Quick, test_betweenness_bypass);
    ("eigenvector", `Quick, test_eigenvector);
  ]
