(* Tests for shell_rtl: expression widths, elaboration semantics,
   hierarchy flattening, origin tagging, and error reporting. *)

module M = Shell_rtl.Rtl_module
module E = Shell_rtl.Expr
module Elab = Shell_rtl.Elab
module N = Shell_netlist.Netlist
module Sim = Shell_netlist.Sim

let bits v w = Array.init w (fun i -> v land (1 lsl i) <> 0)

let to_int arr lo n =
  let v = ref 0 in
  for i = 0 to n - 1 do
    if arr.(lo + i) then v := !v lor (1 lsl i)
  done;
  !v

let single_module build =
  let m = M.create "top" in
  build m;
  let d = M.Design.create ~top:"top" in
  M.Design.add_module d m;
  Elab.elaborate d

let test_width_inference () =
  let env = function "a" -> 8 | "b" -> 8 | "c" -> 1 | _ -> raise Not_found in
  let w e = E.width_exn ~env e in
  Alcotest.(check int) "add" 8 (w E.(var "a" +: var "b"));
  Alcotest.(check int) "eq" 1 (w E.(var "a" ==: var "b"));
  Alcotest.(check int) "concat" 16 (w (E.Concat (E.var "a", E.var "b")));
  Alcotest.(check int) "slice" 4 (w (E.slice (E.var "a") 5 2));
  Alcotest.(check int) "mux" 8 (w (E.mux (E.var "c") (E.var "a") (E.var "b")));
  Alcotest.(check int) "reduce" 1 (w (E.Reduce_xor (E.var "a")))

let test_width_errors () =
  let env = function "a" -> 8 | "b" -> 4 | _ -> raise Not_found in
  List.iter
    (fun e ->
      match E.width_exn ~env e with
      | exception E.Width_error _ -> ()
      | _ -> Alcotest.fail "accepted bad widths")
    [
      E.(var "a" +: var "b");
      E.slice (E.var "b") 4 0;
      E.mux (E.var "a") (E.var "b") (E.var "b");
    ]

let test_vars () =
  let e = E.(var "x" +: mux (var "s") (var "x") (var "y")) in
  Alcotest.(check (list string)) "free vars once" [ "x"; "s"; "y" ] (E.vars e)

let test_arith_semantics () =
  let nl =
    single_module (fun m ->
        M.add_input m "a" 8;
        M.add_input m "b" 8;
        M.add_output m "sum" 8;
        M.add_output m "diff" 8;
        M.add_output m "lt" 1;
        M.add_output m "eq" 1;
        M.add_comb m "ops"
          [
            ("sum", E.(var "a" +: var "b"));
            ("diff", E.(var "a" -: var "b"));
            ("lt", E.(var "a" <: var "b"));
            ("eq", E.(var "a" ==: var "b"));
          ])
  in
  let sim = Sim.create nl in
  List.iter
    (fun (a, b) ->
      let outs = Sim.eval_comb sim (Array.append (bits a 8) (bits b 8)) in
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" a b)
        ((a + b) land 0xff) (to_int outs 0 8);
      Alcotest.(check int)
        (Printf.sprintf "%d-%d" a b)
        ((a - b) land 0xff) (to_int outs 8 8);
      Alcotest.(check bool) "lt" (a < b) outs.(16);
      Alcotest.(check bool) "eq" (a = b) outs.(17))
    [ (0, 0); (1, 2); (255, 1); (128, 127); (200, 200); (17, 253) ]

let test_reduce_semantics () =
  let nl =
    single_module (fun m ->
        M.add_input m "a" 4;
        M.add_output m "rand" 1;
        M.add_output m "ror" 1;
        M.add_output m "rxor" 1;
        M.add_comb m "red"
          [
            ("rand", E.Reduce_and (E.var "a"));
            ("ror", E.Reduce_or (E.var "a"));
            ("rxor", E.Reduce_xor (E.var "a"));
          ])
  in
  let sim = Sim.create nl in
  for v = 0 to 15 do
    let outs = Sim.eval_comb sim (bits v 4) in
    Alcotest.(check bool) "and" (v = 15) outs.(0);
    Alcotest.(check bool) "or" (v <> 0) outs.(1);
    let pop = ref 0 in
    for i = 0 to 3 do
      if v land (1 lsl i) <> 0 then incr pop
    done;
    Alcotest.(check bool) "xor" (!pop mod 2 = 1) outs.(2)
  done

let test_register_semantics () =
  let nl =
    single_module (fun m ->
        M.add_input m "d" 4;
        M.add_output m "q" 4;
        M.add_reg m "r" 4;
        M.add_seq m "ff" [ ("r", E.var "d") ];
        M.add_comb m "out" [ ("q", E.var "r") ])
  in
  let sim = Sim.create nl in
  let o1 = Sim.step sim (bits 9 4) in
  Alcotest.(check int) "reset value" 0 (to_int o1 0 4);
  let o2 = Sim.step sim (bits 5 4) in
  Alcotest.(check int) "one cycle later" 9 (to_int o2 0 4)

let test_hierarchy_and_origins () =
  let leaf = M.create "leaf" in
  M.add_input leaf "x" 4;
  M.add_output leaf "y" 4;
  M.add_comb leaf "invert" [ ("y", E.(~:(var "x"))) ];
  let top = M.create "top" in
  M.add_input top "a" 4;
  M.add_output top "z" 4;
  M.add_wire top "mid" 4;
  M.add_instance top ~inst_name:"u0" ~module_name:"leaf"
    ~bindings:[ ("x", "a"); ("y", "mid") ];
  M.add_instance top ~inst_name:"u1" ~module_name:"leaf"
    ~bindings:[ ("x", "mid"); ("y", "z") ];
  let d = M.Design.create ~top:"top" in
  M.Design.add_module d top;
  M.Design.add_module d leaf;
  let nl = Elab.elaborate d in
  (* double inversion = identity *)
  let sim = Sim.create nl in
  Alcotest.(check int) "identity" 11 (to_int (Sim.eval_comb sim (bits 11 4)) 0 4);
  (* uniquified origins: both instances present *)
  let origins = List.map fst (Elab.module_footprint nl) in
  Alcotest.(check bool) "u0 tagged" true
    (List.exists (fun o -> o = "top/u0:invert") origins);
  Alcotest.(check bool) "u1 tagged" true
    (List.exists (fun o -> o = "top/u1:invert") origins)

let expect_elab_error build =
  let d = M.Design.create ~top:"top" in
  let m = M.create "top" in
  build m;
  M.Design.add_module d m;
  match Elab.elaborate d with
  | exception Elab.Elab_error _ -> ()
  | _ -> Alcotest.fail "elaboration should fail"

let test_undriven_signal () =
  expect_elab_error (fun m ->
      M.add_input m "a" 1;
      M.add_output m "y" 1;
      M.add_wire m "w" 1;
      M.add_comb m "blk" [ ("y", E.var "w") ])

let test_double_driver () =
  expect_elab_error (fun m ->
      M.add_input m "a" 1;
      M.add_output m "y" 1;
      M.add_comb m "b1" [ ("y", E.var "a") ];
      M.add_comb m "b2" [ ("y", E.(~:(var "a"))) ])

let test_unknown_module () =
  expect_elab_error (fun m ->
      M.add_input m "a" 1;
      M.add_output m "y" 1;
      M.add_instance m ~inst_name:"u" ~module_name:"ghost"
        ~bindings:[ ("x", "a"); ("y", "y") ])

let test_width_mismatch_in_assign () =
  expect_elab_error (fun m ->
      M.add_input m "a" 4;
      M.add_output m "y" 8;
      M.add_comb m "blk" [ ("y", E.var "a") ])

let test_duplicate_signal () =
  let m = M.create "top" in
  M.add_input m "a" 1;
  match M.add_wire m "a" 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let suite =
  [
    ("width inference", `Quick, test_width_inference);
    ("width errors", `Quick, test_width_errors);
    ("free variables", `Quick, test_vars);
    ("arithmetic semantics", `Quick, test_arith_semantics);
    ("reduce semantics", `Quick, test_reduce_semantics);
    ("register semantics", `Quick, test_register_semantics);
    ("hierarchy + origins", `Quick, test_hierarchy_and_origins);
    ("undriven signal", `Quick, test_undriven_signal);
    ("double driver", `Quick, test_double_driver);
    ("unknown module", `Quick, test_unknown_module);
    ("assign width mismatch", `Quick, test_width_mismatch_in_assign);
    ("duplicate signal", `Quick, test_duplicate_signal);
  ]
