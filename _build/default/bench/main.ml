(* Regenerates every table and figure of the paper's evaluation
   (DESIGN.md section 3 maps each to its modules), then runs Bechamel
   micro-benchmarks of the core kernels.

   Usage: main.exe [table1|table4|table5|table6|table7|
                    fig1|fig2|fig3|fig4|micro|all]  (default: all)

   Budgets here stand in for the paper's 48-hour SAT timeout: a case
   is reported "resilient" when the attack exhausts its budget. *)

module N = Shell_netlist
module F = Shell_fabric
module S = Shell_synth
module P = Shell_pnr
module L = Shell_locking
module A = Shell_attacks
module C = Shell_core
module Circ = Shell_circuits

let printf = Printf.printf

let heading title =
  printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let tfr (t : Circ.Catalog.tfr) =
  {
    C.Baselines.route = t.Circ.Catalog.route;
    lgc = t.Circ.Catalog.lgc;
    label = t.Circ.Catalog.label;
  }

let cases_of (e : Circ.Catalog.entry) =
  C.Baselines.all
    ~case1:(tfr e.Circ.Catalog.tfr_case1)
    ~case2:(tfr e.Circ.Catalog.tfr_case2)
    ~case3:(tfr e.Circ.Catalog.tfr_case3)
    ~shell:(tfr e.Circ.Catalog.tfr_shell)

(* Attack budget used to declare resilience in the tables. *)
let attack_budget = (`Dips 64, `Conflicts 120_000, `Seconds 6.0)

let run_sat_attack ?(budget = attack_budget) (r : C.Flow.result) =
  let `Dips max_dips, `Conflicts max_conflicts, `Seconds time_limit = budget in
  let lk = C.Flow.locked_sub r in
  let oracle = A.Sat_attack.oracle_of_netlist r.C.Flow.cut.C.Extraction.sub in
  A.Sat_attack.run ~max_dips ~max_conflicts ~time_limit
    ~cycle_blocks:r.C.Flow.emitted.F.Emit.cycle_blocks ~oracle
    lk.L.Locked.locked

let resilience_tag = function
  | A.Sat_attack.Broken (_, st) ->
      Printf.sprintf "BROKEN (%d DIPs)" st.A.Sat_attack.dips
  | A.Sat_attack.Timeout st ->
      Printf.sprintf "resilient (%d DIPs, %d conflicts)" st.A.Sat_attack.dips
        st.A.Sat_attack.conflicts

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let paper_table1 =
  [
    ("OpenFPGA", "1650 M2s", "650 DFFs", "-");
    ("FABulous (std cell)", "560 M4s + 80 M2s", "20 CFFs", "650");
    ("FABulous (std cell w/ mux chain)", "185 M4s + 63 M2s", "12 CFFs", "431");
  ]

let table1 () =
  heading "Table I: Resource utilization, ROUTE circuit (8-AXI-channel Xbar)";
  let xbar = Circ.Axi_xbar.netlist () in
  printf "xbar: %d cells, route fraction %.2f\n\n"
    (N.Netlist.num_cells xbar)
    (S.Mux_chain.route_fraction xbar);
  printf "%-34s %-22s %-12s %s\n" "Tool" "Multiplexer" "Flip Flop" "Latch";
  List.iter
    (fun style ->
      let cfg =
        {
          (C.Flow.shell_config
             ~target:
               (C.Flow.Fixed
                  { route = [ ":_xbar_route"; ":_xbar_arb" ]; lgc = []; label = "xbar" })
             ())
          with
          C.Flow.style;
          shrink = true;
        }
      in
      let r = C.Flow.run cfg xbar in
      printf "%s\n"
        (Format.asprintf "%a" F.Resources.pp_table1_row
           (style, r.C.Flow.resources)))
    F.Style.all;
  printf "\npaper reported:\n";
  List.iter
    (fun (a, b, c, d) -> printf "%-34s %-22s %-12s %s\n" a b c d)
    paper_table1

(* ------------------------------------------------------------------ *)
(* Table IV                                                            *)
(* ------------------------------------------------------------------ *)

let paper_table4 =
  [
    ("PicoSoC", [ (1.74, 1.95, 2.11); (1.87, 1.97, 2.28); (1.71, 1.88, 1.94); (1.39, 1.45, 1.47) ]);
    ("AES", [ (2.11, 2.34, 3.15); (2.07, 2.33, 3.25); (1.98, 1.94, 2.22); (1.38, 1.51, 1.55) ]);
    ("FIR", [ (2.97, 3.11, 4.02); (3.17, 3.21, 4.14); (2.89, 2.99, 3.23); (1.66, 1.77, 1.82) ]);
    ("SPMV", [ (1.57, 1.73, 2.61); (1.69, 1.88, 2.74); (1.94, 2.03, 2.88); (1.36, 1.41, 1.52) ]);
    ("DLA", [ (1.41, 1.57, 2.34); (1.55, 1.72, 2.66); (1.60, 1.74, 2.44); (1.29, 1.33, 1.40) ]);
  ]

let table4 ?(attack = true) () =
  heading "Table IV: Comparative (normalized) overhead, Cases 1-4";
  List.iter
    (fun (e : Circ.Catalog.entry) ->
      let nl = e.Circ.Catalog.netlist () in
      let paper = List.assoc e.Circ.Catalog.name paper_table4 in
      printf "\n%s (%s): %d cells\n" e.Circ.Catalog.name
        e.Circ.Catalog.description (N.Netlist.num_cells nl);
      List.iteri
        (fun i (name, cfg) ->
          let r = C.Flow.run cfg nl in
          let pa, pp_, pd = List.nth paper i in
          let sec =
            if attack then "  SAT: " ^ resilience_tag (run_sat_attack r)
            else ""
          in
          printf "  %-32s A=%.2f P=%.2f D=%.2f   (paper %.2f/%.2f/%.2f)%s\n"
            name r.C.Flow.overhead.C.Overhead.area
            r.C.Flow.overhead.C.Overhead.power r.C.Flow.overhead.C.Overhead.delay
            pa pp_ pd sec;
          flush stdout)
        (cases_of e))
    Circ.Catalog.all

(* ------------------------------------------------------------------ *)
(* Table V: same (ROUTE-based) TfR for every case                      *)
(* ------------------------------------------------------------------ *)

let paper_table5 =
  [
    ("PicoSoC", [ (1.993, 2.162, 2.674); (1.994, 2.161, 2.676); (1.756, 2.036, 2.214); (1.390, 1.447, 1.473) ]);
    ("AES", [ (2.505, 2.814, 3.450); (2.505, 2.814, 3.450); (2.274, 2.470, 2.715); (1.384, 1.509, 1.548) ]);
    ("FIR", [ (3.251, 3.50, 4.68); (3.421, 3.559, 4.697); (3.31, 3.57, 3.82); (1.663, 1.768, 1.816) ]);
  ]

let table5 () =
  heading "Table V: same ROUTE-based target for all cases";
  List.iter
    (fun (name, paper) ->
      match Circ.Catalog.find name with
      | None -> ()
      | Some e ->
          let nl = e.Circ.Catalog.netlist () in
          let shell_t = tfr e.Circ.Catalog.tfr_shell in
          printf "\n%s (TfR: %s)\n" name shell_t.C.Baselines.label;
          let cases =
            C.Baselines.all ~case1:shell_t ~case2:shell_t ~case3:shell_t
              ~shell:shell_t
          in
          List.iteri
            (fun i (cname, cfg) ->
              let r = C.Flow.run cfg nl in
              let pa, pp_, pd = List.nth paper i in
              printf "  %-32s A=%.3f P=%.3f D=%.3f   (paper %.3f/%.3f/%.3f)\n"
                cname r.C.Flow.overhead.C.Overhead.area
                r.C.Flow.overhead.C.Overhead.power
                r.C.Flow.overhead.C.Overhead.delay pa pp_ pd)
            cases)
    paper_table5

(* ------------------------------------------------------------------ *)
(* Table VI: coefficient sweep                                         *)
(* ------------------------------------------------------------------ *)

let paper_table6 =
  [
    ("PicoSoC", [ (1.58, 1.59, 1.97); (1.41, 1.58, 1.45); (1.42, 1.46, 1.46); (1.81, 1.93, 1.99); (1.39, 1.45, 1.47) ]);
    ("AES", [ (1.64, 1.77, 1.88); (1.55, 1.61, 1.77); (1.43, 1.46, 1.60); (2.24, 2.36, 2.77); (1.38, 1.51, 1.55) ]);
    ("FIR", [ (1.88, 2.01, 2.06); (1.75, 1.79, 1.99); (1.65, 1.69, 1.94); (2.33, 2.50, 2.94); (1.66, 1.77, 1.82) ]);
    ("SPMV", [ (1.66, 1.70, 1.83); (1.36, 1.41, 1.64); (1.35, 1.42, 1.58); (1.77, 1.78, 2.08); (1.36, 1.41, 1.52) ]);
    ("DLA", [ (1.36, 1.45, 1.59); (1.31, 1.32, 1.55); (1.38, 1.53, 1.95); (1.58, 1.64, 2.09); (1.29, 1.33, 1.40) ]);
  ]

(* the paper strikes through the cells its SAT attack broke *)
let paper_broken = [ ("AES", "c2") ]

let table6 ?(attack = true) () =
  heading "Table VI: coefficient profiles for sub-circuit selection";
  List.iter
    (fun (e : Circ.Catalog.entry) ->
      let nl = e.Circ.Catalog.netlist () in
      let paper = List.assoc e.Circ.Catalog.name paper_table6 in
      printf "\n%s\n" e.Circ.Catalog.name;
      List.iteri
        (fun i (cname, coeffs) ->
          let cfg =
            C.Flow.shell_config
              ~target:(C.Flow.Auto { coeffs; lgc_depth = 0 })
              ()
          in
          let r = C.Flow.run cfg nl in
          let pa, pp_, pd = List.nth paper i in
          let sec =
            if attack then "  SAT: " ^ resilience_tag (run_sat_attack r)
            else ""
          in
          let expect =
            if List.mem (e.Circ.Catalog.name, cname) paper_broken then
              " [paper: broken]"
            else ""
          in
          printf
            "  %-3s A=%.2f P=%.2f D=%.2f (paper %.2f/%.2f/%.2f)  TfR: %-40s%s%s\n"
            cname r.C.Flow.overhead.C.Overhead.area
            r.C.Flow.overhead.C.Overhead.power
            r.C.Flow.overhead.C.Overhead.delay pa pp_ pd
            (let l = r.C.Flow.choice.C.Selection.label in
             if String.length l > 40 then String.sub l 0 40 else l)
            sec expect;
          flush stdout)
        C.Score.presets)
    Circ.Catalog.all

(* ------------------------------------------------------------------ *)
(* Table VII: LGC/ROUTE correlation depth                              *)
(* ------------------------------------------------------------------ *)

let paper_table7 =
  [
    ("PicoSoC", [ (2.717, 2.957, 4.621); (2.640, 2.928, 4.311); (1.390, 1.447, 1.473) ]);
    ("AES", [ (3.180, 3.347, 5.174); (3.215, 3.451, 5.318); (1.384, 1.509, 1.548) ]);
    ("FIR", [ (3.554, 3.701, 5.138); (3.439, 3.766, 5.082); (1.663, 1.768, 1.816) ]);
  ]

let table7 () =
  heading "Table VII: LGC/ROUTE correlation (node distance) vs overhead";
  List.iter
    (fun (name, paper) ->
      match Circ.Catalog.find name with
      | None -> ()
      | Some e ->
          let nl = e.Circ.Catalog.netlist () in
          printf "\n%s\n" name;
          let route = e.Circ.Catalog.tfr_shell.Circ.Catalog.route in
          List.iteri
            (fun i depth ->
              let cfg =
                C.Flow.shell_config
                  ~target:(C.Flow.Route_with_lgc_depth { route; depth })
                  ()
              in
              let r = C.Flow.run cfg nl in
              let pa, pp_, pd = List.nth paper i in
              printf
                "  depth %d: A=%.3f P=%.3f D=%.3f (paper %.3f/%.3f/%.3f)  pins=%d\n"
                depth r.C.Flow.overhead.C.Overhead.area
                r.C.Flow.overhead.C.Overhead.power
                r.C.Flow.overhead.C.Overhead.delay pa pp_ pd
                r.C.Flow.resources.F.Resources.io_pins)
            [ 2; 1; 0 ])
    paper_table7

(* ------------------------------------------------------------------ *)
(* Fig. 1: the locking taxonomy, attacked                              *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  heading "Fig. 1: reconfigurability-based locking taxonomy under attack";
  (* a small structured victim keeps the miter tractable so the weak
     schemes actually fall within the budget *)
  let nl = Circ.Axi_xbar.netlist ~channels:4 ~data_width:8 () in
  printf "victim: 4-channel Xbar (%d cells); budget 128 DIPs / 200k conflicts / 20 s\n"
    (N.Netlist.num_cells nl);
  let schemes =
    [
      ("(a) random LUT insertion [17]", L.Schemes.random_lut ~gates:10 nl);
      ("(b) heuristic LUT insertion [18]", L.Schemes.heuristic_lut ~gates:10 nl);
      ("(c) MUX routing locking [3]", L.Schemes.mux_routing ~width:32 nl);
      ("(d) MUX+LUT locking [4,5]", L.Schemes.mux_lut ~width:32 nl);
    ]
  in
  List.iter
    (fun (name, lk) ->
      assert (L.Locked.verify ~original:nl lk);
      let out =
        A.Sat_attack.attack_locked ~max_dips:128 ~max_conflicts:200_000
          ~time_limit:20.0 ~original:nl lk
      in
      let prox = A.Proximity.predict_links lk in
      printf "  %-36s key=%4d bits  SAT: %-36s  link prediction %d/%d (%.0f%%)\n"
        name (L.Locked.key_bits lk) (resilience_tag out)
        prox.A.Proximity.links_correct prox.A.Proximity.links
        (100.0 *. prox.A.Proximity.link_accuracy);
      flush stdout)
    schemes;
  (* (e) eFPGA redaction: scored selection over the desX layers *)
  let r = C.Flow.run (C.Flow.shell_config ()) nl in
  let lk = C.Flow.locked_sub r in
  let oracle = A.Sat_attack.oracle_of_netlist r.C.Flow.cut.C.Extraction.sub in
  let out =
    A.Sat_attack.run ~max_dips:64 ~max_conflicts:200_000 ~time_limit:20.0
      ~cycle_blocks:r.C.Flow.emitted.F.Emit.cycle_blocks ~oracle
      lk.L.Locked.locked
  in
  let prox = A.Proximity.predict_links lk in
  printf "  %-36s key=%4d bits  SAT: %-36s  link prediction %d/%d (%.0f%%)\n"
    "(e) eFPGA redaction (SheLL)" (L.Locked.key_bits lk) (resilience_tag out)
    prox.A.Proximity.links_correct prox.A.Proximity.links
    (100.0 *. prox.A.Proximity.link_accuracy)

(* ------------------------------------------------------------------ *)
(* Fig. 2: OpenFPGA square-fabric utilization on desX                  *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  heading "Fig. 2: inefficient square mapping in OpenFPGA (desX on 7x7)";
  let nl = Circ.Desx.netlist () in
  let mapped, st = S.Lut_map.map ~k:4 (S.Opt.simplify nl) in
  let res = P.Pnr.fit_loop ~style:F.Style.Openfpga mapped in
  let fab = res.P.Pnr.fabric in
  printf "  desX: %d gates -> %d LUTs\n" (N.Netlist.num_cells nl) st.S.Lut_map.luts;
  printf "  OpenFPGA fabric: %dx%d (%d tiles), used tiles %d, unused %d\n"
    fab.F.Fabric.cols fab.F.Fabric.rows (F.Fabric.clb_tiles fab)
    res.P.Pnr.placement.P.Pnr.used_tiles
    (F.Fabric.clb_tiles fab - res.P.Pnr.placement.P.Pnr.used_tiles);
  printf "  LUT utilization %.1f%%, tile utilization %.1f%%\n"
    (100.0 *. res.P.Pnr.utilization)
    (100.0 *. res.P.Pnr.tile_utilization);
  let packed_tiles = (st.S.Lut_map.luts + 7) / 8 in
  printf "  densely packed the design needs %d tiles -> %d of %d tiles wasted\n"
    packed_tiles
    (F.Fabric.clb_tiles fab - packed_tiles)
    (F.Fabric.clb_tiles fab);
  printf "%s" (P.Floorplan.render res);
  let res_fab = P.Pnr.fit_loop ~style:F.Style.Fabulous_std mapped in
  printf "  FABulous rectangle: %dx%d, LUT utilization %.1f%%\n"
    res_fab.P.Pnr.fabric.F.Fabric.cols res_fab.P.Pnr.fabric.F.Fabric.rows
    (100.0 *. res_fab.P.Pnr.utilization);
  printf "  paper: 11 of 49 tiles unused, <77%% utilization\n"

(* ------------------------------------------------------------------ *)
(* Fig. 3: SoC-level redaction                                         *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  heading "Fig. 3: SoC-level locking (Xbar + core2/core4 wrappers)";
  let nl = Circ.Soc.netlist () in
  let cfg =
    C.Flow.shell_config
      ~target:
        (C.Flow.Fixed
           {
             route = [ "/xbar" ];
             lgc = [ ":wrap_core2"; ":wrap_core4" ];
             label = "Xbar + wrap(core2,core4)";
           })
      ()
  in
  let r = C.Flow.run cfg nl in
  printf "%s\n" (Format.asprintf "%a" C.Flow.pp_summary r);
  printf "  end-to-end verify (sequential): %b\n" (C.Flow.verify r);
  (* removal attack: with LGC entangled the plain-Xbar guess must fail *)
  let oracle = A.Sat_attack.oracle_of_netlist r.C.Flow.cut.C.Extraction.sub in
  let sub = r.C.Flow.cut.C.Extraction.sub in
  let sanity = A.Removal.attempt ~oracle sub in
  printf "  removal attack, true netlist guess: %s (sanity, must match)\n"
    (if sanity.A.Removal.matched then "match" else "MISMATCH");
  (* candidate: plain Xbar without the wrapper LGC *)
  let route_only =
    let cfg' =
      C.Flow.shell_config
        ~target:
          (C.Flow.Fixed { route = [ "/xbar" ]; lgc = []; label = "xbar-only" })
        ()
    in
    (C.Flow.run cfg' nl).C.Flow.cut.C.Extraction.sub
  in
  if
    List.length (N.Netlist.inputs route_only)
    = List.length (N.Netlist.inputs sub)
    && List.length (N.Netlist.outputs route_only)
       = List.length (N.Netlist.outputs sub)
  then begin
    let v = A.Removal.attempt ~oracle route_only in
    printf "  removal attack, plain-Xbar guess: %s\n"
      (if v.A.Removal.matched then "MATCH (attack wins)"
       else "mismatch (defeated)")
  end
  else
    printf
      "  removal attack, plain-Xbar guess: port shape differs (wrapper LGC entangled) -> defeated\n"

(* ------------------------------------------------------------------ *)
(* Fig. 4: the 8-step flow, verbose                                    *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  heading "Fig. 4: SheLL framework steps on PicoSoC";
  let e = List.nth Circ.Catalog.all 0 in
  let nl = e.Circ.Catalog.netlist () in
  let t = e.Circ.Catalog.tfr_shell in
  printf "  (1) connectivity & modular analysis\n";
  let analysis = C.Connectivity.analyze nl in
  printf "      %d blocks, %d inter-block edges\n"
    (Array.length analysis.C.Connectivity.blocks)
    (Shell_graph.Digraph.num_edges analysis.C.Connectivity.graph);
  printf "  (2) scoring (Eq. 1, SheLL coefficients) - top blocks:\n";
  let scored =
    Array.to_list
      (Array.mapi
         (fun i b ->
           (C.Score.eval C.Score.shell_choice b.C.Connectivity.attrs, i, b))
         analysis.C.Connectivity.blocks)
    |> List.sort (fun (a, _, _) (b, _, _) -> compare b a)
  in
  List.iteri
    (fun i (s, _, b) ->
      if i < 5 then
        printf "      %.3f  %-44s %s\n" s b.C.Connectivity.name
          (Format.asprintf "%a" C.Score.pp_attrs b.C.Connectivity.attrs))
    scored;
  let cfg =
    C.Flow.shell_config
      ~target:
        (C.Flow.Fixed
           {
             route = t.Circ.Catalog.route;
             lgc = t.Circ.Catalog.lgc;
             label = t.Circ.Catalog.label;
           })
      ()
  in
  let r = C.Flow.run cfg nl in
  printf "  (3) selection: %s (coverage %.2f)\n" r.C.Flow.choice.C.Selection.label
    r.C.Flow.choice.C.Selection.coverage;
  printf "  (4) decoupling/extraction: %d cells, %d in / %d out nets\n"
    (List.length r.C.Flow.cut.C.Extraction.cells)
    (List.length r.C.Flow.cut.C.Extraction.input_binding)
    (List.length r.C.Flow.cut.C.Extraction.output_binding);
  printf "  (5) dual synthesis: %d LUTs + %d Mux4 / %d Mux2 chain cells\n"
    r.C.Flow.mapped.C.Synthesize.luts r.C.Flow.mapped.C.Synthesize.chain_mux4
    r.C.Flow.mapped.C.Synthesize.chain_mux2;
  printf "  (6-7) fabric fit: %s (fit %s, utilization %.2f)\n"
    (Format.asprintf "%a" F.Fabric.pp r.C.Flow.pnr.P.Pnr.fabric)
    (match r.C.Flow.pnr.P.Pnr.fit with Ok () -> "ok" | Error _ -> "failed")
    r.C.Flow.pnr.P.Pnr.utilization;
  printf "  (8) shrink: %d config bits kept, bitstream %d bits\n"
    r.C.Flow.resources.F.Resources.config_bits
    (F.Bitstream.length r.C.Flow.emitted.F.Emit.bitstream);
  printf "  overhead: %s   verify: %b\n"
    (Format.asprintf "%a" C.Overhead.pp r.C.Flow.overhead)
    (C.Flow.verify r)

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)
(* ------------------------------------------------------------------ *)

let ablation () =
  heading "Ablations: shrink / MUX chains / routing flexibility";
  let e = List.nth Circ.Catalog.all 0 in
  let nl = e.Circ.Catalog.netlist () in
  let t = e.Circ.Catalog.tfr_shell in
  let target =
    C.Flow.Fixed
      {
        route = t.Circ.Catalog.route;
        lgc = t.Circ.Catalog.lgc;
        label = t.Circ.Catalog.label;
      }
  in
  let base = C.Flow.shell_config ~target () in
  printf "
(a) step-8 shrinking (PicoSoC, SheLL target):
";
  List.iter
    (fun (name, shrink) ->
      let r = C.Flow.run { base with C.Flow.shrink } nl in
      printf "  %-22s A=%.3f P=%.3f D=%.3f
" name
        r.C.Flow.overhead.C.Overhead.area r.C.Flow.overhead.C.Overhead.power
        r.C.Flow.overhead.C.Overhead.delay)
    [ ("with shrinking", true); ("without shrinking", false) ];
  printf "
(b) MUX chains vs LUT-only mapping of the same ROUTE target:
";
  List.iter
    (fun (name, style) ->
      let r = C.Flow.run { base with C.Flow.style } nl in
      printf "  %-22s A=%.3f  (%d LUTs + %d chain cells, %d key bits)
" name
        r.C.Flow.overhead.C.Overhead.area r.C.Flow.mapped.C.Synthesize.luts
        (r.C.Flow.mapped.C.Synthesize.chain_mux4
        + r.C.Flow.mapped.C.Synthesize.chain_mux2)
        (F.Bitstream.length r.C.Flow.emitted.F.Emit.bitstream))
    [
      ("MUX chains", F.Style.Fabulous_muxchain);
      ("LUT-only (FABulous)", F.Style.Fabulous_std);
    ];
  printf "
(c) fabric parameters vs attack effort (cf. [26]):
";
  printf "    %-34s %8s %10s %s
" "fabric" "key bits" "c2v" "SAT (3s budget)";
  List.iter
    (fun style ->
      let r = C.Flow.run { base with C.Flow.style } nl in
      let lk = C.Flow.locked_sub r in
      let m =
        A.Metrics.of_locked
          ~bitstream:r.C.Flow.emitted.F.Emit.bitstream
          ~cycle_blocks:r.C.Flow.emitted.F.Emit.cycle_blocks
          lk.L.Locked.locked
      in
      let out =
        run_sat_attack
          ~budget:(`Dips 32, `Conflicts 60_000, `Seconds 3.0)
          r
      in
      printf "    %-34s %8d %10.2f %s
" (F.Style.name style)
        m.A.Metrics.key_bits m.A.Metrics.c2v (resilience_tag out))
    F.Style.all

(* ------------------------------------------------------------------ *)
(* Coefficient search (the paper's future-work extension)              *)
(* ------------------------------------------------------------------ *)

let explore () =
  heading "Coefficient search (paper future work: heuristic exploration)";
  let e = List.nth Circ.Catalog.all 3 in
  (* SPMV: mid-size *)
  let nl = e.Circ.Catalog.netlist () in
  printf "searching Eq. 1 coefficient space on %s...
" e.Circ.Catalog.name;
  let o = C.Explore.search ~generations:4 ~population:6 nl in
  let c5 =
    List.find
      (fun (c : C.Explore.candidate) ->
        c.C.Explore.coeffs = C.Score.shell_choice)
      o.C.Explore.evaluated
  in
  printf "  profiles evaluated: %d
" (List.length o.C.Explore.evaluated);
  printf "  hand-picked c5:  A=%.3f (key %d bits)  TfR %s
"
    c5.C.Explore.overhead.C.Overhead.area c5.C.Explore.key_bits
    c5.C.Explore.label;
  printf "  searched best:   A=%.3f (key %d bits)  TfR %s
"
    o.C.Explore.best.C.Explore.overhead.C.Overhead.area
    o.C.Explore.best.C.Explore.key_bits o.C.Explore.best.C.Explore.label;
  let cc = o.C.Explore.best.C.Explore.coeffs in
  printf "  best coefficients: a=%.2f b=%.2f g=%.2f l=%.2f xi=%.2f s=%.2f
"
    cc.C.Score.alpha cc.C.Score.beta cc.C.Score.gamma cc.C.Score.lambda
    cc.C.Score.xi cc.C.Score.sigma

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  heading "Micro-benchmarks (Bechamel)";
  let module B = Bechamel in
  let open B in
  let nl = Circ.Fir.netlist () in
  let simplified = Shell_synth.Opt.simplify nl in
  let cnf = N.Cnf.encode (N.Netlist.comb_view simplified) in
  let analysis = C.Connectivity.analyze nl in
  let graph = analysis.C.Connectivity.graph in
  let tests =
    [
      Test.make ~name:"lut_map(fir)"
        (Staged.stage (fun () -> ignore (Shell_synth.Lut_map.map ~k:4 simplified)));
      Test.make ~name:"sat_solve(fir cnf)"
        (Staged.stage (fun () ->
             let s = Shell_sat.Solver.create () in
             Shell_sat.Solver.ensure_vars s cnf.N.Cnf.nvars;
             List.iter (Shell_sat.Solver.add_clause s) cnf.N.Cnf.clauses;
             ignore (Shell_sat.Solver.solve ~max_conflicts:2_000 s)));
      Test.make ~name:"betweenness(blocks)"
        (Staged.stage (fun () ->
             ignore
               (Shell_graph.Centrality.betweenness graph ~sources:[ 0 ]
                  ~sinks:[ Shell_graph.Digraph.n graph - 1 ])));
      Test.make ~name:"simulate(fir, 64 cycles)"
        (Staged.stage
           (let sim = N.Sim.create nl in
            let n_in = List.length (N.Netlist.inputs nl) in
            let ins = Array.make n_in false in
            fun () ->
              for _ = 1 to 64 do
                ignore (N.Sim.step sim ins)
              done));
    ]
  in
  List.iter
    (fun test ->
      let instances = [ Toolkit.Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> printf "  %-28s %12.0f ns/run\n" name est
          | Some _ | None -> printf "  %-28s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Sys.time () in
  (match which with
  | "table1" -> table1 ()
  | "table4" -> table4 ()
  | "table4-fast" -> table4 ~attack:false ()
  | "table5" -> table5 ()
  | "table6" -> table6 ()
  | "table6-fast" -> table6 ~attack:false ()
  | "table7" -> table7 ()
  | "fig1" -> fig1 ()
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "ablation" -> ablation ()
  | "explore" -> explore ()
  | "micro" -> micro ()
  | "all" ->
      table1 ();
      fig2 ();
      table4 ();
      table5 ();
      table6 ();
      table7 ();
      fig1 ();
      fig3 ();
      fig4 ();
      ablation ();
      explore ();
      micro ()
  | other ->
      printf "unknown target %s\n" other;
      exit 1);
  printf "\ntotal bench time: %.1fs\n" (Sys.time () -. t0)
