(* Attack resilience across the Fig. 1 taxonomy: lock one benchmark
   with each reconfigurability-based scheme and run the oracle-guided
   SAT attack (with cyclic-reduction pre-processing where applicable)
   plus the structural link-prediction proxy — then the full attack
   battery, as a per-scheme x per-attack resilience matrix.

   Run with: dune exec examples/attack_resilience.exe *)

module N = Shell_netlist
module F = Shell_fabric
module L = Shell_locking
module A = Shell_attacks
module C = Shell_core
module Circ = Shell_circuits

let budget_label = "64 DIPs / 120k conflicts / 6 s"

let budget =
  A.Attack.budget ~max_dips:64 ~max_conflicts:120_000 ~time_limit:6.0 ()

let describe = function
  | A.Attack.Broken (key, st) ->
      Printf.sprintf "BROKEN in %d DIPs, %d conflicts, %.2fs (key %d bits)"
        st.A.Attack.iterations st.A.Attack.conflicts st.A.Attack.elapsed
        (Array.length key)
  | A.Attack.Resilient st ->
      Printf.sprintf "survived budget (%d DIPs, %d conflicts)"
        st.A.Attack.iterations st.A.Attack.conflicts
  | A.Attack.Inapplicable why -> Printf.sprintf "not applicable (%s)" why

let () =
  Printf.printf "attack budget: %s\n\n" budget_label;
  (* a small structured victim keeps the SAT miters tractable, so the
     weak schemes actually fall inside the budget *)
  let nl = Circ.Axi_xbar.netlist ~channels:4 ~data_width:8 () in
  Printf.printf "victim: 4-channel AXI Xbar, %d cells\n\n"
    (N.Netlist.num_cells nl);
  let schemes =
    [
      ("random LUT insertion [17]", L.Schemes.random_lut ~gates:10 nl);
      ("heuristic LUT insertion [18]", L.Schemes.heuristic_lut ~gates:10 nl);
      ("MUX routing locking [3]", L.Schemes.mux_routing ~width:32 nl);
      ("MUX+LUT locking [4,5]", L.Schemes.mux_lut ~width:32 nl);
    ]
  in
  List.iter
    (fun (label, lk) ->
      assert (L.Locked.verify ~original:nl lk);
      let sat =
        A.Sat_attack.attack.A.Attack.run budget (A.Attack.subject ~original:nl lk)
      in
      let prox = A.Proximity.predict_links lk in
      Printf.printf
        "%-30s key %4d bits\n  SAT: %s\n  link prediction: %d/%d hidden links\n\n"
        label (L.Locked.key_bits lk) (describe sat)
        prox.A.Proximity.links_correct prox.A.Proximity.links)
    schemes;
  (* eFPGA redaction via SheLL on the same design: redact the data
     routing plus the arbitration logic *)
  let cfg =
    C.Flow.shell_config
      ~target:
        (C.Flow.Fixed
           {
             route = [ ":_xbar_route" ];
             lgc = [ ":_xbar_arb" ];
             label = "Xbar ROUTE + arb LGC";
           })
      ()
  in
  let r = C.Flow.run cfg nl in
  let lk = C.Flow.locked_sub r in
  let subject =
    A.Attack.subject ~label:"xbar/efpga"
      ~cycle_blocks:r.C.Flow.emitted.F.Emit.cycle_blocks
      ~original:r.C.Flow.cut.C.Extraction.sub lk
  in
  let sat = A.Sat_attack.attack.A.Attack.run budget subject in
  let prox = A.Proximity.predict_links lk in
  Printf.printf
    "%-30s key %4d bits\n  SAT: %s\n  link prediction: %d/%d hidden links\n\n"
    "eFPGA redaction (SheLL)" (L.Locked.key_bits lk) (describe sat)
    prox.A.Proximity.links_correct prox.A.Proximity.links;
  (* the same verdicts, across the registry at once: every
     (scheme x attack) cell of the battery matrix. A tight per-cell
     budget keeps the example quick; the portfolio (4 nested racers per
     cell) and the mostly-inapplicable brute force are left to
     `shell battery` *)
  let subjects =
    List.map
      (fun (label, lk) -> A.Attack.subject ~label ~original:nl lk)
      schemes
    @ [ subject ]
  in
  let attacks =
    List.filter_map A.Battery.find
      [ "sat"; "appsat"; "sensitize"; "structural"; "removal"; "proximity" ]
  in
  let quick =
    A.Attack.budget ~max_dips:32 ~max_conflicts:40_000 ~time_limit:3.0 ()
  in
  Printf.printf "battery matrix (%s):\n\n"
    (String.concat ", "
       (List.map (fun (a : A.Attack.t) -> a.A.Attack.name) attacks));
  let m = A.Battery.run ~attacks ~budget:quick subjects in
  Format.printf "%a@." A.Battery.pp_matrix m
