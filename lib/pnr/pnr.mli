(** Packing, placement and routing onto a fabric (the VPR/nextPNR role
    in the paper's flow).

    - packing groups each LUT with the flop it feeds (one BLE), then
      fills CLB tiles;
    - placement runs greedy seeding plus simulated annealing on
      half-perimeter wirelength;
    - routing decomposes every net into an L of horizontal/vertical
      channel segments and negotiates congestion against the style's
      channel width;
    - the fit check reports a typed shortage ({!Shell_fabric.Fabric.shortage})
      so the flow's step-7 loop can grow the right resource. *)

type tile = { x : int; y : int }

type placement = {
  of_cell : (int, tile) Hashtbl.t;  (** cell index -> tile *)
  used_tiles : int;
  used_luts : int;
  used_ffs : int;
  used_chain : int;
}

type route_stats = {
  wirelength : int;  (** total channel segments used *)
  max_congestion : int;  (** peak per-channel usage *)
  overflow_segments : int;  (** segments above channel capacity *)
}

type result = {
  fabric : Shell_fabric.Fabric.t;
  placement : placement;
  routes : route_stats;
  fit : (unit, Shell_fabric.Fabric.shortage) Result.t;
  utilization : float;  (** used LUTs / LUT capacity (Fig. 2) *)
  tile_utilization : float;  (** tiles with >= 1 used BLE / tiles *)
}

val run :
  ?seed:int ->
  ?anneal_moves:int ->
  Shell_fabric.Fabric.t ->
  Shell_netlist.Netlist.t ->
  result
(** Place and route a technology-mapped netlist ([Lut]/[Mux2]/[Mux4]/
    [Dff]/[Const] cells). Never raises on over-capacity input: the
    verdict lands in [fit]. *)

type fit_counts = {
  used_luts : int;
  lut_capacity : int;
  used_ffs : int;
  ff_capacity : int;
  used_chain : int;
  chain_capacity : int;
  io_pins : int option;  (** [None] when no netlist was supplied *)
  io_capacity : int;
  max_congestion : int;
  channel_width : int;
  overflow_segments : int;
}
(** The full resource accounting of one fit attempt — every demand
    next to its capacity, whether or not that class ran short. *)

val fit_counts :
  ?netlist:Shell_netlist.Netlist.t -> result -> fit_counts
(** Extract the accounting from a PnR result. Pass the mapped
    [netlist] to also count boundary-pin demand ([io_pins]). *)

val diag_of_fit :
  ?netlist:Shell_netlist.Netlist.t -> result -> Shell_util.Diag.t option
(** [None] when the mapping fits; otherwise a diagnostic whose typed
    payload is the {!Shell_fabric.Fabric.Shortage} (which resource ran
    short, demanded vs available, plus the [counts] triples from
    {!fit_counts}). Pass the mapped [netlist] so a routing shortage can
    distinguish boundary-pin demand from channel congestion. The
    pipeline's PnR pass raises it when fit failures are strict. *)

val fit_loop :
  ?seed:int ->
  ?max_grows:int ->
  style:Shell_fabric.Style.t ->
  Shell_netlist.Netlist.t ->
  result
(** Steps 6–7 of the SheLL flow: size the fabric from the mapped
    netlist's demand, run {!run}, grow the short resource and retry
    until it fits (or [max_grows], default 16, is exhausted — the last
    attempt is returned in that case). *)
