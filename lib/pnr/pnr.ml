module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Fabric = Shell_fabric.Fabric
module Style = Shell_fabric.Style
module Rng = Shell_util.Rng
module Obs = Shell_util.Obs

(* Retries are a pure function of the netlist/style/seed, and the
   single-flight pass cache runs each distinct PnR input exactly once
   — so the total is stable across job counts. *)
let m_retries =
  Obs.counter ~stable:true ~help:"fabric grow retries across all fit loops"
    "pnr_retries"

type tile = { x : int; y : int }

type placement = {
  of_cell : (int, tile) Hashtbl.t;
  used_tiles : int;
  used_luts : int;
  used_ffs : int;
  used_chain : int;
}

type route_stats = {
  wirelength : int;
  max_congestion : int;
  overflow_segments : int;
}

type result = {
  fabric : Fabric.t;
  placement : placement;
  routes : route_stats;
  fit : (unit, Fabric.shortage) Result.t;
  utilization : float;
  tile_utilization : float;
}

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)
(* ------------------------------------------------------------------ *)

type ble = { lut : int option; ff : int option }  (* cell indices *)

let pack nl =
  let cells = Netlist.cells nl in
  let fanout_count = Array.make (max (Netlist.num_nets nl) 1) 0 in
  Array.iter
    (fun c ->
      Array.iter
        (fun net -> fanout_count.(net) <- fanout_count.(net) + 1)
        c.Cell.ins)
    cells;
  Array.iter
    (fun net -> fanout_count.(net) <- fanout_count.(net) + 1)
    (Netlist.output_nets nl);
  (* a flop packs with the LUT that exclusively feeds it *)
  let ff_of_lut = Hashtbl.create 16 in
  let packed_ff = Hashtbl.create 16 in
  Array.iteri
    (fun i c ->
      if c.Cell.kind = Cell.Dff then
        match Netlist.driver nl c.Cell.ins.(0) with
        | Some j
          when (match cells.(j).Cell.kind with Cell.Lut _ -> true | _ -> false)
               && fanout_count.(cells.(j).Cell.out) = 1
               && not (Hashtbl.mem ff_of_lut j) ->
            Hashtbl.add ff_of_lut j i;
            Hashtbl.add packed_ff i ()
        | Some _ | None -> ())
    cells;
  let bles = ref [] and chain = ref [] in
  Array.iteri
    (fun i c ->
      match c.Cell.kind with
      | Cell.Lut _ ->
          bles := { lut = Some i; ff = Hashtbl.find_opt ff_of_lut i } :: !bles
      | Cell.Dff ->
          if not (Hashtbl.mem packed_ff i) then
            bles := { lut = None; ff = Some i } :: !bles
      | Cell.Mux2 | Cell.Mux4 -> chain := i :: !chain
      | Cell.Const _ | Cell.Config_latch -> ()
      | Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor
      | Cell.Not | Cell.Buf ->
          (* unmapped logic: treat as one BLE worth of demand *)
          bles := { lut = Some i; ff = None } :: !bles)
    cells;
  (List.rev !bles, List.rev !chain)

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)


let run ?(seed = 7) ?(anneal_moves = 20_000) fabric nl =
  let p = Style.params fabric.Fabric.style in
  let cells = Netlist.cells nl in
  let bles, chain = pack nl in
  let bles = Array.of_list bles and chain = Array.of_list chain in
  let n_bles = Array.length bles in
  let cols = fabric.Fabric.cols and rows = fabric.Fabric.rows in
  let slots_per_tile = p.Style.clb_luts in
  let n_slots = cols * rows * slots_per_tile in
  let used_luts =
    Array.fold_left
      (fun acc b -> acc + match b.lut with Some _ -> 1 | None -> 0)
      0 bles
  in
  let used_ffs =
    Array.fold_left
      (fun acc b -> acc + match b.ff with Some _ -> 1 | None -> 0)
      0 bles
  in
  let used_chain = Array.length chain in
  let pins_needed =
    List.length (Netlist.inputs nl) + List.length (Netlist.outputs nl)
  in
  let over_capacity =
    if pins_needed > Fabric.io_capacity fabric then Some Fabric.Routing_short
    else if n_bles > n_slots then
      (* distinguish what drove the overflow *)
      if used_luts > Fabric.lut_capacity fabric then Some Fabric.Luts_short
      else Some Fabric.Ffs_short
    else if used_chain > fabric.Fabric.chain_slots then Some Fabric.Chain_short
    else None
  in
  let rng = Rng.create seed in
  (* slot assignment for as many BLEs as fit; the remainder (over
     capacity) is left unplaced and the fit check reports the shortage *)
  let placeable = min n_bles n_slots in
  let slot_of_ble = Array.init placeable (fun i -> i) in
  let ble_of_slot = Array.make n_slots (-1) in
  Array.iteri (fun b s -> ble_of_slot.(s) <- b) slot_of_ble;
  let tile_of_slot s =
    let t = s / slots_per_tile in
    { x = t mod cols; y = t / cols }
  in
  (* chain positions: a vertical strip to the right of the grid *)
  let chain_pos i =
    let n = max 1 (Array.length chain) in
    { x = cols; y = i * rows / n }
  in
  (* virtual I/O positions *)
  let inputs = Netlist.input_nets nl and outputs = Netlist.output_nets nl in
  let keyn = Netlist.key_nets nl in
  let pos_of_input i n = { x = -1; y = (if n <= 1 then 0 else i * (rows - 1) / (n - 1)) } in
  let pos_of_output i n = { x = cols; y = (if n <= 1 then 0 else i * (rows - 1) / (n - 1)) } in
  (* cell -> placement entity: BLE index, chain index, or I/O *)
  let ble_of_cell = Hashtbl.create 64 in
  Array.iteri
    (fun bi b ->
      (match b.lut with Some ci -> Hashtbl.replace ble_of_cell ci bi | None -> ());
      match b.ff with Some ci -> Hashtbl.replace ble_of_cell ci bi | None -> ())
    bles;
  let chain_of_cell = Hashtbl.create 64 in
  Array.iteri (fun pi ci -> Hashtbl.replace chain_of_cell ci pi) chain;
  let cell_pos ci =
    match Hashtbl.find_opt ble_of_cell ci with
    | Some bi when bi < placeable -> Some (tile_of_slot slot_of_ble.(bi))
    | Some _ -> None
    | None -> (
        match Hashtbl.find_opt chain_of_cell ci with
        | Some pi -> Some (chain_pos pi)
        | None -> None)
  in
  (* nets with their pin entities; pin = Ble of int | Chain of int | Fixed of tile *)
  let net_entity = Array.make (max (Netlist.num_nets nl) 1) [] in
  let add_entity net e = net_entity.(net) <- e :: net_entity.(net) in
  let n_in = Array.length inputs and n_out = Array.length outputs in
  Array.iteri (fun i net -> add_entity net (`Fixed (pos_of_input i n_in))) inputs;
  Array.iteri (fun i net -> add_entity net (`Fixed (pos_of_input i (max n_in 1)))) keyn;
  Array.iteri (fun i net -> add_entity net (`Fixed (pos_of_output i n_out))) outputs;
  Array.iteri
    (fun ci c ->
      let entity =
        match Hashtbl.find_opt ble_of_cell ci with
        | Some bi -> Some (`Ble bi)
        | None -> (
            match Hashtbl.find_opt chain_of_cell ci with
            | Some pi -> Some (`Chain pi)
            | None -> None)
      in
      match entity with
      | None -> ()
      | Some e ->
          add_entity c.Cell.out e;
          Array.iter (fun net -> add_entity net e) c.Cell.ins)
    cells;
  let nets =
    Array.to_list net_entity
    |> List.filter (fun pins -> List.length pins >= 2)
    |> Array.of_list
  in
  let entity_pos = function
    | `Fixed t -> Some t
    | `Ble bi -> if bi < placeable then Some (tile_of_slot slot_of_ble.(bi)) else None
    | `Chain pi -> Some (chain_pos pi)
  in
  let hpwl pins =
    let xmin = ref max_int and xmax = ref min_int in
    let ymin = ref max_int and ymax = ref min_int in
    let any = ref false in
    List.iter
      (fun e ->
        match entity_pos e with
        | Some t ->
            any := true;
            if t.x < !xmin then xmin := t.x;
            if t.x > !xmax then xmax := t.x;
            if t.y < !ymin then ymin := t.y;
            if t.y > !ymax then ymax := t.y
        | None -> ())
      pins;
    if !any then (!xmax - !xmin) + (!ymax - !ymin) else 0
  in
  let total_cost () = Array.fold_left (fun acc pins -> acc + hpwl pins) 0 nets in
  (* nets touching each BLE, for incremental-ish cost evaluation *)
  let nets_of_ble = Array.make (max n_bles 1) [] in
  Array.iteri
    (fun ni pins ->
      List.iter
        (function
          | `Ble bi -> nets_of_ble.(bi) <- ni :: nets_of_ble.(bi)
          | `Chain _ | `Fixed _ -> ())
        pins)
    nets;
  (* simulated annealing over slot swaps *)
  if placeable > 1 && anneal_moves > 0 then begin
    let cost_around bi = List.fold_left (fun acc ni -> acc + hpwl nets.(ni)) 0 nets_of_ble.(bi) in
    let temp = ref (float_of_int (max 1 (total_cost ())) /. float_of_int (max 1 (Array.length nets))) in
    let cooling = 0.9995 in
    for _ = 1 to anneal_moves do
      let b1 = Rng.int rng placeable in
      let s2 = Rng.int rng n_slots in
      let b2 = ble_of_slot.(s2) in
      let before =
        cost_around b1 + (if b2 >= 0 && b2 < placeable && b2 <> b1 then cost_around b2 else 0)
      in
      let s1 = slot_of_ble.(b1) in
      (* swap *)
      let apply () =
        slot_of_ble.(b1) <- s2;
        ble_of_slot.(s2) <- b1;
        ble_of_slot.(s1) <- b2;
        if b2 >= 0 && b2 < placeable then slot_of_ble.(b2) <- s1
      in
      let undo () =
        slot_of_ble.(b1) <- s1;
        ble_of_slot.(s1) <- b1;
        ble_of_slot.(s2) <- b2;
        if b2 >= 0 && b2 < placeable then slot_of_ble.(b2) <- s2
      in
      if s1 <> s2 then begin
        apply ();
        let after =
          cost_around b1 + (if b2 >= 0 && b2 < placeable && b2 <> b1 then cost_around b2 else 0)
        in
        let delta = float_of_int (after - before) in
        if delta > 0.0 && Rng.float rng 1.0 >= exp (-.delta /. max !temp 1e-3)
        then undo ()
      end;
      temp := !temp *. cooling
    done
  end;
  (* ---------------- routing ----------------
     Per-net trunk-and-branch: one horizontal trunk along the median
     row of the net's pins, one vertical branch per distinct pin
     column. Tracks are shared within a net, as in a real fabric. *)
  let h_usage = Array.make_matrix (rows + 1) (cols + 2) 0 in
  let v_usage = Array.make_matrix (cols + 2) (rows + 1) 0 in
  let clampx x = max 0 (min (cols + 1) (x + 1)) in
  let clampy y = max 0 (min rows y) in
  let wirelength = ref 0 in
  let use_h y x0 x1 =
    let lo = min x0 x1 and hi = max x0 x1 in
    for x = lo to hi - 1 do
      h_usage.(y).(x) <- h_usage.(y).(x) + 1;
      incr wirelength
    done
  in
  let use_v x y0 y1 =
    let lo = min y0 y1 and hi = max y0 y1 in
    for y = lo to hi - 1 do
      v_usage.(x).(y) <- v_usage.(x).(y) + 1;
      incr wirelength
    done
  in
  let route_net positions =
    let xs = List.map (fun (t : tile) -> clampx t.x) positions in
    let ys = List.map (fun (t : tile) -> clampy t.y) positions in
    let sorted_ys = List.sort compare ys in
    let trunk_y = List.nth sorted_ys (List.length sorted_ys / 2) in
    let xmin = List.fold_left min (cols + 1) xs in
    let xmax = List.fold_left max 0 xs in
    use_h trunk_y xmin xmax;
    (* one branch per distinct column *)
    let cols_seen = Hashtbl.create 8 in
    List.iter2
      (fun x y ->
        let reach = Hashtbl.find_opt cols_seen x in
        let need =
          match reach with
          | Some (lo, hi) -> y < lo || y > hi
          | None -> y <> trunk_y
        in
        if need then begin
          use_v x trunk_y y;
          let lo, hi =
            match reach with
            | Some (lo, hi) -> (min lo (min y trunk_y), max hi (max y trunk_y))
            | None -> (min y trunk_y, max y trunk_y)
          in
          Hashtbl.replace cols_seen x (lo, hi)
        end)
      xs ys
  in
  Array.iter
    (fun pins ->
      (* chain-to-chain nets ride the dedicated cascade wiring of the
         MUX-chain tiles and do not consume channel tracks *)
      let all_chain =
        pins <> []
        && List.for_all (function `Chain _ -> true | `Ble _ | `Fixed _ -> false) pins
      in
      if not all_chain then begin
        let positions = List.filter_map entity_pos pins in
        match positions with [] | [ _ ] -> () | ps -> route_net ps
      end)
    nets;
  let cap = p.Style.channel_width in
  let max_congestion = ref 0 and overflow = ref 0 in
  Array.iter
    (fun row ->
      Array.iter
        (fun u ->
          if u > !max_congestion then max_congestion := u;
          if u > cap then incr overflow)
        row)
    h_usage;
  Array.iter
    (fun col ->
      Array.iter
        (fun u ->
          if u > !max_congestion then max_congestion := u;
          if u > cap then incr overflow)
        col)
    v_usage;
  (* ---------------- results ---------------- *)
  let of_cell = Hashtbl.create 64 in
  Array.iteri
    (fun ci _ ->
      match cell_pos ci with
      | Some t -> Hashtbl.replace of_cell ci t
      | None -> ())
    cells;
  let tiles_touched = Hashtbl.create 32 in
  Array.iteri
    (fun bi _ ->
      if bi < placeable then begin
        let t = tile_of_slot slot_of_ble.(bi) in
        Hashtbl.replace tiles_touched (t.x, t.y) ()
      end)
    bles;
  let fit =
    match over_capacity with
    | Some s -> Error s
    | None -> if !overflow > 0 then Error Fabric.Routing_short else Ok ()
  in
  {
    fabric;
    placement =
      {
        of_cell;
        used_tiles = Hashtbl.length tiles_touched;
        used_luts;
        used_ffs;
        used_chain;
      };
    routes =
      {
        wirelength = !wirelength;
        max_congestion = !max_congestion;
        overflow_segments = !overflow;
      };
    fit;
    utilization = Fabric.utilization fabric ~used_luts;
    tile_utilization =
      (let tiles = Fabric.clb_tiles fabric in
       if tiles = 0 then 0.0
       else float_of_int (Hashtbl.length tiles_touched) /. float_of_int tiles);
  }

type fit_counts = {
  used_luts : int;
  lut_capacity : int;
  used_ffs : int;
  ff_capacity : int;
  used_chain : int;
  chain_capacity : int;
  io_pins : int option;
  io_capacity : int;
  max_congestion : int;
  channel_width : int;
  overflow_segments : int;
}

let fit_counts ?netlist (r : result) =
  {
    used_luts = r.placement.used_luts;
    lut_capacity = Fabric.lut_capacity r.fabric;
    used_ffs = r.placement.used_ffs;
    ff_capacity = Fabric.ff_capacity r.fabric;
    used_chain = r.placement.used_chain;
    chain_capacity = r.fabric.Fabric.chain_slots;
    io_pins =
      Option.map
        (fun nl ->
          List.length (Netlist.inputs nl) + List.length (Netlist.outputs nl))
        netlist;
    io_capacity = Fabric.io_capacity r.fabric;
    max_congestion = r.routes.max_congestion;
    channel_width = (Style.params r.fabric.Fabric.style).Style.channel_width;
    overflow_segments = r.routes.overflow_segments;
  }

let count_triples (c : fit_counts) =
  List.concat
    [
      [
        ("luts", c.used_luts, c.lut_capacity);
        ("ffs", c.used_ffs, c.ff_capacity);
        ("chain", c.used_chain, c.chain_capacity);
      ];
      (match c.io_pins with
      | Some pins -> [ ("io_pins", pins, c.io_capacity) ]
      | None -> []);
      [ ("congestion", c.max_congestion, c.channel_width) ];
    ]

let diag_of_fit ?netlist (r : result) =
  match r.fit with
  | Ok () -> None
  | Error s ->
      let c = fit_counts ?netlist r in
      let demand, capacity =
        match s with
        | Fabric.Luts_short -> (c.used_luts, c.lut_capacity)
        | Fabric.Ffs_short -> (c.used_ffs, c.ff_capacity)
        | Fabric.Chain_short -> (c.used_chain, c.chain_capacity)
        | Fabric.Routing_short -> (
            let congestion = (c.max_congestion, c.channel_width) in
            (* routing can run short on channels or on boundary pins;
               report whichever actually exceeded *)
            match c.io_pins with
            | Some pins when pins > c.io_capacity -> (pins, c.io_capacity)
            | _ -> congestion)
      in
      Some
        (Shell_util.Diag.msgf
           ~payload:
             (Fabric.Shortage
                { shortage = s; demand; capacity; counts = count_triples c })
           "fit check failed on %s: %s short (demand %d, capacity %d)"
           (Format.asprintf "%a" Fabric.pp r.fabric)
           (Fabric.shortage_name s) demand capacity)

let fit_loop ?seed ?(max_grows = 16) ~style nl =
  let cells = Netlist.cells nl in
  let luts = ref 0 and ffs = ref 0 and chain = ref 0 in
  Array.iter
    (fun c ->
      match c.Cell.kind with
      | Cell.Lut _ -> incr luts
      | Cell.Dff -> incr ffs
      | Cell.Mux2 | Cell.Mux4 -> incr chain
      | _ -> ())
    cells;
  let fabric = Fabric.size_for style ~luts:!luts ~user_ffs:!ffs ~chain_muxes:!chain in
  let rec go fabric grows =
    let res =
      Obs.with_span "pnr.attempt" (fun () ->
          let res = run ?seed fabric nl in
          Obs.span_add "cols" fabric.Fabric.cols;
          Obs.span_add "rows" fabric.Fabric.rows;
          Obs.span_add "fit" (match res.fit with Ok () -> 1 | Error _ -> 0);
          res)
    in
    match res.fit with
    | Ok () -> res
    | Error shortage when grows > 0 ->
        Obs.incr m_retries;
        go (Fabric.grow fabric shortage) (grows - 1)
    | Error _ -> res
  in
  go fabric max_grows
