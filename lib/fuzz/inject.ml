module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Rng = Shell_util.Rng
module Truthtab = Shell_util.Truthtab

type mutation = { label : string; cell : int; netlist : N.t }

(* Cells whose output cone reaches a primary output (mutating dead
   logic is undetectable by construction). *)
let live_cells nl =
  let live = Array.make (max 1 (N.num_cells nl)) false in
  let seen_net = Array.make (max 1 (N.num_nets nl)) false in
  let rec walk net =
    if not seen_net.(net) then begin
      seen_net.(net) <- true;
      match N.driver nl net with
      | None -> ()
      | Some ci ->
          live.(ci) <- true;
          Array.iter walk (N.cell nl ci).Cell.ins
    end
  in
  Array.iter walk (N.output_nets nl);
  live

let swap arr i j =
  let a = Array.copy arr in
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t;
  a

(* A single candidate fault for one cell, or None for kinds where no
   cell-local change alters the function (commutative gates aside from
   negation are handled via kind flips). *)
let fault rng (c : Cell.t) =
  let negated kind = Some (Cell.{ c with kind }, "gate-negate") in
  match c.Cell.kind with
  | Cell.Lut tt ->
      let row = Rng.int rng (1 lsl Truthtab.arity tt) in
      let bits = Int64.logxor (Truthtab.bits tt) (Int64.shift_left 1L row) in
      let tt' = Truthtab.create ~arity:(Truthtab.arity tt) ~bits in
      Some ({ c with Cell.kind = Cell.Lut tt' }, "lut-bit-flip")
  | Cell.Mux2 ->
      if Rng.bool rng && c.Cell.ins.(1) <> c.Cell.ins.(2) then
        Some ({ c with Cell.ins = swap c.Cell.ins 1 2 }, "mux-arm-swap")
      else Some ({ c with Cell.ins = swap c.Cell.ins 0 1 }, "mux-sel-swap")
  | Cell.Mux4 ->
      let i = 2 + Rng.int rng 4 and j = 2 + Rng.int rng 4 in
      if i <> j && c.Cell.ins.(i) <> c.Cell.ins.(j) then
        Some ({ c with Cell.ins = swap c.Cell.ins i j }, "mux-arm-swap")
      else Some ({ c with Cell.ins = swap c.Cell.ins 0 2 }, "mux-sel-swap")
  | Cell.And -> negated Cell.Nand
  | Cell.Nand -> negated Cell.And
  | Cell.Or -> negated Cell.Nor
  | Cell.Nor -> negated Cell.Or
  | Cell.Xor -> negated Cell.Xnor
  | Cell.Xnor -> negated Cell.Xor
  | Cell.Not -> Some ({ c with Cell.kind = Cell.Buf }, "gate-negate")
  | Cell.Buf -> Some ({ c with Cell.kind = Cell.Not }, "gate-negate")
  | Cell.Const b ->
      Some ({ c with Cell.kind = Cell.Const (not b) }, "const-flip")
  | Cell.Dff | Cell.Config_latch -> None

let mutate rng nl =
  let n = N.num_cells nl in
  if n = 0 then None
  else begin
    let live = live_cells nl in
    let result = ref None in
    let tries = ref 0 in
    while !result = None && !tries < 16 do
      incr tries;
      let i = Rng.int rng n in
      if live.(i) then
        match fault rng (N.cell nl i) with
        | Some (c', label) ->
            let netlist = N.map_cells nl (fun j c -> if j = i then c' else c) in
            result := Some { label; cell = i; netlist }
        | None -> ()
    done;
    !result
  end
