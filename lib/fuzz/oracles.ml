module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Sim = Shell_netlist.Sim
module Cnf = Shell_netlist.Cnf
module Equiv = Shell_netlist.Equiv
module Verilog = Shell_netlist.Verilog
module Vcd = Shell_netlist.Vcd
module Specialize = Shell_netlist.Specialize
module Solver = Shell_sat.Solver
module Opt = Shell_synth.Opt
module Lut_map = Shell_synth.Lut_map
module Mux_chain = Shell_synth.Mux_chain
module Schemes = Shell_locking.Schemes
module Locked = Shell_locking.Locked
module Emit = Shell_fabric.Emit
module Style = Shell_fabric.Style
module Bitstream = Shell_fabric.Bitstream
module Flow = Shell_core.Flow
module Pipeline = Shell_core.Pipeline
module Extraction = Shell_core.Extraction
module Rng = Shell_util.Rng
module Diag = Shell_util.Diag

type verdict = Pass | Fail of string | Skip of string

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Fail m -> Format.fprintf ppf "FAIL: %s" m
  | Skip m -> Format.fprintf ppf "skip (%s)" m

type t = {
  name : string;
  description : string;
  applies : Gen.shape -> bool;
  run : Rng.t -> N.t -> verdict;
  inject : Rng.t -> N.t -> (string * verdict) option;
      (** plant one fault and re-judge; the label names the fault
          class (e.g. ["lut-bit-flip"]) so the self-test can demand
          per-class coverage *)
}

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let vec_str v = String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')

let has_dff nl = N.count_kind nl (function Cell.Dff -> true | _ -> false) > 0

let comb_of nl = if has_dff nl then N.comb_view nl else nl

let rand_bits rng n = Array.init n (fun _ -> Rng.bool rng)

(* Vector equivalence as a verdict. Sequential designs go through the
   clocked black-box check (no scan-port-order assumption, so passes
   that reorder flops are not falsely flagged). *)
let equiv_verdict ?(vectors = 64) rng ~keys_a ~keys_b a b =
  let render = function
    | Equiv.Equivalent -> Pass
    | Equiv.Counterexample v -> Fail ("differs on input " ^ vec_str v)
  in
  match
    if has_dff a || has_dff b then
      Equiv.check_sequential ~runs:4 ~cycles:16 ~rng ~keys_a ~keys_b a b
    else Equiv.check ~vectors ~rng ~keys_a ~keys_b a b
  with
  | v -> render v
  | exception Invalid_argument m -> Fail ("comparator: " ^ m)

(* Run a semantics-preserving transform and compare against the
   original under a shared random key. A transform that raises is a
   bug, not a skip. *)
let transform_oracle ~name ~description ?(applies = fun _ -> true) f =
  let compare_pair rng a b =
    let keys = rand_bits rng (List.length (N.keys a)) in
    let keys_b =
      if List.length (N.keys b) = Array.length keys then keys else [||]
    in
    equiv_verdict rng ~keys_a:keys ~keys_b a b
  in
  let run rng nl =
    match f rng nl with
    | nl' -> compare_pair rng nl nl'
    | exception Diag.Error d -> Skip (Diag.to_string d)
    | exception Invalid_argument m -> Fail (name ^ " raised Invalid_argument: " ^ m)
    | exception Failure m -> Fail (name ^ " raised Failure: " ^ m)
  in
  let inject rng nl =
    match f rng nl with
    | exception _ -> None
    | nl' -> (
        match Inject.mutate rng nl' with
        | None -> None
        | Some m -> Some (m.Inject.label, compare_pair rng nl m.Inject.netlist))
  in
  { name; description; applies; run; inject }

(* ------------------------------------------------------------------ *)
(* Sim vs CNF                                                          *)
(* ------------------------------------------------------------------ *)

(* Evaluate [encoded] through Tseitin + CDCL on concrete vectors and
   compare with cycle-accurate simulation of [golden]. *)
let sim_cnf_compare rng ~golden ~encoded =
  let n_in = Array.length (N.input_nets golden) in
  let n_key = Array.length (N.key_nets golden) in
  let sim = Sim.create golden in
  let cnf = Cnf.encode encoded in
  let rec go k =
    if k >= 8 then Pass
    else begin
      let ins = rand_bits rng n_in in
      let keys = rand_bits rng n_key in
      let outs = Sim.eval_comb sim ~keys ins in
      let solver = Solver.create () in
      Solver.ensure_vars solver cnf.Cnf.nvars;
      List.iter (Solver.add_clause solver) cnf.Cnf.clauses;
      Array.iteri
        (fun i net -> Solver.add_clause solver [ Cnf.lit cnf net ins.(i) ])
        (N.input_nets encoded);
      Array.iteri
        (fun i net -> Solver.add_clause solver [ Cnf.lit cnf net keys.(i) ])
        (N.key_nets encoded);
      match Solver.solve solver with
      | Solver.Sat ->
          let cnf_outs =
            Array.map
              (fun net -> Solver.value solver (Cnf.var_of net cnf))
              (N.output_nets encoded)
          in
          if cnf_outs = outs then go (k + 1)
          else
            Fail
              (Printf.sprintf "input %s: sim=%s cnf=%s" (vec_str ins)
                 (vec_str outs) (vec_str cnf_outs))
      | Solver.Unsat -> Fail ("CNF unsatisfiable under input " ^ vec_str ins)
      | Solver.Unknown -> Skip "solver budget exhausted"
    end
  in
  go 0

let sim_cnf =
  {
    name = "sim_cnf";
    description = "simulation vs Tseitin CNF + SAT on random vectors";
    applies = (fun _ -> true);
    run =
      (fun rng nl ->
        let cv = comb_of nl in
        if N.has_comb_cycle cv then Skip "combinational cycle"
        else sim_cnf_compare rng ~golden:cv ~encoded:cv);
    inject =
      (fun rng nl ->
        let cv = comb_of nl in
        if N.has_comb_cycle cv then None
        else
          match Inject.mutate rng cv with
          | None -> None
          | Some m ->
              Some
                ( m.Inject.label,
                  sim_cnf_compare rng ~golden:cv ~encoded:m.Inject.netlist ));
  }

(* ------------------------------------------------------------------ *)
(* Rewrite / synthesis passes vs Equiv                                 *)
(* ------------------------------------------------------------------ *)

let opt =
  transform_oracle ~name:"opt"
    ~description:"Opt.simplify preserves function"
    (fun _rng nl -> Opt.simplify nl)

let lut_map =
  transform_oracle ~name:"lut_map"
    ~description:"Lut_map.map (random k) preserves function"
    (fun rng nl -> fst (Lut_map.map ~k:(2 + Rng.int rng 5) nl))

let mux_chain =
  transform_oracle ~name:"mux_chain"
    ~description:"Mux_chain.map preserves function"
    (fun _rng nl -> fst (Mux_chain.map nl))

(* ------------------------------------------------------------------ *)
(* Key binding (Specialize) vs keyed simulation                        *)
(* ------------------------------------------------------------------ *)

let specialize =
  let bind rng nl =
    let bits = 2 + Rng.int rng 5 in
    let lk = Schemes.xor_keys ~seed:(Rng.int rng 1_000_000) ~bits nl in
    let locked = lk.Locked.locked in
    let guess = rand_bits rng (List.length (N.keys locked)) in
    (locked, guess, Specialize.bind_keys locked guess)
  in
  {
    name = "specialize";
    description = "bind_keys under a random key agrees with keyed simulation";
    applies = (fun s -> s.Gen.key_bits = 0);
    run =
      (fun rng nl ->
        let locked, guess, bound = bind rng nl in
        equiv_verdict rng ~keys_a:guess ~keys_b:[||] locked bound);
    inject =
      (fun rng nl ->
        let locked, guess, bound = bind rng nl in
        match Inject.mutate rng bound with
        | None -> None
        | Some m ->
            Some
              ( m.Inject.label,
                equiv_verdict rng ~keys_a:guess ~keys_b:[||] locked
                  m.Inject.netlist ));
  }

(* ------------------------------------------------------------------ *)
(* Region extraction / splice identity                                 *)
(* ------------------------------------------------------------------ *)

let splice =
  let cut_of rng nl =
    let member = Array.init (N.num_cells nl) (fun _ -> Rng.bool rng) in
    Extraction.extract nl ~member:(fun i -> member.(i))
  in
  {
    name = "splice";
    description = "extracting a random region and splicing it back is identity";
    applies = (fun _ -> true);
    run =
      (fun rng nl ->
        let keys = rand_bits rng (List.length (N.keys nl)) in
        match cut_of rng nl with
        | exception Invalid_argument m -> Fail ("extract raised: " ^ m)
        | cut ->
            let back =
              Extraction.reassemble nl cut ~replacement:cut.Extraction.sub
            in
            if List.length (N.keys back) <> Array.length keys then
              Fail "splice changed the key ports"
            else equiv_verdict rng ~keys_a:keys ~keys_b:keys nl back);
    inject =
      (fun rng nl ->
        let keys = rand_bits rng (List.length (N.keys nl)) in
        match cut_of rng nl with
        | exception Invalid_argument _ -> None
        | cut -> (
            match Inject.mutate rng cut.Extraction.sub with
            | None -> None
            | Some m ->
                let back =
                  Extraction.reassemble nl cut ~replacement:m.Inject.netlist
                in
                Some
                  ( m.Inject.label,
                    equiv_verdict rng ~keys_a:keys ~keys_b:keys nl back )));
  }

(* ------------------------------------------------------------------ *)
(* Locking schemes: correct key restores the original                  *)
(* ------------------------------------------------------------------ *)

let lock_schemes =
  let lock rng nl =
    let seed = Rng.int rng 1_000_000 in
    match Rng.int rng 4 with
    | 0 -> Schemes.xor_keys ~seed ~bits:(1 + Rng.int rng 6) nl
    | 1 -> Schemes.random_lut ~seed ~gates:(1 + Rng.int rng 4) nl
    | 2 -> Schemes.heuristic_lut ~seed ~gates:(1 + Rng.int rng 4) nl
    | _ -> Schemes.mux_routing ~seed ~width:(1 lsl (1 + Rng.int rng 2)) nl
  in
  {
    name = "lock_schemes";
    description = "locked design under the correct key matches the original";
    applies = (fun s -> s.Gen.key_bits = 0);
    run =
      (fun rng nl ->
        match lock rng nl with
        | exception Invalid_argument m -> Skip ("scheme inapplicable: " ^ m)
        | exception Failure m -> Skip ("scheme inapplicable: " ^ m)
        | exception Diag.Error d -> Skip (Diag.to_string d)
        | lk ->
            if Locked.verify ~vectors:64 ~original:nl lk then Pass
            else Fail (lk.Locked.scheme ^ ": correct key does not unlock"));
    inject =
      (fun rng nl ->
        match lock rng nl with
        | exception _ -> None
        | lk -> (
            match Inject.mutate rng lk.Locked.locked with
            | None -> None
            | Some m ->
                let faulted = { lk with Locked.locked = m.Inject.netlist } in
                Some
                  ( m.Inject.label,
                    if Locked.verify ~vectors:64 ~original:nl faulted then Pass
                    else Fail "injected fault detected" )));
  }

(* ------------------------------------------------------------------ *)
(* Full pipeline: lock then unlock with the correct bitstream          *)
(* ------------------------------------------------------------------ *)

let pipeline_cfg rng =
  {
    (Flow.shell_config
       ~target:
         (Flow.Fixed { route = [ "/b0" ]; lgc = [ "/b1" ]; label = "fuzz" })
       ())
    with
    Flow.style = Style.Fabulous_muxchain;
    seed = Rng.int rng 1_000_000;
  }

let pipeline =
  let run_locked rng nl =
    let cfg = pipeline_cfg rng in
    let o = Flow.run_staged ~use_cache:false cfg nl in
    match o.Pipeline.failed with
    | Some d -> Error (Diag.to_string d)
    | None -> Ok (Flow.of_outcome o)
  in
  {
    name = "pipeline";
    description =
      "full lock pipeline; reassembled design under the correct bitstream \
       matches the original";
    applies =
      (fun s ->
        s.Gen.blocks >= 2 && s.Gen.key_bits = 0 && s.Gen.with_muxes
        && s.Gen.n_gates >= 24);
    run =
      (fun rng nl ->
        match run_locked rng nl with
        | Error m -> Skip m
        | exception Diag.Error d -> Skip (Diag.to_string d)
        | Ok r ->
            if Flow.verify ~runs:4 ~cycles:16 r then Pass
            else Fail "locked design under correct bitstream differs");
    inject =
      (fun rng nl ->
        match run_locked rng nl with
        | Error _ | (exception Diag.Error _) -> None
        | Ok r -> (
            let lk = Flow.locked_sub r in
            match Inject.mutate rng lk.Locked.locked with
            | None -> None
            | Some m ->
                let faulted = { lk with Locked.locked = m.Inject.netlist } in
                let original = r.Flow.cut.Extraction.sub in
                Some
                  ( m.Inject.label,
                    if Locked.verify ~vectors:64 ~original faulted then Pass
                    else Fail "injected fault detected" )));
  }

(* ------------------------------------------------------------------ *)
(* Fabric emission: bitstream round-trip + configured-fabric function  *)
(* ------------------------------------------------------------------ *)

let emit_fabric =
  let emit rng nl =
    let mapped, _ = Lut_map.map ~k:4 nl in
    let e = Emit.emit ~style:Style.Fabulous_muxchain ~seed:(Rng.int rng 1_000_000) mapped in
    (mapped, e)
  in
  let bound_of e =
    Specialize.bind_keys e.Emit.locked (Bitstream.bits e.Emit.bitstream)
  in
  {
    name = "emit_fabric";
    description =
      "emitted fabric under its own bitstream matches the mapped circuit; \
       bitstream file format round-trips";
    applies = (fun s -> s.Gen.key_bits = 0);
    run =
      (fun rng nl ->
        match emit rng nl with
        | exception Diag.Error d -> Skip (Diag.to_string d)
        | mapped, e ->
            let b = e.Emit.bitstream in
            let b' = Bitstream.deserialize (Bitstream.serialize b) in
            if Bitstream.bits b' <> Bitstream.bits b then
              Fail "bitstream bits do not round-trip through serialize"
            else if Bitstream.segments b' <> Bitstream.segments b then
              Fail "bitstream segment directory does not round-trip"
            else if Bitstream.to_hex b' <> Bitstream.to_hex b then
              Fail "bitstream hex rendering drifts after round-trip"
            else
              equiv_verdict rng ~keys_a:[||] ~keys_b:[||] mapped (bound_of e));
    inject =
      (fun rng nl ->
        match emit rng nl with
        | exception Diag.Error _ -> None
        | mapped, e -> (
            match Inject.mutate rng (bound_of e) with
            | None -> None
            | Some m ->
                Some
                  ( m.Inject.label,
                    equiv_verdict rng ~keys_a:[||] ~keys_b:[||] mapped
                      m.Inject.netlist )));
  }

(* ------------------------------------------------------------------ *)
(* Verilog emission round-trip + lint                                  *)
(* ------------------------------------------------------------------ *)

(* Static lint of the emitted text: no bare "keyinput" declarations
   (not a Verilog keyword) and no duplicate declared identifiers (the
   fallback-name aliasing bug). *)
let lint_verilog src =
  let declared = Hashtbl.create 32 in
  let problem = ref None in
  let note m = if !problem = None then problem := Some m in
  let declare nm =
    if Hashtbl.mem declared nm then note ("duplicate identifier " ^ nm)
    else Hashtbl.add declared nm ()
  in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         let line = String.trim line in
         let starts p =
           String.length line >= String.length p
           && String.sub line 0 (String.length p) = p
         in
         let decl_name p =
           (* "input x;" -> "x" *)
           let s = String.sub line (String.length p) (String.length line - String.length p) in
           match String.index_opt s ';' with
           | Some i -> Some (String.trim (String.sub s 0 i))
           | None -> None
         in
         if starts "keyinput " then note "bare keyinput declaration"
         else
           List.iter
             (fun p ->
               if starts p then
                 match decl_name p with
                 | Some nm when nm <> "" -> declare nm
                 | _ -> note ("malformed declaration: " ^ line))
             [ "input "; "(* keyinput *) input "; "output "; "wire " ]);
  !problem

let verilog =
  let roundtrip nl = Verilog.parse (Verilog.to_string nl) in
  {
    name = "verilog";
    description = "emit -> lint -> reparse round-trip preserves the netlist";
    applies = (fun _ -> true);
    run =
      (fun rng nl ->
        let src = Verilog.to_string nl in
        match lint_verilog src with
        | Some m -> Fail ("lint: " ^ m)
        | None -> (
            match Verilog.parse src with
            | exception Verilog.Parse_error m -> Fail ("reparse: " ^ m)
            | nl2 ->
                (* the emitter may add Buf alias cells for port
                   aliasing, so compare non-Buf populations *)
                let logic n =
                  N.count_kind n (function Cell.Buf -> false | _ -> true)
                in
                if logic nl2 <> logic nl then
                  Fail
                    (Printf.sprintf "cell count drift: %d -> %d" (logic nl)
                       (logic nl2))
                else
                  let keys = rand_bits rng (List.length (N.keys nl)) in
                  equiv_verdict rng ~keys_a:keys ~keys_b:keys nl nl2));
    inject =
      (fun rng nl ->
        match roundtrip nl with
        | exception Verilog.Parse_error _ -> None
        | nl2 -> (
            match Inject.mutate rng nl2 with
            | None -> None
            | Some m ->
                let keys = rand_bits rng (List.length (N.keys nl)) in
                Some
                  ( m.Inject.label,
                    equiv_verdict rng ~keys_a:keys ~keys_b:keys nl
                      m.Inject.netlist )));
  }

(* ------------------------------------------------------------------ *)
(* VCD dump well-formedness                                            *)
(* ------------------------------------------------------------------ *)

let printable s =
  String.for_all (fun c -> c > ' ' && c < '\x7f') s && s <> ""

(* A small VCD reader: header structure, one well-formed $var per
   signal with unique printable ids, then only #time and value-change
   lines referring to declared ids. *)
let check_vcd dump =
  let lines = String.split_on_char '\n' dump |> List.filter (fun l -> l <> "") in
  let ids = Hashtbl.create 32 in
  let problem = ref None in
  let note m = if !problem = None then problem := Some m in
  let in_header = ref true in
  List.iter
    (fun line ->
      if !problem = None then
        let fields =
          String.split_on_char ' ' line |> List.filter (fun f -> f <> "")
        in
        match fields with
        | "$timescale" :: _ | "$scope" :: _ -> ()
        | [ "$upscope"; "$end" ] -> ()
        | [ "$enddefinitions"; "$end" ] -> in_header := false
        | "$var" :: rest ->
            if not !in_header then note "$var after $enddefinitions"
            else (
              match rest with
              | [ "wire"; "1"; id; name; "$end" ] ->
                  if not (printable id) then note ("bad id " ^ id)
                  else if Hashtbl.mem ids id then note ("duplicate id " ^ id)
                  else if not (printable name) then
                    note ("unescaped name " ^ String.escaped name)
                  else Hashtbl.add ids id ()
              | _ -> note ("malformed $var line: " ^ String.escaped line))
        | [ tok ] when String.length tok > 1 && tok.[0] = '#' ->
            if !in_header then note "sample time inside header"
            else if
              not
                (String.for_all
                   (fun c -> c >= '0' && c <= '9')
                   (String.sub tok 1 (String.length tok - 1)))
            then note ("bad time " ^ tok)
        | [ tok ] when String.length tok > 1 && (tok.[0] = '0' || tok.[0] = '1') ->
            let id = String.sub tok 1 (String.length tok - 1) in
            if not (Hashtbl.mem ids id) then
              note ("value change for undeclared id " ^ id)
        | _ -> note ("unrecognized line: " ^ String.escaped line))
    lines;
  !problem

let nasty_names =
  [| "sp ace"; "tab\tname"; "line\nbreak"; ""; "ctrl\x01char"; "ok.name[3]" |]

let vcd =
  let dump_of rng nl =
    let sim = Sim.create nl in
    let v = Vcd.create sim in
    (* probe a few cell-driven nets under hostile names *)
    let n_cells = N.num_cells nl in
    if n_cells > 0 then
      for _ = 1 to 3 do
        let c = N.cell nl (Rng.int rng n_cells) in
        Vcd.probe v (Rng.choice rng nasty_names) c.Cell.out
      done;
    let n_in = Array.length (N.input_nets nl) in
    let n_key = Array.length (N.key_nets nl) in
    for _ = 1 to 4 do
      ignore (Vcd.step v ~keys:(rand_bits rng n_key) (rand_bits rng n_in))
    done;
    Vcd.dump v
  in
  {
    name = "vcd";
    description = "VCD dumps with hostile net names stay parseable";
    applies = (fun _ -> true);
    run =
      (fun rng nl ->
        if N.has_comb_cycle nl then Skip "combinational cycle"
        else
          match check_vcd (dump_of rng nl) with
          | None -> Pass
          | Some m -> Fail m);
    inject =
      (fun rng nl ->
        if N.has_comb_cycle nl then None
        else
          (* corrupt a $var name in the dump the way an unescaped
             whitespace byte would, and require the checker to object *)
          let dump = dump_of rng nl in
          let lines = String.split_on_char '\n' dump in
          let corrupted = ref false in
          let lines =
            List.map
              (fun line ->
                if
                  (not !corrupted)
                  && String.length line > 5
                  && String.sub line 0 5 = "$var "
                then begin
                  corrupted := true;
                  (* split the name field with a raw tab *)
                  String.concat "\t" [ line; "oops" ]
                end
                else line)
              lines
          in
          if not !corrupted then None
          else
            Some
              ( "vcd-name-corrupt",
                match check_vcd (String.concat "\n" lines) with
                | None -> Pass
                | Some m -> Fail m ));
  }

(* ------------------------------------------------------------------ *)
(* Static lint battery                                                 *)
(* ------------------------------------------------------------------ *)

module Lint = Shell_lint.Lint
module Lint_rules = Shell_lint.Rules

let lint_errors ?reference nl =
  let subject = Lint.subject ?reference nl in
  let r = Lint.run ~rules:Lint_rules.all subject in
  List.filter (fun (f : Lint.finding) -> f.Lint.severity = Lint.Error)
    r.Lint.findings

let lint_fingerprints fs =
  List.map
    (fun (f : Lint.finding) -> f.Lint.rule ^ "|" ^ f.Lint.where)
    fs

let lint =
  {
    name = "lint";
    description =
      "static lint battery: structural rules stay clean on generated \
       netlists; the reference-diff rule flags injected faults";
    applies = (fun _ -> true);
    run =
      (fun _rng nl ->
        (* generated netlists are valid and acyclic by construction, so
           the structural pack's error rules must all stay silent;
           security errors (e.g. key-dead) are excluded because a
           random key may legitimately feed only dead logic *)
        let subject = Lint.subject nl in
        let r = Lint.run ~rules:Lint_rules.structural subject in
        match
          List.filter
            (fun (f : Lint.finding) -> f.Lint.severity = Lint.Error)
            r.Lint.findings
        with
        | [] -> Pass
        | f :: _ ->
            Fail
              (Printf.sprintf "%s at %s: %s" f.Lint.rule f.Lint.where
                 f.Lint.message));
    inject =
      (fun rng nl ->
        match Inject.mutate rng nl with
        | None -> None
        | Some m ->
            (* a fault is caught when linting the mutant against the
               pristine netlist raises an error absent from the
               baseline run (in practice: ref-mismatch) *)
            let base = lint_fingerprints (lint_errors nl) in
            let mutant =
              lint_fingerprints (lint_errors ~reference:nl m.Inject.netlist)
            in
            let fresh =
              List.filter (fun fp -> not (List.mem fp base)) mutant
            in
            Some
              ( m.Inject.label,
                if fresh <> [] then Fail "injected fault flagged by lint"
                else Pass ));
  }

(* ------------------------------------------------------------------ *)
(* Word-level simulator vs scalar reference                            *)
(* ------------------------------------------------------------------ *)

module Simw = Shell_netlist.Simw

(* The generator never emits Config_latch cells, so graft two onto a
   copy — fed from the first output's net, mixed back out through an
   XOR probe — to exercise Simw's broadcast latch lanes and the
   bitstream-loading path on every case. *)
let with_config_latches nl =
  let outs = N.output_nets nl in
  if Array.length outs = 0 then nl
  else begin
    let nl' = N.copy nl in
    let src = outs.(0) in
    let q0 = N.new_net nl' and q1 = N.new_net nl' in
    N.add_cell nl' (Cell.make ~origin:"top/cfg" Cell.Config_latch [| src |] q0);
    N.add_cell nl' (Cell.make ~origin:"top/cfg" Cell.Config_latch [| src |] q1);
    let p = N.xor_ ~origin:"top/cfg" nl' (N.xor_ ~origin:"top/cfg" nl' q0 q1) src in
    N.add_output nl' "zcfgprobe" p;
    nl'
  end

(* Step a random number of lanes through Simw and, lane by lane, an
   army of scalar Sims over the same stimulus, same (broadcast) key and
   same config; EVERY net (not just the primary outputs) must agree on
   every cycle — the engines' bit-identity claim, and immune to faults
   masked downstream. [scalar] and [word] share ports and net
   numbering; faults are planted in [word] only. *)
let simw_compare rng ~scalar ~word ~config =
  let n_in = Array.length (N.input_nets scalar) in
  let n_key = Array.length (N.key_nets scalar) in
  let lanes = 1 + Rng.int rng Simw.width in
  let cycles = 4 in
  let keys = rand_bits rng n_key in
  match
    (Array.init lanes (fun _ -> Sim.create ~config scalar), Simw.create ~config word)
  with
  | exception Invalid_argument m -> Fail ("simw: " ^ m)
  | sims, simw ->
      let verdict = ref Pass in
      for c = 0 to cycles - 1 do
        let vecs = Array.make lanes [||] in
        for l = 0 to lanes - 1 do
          vecs.(l) <- rand_bits rng n_in
        done;
        ignore (Simw.step simw ~keys ~lanes (Simw.pack vecs));
        let wnets = Simw.net_values simw ~lanes in
        for l = 0 to lanes - 1 do
          ignore (Sim.step sims.(l) ~keys vecs.(l));
          let snets = Sim.net_values sims.(l) in
          let wlane = Simw.lane wnets l in
          if !verdict = Pass && snets <> wlane then begin
            let n = ref 0 in
            while snets.(!n) = wlane.(!n) do
              incr n
            done;
            verdict :=
              Fail
                (Printf.sprintf "cycle %d lane %d input %s: net n%d sim=%b simw=%b"
                   c l (vec_str vecs.(l)) !n snets.(!n) wlane.(!n))
          end
        done
      done;
      !verdict

let simw_vs_sim =
  let config_of rng nl =
    let n = Sim.num_config_latches nl in
    let c = Array.make n false in
    for i = 0 to n - 1 do
      c.(i) <- Rng.bool rng
    done;
    c
  in
  {
    name = "simw_vs_sim";
    description =
      "word-level Simw agrees bit-for-bit with scalar Sim (DFF stepping and \
       config-latch state included) at a random lane count";
    applies = (fun _ -> true);
    run =
      (fun rng nl ->
        if N.has_comb_cycle (comb_of nl) then Skip "combinational cycle"
        else
          let subject = with_config_latches nl in
          let config = config_of rng subject in
          simw_compare rng ~scalar:subject ~word:subject ~config);
    inject =
      (fun rng nl ->
        if N.has_comb_cycle (comb_of nl) then None
        else
          let subject = with_config_latches nl in
          let config = config_of rng subject in
          (* bias toward LUT mutants: the word-level cofactor recursion
             is this oracle's required fault class, and generic
             mutation only rarely lands on a LUT cell *)
          let rec pick tries =
            match Inject.mutate rng subject with
            | None -> None
            | Some m when m.Inject.label = "lut-bit-flip" || tries <= 1 ->
                Some m
            | Some _ -> pick (tries - 1)
          in
          match pick 3 with
          | None -> None
          | Some m ->
              Some
                ( m.Inject.label,
                  simw_compare rng ~scalar:subject ~word:m.Inject.netlist
                    ~config ));
  }

(* [simw_vs_sim] must stay last: per-oracle RNG streams are derived
   from position in this list, so appending preserves every existing
   oracle's stream (and with it the committed fuzz-smoke baselines). *)
let all =
  [
    sim_cnf;
    opt;
    lut_map;
    mux_chain;
    specialize;
    splice;
    lock_schemes;
    pipeline;
    emit_fabric;
    verilog;
    vcd;
    lint;
    simw_vs_sim;
  ]

let names = List.map (fun o -> o.name) all
let find nm = List.find_opt (fun o -> o.name = nm) all
