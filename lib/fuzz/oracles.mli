(** The differential oracle battery.

    An oracle is one adversarial cross-check of two independent
    implementations of "the same function": simulation vs the Tseitin
    CNF encoding, a rewrite pass vs {!Shell_netlist.Equiv}, the full
    lock pipeline vs the original design, an emitted text format vs
    its parser. Each oracle also knows how to run its comparator
    against a netlist with an injected fault ({!Inject}), which is how
    the self-test proves the comparator is not vacuously green.

    Verdicts are three-valued: [Skip] records an oracle that could not
    exercise the case (e.g. the pipeline's PnR legitimately aborting
    on a degenerate selection) without hiding it from the report. *)

type verdict =
  | Pass
  | Fail of string  (** the differential witness, human-readable *)
  | Skip of string  (** oracle not exercisable on this case *)

val pp_verdict : Format.formatter -> verdict -> unit

type t = {
  name : string;
  description : string;
  applies : Gen.shape -> bool;
      (** static applicability; inapplicable oracles are not run *)
  run : Shell_util.Rng.t -> Shell_netlist.Netlist.t -> verdict;
      (** the differential check; must be deterministic in (rng state,
          netlist) *)
  inject :
    Shell_util.Rng.t ->
    Shell_netlist.Netlist.t ->
    (string * verdict) option;
      (** self-test: rerun the comparator against a single-fault
          mutant. The label names the injected fault class
          ({!Inject.mutation}[.label], e.g. ["lut-bit-flip"]), so the
          runner can tally per-class coverage. [Some (_, Fail _)]
          means the fault was caught; [Some (_, Pass)] means the
          oracle is blind to it; [None] when no fault was
          injectable. *)
}

val all : t list
(** Every oracle, in stable order — the runner derives per-oracle RNG
    streams from the position in this list, so the order is part of
    the determinism contract. *)

val find : string -> t option
val names : string list
