(** Delta-debugging minimizer for failing fuzz cases.

    Given a netlist on which a (deterministic) failure predicate
    holds, greedily shrink it while the failure persists: drop
    primary outputs, replace cells by constants or wires, and sweep
    the dead fan-in cones. The result is the netlist checked into
    [test/regressions/] as a reproducer, so smaller is strictly
    better — but the predicate is re-evaluated on every candidate, so
    the cost is bounded by [max_calls]. *)

type stats = {
  oracle_calls : int;  (** failure-predicate invocations spent *)
  cells_before : int;
  cells_after : int;
  outputs_before : int;
  outputs_after : int;
}

val minimize :
  ?max_calls:int ->
  failing:(Shell_netlist.Netlist.t -> bool) ->
  Shell_netlist.Netlist.t ->
  Shell_netlist.Netlist.t * stats
(** [minimize ~failing nl] requires [failing nl = true] (raises
    [Invalid_argument] otherwise: minimizing a passing case means the
    caller's predicate is not deterministic). [failing] must be a pure
    function of the netlist — derive any randomness it needs from a
    fixed seed. [max_calls] (default 400) bounds predicate calls. *)
