(** Fuzz campaign driver.

    Fans the case stream out over {!Shell_util.Pool} with one child
    RNG per (case, oracle) pair, so a report is a pure function of
    [(seed, cases, oracle selection)] — byte-identical at any
    [SHELL_JOBS]. Failing cases are minimized by {!Shrink} inside the
    worker (the predicate replays the oracle under a copy of its
    original RNG) and optionally written as Verilog reproducers. *)

type failure = {
  case : int;  (** case index within the campaign *)
  oracle : string;
  shape : string;  (** rendered {!Gen.shape} of the original case *)
  message : string;  (** the differential witness *)
  netlist : Shell_netlist.Netlist.t;  (** minimized when shrinking is on *)
  shrink : Shrink.stats option;
  reproducer : string option;  (** path, when [out_dir] was given *)
}

type oracle_stat = {
  name : string;
  passed : int;
  failed : int;
  skipped : int;  (** inapplicable shapes + runtime skips *)
}

type report = {
  seed : int;
  cases : int;
  stats : oracle_stat list;  (** in {!Oracles.all} order *)
  failures : failure list;  (** in (case, oracle) order *)
}

val ok : report -> bool

val run :
  ?jobs:int ->
  ?oracles:Oracles.t list ->
  ?shrink:bool ->
  ?out_dir:string ->
  seed:int ->
  cases:int ->
  unit ->
  report
(** [out_dir] (created if missing) receives one
    [fuzz_<oracle>_s<seed>_c<case>.v] reproducer per failure. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Self-test}

    Mutation injection: rerun every oracle's comparator against
    single-fault mutants ({!Inject}) and demand each one catches its
    fault class at least once — the proof the battery is not
    vacuously green. *)

type self_stat = {
  oracle : string;
  attempts : int;  (** mutants the comparator was run against *)
  caught : int;  (** comparator returned [Fail _] *)
  missed : int;  (** comparator returned [Pass] (fault masked) *)
  classes : (string * (int * int)) list;
      (** per fault-class (caught, missed), sorted by label *)
}

val self_test :
  ?jobs:int -> ?oracles:Oracles.t list -> seed:int -> cases:int -> unit -> self_stat list

val self_test_ok : self_stat list -> bool
(** Every oracle attempted at least one injection and caught at least
    one — and oracles with required fault classes (when present)
    demonstrably caught each: [lint] a LUT bit flip, a mux arm/sel
    swap and a gate negation; [simw_vs_sim] a LUT bit flip (the
    word-level cofactor path). *)

val pp_self_test : Format.formatter -> self_stat list -> unit
