(** Deterministic random netlist and workload generation.

    The fuzzer's input distribution: every case draws a {!shape} (the
    structural knobs) and then a netlist realizing it, both from an
    explicit {!Shell_util.Rng.t}, so a (seed, case-index) pair fully
    determines the design under test. Generated netlists always
    validate ({!Shell_netlist.Netlist.validate}) and are acyclic.

    Shapes deliberately cover the emitter's historical trouble spots:
    a quarter of generated designs carry a primary input literally
    named [n<k>] (the fallback-name family used for anonymous nets),
    and origins are block-structured ([top/b0], [top/b1], ...) so the
    full lock pipeline can select ROUTE/LGC regions on them. *)

type shape = {
  n_inputs : int;  (** primary inputs, >= 2 *)
  n_outputs : int;  (** primary outputs, >= 1 *)
  n_gates : int;  (** combinational cells to grow *)
  with_luts : bool;  (** include random [Lut] cells *)
  with_muxes : bool;  (** include [Mux2]/[Mux4] cells *)
  with_dffs : bool;  (** include flops (feedback allowed) *)
  key_bits : int;  (** key input ports mixed into the logic *)
  blocks : int;  (** origin-tagged blocks ([top/b<i>]), >= 1 *)
  adversarial_names : bool;  (** name an input [n<k>] to hunt aliasing *)
}

val pp_shape : Format.formatter -> shape -> unit
(** One-line rendering, e.g. [in=5 out=2 gates=40 luts+muxes blocks=2]. *)

val random_shape : Shell_util.Rng.t -> shape

val netlist : Shell_util.Rng.t -> shape -> Shell_netlist.Netlist.t
(** Realize a shape. Block [b0] is biased toward muxes (route-like)
    when [with_muxes] so the pipeline's ROUTE selection has a natural
    target. Raises [Failure] if the generated netlist does not
    validate — that is a generator bug, and the fuzzer treats it as
    such. *)

val vectors : Shell_util.Rng.t -> count:int -> width:int -> bool array list
(** Random stimulus vectors. *)
