module N = Shell_netlist.Netlist
module Verilog = Shell_netlist.Verilog
module Rng = Shell_util.Rng
module Pool = Shell_util.Pool
module Obs = Shell_util.Obs

type failure = {
  case : int;
  oracle : string;
  shape : string;
  message : string;
  netlist : N.t;
  shrink : Shrink.stats option;
  reproducer : string option;
}

type oracle_stat = { name : string; passed : int; failed : int; skipped : int }

type report = {
  seed : int;
  cases : int;
  stats : oracle_stat list;
  failures : failure list;
}

let ok r = r.failures = []

(* Telemetry: aggregated post-collection on the main domain (Obs
   counters are not synchronized), so values are jobs-independent. *)
let c_cases = Obs.counter ~stable:true ~help:"fuzz cases generated" "fuzz_cases_total"
let c_checks = Obs.counter ~stable:true ~help:"fuzz oracle checks run" "fuzz_checks_total"
let c_failures = Obs.counter ~stable:true ~help:"fuzz oracle failures" "fuzz_failures_total"
let c_skips = Obs.counter ~stable:true ~help:"fuzz oracle skips" "fuzz_skips_total"

(* The per-oracle RNG stream is derived from the oracle's position in
   [Oracles.all] (not in the selected subset), so running a single
   oracle replays exactly the stream it saw in the full battery. *)
let indexed oracles =
  List.map
    (fun (o : Oracles.t) ->
      let rec pos i = function
        | [] -> List.length Oracles.all
        | (x : Oracles.t) :: tl -> if x.Oracles.name = o.Oracles.name then i else pos (i + 1) tl
      in
      (o, pos 0 Oracles.all))
    oracles

(* One case: generate, run every applicable oracle, shrink failures.
   Pure in (seed, i, oracle selection) — runs inside a Pool worker. *)
let run_case ~oracles ~shrink ~seed i =
  let rng = Pool.task_rng ~seed i in
  let shape = Gen.random_shape rng in
  let nl = Gen.netlist rng shape in
  let shape_str = Format.asprintf "%a" Gen.pp_shape shape in
  let results =
    List.map
      (fun ((o : Oracles.t), j) ->
        if not (o.Oracles.applies shape) then
          (o.Oracles.name, Oracles.Skip "shape not applicable", None)
        else
          let orng = Rng.child rng (1 + (2 * j)) in
          let v = o.Oracles.run (Rng.copy orng) nl in
          match v with
          | Oracles.Fail _ when shrink ->
              let failing cand =
                match o.Oracles.run (Rng.copy orng) cand with
                | Oracles.Fail _ -> true
                | Oracles.Pass | Oracles.Skip _ -> false
                | exception _ -> false
              in
              let small, st = Shrink.minimize ~failing nl in
              (o.Oracles.name, v, Some (small, st))
          | _ -> (o.Oracles.name, v, None))
      oracles
  in
  (shape_str, nl, results)

let write_reproducer ~dir ~seed (f : failure) =
  let path =
    Filename.concat dir (Printf.sprintf "fuzz_%s_s%d_c%d.v" f.oracle seed f.case)
  in
  let oc = open_out path in
  Printf.fprintf oc "// shell fuzz reproducer (minimized)\n";
  Printf.fprintf oc "// oracle: %s\n" f.oracle;
  Printf.fprintf oc "// seed: %d  case: %d\n" seed f.case;
  Printf.fprintf oc "// shape: %s\n" f.shape;
  Printf.fprintf oc "// failure: %s\n"
    (String.map (fun c -> if c = '\n' then ' ' else c) f.message);
  (match f.shrink with
  | Some s ->
      Printf.fprintf oc "// shrink: %d -> %d cells in %d oracle calls\n"
        s.Shrink.cells_before s.Shrink.cells_after s.Shrink.oracle_calls
  | None -> ());
  output_string oc (Verilog.to_string f.netlist);
  close_out oc;
  path

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let run ?jobs ?(oracles = Oracles.all) ?(shrink = true) ?out_dir ~seed ~cases () =
  Obs.with_span "fuzz" @@ fun () ->
  let oracles = indexed oracles in
  let results =
    Pool.mapi ?jobs
      (fun i () -> run_case ~oracles ~shrink ~seed i)
      (Array.make cases ())
  in
  Obs.add c_cases cases;
  (match out_dir with Some d -> mkdirs d | None -> ());
  let stats = Hashtbl.create 16 in
  List.iter
    (fun ((o : Oracles.t), _) -> Hashtbl.replace stats o.Oracles.name (0, 0, 0))
    oracles;
  let bump name f =
    let p, fl, s = try Hashtbl.find stats name with Not_found -> (0, 0, 0) in
    Hashtbl.replace stats name (f (p, fl, s))
  in
  let failures = ref [] in
  Array.iteri
    (fun case (shape_str, nl, per_oracle) ->
      List.iter
        (fun (name, verdict, shrunk) ->
          match verdict with
          | Oracles.Pass ->
              Obs.incr c_checks;
              bump name (fun (p, f, s) -> (p + 1, f, s))
          | Oracles.Skip _ ->
              Obs.incr c_skips;
              bump name (fun (p, f, s) -> (p, f, s + 1))
          | Oracles.Fail message ->
              Obs.incr c_checks;
              Obs.incr c_failures;
              bump name (fun (p, f, s) -> (p, f + 1, s));
              let netlist, shrink_stats =
                match shrunk with
                | Some (small, st) -> (small, Some st)
                | None -> (nl, None)
              in
              let f =
                {
                  case;
                  oracle = name;
                  shape = shape_str;
                  message;
                  netlist;
                  shrink = shrink_stats;
                  reproducer = None;
                }
              in
              let f =
                match out_dir with
                | Some dir -> { f with reproducer = Some (write_reproducer ~dir ~seed f) }
                | None -> f
              in
              failures := f :: !failures)
        per_oracle)
    results;
  let stats =
    List.map
      (fun ((o : Oracles.t), _) ->
        let p, f, s = Hashtbl.find stats o.Oracles.name in
        { name = o.Oracles.name; passed = p; failed = f; skipped = s })
      oracles
  in
  { seed; cases; stats; failures = List.rev !failures }

let pp_report ppf r =
  Format.fprintf ppf "fuzz: seed=%d cases=%d oracles=%d@." r.seed r.cases
    (List.length r.stats);
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-12s pass=%-6d fail=%-4d skip=%d@." s.name s.passed
        s.failed s.skipped)
    r.stats;
  let checks =
    List.fold_left (fun acc s -> acc + s.passed + s.failed) 0 r.stats
  in
  Format.fprintf ppf "  total: %d checks, %d failure%s@." checks
    (List.length r.failures)
    (if List.length r.failures = 1 then "" else "s");
  List.iter
    (fun f ->
      Format.fprintf ppf "FAIL case=%d oracle=%s (%s)@.  %s@." f.case f.oracle
        f.shape f.message;
      (match f.shrink with
      | Some s ->
          Format.fprintf ppf "  shrunk %d -> %d cells (%d oracle calls)@."
            s.Shrink.cells_before s.Shrink.cells_after s.Shrink.oracle_calls
      | None -> ());
      match f.reproducer with
      | Some p -> Format.fprintf ppf "  reproducer: %s@." p
      | None -> ())
    r.failures

(* ------------------------------------------------------------------ *)
(* Self-test                                                           *)
(* ------------------------------------------------------------------ *)

type self_stat = {
  oracle : string;
  attempts : int;
  caught : int;
  missed : int;
  classes : (string * (int * int)) list;
}

let self_test ?jobs ?(oracles = Oracles.all) ~seed ~cases () =
  Obs.with_span "fuzz-self-test" @@ fun () ->
  let oracles = indexed oracles in
  let results =
    Pool.mapi ?jobs
      (fun i () ->
        let rng = Pool.task_rng ~seed i in
        let shape = Gen.random_shape rng in
        let nl = Gen.netlist rng shape in
        List.map
          (fun ((o : Oracles.t), j) ->
            if not (o.Oracles.applies shape) then (o.Oracles.name, None)
            else
              let irng = Rng.child rng (2 + (2 * j)) in
              (o.Oracles.name, o.Oracles.inject irng nl))
          oracles)
      (Array.make cases ())
  in
  let tally = Hashtbl.create 16 in
  let classes = Hashtbl.create 32 in
  List.iter
    (fun ((o : Oracles.t), _) -> Hashtbl.replace tally o.Oracles.name (0, 0, 0))
    oracles;
  let bump name label hit =
    let a, c, m = Hashtbl.find tally name in
    Hashtbl.replace tally name
      (if hit then (a + 1, c + 1, m) else (a + 1, c, m + 1));
    let kc, km =
      Option.value ~default:(0, 0) (Hashtbl.find_opt classes (name, label))
    in
    Hashtbl.replace classes (name, label)
      (if hit then (kc + 1, km) else (kc, km + 1))
  in
  Array.iter
    (fun per_oracle ->
      List.iter
        (fun (name, outcome) ->
          match outcome with
          | None | Some (_, Oracles.Skip _) -> ()
          | Some (label, Oracles.Fail _) -> bump name label true
          | Some (label, Oracles.Pass) -> bump name label false)
        per_oracle)
    results;
  List.map
    (fun ((o : Oracles.t), _) ->
      let a, c, m = Hashtbl.find tally o.Oracles.name in
      let cls =
        Hashtbl.fold
          (fun (name, label) counts acc ->
            if name = o.Oracles.name then (label, counts) :: acc else acc)
          classes []
        |> List.sort compare
      in
      {
        oracle = o.Oracles.name;
        attempts = a;
        caught = c;
        missed = m;
        classes = cls;
      })
    oracles

(* Fault classes specific oracles must demonstrably flag, beyond the
   blanket "caught something" bar. Each group is satisfied by any one
   of its labels: the lint battery must flag LUT bit flips, mux
   arm/sel swaps and gate negations; the Simw cross-check must prove
   it catches LUT bit flips (the word-level cofactor path). *)
let required_classes =
  [
    ( "lint",
      [
        [ "lut-bit-flip" ];
        [ "mux-arm-swap"; "mux-sel-swap" ];
        [ "gate-negate" ];
      ] );
    ("simw_vs_sim", [ [ "lut-bit-flip" ] ]);
  ]

let self_test_ok stats =
  stats <> []
  && List.for_all (fun s -> s.attempts > 0 && s.caught > 0) stats
  && List.for_all
       (fun s ->
         match List.assoc_opt s.oracle required_classes with
         | None -> true
         | Some groups ->
             List.for_all
               (fun group ->
                 List.exists
                   (fun label ->
                     match List.assoc_opt label s.classes with
                     | Some (caught, _) -> caught > 0
                     | None -> false)
                   group)
               groups)
       stats

let pp_self_test ppf stats =
  Format.fprintf ppf "mutation-injection self-test:@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-12s injected=%-5d caught=%-5d missed=%-4d %s@."
        s.oracle s.attempts s.caught s.missed
        (if s.attempts = 0 then "NO-INJECTION"
         else if s.caught = 0 then "BLIND"
         else "ok");
      if s.classes <> [] then
        Format.fprintf ppf "    %s@."
          (String.concat ", "
             (List.map
                (fun (label, (c, m)) ->
                  Printf.sprintf "%s %d/%d" label c (c + m))
                s.classes)))
    stats
