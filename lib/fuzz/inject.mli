(** Single-fault mutation injection — the fuzzer's self-test seam.

    A differential oracle is only trustworthy if it demonstrably fails
    on a netlist that computes a different function. [mutate] plants
    exactly one such fault — a flipped LUT truth-table row, swapped
    mux arms, a negated gate — into a cell on some primary-output
    cone, and the self-test then asserts the oracle's comparator
    reports the mismatch.

    Every mutation preserves structural validity and acyclicity (only
    cell-local kind/operand-order changes, never connectivity), so a
    detection failure always means the {e oracle} is blind, not that
    the mutant crashed. *)

type mutation = {
  label : string;  (** e.g. ["lut-bit-flip"], ["mux-arm-swap"] *)
  cell : int;  (** mutated cell index *)
  netlist : Shell_netlist.Netlist.t;
}

val mutate : Shell_util.Rng.t -> Shell_netlist.Netlist.t -> mutation option
(** Inject one fault into a cell reachable from a primary output.
    [None] when no cell admits a function-changing mutation (e.g. a
    pure wire of buffers). Mutations can still be functionally masked
    (a flipped don't-care row); callers average detection over several
    mutants. *)
