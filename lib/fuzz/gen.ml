module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Rng = Shell_util.Rng
module Truthtab = Shell_util.Truthtab

type shape = {
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  with_luts : bool;
  with_muxes : bool;
  with_dffs : bool;
  key_bits : int;
  blocks : int;
  adversarial_names : bool;
}

let pp_shape ppf s =
  Format.fprintf ppf "in=%d out=%d gates=%d%s%s%s%s key=%d blocks=%d"
    s.n_inputs s.n_outputs s.n_gates
    (if s.with_luts then " luts" else "")
    (if s.with_muxes then " muxes" else "")
    (if s.with_dffs then " dffs" else "")
    (if s.adversarial_names then " n-names" else "")
    s.key_bits s.blocks

let random_shape rng =
  {
    n_inputs = 3 + Rng.int rng 6;
    n_outputs = 1 + Rng.int rng 4;
    n_gates = 12 + Rng.int rng 60;
    with_luts = Rng.int rng 3 > 0;
    with_muxes = Rng.int rng 4 > 0;
    with_dffs = Rng.int rng 4 = 0;
    key_bits = (if Rng.int rng 3 = 0 then 1 + Rng.int rng 5 else 0);
    blocks = 1 + Rng.int rng 3;
    adversarial_names = Rng.int rng 4 = 0;
  }

let netlist rng shape =
  let nl = N.create "fuzz" in
  (* An input named like an anonymous-net fallback ("n<k>") keeps
     pressure on the emitter's uniquification. *)
  let adversarial_at =
    if shape.adversarial_names then Rng.int rng shape.n_inputs else -1
  in
  let input_name i =
    if i = adversarial_at then
      Printf.sprintf "n%d" (Rng.int rng (shape.n_inputs + shape.n_gates + 4))
    else Printf.sprintf "i%d" i
  in
  let ins = Array.init shape.n_inputs (fun i -> N.add_input nl (input_name i)) in
  let keys =
    Array.init shape.key_bits (fun i -> N.add_key nl (Printf.sprintf "k%d" i))
  in
  let pool = ref (Array.append ins keys) in
  let pick () = Rng.choice rng !pool in
  (* Flop outputs exist up front so combinational logic can read state;
     the Dff cells themselves are appended once the pool is complete. *)
  let n_dffs = if shape.with_dffs then 1 + Rng.int rng 3 else 0 in
  let dff_q = Array.init n_dffs (fun _ -> N.new_net nl) in
  if n_dffs > 0 then pool := Array.append !pool dff_q;
  let block_of g = g * shape.blocks / max 1 shape.n_gates in
  for g = 0 to shape.n_gates - 1 do
    let origin = Printf.sprintf "top/b%d" (block_of g) in
    (* block b0 is route-shaped: mostly muxes when muxes are enabled *)
    let mux_bias =
      shape.with_muxes && (block_of g = 0 || Rng.int rng 4 = 0)
    in
    let out =
      if mux_bias && Rng.int rng 3 > 0 then
        if Rng.int rng 5 = 0 then
          N.mux4 ~origin nl ~s0:(pick ()) ~s1:(pick ())
            (Array.init 4 (fun _ -> pick ()))
        else N.mux2 ~origin nl ~sel:(pick ()) ~a:(pick ()) ~b:(pick ())
      else
        match Rng.int rng 12 with
        | 0 -> N.and_ ~origin nl (pick ()) (pick ())
        | 1 -> N.or_ ~origin nl (pick ()) (pick ())
        | 2 -> N.xor_ ~origin nl (pick ()) (pick ())
        | 3 -> N.nand_ ~origin nl (pick ()) (pick ())
        | 4 -> N.nor_ ~origin nl (pick ()) (pick ())
        | 5 -> N.xnor_ ~origin nl (pick ()) (pick ())
        | 6 -> N.not_ ~origin nl (pick ())
        | 7 -> N.buf ~origin nl (pick ())
        | 8 when shape.with_luts ->
            let arity = 2 + Rng.int rng 3 in
            let tt =
              Truthtab.create ~arity ~bits:(Rng.bits64 rng)
            in
            N.lut ~origin nl tt (Array.init arity (fun _ -> pick ()))
        | 9 when Rng.int rng 3 = 0 -> N.const ~origin nl (Rng.bool rng)
        | _ -> N.and_ ~origin nl (pick ()) (pick ())
    in
    pool := Array.append !pool [| out |]
  done;
  for i = 0 to n_dffs - 1 do
    N.add_cell nl
      (Cell.make ~origin:"top/state" Cell.Dff [| pick () |] dff_q.(i))
  done;
  (* outputs: distinct nets drawn from the most recently created logic *)
  let len = Array.length !pool in
  let chosen = Hashtbl.create 8 in
  let n_out = ref 0 in
  let tries = ref 0 in
  while !n_out < shape.n_outputs && !tries < 50 do
    incr tries;
    let net = (!pool).(len - 1 - Rng.int rng (min len (shape.n_outputs * 4))) in
    if not (Hashtbl.mem chosen net) then begin
      Hashtbl.add chosen net ();
      N.add_output nl (Printf.sprintf "o%d" !n_out) net;
      incr n_out
    end
  done;
  if !n_out = 0 then N.add_output nl "o0" (!pool).(len - 1);
  (match N.validate nl with
  | Ok () -> ()
  | Error d ->
      failwith
        ("Fuzz.Gen.netlist: generator produced an invalid netlist: "
        ^ Shell_util.Diag.to_string d));
  nl

let vectors rng ~count ~width =
  List.init count (fun _ -> Array.init width (fun _ -> Rng.bool rng))
