module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Rewrite = Shell_netlist.Rewrite

type stats = {
  oracle_calls : int;
  cells_before : int;
  cells_after : int;
  outputs_before : int;
  outputs_after : int;
}

let valid nl = match N.validate nl with Ok () -> true | Error _ -> false

(* Cell replacements that sever fan-in: a constant (drops the whole
   cone) or a wire from the first input (keeps one path). *)
let replacements (c : Cell.t) =
  match c.Cell.kind with
  | Cell.Const _ | Cell.Dff | Cell.Config_latch -> []
  | Cell.Buf ->
      [ { c with Cell.kind = Cell.Const false; ins = [||] } ]
  | _ ->
      let wire =
        if Array.length c.Cell.ins > 0 then
          [ { c with Cell.kind = Cell.Buf; ins = [| c.Cell.ins.(0) |] } ]
        else []
      in
      { c with Cell.kind = Cell.Const false; ins = [||] }
      :: { c with Cell.kind = Cell.Const true; ins = [||] }
      :: wire

let size nl = (N.num_cells nl, List.length (N.outputs nl))

let minimize ?(max_calls = 400) ~failing nl =
  if not (failing nl) then
    invalid_arg "Shrink.minimize: predicate does not fail on the input";
  let calls = ref 1 in
  let cells_before = N.num_cells nl in
  let outputs_before = List.length (N.outputs nl) in
  let check cand =
    if !calls >= max_calls then false
    else begin
      incr calls;
      valid cand && failing cand
    end
  in
  let smaller a b = size a < size b in
  let current = ref nl in
  let progress = ref true in
  while !progress && !calls < max_calls do
    progress := false;
    (* 1. drop one primary output (and its now-dead cone) at a time *)
    let outs = List.map fst (N.outputs !current) in
    if List.length outs > 1 then
      List.iter
        (fun drop ->
          if (not !progress) && !calls < max_calls then begin
            let cand =
              Rewrite.dead_cell_elim
                (N.filter_outputs !current (fun nm -> nm <> drop))
            in
            if smaller cand !current && check cand then begin
              current := cand;
              progress := true
            end
          end)
        outs;
    (* 2. replace one cell by a constant or a wire, sweep the cone *)
    if not !progress then begin
      let n = N.num_cells !current in
      let i = ref (n - 1) in
      while (not !progress) && !i >= 0 && !calls < max_calls do
        let c = N.cell !current !i in
        List.iter
          (fun repl ->
            if (not !progress) && !calls < max_calls then begin
              let the_i = !i in
              let cand =
                Rewrite.dead_cell_elim
                  (N.map_cells !current (fun j c0 ->
                       if j = the_i then repl else c0))
              in
              if smaller cand !current && check cand then begin
                current := cand;
                progress := true
              end
            end)
          (replacements c);
        decr i
      done
    end
  done;
  ( !current,
    {
      oracle_calls = !calls;
      cells_before;
      cells_after = N.num_cells !current;
      outputs_before;
      outputs_after = List.length (N.outputs !current);
    } )
