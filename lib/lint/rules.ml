module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Truthtab = Shell_util.Truthtab
module Diag = Shell_util.Diag
module Fabric = Shell_fabric.Fabric
module Bitstream = Shell_fabric.Bitstream
module Resources = Shell_fabric.Resources
module Pnr = Shell_pnr.Pnr
open Lint

(* Partially-applied [Lint.finding] closes over the rule record, so
   every rule is defined as [let rec] on itself via a forward cell —
   simpler to just build the record twice; instead each [check] takes
   the rule through this helper. *)
let rule name pack severity help check =
  let rec r = { name; pack; severity; help; check = (fun ctx -> check r ctx) }
  in
  r

let invalids ctx =
  N.validate_all ctx.subj.netlist
  |> List.filter_map (fun d ->
         match d.Diag.payload with
         | N.Invalid iv -> Some (iv, d.Diag.message)
         | _ -> None)

(* ---------------- structural pack ---------------- *)

let port_invalid =
  rule "port-invalid" Structural Error
    "a port names an out-of-range net or duplicates another port's name"
    (fun r ctx ->
      invalids ctx
      |> List.filter_map (fun (iv, msg) ->
             match iv with
             | N.Bad_net_id { port; _ } | N.Duplicate_port { port } ->
                 Some (finding r ~where:("port:" ^ port) "%s" msg)
             | _ -> None))

let net_multi_driven =
  rule "net-multi-driven" Structural Error
    "a net is driven by more than one source" (fun r ctx ->
      invalids ctx
      |> List.filter_map (fun (iv, msg) ->
             match iv with
             | N.Multiple_drivers { net; _ } ->
                 Some (finding r ~where:(Printf.sprintf "net:n%d" net) "%s" msg)
             | _ -> None))

let net_undriven =
  rule "net-undriven" Structural Error
    "an output or a cell input reads a floating net" (fun r ctx ->
      invalids ctx
      |> List.filter_map (fun (iv, msg) ->
             match iv with
             | N.Undriven_output { port; _ } ->
                 Some (finding r ~where:("output:" ^ port) "%s" msg)
             | N.Undriven_read { net } ->
                 Some (finding r ~where:(Printf.sprintf "net:n%d" net) "%s" msg)
             | _ -> None))

let pp_cells scc =
  let shown = List.filteri (fun i _ -> i < 8) scc in
  String.concat "," (List.map string_of_int shown)
  ^ if List.length scc > 8 then ",..." else ""

let comb_cycle =
  rule "comb-cycle" Structural Error
    "the combinational part contains a cycle (unsynthesizable feedback)"
    (fun r ctx ->
      Dataflow.comb_sccs ctx.subj.netlist
      |> List.map (fun scc ->
             finding r
               ~where:(Printf.sprintf "cell:%d" (List.hd scc))
               "combinational cycle through %d cell%s: %s" (List.length scc)
               (if List.length scc = 1 then "" else "s")
               (pp_cells scc)))

let cell_dead =
  rule "cell-dead" Structural Warn
    "a cell's output reaches no primary output (dead logic)" (fun r ctx ->
      let nl = ctx.subj.netlist in
      (* grouped by origin: a dead block is one finding, not one per
         cell, and keeps a stable fingerprint as the block grows *)
      let order = ref [] in
      let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
      Array.iteri
        (fun i (c : Cell.t) ->
          if not ctx.reach.(c.Cell.out) then begin
            (match Hashtbl.find_opt groups c.Cell.origin with
            | Some l -> l := i :: !l
            | None ->
                Hashtbl.add groups c.Cell.origin (ref [ i ]);
                order := c.Cell.origin :: !order)
          end)
        (N.cells nl);
      List.rev_map
        (fun origin ->
          let cells = List.rev !(Hashtbl.find groups origin) in
          let n = List.length cells in
          finding r
            ~where:(if origin = "" then "cells" else "origin:" ^ origin)
            "%d cell%s%s reach%s no output: %s" n
            (if n = 1 then "" else "s")
            (if origin = "" then "" else Printf.sprintf " of origin %s" origin)
            (if n = 1 then "es" else "")
            (pp_cells cells))
        !order)

let output_constant =
  rule "output-constant" Structural Warn
    "a primary output is provably stuck at a constant" (fun r ctx ->
      N.outputs ctx.subj.netlist
      |> List.filter_map (fun (nm, net) ->
             match Dataflow.known ctx.values.(net) with
             | Some b ->
                 Some
                   (finding r ~where:("output:" ^ nm)
                      "output %s is the constant %d" nm
                      (if b then 1 else 0))
             | None -> None))

let lut_degenerate =
  rule "lut-degenerate" Structural Info
    "a LUT's table is constant or ignores one of its inputs" (fun r ctx ->
      let fs = ref [] in
      Array.iteri
        (fun i (c : Cell.t) ->
          match c.Cell.kind with
          | Cell.Lut tt -> (
              match Truthtab.is_const tt with
              | Some b ->
                  fs :=
                    finding r
                      ~where:(Printf.sprintf "cell:%d" i)
                      "lut%d computes the constant %d" (Truthtab.arity tt)
                      (if b then 1 else 0)
                    :: !fs
              | None ->
                  let unused = ref [] in
                  for v = Truthtab.arity tt - 1 downto 0 do
                    if not (Truthtab.depends_on tt v) then unused := v :: !unused
                  done;
                  if !unused <> [] then
                    fs :=
                      finding r
                        ~where:(Printf.sprintf "cell:%d" i)
                        "lut%d ignores input%s %s" (Truthtab.arity tt)
                        (if List.length !unused = 1 then "" else "s")
                        (String.concat ","
                           (List.map string_of_int !unused))
                      :: !fs)
          | _ -> ())
        (N.cells ctx.subj.netlist);
      List.rev !fs)

(* ---------------- security pack ---------------- *)

let key_dead =
  rule "key-dead" Security Error
    "a key bit has an empty influence cone (removal/SAT-prone)"
    (fun r ctx ->
      N.keys ctx.subj.netlist
      |> List.filter_map (fun (nm, net) ->
             if net >= 0 && net < Array.length ctx.reach && not ctx.reach.(net)
             then
               Some
                 (finding r ~where:("key:" ^ nm)
                    "key bit %s reaches no primary output: the locking it \
                     provides can be removed structurally"
                    nm)
             else None))

let key_blocked =
  rule "key-blocked" Security Warn
    "a key bit is constant-propagated away before any output" (fun r ctx ->
      N.keys ctx.subj.netlist
      |> List.filter_map (fun (nm, net) ->
             if
               net >= 0
               && net < Array.length ctx.reach
               && ctx.reach.(net)
               && not ctx.live.(net)
             then
               Some
                 (finding r ~where:("key:" ^ nm)
                    "key bit %s is wired towards the outputs but every path \
                     is cut by a proven constant: it cannot affect the \
                     function"
                    nm)
             else None))

let key_odc_dead =
  rule "key-odc-dead" Security Warn
    "a key bit is observable at no output under the ODC masking rules"
    (fun r ctx ->
      N.keys ctx.subj.netlist
      |> List.filter_map (fun (nm, net) ->
             if
               net >= 0
               && net < Array.length ctx.reach
               && ctx.reach.(net) && ctx.live.(net)
               && not ctx.odc.Odc.observable.(net)
             then
               Some
                 (finding r ~where:("key:" ^ nm)
                    "key bit %s survives the constant cuts but every read is \
                     masked (unsteerable mux select, cofactored LUT input): \
                     toggling it alone can never reach an output"
                    nm)
             else None))

let key_taint_collapse =
  rule "key-taint-collapse" Security Warn
    "a primary output's key-taint set is empty (cone simulable without \
     the key)"
    (fun r ctx ->
      if N.keys ctx.subj.netlist = [] then []
      else
        N.outputs ctx.subj.netlist
        |> List.filter_map (fun (nm, net) ->
               if Taint.is_empty ctx.taint net then
                 Some
                   (finding r ~where:("output:" ^ nm)
                      "no key bit can functionally reach output %s: its \
                       whole cone is attacker-simulable without the key"
                      nm)
               else None))

let scope_leak =
  rule "scope-leak" Security Warn
    "a key bit's 0/1 constant-propagation scores diverge (SCOPE-guessable)"
    (fun r ctx ->
      if N.keys ctx.subj.netlist = [] then []
      else
        Scope.scores ctx.subj.netlist
        |> List.filter_map (fun (b : Scope.bit_score) ->
               match Scope.guess b with
               | Some g ->
                   Some
                     (finding r
                        ~where:("key:" ^ b.Scope.name)
                        "pinning %s to %d collapses %d net%s vs %d the other \
                         way: SCOPE-style scoring guesses the bit is %d \
                         oracle-free"
                        b.Scope.name
                        (if g then 0 else 1)
                        (max b.Scope.score0 b.Scope.score1)
                        (if max b.Scope.score0 b.Scope.score1 = 1 then ""
                         else "s")
                        (min b.Scope.score0 b.Scope.score1)
                        (if g then 1 else 0))
               | None -> None))

let mux_chain_cycle =
  rule "mux-chain-cycle" Security Error
    "MUX cells form a cycle, violating the non-cyclic ROUTE-chain mapping"
    (fun r ctx ->
      Dataflow.mux_sccs ctx.subj.netlist
      |> List.map (fun scc ->
             finding r
               ~where:(Printf.sprintf "cell:%d" (List.hd scc))
               "cyclic MUX chain through %d cell%s: %s (the paper's ROUTE \
                mapping requires non-cyclical chains)"
               (List.length scc)
               (if List.length scc = 1 then "" else "s")
               (pp_cells scc)))

let origin_matches pats (c : Cell.t) =
  List.exists
    (fun pat ->
      let s = c.Cell.origin and m = String.length pat in
      let n = String.length s in
      let rec go i = i + m <= n && (String.sub s i m = pat || go (i + 1)) in
      m > 0 && go 0)
    pats

let lgc_depth =
  rule "lgc-depth" Security Warn
    "the selected LGC is not depth-0 adjacent to the ROUTE cone"
    (fun r ctx ->
      match ctx.subj.selection with
      | None -> []
      | Some { design; route_origins; lgc_origins } -> (
          let cells = N.cells design in
          let matching pats =
            let acc = ref [] in
            Array.iteri
              (fun i c -> if origin_matches pats c then acc := i :: !acc)
              cells;
            List.rev !acc
          in
          let route = matching route_origins and lgc = matching lgc_origins in
          if route = [] || lgc = [] then []
          else begin
            (* BFS over "shares a net" cell adjacency: distance 1 means
               a direct wire between the families, i.e. the paper's
               depth 0 *)
            let n = Array.length cells in
            let dist = Array.make n max_int in
            let q = Queue.create () in
            List.iter
              (fun i ->
                dist.(i) <- 0;
                Queue.add i q)
              route;
            while not (Queue.is_empty q) do
              let i = Queue.take q in
              let visit j =
                if dist.(j) = max_int then begin
                  dist.(j) <- dist.(i) + 1;
                  Queue.add j q
                end
              in
              Array.iter
                (fun net ->
                  match N.driver design net with
                  | Some j -> visit j
                  | None -> ())
                cells.(i).Cell.ins;
              List.iter visit (N.fanout design cells.(i).Cell.out)
            done;
            let best =
              List.fold_left (fun acc j -> min acc dist.(j)) max_int lgc
            in
            if best = max_int then
              [
                finding r ~where:"selection:lgc"
                  "selected LGC shares no connected component with the ROUTE \
                   cone";
              ]
            else if best > 1 then
              [
                finding r ~where:"selection:lgc"
                  "selected LGC is %d cell hops from the ROUTE cone (depth \
                   %d; the paper keeps LGC directly adjacent, depth 0)"
                  best (best - 1);
              ]
            else []
          end))

let kind_eq a b =
  match (a, b) with
  | Cell.Lut t1, Cell.Lut t2 -> Truthtab.equal t1 t2
  | _ -> a = b

let ref_mismatch =
  rule "ref-mismatch" Security Error
    "the netlist structurally deviates from its golden reference (tampering)"
    (fun r ctx ->
      match ctx.subj.reference with
      | None -> []
      | Some golden ->
          let nl = ctx.subj.netlist in
          let fs = ref [] in
          let add f = fs := f :: !fs in
          if
            N.inputs nl <> N.inputs golden
            || N.keys nl <> N.keys golden
            || N.outputs nl <> N.outputs golden
          then
            add
              (finding r ~where:"ports"
                 "port lists differ from the reference netlist");
          let a = N.cells nl and b = N.cells golden in
          if Array.length a <> Array.length b then
            add
              (finding r ~where:"cells" "%d cells where the reference has %d"
                 (Array.length a) (Array.length b));
          for i = 0 to min (Array.length a) (Array.length b) - 1 do
            let ca = a.(i) and cb = b.(i) in
            if not (kind_eq ca.Cell.kind cb.Cell.kind) then
              add
                (finding r
                   ~where:(Printf.sprintf "cell:%d" i)
                   "cell %d is %s where the reference has %s" i
                   (Cell.kind_name ca.Cell.kind)
                   (Cell.kind_name cb.Cell.kind))
            else if ca.Cell.ins <> cb.Cell.ins || ca.Cell.out <> cb.Cell.out
            then
              add
                (finding r
                   ~where:(Printf.sprintf "cell:%d" i)
                   "cell %d (%s) is rewired vs the reference" i
                   (Cell.kind_name ca.Cell.kind))
          done;
          List.rev !fs)

(* ---------------- fabric pack ---------------- *)

let fabric_unused =
  rule "fabric-unused" Fabric Warn
    "the fabric retains unused resources (shrink not applied)" (fun r ctx ->
      match ctx.subj.pnr with
      | Some pr when not ctx.subj.shrunk ->
          let c = Pnr.fit_counts pr in
          let tiles = Fabric.clb_tiles pr.Pnr.fabric in
          let used_tiles = pr.Pnr.placement.Pnr.used_tiles in
          List.filter_map
            (fun (what, used, cap) ->
              if cap > used then
                Some
                  (finding r ~where:("fabric:" ^ what)
                     "%d of %d %s unused but still materialized (run the \
                      shrink step)"
                     (cap - used) cap what)
              else None)
            [
              ("tiles", used_tiles, tiles);
              ("luts", c.Pnr.used_luts, c.Pnr.lut_capacity);
              ("chain", c.Pnr.used_chain, c.Pnr.chain_capacity);
            ]
      | _ -> [])

let config_dangling =
  rule "config-dangling" Fabric Error
    "a bitstream config bit drives nothing in the locked netlist"
    (fun r ctx ->
      match ctx.subj.bitstream with
      | None -> []
      | Some bs ->
          let nl = ctx.subj.netlist in
          let keys = Array.of_list (N.keys nl) in
          if Array.length keys <> Bitstream.length bs then []
            (* the accounting rule reports the mismatch *)
          else
            let out_nets = N.output_nets nl in
            let is_output net = Array.exists (fun o -> o = net) out_nets in
            Bitstream.segments bs
            |> List.filter_map (fun (s : Bitstream.segment) ->
                   let dangling = ref [] in
                   for b = s.Bitstream.offset + s.Bitstream.length - 1
                       downto s.Bitstream.offset do
                     let nm, net = keys.(b) in
                     if N.fanout nl net = [] && not (is_output net) then
                       dangling := nm :: !dangling
                   done;
                   match !dangling with
                   | [] -> None
                   | d ->
                       Some
                         (finding r
                            ~where:("segment:" ^ s.Bitstream.label)
                            "%d of %d config bit%s of %s drive nothing: %s"
                            (List.length d) s.Bitstream.length
                            (if s.Bitstream.length = 1 then "" else "s")
                            s.Bitstream.label (String.concat "," d))))

let is_pow2 n = n > 0 && n land (n - 1) = 0

let bitstream_accounting =
  rule "bitstream-accounting" Fabric Error
    "bitstream directory, key ports and resource inventory disagree"
    (fun r ctx ->
      match ctx.subj.bitstream with
      | None -> []
      | Some bs ->
          let fs = ref [] in
          let add f = fs := f :: !fs in
          let len = Bitstream.length bs in
          let segs = Bitstream.segments bs in
          let sum =
            List.fold_left (fun a (s : Bitstream.segment) -> a + s.length) 0
              segs
          in
          if sum <> len then
            add
              (finding r ~where:"segments"
                 "segment directory covers %d bits, bitstream carries %d" sum
                 len);
          let seen = Hashtbl.create 16 in
          List.iter
            (fun (s : Bitstream.segment) ->
              if Hashtbl.mem seen s.Bitstream.label then
                add
                  (finding r
                     ~where:("segment:" ^ s.Bitstream.label)
                     "duplicate segment label %s" s.Bitstream.label)
              else Hashtbl.add seen s.Bitstream.label ())
            segs;
          List.iter
            (fun (s : Bitstream.segment) ->
              if
                Bitstream.kind_of_label s.Bitstream.label = Bitstream.Table
                && not (is_pow2 s.Bitstream.length)
              then
                add
                  (finding r
                     ~where:("segment:" ^ s.Bitstream.label)
                     "table segment %s holds %d bits — not a power of two, \
                      so it cannot be a LUT truth table"
                     s.Bitstream.label s.Bitstream.length))
            segs;
          let nkeys = List.length (N.keys ctx.subj.netlist) in
          if nkeys > 0 && nkeys <> len then
            add
              (finding r ~where:"keys"
                 "locked netlist exposes %d key bits, bitstream carries %d"
                 nkeys len);
          (match ctx.subj.used with
          | Some u when u.Resources.config_bits <> len ->
              add
                (finding r ~where:"config_bits"
                   "resource inventory accounts %d config bits, bitstream \
                    carries %d"
                   u.Resources.config_bits len)
          | _ -> ());
          List.rev !fs)

(* ---------------- registry ---------------- *)

let structural =
  [
    port_invalid;
    net_multi_driven;
    net_undriven;
    comb_cycle;
    cell_dead;
    output_constant;
    lut_degenerate;
  ]

let security =
  [
    key_dead;
    key_blocked;
    key_odc_dead;
    key_taint_collapse;
    scope_leak;
    mux_chain_cycle;
    lgc_depth;
    ref_mismatch;
  ]
let fabric = [ fabric_unused; config_dangling; bitstream_accounting ]
let all = structural @ security @ fabric
let find name = List.find_opt (fun r -> r.name = name) all
