module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Truthtab = Shell_util.Truthtab

(* Backward observability-don't-care analysis.

   A net is OBSERVABLE when toggling its value (alone, holding every
   other net consistent with the proven constant facts) can change some
   primary output. We compute the complement conservatively: a net is
   marked unobservable only when every one of its reads is provably
   masked, so [observable] is an over-approximation of true
   observability — safe to act on its negation.

   Each masking rule below is sound on its own terms: it declares a
   read (cell, input position) masked only when, under EVERY assignment
   consistent with the constant facts, toggling that input alone cannot
   change the cell's output. Joint toggling through reconvergent paths
   is handled by the per-read granularity — a net that also reaches the
   cell through an unmasked input stays observable through that read. *)

type t = {
  observable : bool array;  (** per net: value can still reach an output *)
  masked_reads : int;  (** reads cut by a masking rule *)
  const_cuts : int;  (** nets cut because they are proven constants *)
}

(* Is the read of input position [i] of cell [c] masked under the
   constant facts? *)
let input_masked values (c : Cell.t) i =
  let ins = c.Cell.ins in
  let v j = values.(ins.(j)) in
  let kv j = Dataflow.known (v j) in
  match c.Cell.kind with
  | Cell.Const _ -> true
  | Cell.And | Cell.Nand ->
      (* the other operand is a proven controlling 0 *)
      kv (1 - i) = Some false
  | Cell.Or | Cell.Nor -> kv (1 - i) = Some true
  | Cell.Xor | Cell.Xnor ->
      (* x xor x is constant: toggling the shared net flips both
         operands at once, leaving the output fixed *)
      ins.(0) = ins.(1)
  | Cell.Not | Cell.Buf | Cell.Dff | Cell.Config_latch -> false
  | Cell.Mux2 -> (
      match i with
      | 0 ->
          (* select masked when it provably cannot steer: arms are the
             same net, the same proven constant, or the select itself
             is pinned *)
          ins.(1) = ins.(2)
          || (match (kv 1, kv 2) with
             | Some a, Some b -> a = b
             | _ -> false)
          || kv 0 <> None
      | 1 -> kv 0 = Some true (* arm a dead when select pinned high *)
      | 2 -> kv 0 = Some false
      | _ -> false)
  | Cell.Mux4 -> (
      (* ins = [|s0; s1; a; b; c; d|], {s1,s0} selects arm index *)
      let arm_reachable idx =
        (match kv 0 with
        | Some s0 -> (if s0 then 1 else 0) = idx land 1
        | None -> true)
        && match kv 1 with
           | Some s1 -> (if s1 then 1 else 0) = idx lsr 1
           | None -> true
      in
      match i with
      | 0 | 1 ->
          let arms_equal =
            ins.(2) = ins.(3) && ins.(3) = ins.(4) && ins.(4) = ins.(5)
          in
          arms_equal || kv i <> None
      | _ -> not (arm_reachable (i - 2)))
  | Cell.Lut tt ->
      (* masked when the input is pinned, or the residual table over
         the unknown inputs no longer depends on it *)
      let vals = Array.map (fun net -> values.(net)) ins in
      (match Dataflow.known vals.(i) with
      | Some _ -> true
      | None ->
          let r = Dataflow.residual_table tt vals in
          (* position of input i among the unknown inputs *)
          let j = ref 0 in
          for k = 0 to i - 1 do
            if Dataflow.known vals.(k) = None then incr j
          done;
          not (Truthtab.depends_on r !j))

let analyze ?values nl =
  let values =
    match values with Some v -> v | None -> Dataflow.const_values nl
  in
  let n = N.num_nets nl in
  let observable = Array.make (max n 1) false in
  let masked_reads = ref 0 in
  let const_cuts = ref 0 in
  (* a proven-constant net carries no toggle: never observable *)
  let mark net =
    if
      net >= 0 && net < n
      && (not observable.(net))
      && Dataflow.known values.(net) = None
    then begin
      observable.(net) <- true;
      true
    end
    else false
  in
  Array.iter (fun net -> ignore (mark net)) (N.output_nets nl);
  let cells = N.cells nl in
  (* reverse topological order converges in one sweep on acyclic
     netlists; observability only grows, so sweeping to a fixpoint is
     a terminating least-fixpoint computation on cyclic ones (and
     through sequential feedback, where state influence counts) *)
  let order =
    match N.topo_order nl with
    | o ->
        let m = Array.length o in
        Array.init m (fun i -> o.(m - 1 - i))
    | exception Failure _ -> Array.init (Array.length cells) (fun i -> i)
  in
  let sweep () =
    let changed = ref false in
    Array.iter
      (fun ci ->
        let c = cells.(ci) in
        if observable.(c.Cell.out) then
          Array.iteri
            (fun i net ->
              if (not (input_masked values c i)) && mark net then
                changed := true)
            c.Cell.ins)
      order;
    !changed
  in
  (* no round cap: every sweep that reports a change marked at least
     one new net, so the loop runs at most [n] sweeps — and on acyclic
     netlists the reverse topological order converges after the sweeps
     needed to cross sequential boundaries *)
  let changed = ref true in
  while !changed do
    changed := sweep ()
  done;
  (* diagnostics over the final fixpoint *)
  Array.iter
    (fun (c : Cell.t) ->
      if observable.(c.Cell.out) then
        Array.iteri
          (fun i _ -> if input_masked values c i then incr masked_reads)
          c.Cell.ins)
    cells;
  for net = 0 to n - 1 do
    if Dataflow.known values.(net) <> None then incr const_cuts
  done;
  { observable; masked_reads = !masked_reads; const_cuts = !const_cuts }
