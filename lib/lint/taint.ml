module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell

(* Forward key-influence taint: per net, the bitset of key bits that
   can still functionally reach it. The lattice is (2^K, union) per
   net; propagation is monotone, so sweeping to the least fixpoint
   terminates (and handles sequential feedback and cycles).

   Refinement over the plain structural cone comes from the constant
   and ODC facts: a proven-constant net carries no influence (its
   taint stays empty), and a read the masking rules prove can never
   steer the cell contributes nothing to the output's set. *)

let bpw = Sys.int_size

type t = {
  nkeys : int;
  w : int;  (** words per net *)
  words : int array;  (** net-major bitset matrix, [n * w] *)
}

let bit_word b = b / bpw
let bit_mask b = 1 lsl (b mod bpw)

let tainted t ~net ~bit =
  t.nkeys > 0
  && net >= 0
  && (net + 1) * t.w <= Array.length t.words
  && t.words.((net * t.w) + bit_word bit) land bit_mask bit <> 0

let is_empty t net =
  if t.w = 0 || net < 0 || (net + 1) * t.w > Array.length t.words then true
  else begin
    let empty = ref true in
    for j = net * t.w to ((net + 1) * t.w) - 1 do
      if t.words.(j) <> 0 then empty := false
    done;
    !empty
  end

let net_taint t net =
  let bits = ref [] in
  for b = t.nkeys - 1 downto 0 do
    if tainted t ~net ~bit:b then bits := b :: !bits
  done;
  !bits

let count t net = List.length (net_taint t net)

let analyze ?values nl =
  let values =
    match values with Some v -> v | None -> Dataflow.const_values nl
  in
  let n = N.num_nets nl in
  let keys = N.keys nl in
  let nkeys = List.length keys in
  let w = (nkeys + bpw - 1) / bpw in
  let words = Array.make (max (n * w) 1) 0 in
  let t = { nkeys; w; words } in
  if nkeys = 0 || n = 0 then t
  else begin
    List.iteri
      (fun b (_, net) ->
        if net >= 0 && net < n then
          words.((net * w) + bit_word b) <-
            words.((net * w) + bit_word b) lor bit_mask b)
      keys;
    let cells = N.cells nl in
    let order =
      match N.topo_order nl with
      | o -> o
      | exception Failure _ -> Array.init (Array.length cells) (fun i -> i)
    in
    let sweep () =
      let changed = ref false in
      Array.iter
        (fun ci ->
          let c = cells.(ci) in
          let out = c.Cell.out in
          (* a proven-constant output carries no key influence *)
          if Dataflow.known values.(out) = None then
            Array.iteri
              (fun i net ->
                if not (Odc.input_masked values c i) then
                  for j = 0 to w - 1 do
                    let s = words.((net * w) + j) in
                    let d = words.((out * w) + j) in
                    if s lor d <> d then begin
                      words.((out * w) + j) <- s lor d;
                      changed := true
                    end
                  done)
              c.Cell.ins)
        order;
      !changed
    in
    (* each sweep that reports a change set at least one new bit, so
       the loop runs at most n * nkeys sweeps (far fewer in practice:
       topological order converges combinational logic in one) *)
    let changed = ref true in
    while !changed do
      changed := sweep ()
    done;
    t
  end

let output_taints t nl =
  List.map (fun (nm, net) -> (nm, net_taint t net)) (N.outputs nl)
