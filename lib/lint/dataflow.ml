module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Truthtab = Shell_util.Truthtab
module Digraph = Shell_graph.Digraph

type value = Zero | One | Unknown

let known = function Zero -> Some false | One -> Some true | Unknown -> None
let of_bool b = if b then One else Zero

let neg = function Zero -> One | One -> Zero | Unknown -> Unknown

(* Kleene conjunction/disjunction: a known dominant operand decides the
   result even when the other side is unknown. *)
let and3 a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | _ -> Unknown

let or3 a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | _ -> Unknown

let xor3 a b =
  match (known a, known b) with
  | Some x, Some y -> of_bool (x <> y)
  | _ -> Unknown

(* Fix the known inputs of a LUT, leaving a residual table over the
   unknown ones. Cofactoring from the highest variable down keeps the
   lower indices stable. *)
let residual_table tt vals =
  let t = ref tt in
  for i = Array.length vals - 1 downto 0 do
    match known vals.(i) with
    | Some b -> t := Truthtab.cofactor !t i b
    | None -> ()
  done;
  !t

let eval_cell ?(config_through = false) values (c : Cell.t) =
  let iv i = values.(c.Cell.ins.(i)) in
  match c.Cell.kind with
  | Cell.Const b -> of_bool b
  | Cell.Config_latch when config_through ->
      (* post-configuration semantics: the latch holds whatever the
         bitstream loaded, so a known input pins the stored state *)
      iv 0
  | Cell.Dff | Cell.Config_latch -> Unknown
  | Cell.Buf -> iv 0
  | Cell.Not -> neg (iv 0)
  | Cell.And -> and3 (iv 0) (iv 1)
  | Cell.Nand -> neg (and3 (iv 0) (iv 1))
  | Cell.Or -> or3 (iv 0) (iv 1)
  | Cell.Nor -> neg (or3 (iv 0) (iv 1))
  | Cell.Xor -> xor3 (iv 0) (iv 1)
  | Cell.Xnor -> neg (xor3 (iv 0) (iv 1))
  | Cell.Mux2 -> (
      match known (iv 0) with
      | Some false -> iv 1
      | Some true -> iv 2
      | None ->
          (* unknown select: both arms agreeing on a constant still
             pins the output *)
          if iv 1 = iv 2 then iv 1 else Unknown)
  | Cell.Mux4 -> (
      match (known (iv 0), known (iv 1)) with
      | Some s0, Some s1 ->
          let idx = (if s1 then 2 else 0) + if s0 then 1 else 0 in
          iv (2 + idx)
      | _ ->
          let a = iv 2 and b = iv 3 and c' = iv 4 and d = iv 5 in
          if a = b && b = c' && c' = d then a else Unknown)
  | Cell.Lut tt ->
      let vals = Array.init (Array.length c.Cell.ins) iv in
      let r = residual_table tt vals in
      (match Truthtab.is_const r with Some b -> of_bool b | None -> Unknown)

let const_values ?(pins = []) ?(config_through = false) nl =
  let n = N.num_nets nl in
  let values = Array.make (max n 1) Unknown in
  List.iter
    (fun (net, b) -> if net >= 0 && net < n then values.(net) <- of_bool b)
    pins;
  let cells = N.cells nl in
  let eval_into ci =
    let c = cells.(ci) in
    match eval_cell ~config_through values c with
    | Unknown -> false
    | v ->
        if values.(c.Cell.out) = Unknown then begin
          values.(c.Cell.out) <- v;
          true
        end
        else false
  in
  let order, acyclic =
    match N.topo_order nl with
    | o -> (o, true)
    | exception Failure _ ->
        (Array.init (Array.length cells) (fun i -> i), false)
  in
  if acyclic && not config_through then
    (* one sweep suffices when the combinational part is acyclic:
       sequential cells come last in the order, and their outputs stay
       Unknown anyway *)
    Array.iter (fun ci -> ignore (eval_into ci)) order
  else begin
    (* cyclic, or facts flowing through Config_latch (which the topo
       order places after its readers): bounded monotone fixpoint —
       each net moves at most once, Unknown -> known, so this
       terminates; the bound caps the cost on adversarial orderings *)
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < 64 do
      changed := false;
      incr rounds;
      Array.iter (fun ci -> if eval_into ci then changed := true) order
    done
  end;
  values

let fanin_nets ?values nl targets =
  let n = N.num_nets nl in
  let seen = Array.make (max n 1) false in
  let value_of net =
    match values with Some v -> v.(net) | None -> Unknown
  in
  let stack = ref [] in
  let push net =
    if net >= 0 && net < n && not seen.(net) then begin
      seen.(net) <- true;
      stack := net :: !stack
    end
  in
  List.iter push targets;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | net :: rest ->
        stack := rest;
        (* a proven-constant net transmits no influence: mark it but do
           not walk into its sources *)
        if known (value_of net) = None then (
          match N.driver nl net with
          | None -> ()
          | Some ci ->
              let c = N.cell nl ci in
              let ins = c.Cell.ins in
              let push_all () = Array.iter push ins in
              (match (values, c.Cell.kind) with
              | None, _ -> push_all ()
              | Some v, Cell.Mux2 -> (
                  match known v.(ins.(0)) with
                  | Some s ->
                      push ins.(0);
                      push ins.(if s then 2 else 1)
                  | None -> push_all ())
              | Some v, Cell.Mux4 -> (
                  match (known v.(ins.(0)), known v.(ins.(1))) with
                  | Some s0, Some s1 ->
                      push ins.(0);
                      push ins.(1);
                      let idx = (if s1 then 2 else 0) + if s0 then 1 else 0 in
                      push ins.(2 + idx)
                  | _ -> push_all ())
              | Some v, Cell.Lut tt ->
                  let vals = Array.map (fun i -> v.(i)) ins in
                  let r = residual_table tt vals in
                  let j = ref 0 in
                  Array.iteri
                    (fun i _ ->
                      match known vals.(i) with
                      | Some _ -> ()
                      | None ->
                          if Truthtab.depends_on r !j then push ins.(i);
                          incr j)
                    ins
              | Some _, _ -> push_all ()))
  done;
  seen

type cones = { values : value array; reach : bool array; live : bool array }

let output_cones nl =
  let values = const_values nl in
  let outs = Array.to_list (N.output_nets nl) in
  { values; reach = fanin_nets nl outs; live = fanin_nets ~values nl outs }

type key_fate = Dead | Blocked | Live

let key_fate_name = function
  | Dead -> "dead"
  | Blocked -> "blocked"
  | Live -> "live"

let key_fates ?cones nl =
  let c = match cones with Some c -> c | None -> output_cones nl in
  List.map
    (fun (nm, net) ->
      let fate =
        if net < 0 || net >= Array.length c.reach || not c.reach.(net) then
          Dead
        else if not c.live.(net) then Blocked
        else Live
      in
      (nm, net, fate))
    (N.keys nl)

let cell_edges nl ~keep =
  let cells = N.cells nl in
  let edges = ref [] in
  Array.iteri
    (fun i c ->
      if keep c then
        Array.iter
          (fun net ->
            match N.driver nl net with
            | Some j when keep cells.(j) -> edges := (j, i) :: !edges
            | _ -> ())
          c.Cell.ins)
    cells;
  Digraph.make ~n:(Array.length cells) ~edges:!edges

let nontrivial_sccs g =
  Digraph.sccs g
  |> List.filter_map (fun scc ->
         match scc with
         | [ v ] -> if Digraph.has_edge g v v then Some [ v ] else None
         | _ -> Some (List.sort compare scc))
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

let comb_graph nl =
  cell_edges nl ~keep:(fun c -> not (Cell.is_sequential c.Cell.kind))

let comb_sccs nl = nontrivial_sccs (comb_graph nl)

let mux_sccs nl =
  let is_mux c =
    match c.Cell.kind with Cell.Mux2 | Cell.Mux4 -> true | _ -> false
  in
  nontrivial_sccs (cell_edges nl ~keep:is_mux)
