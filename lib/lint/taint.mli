(** Forward key-influence taint lattice.

    Per net, the bitset of key bits whose value can still functionally
    reach it. Key ports seed their own bit; cells union the taint of
    their inputs into their output, except that

    - a proven-constant net contributes and accumulates nothing (its
      value is fixed, so no key influence flows through it), and
    - a read that {!Odc.input_masked} proves can never steer the cell
      contributes nothing (unselected mux arms, cofactored-away LUT
      inputs, operands masked by a controlling constant).

    The result over-approximates true functional influence: an output
    whose taint set is {e empty} provably does not depend on any key
    bit — its cone is attacker-simulable without the key (the
    [key-taint-collapse] lint rule). Sequential cells pass taint
    through (state influence counts); cyclic netlists converge by a
    monotone least-fixpoint iteration. *)

type t = {
  nkeys : int;
  w : int;  (** bitset words per net *)
  words : int array;  (** net-major bitset matrix, [n * w] *)
}

val analyze : ?values:Dataflow.value array -> Shell_netlist.Netlist.t -> t
(** [~values] defaults to {!Dataflow.const_values} (pass the context's
    facts to avoid recomputing them). *)

val tainted : t -> net:int -> bit:int -> bool
(** Key bit [bit] can still reach [net]. *)

val is_empty : t -> int -> bool
(** No key bit reaches this net. *)

val net_taint : t -> int -> int list
(** Ascending list of key-bit indices reaching the net. *)

val count : t -> int -> int

val output_taints :
  t -> Shell_netlist.Netlist.t -> (string * int list) list
(** Per primary output [(name, key bits reaching it)], in declaration
    order. *)
