(** The shipped rule packs.

    {b structural} — well-formedness of the netlist itself:
    - [port-invalid] (error): out-of-range or duplicate port
    - [net-multi-driven] (error): single-driver violation
    - [net-undriven] (error): floating output / floating read
    - [comb-cycle] (error): combinational feedback (Tarjan SCC)
    - [cell-dead] (warn): cell reaching no primary output
    - [output-constant] (warn): output provably stuck
    - [lut-degenerate] (info): constant table / ignored LUT input

    {b security} — the paper's locking invariants plus the oracle-less
    leak checks on the multi-domain dataflow engine:
    - [key-dead] (error): key bit with an empty influence cone
    - [key-blocked] (warn): key bit constant-propagated away
    - [key-odc-dead] (warn): key bit alive past the constant cuts but
      observable at no output under the {!Odc} masking rules
    - [key-taint-collapse] (warn): primary output whose {!Taint} set is
      empty — its cone is attacker-simulable without the key
    - [scope-leak] (warn): key bit whose 0/1 pinned constant-propagation
      scores diverge, so {!Scope} guesses it oracle-free
    - [mux-chain-cycle] (error): cyclic MUX chain (non-cyclic ROUTE
      mapping violated)
    - [lgc-depth] (warn): selected LGC not depth-0 adjacent to ROUTE
      (needs the subject's [selection])
    - [ref-mismatch] (error): structural deviation from the golden
      reference (needs [reference])

    {b fabric} — fabric/bitstream accounting:
    - [fabric-unused] (warn): materialized-but-unused tiles/LUTs/chain
      slots when the shrink step was skipped (needs [pnr])
    - [config-dangling] (error): bitstream bit whose key net drives
      nothing (needs [bitstream])
    - [bitstream-accounting] (error): segment directory vs bit vector
      vs key ports vs resource inventory mismatches, non-power-of-two
      table segments per {!Shell_fabric.Bitstream.kind_of_label}

    Rules see only what the subject carries: a bare netlist activates
    the structural pack plus the key rules; fabric artifacts activate
    the rest. *)

val structural : Lint.rule list
val security : Lint.rule list
val fabric : Lint.rule list

val all : Lint.rule list
(** The registry, in report order: structural, security, fabric. *)

val find : string -> Lint.rule option
