(** Backward observability-don't-care (ODC) analysis.

    Computes, per net, whether its value can still be observed at any
    primary output under the proven constant facts. The result is a
    conservative over-approximation of true observability — a net
    marked [false] provably cannot affect any output by toggling alone,
    so the negation is safe to act on (the [key-odc-dead] lint rule and
    the redundancy attack's live-cell bound both do).

    Propagation starts at the primary outputs and walks cell reads
    backwards; a read is cut when one of the {e masking rules} proves
    it can never steer the cell's output:
    - a mux arm not selectable under a pinned select, or a select whose
      arms are the same net / the same proven constant;
    - an AND/NAND (OR/NOR) operand whose sibling is a proven
      controlling 0 (1);
    - an XOR/XNOR whose two operands are the same net (toggling flips
      both at once, output fixed);
    - a LUT input the residual (constant-cofactored) table no longer
      depends on, or one that is itself pinned;
    - any read by a cell whose output is a proven constant.

    Proven-constant nets are never observable (they carry no toggle).
    Sequential cells pass observability through (state influence
    counts), and cyclic netlists converge by a monotone least-fixpoint
    iteration.

    Observable implies live: the analysis refines
    {!Dataflow.cones.live} with strictly more cuts. *)

type t = {
  observable : bool array;
      (** per net id: toggling it can still reach an output *)
  masked_reads : int;
      (** reads of observable cells cut by a masking rule (diagnostic) *)
  const_cuts : int;  (** nets cut as proven constants (diagnostic) *)
}

val input_masked :
  Dataflow.value array -> Shell_netlist.Cell.t -> int -> bool
(** [input_masked values c i]: the read of input position [i] of [c]
    is provably masked under the constant facts — toggling that input
    alone can never change [c]'s output. Shared with the key-taint
    propagation, which skips masked reads. *)

val analyze : ?values:Dataflow.value array -> Shell_netlist.Netlist.t -> t
(** Run the analysis; [~values] defaults to {!Dataflow.const_values}
    (pass the context's facts to avoid recomputing them). *)
