(** The lint engine: rule registry, deterministic parallel execution,
    stable finding fingerprints, baselines and report rendering.

    The rules themselves live in {!Rules}; this module owns everything
    around them. A {e subject} bundles whichever artifacts are
    available — a bare netlist, or a locked design with its key, the
    pre-lock design and selection origins, the fitted fabric, bitstream
    and resource inventory — and each rule checks what it can see,
    staying silent about the rest.

    Determinism contract: rules fan out over {!Shell_util.Pool} but the
    report is assembled in registry order with location-ordered
    findings, so text and JSON output are byte-identical at any
    [SHELL_JOBS] setting. *)

type severity = Info | Warn | Error

val severity_name : severity -> string
(** ["info"], ["warn"], ["error"]. *)

val severity_of_string : string -> severity option
val severity_rank : severity -> int
(** [Info] = 0 < [Warn] = 1 < [Error] = 2. *)

type pack = Structural | Security | Fabric

val pack_name : pack -> string

type selection = {
  design : Shell_netlist.Netlist.t;
      (** the pre-lock netlist the origin patterns refer to *)
  route_origins : string list;  (** origin substrings of the ROUTE pick *)
  lgc_origins : string list;  (** origin substrings of the LGC pick *)
}

type subject = {
  name : string;
  netlist : Shell_netlist.Netlist.t;  (** what the rules primarily lint *)
  key : bool array option;  (** correct key, in [Netlist.keys] order *)
  selection : selection option;
  fabric : Shell_fabric.Fabric.t option;
  bitstream : Shell_fabric.Bitstream.t option;
  used : Shell_fabric.Resources.t option;
  pnr : Shell_pnr.Pnr.result option;
  reference : Shell_netlist.Netlist.t option;
      (** golden netlist for tamper detection (structural diff) *)
  shrunk : bool;  (** whether the fabric shrink step was applied *)
}

val subject :
  ?name:string ->
  ?key:bool array ->
  ?selection:selection ->
  ?fabric:Shell_fabric.Fabric.t ->
  ?bitstream:Shell_fabric.Bitstream.t ->
  ?used:Shell_fabric.Resources.t ->
  ?pnr:Shell_pnr.Pnr.result ->
  ?reference:Shell_netlist.Netlist.t ->
  ?shrunk:bool ->
  Shell_netlist.Netlist.t ->
  subject
(** Bundle a subject; [name] defaults to the netlist's module name,
    [shrunk] to [false]. *)

val of_locked :
  ?name:string -> Shell_locking.Locked.t -> subject
(** Subject for a locked design: the locked netlist plus its correct
    key. *)

type finding = {
  rule : string;
  severity : severity;
  where : string;
      (** stable location key: ["cell:12"], ["net:n5"], ["key:kb3"],
          ["output:y"], ["segment:lut0.table"], ... *)
  message : string;
}

(** Everything a rule may consult, precomputed once per subject. *)
type ctx = {
  subj : subject;
  values : Dataflow.value array;  (** forward constant facts per net *)
  reach : bool array;
      (** nets in the {e structural} fanin cone of the outputs *)
  live : bool array;
      (** nets in the {e functional} cone (constant-aware cuts) *)
  odc : Odc.t;
      (** backward observability: which nets can still reach an output *)
  taint : Taint.t;
      (** forward key influence: which key bits reach which nets *)
}

val make_ctx : subject -> ctx

type rule = {
  name : string;
  pack : pack;
  severity : severity;  (** severity of this rule's findings *)
  help : string;  (** one-line description for [--list-rules] *)
  check : ctx -> finding list;
      (** must be pure and deterministic; runs inside a pool task *)
}

val finding :
  rule -> ?severity:severity -> where:string ->
  ('a, unit, string, finding) format4 -> 'a
(** Build a finding for [rule] (severity defaults to the rule's). *)

val fingerprint : subject_name:string -> finding -> string
(** 16-hex-digit FNV-1a over subject name, rule name and location —
    {e not} the message, so reworded diagnostics keep their baseline
    suppressions. *)

(** {1 Baselines} *)

val parse_baseline : string -> string list
(** Fingerprints from baseline-file contents: first whitespace token of
    each line, [#]-comments and blank lines skipped. *)

val load_baseline : string -> (string list, string) result
(** [Error] describes an unreadable file. *)

val baseline_line : subject_name:string -> finding -> string
(** One baseline-file line: the fingerprint plus a locating comment. *)

(** {1 Running} *)

type report = {
  subject_name : string;
  findings : finding list;
      (** post-filter, post-suppression; registry order, then the
          rule's own (location) order *)
  suppressed : int;  (** findings hidden by the baseline *)
  errors : int;
  warns : int;
  infos : int;  (** counts over [findings] *)
}

val run :
  ?jobs:int ->
  ?severity:severity ->
  ?baseline:string list ->
  rules:rule list ->
  subject ->
  report
(** Evaluate [rules] against the subject, fanned over the pool
    ([jobs] as {!Shell_util.Pool.map}). [severity] is the reporting
    floor (default [Info] = everything); [baseline] fingerprints are
    suppressed and counted. Byte-identical output at any job count. *)

val ok : report -> bool
(** No (unsuppressed) errors. *)

(** {1 Rendering} *)

val report_json : report -> Shell_util.Jsonw.t
(** [{"subject": ..., "findings": [...], "errors": N, ...}]; each
    finding carries its fingerprint so baselines can be built from the
    JSON output too. *)

val reports_json : report list -> Shell_util.Jsonw.t
(** The whole run: [{"lint": {"version": 1, "reports": [...]}}]. *)

val pp_report : Format.formatter -> report -> unit
val pp_finding : subject_name:string -> Format.formatter -> finding -> unit
