module N = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell

(* SCOPE-style unsupervised constant-propagation scoring.

   For each key bit, re-run the 3-valued constant propagation twice —
   once with the bit pinned to 0, once to 1 — and score how much of
   the netlist each pinning collapses (nets newly proven constant, i.e.
   cells folded away). A locking gate wired so that one key value
   degenerates it (AND with 0, OR with 1, a mux arm that short-circuits)
   collapses asymmetrically; the MORE collapsing value is the likelier
   WRONG one, because correct keys leave the original function — not a
   degenerate residue — behind. XOR-style gates collapse nothing either
   way and stay undecidable, which is exactly SCOPE's blind spot.

   Pinning only adds facts, and Kleene evaluation is monotone, so the
   pinned fixpoint is a superset of the unpinned one. That makes the
   per-bit re-runs incremental: seed the pinned fact, then propagate a
   worklist through the fanout until nothing new is proven — cost is
   the size of the affected cone, not the netlist. *)

type bit_score = {
  name : string;
  net : int;
  score0 : int;  (** nets newly proven constant with the bit pinned 0 *)
  score1 : int;  (** same, pinned 1 *)
}

let divergence b = abs (b.score0 - b.score1)

let guess b =
  if b.score0 > b.score1 then Some true
  else if b.score1 > b.score0 then Some false
  else None

(* Count the nets that move Unknown -> known when [net] is pinned to
   [b] on top of the base facts, restoring [base] before returning.
   The unique-least-fixpoint property of the monotone propagation makes
   the count independent of the worklist processing order. *)
let pinned_moves nl ~config_through base (net, b) =
  let n = Array.length base in
  if net < 0 || net >= n || base.(net) <> Dataflow.Unknown then 0
  else begin
    let moved = ref [] in
    let q = Queue.create () in
    base.(net) <- (if b then Dataflow.One else Dataflow.Zero);
    moved := net :: !moved;
    List.iter (fun ci -> Queue.add ci q) (N.fanout nl net);
    while not (Queue.is_empty q) do
      let ci = Queue.pop q in
      let c = N.cell nl ci in
      let out = c.Cell.out in
      if base.(out) = Dataflow.Unknown then
        match Dataflow.eval_cell ~config_through base c with
        | Dataflow.Unknown -> ()
        | v ->
            base.(out) <- v;
            moved := out :: !moved;
            List.iter (fun cj -> Queue.add cj q) (N.fanout nl out)
    done;
    let count = List.length !moved - 1 in
    List.iter (fun m -> base.(m) <- Dataflow.Unknown) !moved;
    count
  end

let scores ?(config_through = true) nl =
  let base = Dataflow.const_values ~config_through nl in
  List.map
    (fun (name, net) ->
      {
        name;
        net;
        score0 = pinned_moves nl ~config_through base (net, false);
        score1 = pinned_moves nl ~config_through base (net, true);
      })
    (N.keys nl)
