(** The shared dataflow core under the lint rules.

    Three analyses, each computed once per linted subject and handed to
    every rule through the engine context:

    - {b forward constant/X propagation} ({!const_values}): a
      three-valued abstract simulation over nets. Sequential outputs
      ([Dff], [Config_latch]) are unknown; everything else folds
      through the cell semantics (mux arms collapse under a known
      select, LUTs are cofactored by their known inputs).
    - {b backward cones} ({!fanin_nets}): the set of nets in the fanin
      cone of a target set. Structurally, or — given the constant
      facts — {e functionally}, cutting traversal at proven-constant
      nets, unselected mux arms and LUT inputs the residual table does
      not depend on. A key bit inside the structural cone but outside
      the functional one is constant-blocked.
    - {b cycle detection} ({!comb_sccs}, {!mux_sccs}): Tarjan SCCs over
      the cell graph, either the full combinational part or the
      MUX-only subgraph (the paper's non-cyclic ROUTE-chain
      invariant). *)

type value = Zero | One | Unknown

val known : value -> bool option
(** [Some b] for a proven constant, [None] for [Unknown]. *)

val residual_table :
  Shell_util.Truthtab.t -> value array -> Shell_util.Truthtab.t
(** Fix the known inputs of a LUT table, leaving a residual over the
    unknown ones (in ascending original-input order). Shared by the
    functional cone walk, the ODC masking rules and the taint
    propagation. *)

val const_values :
  ?pins:(int * bool) list ->
  ?config_through:bool ->
  Shell_netlist.Netlist.t ->
  value array
(** Per-net constant facts, indexed by net id. Ports are [Unknown].
    Acyclic netlists are evaluated in one topological sweep; cyclic
    ones by a bounded monotone fixpoint (sound, possibly less
    precise).

    [~pins] seeds nets (typically key ports) with assumed constants
    before the sweep — the SCOPE-style analyses re-run the propagation
    with one key bit pinned each way. [~config_through:true] switches
    [Config_latch] to its post-configuration semantics: a known input
    (the bitstream bit) pins the stored state, so facts flow through
    the fabric's configuration plane; this forces the fixpoint path
    because the topological order places latches after their
    readers. *)

val eval_cell :
  ?config_through:bool -> value array -> Shell_netlist.Cell.t -> value
(** Three-valued evaluation of one cell under the given net facts.
    Sequential kinds return [Unknown], except [Config_latch] under
    [~config_through:true], which passes its input fact through. *)

val fanin_nets :
  ?values:value array ->
  Shell_netlist.Netlist.t ->
  int list ->
  bool array
(** [fanin_nets nl targets] marks every net in the structural fanin
    cone of [targets] (the targets included), walking backwards through
    cell drivers; sequential cells are traversed (state influence
    counts). With [~values] the walk is {e functional}: it stops at
    proven-constant nets and only descends into mux arms the select can
    still reach and LUT inputs the cofactored table still depends
    on. *)

(** {1 Output cones and key classification}

    Shared by the lint engine ({!Lint.make_ctx}) and the structural
    key-cone attack in [shell_attacks]: one forward constant sweep plus
    the structural and functional output cones. *)

type cones = {
  values : value array;  (** forward constant facts per net *)
  reach : bool array;  (** nets in the {e structural} output fanin cone *)
  live : bool array;  (** nets in the {e functional} cone (constant cuts) *)
}

val output_cones : Shell_netlist.Netlist.t -> cones
(** {!const_values} plus {!fanin_nets} (structural and functional) over
    the primary outputs. *)

(** What the dataflow facts prove about one key bit. *)
type key_fate =
  | Dead  (** outside the structural cone: reaches no output at all *)
  | Blocked
      (** wired towards the outputs but every path is cut by a proven
          constant (unselected mux arm, cofactored-away LUT input) *)
  | Live  (** may influence an output; nothing provable for free *)

val key_fate_name : key_fate -> string

val key_fates :
  ?cones:cones ->
  Shell_netlist.Netlist.t ->
  (string * int * key_fate) list
(** Per key bit [(name, net, fate)] in {!Shell_netlist.Netlist.keys}
    order. A [Dead] or [Blocked] bit provably cannot affect the
    function: any value unlocks it (the structural attack's "free"
    bits, and what the [key-dead]/[key-blocked] lint rules report). *)

val comb_graph : Shell_netlist.Netlist.t -> Shell_graph.Digraph.t
(** Cell-level dependency graph over combinational cells only: edge
    [j -> i] when cell [j]'s output feeds cell [i] and neither is
    sequential. Nodes are cell indices. *)

val comb_sccs : Shell_netlist.Netlist.t -> int list list
(** Non-trivial strongly connected components (size > 1, or a
    self-loop) of {!comb_graph}, each sorted ascending, in ascending
    order of their smallest member. Combinational cycles. *)

val mux_sccs : Shell_netlist.Netlist.t -> int list list
(** Same, restricted to edges between [Mux2]/[Mux4] cells through any
    input (select or data): cyclic MUX chains. *)
