(** SCOPE-style per-key-bit constant-propagation scoring.

    Oracle-free key guessing by asymmetry: for each key bit, the
    3-valued constant propagation is re-run with the bit pinned to 0
    and to 1, and each run is scored by how many nets it newly proves
    constant (equivalently, how many driving cells fold away). A
    pinning that collapses {e more} logic than its sibling is the
    likelier {b wrong} value — correct keys leave the original
    function behind, wrong ones a degenerate residue. Symmetric gates
    (XOR/XNOR locking, balanced mux routing) collapse identically both
    ways and stay undecided: SCOPE's documented blind spot, and what
    the [scope-leak] lint rule checks a locked design for.

    The per-bit re-runs are incremental: pinning only adds facts and
    Kleene evaluation is monotone, so each run seeds one fact and
    propagates a worklist through the affected cone only. The unique
    least fixpoint makes the scores deterministic at any worklist
    order.

    By default the propagation uses [~config_through:true]
    ({!Dataflow.const_values}): eFPGA bitstream bits live behind
    [Config_latch] cells, and pinning must flow through the
    configuration plane to mean anything there. *)

type bit_score = {
  name : string;  (** key port name *)
  net : int;
  score0 : int;  (** nets newly proven constant with the bit pinned 0 *)
  score1 : int;  (** same, pinned 1 *)
}

val divergence : bit_score -> int
(** [abs (score0 - score1)] — 0 means the bit is SCOPE-undecidable. *)

val guess : bit_score -> bool option
(** The less-collapsing value, or [None] on a tie (undecided). *)

val scores : ?config_through:bool -> Shell_netlist.Netlist.t -> bit_score list
(** Per-bit scores in {!Shell_netlist.Netlist.keys} order. *)
