module N = Shell_netlist.Netlist
module Pool = Shell_util.Pool
module Obs = Shell_util.Obs
module Jsonw = Shell_util.Jsonw
module Diag = Shell_util.Diag

type severity = Info | Warn | Error

let severity_name = function Info -> "info" | Warn -> "warn" | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Info -> 0 | Warn -> 1 | Error -> 2

type pack = Structural | Security | Fabric

let pack_name = function
  | Structural -> "structural"
  | Security -> "security"
  | Fabric -> "fabric"

type selection = {
  design : N.t;
  route_origins : string list;
  lgc_origins : string list;
}

type subject = {
  name : string;
  netlist : N.t;
  key : bool array option;
  selection : selection option;
  fabric : Shell_fabric.Fabric.t option;
  bitstream : Shell_fabric.Bitstream.t option;
  used : Shell_fabric.Resources.t option;
  pnr : Shell_pnr.Pnr.result option;
  reference : N.t option;
  shrunk : bool;
}

let subject ?name ?key ?selection ?fabric ?bitstream ?used ?pnr ?reference
    ?(shrunk = false) netlist =
  {
    name = (match name with Some n -> n | None -> N.name netlist);
    netlist;
    key;
    selection;
    fabric;
    bitstream;
    used;
    pnr;
    reference;
    shrunk;
  }

let of_locked ?name (l : Shell_locking.Locked.t) =
  subject ?name ~key:l.Shell_locking.Locked.key l.Shell_locking.Locked.locked

type finding = {
  rule : string;
  severity : severity;
  where : string;
  message : string;
}

type ctx = {
  subj : subject;
  values : Dataflow.value array;
  reach : bool array;
  live : bool array;
  odc : Odc.t;
  taint : Taint.t;
}

let make_ctx subj =
  let c = Dataflow.output_cones subj.netlist in
  let odc = Odc.analyze ~values:c.Dataflow.values subj.netlist in
  let taint = Taint.analyze ~values:c.Dataflow.values subj.netlist in
  { subj; values = c.Dataflow.values; reach = c.Dataflow.reach;
    live = c.Dataflow.live; odc; taint }

type rule = {
  name : string;
  pack : pack;
  severity : severity;
  help : string;
  check : ctx -> finding list;
}

let finding rule ?severity ~where fmt =
  let severity = match severity with Some s -> s | None -> rule.severity in
  Printf.ksprintf
    (fun message -> { rule = rule.name; severity; where; message })
    fmt

(* ---------------- fingerprints & baselines ---------------- *)

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let fingerprint ~subject_name f =
  fnv1a (subject_name ^ "\x00" ^ f.rule ^ "\x00" ^ f.where)

let parse_baseline contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | Some i -> Some (String.sub line 0 i)
           | None -> Some line)

let load_baseline path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok (parse_baseline contents)
  | exception Sys_error e -> Result.Error e

let baseline_line ~subject_name f =
  Printf.sprintf "%s  # %s %s %s [%s]"
    (fingerprint ~subject_name f)
    (severity_name f.severity) f.rule f.where subject_name

(* ---------------- running ---------------- *)

type report = {
  subject_name : string;
  findings : finding list;
  suppressed : int;
  errors : int;
  warns : int;
  infos : int;
}

let m_rules =
  Obs.counter ~stable:true ~help:"lint rules evaluated" "lint_rules_total"

let m_findings =
  Obs.counter ~stable:true ~help:"lint findings reported"
    "lint_findings_total"

let m_suppressed =
  Obs.counter ~stable:true ~help:"lint findings suppressed by baseline"
    "lint_suppressed_total"

let run ?jobs ?(severity = Info) ?(baseline = []) ~rules subj =
  let ctx = make_ctx subj in
  let rules_arr = Array.of_list rules in
  (* rules fan out over the pool; results are collected by rule index,
     so the report order is the registry order at any job count *)
  let per_rule =
    Pool.map ?jobs
      (fun r -> Diag.with_context r.name (fun () -> r.check ctx))
      rules_arr
  in
  Obs.add m_rules (Array.length rules_arr);
  let suppressed_fps = Hashtbl.create 16 in
  List.iter (fun fp -> Hashtbl.replace suppressed_fps fp ()) baseline;
  let floor = severity_rank severity in
  let suppressed = ref 0 in
  let kept = ref [] in
  Array.iteri
    (fun i fs ->
      Obs.span_add ("rule." ^ rules_arr.(i).name) (List.length fs);
      List.iter
        (fun (f : finding) ->
          if severity_rank f.severity >= floor then
            if Hashtbl.mem suppressed_fps (fingerprint ~subject_name:subj.name f)
            then incr suppressed
            else kept := f :: !kept)
        fs)
    per_rule;
  let findings = List.rev !kept in
  let count s =
    List.length
      (List.filter (fun (f : finding) -> f.severity = s) findings)
  in
  Obs.add m_findings (List.length findings);
  Obs.add m_suppressed !suppressed;
  {
    subject_name = subj.name;
    findings;
    suppressed = !suppressed;
    errors = count Error;
    warns = count Warn;
    infos = count Info;
  }

let ok r = r.errors = 0

(* ---------------- rendering ---------------- *)

let finding_json ~subject_name f =
  Jsonw.Obj
    [
      ("rule", Jsonw.Str f.rule);
      ("severity", Jsonw.Str (severity_name f.severity));
      ("where", Jsonw.Str f.where);
      ("message", Jsonw.Str f.message);
      ("fingerprint", Jsonw.Str (fingerprint ~subject_name f));
    ]

let report_json r =
  Jsonw.Obj
    [
      ("subject", Jsonw.Str r.subject_name);
      ( "findings",
        Jsonw.Arr
          (List.map (finding_json ~subject_name:r.subject_name) r.findings) );
      ("suppressed", Jsonw.Int r.suppressed);
      ("errors", Jsonw.Int r.errors);
      ("warns", Jsonw.Int r.warns);
      ("infos", Jsonw.Int r.infos);
    ]

let reports_json rs =
  Jsonw.Obj
    [
      ( "lint",
        Jsonw.Obj
          [
            ("version", Jsonw.Int 1);
            ("reports", Jsonw.Arr (List.map report_json rs));
          ] );
    ]

let pp_finding ~subject_name ppf (f : finding) =
  Format.fprintf ppf "%-5s %-20s %-18s %s [%s]"
    (severity_name f.severity) f.rule f.where f.message
    (fingerprint ~subject_name f)

let pp_report ppf r =
  Format.fprintf ppf "%s: %d error%s, %d warning%s, %d info" r.subject_name
    r.errors
    (if r.errors = 1 then "" else "s")
    r.warns
    (if r.warns = 1 then "" else "s")
    r.infos;
  if r.suppressed > 0 then
    Format.fprintf ppf " (%d suppressed by baseline)" r.suppressed;
  List.iter
    (fun f ->
      Format.fprintf ppf "@.  %a" (pp_finding ~subject_name:r.subject_name) f)
    r.findings
