(* MiniSat-style CDCL. Internal literal encoding: variable [v] (1-based)
   yields literals [2v] (positive) and [2v+1] (negative); negation is
   [lxor 1]. Clause 0-and-1 slots hold the watched literals. *)

module Vec = Shell_util.Vec
module Rng = Shell_util.Rng
module Obs = Shell_util.Obs

(* Process-wide effort metrics, flushed from the per-solver counters at
   the end of each [solve]. Registered unstable: how much work the
   solver is asked to do depends on the attack's wall-clock budget, so
   the totals are not a pure function of the workload. *)
let m_solve_calls = Obs.counter ~help:"calls to Solver.solve" "solver_solve_calls"
let m_decisions = Obs.counter ~help:"branching decisions" "solver_decisions"

let m_propagations =
  Obs.counter ~help:"literals implied by unit propagation" "solver_propagations"

let m_conflicts = Obs.counter ~help:"conflicts analyzed" "solver_conflicts"
let m_restarts = Obs.counter ~help:"Luby restarts taken" "solver_restarts"

let h_learned_len =
  Obs.histogram ~help:"learned clause length (literals)" "solver_learned_len"

type clause = { lits : int array; learnt : bool }

type result = Sat | Unsat | Unknown

type t = {
  mutable nvars : int;
  mutable assigns : int array;  (* var -> -1 / 0 / 1 *)
  mutable level : int array;
  mutable reason : int array;  (* var -> clause index or -1 *)
  mutable phase : bool array;  (* saved phases *)
  mutable activity : float array;
  mutable var_inc : float;
  clauses : clause Vec.t;
  mutable watches : int Vec.t array;  (* lit -> clause indices *)
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable unsat : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  (* binary heap over vars ordered by activity *)
  heap : int Vec.t;
  mutable heap_pos : int array;  (* var -> index in heap or -1 *)
  (* conflict-analysis scratch, reused across conflicts *)
  mutable seen : bool array;
  seen_touched : int Vec.t;
  seed : int;  (* 0 = all-false initial phases; else per-var pseudorandom *)
}

let create ?(seed = 0) () =
  {
    nvars = 0;
    assigns = Array.make 1 (-1);
    level = Array.make 1 0;
    reason = Array.make 1 (-1);
    phase = Array.make 1 false;
    activity = Array.make 1 0.0;
    var_inc = 1.0;
    clauses = Vec.create ();
    watches = Array.init 4 (fun _ -> Vec.create ());
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    unsat = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    heap = Vec.create ();
    heap_pos = Array.make 1 (-1);
    seen = Array.make 1 false;
    seen_touched = Vec.create ();
    seed;
  }

let num_vars t = t.nvars
let num_conflicts t = t.conflicts

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
}

let stats (t : t) =
  {
    decisions = t.decisions;
    propagations = t.propagations;
    conflicts = t.conflicts;
    restarts = t.restarts;
  }

let grow_array arr n default =
  let old = Array.length arr in
  if n <= old then arr
  else begin
    let a = Array.make (max n (2 * old)) default in
    Array.blit arr 0 a 0 old;
    a
  end

(* ---------------- activity heap ---------------- *)

let heap_less t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = Vec.get t.heap i and b = Vec.get t.heap j in
  Vec.set t.heap i b;
  Vec.set t.heap j a;
  t.heap_pos.(a) <- j;
  t.heap_pos.(b) <- i

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less t (Vec.get t.heap i) (Vec.get t.heap p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let n = Vec.length t.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_less t (Vec.get t.heap l) (Vec.get t.heap !best) then best := l;
  if r < n && heap_less t (Vec.get t.heap r) (Vec.get t.heap !best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) = -1 then begin
    Vec.push t.heap v;
    t.heap_pos.(v) <- Vec.length t.heap - 1;
    heap_up t (Vec.length t.heap - 1)
  end

let heap_pop t =
  match Vec.length t.heap with
  | 0 -> None
  | n ->
      let top = Vec.get t.heap 0 in
      let last = Vec.get t.heap (n - 1) in
      ignore (Vec.pop t.heap);
      t.heap_pos.(top) <- -1;
      if n > 1 then begin
        Vec.set t.heap 0 last;
        t.heap_pos.(last) <- 0;
        heap_down t 0
      end;
      Some top

let heap_bump t v =
  let i = t.heap_pos.(v) in
  if i >= 0 then heap_up t i

(* ---------------- variables ---------------- *)

let new_var t =
  let v = t.nvars + 1 in
  t.nvars <- v;
  t.assigns <- grow_array t.assigns (v + 1) (-1);
  t.level <- grow_array t.level (v + 1) 0;
  t.reason <- grow_array t.reason (v + 1) (-1);
  t.phase <- grow_array t.phase (v + 1) false;
  t.activity <- grow_array t.activity (v + 1) 0.0;
  t.heap_pos <- grow_array t.heap_pos (v + 1) (-1);
  t.seen <- grow_array t.seen (v + 1) false;
  let nlits = 2 * (v + 1) in
  if Array.length t.watches < nlits then begin
    let w = Array.init (max nlits (2 * Array.length t.watches)) (fun _ -> Vec.create ()) in
    Array.blit t.watches 0 w 0 (Array.length t.watches);
    t.watches <- w
  end;
  t.assigns.(v) <- -1;
  t.heap_pos.(v) <- -1;
  if t.seed <> 0 then
    t.phase.(v) <- Rng.bool (Rng.create (t.seed lxor (v * 0x9E3779B9)));
  heap_insert t v;
  v

let ensure_vars t n =
  while t.nvars < n do
    ignore (new_var t)
  done

(* ---------------- literal helpers ---------------- *)

let ilit l = if l > 0 then 2 * l else (2 * -l) + 1
let ivar l = l / 2
let isign l = l land 1 = 0  (* true = positive literal *)

(* value of internal literal: -1 unassigned / 0 false / 1 true *)
let lit_value t l =
  match t.assigns.(ivar l) with
  | -1 -> -1
  | v -> if isign l then v else 1 - v

let decision_level t = Vec.length t.trail_lim

(* ---------------- assignment ---------------- *)

let enqueue t l reason =
  let v = ivar l in
  t.assigns.(v) <- (if isign l then 1 else 0);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- isign l;
  Vec.push t.trail l

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    let rec undo () =
      if Vec.length t.trail > bound then begin
        match Vec.pop t.trail with
        | None -> ()
        | Some l ->
            let v = ivar l in
            t.assigns.(v) <- -1;
            t.reason.(v) <- -1;
            heap_insert t v;
            undo ()
      end
    in
    undo ();
    let rec drop () =
      if Vec.length t.trail_lim > lvl then begin
        ignore (Vec.pop t.trail_lim);
        drop ()
      end
    in
    drop ();
    t.qhead <- Vec.length t.trail
  end

(* ---------------- clauses ---------------- *)

let attach t ci =
  let c = Vec.get t.clauses ci in
  Vec.push t.watches.(c.lits.(0) lxor 1) ci;
  Vec.push t.watches.(c.lits.(1) lxor 1) ci

(* Propagate all enqueued facts; returns conflicting clause id or -1. *)
let propagate t =
  let confl = ref (-1) in
  while !confl = -1 && t.qhead < Vec.length t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let false_lit = p lxor 1 in
    let ws = t.watches.(p) in
    (* watches.(p): clauses watching the literal that just became
       false are registered under the *true* literal's slot; we store
       watch entries under [lit lxor 1] in [attach], so reading the list
       at [p] yields clauses in which [p lxor 1] is watched.

       The list is compacted in place with read/write cursors: entries
       that keep their watch slide down past entries that moved to
       another list, with no per-propagation array allocation. A new
       watch is never this same list (the replacement literal is
       non-false, [p lxor 1] is false), so pushes cannot disturb the
       compaction. *)
    let n = Vec.length ws in
    let i = ref 0 and w = ref 0 in
    let keep ci =
      Vec.set ws !w ci;
      incr w
    in
    while !i < n do
      let ci = Vec.get ws !i in
      incr i;
      let c = (Vec.get t.clauses ci).lits in
      (* ensure the false literal is in slot 1 *)
      if c.(0) = false_lit then begin
        c.(0) <- c.(1);
        c.(1) <- false_lit
      end;
      if lit_value t c.(0) = 1 then
        (* satisfied; keep watching the same literal *)
        keep ci
      else begin
        (* look for a new watch *)
        let len = Array.length c in
        let found = ref false in
        let j = ref 2 in
        while (not !found) && !j < len do
          if lit_value t c.(!j) <> 0 then begin
            c.(1) <- c.(!j);
            c.(!j) <- false_lit;
            Vec.push t.watches.(c.(1) lxor 1) ci;
            found := true
          end;
          incr j
        done;
        if not !found then begin
          keep ci;
          if lit_value t c.(0) = 0 then begin
            (* conflict: keep the unexamined rest of the watch list *)
            confl := ci;
            t.qhead <- Vec.length t.trail;
            while !i < n do
              keep (Vec.get ws !i);
              incr i
            done
          end
          else begin
            t.propagations <- t.propagations + 1;
            enqueue t c.(0) ci
          end
        end
      end
    done;
    Vec.truncate ws !w
  done;
  !confl

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 1 to t.nvars do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_bump t v

let var_decay t = t.var_inc <- t.var_inc /. 0.95

(* First-UIP conflict analysis. Returns (learnt clause, backjump level);
   learnt.(0) is the asserting literal. *)
let analyze t confl =
  (* [t.seen] is all-false between conflicts: every entry set here is
     recorded in [t.seen_touched] and cleared before returning, so the
     array is reused without an O(nvars) allocation or fill. *)
  let seen = t.seen in
  let learnt = Vec.create () in
  Vec.push learnt 0;  (* slot for the asserting literal *)
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let trail_idx = ref (Vec.length t.trail - 1) in
  let continue_loop = ref true in
  while !continue_loop do
    let c = (Vec.get t.clauses !confl).lits in
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = ivar q in
      if (not seen.(v)) && t.level.(v) > 0 then begin
        seen.(v) <- true;
        Vec.push t.seen_touched v;
        var_bump t v;
        if t.level.(v) >= decision_level t then incr counter
        else Vec.push learnt q
      end
    done;
    (* pick next literal to expand from the trail *)
    let rec next () =
      let l = Vec.get t.trail !trail_idx in
      decr trail_idx;
      if seen.(ivar l) then l else next ()
    in
    let l = next () in
    p := l;
    seen.(ivar l) <- false;
    decr counter;
    if !counter = 0 then continue_loop := false
    else confl := t.reason.(ivar l)
  done;
  Vec.iter (fun v -> seen.(v) <- false) t.seen_touched;
  Vec.clear t.seen_touched;
  Vec.set learnt 0 (!p lxor 1);
  let lits = Vec.to_array learnt in
  (* backjump level = max level among lits.(1..) *)
  let blevel = ref 0 in
  let swap_pos = ref 1 in
  Array.iteri
    (fun i l ->
      if i > 0 then begin
        let lv = t.level.(ivar l) in
        if lv > !blevel then begin
          blevel := lv;
          swap_pos := i
        end
      end)
    lits;
  if Array.length lits > 1 then begin
    let tmp = lits.(1) in
    lits.(1) <- lits.(!swap_pos);
    lits.(!swap_pos) <- tmp
  end;
  (lits, !blevel)

let record_learnt t lits =
  if Array.length lits = 1 then begin
    cancel_until t 0;
    enqueue t lits.(0) (-1)
  end
  else begin
    Vec.push t.clauses { lits; learnt = true };
    let ci = Vec.length t.clauses - 1 in
    attach t ci;
    enqueue t lits.(0) ci
  end;
  Obs.observe h_learned_len (Array.length lits)

let add_clause t lits =
  cancel_until t 0;
  if not t.unsat then begin
    (* simplify against level-0 assignments; drop duplicates *)
    let seen_pos = Hashtbl.create 8 in
    let simplified = ref [] in
    let satisfied = ref false in
    List.iter
      (fun l ->
        if l = 0 || abs l > t.nvars then invalid_arg "Solver.add_clause: bad literal";
        let il = ilit l in
        match lit_value t il with
        | 1 -> satisfied := true
        | 0 -> ()
        | _ ->
            if Hashtbl.mem seen_pos (il lxor 1) then satisfied := true
            else if not (Hashtbl.mem seen_pos il) then begin
              Hashtbl.add seen_pos il ();
              simplified := il :: !simplified
            end)
      lits;
    if not !satisfied then
      match !simplified with
      | [] -> t.unsat <- true
      | [ l ] ->
          enqueue t l (-1);
          if propagate t <> -1 then t.unsat <- true
      | l1 :: l2 :: _ as ls ->
          ignore l1;
          ignore l2;
          Vec.push t.clauses { lits = Array.of_list ls; learnt = false };
          attach t (Vec.length t.clauses - 1)
  end

(* ---------------- search ---------------- *)

let pick_branch t =
  let rec go () =
    match heap_pop t with
    | None -> None
    | Some v -> if t.assigns.(v) = -1 then Some v else go ()
  in
  go ()

(* Luby sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's port). *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let solve_search ?(assumptions = []) ?max_conflicts t =
  cancel_until t 0;
  if t.unsat then Unsat
  else if propagate t <> -1 then begin
    t.unsat <- true;
    Unsat
  end
  else begin
    let assumptions = Array.of_list (List.map ilit assumptions) in
    let budget = match max_conflicts with Some b -> t.conflicts + b | None -> max_int in
    let restart_n = ref 0 in
    let conflicts_until_restart = ref (100 * luby !restart_n) in
    let result = ref None in
    while !result = None do
      let confl = propagate t in
      if confl <> -1 then begin
        t.conflicts <- t.conflicts + 1;
        decr conflicts_until_restart;
        if decision_level t <= Array.length assumptions then begin
          (* conflict inside assumption levels: unsat under assumptions *)
          result := Some Unsat
        end
        else begin
          let lits, blevel = analyze t confl in
          cancel_until t blevel;
          record_learnt t lits;
          var_decay t
        end;
        if t.conflicts >= budget && !result = None then result := Some Unknown
        else if !conflicts_until_restart <= 0 && !result = None then begin
          incr restart_n;
          t.restarts <- t.restarts + 1;
          conflicts_until_restart := 100 * luby !restart_n;
          cancel_until t (Array.length assumptions)
        end
      end
      else begin
        (* decide *)
        let dl = decision_level t in
        if dl < Array.length assumptions then begin
          let l = assumptions.(dl) in
          match lit_value t l with
          | 1 ->
              (* already satisfied: open an empty decision level *)
              Vec.push t.trail_lim (Vec.length t.trail)
          | 0 -> result := Some Unsat
          | _ ->
              Vec.push t.trail_lim (Vec.length t.trail);
              enqueue t l (-1)
        end
        else
          match pick_branch t with
          | None -> result := Some Sat
          | Some v ->
              t.decisions <- t.decisions + 1;
              Vec.push t.trail_lim (Vec.length t.trail);
              let l = if t.phase.(v) then 2 * v else (2 * v) + 1 in
              enqueue t l (-1)
      end
    done;
    match !result with
    | Some Sat -> Sat  (* keep trail so [value] can read the model *)
    | Some r ->
        cancel_until t 0;
        r
    | None -> assert false
  end

let solve ?assumptions ?max_conflicts t =
  if not (Obs.enabled ()) then solve_search ?assumptions ?max_conflicts t
  else begin
    Obs.incr m_solve_calls;
    let d0 = t.decisions
    and p0 = t.propagations
    and c0 = t.conflicts
    and r0 = t.restarts in
    Fun.protect
      ~finally:(fun () ->
        Obs.add m_decisions (t.decisions - d0);
        Obs.add m_propagations (t.propagations - p0);
        Obs.add m_conflicts (t.conflicts - c0);
        Obs.add m_restarts (t.restarts - r0))
      (fun () -> solve_search ?assumptions ?max_conflicts t)
  end

let value t v =
  if v < 1 || v > t.nvars then invalid_arg "Solver.value";
  t.assigns.(v) = 1

let model t = Array.init (t.nvars + 1) (fun v -> v > 0 && t.assigns.(v) = 1)
