(** CDCL SAT solver.

    Complete conflict-driven clause learning with two-literal watching,
    VSIDS-style decision ordering, phase saving, first-UIP learning and
    Luby restarts. Literals use the DIMACS convention: variable [v > 0],
    literal [v] or [-v].

    The solver is incremental in the way the SAT attack needs: clauses
    may be added between [solve] calls, and [solve] accepts assumption
    literals that hold for that call only. *)

type t

type result = Sat | Unsat | Unknown

val create : ?seed:int -> unit -> t
(** [seed] perturbs the initial saved phase of each variable (the
    default 0 keeps MiniSat's all-false phases). Distinct seeds steer
    the search down different branches of the same instance — the knob
    the attack portfolio races over. *)

val new_var : t -> int
(** Allocate the next variable (1, 2, ...). *)

val ensure_vars : t -> int -> unit
(** Make sure variables [1..n] exist. *)

val num_vars : t -> int

val add_clause : t -> int list -> unit
(** Clauses over existing variables. Adding a clause that is already
    falsified at level 0 makes the instance permanently unsatisfiable. *)

val solve : ?assumptions:int list -> ?max_conflicts:int -> t -> result
(** [Unknown] only when [max_conflicts] was exhausted. *)

val value : t -> int -> bool
(** Model value of a variable after [Sat] (unassigned vars read [false]). *)

val model : t -> bool array
(** Index [v] holds the value of variable [v]; index 0 unused. *)

val num_conflicts : t -> int
(** Total conflicts across all [solve] calls (attack effort metric). *)

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
}
(** Cumulative search effort across all [solve] calls on this solver. *)

val stats : t -> stats
