(** Step 3 of the SheLL flow: sub-circuit selection.

    Two entry points: {!fixed} takes named targets (the TfR columns of
    Tables IV/V), {!auto} applies the paper's selection rules to the
    scored block graph:
    (i) prefer high-inlet/outlet blocks for routing-based locking,
    (ii) the selection must cover >= 50% of the design's blocks,
    (iii) the LUT estimate must respect the fabric budget,
    (iv) each ROUTE pick gets a small generic LGC companion, at
    [lgc_depth] hops (0 = directly connected, the SheLL constraint of
    Table VII). *)

type choice = {
  route_blocks : int list;
  lgc_blocks : int list;
  label : string;
  coverage : float;
  lut_estimate : float;
}

val fixed :
  Connectivity.t -> ?label:string -> route:string list -> lgc:string list ->
  unit -> choice
(** Select blocks by origin-substring; raises {!Shell_util.Diag.Error}
    (naming the pattern) if a pattern matches nothing. *)

val auto :
  Connectivity.t ->
  ?coeffs:Score.coeffs ->
  ?lgc_depth:int ->
  ?max_luts:float ->
  ?min_luts:float ->
  ?min_coverage:float ->
  unit ->
  choice
(** Defaults: SheLL coefficients, depth 0, budget 24..96 estimated
    LUTs, 50% coverage. *)

val with_lgc_depth :
  Connectivity.t -> route:string list -> depth:int -> choice
(** Table VII methodology: keep the ROUTE selection fixed (by origin
    substring) and pick the best small generic LGC companion at
    exactly [depth] + 1 block hops (depth 0 = directly connected).
    Falls back to the nearest populated distance if none exists. *)

val member : Connectivity.t -> choice -> int -> bool
(** Whether a cell index belongs to the selection. *)

val route_origins : Connectivity.t -> choice -> string list
