(** Step 5: dual synthesis of the extracted sub-circuit.

    For chain-capable styles, ROUTE-origin muxes are packed onto MUX
    chains and everything else is LUT-mapped around them (the two
    Yosys calls of the paper); other styles LUT-map the whole
    sub-circuit. *)

type mapped = {
  netlist : Shell_netlist.Netlist.t;
  luts : int;
  lut_levels : int;
  chain_mux4 : int;
  chain_mux2 : int;
  chain_stages : int;  (** longest packed MUX-chain, in cells (0 when unpacked) *)
  ffs : int;
}

val run :
  style:Shell_fabric.Style.t ->
  route_origins:string list ->
  Shell_netlist.Netlist.t ->
  mapped
