module Netlist = Shell_netlist.Netlist
module Equiv = Shell_netlist.Equiv
module Style = Shell_fabric.Style
module Fabric = Shell_fabric.Fabric
module Emit = Shell_fabric.Emit
module Bitstream = Shell_fabric.Bitstream
module Pnr = Shell_pnr.Pnr
module Locked = Shell_locking.Locked
module Diag = Shell_util.Diag

type target = Pipeline.target =
  | Fixed of { route : string list; lgc : string list; label : string }
  | Auto of { coeffs : Score.coeffs; lgc_depth : int }
  | Route_with_lgc_depth of { route : string list; depth : int }

type config = Pipeline.config = {
  style : Style.t;
  target : target;
  shrink : bool;
  seed : int;
  max_luts : float;
}

let shell_config = Pipeline.shell_config

type result = {
  config : config;
  original : Shell_netlist.Netlist.t;
  analysis : Connectivity.t;
  choice : Selection.choice;
  cut : Extraction.cut;
  mapped : Synthesize.mapped;
  pnr : Shell_pnr.Pnr.result;
  emitted : Shell_fabric.Emit.t;
  resources : Shell_fabric.Resources.t;
  overhead : Overhead.t;
  locked_full : Shell_netlist.Netlist.t;
  lint : Shell_lint.Lint.report;
}

let of_outcome (o : Pipeline.outcome) =
  (match o.Pipeline.failed with Some d -> raise (Diag.Error d) | None -> ());
  let a = o.Pipeline.artifacts in
  let the field = function
    | Some x -> x
    | None -> Diag.failf "Flow.run: pipeline left no %s artifact" field
  in
  {
    config = a.Pipeline.config;
    original = a.Pipeline.original;
    analysis = the "analysis" a.Pipeline.analysis;
    choice = the "choice" a.Pipeline.choice;
    cut = the "cut" a.Pipeline.cut;
    mapped = the "mapped" a.Pipeline.mapped;
    pnr = the "pnr" a.Pipeline.pnr;
    emitted = the "emitted" a.Pipeline.emitted;
    resources = the "resources" a.Pipeline.resources;
    overhead = the "overhead" a.Pipeline.overhead;
    locked_full = the "locked_full" a.Pipeline.locked_full;
    lint = the "lint" a.Pipeline.lint;
  }

let run_staged ?use_cache ?strict_fit ?fabric config original =
  Pipeline.execute ?use_cache ?strict_fit ?fabric config original

let run config original = of_outcome (Pipeline.execute config original)

let locked_sub r =
  {
    Locked.locked = r.emitted.Emit.locked;
    key = Bitstream.bits r.emitted.Emit.bitstream;
    scheme = "efpga-redaction";
  }

let verify ?(runs = 8) ?(cycles = 24) r =
  (* bind the bitstream first: cyclic-style emissions cannot be
     simulated until the configuration collapses the decoy routing *)
  let key = Bitstream.bits r.emitted.Emit.bitstream in
  let bound = Shell_netlist.Specialize.bind_keys r.locked_full key in
  match Equiv.check_sequential ~runs ~cycles r.original bound with
  | Equiv.Equivalent -> true
  | Equiv.Counterexample _ -> false

let pp_summary ppf r =
  Format.fprintf ppf
    "@[<v>style: %s@,TfR: %s@,coverage: %.2f  est LUTs: %.1f@,mapped: %d LUTs (%d levels), %d chain mux4, %d mux2, %d FFs@,fabric: %a  fit: %s  utilization: %.2f@,key bits: %d@,overhead: %a@]"
    (Style.name r.config.style) r.choice.Selection.label
    r.choice.Selection.coverage r.choice.Selection.lut_estimate
    r.mapped.Synthesize.luts r.mapped.Synthesize.lut_levels
    r.mapped.Synthesize.chain_mux4 r.mapped.Synthesize.chain_mux2
    r.mapped.Synthesize.ffs Fabric.pp r.pnr.Pnr.fabric
    (match r.pnr.Pnr.fit with Ok () -> "yes" | Error _ -> "NO")
    r.pnr.Pnr.utilization
    r.emitted.Emit.used.Shell_fabric.Resources.config_bits
    Overhead.pp r.overhead
