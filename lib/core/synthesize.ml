module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Style = Shell_fabric.Style
module Opt = Shell_synth.Opt
module Lut_map = Shell_synth.Lut_map
module Mux_chain = Shell_synth.Mux_chain

type mapped = {
  netlist : Shell_netlist.Netlist.t;
  luts : int;
  lut_levels : int;
  chain_mux4 : int;
  chain_mux2 : int;
  chain_stages : int;
  ffs : int;
}

let origin_matches origins (c : Cell.t) =
  List.exists
    (fun pat ->
      let s = c.Cell.origin and m = String.length pat in
      let n = String.length s in
      let rec go i = i + m <= n && (String.sub s i m = pat || go (i + 1)) in
      m > 0 && go 0)
    origins

let count nl p = Netlist.count_kind nl p

let run ~style ~route_origins sub =
  let p = Style.params style in
  let simplified = Opt.simplify sub in
  let mapped_nl, lut_stats, chain_stages =
    if p.Style.supports_chain && route_origins <> [] then begin
      let is_route = origin_matches route_origins in
      let packed, chain_stats =
        Mux_chain.map ~should_pack:is_route simplified
      in
      (* keep chain cells out of the LUT covering: Mux4 is structural
         (arity 6 > 4); route-origin Mux2 via the boundary predicate *)
      let boundary c = c.Cell.kind = Cell.Mux2 && is_route c in
      let nl, stats = Lut_map.map ~k:p.Style.lut_k ~boundary packed in
      (nl, stats, chain_stats.Mux_chain.chain_length)
    end
    else
      let nl, stats = Lut_map.map ~k:p.Style.lut_k simplified in
      (nl, stats, 0)
  in
  {
    netlist = mapped_nl;
    luts = lut_stats.Lut_map.luts;
    lut_levels = lut_stats.Lut_map.levels;
    chain_mux4 = count mapped_nl (function Cell.Mux4 -> true | _ -> false);
    chain_mux2 = count mapped_nl (function Cell.Mux2 -> true | _ -> false);
    chain_stages;
    ffs = count mapped_nl (function Cell.Dff -> true | _ -> false);
  }
