(** The SheLL flow as a staged pass pipeline.

    The eight steps of Fig. 4 — connectivity, selection, extraction,
    synthesis, PnR, emission, shrinking, overhead — plus a final
    diagnostics-only [lint] pass are named passes, each consuming and
    producing fields of a staged {!artifacts}
    record. {!execute} runs them in order, recording a
    {!Shell_util.Trace.span} per pass (wall time, cache hit, counters)
    and stopping at the first pass that raises
    {!Shell_util.Diag.Error}: the outcome then carries the diagnostic
    (stamped with the failing pass) alongside every artifact produced
    before it.

    Pass outputs are memoized in a process-wide cache keyed by a
    fingerprint of each pass's inputs, so re-running a flow that only
    changed a downstream input (a different selection on the same
    netlist, a different seed on the same mapping) reuses the upstream
    results. Passes are pure functions of their fingerprinted inputs,
    which keeps cached and uncached executions byte-identical — the
    property [Explore.search] and the Table VI sweep rely on. Disable
    with [SHELL_PASS_CACHE=0] (or [~use_cache:false]). *)

type target =
  | Fixed of { route : string list; lgc : string list; label : string }
      (** origin-substring selection (the TfR columns) *)
  | Auto of { coeffs : Score.coeffs; lgc_depth : int }
      (** scored selection; [lgc_depth] 0 is the SheLL constraint *)
  | Route_with_lgc_depth of { route : string list; depth : int }
      (** Table VII methodology: fixed ROUTE, best LGC at a distance *)

type config = {
  style : Shell_fabric.Style.t;
  target : target;
  shrink : bool;  (** step 8 on/off *)
  seed : int;
  max_luts : float;  (** budget for [Auto] selection *)
}

val shell_config : ?target:target -> unit -> config
(** SheLL defaults: FABulous + MUX chains, auto (c5) selection at
    depth 0, shrinking on. *)

type artifacts = {
  config : config;
  original : Shell_netlist.Netlist.t;
  fingerprint : string;  (** structural fingerprint of [original] *)
  analysis : Connectivity.t option;
  choice : Selection.choice option;
  cut : Extraction.cut option;
  mapped : Synthesize.mapped option;
  pnr : Shell_pnr.Pnr.result option;
  emitted : Shell_fabric.Emit.t option;
  timing : Shell_netlist.Netlist.t option;
      (** topologically-orderable twin of the emission *)
  feedthroughs : int option;
  resources : Shell_fabric.Resources.t option;
  overhead : Overhead.t option;
  locked_full : Shell_netlist.Netlist.t option;
  lint : Shell_lint.Lint.report option;
      (** static-analysis report over the locked result (never aborts
          the flow; see {!Shell_lint.Rules}) *)
}
(** Staged record: a pass fills its fields and leaves the rest. After
    an aborted execution the fields of every completed pass are still
    set. *)

type outcome = {
  artifacts : artifacts;
  trace : Shell_util.Trace.span list;  (** one span per completed pass *)
  failed : Shell_util.Diag.t option;  (** [Some] when a pass aborted *)
}

val pass_names : string list
(** The nine pass names, in execution order. *)

val execute :
  ?use_cache:bool ->
  ?strict_fit:bool ->
  ?fabric:Shell_fabric.Fabric.t ->
  config ->
  Shell_netlist.Netlist.t ->
  outcome
(** Run the pipeline. Never raises on pass failure — the diagnostic
    lands in [failed]. [~strict_fit] turns a PnR fit-check failure
    into an abort (diagnostic carries the typed
    {!Shell_fabric.Fabric.Shortage}); the default preserves the
    legacy behavior of reporting the shortage in
    [result.fit]. [~fabric] pins the fabric (skipping the sizing/grow
    loop) — used with [~strict_fit] to force a fit failure. When
    [SHELL_TRACE] is on, spans are printed to stderr. *)

val cache_stats : unit -> int * int
(** (hits, misses) since the last {!clear_cache}. *)

val clear_cache : unit -> unit

(** {1 Cache internals}

    The single-flight pass cache, exposed for the serve daemon's
    spill store and for tests that exercise claim/evict interleavings
    directly. Normal callers go through {!execute}. *)

type product =
  | P_analysis of Connectivity.t
  | P_choice of Selection.choice
  | P_cut of Extraction.cut
  | P_mapped of Synthesize.mapped
  | P_pnr of Shell_pnr.Pnr.result
  | P_emit of Shell_fabric.Emit.t * Shell_netlist.Netlist.t
  | P_shrink of int * Shell_fabric.Resources.t
  | P_overhead of Overhead.t * Shell_netlist.Netlist.t
  | P_lint of Shell_lint.Lint.report
      (** one cached pass output, keyed by [pass_name ^ "|" ^
          input_fingerprint] *)

val cache_cap : int
(** Entry ceiling; reaching it evicts all [Ready] entries (never
    in-flight claims — see {!cache_find}). *)

val cache_find : string -> product option
(** [Some p] on a hit (waiting out another domain's in-flight
    computation if needed, and consulting the attached spill store);
    [None] claims the key single-flight — the caller must follow up
    with {!cache_add} or {!cache_abort}. *)

val cache_add : string -> product -> unit
(** Publish a claimed key's product (and spill it to the attached
    store). Cap eviction drops only [Ready] entries, so a concurrent
    claim is never wiped. *)

val cache_abort : string -> unit
(** Re-open a claimed key after a failed computation so waiters retry
    it themselves. *)

val cache_slot : string -> [ `Ready | `Pending | `Absent ]
(** Observe a key's slot state (tests). *)

type store = {
  save : string -> string -> unit;
  load : string -> string option;
}
(** Blob store for cache spill: [save key blob] / [load key]. Blobs
    are opaque marshalled pairs; failures on either side degrade to a
    cold cache and are never raised. *)

val set_store : store option -> unit
(** Attach (or detach, with [None]) the spill store. The serve daemon
    attaches a content-addressed on-disk store at startup so warm
    hits survive restarts. *)
