(** The SheLL flow as a staged pass pipeline.

    The eight steps of Fig. 4 — connectivity, selection, extraction,
    synthesis, PnR, emission, shrinking, overhead — plus a final
    diagnostics-only [lint] pass are named passes, each consuming and
    producing fields of a staged {!artifacts}
    record. {!execute} runs them in order, recording a
    {!Shell_util.Trace.span} per pass (wall time, cache hit, counters)
    and stopping at the first pass that raises
    {!Shell_util.Diag.Error}: the outcome then carries the diagnostic
    (stamped with the failing pass) alongside every artifact produced
    before it.

    Pass outputs are memoized in a process-wide cache keyed by a
    fingerprint of each pass's inputs, so re-running a flow that only
    changed a downstream input (a different selection on the same
    netlist, a different seed on the same mapping) reuses the upstream
    results. Passes are pure functions of their fingerprinted inputs,
    which keeps cached and uncached executions byte-identical — the
    property [Explore.search] and the Table VI sweep rely on. Disable
    with [SHELL_PASS_CACHE=0] (or [~use_cache:false]). *)

type target =
  | Fixed of { route : string list; lgc : string list; label : string }
      (** origin-substring selection (the TfR columns) *)
  | Auto of { coeffs : Score.coeffs; lgc_depth : int }
      (** scored selection; [lgc_depth] 0 is the SheLL constraint *)
  | Route_with_lgc_depth of { route : string list; depth : int }
      (** Table VII methodology: fixed ROUTE, best LGC at a distance *)

type config = {
  style : Shell_fabric.Style.t;
  target : target;
  shrink : bool;  (** step 8 on/off *)
  seed : int;
  max_luts : float;  (** budget for [Auto] selection *)
}

val shell_config : ?target:target -> unit -> config
(** SheLL defaults: FABulous + MUX chains, auto (c5) selection at
    depth 0, shrinking on. *)

type artifacts = {
  config : config;
  original : Shell_netlist.Netlist.t;
  fingerprint : string;  (** structural fingerprint of [original] *)
  analysis : Connectivity.t option;
  choice : Selection.choice option;
  cut : Extraction.cut option;
  mapped : Synthesize.mapped option;
  pnr : Shell_pnr.Pnr.result option;
  emitted : Shell_fabric.Emit.t option;
  timing : Shell_netlist.Netlist.t option;
      (** topologically-orderable twin of the emission *)
  feedthroughs : int option;
  resources : Shell_fabric.Resources.t option;
  overhead : Overhead.t option;
  locked_full : Shell_netlist.Netlist.t option;
  lint : Shell_lint.Lint.report option;
      (** static-analysis report over the locked result (never aborts
          the flow; see {!Shell_lint.Rules}) *)
}
(** Staged record: a pass fills its fields and leaves the rest. After
    an aborted execution the fields of every completed pass are still
    set. *)

type outcome = {
  artifacts : artifacts;
  trace : Shell_util.Trace.span list;  (** one span per completed pass *)
  failed : Shell_util.Diag.t option;  (** [Some] when a pass aborted *)
}

val pass_names : string list
(** The nine pass names, in execution order. *)

val execute :
  ?use_cache:bool ->
  ?strict_fit:bool ->
  ?fabric:Shell_fabric.Fabric.t ->
  config ->
  Shell_netlist.Netlist.t ->
  outcome
(** Run the pipeline. Never raises on pass failure — the diagnostic
    lands in [failed]. [~strict_fit] turns a PnR fit-check failure
    into an abort (diagnostic carries the typed
    {!Shell_fabric.Fabric.Shortage}); the default preserves the
    legacy behavior of reporting the shortage in
    [result.fit]. [~fabric] pins the fabric (skipping the sizing/grow
    loop) — used with [~strict_fit] to force a fit failure. When
    [SHELL_TRACE] is on, spans are printed to stderr. *)

val cache_stats : unit -> int * int
(** (hits, misses) since the last {!clear_cache}. *)

val clear_cache : unit -> unit
