type choice = {
  route_blocks : int list;
  lgc_blocks : int list;
  label : string;
  coverage : float;
  lut_estimate : float;
}

let estimate (t : Connectivity.t) blocks =
  List.fold_left
    (fun acc b -> acc +. t.Connectivity.blocks.(b).Connectivity.lut_estimate)
    0.0 blocks

let finalize t ~label ~route_blocks ~lgc_blocks =
  let all = route_blocks @ lgc_blocks in
  {
    route_blocks;
    lgc_blocks;
    label;
    coverage = Connectivity.coverage t all;
    lut_estimate = estimate t all;
  }

let fixed t ?label ~route ~lgc () =
  let resolve pats =
    List.concat_map
      (fun pat ->
        match Connectivity.blocks_matching t pat with
        | [] ->
            Shell_util.Diag.failf "Selection.fixed: no block matches %s" pat
        | l -> l)
      pats
  in
  let route_blocks = resolve route and lgc_blocks = resolve lgc in
  let label =
    match label with
    | Some l -> l
    | None -> String.concat " + " (route @ lgc)
  in
  finalize t ~label ~route_blocks ~lgc_blocks

let auto t ?(coeffs = Score.shell_choice) ?(lgc_depth = 0) ?(max_luts = 96.0)
    ?(min_luts = 24.0) ?(min_coverage = 0.5) () =
  let blocks = t.Connectivity.blocks in
  let n = Array.length blocks in
  let score b = Score.eval coeffs blocks.(b).Connectivity.attrs in
  (* routing preference only matters when the profile rewards it: rank
     all blocks by score, nudging route-shaped blocks up *)
  let ranked =
    List.init n Fun.id
    |> List.filter (fun b -> blocks.(b).Connectivity.name <> "")
    |> List.sort (fun a b ->
           compare
             (score b +. (0.3 *. blocks.(b).Connectivity.route_fraction))
             (score a +. (0.3 *. blocks.(a).Connectivity.route_fraction)))
  in
  (* rule (i)+(ii)+(iii): greedily take top blocks as ROUTE until
     coverage or budget binds *)
  let rec take acc luts = function
    | [] -> List.rev acc
    | b :: tl ->
        let lut_b = blocks.(b).Connectivity.lut_estimate in
        if luts +. lut_b > max_luts && acc <> [] then List.rev acc
        else begin
          let acc = b :: acc and luts = luts +. lut_b in
          (* stop once the pick is both connected enough (rule ii) and
             substantial enough to be worth a fabric (rule iii) *)
          if Connectivity.coverage t acc >= min_coverage && luts >= min_luts
          then List.rev acc
          else take acc luts tl
        end
  in
  let route_blocks = take [] 0.0 ranked in
  (* rule (iv): one small generic LGC companion at the requested depth *)
  let dist = Connectivity.distance t route_blocks in
  let target_d = lgc_depth + 1 in
  let candidates =
    List.init n Fun.id
    |> List.filter (fun b ->
           dist.(b) = target_d
           && (not (List.mem b route_blocks))
           && blocks.(b).Connectivity.name <> "")
  in
  let lgc_blocks =
    match
      List.sort
        (fun a b ->
          (* high EigC, low LuTR *)
          compare
            (blocks.(b).Connectivity.attrs.Score.eigc
            -. blocks.(b).Connectivity.attrs.Score.lutr)
            (blocks.(a).Connectivity.attrs.Score.eigc
            -. blocks.(a).Connectivity.attrs.Score.lutr))
        candidates
    with
    | [] -> []
    | best :: _ -> [ best ]
  in
  let label =
    String.concat " + "
      (List.map (fun b -> blocks.(b).Connectivity.name) (route_blocks @ lgc_blocks))
  in
  finalize t ~label ~route_blocks ~lgc_blocks

let with_lgc_depth t ~route ~depth =
  let resolve pats =
    List.concat_map (fun pat -> Connectivity.blocks_matching t pat) pats
  in
  let route_blocks = resolve route in
  let blocks = t.Connectivity.blocks in
  let dist = Connectivity.distance t route_blocks in
  let candidates_at d =
    List.init (Array.length blocks) Fun.id
    |> List.filter (fun b ->
           dist.(b) = d
           && (not (List.mem b route_blocks))
           && blocks.(b).Connectivity.name <> "")
  in
  let rec pick d tries =
    match candidates_at d with
    | [] when tries > 0 -> pick (d + 1) (tries - 1)
    | cands -> (d, cands)
  in
  let d, cands = pick (depth + 1) 4 in
  (* size-matched comparison across depths: smallest non-trivial LGC *)
  let lgc_blocks =
    match
      List.filter (fun b -> blocks.(b).Connectivity.lut_estimate >= 2.0) cands
      |> List.sort (fun a b ->
             compare blocks.(a).Connectivity.lut_estimate
               blocks.(b).Connectivity.lut_estimate)
    with
    | [] -> ( match cands with [] -> [] | b :: _ -> [ b ])
    | best :: _ -> [ best ]
  in
  let label =
    Printf.sprintf "%s + lgc@%d" (String.concat "+" route) (d - 1)
  in
  finalize t ~label ~route_blocks ~lgc_blocks

let member t choice =
  let mark = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun ci -> Hashtbl.replace mark ci ())
        t.Connectivity.blocks.(b).Connectivity.cells)
    (choice.route_blocks @ choice.lgc_blocks);
  fun ci -> Hashtbl.mem mark ci

let route_origins t choice =
  List.map
    (fun b -> t.Connectivity.blocks.(b).Connectivity.name)
    choice.route_blocks
