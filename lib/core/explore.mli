(** Automated coefficient exploration — the paper's named future work
    ("Future work will explore these attributes more quantitatively and
    more heuristically (e.g., use of (M)ILP, GA, or ML)", Sec. V).

    A small deterministic evolutionary search over the Eq. 1
    coefficient space: candidates are scored by the overhead of the
    flow they induce, with a security floor expressed as a minimum key
    size (bitstream length). The paper's hand-picked c5 profile is a
    baseline individual, so the search can only match or beat it. *)

type candidate = {
  coeffs : Score.coeffs;
  overhead : Overhead.t;
  key_bits : int;
  label : string;  (** TfR the profile selected *)
}

type outcome = {
  best : candidate;
  evaluated : candidate list;  (** every distinct profile tried *)
  generations : int;
}

val search :
  ?seed:int ->
  ?generations:int ->
  ?population:int ->
  ?min_key_bits:int ->
  ?jobs:int ->
  Shell_netlist.Netlist.t ->
  outcome
(** Defaults: 6 generations of 8 individuals, 256-bit key floor.
    Fitness = area overhead (power/delay follow area closely in this
    model); individuals violating the key floor are penalized, not
    discarded, so the search can traverse them.

    Each generation's population is evaluated on up to [jobs] domains
    (default {!Shell_util.Pool.default_jobs}); all genetic-operator
    randomness is drawn on the caller before a generation is submitted,
    so [best] and [evaluated] are identical at every job count. *)

val fitness : min_key_bits:int -> candidate -> float
(** Lower is better. *)
