module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Style = Shell_fabric.Style
module Fabric = Shell_fabric.Fabric
module Emit = Shell_fabric.Emit
module Resources = Shell_fabric.Resources
module Pnr = Shell_pnr.Pnr
module Lint = Shell_lint.Lint
module Lint_rules = Shell_lint.Rules
module Diag = Shell_util.Diag
module Trace = Shell_util.Trace
module Clock = Shell_util.Clock

type target =
  | Fixed of { route : string list; lgc : string list; label : string }
  | Auto of { coeffs : Score.coeffs; lgc_depth : int }
  | Route_with_lgc_depth of { route : string list; depth : int }

type config = {
  style : Style.t;
  target : target;
  shrink : bool;
  seed : int;
  max_luts : float;
}

let shell_config ?target () =
  {
    style = Style.Fabulous_muxchain;
    target =
      (match target with
      | Some t -> t
      | None -> Auto { coeffs = Score.shell_choice; lgc_depth = 0 });
    shrink = true;
    seed = 0x51e11;
    max_luts = 96.0;
  }

type artifacts = {
  config : config;
  original : Netlist.t;
  fingerprint : string;
  analysis : Connectivity.t option;
  choice : Selection.choice option;
  cut : Extraction.cut option;
  mapped : Synthesize.mapped option;
  pnr : Pnr.result option;
  emitted : Emit.t option;
  timing : Netlist.t option;
  feedthroughs : int option;
  resources : Resources.t option;
  overhead : Overhead.t option;
  locked_full : Netlist.t option;
  lint : Lint.report option;
}

type outcome = {
  artifacts : artifacts;
  trace : Trace.span list;
  failed : Diag.t option;
}

let pass_names =
  [
    "connectivity";
    "selection";
    "extraction";
    "synthesis";
    "pnr";
    "emit";
    "shrink";
    "overhead";
    "lint";
  ]

(* ------------------------------------------------------------------ *)
(* Pass-level cache: keyed by (pass name, fingerprint of the pass's
   inputs). Passes are pure functions of their fingerprinted inputs,
   so a hit returns the identical artifact a fresh run would produce —
   which is what keeps cached and uncached executions byte-identical.
   Shared across domains (Explore.search evaluates candidates on the
   PR-1 pool), hence the mutex.

   The cache is single-flight: a lookup that finds another domain
   already computing the same key blocks until that computation lands
   instead of recomputing. Besides saving the duplicate work, this
   makes the number of pass-body executions a pure function of the
   workload — which is what lets stable Obs counters incremented
   inside pass bodies (pool tasks, emitted bitstream bits) stay
   byte-identical across SHELL_JOBS settings. *)

type product =
  | P_analysis of Connectivity.t
  | P_choice of Selection.choice
  | P_cut of Extraction.cut
  | P_mapped of Synthesize.mapped
  | P_pnr of Pnr.result
  | P_emit of Emit.t * Netlist.t
  | P_shrink of int * Resources.t
  | P_overhead of Overhead.t * Netlist.t
  | P_lint of Lint.report

type slot = Ready of product | Pending

let cache : (string, slot) Hashtbl.t = Hashtbl.create 251
let cache_lock = Mutex.create ()
let cache_landed = Condition.create ()
let cache_cap = 512
let hits = ref 0
let misses = ref 0

module Obs = Shell_util.Obs

(* Hit/miss splits survive single-flight deterministically in the
   common case, but cap evictions and failed computations re-open keys
   whose timing is scheduling-dependent — so they stay unstable. *)
let m_cache_hits = Obs.counter ~help:"pass-cache hits" "pipeline_cache_hits"

let m_cache_misses =
  Obs.counter ~help:"pass-cache misses" "pipeline_cache_misses"

let m_cache_bytes =
  Obs.counter ~help:"bytes of artifacts added to the pass cache"
    "pipeline_cache_bytes"

let m_passes =
  Obs.counter ~stable:true ~help:"pipeline passes processed (cached or not)"
    "pipeline_passes"

let m_cache_disk_writes =
  Obs.counter ~help:"pass-cache entries spilled to the on-disk store"
    "pipeline_cache_disk_writes"

let m_cache_disk_hits =
  Obs.counter ~help:"pass-cache misses served from the on-disk store"
    "pipeline_cache_disk_hits"

(* Optional content-addressed spill store (the serve daemon attaches
   one so warm hits survive restarts). Blobs are opaque here: this
   module marshals [(key, product)] pairs and the store only moves
   bytes. Both directions swallow store failures — a broken disk
   cache must degrade to a cold cache, never break the pipeline. *)
type store = {
  save : string -> string -> unit;
  load : string -> string option;
}

let store_ref : store option ref = ref None
let set_store s = store_ref := s

let env_cache_enabled () =
  match Sys.getenv_opt "SHELL_PASS_CACHE" with
  | Some ("0" | "" | "false") -> false
  | Some _ | None -> true

let clear_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  hits := 0;
  misses := 0;
  Condition.broadcast cache_landed;
  Mutex.unlock cache_lock

let cache_stats () =
  Mutex.lock cache_lock;
  let r = (!hits, !misses) in
  Mutex.unlock cache_lock;
  r

(* the computation claimed by [cache_find] failed: re-open the key so
   waiters retry it themselves *)
let cache_abort key =
  Mutex.lock cache_lock;
  (match Hashtbl.find_opt cache key with
  | Some Pending -> Hashtbl.remove cache key
  | Some (Ready _) | None -> ());
  Condition.broadcast cache_landed;
  Mutex.unlock cache_lock

(* Lazy driver/fanout tables must be materialized before a netlist is
   published to other domains through the cache. *)
let warm nl =
  if Netlist.num_nets nl > 0 then begin
    ignore (Netlist.driver nl 0);
    ignore (Netlist.fanout nl 0)
  end

let warm_product = function
  | P_analysis a -> warm a.Connectivity.netlist
  | P_choice _ -> ()
  | P_cut c -> warm c.Extraction.sub
  | P_mapped m -> warm m.Synthesize.netlist
  | P_pnr _ -> ()
  | P_emit (e, timing) ->
      warm e.Emit.locked;
      warm timing
  | P_shrink _ -> ()
  | P_overhead (_, locked_full) -> warm locked_full
  | P_lint _ -> ()

(* Disk probe for a freshly claimed key, run OUTSIDE [cache_lock] so
   store I/O never blocks other domains' cache traffic. The blob
   carries its own key so a store collision/corruption can only
   degrade to a miss. *)
let store_load key =
  match !store_ref with
  | None -> None
  | Some st -> (
      match st.load key with
      | None | (exception _) -> None
      | Some blob -> (
          match (Marshal.from_string blob 0 : string * product) with
          | k, p when String.equal k key -> Some p
          | _ | (exception _) -> None))

let store_save key product =
  match !store_ref with
  | None -> ()
  | Some st -> (
      match Marshal.to_string (key, product) [] with
      | exception _ -> ()
      | blob -> (
          match st.save key blob with
          | () -> Obs.incr m_cache_disk_writes
          | exception _ -> ()))

(* Cap housekeeping: evict only [Ready] entries. A [Pending] slot is
   another domain's in-flight claim — wiping it (the old
   [Hashtbl.reset]) violated single-flight: waiters on the vanished
   slot re-claimed and recomputed the key, racing the original
   owner's [cache_add]/[cache_abort]. Call with [cache_lock] held. *)
let evict_ready_if_full () =
  if Hashtbl.length cache >= cache_cap then
    Hashtbl.filter_map_inplace
      (fun _ slot -> match slot with Ready _ -> None | Pending -> Some slot)
      cache

(* [Some p] on a hit (including waiting out another domain's in-flight
   computation of the same key, and including a warm entry loaded from
   the spill store); [None] claims the key — the caller must follow up
   with [cache_add] or [cache_abort]. *)
let cache_find key =
  Mutex.lock cache_lock;
  let rec look () =
    match Hashtbl.find_opt cache key with
    | Some (Ready p) ->
        incr hits;
        Obs.incr m_cache_hits;
        `Hit p
    | Some Pending ->
        Condition.wait cache_landed cache_lock;
        look ()
    | None ->
        Hashtbl.replace cache key Pending;
        `Claimed
  in
  let r = look () in
  Mutex.unlock cache_lock;
  match r with
  | `Hit p -> Some p
  | `Claimed -> (
      match store_load key with
      | Some p ->
          warm_product p;
          Mutex.lock cache_lock;
          evict_ready_if_full ();
          Hashtbl.replace cache key (Ready p);
          incr hits;
          Obs.incr m_cache_hits;
          Obs.incr m_cache_disk_hits;
          Condition.broadcast cache_landed;
          Mutex.unlock cache_lock;
          Some p
      | None ->
          Mutex.lock cache_lock;
          incr misses;
          Obs.incr m_cache_misses;
          Mutex.unlock cache_lock;
          None)

let cache_add key product =
  warm_product product;
  if Obs.enabled () then
    Obs.add m_cache_bytes (8 * Obj.reachable_words (Obj.repr product));
  Mutex.lock cache_lock;
  evict_ready_if_full ();
  Hashtbl.replace cache key (Ready product);
  Condition.broadcast cache_landed;
  Mutex.unlock cache_lock;
  store_save key product

let cache_slot key =
  Mutex.lock cache_lock;
  let r =
    match Hashtbl.find_opt cache key with
    | Some (Ready _) -> `Ready
    | Some Pending -> `Pending
    | None -> `Absent
  in
  Mutex.unlock cache_lock;
  r

(* ------------------------------------------------------------------ *)
(* Input fingerprints *)

let target_key = function
  | Fixed { route; lgc; label } ->
      Printf.sprintf "fixed:%s:%s:%s" label (String.concat "," route)
        (String.concat "," lgc)
  | Auto { coeffs = c; lgc_depth } ->
      Printf.sprintf "auto:%h,%h,%h,%h,%h,%h:%d" c.Score.alpha c.Score.beta
        c.Score.gamma c.Score.lambda c.Score.xi c.Score.sigma lgc_depth
  | Route_with_lgc_depth { route; depth } ->
      Printf.sprintf "rwd:%s:%d" (String.concat "," route) depth

let fabric_key = function
  | None -> "-"
  | Some (f : Fabric.t) ->
      Printf.sprintf "%s:%dx%d:%d" (Style.name f.Fabric.style) f.Fabric.cols
        f.Fabric.rows f.Fabric.chain_slots

let choice_key (c : Selection.choice) =
  Printf.sprintf "%s|%s"
    (String.concat "," (List.map string_of_int c.Selection.route_blocks))
    (String.concat "," (List.map string_of_int c.Selection.lgc_blocks))

(* ------------------------------------------------------------------ *)

type ctx = { strict_fit : bool; fabric : Fabric.t option; use_cache : bool }

let the pass = function
  | Some x -> x
  | None -> Diag.failf ~pass "internal: upstream artifact missing"

(* Table VII mechanism: ROUTE <-> LGC traffic that has to leave the
   fabric, traverse the excluded middle logic and come back. Only
   cross-family paths count: a directly-connected (depth-0) pick
   keeps this traffic internal and pays nothing. *)
let count_feedthroughs original (cut : Extraction.cut) route_origins =
  let member = Hashtbl.create 64 in
  List.iter (fun ci -> Hashtbl.replace member ci ()) cut.Extraction.cells;
  let origin_matches pats (c : Cell.t) =
    List.exists
      (fun pat ->
        let s = c.Cell.origin and m = String.length pat in
        let n = String.length s in
        let rec go i = i + m <= n && (String.sub s i m = pat || go (i + 1)) in
        m > 0 && go 0)
      pats
  in
  let family ci =
    if origin_matches route_origins (Netlist.cell original ci) then `Route
    else `Lgc
  in
  (* family of each boundary-output driver / boundary-input reader *)
  let in_family = Hashtbl.create 32 in
  List.iter
    (fun (_, net) ->
      List.iter
        (fun ci ->
          if Hashtbl.mem member ci then Hashtbl.replace in_family net (family ci))
        (Netlist.fanout original net))
    cut.Extraction.input_binding;
  let count = ref 0 in
  List.iter
    (fun (_, start) ->
      match Netlist.driver original start with
      | None -> ()
      | Some drv when not (Hashtbl.mem member drv) -> ()
      | Some drv ->
          let out_fam = family drv in
          let seen = Hashtbl.create 64 in
          let hit = ref false in
          let rec go net depth =
            if depth >= 0 && not !hit then begin
              (match Hashtbl.find_opt in_family net with
              | Some fam when fam <> out_fam && net <> start -> hit := true
              | Some _ | None -> ());
              if not !hit then
                List.iter
                  (fun ci ->
                    if
                      (not (Hashtbl.mem member ci)) && not (Hashtbl.mem seen ci)
                    then begin
                      Hashtbl.replace seen ci ();
                      let c = Netlist.cell original ci in
                      if not (Cell.is_sequential c.Cell.kind) then
                        go c.Cell.out (depth - 1)
                    end)
                  (Netlist.fanout original net)
            end
          in
          go start 6;
          if !hit then incr count)
    cut.Extraction.output_binding;
  !count

let routed_nets nl =
  let n = ref 0 in
  for net = 0 to Netlist.num_nets nl - 1 do
    if Netlist.driver nl net <> None && Netlist.fanout nl net <> [] then incr n
  done;
  !n

type pass = {
  name : string;
  key : ctx -> artifacts -> string option;
      (** cache key of the pass's inputs; [None] disables caching *)
  run : ctx -> artifacts -> product;
  counters : artifacts -> (string * int) list;
}

let p_connectivity =
  {
    name = "connectivity";
    key = (fun _ a -> Some a.fingerprint);
    run = (fun _ a -> P_analysis (Connectivity.analyze a.original));
    counters =
      (fun a ->
        let t = the "connectivity" a.analysis in
        [
          ("cells", Netlist.num_cells a.original);
          ("nets", Netlist.num_nets a.original);
          ("blocks", Array.length t.Connectivity.blocks);
        ]);
  }

let p_selection =
  {
    name = "selection";
    key =
      (fun _ a ->
        Some
          (Printf.sprintf "%s|%s|%h" a.fingerprint (target_key a.config.target)
             a.config.max_luts));
    run =
      (fun _ a ->
        let analysis = the "selection" a.analysis in
        let choice =
          match a.config.target with
          | Fixed { route; lgc; label } ->
              Selection.fixed analysis ~label ~route ~lgc ()
          | Auto { coeffs; lgc_depth } ->
              Selection.auto analysis ~coeffs ~lgc_depth
                ~max_luts:a.config.max_luts ()
          | Route_with_lgc_depth { route; depth } ->
              Selection.with_lgc_depth analysis ~route ~depth
        in
        P_choice choice);
    counters =
      (fun a ->
        let c = the "selection" a.choice in
        [
          ("route_blocks", List.length c.Selection.route_blocks);
          ("lgc_blocks", List.length c.Selection.lgc_blocks);
          ("est_luts", int_of_float (Float.round c.Selection.lut_estimate));
          ("coverage_pct", int_of_float (100. *. c.Selection.coverage));
        ]);
  }

let p_extraction =
  {
    name = "extraction";
    key =
      (fun _ a ->
        Option.map
          (fun c -> Printf.sprintf "%s|%s" a.fingerprint (choice_key c))
          a.choice);
    run =
      (fun _ a ->
        let analysis = the "extraction" a.analysis
        and choice = the "extraction" a.choice in
        let member_cell = Selection.member analysis choice in
        P_cut (Extraction.extract a.original ~member:member_cell));
    counters =
      (fun a ->
        let c = the "extraction" a.cut in
        [
          ("cells", List.length c.Extraction.cells);
          ("in_ports", List.length c.Extraction.input_binding);
          ("out_ports", List.length c.Extraction.output_binding);
        ]);
  }

let p_synthesis =
  {
    name = "synthesis";
    key =
      (fun _ a ->
        Option.map
          (fun (c : Extraction.cut) ->
            Printf.sprintf "%s|%s"
              (Netlist.fingerprint c.Extraction.sub)
              (Style.name a.config.style))
          a.cut);
    run =
      (fun _ a ->
        let analysis = the "synthesis" a.analysis
        and choice = the "synthesis" a.choice
        and cut = the "synthesis" a.cut in
        let route_origins = Selection.route_origins analysis choice in
        P_mapped
          (Synthesize.run ~style:a.config.style ~route_origins
             cut.Extraction.sub));
    counters =
      (fun a ->
        let m = the "synthesis" a.mapped in
        [
          ("luts", m.Synthesize.luts);
          ("lut_levels", m.Synthesize.lut_levels);
          ("chain_mux4", m.Synthesize.chain_mux4);
          ("chain_mux2", m.Synthesize.chain_mux2);
          ("chain_stages", m.Synthesize.chain_stages);
          ("ffs", m.Synthesize.ffs);
        ]);
  }

let p_pnr =
  {
    name = "pnr";
    key =
      (fun ctx a ->
        Option.map
          (fun (m : Synthesize.mapped) ->
            Printf.sprintf "%s|%s|%d|%s"
              (Netlist.fingerprint m.Synthesize.netlist)
              (Style.name a.config.style)
              a.config.seed (fabric_key ctx.fabric))
          a.mapped);
    run =
      (fun ctx a ->
        let m = the "pnr" a.mapped in
        let r =
          match ctx.fabric with
          | Some f -> Pnr.run ~seed:a.config.seed f m.Synthesize.netlist
          | None ->
              Pnr.fit_loop ~seed:a.config.seed ~style:a.config.style
                m.Synthesize.netlist
        in
        P_pnr r);
    counters =
      (fun a ->
        let r = the "pnr" a.pnr in
        let m = the "pnr" a.mapped in
        [
          ("tiles", Fabric.clb_tiles r.Pnr.fabric);
          ("used_tiles", r.Pnr.placement.Pnr.used_tiles);
          ("used_luts", r.Pnr.placement.Pnr.used_luts);
          ("routed_nets", routed_nets m.Synthesize.netlist);
          ("wirelength", r.Pnr.routes.Pnr.wirelength);
          ("fit", match r.Pnr.fit with Ok () -> 1 | Error _ -> 0);
        ]);
  }

let p_emit =
  {
    name = "emit";
    key =
      (fun _ a ->
        Option.map
          (fun (m : Synthesize.mapped) ->
            Printf.sprintf "%s|%s|%d"
              (Netlist.fingerprint m.Synthesize.netlist)
              (Style.name a.config.style)
              a.config.seed)
          a.mapped);
    run =
      (fun _ a ->
        let m = the "emit" a.mapped in
        let emitted =
          Emit.emit ~style:a.config.style ~seed:a.config.seed
            m.Synthesize.netlist
        in
        (* acyclic twin for timing *)
        let timing =
          if (Style.params a.config.style).Style.cyclic_routing then
            (Emit.emit ~style:a.config.style ~seed:a.config.seed
               ~force_acyclic:true m.Synthesize.netlist)
              .Emit.locked
          else emitted.Emit.locked
        in
        P_emit (emitted, timing));
    counters =
      (fun a ->
        let e = the "emit" a.emitted in
        [
          ("config_bits", e.Emit.used.Resources.config_bits);
          ("locked_cells", Netlist.num_cells e.Emit.locked);
          ("cycle_blocks", List.length e.Emit.cycle_blocks);
        ]);
  }

let p_shrink =
  {
    name = "shrink";
    key =
      (fun ctx a ->
        (* all of this pass's inputs — pnr fabric, emission inventory,
           cut, route origins — are functions of these determinants *)
        Some
          (Printf.sprintf "%s|%s|%s|%d|%b|%s" a.fingerprint
             (target_key a.config.target)
             (Style.name a.config.style)
             a.config.seed a.config.shrink (fabric_key ctx.fabric)));
    run =
      (fun _ a ->
        let analysis = the "shrink" a.analysis
        and choice = the "shrink" a.choice
        and cut = the "shrink" a.cut
        and pnr = the "shrink" a.pnr
        and emitted = the "shrink" a.emitted in
        let route_origins = Selection.route_origins analysis choice in
        let feedthroughs = count_feedthroughs a.original cut route_origins in
        let base =
          if a.config.shrink then
            Fabric.shrink pnr.Pnr.fabric ~used:emitted.Emit.used
          else Fabric.capacity pnr.Pnr.fabric
        in
        let resources =
          {
            base with
            Resources.feedthrough_tracks = feedthroughs;
            io_pins = base.Resources.io_pins + (2 * feedthroughs);
          }
        in
        P_shrink (feedthroughs, resources));
    counters =
      (fun a ->
        let r = the "shrink" a.resources in
        [
          ("config_bits", r.Resources.config_bits);
          ("feedthrough_tracks", r.Resources.feedthrough_tracks);
          ("io_pins", r.Resources.io_pins);
        ]);
  }

let p_overhead =
  {
    name = "overhead";
    key =
      (fun ctx a ->
        Some
          (Printf.sprintf "%s|%s|%s|%d|%b|%s" a.fingerprint
             (target_key a.config.target)
             (Style.name a.config.style)
             a.config.seed a.config.shrink (fabric_key ctx.fabric)));
    run =
      (fun _ a ->
        let cut = the "overhead" a.cut
        and emitted = the "overhead" a.emitted
        and timing = the "overhead" a.timing
        and feedthroughs = the "overhead" a.feedthroughs
        and resources = the "overhead" a.resources in
        let overhead =
          Overhead.compute ~original:a.original ~sub:cut.Extraction.sub
            ~resources ~style:a.config.style ~timing_sub:timing ~feedthroughs
            ()
        in
        let locked_full =
          Extraction.reassemble a.original cut ~replacement:emitted.Emit.locked
        in
        P_overhead (overhead, locked_full));
    counters =
      (fun a ->
        let o = the "overhead" a.overhead in
        [
          ("area_milli", int_of_float (Float.round (1000. *. o.Overhead.area)));
          ( "power_milli",
            int_of_float (Float.round (1000. *. o.Overhead.power)) );
          ( "delay_milli",
            int_of_float (Float.round (1000. *. o.Overhead.delay)) );
        ]);
  }

let p_lint =
  {
    name = "lint";
    key =
      (fun ctx a ->
        (* the lint subject — locked netlist, bitstream, pnr, shrunk
           resources, selection origins — is a function of the same
           determinants as the overhead pass *)
        Some
          (Printf.sprintf "%s|%s|%s|%d|%b|%s" a.fingerprint
             (target_key a.config.target)
             (Style.name a.config.style)
             a.config.seed a.config.shrink (fabric_key ctx.fabric)));
    run =
      (fun _ a ->
        let analysis = the "lint" a.analysis
        and choice = the "lint" a.choice
        and pnr = the "lint" a.pnr
        and emitted = the "lint" a.emitted
        and resources = the "lint" a.resources
        and locked_full = the "lint" a.locked_full in
        let route_origins = Selection.route_origins analysis choice in
        let lgc_origins =
          List.map
            (fun i -> analysis.Connectivity.blocks.(i).Connectivity.name)
            choice.Selection.lgc_blocks
        in
        let subject =
          Lint.subject
            ~name:(Netlist.name a.original)
            ~key:(Shell_fabric.Bitstream.bits emitted.Emit.bitstream)
            ~selection:
              { Lint.design = a.original; route_origins; lgc_origins }
            ~fabric:pnr.Pnr.fabric ~bitstream:emitted.Emit.bitstream
            ~used:resources ~pnr ~shrunk:a.config.shrink locked_full
        in
        (* diagnostics only: findings land in the artifacts and the
           per-rule Obs counters, they do not abort the flow *)
        P_lint (Lint.run ~rules:Lint_rules.all subject));
    counters =
      (fun a ->
        let r = the "lint" a.lint in
        [
          ("rules", List.length Lint_rules.all);
          ("errors", r.Lint.errors);
          ("warns", r.Lint.warns);
          ("infos", r.Lint.infos);
        ]);
  }

let passes =
  [
    p_connectivity;
    p_selection;
    p_extraction;
    p_synthesis;
    p_pnr;
    p_emit;
    p_shrink;
    p_overhead;
    p_lint;
  ]

let apply a = function
  | P_analysis t -> { a with analysis = Some t }
  | P_choice c -> { a with choice = Some c }
  | P_cut c -> { a with cut = Some c }
  | P_mapped m -> { a with mapped = Some m }
  | P_pnr r -> { a with pnr = Some r }
  | P_emit (e, timing) -> { a with emitted = Some e; timing = Some timing }
  | P_shrink (ft, r) -> { a with feedthroughs = Some ft; resources = Some r }
  | P_overhead (o, l) -> { a with overhead = Some o; locked_full = Some l }
  | P_lint r -> { a with lint = Some r }

let execute ?(use_cache = true) ?(strict_fit = false) ?fabric config original =
  warm original;
  let ctx = { strict_fit; fabric; use_cache = use_cache && env_cache_enabled () } in
  let init =
    {
      config;
      original;
      fingerprint = Netlist.fingerprint original;
      analysis = None;
      choice = None;
      cut = None;
      mapped = None;
      pnr = None;
      emitted = None;
      timing = None;
      feedthroughs = None;
      resources = None;
      overhead = None;
      locked_full = None;
      lint = None;
    }
  in
  let art = ref init and spans = ref [] and failed = ref None in
  let run_pass p =
    Obs.with_span p.name @@ fun () ->
    Obs.incr m_passes;
    let t0 = Clock.now () in
    let key =
      if ctx.use_cache then
        Option.map (fun k -> p.name ^ "|" ^ k) (p.key ctx !art)
      else None
    in
    let hit = ref false in
    let compute () = Diag.in_pass p.name (fun () -> p.run ctx !art) in
    let product =
      match key with
      | None -> compute ()
      | Some k -> (
          match cache_find k with
          | Some pr ->
              hit := true;
              pr
          | None -> (
              (* we claimed the key: land it or re-open it *)
              match compute () with
              | pr ->
                  cache_add k pr;
                  pr
              | exception e ->
                  cache_abort k;
                  raise e))
    in
    art := apply !art product;
    let counters = p.counters !art in
    spans :=
      {
        Trace.pass = p.name;
        seconds = Clock.now () -. t0;
        cache_hit = !hit;
        counters;
      }
      :: !spans;
    if Obs.enabled () then begin
      Obs.span_add "cache_hit" (if !hit then 1 else 0);
      List.iter (fun (k, v) -> Obs.span_add k v) counters
    end;
    if p.name = "pnr" && ctx.strict_fit then
      let mapped = the "pnr" !art.mapped in
      match
        Pnr.diag_of_fit ~netlist:mapped.Synthesize.netlist
          (the "pnr" !art.pnr)
      with
      | None -> ()
      | Some d -> raise (Diag.Error { d with Diag.pass = Some p.name })
  in
  (try Obs.with_span "pipeline" (fun () -> List.iter run_pass passes)
   with Diag.Error d -> failed := Some d);
  let trace = List.rev !spans in
  if Trace.enabled () then Format.eprintf "%a@." Trace.pp trace;
  { artifacts = !art; trace; failed = !failed }
