module Rng = Shell_util.Rng
module Pool = Shell_util.Pool
module Bitstream = Shell_fabric.Bitstream
module Emit = Shell_fabric.Emit

type candidate = {
  coeffs : Score.coeffs;
  overhead : Overhead.t;
  key_bits : int;
  label : string;
}

type outcome = {
  best : candidate;
  evaluated : candidate list;
  generations : int;
}

let fitness ~min_key_bits c =
  let penalty =
    if c.key_bits >= min_key_bits then 0.0
    else 2.0 *. (1.0 -. (float_of_int c.key_bits /. float_of_int min_key_bits))
  in
  c.overhead.Overhead.area +. penalty

(* coefficients live on [-1, 1]; mutation nudges one axis *)
let clamp v = Float.max (-1.0) (Float.min 1.0 v)

let mutate rng (c : Score.coeffs) =
  let d () = Rng.float rng 0.8 -. 0.4 in
  match Rng.int rng 6 with
  | 0 -> { c with Score.alpha = clamp (c.Score.alpha +. d ()) }
  | 1 -> { c with Score.beta = clamp (c.Score.beta +. d ()) }
  | 2 -> { c with Score.gamma = clamp (c.Score.gamma +. d ()) }
  | 3 -> { c with Score.lambda = clamp (c.Score.lambda +. d ()) }
  | 4 -> { c with Score.xi = clamp (c.Score.xi +. d ()) }
  | _ -> { c with Score.sigma = clamp (c.Score.sigma +. d ()) }

let crossover rng (a : Score.coeffs) (b : Score.coeffs) =
  let pick x y = if Rng.bool rng then x else y in
  {
    Score.alpha = pick a.Score.alpha b.Score.alpha;
    beta = pick a.Score.beta b.Score.beta;
    gamma = pick a.Score.gamma b.Score.gamma;
    lambda = pick a.Score.lambda b.Score.lambda;
    xi = pick a.Score.xi b.Score.xi;
    sigma = pick a.Score.sigma b.Score.sigma;
  }

let coeff_key (c : Score.coeffs) =
  Printf.sprintf "%.2f/%.2f/%.2f/%.2f/%.2f/%.2f" c.Score.alpha c.Score.beta
    c.Score.gamma c.Score.lambda c.Score.xi c.Score.sigma

(* [List.init]'s application order is unspecified; the GA needs its RNG
   draws in a fixed sequence, so generate lists explicitly in order. *)
let init_in_order n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let search ?(seed = 0xeea) ?(generations = 6) ?(population = 8)
    ?(min_key_bits = 256) ?jobs nl =
  let rng = Rng.create seed in
  (* The flow-result cache is shared across the domains evaluating one
     generation; the mutex covers lookups and inserts only — flows run
     outside it. Two domains may race to evaluate the same fresh
     profile; both compute the identical (deterministic) candidate, and
     the duplicate insert is dropped. *)
  let cache : (string, candidate) Hashtbl.t = Hashtbl.create 64 in
  let cache_mutex = Mutex.create () in
  let evaluate coeffs =
    let key = coeff_key coeffs in
    let cached =
      Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key)
    in
    match cached with
    | Some c -> c
    | None ->
        let cfg =
          Flow.shell_config ~target:(Flow.Auto { coeffs; lgc_depth = 0 }) ()
        in
        let r = Flow.run cfg nl in
        let c =
          {
            coeffs;
            overhead = r.Flow.overhead;
            key_bits = Bitstream.length r.Flow.emitted.Emit.bitstream;
            label = r.Flow.choice.Selection.label;
          }
        in
        Mutex.protect cache_mutex (fun () ->
            if not (Hashtbl.mem cache key) then Hashtbl.add cache key c);
        c
  in
  (* One generation's population evaluates in parallel. All RNG draws
     happen on the caller before the batch is submitted, so the GA's
     random stream — hence the population sequence — is identical at
     every job count. *)
  let evaluate_all coeff_list =
    Pool.map_list ?jobs evaluate coeff_list
  in
  (* seed population: the five Table VI presets plus random mutants of
     the SheLL choice *)
  let init =
    List.map snd Score.presets
    @ init_in_order (max 0 (population - 5)) (fun _ ->
          mutate rng Score.shell_choice)
  in
  let score c = fitness ~min_key_bits c in
  let rec evolve pop gen =
    if gen >= generations then pop
    else begin
      let ranked = List.sort (fun a b -> compare (score a) (score b)) pop in
      let elite = List.filteri (fun i _ -> i < max 2 (population / 4)) ranked in
      let parents = Array.of_list elite in
      let child_coeffs =
        init_in_order (population - Array.length parents) (fun _ ->
            let a = Rng.choice rng parents and b = Rng.choice rng parents in
            mutate rng (crossover rng a.coeffs b.coeffs))
      in
      let children = evaluate_all child_coeffs in
      evolve (elite @ children) (gen + 1)
    end
  in
  let final = evolve (evaluate_all init) 0 in
  (* [Hashtbl.fold] order depends on parallel insertion order; sort by
     profile key so [evaluated] is deterministic *)
  let all =
    Hashtbl.fold (fun _ c acc -> c :: acc) cache []
    |> List.sort (fun a b -> compare (coeff_key a.coeffs) (coeff_key b.coeffs))
  in
  let best =
    match List.sort (fun a b -> compare (score a) (score b)) final with
    | b :: _ -> b
    | [] -> assert false
  in
  { best; evaluated = all; generations }
