(** The SheLL framework: the full 8-step redaction flow of Fig. 4,
    parameterizable enough to express the paper's baselines
    (Tables IV–VII cases) as configurations of the same machinery.

    Steps: (1–2) connectivity analysis and scoring, (3) sub-circuit
    selection, (4) LGC/ROUTE decoupling, (5) dual synthesis, (6–7)
    fabric sizing / place-and-route fit loop, (8) post-bitstream
    shrinking, plus the splice that rebuilds the full locked design. *)

type target = Pipeline.target =
  | Fixed of { route : string list; lgc : string list; label : string }
      (** origin-substring selection (the TfR columns) *)
  | Auto of { coeffs : Score.coeffs; lgc_depth : int }
      (** scored selection; [lgc_depth] 0 is the SheLL constraint *)
  | Route_with_lgc_depth of { route : string list; depth : int }
      (** Table VII methodology: fixed ROUTE selection, best LGC
          companion at exactly [depth] block hops *)

type config = Pipeline.config = {
  style : Shell_fabric.Style.t;
  target : target;
  shrink : bool;  (** step 8 on/off *)
  seed : int;
  max_luts : float;  (** budget for [Auto] selection *)
}

val shell_config : ?target:target -> unit -> config
(** SheLL defaults: FABulous + MUX chains, auto (c5) selection at
    depth 0, shrinking on. *)

type result = {
  config : config;
  original : Shell_netlist.Netlist.t;
  analysis : Connectivity.t;
  choice : Selection.choice;
  cut : Extraction.cut;
  mapped : Synthesize.mapped;
  pnr : Shell_pnr.Pnr.result;
  emitted : Shell_fabric.Emit.t;
  resources : Shell_fabric.Resources.t;  (** shrunk or full capacity *)
  overhead : Overhead.t;
  locked_full : Shell_netlist.Netlist.t;
  lint : Shell_lint.Lint.report;
      (** static-analysis report over the locked result *)
}

val run : config -> Shell_netlist.Netlist.t -> result
(** The composed {!Pipeline}: executes the nine passes and packs the
    staged artifacts into a [result]. Raises {!Shell_util.Diag.Error}
    (naming the failing pass) if any pass aborts. *)

val run_staged :
  ?use_cache:bool ->
  ?strict_fit:bool ->
  ?fabric:Shell_fabric.Fabric.t ->
  config ->
  Shell_netlist.Netlist.t ->
  Pipeline.outcome
(** {!Pipeline.execute}: never raises on pass failure, returns the
    per-pass trace and whatever artifacts were produced. *)

val of_outcome : Pipeline.outcome -> result
(** Pack a completed outcome into a [result]; raises
    {!Shell_util.Diag.Error} if the outcome failed. *)

val locked_sub : result -> Shell_locking.Locked.t
(** The attack surface: the redacted block as a locked netlist whose
    correct key is the bitstream. *)

val verify : ?runs:int -> ?cycles:int -> result -> bool
(** End-to-end check: the reassembled design under the correct
    bitstream sequentially matches the original. *)

val pp_summary : Format.formatter -> result -> unit
