(** Functional (locked) view of a configured fabric.

    [emit] lowers a technology-mapped sub-circuit ([Lut] cells for LGC,
    [Mux2]/[Mux4] cells for ROUTE, plus [Dff]/[Const]) onto fabric
    hardware:
    - every LUT becomes an explicit 2:1-mux tree whose 2^k leaves are
      configuration key bits (the truth-table storage);
    - every cell input and every primary output goes through a route
      mux choosing among [flex] candidate sources, selected by
      configuration key bits;
    - chain cells keep their [Mux4]/[Mux2] but their data and select
      pins are routed through keyed candidate muxes.

    Decoy candidates are drawn level-monotonically for non-cyclical
    styles (FABulous chains) and freely — allowing potential
    combinational cycles under wrong keys — for [Openfpga], which is
    exactly the structure the cyclic-reduction attack prunes.

    The result is the standard oracle-guided-attack artifact: a locked
    netlist whose key inputs are the bitstream, with the guarantee that
    applying the returned bitstream reproduces the mapped circuit. *)

type t = {
  locked : Shell_netlist.Netlist.t;
  bitstream : Bitstream.t;
  used : Resources.t;
  used_luts : int;
  used_ffs : int;
  used_chain : int;  (** chain positions occupied (Mux4 + Mux2) *)
  cycle_blocks : (int array * bool array) list;
      (** for cyclic styles: route-select key patterns that would close
          a structural combinational cycle, as (key indices, values)
          pairs — the facts the cyclic-reduction attack derives by
          inspecting the netlist before SAT solving *)
}

val emit :
  style:Style.t ->
  ?seed:int ->
  ?force_acyclic:bool ->
  Shell_netlist.Netlist.t ->
  t
(** Raises {!Shell_util.Diag.Error} on cells the fabric cannot host
    (plain gates — technology-map first) or on chain cells for a style
    without chain support. [force_acyclic] draws decoys level-monotonically
    even for cyclic styles — used to build a topologically-orderable
    twin of a cyclic emission for timing analysis. *)
