(** Fabric geometry, sizing, capacity and shrinking.

    A fabric is a [cols] x [rows] grid of CLB tiles (each with
    [clb_luts] BLEs: one k-LUT, one optional user flop, one bypass mux)
    plus, for chain-capable styles, a number of MUX-chain slots. The
    sizing function implements the paper's step 6 ("fabric size
    determined from estimated resources") and {!grow} implements the
    step-7 feedback ("switch back and select a larger fabric",
    expanding the resource type that ran short). *)

type t = {
  style : Style.t;
  cols : int;
  rows : int;
  chain_slots : int;  (** capacity in Mux4 chain positions *)
}

type shortage = Luts_short | Ffs_short | Chain_short | Routing_short

val shortage_name : shortage -> string

type Shell_util.Diag.payload +=
  | Shortage of {
      shortage : shortage;
      demand : int;
      capacity : int;
      counts : (string * int * int) list;
          (** the full resource accounting at the failing fit, as
              [(name, demand, capacity)] triples ("luts", "ffs",
              "chain", "io_pins", "congestion") — not just the class
              that ran short, so consumers (lint's fabric rules) can
              reuse the numbers without re-deriving them *)
    }
      (** The typed fit-check payload: which resource ran short and by
          how much. Attached to diagnostics raised by {!size_for} and
          by the pipeline's strict PnR pass. *)

val size_for : Style.t -> luts:int -> user_ffs:int -> chain_muxes:int -> t
(** Smallest fabric of the style fitting the given demand. OpenFPGA
    fabrics are square (the Fig. 2 inefficiency); FABulous fabrics use
    the smallest rectangle. Chain demand on a style without chain
    support raises {!Shell_util.Diag.Error} with a [Shortage]
    payload. *)

val grow : t -> shortage -> t
(** Expand the named resource by one step (a row/column of tiles, or a
    chain-tile worth of slots). *)

val clb_tiles : t -> int

val io_capacity : t -> int
(** Fabric boundary pins available (perimeter connection boxes). *)

val lut_capacity : t -> int
val ff_capacity : t -> int

val sel_bits : int -> int
(** ceil(log2 n), minimum 1 — config bits of an n-way route mux. *)

val capacity : t -> Resources.t
(** Materialized resources of the whole fabric (pre-shrink). *)

val shrink : t -> used:Resources.t -> Resources.t
(** Step 8: physically drop unused resources. The result keeps the
    used inventory plus the configuration controller, which cannot be
    removed. *)

val utilization : t -> used_luts:int -> float
(** Used LUTs / capacity (the <77% of Fig. 2 for the desX example). *)

val pp : Format.formatter -> t -> unit
