(** Bitstreams: the secret configuration of a redacted fabric.

    A bitstream is an ordered bit vector plus a segment directory
    mapping each configured element (LUT table, route select, chain
    select, flop bypass) to its bit range — the structure an attacker
    reconstructs, and what the verifier feeds back as the key. *)

type segment = {
  label : string;  (** e.g. ["lut42.table"], ["lut42.in2.sel"] *)
  offset : int;
  length : int;
}

type t

val builder : unit -> t
val append : t -> string -> bool array -> unit
(** Append a named segment; returns nothing, records offset. *)

val bits : t -> bool array
val length : t -> int
val segments : t -> segment list
val segment_bits : t -> string -> bool array option

type kind = Table | Routing  (** LUT truth-table vs route/chain select *)

val kind_of_label : string -> kind
(** Classify a segment label: [*table] segments hold truth-table
    storage, everything else is routing configuration. The one shared
    classifier behind {!Shell_attacks.Metrics} and the emitter's bit
    counters. *)

val kind_bits : t -> int * int
(** [(table_bits, routing_bits)] totals over all segments. *)

val to_hex : t -> string
(** Little-endian nibbles, segment directory not included. *)

val hamming : bool array -> bool array -> int
(** Bit differences between two keys (attack-quality metric). *)

(** {1 File format}

    A line-oriented text format: a header, one [segment] line per
    configured element, then the bits as hex. Round-trips through
    {!save}/{!load}. *)

val serialize : t -> string

exception Parse_error of string

val deserialize : string -> t
(** Raises {!Parse_error} on malformed input. *)

val save : t -> string -> unit
val load : string -> t
