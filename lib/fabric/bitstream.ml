module Vec = Shell_util.Vec

type segment = { label : string; offset : int; length : int }

type t = { bits : bool Vec.t; mutable segs : segment list }

let builder () = { bits = Vec.create (); segs = [] }

let append t label values =
  let offset = Vec.length t.bits in
  Array.iter (Vec.push t.bits) values;
  t.segs <- { label; offset; length = Array.length values } :: t.segs

let bits t = Vec.to_array t.bits
let length t = Vec.length t.bits
let segments t = List.rev t.segs

type kind = Table | Routing

(* the single authority on label classification — [Metrics] and the
   emitter's bit counters must agree on what counts as table storage *)
let kind_of_label label =
  if String.ends_with ~suffix:"table" label then Table else Routing

let kind_bits t =
  List.fold_left
    (fun (tbl, rt) s ->
      match kind_of_label s.label with
      | Table -> (tbl + s.length, rt)
      | Routing -> (tbl, rt + s.length))
    (0, 0) (segments t)

let segment_bits t label =
  match List.find_opt (fun s -> s.label = label) (segments t) with
  | None -> None
  | Some s -> Some (Array.sub (bits t) s.offset s.length)

let to_hex t =
  let b = bits t in
  let n = Array.length b in
  let nibbles = (n + 3) / 4 in
  String.init nibbles (fun i ->
      let v = ref 0 in
      for j = 0 to 3 do
        let idx = (i * 4) + j in
        if idx < n && b.(idx) then v := !v lor (1 lsl j)
      done;
      "0123456789abcdef".[!v])

let hamming a b =
  if Array.length a <> Array.length b then
    Shell_util.Diag.failf "Bitstream.hamming: length mismatch (%d vs %d)"
      (Array.length a) (Array.length b);
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d

(* ------------------------------------------------------------------ *)
(* File format                                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let serialize t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "shell-bitstream 1 %d\n" (length t));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "segment %s %d %d\n" s.label s.offset s.length))
    (segments t);
  Buffer.add_string buf ("bits " ^ to_hex t ^ "\n");
  Buffer.contents buf

let deserialize src =
  let fail msg = raise (Parse_error ("Bitstream: " ^ msg)) in
  let lines =
    String.split_on_char '\n' src |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> fail "empty input"
  | header :: rest ->
      let total =
        match String.split_on_char ' ' header with
        | [ "shell-bitstream"; "1"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 0 -> n
            | _ -> fail "bad length")
        | _ -> fail "bad header"
      in
      let t = builder () in
      let bits_line = ref None in
      let segs = ref [] in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "segment"; label; off; len ] -> (
              match (int_of_string_opt off, int_of_string_opt len) with
              | Some offset, Some length -> segs := (label, offset, length) :: !segs
              | _ -> fail "bad segment")
          | [ "bits"; hex ] -> bits_line := Some hex
          | _ -> fail ("bad line: " ^ line))
        rest;
      let hex = match !bits_line with Some h -> h | None -> fail "missing bits" in
      let nibble c =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit"
      in
      let all_bits =
        Array.init total (fun i ->
            let n = i / 4 in
            if n >= String.length hex then fail "hex too short"
            else nibble hex.[n] land (1 lsl (i mod 4)) <> 0)
      in
      (* rebuild through the segment directory, in offset order *)
      let ordered = List.sort (fun (_, a, _) (_, b, _) -> compare a b) !segs in
      let covered = ref 0 in
      List.iter
        (fun (label, offset, len) ->
          if offset <> !covered then fail "segments not contiguous";
          if offset + len > total then fail "segment out of range";
          append t label (Array.sub all_bits offset len);
          covered := offset + len)
        ordered;
      if !covered <> total then fail "segments do not cover the bits";
      t

let save t path =
  let oc = open_out path in
  output_string oc (serialize t);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  deserialize s
