module Diag = Shell_util.Diag

type t = { style : Style.t; cols : int; rows : int; chain_slots : int }

type shortage = Luts_short | Ffs_short | Chain_short | Routing_short

let shortage_name = function
  | Luts_short -> "LUTs"
  | Ffs_short -> "FFs"
  | Chain_short -> "chain slots"
  | Routing_short -> "routing"

type Diag.payload +=
  | Shortage of {
      shortage : shortage;
      demand : int;
      capacity : int;
      counts : (string * int * int) list;
          (* every resource class at the failing fit as
             (name, demand, capacity) — "luts", "ffs", "chain",
             "io_pins", "congestion" — not just the one that ran
             short, so downstream analyses (lint's fabric pack) can
             reuse the full accounting without re-deriving it *)
    }

let () =
  Diag.register_printer (function
    | Shortage { shortage; demand; capacity; counts } ->
        let detail =
          match counts with
          | [] -> ""
          | cs ->
              "; "
              ^ String.concat ", "
                  (List.map (fun (n, d, c) -> Printf.sprintf "%s %d/%d" n d c) cs)
        in
        Some
          (Printf.sprintf "fit-check shortage: %s (demand %d > capacity %d%s)"
             (shortage_name shortage) demand capacity detail)
    | _ -> None)

let chain_slots_per_tile = 16

let sel_bits n =
  if n <= 1 then 1
  else
    let rec go b cap = if cap >= n then b else go (b + 1) (2 * cap) in
    go 1 2

let size_for style ~luts ~user_ffs ~chain_muxes =
  let p = Style.params style in
  if chain_muxes > 0 && not p.Style.supports_chain then
    Diag.failf
      ~payload:
        (Shortage
           {
             shortage = Chain_short;
             demand = chain_muxes;
             capacity = 0;
             counts = [ ("chain", chain_muxes, 0) ];
           })
      "Fabric.size_for: style %s has no MUX chains" (Style.name style);
  (* each BLE provides one LUT and one user flop *)
  let bles_needed = max luts user_ffs in
  let tiles = max 1 ((bles_needed + p.Style.clb_luts - 1) / p.Style.clb_luts) in
  let cols, rows =
    if p.Style.square then begin
      let side = int_of_float (ceil (sqrt (float_of_int tiles))) in
      (side, side)
    end
    else begin
      (* smallest rectangle with aspect ratio <= 2 *)
      let rec best c =
        let r = (tiles + c - 1) / c in
        if c >= r then (c, r) else best (c + 1)
      in
      best 1
    end
  in
  let chain_slots =
    if chain_muxes = 0 then 0
    else
      chain_slots_per_tile
      * ((chain_muxes + chain_slots_per_tile - 1) / chain_slots_per_tile)
  in
  { style; cols; rows; chain_slots }

let grow t shortage =
  match shortage with
  | Luts_short | Ffs_short | Routing_short ->
      if (Style.params t.style).Style.square then
        { t with cols = t.cols + 1; rows = t.rows + 1 }
      else if t.cols <= t.rows then { t with cols = t.cols + 1 }
      else { t with rows = t.rows + 1 }
  | Chain_short -> { t with chain_slots = t.chain_slots + chain_slots_per_tile }

let clb_tiles t = t.cols * t.rows

(* four pins per perimeter tile position *)
let io_capacity t = 2 * (t.cols + t.rows + 2) * 8
let lut_capacity t = clb_tiles t * (Style.params t.style).Style.clb_luts
let ff_capacity t = lut_capacity t

(* mux-tree composition of one route mux over [flex] candidates:
   (m4 count, m2 count), using 4:1 levels when the style has them *)
let route_tree_counts ~use4 flex =
  if flex <= 1 then (0, 0)
  else begin
    let bits = sel_bits flex in
    let rec go len bit m4 m2 =
      if len <= 1 then (m4, m2)
      else if use4 && len >= 4 && bits - bit >= 2 then
        go (len / 4) (bit + 2) (m4 + (len / 4)) m2
      else go (len / 2) (bit + 1) m4 (m2 + (len / 2))
    in
    go (1 lsl bits) 0 0 0
  end

let capacity t =
  let p = Style.params t.style in
  let luts = lut_capacity t in
  let k = p.Style.lut_k in
  let route_sel = sel_bits p.Style.route_flex in
  (* per BLE: LUT body (2^k - 1 m2), k input route muxes, FF bypass mux *)
  let lut_body_mux2 = luts * ((1 lsl k) - 1) in
  let rt4, rt2 = route_tree_counts ~use4:p.Style.route_mux4 p.Style.route_flex in
  let route_mux4 = luts * k * rt4 in
  let route_mux2 = (luts * k * rt2) + luts in
  let lut_cfg = luts * ((1 lsl k) + (k * route_sel) + 1) in
  (* chain slots: a Mux4 plus keyed candidate muxes on its 6 inputs *)
  let chain_sel = if p.Style.chain_flex > 1 then sel_bits p.Style.chain_flex else 0 in
  let chain_mux2 = t.chain_slots * 6 * (max 0 (p.Style.chain_flex - 1)) in
  let chain_cfg = t.chain_slots * 6 * chain_sel in
  let config_bits = lut_cfg + chain_cfg in
  let storage_dffs, storage_latches =
    match p.Style.config_storage with
    | Style.Dff_chain -> (config_bits, 0)
    | Style.Latch_array -> (0, config_bits)
  in
  {
    Resources.lut_body_mux2;
    route_mux2;
    route_mux4;
    chain_mux4 = t.chain_slots;
    chain_mux2;
    user_dffs = ff_capacity t;
    config_bits;
    storage_dffs;
    storage_latches;
    control_ffs =
      (match p.Style.config_storage with
      | Style.Dff_chain -> 0
      | Style.Latch_array -> p.Style.control_ffs_base + t.rows);
    io_pins = io_capacity t;
    feedthrough_tracks = 0;
  }

let shrink t ~used =
  let p = Style.params t.style in
  let control =
    match p.Style.config_storage with
    | Style.Dff_chain -> 0
    | Style.Latch_array -> p.Style.control_ffs_base + t.rows
  in
  { used with Resources.control_ffs = control }

let utilization t ~used_luts =
  let cap = lut_capacity t in
  if cap = 0 then 0.0 else float_of_int used_luts /. float_of_int cap

let pp ppf t =
  Format.fprintf ppf "%s %dx%d (%d CLBs, %d LUTs, %d chain slots)"
    (Style.name t.style) t.cols t.rows (clb_tiles t) (lut_capacity t)
    t.chain_slots
