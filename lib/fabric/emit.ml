module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Rng = Shell_util.Rng
module Truthtab = Shell_util.Truthtab
module Diag = Shell_util.Diag
module Obs = Shell_util.Obs

(* Stable: emission is deterministic and the single-flight pass cache
   runs each distinct emission exactly once at any job count. *)
let m_table_bits =
  Obs.counter ~stable:true ~help:"LUT truth-table bits emitted"
    "bitstream_table_bits"

let m_routing_bits =
  Obs.counter ~stable:true ~help:"route/chain select bits emitted"
    "bitstream_routing_bits"

type t = {
  locked : Shell_netlist.Netlist.t;
  bitstream : Bitstream.t;
  used : Resources.t;
  used_luts : int;
  used_ffs : int;
  used_chain : int;
  cycle_blocks : (int array * bool array) list;
}

type ctx = {
  style : Style.params;
  rng : Rng.t;
  src : Netlist.t;
  dst : Netlist.t;
  bs : Bitstream.t;
  net_map : int array;  (* src net -> dst net *)
  level : int array;  (* src net -> topo level *)
  mutable pool : (int * int) list;  (* (src net, level) candidate sources *)
  mutable next_key : int;
  mutable route_mux2 : int;
  mutable route_mux4 : int;
  mutable lut_body_mux2 : int;
  mutable chain_mux2 : int;
  mutable chain_mux4 : int;
  mutable config_bits : int;
  mutable user_dffs : int;
  mutable cycle_blocks : (int array * bool array) list;
}

(* returns (key net in dst, key index in Netlist.keys order) *)
let fresh_key ctx label =
  let id = ctx.next_key in
  ctx.next_key <- id + 1;
  ctx.config_bits <- ctx.config_bits + 1;
  (Netlist.add_key ctx.dst (Printf.sprintf "cfg%d_%s" id label), id)

(* A keyed route mux: selects among [cands] (dst nets) with fresh key
   bits; [true_pos] is the index that must be selected by the correct
   bitstream. Returns the output net; appends the select value to the
   bitstream. *)
let route_mux ctx ~label ~origin ~cand_levels ~sink_level cands true_pos =
  let n = Array.length cands in
  if n = 1 then cands.(0)
  else begin
    let bits = Fabric.sel_bits n in
    let padded = 1 lsl bits in
    let data = Array.init padded (fun i -> cands.(i mod n)) in
    let key_pairs =
      Array.init bits (fun b -> fresh_key ctx (Printf.sprintf "%s.s%d" label b))
    in
    let keys = Array.map fst key_pairs in
    let key_ids = Array.map snd key_pairs in
    (* select patterns whose source could close a combinational cycle:
       what the cyclic-reduction preprocessing of the attack rules out *)
    if ctx.style.Style.cyclic_routing && sink_level < max_int then
      for p = 0 to padded - 1 do
        if cand_levels.(p mod n) >= sink_level && p <> true_pos then
          ctx.cycle_blocks <-
            (key_ids, Array.init bits (fun b -> p land (1 lsl b) <> 0))
            :: ctx.cycle_blocks
      done;
    (* mixed-radix select tree from the LSB up: a 4:1 level consumes
       two key bits (FABulous custom cell), a 2:1 level one *)
    let use4 = ctx.style.Style.route_mux4 in
    let rec fold data bit_idx =
      let len = Array.length data in
      if len = 1 then data.(0)
      else if use4 && len >= 4 && bits - bit_idx >= 2 then begin
        let s0 = keys.(bit_idx) and s1 = keys.(bit_idx + 1) in
        let next =
          Array.init (len / 4) (fun g ->
              ctx.route_mux4 <- ctx.route_mux4 + 1;
              Netlist.gate ~origin ctx.dst Cell.Mux4
                [| s0; s1; data.(4 * g); data.((4 * g) + 1);
                   data.((4 * g) + 2); data.((4 * g) + 3) |])
        in
        fold next (bit_idx + 2)
      end
      else begin
        let sel = keys.(bit_idx) in
        let next =
          Array.init (len / 2) (fun g ->
              ctx.route_mux2 <- ctx.route_mux2 + 1;
              Netlist.mux2 ~origin ctx.dst ~sel ~a:data.(2 * g)
                ~b:data.((2 * g) + 1))
        in
        fold next (bit_idx + 1)
      end
    in
    let out = fold data 0 in
    let value = Array.init bits (fun b -> true_pos land (1 lsl b) <> 0) in
    Bitstream.append ctx.bs label value;
    out
  end

(* Choose [flex] candidates for a source net: the true source plus
   decoys from the pool, position randomized. Non-cyclical styles only
   accept decoys from strictly lower levels than [sink_level]. *)
let pick_candidates ctx ~flex ~sink_level true_net =
  let legal =
    if ctx.style.Style.cyclic_routing then
      List.filter (fun (n, _) -> n <> true_net) ctx.pool
    else
      List.filter
        (fun (n, lv) -> n <> true_net && lv < sink_level)
        ctx.pool
  in
  let legal = Array.of_list legal in
  Rng.shuffle ctx.rng legal;
  let n_decoys = min (flex - 1) (Array.length legal) in
  let cands = Array.make (n_decoys + 1) (ctx.net_map.(true_net)) in
  let levels = Array.make (n_decoys + 1) (-1) in
  (* the true source can never close a cycle: tag it level -1 *)
  for i = 0 to n_decoys - 1 do
    let net, lv = legal.(i) in
    cands.(i + 1) <- ctx.net_map.(net);
    levels.(i + 1) <- lv
  done;
  let true_pos = Rng.int ctx.rng (Array.length cands) in
  let swap arr =
    let tmp = arr.(0) in
    arr.(0) <- arr.(true_pos);
    arr.(true_pos) <- tmp
  in
  swap cands;
  swap levels;
  (cands, levels, true_pos)

let routed_input ctx ~flex ~label ~origin ~sink_level src_net =
  if flex <= 1 then ctx.net_map.(src_net)
  else begin
    let cands, cand_levels, true_pos =
      pick_candidates ctx ~flex ~sink_level src_net
    in
    route_mux ctx ~label ~origin ~cand_levels ~sink_level cands true_pos
  end

(* LUT body: 2:1-mux tree with key-bit leaves (truth-table storage). *)
let lut_body ctx ~label ~origin tt routed_ins =
  let k = Truthtab.arity tt in
  let rows = 1 lsl k in
  let leaves =
    Array.init rows (fun r ->
        fst (fresh_key ctx (Printf.sprintf "%s.t%d" label r)))
  in
  (* select on input (depth) : input j splits ranges of stride 2^j;
     build recursively top-down on the MSB input *)
  let rec build lo len input_idx =
    if len = 1 then leaves.(lo)
    else begin
      let half = len / 2 in
      let a = build lo half (input_idx - 1) in
      let b = build (lo + half) half (input_idx - 1) in
      ctx.lut_body_mux2 <- ctx.lut_body_mux2 + 1;
      Netlist.mux2 ~origin ctx.dst ~sel:routed_ins.(input_idx) ~a ~b
    end
  in
  let out = build 0 rows (k - 1) in
  let value =
    Array.init rows (fun r ->
        Int64.(logand (shift_right_logical (Truthtab.bits tt) r) 1L) = 1L)
  in
  Bitstream.append ctx.bs (label ^ ".table") value;
  out

let emit ~style ?(seed = 0xfab) ?(force_acyclic = false) src =
  let p = Style.params style in
  let p =
    if force_acyclic then { p with Style.cyclic_routing = false } else p
  in
  let cells = Netlist.cells src in
  let order = Netlist.topo_order src in
  (* net levels in the source netlist *)
  let level = Array.make (max (Netlist.num_nets src) 1) 0 in
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      if not (Cell.is_sequential c.Cell.kind) then
        level.(c.Cell.out) <-
          1 + Array.fold_left (fun m n -> max m level.(n)) 0 c.Cell.ins)
    order;
  let dst = Netlist.create (Netlist.name src ^ "_efpga") in
  let ctx =
    {
      style = p;
      rng = Rng.create seed;
      src;
      dst;
      bs = Bitstream.builder ();
      net_map = Array.make (max (Netlist.num_nets src) 1) (-1);
      level;
      pool = [];
      next_key = 0;
      route_mux2 = 0;
      route_mux4 = 0;
      lut_body_mux2 = 0;
      chain_mux2 = 0;
      chain_mux4 = 0;
      config_bits = 0;
      user_dffs = 0;
      cycle_blocks = [];
    }
  in
  List.iter
    (fun (nm, net) ->
      ctx.net_map.(net) <- Netlist.add_input dst nm;
      ctx.pool <- (net, 0) :: ctx.pool)
    (Netlist.inputs src);
  (* sequential outputs are sources: reserve nets, add to pool *)
  Array.iter
    (fun c ->
      if Cell.is_sequential c.Cell.kind then begin
        ctx.net_map.(c.Cell.out) <- Netlist.new_net dst;
        ctx.pool <- (c.Cell.out, 0) :: ctx.pool
      end)
    cells;
  (* pre-register every combinational cell output in the pool so cyclic
     styles can pick downstream decoys; reserve dst nets lazily *)
  let reserve net =
    if ctx.net_map.(net) = -1 then ctx.net_map.(net) <- Netlist.new_net dst
  in
  Array.iter
    (fun c ->
      match c.Cell.kind with
      | Cell.Lut _ | Cell.Mux2 | Cell.Mux4 ->
          reserve c.Cell.out;
          ctx.pool <- (c.Cell.out, level.(c.Cell.out)) :: ctx.pool
      | Cell.Const _ ->
          (* constants are hostable but not offered as routing decoys *)
          reserve c.Cell.out
      | _ -> ())
    cells;
  let used_luts = ref 0 and used_chain = ref 0 in
  let connect_out src_net dst_net ~origin =
    (* the computed function must land on the reserved net *)
    Netlist.add_cell dst (Cell.make ~origin Cell.Buf [| src_net |] dst_net)
  in
  (* Cells are processed in netlist order (not topo order) so that the
     sequential elements of the locked netlist line up one-to-one with
     the source's — the full-scan attack model pairs scan ports by
     position. Nets are pre-reserved, so order does not matter
     structurally. *)
  Array.iteri
    (fun ci c ->
      let origin = c.Cell.origin in
      let label_of what = Printf.sprintf "%s%d" what ci in
      match c.Cell.kind with
      | Cell.Lut tt ->
          incr used_luts;
          let lbl = label_of "lut" in
          let sink_level = level.(c.Cell.out) in
          let routed =
            Array.mapi
              (fun i net ->
                routed_input ctx ~flex:p.Style.route_flex
                  ~label:(Printf.sprintf "%s.in%d" lbl i)
                  ~origin ~sink_level net)
              c.Cell.ins
          in
          let out = lut_body ctx ~label:lbl ~origin tt routed in
          connect_out out ctx.net_map.(c.Cell.out) ~origin
      | Cell.Mux2 ->
          if not p.Style.supports_chain then
            Diag.failf "Emit: chain cell (Mux2) on chain-less style %s"
              (Style.name style);
          incr used_chain;
          ctx.chain_mux2 <- ctx.chain_mux2 + 1;
          let lbl = label_of "ch" in
          let sink_level = level.(c.Cell.out) in
          let routed =
            Array.mapi
              (fun i net ->
                routed_input ctx ~flex:p.Style.chain_flex
                  ~label:(Printf.sprintf "%s.p%d" lbl i)
                  ~origin ~sink_level net)
              c.Cell.ins
          in
          let out =
            Netlist.mux2 ~origin dst ~sel:routed.(0) ~a:routed.(1) ~b:routed.(2)
          in
          connect_out out ctx.net_map.(c.Cell.out) ~origin
      | Cell.Mux4 ->
          if not p.Style.supports_chain then
            Diag.failf "Emit: chain cell (Mux4) on chain-less style %s"
              (Style.name style);
          incr used_chain;
          ctx.chain_mux4 <- ctx.chain_mux4 + 1;
          let lbl = label_of "ch" in
          let sink_level = level.(c.Cell.out) in
          let routed =
            Array.mapi
              (fun i net ->
                routed_input ctx ~flex:p.Style.chain_flex
                  ~label:(Printf.sprintf "%s.p%d" lbl i)
                  ~origin ~sink_level net)
              c.Cell.ins
          in
          let out = Netlist.gate ~origin dst Cell.Mux4 routed in
          connect_out out ctx.net_map.(c.Cell.out) ~origin
      | Cell.Dff ->
          ctx.user_dffs <- ctx.user_dffs + 1;
          let lbl = label_of "ff" in
          let routed =
            routed_input ctx ~flex:p.Style.route_flex ~label:(lbl ^ ".d")
              ~origin ~sink_level:max_int c.Cell.ins.(0)
          in
          Netlist.add_cell dst
            (Cell.make ~origin Cell.Dff [| routed |] ctx.net_map.(c.Cell.out))
      | Cell.Const b ->
          reserve c.Cell.out;
          Netlist.add_cell dst
            (Cell.make ~origin (Cell.Const b) [||] ctx.net_map.(c.Cell.out))
      | Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor
      | Cell.Not | Cell.Buf | Cell.Config_latch ->
          Diag.failf "Emit: cell kind not hostable on fabric: %s"
            (Cell.kind_name c.Cell.kind))
    cells;
  (* primary outputs exit through keyed connection boxes too *)
  List.iteri
    (fun i (nm, net) ->
      let routed =
        routed_input ctx ~flex:p.Style.route_flex
          ~label:(Printf.sprintf "po%d" i)
          ~origin:"po" ~sink_level:max_int net
      in
      Netlist.add_output dst nm routed)
    (Netlist.outputs src);
  let storage_dffs, storage_latches =
    match p.Style.config_storage with
    | Style.Dff_chain -> (ctx.config_bits, 0)
    | Style.Latch_array -> (0, ctx.config_bits)
  in
  if Obs.enabled () then begin
    let table_bits, routing_bits = Bitstream.kind_bits ctx.bs in
    Obs.add m_table_bits table_bits;
    Obs.add m_routing_bits routing_bits
  end;
  {
    locked = Shell_netlist.Rewrite.sweep_buffers dst;
    bitstream = ctx.bs;
    used =
      {
        Resources.lut_body_mux2 = ctx.lut_body_mux2;
        route_mux2 = ctx.route_mux2;
        route_mux4 = ctx.route_mux4;
        chain_mux4 = ctx.chain_mux4;
        chain_mux2 = ctx.chain_mux2;
        user_dffs = ctx.user_dffs;
        config_bits = ctx.config_bits;
        storage_dffs;
        storage_latches;
        control_ffs =
          (match p.Style.config_storage with
          | Style.Dff_chain -> 0
          | Style.Latch_array -> p.Style.control_ffs_base);
        io_pins =
          List.length (Netlist.inputs src) + List.length (Netlist.outputs src);
        feedthrough_tracks = 0;
      };
    used_luts = !used_luts;
    used_ffs = ctx.user_dffs;
    used_chain = !used_chain;
    cycle_blocks = ctx.cycle_blocks;
  }
