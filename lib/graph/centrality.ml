let rescale arr =
  let m = Array.fold_left Float.max 0.0 arr in
  if m > 0.0 then Array.map (fun x -> x /. m) arr else arr

let in_degree g =
  rescale (Array.init (Digraph.n g) (fun v -> float_of_int (Digraph.in_degree g v)))

let out_degree g =
  rescale (Array.init (Digraph.n g) (fun v -> float_of_int (Digraph.out_degree g v)))

(* Harmonic closeness against the I/O boundary: the average of
   1/(1+d_from_sources) and 1/(1+d_to_sinks). Unreachable distance
   contributes zero, so deeply buried nodes score low, as intended. *)
let closeness g ~sources ~sinks =
  let n = Digraph.n g in
  let from_src = Digraph.bfs_from g sources in
  let to_snk = Digraph.bfs_from g ~reverse:true sinks in
  let inv d = if d = max_int then 0.0 else 1.0 /. (1.0 +. float_of_int d) in
  rescale (Array.init n (fun v -> (inv from_src.(v) +. inv to_snk.(v)) /. 2.0))

(* Brandes (2001), restricted: shortest-path counting from each source,
   dependency accumulation seeded only at sink nodes, so the score
   counts occurrences on source->sink geodesics.

   Per-source scratch buffers, reused across the sources a single
   domain processes. *)
type brandes_scratch = {
  sigma : float array;
  dist : int array;
  delta : float array;
  preds_on_sp : int list array;
}

let make_scratch n =
  {
    sigma = Array.make n 0.0;
    dist = Array.make n (-1);
    delta = Array.make n 0.0;
    preds_on_sp = Array.make n [];
  }

(* One Brandes pass from source [s]: adds each node's dependency into
   [bc]. The additions into [bc] are the only writes outside the
   scratch, so passes with private [bc] arrays are independent. *)
let brandes_pass g ~is_sink sc bc s =
  let n = Digraph.n g in
  let { sigma; dist; delta; preds_on_sp } = sc in
  Array.fill sigma 0 n 0.0;
  Array.fill dist 0 n (-1);
  Array.fill delta 0 n 0.0;
  Array.fill preds_on_sp 0 n [];
  sigma.(s) <- 1.0;
  dist.(s) <- 0;
  let order = ref [] in
  let queue = Queue.create () in
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    Array.iter
      (fun v ->
        if dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end;
        if dist.(v) = dist.(u) + 1 then begin
          sigma.(v) <- sigma.(v) +. sigma.(u);
          preds_on_sp.(v) <- u :: preds_on_sp.(v)
        end)
      (Digraph.succs g u)
  done;
  (* accumulate in reverse BFS order *)
  List.iter
    (fun w ->
      let seed = if is_sink.(w) && w <> s then 1.0 else 0.0 in
      let d = seed +. delta.(w) in
      List.iter
        (fun v ->
          if sigma.(w) > 0.0 then
            delta.(v) <- delta.(v) +. (sigma.(v) /. sigma.(w)) *. d)
        preds_on_sp.(w);
      if w <> s then bc.(w) <- bc.(w) +. delta.(w))
    !order

let betweenness ?jobs g ~sources ~sinks =
  let n = Digraph.n g in
  let is_sink = Array.make n false in
  List.iter (fun v -> is_sink.(v) <- true) sinks;
  let srcs = Array.of_list sources in
  let nsrc = Array.length srcs in
  let jobs =
    match jobs with Some j -> j | None -> Shell_util.Pool.default_jobs ()
  in
  let bc =
    if jobs <= 1 || nsrc < 4 then begin
      (* sequential: one scratch, one accumulator, sources in order.
         Still reported as a batch so the stable pool task totals
         don't depend on which path ran. *)
      Shell_util.Pool.count_batch nsrc;
      let bc = Array.make n 0.0 in
      let sc = make_scratch n in
      Array.iter (fun s -> brandes_pass g ~is_sink sc bc s) srcs;
      bc
    end
    else begin
      (* Parallel passes write per-source private accumulators, folded
         elementwise on the caller in source order. Every bc.(w) then
         receives exactly the sequential sequence of additions — float
         addition is not associative, so chunk-level partial sums would
         NOT reproduce the sequential result; per-source arrays do,
         bit for bit. *)
      let parts =
        Shell_util.Pool.map ~jobs
          (fun s ->
            let bc = Array.make n 0.0 in
            brandes_pass g ~is_sink (make_scratch n) bc s;
            bc)
          srcs
      in
      let bc = parts.(0) in
      for k = 1 to nsrc - 1 do
        let part = parts.(k) in
        for w = 0 to n - 1 do
          bc.(w) <- bc.(w) +. part.(w)
        done
      done;
      bc
    end
  in
  rescale bc

let eigenvector ?(iters = 50) ?(weight = fun _ -> 1.0) g =
  let n = Digraph.n g in
  if n = 0 then [||]
  else begin
    let x = Array.make n (1.0 /. float_of_int n) in
    let nxt = Array.make n 0.0 in
    (* damped (lazy) iteration: plain power iteration oscillates on
       bipartite graphs such as stars *)
    for _ = 1 to iters do
      Array.fill nxt 0 n 0.0;
      for u = 0 to n - 1 do
        let contrib = x.(u) *. weight u in
        Array.iter (fun v -> nxt.(v) <- nxt.(v) +. contrib) (Digraph.succs g u);
        Array.iter (fun v -> nxt.(v) <- nxt.(v) +. contrib) (Digraph.preds g u)
      done;
      for v = 0 to n - 1 do
        nxt.(v) <- (0.5 *. nxt.(v)) +. (0.5 *. x.(v))
      done;
      let norm = sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 nxt) in
      let norm = if norm > 0.0 then norm else 1.0 in
      for v = 0 to n - 1 do
        x.(v) <- nxt.(v) /. norm
      done
    done;
    rescale x
  end
