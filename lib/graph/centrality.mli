(** Centrality measures used by the SheLL score function (Eq. 1 and
    Table II of the paper).

    All results are arrays indexed by node and scaled to \[0, 1\] (each
    measure divided by its maximum over the graph, when non-zero) so
    that coefficient profiles compare like with like. *)

val in_degree : Digraph.t -> float array
(** iDgC — inlet degree centrality. *)

val out_degree : Digraph.t -> float array
(** oDgC — outlet degree centrality. *)

val closeness : Digraph.t -> sources:int list -> sinks:int list -> float array
(** ClsC — closeness to the controllable ([sources], e.g. PI-adjacent)
    and observable ([sinks], e.g. PO-adjacent) nodes through shortest
    paths. High value = near the I/O boundary (easily
    controlled/observed); the paper selects for LOW closeness. *)

val betweenness :
  ?jobs:int -> Digraph.t -> sources:int list -> sinks:int list -> float array
(** BtwC — node occurrence on shortest paths between controllable and
    observable nodes (Brandes' algorithm restricted to source/sink
    pairs). Per-source passes run on up to [jobs] domains (default
    {!Shell_util.Pool.default_jobs}); per-source accumulators are
    reduced in source order, so the result is bit-identical to the
    sequential run at any job count. *)

val eigenvector :
  ?iters:int -> ?weight:(int -> float) -> Digraph.t -> float array
(** EigC — eigenvector centrality by power iteration over the
    underlying undirected structure. [weight] scales each node's
    contribution to its neighbours (the paper weighs by neighbouring
    gate type); default 1. *)
