(** The common typed interface every attack implements.

    The locking literature judges a scheme against a {e battery} of
    attacks, not one; this module is the contract that lets
    {!Battery.run} fan any mix of attacks over any mix of locked
    subjects. It mirrors the registry shape of the lint rules
    ([Shell_lint.Rules.all]) and fuzz oracles ([Shell_fuzz.Oracles.all]):
    a record of metadata plus one [run] function, collected in a list.

    Verdict semantics:
    - [Broken (key, _)] — the attack produced a key that passes
      {!Shell_locking.Locked.verify} against the original (attacks
      route their candidate through {!checked_broken}, so an unverified
      guess can never surface as a break);
    - [Resilient _] — the attack ran within budget and did not break
      the scheme ({e under this budget}: the SAT attack's [Timeout] is
      reported here);
    - [Inapplicable _] — the attack does not apply to the subject's
      shape (no key bits, too many key bits for brute force, cyclic
      netlist for simulation-based attacks) and says why.

    Determinism contract: with [should_stop] left at the default and
    budgets chosen so the dip/conflict caps bind before [time_limit],
    every verdict is a pure function of (subject, budget) — which is
    what makes the battery matrix byte-identical at any [SHELL_JOBS]. *)

(** Unified resource budget, replacing the scattered
    [?max_dips]/[?max_conflicts]/[?time_limit]/[?should_stop] optional
    arguments of the legacy entry points. Attacks ignore the knobs that
    do not apply to them. *)
type budget = {
  max_dips : int;  (** DIP-loop iterations (SAT-family attacks) *)
  max_conflicts : int;  (** total solver conflicts (SAT-family) *)
  time_limit : float;  (** wall-clock seconds per attack *)
  vectors : int;  (** simulation sample size (sim-family attacks) *)
  should_stop : unit -> bool;  (** external cancellation, polled often *)
}

val budget :
  ?max_dips:int ->
  ?max_conflicts:int ->
  ?time_limit:float ->
  ?vectors:int ->
  ?should_stop:(unit -> bool) ->
  unit ->
  budget
(** Defaults: 256 DIPs, 200_000 conflicts, 30.0 s, 256 vectors, never
    stop — the legacy {!Sat_attack.run} defaults. *)

(** Effort actually spent, in attack-agnostic terms. [detail] carries
    per-attack extras (solver decisions, settle rounds, key-fate
    counts...) as stable integers. *)
type stats = {
  iterations : int;  (** main-loop rounds: DIPs, keys tried, bits probed *)
  oracle_queries : int;  (** activated-chip queries (scalar vector count) *)
  conflicts : int;  (** solver conflicts, 0 for sim-only attacks *)
  elapsed : float;  (** wall-clock seconds (excluded from stable JSON) *)
  key_bits : int;
  recovered_bits : int;  (** bits the attack pinned (= key_bits on break) *)
  detail : (string * int) list;  (** attack-specific stable extras *)
}

type verdict =
  | Broken of bool array * stats  (** verified functionally-correct key *)
  | Resilient of stats  (** survived this budget *)
  | Inapplicable of string  (** attack does not apply; reason *)

val verdict_name : verdict -> string
(** ["broken"], ["resilient"] or ["n/a"]. *)

val stats_of : verdict -> stats option

(** What an attack consumes — battery callers can filter on these. *)
type capability =
  | Oracle_access  (** queries the activated chip (original netlist) *)
  | Structure_only  (** reads only the locked netlist *)
  | Ground_truth  (** scores itself against the correct key *)

val capability_name : capability -> string

(** One locked design under attack. [cycle_blocks] carries the
    cyclic-reduction pre-processing patterns when the subject came out
    of the eFPGA flow ([[]] otherwise) — {!Shell_locking.Locked.t} does
    not record them, so the subject does. *)
type subject = {
  label : string;  (** row label in the matrix, e.g. ["c432/xor8"] *)
  original : Shell_netlist.Netlist.t;
  locked : Shell_locking.Locked.t;
  cycle_blocks : (int array * bool array) list;
}

val subject :
  ?label:string ->
  ?cycle_blocks:(int array * bool array) list ->
  original:Shell_netlist.Netlist.t ->
  Shell_locking.Locked.t ->
  subject
(** [label] defaults to ["<netlist name>/<scheme>"]. *)

type t = {
  name : string;  (** registry key, e.g. ["sat"], ["appsat"] *)
  description : string;
  capabilities : capability list;
  run : budget -> subject -> verdict;
}

(** {1 Helpers shared by attack implementations} *)

val oracle : subject -> bool array -> bool array
(** Scalar activated-chip oracle over the original's full-scan view. *)

val word_oracle : subject -> lanes:int -> int array -> int array
(** Word-parallel oracle ({!Shell_netlist.Simw} packing). *)

val checked_broken : subject -> bool array -> stats -> verdict
(** [Broken (key, stats)] iff the candidate key passes
    {!Shell_locking.Locked.verify} against the original; otherwise
    [Resilient] with a ["verify_failed"] detail mark. Every attack
    funnels its break claims through here. *)
