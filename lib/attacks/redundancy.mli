(** Redundancy attack: wrong key values leave provably redundant logic.

    Pure structure, no oracle. For each key bit the locked netlist is
    re-analyzed with the bit pinned to 0 and to 1
    ({!Shell_lint.Dataflow.const_values} with [~pins], constants
    flowing through the configuration plane), and each pinning is
    scored by how many {e live} cells survive — output not proven
    constant and still observable under the {!Shell_lint.Odc} masking
    rules. A pinning that kills strictly more live cells than the
    unpinned baseline is voted against: the correct key restores the
    original function, wrong values degenerate the locking gates and
    orphan their fanin. A bit is decided when exactly one of its
    pinnings draws the vote; undecided bits default to 0 in the
    assembled key, which is only claimed after
    {!Attack.checked_broken} verification. When {e no} bit can be
    decided the verdict is [Resilient] — the structure leaks nothing
    to this analysis, and guessing noise would be pointless.

    This is the attack the [scope-leak]/[key-odc-dead] lint rules warn
    defenders about, run from the redundancy side. *)

val attack : Attack.t
(** Registered as ["redundancy"]. [recovered_bits] counts the decided
    bits; [detail] carries [base_live] and the decided/undecided
    split. Respects [should_stop] and [time_limit] between bits;
    [max_dips]/[max_conflicts]/[vectors] are ignored. *)
