(** AppSAT-style approximate SAT attack (Shamsi et al.).

    The exact attack's DIP loop, with an early exit: every
    {!settle_every} DIPs it extracts a key consistent with the
    constraints so far and estimates its error rate by word-parallel
    random sampling against the activated chip; {!settle_target}
    consecutive zero-error candidates end the attack. On SAT-resilient
    but approximation-weak schemes this recovers an (almost-)correct
    key long before the DIP loop converges; here a settled candidate is
    additionally put through {!Attack.checked_broken}, so [Broken] still
    means exactly equivalent — a settled-but-inequivalent candidate
    resets the settle counter and the loop continues.

    When the DIP loop reaches [`Unsat] before settling, the exact
    endgame runs (key extraction under the remaining conflict budget),
    so AppSAT breaks everything the exact attack breaks within the same
    budget — [detail] reports ["exact"] = 1 for that path, and
    ["err_vectors"] carries the last candidate's sampled error. *)

val settle_every : int
(** Extraction cadence in DIPs (4). *)

val settle_target : int
(** Consecutive zero-error candidates required to stop (3). *)

val attack : Attack.t
(** Registered as ["appsat"]. [Inapplicable] on zero key bits; cyclic
    locked netlists are handled by specializing each candidate before
    sampling (candidates that stay cyclic reset the settle counter). *)
