(** Structural link-prediction attack — a proxy for the GNN-based
    UNTANGLE attack [8] on MUX-based routing locking.

    For every key bit that directly selects a 2:1 routing mux, the
    attacker predicts the intended connection by structural affinity:
    the candidate whose transitive fan-in cone shares more cells with
    the fan-in of the mux's consumers is the likelier true wire (wires
    and their consumers come from the same neighbourhood in the
    original layout-free netlist). Localized schemes (Fig. 1(c)) leak
    exactly this signal; distributed eFPGA redaction mostly does not.

    This is a *prediction quality* attack: it reports the fraction of
    attacked key bits guessed correctly, not a functional break. *)

type report = {
  attacked_bits : int;  (** key bits driving mux selects directly *)
  correct : int;  (** predictions matching the real key *)
  accuracy : float;  (** correct / attacked, 0.5 ~ random guessing *)
  total_key_bits : int;
}

type prediction = {
  bit : int;  (** key-bit index, {!Shell_netlist.Netlist.keys} order *)
  guess : bool option;  (** [None] on an affinity tie *)
}

val predict : ?depth:int -> Shell_netlist.Netlist.t -> prediction list
(** Per-bit affinity predictions over the locked netlist alone (no
    ground truth), one entry per key bit that directly selects a 2:1
    mux, in key order. {!run} and the battery wrapper are both scored
    from this list. *)

val run : ?depth:int -> Shell_locking.Locked.t -> report
(** [depth] (default 3) bounds the fan-in cones compared. *)

val attack : Attack.t
(** Battery form (["proximity"]): builds a whole-key guess from
    {!predict} (ties and un-attacked bits default to false), reports
    [Broken] only when that guess verifies against the original, else
    [Resilient] with [recovered_bits] = correctly predicted bits and
    the attacked/correct counts in [detail]. [Inapplicable] when no
    key bit drives a mux select. *)

type link_report = {
  links : int;  (** boundary outputs of the keyed switch network *)
  links_correct : int;
  link_accuracy : float;
}

val predict_links : ?depth:int -> ?vectors:int -> Shell_locking.Locked.t -> link_report
(** End-to-end link prediction (the actual UNTANGLE task): for every
    output of the key-controlled switch network that feeds ordinary
    logic, rank the network's input wires by structural affinity and
    predict the hidden connection. Ground truth comes from functional
    signatures under the correct key, so the metric is exact. Cyclic
    locked netlists (OpenFPGA-style decoys) report zero links. *)
