module Netlist = Shell_netlist.Netlist
module Simw = Shell_netlist.Simw
module Rng = Shell_util.Rng

type verdict = {
  matched : bool;
  vectors_tried : int;
  first_mismatch : bool array option;
}

let attempt ?(vectors = 512) ?(seed = 0xdead) ~oracle ?oracle_w candidate =
  let comb = Netlist.comb_view candidate in
  let simw = Simw.create comb in
  let n_in = List.length (Netlist.inputs comb) in
  let mismatch = ref None in
  let tried = ref 0 in
  (* Word-parallel scan over [vecs] in presentation order. The verdict
     is identical to the scalar one-vector loop's: on a miscompare,
     [vectors_tried] counts up to and including the earliest differing
     vector (lowest failing lane of the earliest failing chunk). *)
  let scan vecs =
    let n = Array.length vecs in
    let pos = ref 0 in
    while !mismatch = None && !pos < n do
      let lanes = min Simw.width (n - !pos) in
      let chunk = Array.sub vecs !pos lanes in
      let words = Simw.pack chunk in
      let mine = Simw.eval_comb simw ~lanes words in
      let theirs =
        match oracle_w with
        | Some f -> f ~lanes words
        | None -> Simw.pack (Array.map oracle chunk)
      in
      let diff = ref 0 in
      Array.iteri (fun i w -> diff := !diff lor (w lxor theirs.(i))) mine;
      if !diff <> 0 then begin
        let l = Simw.first_lane !diff in
        tried := !pos + l + 1;
        mismatch := Some chunk.(l)
      end
      else begin
        pos := !pos + lanes;
        tried := !pos
      end
    done
  in
  (if n_in <= 16 then
     scan
       (Array.init (1 lsl n_in) (fun v ->
            Array.init n_in (fun i -> v land (1 lsl i) <> 0)))
   else begin
     let rng = Rng.create seed in
     let vecs = Array.make vectors [||] in
     for k = 0 to vectors - 1 do
       vecs.(k) <- Array.init n_in (fun _ -> Rng.bool rng)
     done;
     scan vecs
   end);
  { matched = !mismatch = None; vectors_tried = !tried; first_mismatch = !mismatch }

(* ---------------- unified interface ---------------- *)

(* Battery form of the removal idea: strip the key logic by pinning the
   whole key vector to a constant (all-false, then all-true) and test
   the specialized netlist as the attacker's candidate replacement. The
   classic attack substitutes an off-the-shelf block; constant-key
   specialization is the strongest guess available without a library of
   candidates, and it is exactly what defeats naive fabrics whose key
   only gates decoys. *)
let attack =
  {
    Attack.name = "removal";
    description = "key-removal via constant-key specialization";
    capabilities = [ Attack.Oracle_access ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        let lk = s.Attack.locked in
        let k = Shell_locking.Locked.key_bits lk in
        if k = 0 then Attack.Inapplicable "no key bits"
        else begin
          let start = Shell_util.Clock.now () in
          let oracle = Attack.oracle s in
          let oracle_w = Attack.word_oracle s in
          let tried = ref 0 and queries = ref 0 in
          let try_const v =
            if b.Attack.should_stop () then None
            else
              let key = Array.make k v in
              let cand = Shell_locking.Locked.apply_key lk key in
              (* specialization can leave a combinational cycle (eFPGA
                 decoy loops under the wrong key): not a candidate *)
              if Netlist.has_comb_cycle cand then None
              else begin
                incr tried;
                let r =
                  attempt ~vectors:b.Attack.vectors ~oracle ~oracle_w cand
                in
                queries := !queries + r.vectors_tried;
                if r.matched then Some key else None
              end
          in
          let stats () =
            {
              Attack.iterations = !tried;
              oracle_queries = !queries;
              conflicts = 0;
              elapsed = Shell_util.Clock.now () -. start;
              key_bits = k;
              recovered_bits = 0;
              detail = [ ("candidates", !tried) ];
            }
          in
          match try_const false with
          | Some key -> Attack.checked_broken s key (stats ())
          | None -> (
              match try_const true with
              | Some key -> Attack.checked_broken s key (stats ())
              | None -> Attack.Resilient (stats ()))
        end);
  }
