module Netlist = Shell_netlist.Netlist
module Simw = Shell_netlist.Simw
module Rng = Shell_util.Rng

type verdict = {
  matched : bool;
  vectors_tried : int;
  first_mismatch : bool array option;
}

let attempt ?(vectors = 512) ?(seed = 0xdead) ~oracle ?oracle_w candidate =
  let comb = Netlist.comb_view candidate in
  let simw = Simw.create comb in
  let n_in = List.length (Netlist.inputs comb) in
  let mismatch = ref None in
  let tried = ref 0 in
  (* Word-parallel scan over [vecs] in presentation order. The verdict
     is identical to the scalar one-vector loop's: on a miscompare,
     [vectors_tried] counts up to and including the earliest differing
     vector (lowest failing lane of the earliest failing chunk). *)
  let scan vecs =
    let n = Array.length vecs in
    let pos = ref 0 in
    while !mismatch = None && !pos < n do
      let lanes = min Simw.width (n - !pos) in
      let chunk = Array.sub vecs !pos lanes in
      let words = Simw.pack chunk in
      let mine = Simw.eval_comb simw ~lanes words in
      let theirs =
        match oracle_w with
        | Some f -> f ~lanes words
        | None -> Simw.pack (Array.map oracle chunk)
      in
      let diff = ref 0 in
      Array.iteri (fun i w -> diff := !diff lor (w lxor theirs.(i))) mine;
      if !diff <> 0 then begin
        let l = Simw.first_lane !diff in
        tried := !pos + l + 1;
        mismatch := Some chunk.(l)
      end
      else begin
        pos := !pos + lanes;
        tried := !pos
      end
    done
  in
  (if n_in <= 16 then
     scan
       (Array.init (1 lsl n_in) (fun v ->
            Array.init n_in (fun i -> v land (1 lsl i) <> 0)))
   else begin
     let rng = Rng.create seed in
     let vecs = Array.make vectors [||] in
     for k = 0 to vectors - 1 do
       vecs.(k) <- Array.init n_in (fun _ -> Rng.bool rng)
     done;
     scan vecs
   end);
  { matched = !mismatch = None; vectors_tried = !tried; first_mismatch = !mismatch }
