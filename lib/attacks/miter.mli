(** SAT-attack miter construction.

    Two copies of the locked circuit share their primary inputs and
    carry independent key vectors; an activation literal turns on the
    "some output differs" constraint. Distinguishing-input-pattern
    (DIP) constraints append two more circuit copies each, tied to the
    respective key vectors — the classic oracle-guided construction of
    Subramanyan et al. *)

type t

val create :
  ?cycle_blocks:(int array * bool array) list ->
  ?seed:int ->
  Shell_netlist.Netlist.t ->
  t
(** [create locked] — sequential designs are attacked through their
    full-scan view. [cycle_blocks] adds the cyclic-reduction
    pre-processing clauses (key patterns that would close structural
    combinational cycles are excluded for both key vectors). [seed]
    perturbs the solver's initial phases (see {!Shell_sat.Solver.create});
    the attack portfolio races several seeds. *)

val num_inputs : t -> int
val num_keys : t -> int

val find_dip :
  ?max_conflicts:int -> t -> [ `Dip of bool array | `Unsat | `Budget ]
(** Search for an input distinguishing two keys consistent with all
    constraints so far. *)

val add_dip : t -> bool array -> bool array -> unit
(** [add_dip t input oracle_output] — both key vectors must now
    reproduce the oracle on this input. *)

val extract_key : ?max_conflicts:int -> t -> bool array option
(** Any key consistent with all recorded DIPs (sound exactly when
    {!find_dip} returned [`Unsat]). *)

val conflicts : t -> int
(** Cumulative solver conflicts (the attack-effort metric). *)

val stats : t -> Shell_sat.Solver.stats
(** Full search-effort breakdown of the underlying solver. *)

val clause_to_var_ratio : t -> float
(** c2v of the base miter — the paper's SAT-hardness indicator. *)
