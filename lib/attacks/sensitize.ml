module Netlist = Shell_netlist.Netlist
module Simw = Shell_netlist.Simw
module Locked = Shell_locking.Locked
module Rng = Shell_util.Rng

let now = Shell_util.Clock.now

let rounds = 3

(* Restricted to the outputs the probed bit actually sensitizes on lane
   [l] (where out0 and out1 differ), count which candidate each output
   votes for in the chip's response. Unsensitized outputs are ignored:
   other still-wrong guess bits corrupt them freely without masking the
   decision. Per sensitized output the oracle bit matches exactly one
   side, so the verdict is (votes for 0, votes for 1). *)
let lane_votes out0 out1 l (o : bool array) =
  let v0 = ref 0 and v1 = ref 0 in
  Array.iteri
    (fun j w0 ->
      if (w0 lxor out1.(j)) lsr l land 1 = 1 then
        if (w0 lsr l) land 1 = (if o.(j) then 1 else 0) then incr v0
        else incr v1)
    out0;
  (!v0, !v1)

let attack =
  {
    Attack.name = "sensitize";
    description = "key sensitization: propagate single bits to outputs";
    capabilities = [ Attack.Oracle_access ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        let lk = s.Attack.locked in
        let nl = lk.Locked.locked in
        let k = Locked.key_bits lk in
        if k = 0 then Attack.Inapplicable "no key bits"
        else if Netlist.has_comb_cycle nl then
          Attack.Inapplicable "cyclic locked netlist"
        else begin
          let start = now () in
          let comb = Netlist.comb_view nl in
          let simw = Simw.create comb in
          let n_in = List.length (Netlist.inputs comb) in
          let rng = Rng.create 0x5e45 in
          let nvec = max 1 (min b.Attack.vectors 1024) in
          let vecs = Array.make nvec [||] in
          for i = 0 to nvec - 1 do
            vecs.(i) <- Array.init n_in (fun _ -> Rng.bool rng)
          done;
          let chunks =
            let rec go pos acc =
              if pos >= nvec then List.rev acc
              else
                let lanes = min Simw.width (nvec - pos) in
                let chunk = Array.sub vecs pos lanes in
                go (pos + lanes) ((lanes, chunk, Simw.pack chunk) :: acc)
            in
            go 0 []
          in
          let oracle = Attack.oracle s in
          let guess = Array.make k false in
          let decided = Array.make k false in
          let probes = ref 0 and queries = ref 0 in
          let budget_out = ref false in
          (* Probe one bit under the current guess: find inputs where
             flipping only this bit changes some output (sensitizing
             patterns), ask the chip, and keep the value whose response
             matches — exactly one match pins the bit; both or neither
             (other wrong guess bits masking the comparison) moves on to
             the next sensitizing pattern, up to [max_queries] chip
             calls per probe. *)
          let max_queries = 8 in
          let probe i =
            incr probes;
            decided.(i) <- false;
            let g0 = Array.copy guess and g1 = Array.copy guess in
            g0.(i) <- false;
            g1.(i) <- true;
            let tries = ref 0 in
            let rec scan = function
              | [] -> ()
              | (lanes, chunk, ins) :: rest ->
                  let out0 = Simw.eval_comb simw ~keys:g0 ~lanes ins in
                  let out1 = Simw.eval_comb simw ~keys:g1 ~lanes ins in
                  let diff = ref 0 in
                  Array.iteri
                    (fun j w -> diff := !diff lor (w lxor out1.(j)))
                    out0;
                  while
                    (not decided.(i)) && !diff <> 0 && !tries < max_queries
                  do
                    let l = Simw.first_lane !diff in
                    diff := !diff land lnot (1 lsl l);
                    incr tries;
                    let o = oracle chunk.(l) in
                    incr queries;
                    match lane_votes out0 out1 l o with
                    | v0, 0 when v0 > 0 ->
                        guess.(i) <- false;
                        decided.(i) <- true
                    | 0, v1 when v1 > 0 ->
                        guess.(i) <- true;
                        decided.(i) <- true
                    | _ -> ()
                  done;
                  if (not decided.(i)) && !tries < max_queries then scan rest
            in
            scan chunks
          in
          (* re-probe every bit each round: a bit mis-decided while its
             neighbours were still wrong gets corrected once they are
             right (coordinate descent on oracle agreement); stop as
             soon as the guess verifies *)
          let verified = ref false in
          let round = ref 0 in
          while (not !verified) && !round < rounds && not !budget_out do
            incr round;
            for i = 0 to k - 1 do
              if not !budget_out then
                if
                  b.Attack.should_stop ()
                  || now () -. start > b.Attack.time_limit
                then budget_out := true
                else probe i
            done;
            if not !budget_out then
              verified :=
                Locked.verify ~original:s.Attack.original
                  { lk with Locked.key = guess }
          done;
          (* polish: sensitization can get stuck a short Hamming
             distance from the key when wrong bits cancel on shared
             outputs (the XOR parity trap — two wrong bits on one
             xor-dominated path look locally optimal). Hill-climb the
             sampled error with single-bit flips, then pair flips for
             small keys, and re-verify on zero. *)
          let polished = ref 0 in
          if (not !verified) && not !budget_out then begin
            let oracle_w = Attack.word_oracle s in
            let golden =
              List.map
                (fun (lanes, _, ins) -> (lanes, ins, oracle_w ~lanes ins))
                chunks
            in
            let popcount w =
              let c = ref 0 and w = ref w in
              while !w <> 0 do
                w := !w land (!w - 1);
                incr c
              done;
              !c
            in
            let err () =
              List.fold_left
                (fun acc (lanes, ins, theirs) ->
                  let mine = Simw.eval_comb simw ~keys:guess ~lanes ins in
                  let d = ref 0 in
                  Array.iteri
                    (fun j w -> d := !d lor (w lxor theirs.(j)))
                    mine;
                  acc + popcount !d)
                0 golden
            in
            let best = ref (err ()) in
            let try_flip bits =
              List.iter (fun i -> guess.(i) <- not guess.(i)) bits;
              let e = err () in
              if e < !best then begin
                best := e;
                polished := !polished + List.length bits
              end
              else List.iter (fun i -> guess.(i) <- not guess.(i)) bits
            in
            let time_out () =
              b.Attack.should_stop () || now () -. start > b.Attack.time_limit
            in
            for i = 0 to k - 1 do
              if !best > 0 && not (time_out ()) then try_flip [ i ]
            done;
            if !best > 0 && k <= 32 then
              for i = 0 to k - 2 do
                for j = i + 1 to k - 1 do
                  if !best > 0 && not (time_out ()) then try_flip [ i; j ]
                done
              done;
            if !best = 0 then
              verified :=
                Locked.verify ~original:s.Attack.original
                  { lk with Locked.key = guess }
          end;
          let nd = Array.fold_left (fun a d -> if d then a + 1 else a) 0 decided in
          let stats =
            {
              Attack.iterations = !probes;
              oracle_queries = !queries;
              conflicts = 0;
              elapsed = now () -. start;
              key_bits = k;
              recovered_bits = nd;
              detail =
                [ ("decided", nd); ("rounds", !round); ("polished", !polished) ];
            }
          in
          (* only claim a break when the assembled guess verifies *)
          if !verified then Attack.checked_broken s guess stats
          else Attack.Resilient stats
        end);
  }
