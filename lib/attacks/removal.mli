(** Removal attack.

    Against pure-ROUTE redaction the adversary can bypass the fabric
    entirely: replace the redacted block with a guessed plain
    implementation (e.g. a standard AXI crossbar) and validate against
    the oracle. SheLL defeats this by entangling a minimal LGC slice
    with the ROUTE (Sec. IV) so that no off-the-shelf substitute
    matches. *)

type verdict = {
  matched : bool;  (** candidate agreed with the oracle on every vector *)
  vectors_tried : int;
  first_mismatch : bool array option;
}

val attempt :
  ?vectors:int ->
  ?seed:int ->
  oracle:(bool array -> bool array) ->
  ?oracle_w:(lanes:int -> int array -> int array) ->
  Shell_netlist.Netlist.t ->
  verdict
(** [attempt ~oracle candidate] — [candidate] is the attacker's guessed
    replacement (key-free, same port shape as the oracle's scan view).
    Exhaustive under 2^16 input space, sampled otherwise. The candidate
    side always simulates word-parallel; pass [oracle_w] (e.g.
    {!Sat_attack.word_oracle_of_netlist}) to batch the oracle queries
    too, otherwise [oracle] is called per vector. Either way the
    verdict — including [vectors_tried] and [first_mismatch] — is
    byte-identical to the scalar loop's. *)

val attack : Attack.t
(** Battery form (["removal"]): tries the all-false and all-true
    constant-key specializations of the locked netlist as candidate
    replacements; a candidate matching the oracle on every sampled
    vector is then verified through {!Attack.checked_broken}. Cyclic
    specializations are skipped; [Inapplicable] when there is no key. *)
