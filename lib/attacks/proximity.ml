module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Locked = Shell_locking.Locked

type report = {
  attacked_bits : int;
  correct : int;
  accuracy : float;
  total_key_bits : int;
}

(* Depth-bounded transitive fan-in signature of [net]: driving cells
   (as non-negative keys) plus the terminal undriven nets — primary and
   key inputs — (as negative keys). The leaves matter: bit-sliced
   datapaths share exactly their per-bit primary inputs, which is the
   locality a link predictor exploits. *)
let fanin_cone nl depth net =
  let seen = Hashtbl.create 32 in
  let rec go net d =
    if d >= 0 then
      match Netlist.driver nl net with
      | None -> Hashtbl.replace seen (-net - 1) ()
      | Some ci ->
          if not (Hashtbl.mem seen ci) then begin
            Hashtbl.add seen ci ();
            Array.iter (fun n -> go n (d - 1)) (Netlist.cell nl ci).Cell.ins
          end
  in
  go net depth;
  seen

let overlap a b =
  let small, large =
    if Hashtbl.length a < Hashtbl.length b then (a, b) else (b, a)
  in
  Hashtbl.fold (fun k () acc -> if Hashtbl.mem large k then acc + 1 else acc)
    small 0

let run ?(depth = 3) (lk : Locked.t) =
  let nl = lk.Locked.locked in
  let keys = Netlist.keys nl in
  let total = List.length keys in
  let attacked = ref 0 and correct = ref 0 in
  List.iteri
    (fun ki (_, knet) ->
      (* muxes directly selected by this key bit *)
      let muxes =
        List.filter_map
          (fun ci ->
            let c = Netlist.cell nl ci in
            if c.Cell.kind = Cell.Mux2 && c.Cell.ins.(0) = knet then Some c
            else None)
          (Netlist.fanout nl knet)
      in
      if muxes <> [] then begin
        incr attacked;
        (* aggregate affinity for key=false (data input 1) vs key=true
           (data input 2) across all muxes this bit controls *)
        let score_false = ref 0 and score_true = ref 0 in
        List.iter
          (fun (m : Cell.t) ->
            (* context: fan-in cones of the *other* inputs of the cells
               consuming this mux's output *)
            let context = Hashtbl.create 64 in
            List.iter
              (fun ci ->
                let consumer = Netlist.cell nl ci in
                Array.iter
                  (fun n ->
                    if n <> m.Cell.out then
                      Hashtbl.iter
                        (fun k () -> Hashtbl.replace context k ())
                        (fanin_cone nl depth n))
                  consumer.Cell.ins)
              (Netlist.fanout nl m.Cell.out);
            score_false := !score_false + overlap (fanin_cone nl depth m.Cell.ins.(1)) context;
            score_true := !score_true + overlap (fanin_cone nl depth m.Cell.ins.(2)) context)
          muxes;
        let prediction =
          if !score_false > !score_true then Some false
          else if !score_true > !score_false then Some true
          else None
        in
        (match prediction with
        | Some p when p = lk.Locked.key.(ki) -> incr correct
        | Some _ -> ()
        | None ->
            (* coin flip on ties: deterministic split to stay honest *)
            if !attacked mod 2 = 0 then incr correct)
      end)
    keys;
  {
    attacked_bits = !attacked;
    correct = !correct;
    accuracy =
      (if !attacked = 0 then 0.0
       else float_of_int !correct /. float_of_int !attacked);
    total_key_bits = total;
  }

type link_report = { links : int; links_correct : int; link_accuracy : float }

(* A cell is part of the keyed switch network when a key net drives a
   select pin. *)
let is_key_mux nl =
  let key_nets = Hashtbl.create 16 in
  Array.iter (fun n -> Hashtbl.replace key_nets n ()) (Netlist.key_nets nl);
  fun (c : Cell.t) ->
    match c.Cell.kind with
    | Cell.Mux2 -> Hashtbl.mem key_nets c.Cell.ins.(0)
    | Cell.Mux4 ->
        Hashtbl.mem key_nets c.Cell.ins.(0)
        || Hashtbl.mem key_nets c.Cell.ins.(1)
    | _ -> false

let predict_links ?(depth = 3) ?(vectors = 62) (lk : Locked.t) =
  let nl = lk.Locked.locked in
  let empty = { links = 0; links_correct = 0; link_accuracy = 0.0 } in
  if Netlist.has_comb_cycle nl then empty
  else begin
    let cells = Netlist.cells nl in
    let keyed_cell = Array.map (is_key_mux nl) cells in
    let is_keyed_driver net =
      match Netlist.driver nl net with
      | Some ci -> keyed_cell.(ci)
      | None -> false
    in
    (* boundary outputs: keyed muxes read by ordinary logic or POs *)
    let po = Hashtbl.create 16 in
    Array.iter (fun n -> Hashtbl.replace po n ()) (Netlist.output_nets nl);
    let outputs = ref [] in
    Array.iteri
      (fun ci (c : Cell.t) ->
        if keyed_cell.(ci) then begin
          let readers = Netlist.fanout nl c.Cell.out in
          let escapes =
            Hashtbl.mem po c.Cell.out
            || List.exists (fun ri -> not keyed_cell.(ri)) readers
          in
          if escapes then outputs := c :: !outputs
        end)
      cells;
    (* boundary inputs: data pins of keyed muxes fed by ordinary logic *)
    let input_set = Hashtbl.create 32 in
    Array.iteri
      (fun ci (c : Cell.t) ->
        if keyed_cell.(ci) then begin
          let data_pins =
            match c.Cell.kind with
            | Cell.Mux2 -> [ c.Cell.ins.(1); c.Cell.ins.(2) ]
            | Cell.Mux4 ->
                [ c.Cell.ins.(2); c.Cell.ins.(3); c.Cell.ins.(4); c.Cell.ins.(5) ]
            | _ -> []
          in
          List.iter
            (fun net ->
              if not (is_keyed_driver net) then Hashtbl.replace input_set net ())
            data_pins
        end)
      cells;
    let candidates =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) input_set [])
    in
    if !outputs = [] || candidates = [] then empty
    else begin
      (* functional signatures under the correct key: the true source of
         a boundary output carries exactly the output's signal. All
         [vectors] probes run as one word-level evaluation — a net's
         signature IS its value word (bit v = vector v), same layout as
         the old per-vector [1 lsl v] accumulation. *)
      let n_in = List.length (Netlist.inputs nl) in
      let rng = Shell_util.Rng.create 0x117c in
      let vectors = min vectors 62 in
      let sigs =
        if vectors <= 0 then Array.make (max (Netlist.num_nets nl) 1) 0
        else begin
          let simw = Shell_netlist.Simw.create nl in
          let words =
            (Shell_util.Rng.vectors_packed rng ~vectors ~bits:n_in).(0)
          in
          ignore
            (Shell_netlist.Simw.eval_comb simw ~keys:lk.Locked.key
               ~lanes:vectors words);
          Shell_netlist.Simw.net_values simw ~lanes:vectors
        end
      in
      let cand_cones =
        List.map (fun net -> (net, fanin_cone nl depth net)) candidates
      in
      let correct = ref 0 and total = ref 0 in
      List.iter
        (fun (o : Cell.t) ->
          let context = Hashtbl.create 64 in
          List.iter
            (fun ri ->
              if not keyed_cell.(ri) then
                Array.iter
                  (fun n ->
                    if n <> o.Cell.out then
                      Hashtbl.iter
                        (fun k () -> Hashtbl.replace context k ())
                        (fanin_cone nl depth n))
                  cells.(ri).Cell.ins)
            (Netlist.fanout nl o.Cell.out);
          let best = ref None in
          List.iter
            (fun (net, cone) ->
              let score = overlap cone context in
              match !best with
              | Some (_, s) when s >= score -> ()
              | _ -> best := Some (net, score))
            cand_cones;
          match !best with
          | None -> ()
          | Some (net, _) ->
              incr total;
              if sigs.(net) = sigs.(o.Cell.out) then incr correct)
        !outputs;
      {
        links = !total;
        links_correct = !correct;
        link_accuracy =
          (if !total = 0 then 0.0
           else float_of_int !correct /. float_of_int !total);
      }
    end
  end
