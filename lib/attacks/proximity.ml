module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Locked = Shell_locking.Locked

type report = {
  attacked_bits : int;
  correct : int;
  accuracy : float;
  total_key_bits : int;
}

(* Depth-bounded transitive fan-in signature of [net]: driving cells
   (as non-negative keys) plus the terminal undriven nets — primary and
   key inputs — (as negative keys). The leaves matter: bit-sliced
   datapaths share exactly their per-bit primary inputs, which is the
   locality a link predictor exploits. *)
let fanin_cone nl depth net =
  let seen = Hashtbl.create 32 in
  let rec go net d =
    if d >= 0 then
      match Netlist.driver nl net with
      | None -> Hashtbl.replace seen (-net - 1) ()
      | Some ci ->
          if not (Hashtbl.mem seen ci) then begin
            Hashtbl.add seen ci ();
            Array.iter (fun n -> go n (d - 1)) (Netlist.cell nl ci).Cell.ins
          end
  in
  go net depth;
  seen

let overlap a b =
  let small, large =
    if Hashtbl.length a < Hashtbl.length b then (a, b) else (b, a)
  in
  Hashtbl.fold (fun k () acc -> if Hashtbl.mem large k then acc + 1 else acc)
    small 0

type prediction = { bit : int; guess : bool option }

let predict ?(depth = 3) nl =
  let preds = ref [] in
  List.iteri
    (fun ki (_, knet) ->
      (* muxes directly selected by this key bit *)
      let muxes =
        List.filter_map
          (fun ci ->
            let c = Netlist.cell nl ci in
            if c.Cell.kind = Cell.Mux2 && c.Cell.ins.(0) = knet then Some c
            else None)
          (Netlist.fanout nl knet)
      in
      if muxes <> [] then begin
        (* aggregate affinity for key=false (data input 1) vs key=true
           (data input 2) across all muxes this bit controls *)
        let score_false = ref 0 and score_true = ref 0 in
        List.iter
          (fun (m : Cell.t) ->
            (* context: fan-in cones of the *other* inputs of the cells
               consuming this mux's output *)
            let context = Hashtbl.create 64 in
            List.iter
              (fun ci ->
                let consumer = Netlist.cell nl ci in
                Array.iter
                  (fun n ->
                    if n <> m.Cell.out then
                      Hashtbl.iter
                        (fun k () -> Hashtbl.replace context k ())
                        (fanin_cone nl depth n))
                  consumer.Cell.ins)
              (Netlist.fanout nl m.Cell.out);
            score_false := !score_false + overlap (fanin_cone nl depth m.Cell.ins.(1)) context;
            score_true := !score_true + overlap (fanin_cone nl depth m.Cell.ins.(2)) context)
          muxes;
        let guess =
          if !score_false > !score_true then Some false
          else if !score_true > !score_false then Some true
          else None
        in
        preds := { bit = ki; guess } :: !preds
      end)
    (Netlist.keys nl);
  List.rev !preds

(* Score predictions against the true key; [attacked] counts 1-based so
   the deterministic tie split below matches the historical verdicts. *)
let score (lk : Locked.t) preds =
  let attacked = ref 0 and correct = ref 0 in
  List.iter
    (fun p ->
      incr attacked;
      match p.guess with
      | Some g when g = lk.Locked.key.(p.bit) -> incr correct
      | Some _ -> ()
      | None ->
          (* coin flip on ties: deterministic split to stay honest *)
          if !attacked mod 2 = 0 then incr correct)
    preds;
  (!attacked, !correct)

let run ?depth (lk : Locked.t) =
  let nl = lk.Locked.locked in
  let preds = predict ?depth nl in
  let attacked, correct = score lk preds in
  {
    attacked_bits = attacked;
    correct;
    accuracy =
      (if attacked = 0 then 0.0
       else float_of_int correct /. float_of_int attacked);
    total_key_bits = List.length (Netlist.keys nl);
  }

(* ---------------- unified interface ---------------- *)

let attack =
  {
    Attack.name = "proximity";
    description = "structural link prediction (UNTANGLE-style mux affinity)";
    capabilities = [ Attack.Structure_only; Attack.Ground_truth ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        ignore b;
        let lk = s.Attack.locked in
        let nl = lk.Locked.locked in
        let k = Locked.key_bits lk in
        if k = 0 then Attack.Inapplicable "no key bits"
        else begin
          let start = Shell_util.Clock.now () in
          let preds = predict nl in
          if preds = [] then
            Attack.Inapplicable "no key bit drives a mux select"
          else begin
            (* functional guess: predicted bits take their prediction,
               ties and unattacked bits default to false *)
            let guess = Array.make k false in
            List.iter
              (fun p ->
                match p.guess with
                | Some g -> guess.(p.bit) <- g
                | None -> ())
              preds;
            let attacked, correct = score lk preds in
            let stats =
              {
                Attack.iterations = List.length preds;
                oracle_queries = 0;
                conflicts = 0;
                elapsed = Shell_util.Clock.now () -. start;
                key_bits = k;
                recovered_bits = correct;
                detail = [ ("attacked_bits", attacked); ("correct", correct) ];
              }
            in
            (* a prediction-quality attack: only claim a break when the
               guessed key actually unlocks (localized schemes with few
               bits); otherwise the score stands as the verdict *)
            if Locked.verify ~original:s.Attack.original { lk with Locked.key = guess }
            then Attack.checked_broken s guess stats
            else Attack.Resilient stats
          end
        end);
  }

type link_report = { links : int; links_correct : int; link_accuracy : float }

(* A cell is part of the keyed switch network when a key net drives a
   select pin. *)
let is_key_mux nl =
  let key_nets = Hashtbl.create 16 in
  Array.iter (fun n -> Hashtbl.replace key_nets n ()) (Netlist.key_nets nl);
  fun (c : Cell.t) ->
    match c.Cell.kind with
    | Cell.Mux2 -> Hashtbl.mem key_nets c.Cell.ins.(0)
    | Cell.Mux4 ->
        Hashtbl.mem key_nets c.Cell.ins.(0)
        || Hashtbl.mem key_nets c.Cell.ins.(1)
    | _ -> false

let predict_links ?(depth = 3) ?(vectors = 62) (lk : Locked.t) =
  let nl = lk.Locked.locked in
  let empty = { links = 0; links_correct = 0; link_accuracy = 0.0 } in
  if Netlist.has_comb_cycle nl then empty
  else begin
    let cells = Netlist.cells nl in
    let keyed_cell = Array.map (is_key_mux nl) cells in
    let is_keyed_driver net =
      match Netlist.driver nl net with
      | Some ci -> keyed_cell.(ci)
      | None -> false
    in
    (* boundary outputs: keyed muxes read by ordinary logic or POs *)
    let po = Hashtbl.create 16 in
    Array.iter (fun n -> Hashtbl.replace po n ()) (Netlist.output_nets nl);
    let outputs = ref [] in
    Array.iteri
      (fun ci (c : Cell.t) ->
        if keyed_cell.(ci) then begin
          let readers = Netlist.fanout nl c.Cell.out in
          let escapes =
            Hashtbl.mem po c.Cell.out
            || List.exists (fun ri -> not keyed_cell.(ri)) readers
          in
          if escapes then outputs := c :: !outputs
        end)
      cells;
    (* boundary inputs: data pins of keyed muxes fed by ordinary logic *)
    let input_set = Hashtbl.create 32 in
    Array.iteri
      (fun ci (c : Cell.t) ->
        if keyed_cell.(ci) then begin
          let data_pins =
            match c.Cell.kind with
            | Cell.Mux2 -> [ c.Cell.ins.(1); c.Cell.ins.(2) ]
            | Cell.Mux4 ->
                [ c.Cell.ins.(2); c.Cell.ins.(3); c.Cell.ins.(4); c.Cell.ins.(5) ]
            | _ -> []
          in
          List.iter
            (fun net ->
              if not (is_keyed_driver net) then Hashtbl.replace input_set net ())
            data_pins
        end)
      cells;
    let candidates =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) input_set [])
    in
    if !outputs = [] || candidates = [] then empty
    else begin
      (* functional signatures under the correct key: the true source of
         a boundary output carries exactly the output's signal. All
         [vectors] probes run as one word-level evaluation — a net's
         signature IS its value word (bit v = vector v), same layout as
         the old per-vector [1 lsl v] accumulation. *)
      let n_in = List.length (Netlist.inputs nl) in
      let rng = Shell_util.Rng.create 0x117c in
      let vectors = min vectors 62 in
      let sigs =
        if vectors <= 0 then Array.make (max (Netlist.num_nets nl) 1) 0
        else begin
          let simw = Shell_netlist.Simw.create nl in
          let words =
            (Shell_util.Rng.vectors_packed rng ~vectors ~bits:n_in).(0)
          in
          ignore
            (Shell_netlist.Simw.eval_comb simw ~keys:lk.Locked.key
               ~lanes:vectors words);
          Shell_netlist.Simw.net_values simw ~lanes:vectors
        end
      in
      let cand_cones =
        List.map (fun net -> (net, fanin_cone nl depth net)) candidates
      in
      let correct = ref 0 and total = ref 0 in
      List.iter
        (fun (o : Cell.t) ->
          let context = Hashtbl.create 64 in
          List.iter
            (fun ri ->
              if not keyed_cell.(ri) then
                Array.iter
                  (fun n ->
                    if n <> o.Cell.out then
                      Hashtbl.iter
                        (fun k () -> Hashtbl.replace context k ())
                        (fanin_cone nl depth n))
                  cells.(ri).Cell.ins)
            (Netlist.fanout nl o.Cell.out);
          let best = ref None in
          List.iter
            (fun (net, cone) ->
              let score = overlap cone context in
              match !best with
              | Some (_, s) when s >= score -> ()
              | _ -> best := Some (net, score))
            cand_cones;
          match !best with
          | None -> ()
          | Some (net, _) ->
              incr total;
              if sigs.(net) = sigs.(o.Cell.out) then incr correct)
        !outputs;
      {
        links = !total;
        links_correct = !correct;
        link_accuracy =
          (if !total = 0 then 0.0
           else float_of_int !correct /. float_of_int !total);
      }
    end
  end
