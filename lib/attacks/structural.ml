module Dataflow = Shell_lint.Dataflow
module Locked = Shell_locking.Locked

let attack =
  {
    Attack.name = "structural";
    description = "key-cone constant analysis (dead/blocked bits are free)";
    capabilities = [ Attack.Structure_only ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        ignore b;
        let nl = s.Attack.locked.Locked.locked in
        let fates = Dataflow.key_fates nl in
        let k = List.length fates in
        if k = 0 then Attack.Inapplicable "no key bits"
        else begin
          let start = Shell_util.Clock.now () in
          let count f =
            List.length (List.filter (fun (_, _, x) -> x = f) fates)
          in
          let dead = count Dataflow.Dead in
          let blocked = count Dataflow.Blocked in
          let free = dead + blocked in
          let stats =
            {
              Attack.iterations = 1;
              oracle_queries = 0;
              conflicts = 0;
              elapsed = Shell_util.Clock.now () -. start;
              key_bits = k;
              recovered_bits = free;
              detail =
                [ ("dead", dead); ("blocked", blocked); ("live", k - free) ];
            }
          in
          if free = k then
            (* every bit provably cannot affect the function: any key
               unlocks — claim all-false and verify *)
            Attack.checked_broken s (Array.make k false) stats
          else Attack.Resilient stats
        end);
  }
