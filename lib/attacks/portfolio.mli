(** Attack portfolio: the same SAT attack raced under several solver
    phase seeds on separate domains.

    CDCL runtime on a fixed instance varies wildly with the initial
    phase/branching choices; racing k differently-seeded solvers and
    taking the first break is the classic portfolio speedup, and it is
    the attacker model a defender should budget against (the paper's
    48-hour timeout assumes one solver).

    Determinism contract: with [stop_on_first_broken = false] (the
    default) every configuration runs to its own budget and the
    reported [winner] is the lowest-index configuration that broke the
    key — independent of scheduling. With [stop_on_first_broken = true]
    the remaining racers abort as soon as any domain breaks; the set of
    aborted [Timeout]s then depends on timing (use it for wall-clock
    wins, not for reproducible tables). *)

type config = { solver_seed : int; label : string }

val default_configs : int -> config list
(** [default_configs k] — seed 0 (MiniSat's all-false phases) plus
    [k - 1] fixed pseudorandom phase seeds. *)

type t = {
  winner : int option;  (** lowest-index config whose attack broke *)
  outcomes : (config * Sat_attack.outcome) array;  (** per config, in order *)
}

val run :
  ?jobs:int ->
  ?stop_on_first_broken:bool ->
  ?max_dips:int ->
  ?max_conflicts:int ->
  ?time_limit:float ->
  ?cycle_blocks:(int array * bool array) list ->
  ?should_stop:(unit -> bool) ->
  ?configs:config list ->
  original:Shell_netlist.Netlist.t ->
  Shell_netlist.Netlist.t ->
  t
(** [run ~original locked] races {!Sat_attack.run} over the
    configurations (default [default_configs 4]) on up to [jobs]
    domains. Each racer builds a private oracle from [original] (oracle
    closures carry mutable simulator state and must not be shared
    across domains). Budget options are per racer. [should_stop] is an
    external cancellation signal checked by every racer regardless of
    [stop_on_first_broken]. *)

val best : t -> Sat_attack.outcome
(** The winner's outcome, or — when nothing broke — the outcome of the
    configuration that got through the most DIPs (ties to the lowest
    index), i.e. the strongest attack evidence gathered. *)

val attack : Attack.t
(** Battery form (["portfolio"]): the 4-seed race with
    [stop_on_first_broken = false] (deterministic verdicts), reporting
    {!best} through the unified verdict; the winning config index rides
    in [detail] as ["winner"] (-1 when nothing broke). *)
