(** The attack battery: every registered attack fanned over every
    locked subject, reported as a per-scheme x per-attack resilience
    matrix.

    Registry pattern as in [Shell_lint.Rules] and [Shell_fuzz.Oracles]:
    {!all} is the ordered list, {!find}/{!names} look it up, and column
    order in the matrix is registry order.

    Determinism contract: cells fan out over the domain pool one
    (subject, attack) pair per task and are reassembled by index, so —
    as long as each attack's verdict is deterministic (dip/conflict/
    vector caps bind before [time_limit], no external [should_stop]) —
    {!matrix_json} is byte-identical at any [SHELL_JOBS]. The JSON
    deliberately omits wall-clock fields; CI byte-diffs it at jobs 1
    vs 4. *)

val all : Attack.t list
(** sat, appsat, brute, sensitize, structural, redundancy, scope,
    removal, proximity, portfolio — in matrix column order. The
    oracle-less trio (structural, redundancy, scope) all run on the
    shared [Shell_lint] dataflow engine. *)

val find : string -> Attack.t option
val names : unit -> string list

type cell = { attack : string; verdict : Attack.verdict }

type row = {
  subject : string;  (** {!Attack.subject} label *)
  scheme : string;
  key_bits : int;
  cells : cell list;  (** one per attack, registry order *)
}

type matrix = { attacks : string list; rows : row list }

val run_attack : Attack.budget -> Attack.t -> Attack.subject -> cell
(** One cell, wrapped in an ["attack.<name>"] Obs span and counted in
    the stable [battery_cells] counter. *)

val run :
  ?jobs:int ->
  ?attacks:Attack.t list ->
  budget:Attack.budget ->
  Attack.subject list ->
  matrix
(** Fan [attacks] (default {!all}) over the subjects on the domain
    pool, one task per cell, subject-major. *)

val matrix_json : matrix -> Shell_util.Jsonw.t
(** Stable rendering: verdicts, keys (as 0/1 strings), iteration/query/
    conflict counts and [detail] — no [elapsed]. *)

val pp_matrix : Format.formatter -> matrix -> unit
(** Text table: one row per subject, one column per attack, cells
    [BROKEN]/[resilient]/[n/a]. *)
