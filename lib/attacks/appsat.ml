module Netlist = Shell_netlist.Netlist
module Simw = Shell_netlist.Simw
module Locked = Shell_locking.Locked
module Rng = Shell_util.Rng
module Obs = Shell_util.Obs

let now = Shell_util.Clock.now

let settle_every = 4
let settle_target = 3

let m_runs =
  Obs.counter ~stable:true ~help:"AppSAT attacks started" "appsat_runs"

let popcount w =
  let c = ref 0 in
  let w = ref w in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr c
  done;
  !c

(* Estimated disagreement of [cand] with the oracle over the fixed
   sample: number of mismatching vectors, or [None] when the candidate
   cannot be simulated (cyclic under this key). *)
let error_estimator s ~vectors =
  let lk = s.Attack.locked in
  let nl = lk.Locked.locked in
  let comb = Netlist.comb_view nl in
  let n_in = List.length (Netlist.inputs comb) in
  let rng = Rng.create 0xa775a7 in
  let nvec = max 1 (min vectors 1024) in
  let vecs = Array.make nvec [||] in
  for i = 0 to nvec - 1 do
    vecs.(i) <- Array.init n_in (fun _ -> Rng.bool rng)
  done;
  let chunks =
    let rec go pos acc =
      if pos >= nvec then List.rev acc
      else
        let lanes = min Simw.width (nvec - pos) in
        go (pos + lanes)
          ((lanes, Simw.pack (Array.sub vecs pos lanes)) :: acc)
    in
    go 0 []
  in
  let oracle_w = Attack.word_oracle s in
  let golden =
    List.map (fun (lanes, ins) -> (lanes, ins, oracle_w ~lanes ins)) chunks
  in
  let count simw keys =
    List.fold_left
      (fun acc (lanes, ins, theirs) ->
        let mine = Simw.eval_comb simw ?keys ~lanes ins in
        let diff = ref 0 in
        Array.iteri (fun i w -> diff := !diff lor (w lxor theirs.(i))) mine;
        acc + popcount !diff)
      0 golden
  in
  if not (Netlist.has_comb_cycle nl) then begin
    let simw = Simw.create comb in
    fun cand -> Some (count simw (Some cand))
  end
  else
    fun cand ->
      (* cyclic locked netlist: specialize under the candidate first *)
      let cand_nl = Locked.apply_key lk cand in
      if Netlist.has_comb_cycle cand_nl then None
      else Some (count (Simw.create (Netlist.comb_view cand_nl)) None)

let attack =
  {
    Attack.name = "appsat";
    description = "approximate SAT attack (settle rounds + error sampling)";
    capabilities = [ Attack.Oracle_access ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        let lk = s.Attack.locked in
        let k = Locked.key_bits lk in
        if k = 0 then Attack.Inapplicable "no key bits"
        else begin
          Obs.incr m_runs;
          Obs.with_span "appsat" @@ fun () ->
          let start = now () in
          let miter =
            Miter.create ~cycle_blocks:s.Attack.cycle_blocks ~seed:0
              lk.Locked.locked
          in
          let oracle = Attack.oracle s in
          let est_err = error_estimator s ~vectors:b.Attack.vectors in
          let stats ~dips ~settled ~exact ~last_err ~recovered =
            {
              Attack.iterations = dips;
              oracle_queries = dips;
              conflicts = Miter.conflicts miter;
              elapsed = now () -. start;
              key_bits = k;
              recovered_bits = recovered;
              detail =
                [
                  ("settled", settled);
                  ("exact", (if exact then 1 else 0));
                  ("err_vectors", last_err);
                ];
            }
          in
          let budget_left () =
            (not (b.Attack.should_stop ()))
            && Miter.conflicts miter < b.Attack.max_conflicts
            && now () -. start < b.Attack.time_limit
          in
          let extract_budget () =
            max 2_000
              (min 10_000 (b.Attack.max_conflicts - Miter.conflicts miter))
          in
          let rec loop dips settled last_err =
            if dips >= b.Attack.max_dips || not (budget_left ()) then
              Attack.Resilient
                (stats ~dips ~settled ~exact:false ~last_err ~recovered:0)
            else
              let per_call =
                max 1_000
                  (min 20_000
                     ((b.Attack.max_conflicts - Miter.conflicts miter) / 2))
              in
              match Miter.find_dip ~max_conflicts:per_call miter with
              | `Budget -> loop dips settled last_err
              | `Dip input ->
                  Miter.add_dip miter input (oracle input);
                  let dips = dips + 1 in
                  if dips mod settle_every <> 0 then loop dips settled last_err
                  else settle dips settled last_err
              | `Unsat -> (
                  (* no DIP left: the exact attack's endgame, for free *)
                  let remaining =
                    max 2_000 (b.Attack.max_conflicts - Miter.conflicts miter)
                  in
                  match Miter.extract_key ~max_conflicts:remaining miter with
                  | Some key ->
                      Attack.checked_broken s key
                        (stats ~dips ~settled ~exact:true ~last_err
                           ~recovered:0)
                  | None ->
                      Attack.Resilient
                        (stats ~dips ~settled ~exact:false ~last_err
                           ~recovered:0))
          (* every [settle_every] DIPs: extract a candidate consistent
             with the constraints so far and sample its error rate;
             [settle_target] consecutive zero-error candidates end the
             attack early — AppSAT's termination heuristic, here backed
             by full verification before any break is reported *)
          and settle dips settled last_err =
            match Miter.extract_key ~max_conflicts:(extract_budget ()) miter with
            | None -> loop dips 0 last_err
            | Some cand -> (
                match est_err cand with
                | None -> loop dips 0 last_err
                | Some 0 ->
                    let settled = settled + 1 in
                    if settled < settle_target then loop dips settled 0
                    else (
                      match
                        Attack.checked_broken s cand
                          (stats ~dips ~settled ~exact:false ~last_err:0
                             ~recovered:0)
                      with
                      | Attack.Broken _ as v -> v
                      | _ ->
                          (* sampled-zero but not equivalent: keep
                             refining instead of reporting the miss *)
                          loop dips 0 0)
                | Some e -> loop dips 0 e)
          in
          let v = loop 0 0 (-1) in
          (match Attack.stats_of v with
          | Some st ->
              Obs.span_add "dips" st.Attack.iterations;
              Obs.span_add "conflicts" st.Attack.conflicts
          | None -> ());
          v
        end);
  }
