(** The oracle-guided SAT attack (Subramanyan et al. [6]), with
    optional cyclic-reduction pre-processing [26].

    The attacker holds the locked netlist and black-box access to an
    activated chip (the oracle); scan access reduces sequential designs
    to combinational ones. The attack alternates DIP search and oracle
    queries until no distinguishing input remains, then extracts a key
    that is functionally correct by construction.

    Budgets stand in for the paper's 48-hour timeout: the attack
    reports [Timeout] when it exhausts DIPs, conflicts or wall-clock
    budget — that is the "resilient" verdict of Tables IV–VI. *)

type stats = {
  dips : int;
  conflicts : int;
  decisions : int;  (** solver branching decisions *)
  propagations : int;  (** solver unit propagations *)
  restarts : int;  (** solver restarts *)
  elapsed : float;  (** wall-clock seconds for this attack *)
  key_bits : int;
  c2v : float;
}

type outcome =
  | Broken of bool array * stats  (** functionally-correct key found *)
  | Timeout of stats

val oracle_of_netlist : Shell_netlist.Netlist.t -> bool array -> bool array
(** Build the oracle from the original design (full-scan view). *)

val word_oracle_of_netlist :
  Shell_netlist.Netlist.t -> lanes:int -> int array -> int array
(** Word-level variant: up to [Simw.width] activated-chip queries per
    call (one lane each), for consumers that batch vectors — the
    removal attack and key-verification sweeps. Input/output words
    follow the {!Shell_netlist.Simw} packing convention. *)

val run :
  ?max_dips:int ->
  ?max_conflicts:int ->
  ?time_limit:float ->
  ?cycle_blocks:(int array * bool array) list ->
  ?solver_seed:int ->
  ?should_stop:(unit -> bool) ->
  oracle:(bool array -> bool array) ->
  Shell_netlist.Netlist.t ->
  outcome
(** Defaults: [max_dips] 256, [max_conflicts] 200_000 total,
    [time_limit] 30.0 s (wall clock). [solver_seed] perturbs the
    underlying solver's initial phases (0 = MiniSat default).
    [should_stop] is polled at every DIP-loop head; when it returns
    true the attack gives up with [Timeout] — the portfolio uses it to
    cancel losers once a racer breaks the key. *)

val attack_locked :
  ?max_dips:int ->
  ?max_conflicts:int ->
  ?time_limit:float ->
  ?cycle_blocks:(int array * bool array) list ->
  ?solver_seed:int ->
  ?should_stop:(unit -> bool) ->
  original:Shell_netlist.Netlist.t ->
  Shell_locking.Locked.t ->
  outcome
(** Convenience wrapper: oracle from the original netlist; on success
    the recovered key is additionally checked to be functionally
    equivalent to the correct key (assert-level sanity). *)

val to_attack_stats : ?broken:bool -> stats -> Attack.stats
(** Legacy stats in unified terms: [iterations]/[oracle_queries] =
    DIPs, decisions/propagations/restarts in [detail];
    [recovered_bits] = [key_bits] when [broken]. The portfolio wrapper
    shares this mapping. *)

val attack : Attack.t
(** The same attack behind the unified interface: [Broken] maps to
    {!Attack.Broken}, [Timeout] to {!Attack.Resilient}; solver
    decisions/propagations/restarts land in [detail]. Registered in
    {!Battery.all} as ["sat"]. *)
