module Netlist = Shell_netlist.Netlist
module Sim = Shell_netlist.Sim
module Locked = Shell_locking.Locked

type stats = {
  dips : int;
  conflicts : int;
  elapsed : float;
  key_bits : int;
  c2v : float;
}

type outcome = Broken of bool array * stats | Timeout of stats

let oracle_of_netlist original =
  let comb = Netlist.comb_view original in
  let sim = Sim.create comb in
  fun input -> Sim.eval_comb sim input

(* Per-attack wall clock: [Sys.time] is process-wide CPU time, which
   inflates with every concurrently attacking domain and would shrink
   the effective budget of parallel runs. *)
let now = Shell_util.Clock.now

let run ?(max_dips = 256) ?(max_conflicts = 200_000) ?(time_limit = 30.0)
    ?cycle_blocks ?(solver_seed = 0) ?(should_stop = fun () -> false) ~oracle
    locked =
  let start = now () in
  let miter = Miter.create ?cycle_blocks ~seed:solver_seed locked in
  let stats dips =
    {
      dips;
      conflicts = Miter.conflicts miter;
      elapsed = now () -. start;
      key_bits = Miter.num_keys miter;
      c2v = Miter.clause_to_var_ratio miter;
    }
  in
  let budget_left () =
    (not (should_stop ()))
    && Miter.conflicts miter < max_conflicts
    && now () -. start < time_limit
  in
  let rec loop dips =
    if dips >= max_dips || not (budget_left ()) then Timeout (stats dips)
    else
      (* cap each solver call so wall-clock budget checks stay frequent
         even on large miters *)
      let per_call =
        max 1_000 (min 20_000 ((max_conflicts - Miter.conflicts miter) / 2))
      in
      match Miter.find_dip ~max_conflicts:per_call miter with
      | `Dip input ->
          let output = oracle input in
          Miter.add_dip miter input output;
          loop (dips + 1)
      | `Budget ->
          (* capped call ran out: the loop head re-checks the global
             budget and either resumes the search or reports timeout *)
          loop dips
      | `Unsat -> (
          match Miter.extract_key ~max_conflicts:max_conflicts miter with
          | Some key -> Broken (key, stats dips)
          | None -> Timeout (stats dips))
  in
  loop 0

let attack_locked ?max_dips ?max_conflicts ?time_limit ?cycle_blocks
    ?solver_seed ~original (lk : Locked.t) =
  let oracle = oracle_of_netlist original in
  match
    run ?max_dips ?max_conflicts ?time_limit ?cycle_blocks ?solver_seed ~oracle
      lk.Locked.locked
  with
  | Broken (key, st) ->
      (* sanity: the recovered key must unlock the design *)
      let ok =
        Locked.verify ~original { lk with Locked.key }
      in
      if ok then Broken (key, st)
      else
        (* should not happen: the attack is sound; report as timeout to
           stay conservative rather than claim a break *)
        Timeout st
  | Timeout st -> Timeout st
