module Netlist = Shell_netlist.Netlist
module Sim = Shell_netlist.Sim
module Locked = Shell_locking.Locked
module Solver = Shell_sat.Solver
module Obs = Shell_util.Obs

type stats = {
  dips : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  elapsed : float;
  key_bits : int;
  c2v : float;
}

(* Attack effort depends on the wall-clock budget, so everything here
   is unstable except the run count (one per [run] invocation, a pure
   function of the workload). *)
let m_runs = Obs.counter ~stable:true ~help:"SAT attacks started" "attack_runs"

let m_iters =
  Obs.counter ~help:"DIS-loop solver calls across all attacks"
    "attack_dis_iterations"

let h_solve_us =
  Obs.histogram ~help:"microseconds per DIS-loop solver call"
    "attack_solve_us"

type outcome = Broken of bool array * stats | Timeout of stats

let oracle_of_netlist original =
  let comb = Netlist.comb_view original in
  let sim = Sim.create comb in
  fun input -> Sim.eval_comb sim input

let word_oracle_of_netlist original =
  let comb = Netlist.comb_view original in
  let simw = Shell_netlist.Simw.create comb in
  fun ~lanes words -> Shell_netlist.Simw.eval_comb simw ~lanes words

(* Per-attack wall clock: [Sys.time] is process-wide CPU time, which
   inflates with every concurrently attacking domain and would shrink
   the effective budget of parallel runs. *)
let now = Shell_util.Clock.now

let run ?(max_dips = 256) ?(max_conflicts = 200_000) ?(time_limit = 30.0)
    ?cycle_blocks ?(solver_seed = 0) ?(should_stop = fun () -> false) ~oracle
    locked =
  Obs.incr m_runs;
  Obs.with_span "sat_attack" @@ fun () ->
  let start = now () in
  let miter = Miter.create ?cycle_blocks ~seed:solver_seed locked in
  let stats dips =
    let s = Miter.stats miter in
    {
      dips;
      conflicts = s.Solver.conflicts;
      decisions = s.Solver.decisions;
      propagations = s.Solver.propagations;
      restarts = s.Solver.restarts;
      elapsed = now () -. start;
      key_bits = Miter.num_keys miter;
      c2v = Miter.clause_to_var_ratio miter;
    }
  in
  let budget_left () =
    (not (should_stop ()))
    && Miter.conflicts miter < max_conflicts
    && now () -. start < time_limit
  in
  (* one capped DIS-loop solver call; each becomes a child span of the
     attack with its own latency sample when Obs is on *)
  let find_dip per_call =
    if not (Obs.enabled ()) then Miter.find_dip ~max_conflicts:per_call miter
    else begin
      Obs.incr m_iters;
      let t0 = now () in
      let r =
        Obs.with_span "dip" (fun () ->
            Miter.find_dip ~max_conflicts:per_call miter)
      in
      Obs.observe_us h_solve_us (now () -. t0);
      r
    end
  in
  let rec loop dips =
    if dips >= max_dips || not (budget_left ()) then Timeout (stats dips)
    else
      (* cap each solver call so wall-clock budget checks stay frequent
         even on large miters *)
      let per_call =
        max 1_000 (min 20_000 ((max_conflicts - Miter.conflicts miter) / 2))
      in
      match find_dip per_call with
      | `Dip input ->
          let output = oracle input in
          Miter.add_dip miter input output;
          loop (dips + 1)
      | `Budget ->
          (* capped call ran out: the loop head re-checks the global
             budget and either resumes the search or reports timeout *)
          loop dips
      | `Unsat -> (
          (* the DIP loop already consumed part of the conflict budget;
             hand extraction only the remainder (with a floor so a
             near-exhausted budget can still emit the key) instead of
             the full budget again, which let total conflicts overrun
             ~2x *)
          let remaining = max 2_000 (max_conflicts - Miter.conflicts miter) in
          match Miter.extract_key ~max_conflicts:remaining miter with
          | Some key -> Broken (key, stats dips)
          | None -> Timeout (stats dips))
  in
  let outcome = loop 0 in
  (match outcome with
  | Broken (_, st) | Timeout st ->
      Obs.span_add "dips" st.dips;
      Obs.span_add "conflicts" st.conflicts);
  outcome

let attack_locked ?max_dips ?max_conflicts ?time_limit ?cycle_blocks
    ?solver_seed ?should_stop ~original (lk : Locked.t) =
  let oracle = oracle_of_netlist original in
  match
    run ?max_dips ?max_conflicts ?time_limit ?cycle_blocks ?solver_seed
      ?should_stop ~oracle lk.Locked.locked
  with
  | Broken (key, st) ->
      (* sanity: the recovered key must unlock the design *)
      let ok =
        Locked.verify ~original { lk with Locked.key }
      in
      if ok then Broken (key, st)
      else
        (* should not happen: the attack is sound; report as timeout to
           stay conservative rather than claim a break *)
        Timeout st
  | Timeout st -> Timeout st

(* ---------------- unified interface ---------------- *)

let to_attack_stats ?(broken = false) (st : stats) =
  {
    Attack.iterations = st.dips;
    oracle_queries = st.dips;
    conflicts = st.conflicts;
    elapsed = st.elapsed;
    key_bits = st.key_bits;
    recovered_bits = (if broken then st.key_bits else 0);
    detail =
      [
        ("decisions", st.decisions);
        ("propagations", st.propagations);
        ("restarts", st.restarts);
      ];
  }

let attack =
  {
    Attack.name = "sat";
    description = "oracle-guided SAT attack (exact; Subramanyan et al.)";
    capabilities = [ Attack.Oracle_access ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        match
          attack_locked ~max_dips:b.Attack.max_dips
            ~max_conflicts:b.Attack.max_conflicts
            ~time_limit:b.Attack.time_limit ~cycle_blocks:s.Attack.cycle_blocks
            ~should_stop:b.Attack.should_stop ~original:s.Attack.original
            s.Attack.locked
        with
        | Broken (key, st) -> Attack.Broken (key, to_attack_stats ~broken:true st)
        | Timeout st -> Attack.Resilient (to_attack_stats st));
  }
