module Lscope = Shell_lint.Scope
module N = Shell_netlist.Netlist
module Locked = Shell_locking.Locked

(* SCOPE-style oracle-less attack: guess each key bit from the
   asymmetry of its 0/1 pinned constant-propagation scores (the shared
   Shell_lint.Scope engine — the less-collapsing value is the likelier
   correct one), then verify the assembled key word-parallel through
   Locked.verify (Simw-backed equivalence). Ties are undecidable; if
   every bit ties, the design is SCOPE-resilient and we do not gamble
   on an all-default key. Deterministic: the scores are a pure
   function of the locked netlist. *)

let attack =
  {
    Attack.name = "scope";
    description = "per-key-bit constant-propagation scoring (SCOPE-style)";
    capabilities = [ Attack.Structure_only ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        ignore b;
        let nl = s.Attack.locked.Locked.locked in
        if N.keys nl = [] then Attack.Inapplicable "no key bits"
        else begin
          let start = Shell_util.Clock.now () in
          let scores = Lscope.scores nl in
          let k = List.length scores in
          let guess = Array.make k false in
          let decided = ref 0 in
          let max_div = ref 0 in
          List.iteri
            (fun i (sc : Lscope.bit_score) ->
              max_div := max !max_div (Lscope.divergence sc);
              match Lscope.guess sc with
              | Some g ->
                  guess.(i) <- g;
                  incr decided
              | None -> ())
            scores;
          let stats =
            {
              Attack.iterations = k;
              oracle_queries = 0;
              conflicts = 0;
              elapsed = Shell_util.Clock.now () -. start;
              key_bits = k;
              recovered_bits = !decided;
              detail =
                [
                  ("decided", !decided);
                  ("undecided", k - !decided);
                  ("max_divergence", !max_div);
                ];
            }
          in
          if !decided = 0 then Attack.Resilient stats
          else Attack.checked_broken s guess stats
        end);
  }
