(** Brute-force key sweep — the baseline every scheme must clear.

    Enumerates the full keyspace (keys of at most {!max_key_bits} bits)
    against a fixed set of test vectors, word-parallel on both sides:
    the candidate simulates through {!Shell_netlist.Simw} and the
    activated-chip responses are precomputed once with the word oracle.
    Vectors are exhaustive when the input space allows (<= 12 inputs),
    sampled otherwise; a surviving candidate is verified through
    {!Attack.checked_broken} before being reported.

    A scheme this attack breaks within budget has an effectively empty
    keyspace no matter how SAT-resilient it is — the paper's keyspace
    column, measured instead of counted. *)

val max_key_bits : int
(** 20 — beyond this the sweep is [Inapplicable] (report says so). *)

val attack : Attack.t
(** Registered as ["brute"]. Honors [vectors], [time_limit] and
    [should_stop]; [Inapplicable] on zero or > {!max_key_bits} key bits
    and on cyclic locked netlists (no word simulation). *)
