module Netlist = Shell_netlist.Netlist
module Cnf = Shell_netlist.Cnf
module Bitstream = Shell_fabric.Bitstream

type t = {
  key_bits : int;
  table_bits : int;
  routing_bits : int;
  c2v : float;
  clauses : int;
  variables : int;
  cycle_blocked_patterns : int;
  log2_keyspace : float;
}

let of_locked ?bitstream ?(cycle_blocks = []) locked =
  let comb = Netlist.comb_view locked in
  let cnf = Cnf.encode comb in
  let clauses = List.length cnf.Cnf.clauses in
  let variables = cnf.Cnf.nvars in
  let key_bits = Array.length (Netlist.key_nets comb) in
  let table_bits, routing_bits =
    match bitstream with None -> (0, 0) | Some bs -> Bitstream.kind_bits bs
  in
  {
    key_bits;
    table_bits;
    routing_bits;
    c2v = float_of_int clauses /. float_of_int (max 1 variables);
    clauses;
    variables;
    cycle_blocked_patterns = List.length cycle_blocks;
    log2_keyspace = float_of_int key_bits;
  }

let pp ppf t =
  Format.fprintf ppf
    "key=%d bits (table %d, routing %d), keyspace 2^%.0f, CNF %d clauses / %d vars (c2v %.2f), %d cycle-blocked patterns"
    t.key_bits t.table_bits t.routing_bits t.log2_keyspace t.clauses
    t.variables t.c2v t.cycle_blocked_patterns
