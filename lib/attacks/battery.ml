module Pool = Shell_util.Pool
module Obs = Shell_util.Obs
module Jsonw = Shell_util.Jsonw
module Locked = Shell_locking.Locked

(* ---------------- registry ---------------- *)

let all : Attack.t list =
  [
    Sat_attack.attack;
    Appsat.attack;
    Brute_force.attack;
    Sensitize.attack;
    Structural.attack;
    Redundancy.attack;
    Scope.attack;
    Removal.attack;
    Proximity.attack;
    Portfolio.attack;
  ]

let find name = List.find_opt (fun (a : Attack.t) -> a.Attack.name = name) all
let names () = List.map (fun (a : Attack.t) -> a.Attack.name) all

(* ---------------- engine ---------------- *)

type cell = { attack : string; verdict : Attack.verdict }

type row = {
  subject : string;
  scheme : string;
  key_bits : int;
  cells : cell list;
}

type matrix = { attacks : string list; rows : row list }

(* grid size is a pure function of the workload; verdict counts can
   depend on wall-clock budgets, so they stay unstable *)
let m_cells =
  Obs.counter ~stable:true ~help:"battery (subject x attack) cells run"
    "battery_cells"

let m_broken = Obs.counter ~help:"battery cells broken" "battery_broken"

let run_attack budget (a : Attack.t) s =
  Obs.incr m_cells;
  Obs.with_span ("attack." ^ a.Attack.name) @@ fun () ->
  let v = a.Attack.run budget s in
  (match v with Attack.Broken _ -> Obs.incr m_broken | _ -> ());
  { attack = a.Attack.name; verdict = v }

let run ?jobs ?(attacks = all) ~budget subjects =
  Obs.with_span "battery" @@ fun () ->
  let subs = Array.of_list subjects in
  let atks = Array.of_list attacks in
  let na = Array.length atks in
  (* one pool task per (subject, attack) cell, subject-major; results
     are reassembled by index, so the matrix is byte-identical at any
     SHELL_JOBS (given deterministic budgets — see Attack's contract) *)
  let grid =
    Array.init (Array.length subs * na) (fun i -> (i / na, i mod na))
  in
  let cells =
    Pool.map ?jobs (fun (si, ai) -> run_attack budget atks.(ai) subs.(si)) grid
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun si (s : Attack.subject) ->
           {
             subject = s.Attack.label;
             scheme = s.Attack.locked.Locked.scheme;
             key_bits = Locked.key_bits s.Attack.locked;
             cells = Array.to_list (Array.sub cells (si * na) na);
           })
         subs)
  in
  { attacks = List.map (fun (a : Attack.t) -> a.Attack.name) attacks; rows }

(* ---------------- rendering ---------------- *)

let key_string key =
  String.init (Array.length key) (fun i -> if key.(i) then '1' else '0')

(* stable by construction: [elapsed] is deliberately omitted so the
   JSON is byte-diffable across job counts and machines *)
let stats_fields (st : Attack.stats) =
  [
    ("iterations", Jsonw.Int st.Attack.iterations);
    ("oracle_queries", Jsonw.Int st.Attack.oracle_queries);
    ("conflicts", Jsonw.Int st.Attack.conflicts);
    ("key_bits", Jsonw.Int st.Attack.key_bits);
    ("recovered_bits", Jsonw.Int st.Attack.recovered_bits);
    ( "detail",
      Jsonw.Obj
        (List.map (fun (k, v) -> (k, Jsonw.Int v)) st.Attack.detail) );
  ]

let cell_json c =
  let base = [ ("attack", Jsonw.Str c.attack) ] in
  let rest =
    match c.verdict with
    | Attack.Broken (key, st) ->
        (("verdict", Jsonw.Str "broken") :: ("key", Jsonw.Str (key_string key))
        :: stats_fields st)
    | Attack.Resilient st ->
        ("verdict", Jsonw.Str "resilient") :: stats_fields st
    | Attack.Inapplicable why ->
        [ ("verdict", Jsonw.Str "n/a"); ("reason", Jsonw.Str why) ]
  in
  Jsonw.Obj (base @ rest)

let row_json r =
  Jsonw.Obj
    [
      ("subject", Jsonw.Str r.subject);
      ("scheme", Jsonw.Str r.scheme);
      ("key_bits", Jsonw.Int r.key_bits);
      ("cells", Jsonw.Arr (List.map cell_json r.cells));
    ]

let matrix_json m =
  Jsonw.Obj
    [
      ( "battery",
        Jsonw.Obj
          [
            ("version", Jsonw.Int 1);
            ("attacks", Jsonw.Arr (List.map (fun a -> Jsonw.Str a) m.attacks));
            ("rows", Jsonw.Arr (List.map row_json m.rows));
          ] );
    ]

let pp_matrix ppf m =
  let wsub =
    List.fold_left (fun w r -> max w (String.length r.subject)) 7 m.rows
  in
  let wcol =
    List.fold_left (fun w a -> max w (String.length a)) 9 m.attacks
  in
  Format.fprintf ppf "%-*s" wsub "subject";
  List.iter (fun a -> Format.fprintf ppf "  %-*s" wcol a) m.attacks;
  List.iter
    (fun r ->
      Format.fprintf ppf "@.%-*s" wsub r.subject;
      List.iter
        (fun c ->
          let s =
            match c.verdict with
            | Attack.Broken _ -> "BROKEN"
            | Attack.Resilient _ -> "resilient"
            | Attack.Inapplicable _ -> "n/a"
          in
          Format.fprintf ppf "  %-*s" wcol s)
        r.cells)
    m.rows
