module Dataflow = Shell_lint.Dataflow
module Odc = Shell_lint.Odc
module Cell = Shell_netlist.Cell
module N = Shell_netlist.Netlist
module Locked = Shell_locking.Locked

(* Redundancy attack: wrong key values leave provably redundant logic.

   A correct key restores the original function, so pinning it leaves
   the functional logic intact; a wrong value tends to degenerate the
   locking gates (a controlling constant, an unsteerable mux) and with
   them everything whose only purpose was to feed the degenerate path.
   We measure "intact" as the number of LIVE cells — output not proven
   constant and still observable under the ODC masking rules — and
   vote AGAINST any pinning that kills strictly more live cells than
   the unpinned baseline already concedes. A bit is decided when
   exactly one of its two pinnings is voted against; if no bit can be
   decided the netlist leaks nothing to this analysis and the verdict
   is Resilient (guessing noise would only produce verify_failed
   downgrades).

   Everything here is a pure function of the locked netlist: no RNG,
   no wall-clock dependence in the result, so the battery matrix stays
   byte-identical at any SHELL_JOBS. *)

let live_cells nl values (odc : Odc.t) =
  Array.fold_left
    (fun acc (c : Cell.t) ->
      if
        Dataflow.known values.(c.Cell.out) = None
        && odc.Odc.observable.(c.Cell.out)
      then acc + 1
      else acc)
    0 (N.cells nl)

let pinned_live nl pins =
  let values = Dataflow.const_values ~pins ~config_through:true nl in
  live_cells nl values (Odc.analyze ~values nl)

let attack =
  {
    Attack.name = "redundancy";
    description = "vote against key values whose pinning kills live logic";
    capabilities = [ Attack.Structure_only ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        let nl = s.Attack.locked.Locked.locked in
        let keys = Array.of_list (N.keys nl) in
        let k = Array.length keys in
        if k = 0 then Attack.Inapplicable "no key bits"
        else begin
          let start = Shell_util.Clock.now () in
          let base = pinned_live nl [] in
          let guess = Array.make k false in
          let decided = ref 0 in
          let examined = ref 0 in
          let i = ref 0 in
          let stop = ref false in
          while (not !stop) && !i < k do
            let _, net = keys.(!i) in
            if net >= 0 then begin
              let against0 = pinned_live nl [ (net, false) ] < base in
              let against1 = pinned_live nl [ (net, true) ] < base in
              (match (against0, against1) with
              | true, false ->
                  guess.(!i) <- true;
                  incr decided
              | false, true -> incr decided
              | _ -> ())
            end;
            incr examined;
            incr i;
            if
              b.Attack.should_stop ()
              || Shell_util.Clock.now () -. start > b.Attack.time_limit
            then stop := true
          done;
          let stats =
            {
              Attack.iterations = !examined;
              oracle_queries = 0;
              conflicts = 0;
              elapsed = Shell_util.Clock.now () -. start;
              key_bits = k;
              recovered_bits = !decided;
              detail =
                [
                  ("base_live", base);
                  ("decided", !decided);
                  ("undecided", k - !decided);
                ];
            }
          in
          if !decided = 0 then Attack.Resilient stats
          else Attack.checked_broken s guess stats
        end);
  }
