module Netlist = Shell_netlist.Netlist
module Sim = Shell_netlist.Sim
module Simw = Shell_netlist.Simw
module Locked = Shell_locking.Locked

type budget = {
  max_dips : int;
  max_conflicts : int;
  time_limit : float;
  vectors : int;
  should_stop : unit -> bool;
}

let budget ?(max_dips = 256) ?(max_conflicts = 200_000) ?(time_limit = 30.0)
    ?(vectors = 256) ?(should_stop = fun () -> false) () =
  { max_dips; max_conflicts; time_limit; vectors; should_stop }

type stats = {
  iterations : int;
  oracle_queries : int;
  conflicts : int;
  elapsed : float;
  key_bits : int;
  recovered_bits : int;
  detail : (string * int) list;
}

type verdict =
  | Broken of bool array * stats
  | Resilient of stats
  | Inapplicable of string

let verdict_name = function
  | Broken _ -> "broken"
  | Resilient _ -> "resilient"
  | Inapplicable _ -> "n/a"

let stats_of = function
  | Broken (_, st) | Resilient st -> Some st
  | Inapplicable _ -> None

type capability = Oracle_access | Structure_only | Ground_truth

let capability_name = function
  | Oracle_access -> "oracle"
  | Structure_only -> "structural"
  | Ground_truth -> "ground-truth"

type subject = {
  label : string;
  original : Netlist.t;
  locked : Locked.t;
  cycle_blocks : (int array * bool array) list;
}

let subject ?label ?(cycle_blocks = []) ~original (lk : Locked.t) =
  let label =
    match label with
    | Some l -> l
    | None -> Netlist.name original ^ "/" ^ lk.Locked.scheme
  in
  { label; original; locked = lk; cycle_blocks }

type t = {
  name : string;
  description : string;
  capabilities : capability list;
  run : budget -> subject -> verdict;
}

(* Oracle closures carry mutable simulator state: each call builds a
   fresh one, so attacks running on separate pool domains never share
   a simulator (same rule as the portfolio racers). *)
let oracle s =
  let sim = Sim.create (Netlist.comb_view s.original) in
  fun input -> Sim.eval_comb sim input

let word_oracle s =
  let simw = Simw.create (Netlist.comb_view s.original) in
  fun ~lanes words -> Simw.eval_comb simw ~lanes words

let checked_broken s key stats =
  if Locked.verify ~original:s.original { s.locked with Locked.key } then
    Broken (key, { stats with recovered_bits = stats.key_bits })
  else
    (* the attack's candidate does not unlock the design: never report
       an unverified break — downgrade, and leave a mark *)
    Resilient { stats with detail = ("verify_failed", 1) :: stats.detail }
