(** Key-sensitization attack (the KSA of Yasin et al., simulation
    form).

    For each undecided key bit the attacker searches sampled inputs,
    word-parallel, for {e sensitizing patterns} — inputs on which
    flipping only that bit (others held at the current guess) changes
    some primary output — and asks the activated chip on each until a
    response matches exactly one of the two bit values (a few chip
    calls per probe). Only the outputs the bit actually sensitizes are
    compared — other still-wrong guess bits corrupt the rest of the
    response without masking the decision. Up to {!rounds} passes
    re-probe every bit (coordinate descent: a bit mis-decided while
    its neighbours were wrong gets corrected once they are right),
    stopping as soon as the guess verifies; a final hill-climb over
    the sampled error (single-bit flips, plus pair flips for keys of
    <= 32 bits) escapes the XOR parity trap, where two wrong bits
    cancelling on one xor-dominated path look locally optimal.
    XOR-style locking falls quickly (every bit sensitizes on almost
    any input); interference-entangled schemes (mux routing, LUT
    redaction) leave most probes ambiguous.

    The assembled guess is only reported [Broken] when it verifies
    against the original. *)

val rounds : int
(** Maximum decision passes over the key (3). *)

val attack : Attack.t
(** Registered as ["sensitize"]. [recovered_bits] counts pinned bits;
    [oracle_queries] counts chip calls. [Inapplicable] on zero key
    bits or cyclic locked netlists. *)
