module Pool = Shell_util.Pool
module Obs = Shell_util.Obs

type config = { solver_seed : int; label : string }

let m_races =
  Obs.counter ~stable:true ~help:"portfolio races run" "portfolio_races"

(* winner identity and its effort depend on which racer finishes the
   budgeted search first, so both are unstable *)
let g_winner =
  Obs.gauge ~help:"index of the last race's winning config (-1 = none)"
    "portfolio_winner"

let m_conflicts_at_win =
  Obs.counter ~help:"winning attack's solver conflicts, summed over races"
    "portfolio_conflicts_at_win"

let default_configs k =
  List.init (max 1 k) (fun i ->
      if i = 0 then { solver_seed = 0; label = "phase=minisat" }
      else
        let seed = 0x5eed + (i * 0x9e37) in
        { solver_seed = seed; label = Printf.sprintf "phase=rand(%#x)" seed })

type t = {
  winner : int option;
  outcomes : (config * Sat_attack.outcome) array;
}

let run ?jobs ?(stop_on_first_broken = false) ?max_dips ?max_conflicts
    ?time_limit ?cycle_blocks ?(should_stop = fun () -> false)
    ?(configs = default_configs 4) ~original locked =
  Obs.incr m_races;
  Obs.with_span "portfolio" @@ fun () ->
  let arr = Array.of_list configs in
  let stop = Atomic.make false in
  let external_stop = should_stop in
  let should_stop =
    if stop_on_first_broken then fun () -> Atomic.get stop || external_stop ()
    else external_stop
  in
  let outcomes =
    Pool.map ?jobs
      (fun cfg ->
        let oracle = Sat_attack.oracle_of_netlist original in
        let o =
          Sat_attack.run ?max_dips ?max_conflicts ?time_limit ?cycle_blocks
            ~solver_seed:cfg.solver_seed ~should_stop ~oracle locked
        in
        (match o with
        | Sat_attack.Broken _ -> Atomic.set stop true
        | Sat_attack.Timeout _ -> ());
        (cfg, o))
      arr
  in
  let winner = ref None in
  Array.iteri
    (fun i (_, o) ->
      match o with
      | Sat_attack.Broken _ when !winner = None -> winner := Some i
      | _ -> ())
    outcomes;
  (match !winner with
  | Some i ->
      Obs.set g_winner i;
      Obs.span_add "winner" i;
      (match snd outcomes.(i) with
      | Sat_attack.Broken (_, st) ->
          Obs.add m_conflicts_at_win st.Sat_attack.conflicts;
          Obs.span_add "conflicts_at_win" st.Sat_attack.conflicts
      | Sat_attack.Timeout _ -> ())
  | None -> Obs.set g_winner (-1));
  { winner = !winner; outcomes }

let best t =
  match t.winner with
  | Some i -> snd t.outcomes.(i)
  | None ->
      let most = ref (snd t.outcomes.(0)) in
      Array.iter
        (fun (_, o) ->
          match (o, !most) with
          | Sat_attack.Timeout st, Sat_attack.Timeout best_st
            when st.Sat_attack.dips > best_st.Sat_attack.dips -> most := o
          | _ -> ())
        t.outcomes;
      !most

(* ---------------- unified interface ---------------- *)

let attack =
  {
    Attack.name = "portfolio";
    description = "seeded SAT-solver portfolio race (4 phase seeds)";
    capabilities = [ Attack.Oracle_access ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        (* every racer runs to its own budget (no first-break abort):
           the verdict stays a pure function of (subject, budget), which
           the battery's determinism contract requires; inside a pool
           task the racers degrade gracefully to sequential *)
        let t =
          run ~stop_on_first_broken:false ~max_dips:b.Attack.max_dips
            ~max_conflicts:b.Attack.max_conflicts
            ~time_limit:b.Attack.time_limit ~cycle_blocks:s.Attack.cycle_blocks
            ~should_stop:b.Attack.should_stop ~original:s.Attack.original
            s.Attack.locked.Shell_locking.Locked.locked
        in
        let winner_detail =
          ("winner", match t.winner with Some i -> i | None -> -1)
        in
        match best t with
        | Sat_attack.Broken (key, st) ->
            let stats = Sat_attack.to_attack_stats ~broken:true st in
            let stats =
              { stats with Attack.detail = winner_detail :: stats.Attack.detail }
            in
            (* each racer's break is already verified by [attack_locked]
               semantics only when routed through it; here the racers
               return raw keys, so funnel through the checked path *)
            Attack.checked_broken s key stats
        | Sat_attack.Timeout st ->
            let stats = Sat_attack.to_attack_stats st in
            Attack.Resilient
              { stats with Attack.detail = winner_detail :: stats.Attack.detail });
  }
