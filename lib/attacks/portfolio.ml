module Pool = Shell_util.Pool
module Obs = Shell_util.Obs

type config = { solver_seed : int; label : string }

let m_races =
  Obs.counter ~stable:true ~help:"portfolio races run" "portfolio_races"

(* winner identity and its effort depend on which racer finishes the
   budgeted search first, so both are unstable *)
let g_winner =
  Obs.gauge ~help:"index of the last race's winning config (-1 = none)"
    "portfolio_winner"

let m_conflicts_at_win =
  Obs.counter ~help:"winning attack's solver conflicts, summed over races"
    "portfolio_conflicts_at_win"

let default_configs k =
  List.init (max 1 k) (fun i ->
      if i = 0 then { solver_seed = 0; label = "phase=minisat" }
      else
        let seed = 0x5eed + (i * 0x9e37) in
        { solver_seed = seed; label = Printf.sprintf "phase=rand(%#x)" seed })

type t = {
  winner : int option;
  outcomes : (config * Sat_attack.outcome) array;
}

let run ?jobs ?(stop_on_first_broken = false) ?max_dips ?max_conflicts
    ?time_limit ?cycle_blocks ?(configs = default_configs 4) ~original locked =
  Obs.incr m_races;
  Obs.with_span "portfolio" @@ fun () ->
  let arr = Array.of_list configs in
  let stop = Atomic.make false in
  let should_stop =
    if stop_on_first_broken then fun () -> Atomic.get stop
    else fun () -> false
  in
  let outcomes =
    Pool.map ?jobs
      (fun cfg ->
        let oracle = Sat_attack.oracle_of_netlist original in
        let o =
          Sat_attack.run ?max_dips ?max_conflicts ?time_limit ?cycle_blocks
            ~solver_seed:cfg.solver_seed ~should_stop ~oracle locked
        in
        (match o with
        | Sat_attack.Broken _ -> Atomic.set stop true
        | Sat_attack.Timeout _ -> ());
        (cfg, o))
      arr
  in
  let winner = ref None in
  Array.iteri
    (fun i (_, o) ->
      match o with
      | Sat_attack.Broken _ when !winner = None -> winner := Some i
      | _ -> ())
    outcomes;
  (match !winner with
  | Some i ->
      Obs.set g_winner i;
      Obs.span_add "winner" i;
      (match snd outcomes.(i) with
      | Sat_attack.Broken (_, st) ->
          Obs.add m_conflicts_at_win st.Sat_attack.conflicts;
          Obs.span_add "conflicts_at_win" st.Sat_attack.conflicts
      | Sat_attack.Timeout _ -> ())
  | None -> Obs.set g_winner (-1));
  { winner = !winner; outcomes }

let best t =
  match t.winner with
  | Some i -> snd t.outcomes.(i)
  | None ->
      let most = ref (snd t.outcomes.(0)) in
      Array.iter
        (fun (_, o) ->
          match (o, !most) with
          | Sat_attack.Timeout st, Sat_attack.Timeout best_st
            when st.Sat_attack.dips > best_st.Sat_attack.dips -> most := o
          | _ -> ())
        t.outcomes;
      !most
