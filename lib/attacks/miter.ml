module Netlist = Shell_netlist.Netlist
module Cnf = Shell_netlist.Cnf
module Solver = Shell_sat.Solver

type t = {
  solver : Solver.t;
  comb : Netlist.t;
  base : Cnf.t;  (* encoding template for fresh copies *)
  in1 : int array;  (* shared input vars (copy 1's) *)
  key1 : int array;
  key2 : int array;
  diff : int;  (* activation literal for the difference constraint *)
  mutable base_clauses : int;
  mutable base_vars : int;
}

let add_copy solver base =
  (* fresh variables for one more circuit copy *)
  let off = Solver.num_vars solver in
  let shifted = Cnf.offset base off in
  Solver.ensure_vars solver shifted.Cnf.nvars;
  List.iter (Solver.add_clause solver) shifted.Cnf.clauses;
  shifted

let vars_of cnf nets = Array.map (fun n -> cnf.Cnf.var_of_net.(n)) nets

let create ?(cycle_blocks = []) ?(seed = 0) locked =
  let comb = Netlist.comb_view locked in
  let base = Cnf.encode comb in
  let solver = Solver.create ~seed () in
  let c1 = add_copy solver base in
  let c2 = add_copy solver base in
  let ins = Netlist.input_nets comb in
  let keys = Netlist.key_nets comb in
  let outs = Netlist.output_nets comb in
  let in1 = vars_of c1 ins and in2 = vars_of c2 ins in
  Array.iteri
    (fun i v1 ->
      List.iter (Solver.add_clause solver) (Cnf.equal_clauses v1 in2.(i)))
    in1;
  let key1 = vars_of c1 keys and key2 = vars_of c2 keys in
  let out1 = vars_of c1 outs and out2 = vars_of c2 outs in
  (* diff literal and per-output xor indicators *)
  let diff = Solver.new_var solver in
  let xors =
    Array.mapi
      (fun i v1 ->
        let x = Solver.new_var solver in
        List.iter (Solver.add_clause solver) (Cnf.xor_var ~fresh:x v1 out2.(i));
        x)
      out1
  in
  Solver.add_clause solver (-diff :: Array.to_list xors);
  (* cyclic-reduction pre-processing: block cycle-closing key patterns
     for both key vectors *)
  List.iter
    (fun (ids, vals) ->
      let block keyv =
        Solver.add_clause solver
          (Array.to_list
             (Array.mapi
                (fun j id ->
                  let v = keyv.(id) in
                  if vals.(j) then -v else v)
                ids))
      in
      block key1;
      block key2)
    cycle_blocks;
  {
    solver;
    comb;
    base;
    in1;
    key1;
    key2;
    diff;
    base_clauses =
      (2 * List.length base.Cnf.clauses)
      + (2 * Array.length in1)
      + (4 * Array.length out1)
      + 1;
    base_vars = Solver.num_vars solver;
  }

let num_inputs t = Array.length t.in1
let num_keys t = Array.length t.key1

let find_dip ?max_conflicts t =
  match Solver.solve ~assumptions:[ t.diff ] ?max_conflicts t.solver with
  | Solver.Sat ->
      `Dip (Array.map (fun v -> Solver.value t.solver v) t.in1)
  | Solver.Unsat -> `Unsat
  | Solver.Unknown -> `Budget

let add_dip t input output =
  let bind cnf nets values =
    Array.iteri
      (fun i net ->
        let v = cnf.Cnf.var_of_net.(net) in
        Solver.add_clause t.solver [ (if values.(i) then v else -v) ])
      nets
  in
  let tie cnf key_vars =
    Array.iteri
      (fun i net ->
        let v = cnf.Cnf.var_of_net.(net) in
        List.iter (Solver.add_clause t.solver) (Cnf.equal_clauses v key_vars.(i)))
      (Netlist.key_nets t.comb)
  in
  let copy_a = add_copy t.solver t.base in
  bind copy_a (Netlist.input_nets t.comb) input;
  bind copy_a (Netlist.output_nets t.comb) output;
  tie copy_a t.key1;
  let copy_b = add_copy t.solver t.base in
  bind copy_b (Netlist.input_nets t.comb) input;
  bind copy_b (Netlist.output_nets t.comb) output;
  tie copy_b t.key2

let extract_key ?max_conflicts t =
  match Solver.solve ~assumptions:[ -t.diff ] ?max_conflicts t.solver with
  | Solver.Sat -> Some (Array.map (fun v -> Solver.value t.solver v) t.key1)
  | Solver.Unsat | Solver.Unknown -> None

let conflicts t = Solver.num_conflicts t.solver
let stats t = Solver.stats t.solver

let clause_to_var_ratio t =
  float_of_int t.base_clauses /. float_of_int (max 1 t.base_vars)
